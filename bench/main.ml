(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation on the scaled-down model zoo, plus Bechamel micro-benchmarks
   of the verifier kernels.

     dune exec bench/main.exe                 # all tables + figure + micro
     dune exec bench/main.exe -- table1 table6
     dune exec bench/main.exe -- --full table1
     dune exec bench/main.exe -- micro

   Models are loaded from data/ (trained on demand: run bin/train first
   to avoid paying training time here). *)

let targets : (string * (Common.scale -> unit)) list =
  [
    ("table1", Tables.table1);
    ("table2", Tables.table2);
    ("table3", Tables.table3);
    ("table4", Tables.table4);
    ("table5", Tables.table5);
    ("table6", Tables.table6);
    ("table7", Tables.table7);
    ("table8", Tables.table8);
    ("table9", Tables.table9);
    ("table10", Tables.table10);
    ("table11", Tables.table11);
    ("table12", Tables.table12);
    ("table13", Tables.table13);
    ("table14", Tables.table14);
    ("figure4", Tables.figure4);
    ("pool", Pool.run);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let args = List.filter (fun a -> a <> "--full") args in
  let scale = if full then Common.full_scale else Common.quick_scale in
  let wanted, micro =
    match args with
    | [] -> (List.map fst targets, true)
    | _ -> (List.filter (fun a -> a <> "micro") args, List.mem "micro" args)
  in
  Printf.printf
    "DeepT benchmark harness — scale: %d examples x %d positions, %d search \
     iters (%s)\n"
    scale.Common.examples scale.Common.positions scale.Common.iters
    (if full then "--full" else "quick");
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun name ->
      match List.assoc_opt name targets with
      | Some f -> f scale
      | None ->
          Printf.eprintf "unknown target %s (available: %s, micro)\n" name
            (String.concat ", " (List.map fst targets)))
    wanted;
  if micro then Micro.run ();
  Printf.printf "\ntotal bench time: %.1f s\n" (Unix.gettimeofday () -. t0)
