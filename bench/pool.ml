(* Worker-pool benchmark: wall time of the same certification batch run
   through the supervised pool (Supervisor.run) with 1 worker and with 4.
   The jobs are radius searches on a tiny fixed model, so the comparison
   isolates the pool's fork/dispatch/collect overhead and the speedup
   from genuine multi-process parallelism. *)

let reps = 6 (* radius searches per job, so a job is milliseconds-sized *)

let run (scale : Common.scale) =
  Common.table_header "pool: supervised batch, --jobs 1 vs --jobs 4"
    "wall time of one batch through Supervisor.run (lower is better)";
  let model = Helpers_model.tiny () in
  let program = Nn.Model.to_ir model in
  let cfg = Deept.Config.precise in
  let rng = Tensor.Rng.create 11 in
  let n_jobs = Int.max 8 (4 * scale.Common.examples) in
  let jobs =
    List.init n_jobs (fun i ->
        let len = 4 + (i mod 3) in
        (i, Array.init len (fun _ -> Tensor.Rng.int rng 16)))
  in
  let worker _id toks =
    let x = Nn.Model.embed_tokens model toks in
    let word = Array.length toks - 1 in
    let r = ref 0.0 in
    for _ = 1 to reps do
      r :=
        Deept.Certify.certified_radius cfg program ~p:Deept.Lp.Linf x ~word
          ~true_class:0 ~hi:0.06 ~iters:scale.Common.iters ()
    done;
    !r
  in
  let time workers =
    let pool = Deept.Config.pool ~workers () in
    let t0 = Unix.gettimeofday () in
    let rs = Deept.Supervisor.run ~pool ~worker jobs in
    let t = Unix.gettimeofday () -. t0 in
    let ok =
      List.length rs = n_jobs
      && List.for_all (fun r -> Result.is_ok r.Deept.Supervisor.outcome) rs
    in
    (t, ok)
  in
  let n_cores = Domain.recommended_domain_count () in
  let t1, ok1 = time 1 in
  let t4, ok4 = time 4 in
  Printf.printf "  %-24s %8s %6s\n" "" "wall(s)" "ok";
  Printf.printf "  %-24s %8.3f %6s\n" "--jobs 1" t1
    (if ok1 then "yes" else "NO");
  Printf.printf "  %-24s %8.3f %6s\n" "--jobs 4" t4
    (if ok4 then "yes" else "NO");
  Printf.printf "  speedup (jobs=4 over 1): %sx  (%d core%s available%s)\n"
    (Common.fmt_ratio t1 t4) n_cores
    (if n_cores = 1 then "" else "s")
    (if n_cores = 1 then "; no parallel speedup possible" else "");
  (* --- Marshal vs shared-memory job transport -----------------------

     The same batch of wide regions dispatched twice through
     Certify.certify_regions (4 workers): once with each zonotope
     marshaled whole across the job pipe, once with its coefficient
     blocks landed in a pre-fork MAP_SHARED arena so only (offset, dims)
     descriptors cross the pipe. The regions carry 4096 noise symbols
     (~1.3 MiB of coefficients each) so transport cost is visible next
     to the propagation itself. Display-only: the gated transport
     numbers are bench/kernels.ml's dispatch rows. *)
  if Tensor.Shm.available () then begin
    let esyms = 4096 and n_regions = 8 in
    let toks = Array.init 5 (fun i -> i + 1) in
    let x = Nn.Model.embed_tokens model toks in
    let nv = Tensor.Mat.rows x * Tensor.Mat.cols x in
    let regions =
      List.init n_regions (fun i ->
          let rng = Tensor.Rng.create (100 + i) in
          let eps = Tensor.Mat.random_uniform rng nv esyms 0.001 in
          ( i,
            Deept.Zonotope.make ~p:Deept.Lp.Linf ~center:(Tensor.Mat.copy x)
              ~phi:(Tensor.Mat.create nv 0) ~eps ))
    in
    let pool = Deept.Config.pool ~workers:4 () in
    let run_with arena =
      let t0 = Unix.gettimeofday () in
      let rs =
        Deept.Certify.certify_regions ?arena ~pool cfg program ~true_class:0
          regions
      in
      (Unix.gettimeofday () -. t0, rs)
    in
    (* The arena exists before Supervisor.run forks its workers, exactly
       like the daemon's pre-fork weight arena. *)
    let arena =
      Tensor.Shm.create ~floats:(2 * n_regions * nv * (esyms + 9))
    in
    let tm, rm = run_with None in
    let ts, rs = run_with (Some arena) in
    let margin_bits l =
      List.sort (fun a b -> compare a.Deept.Supervisor.job b.Deept.Supervisor.job) l
      |> List.map (fun r ->
             match r.Deept.Supervisor.outcome with
             | Ok m -> Int64.bits_of_float m
             | Error _ -> Int64.min_int)
    in
    let identical = margin_bits rm = margin_bits rs in
    Printf.printf "\n  %-24s %8s\n"
      (Printf.sprintf "transport (%d wide regions)" n_regions)
      "wall(s)";
    Printf.printf "  %-24s %8.3f\n" "marshal" tm;
    Printf.printf "  %-24s %8.3f\n" "shm descriptors" ts;
    Printf.printf
      "  speedup (shm over marshal): %sx  (margins bit-identical: %s)\n"
      (Common.fmt_ratio tm ts)
      (if identical then "yes" else "NO")
  end
  else Printf.printf "  transport comparison skipped (DEEPT_NO_SHM=1)\n"
