(* Worker-pool benchmark: wall time of the same certification batch run
   through the supervised pool (Supervisor.run) with 1 worker and with 4.
   The jobs are radius searches on a tiny fixed model, so the comparison
   isolates the pool's fork/dispatch/collect overhead and the speedup
   from genuine multi-process parallelism. *)

let reps = 6 (* radius searches per job, so a job is milliseconds-sized *)

let run (scale : Common.scale) =
  Common.table_header "pool: supervised batch, --jobs 1 vs --jobs 4"
    "wall time of one batch through Supervisor.run (lower is better)";
  let model = Helpers_model.tiny () in
  let program = Nn.Model.to_ir model in
  let cfg = Deept.Config.precise in
  let rng = Tensor.Rng.create 11 in
  let n_jobs = Int.max 8 (4 * scale.Common.examples) in
  let jobs =
    List.init n_jobs (fun i ->
        let len = 4 + (i mod 3) in
        (i, Array.init len (fun _ -> Tensor.Rng.int rng 16)))
  in
  let worker _id toks =
    let x = Nn.Model.embed_tokens model toks in
    let word = Array.length toks - 1 in
    let r = ref 0.0 in
    for _ = 1 to reps do
      r :=
        Deept.Certify.certified_radius cfg program ~p:Deept.Lp.Linf x ~word
          ~true_class:0 ~hi:0.06 ~iters:scale.Common.iters ()
    done;
    !r
  in
  let time workers =
    let pool = Deept.Config.pool ~workers () in
    let t0 = Unix.gettimeofday () in
    let rs = Deept.Supervisor.run ~pool ~worker jobs in
    let t = Unix.gettimeofday () -. t0 in
    let ok =
      List.length rs = n_jobs
      && List.for_all (fun r -> Result.is_ok r.Deept.Supervisor.outcome) rs
    in
    (t, ok)
  in
  let n_cores = Domain.recommended_domain_count () in
  let t1, ok1 = time 1 in
  let t4, ok4 = time 4 in
  Printf.printf "  %-24s %8s %6s\n" "" "wall(s)" "ok";
  Printf.printf "  %-24s %8.3f %6s\n" "--jobs 1" t1
    (if ok1 then "yes" else "NO");
  Printf.printf "  %-24s %8.3f %6s\n" "--jobs 4" t4
    (if ok4 then "yes" else "NO");
  Printf.printf "  speedup (jobs=4 over 1): %sx  (%d core%s available%s)\n"
    (Common.fmt_ratio t1 t4) n_cores
    (if n_cores = 1 then "" else "s")
    (if n_cores = 1 then "; no parallel speedup possible" else "")
