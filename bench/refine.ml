(* Refined-vs-base certified radius: what branch-and-bound symbol
   splitting (Brefine) buys over the base Precise config, per zoo model
   depth.

     dune exec bench/refine.exe -- --data data            # table on stdout
     dune exec bench/refine.exe -- --data data --json     # + BENCH_refine.json

   For each model both arms search the same input (test sentence 0,
   word 1, ℓ∞ ball): the base arm is the plain Precise radius search;
   the refine arm is the same search plus Brefine probes at the failing
   edge of the final bracket (Certify.refined_radius). Hard gates (exit
   4): the refine arm's plain radius must be bit-identical to the base
   arm's (refinement must not perturb the search it extends), every
   model's refined radius must be >= its base radius, and at least two
   models must show a strictly larger refined radius — the refinement
   has to actually recover queries, not just not regress. Branches run
   on the serial wave runner so the wall-clock rows are in-process
   stable (check_regress gates them at the usual 25%); cross-runner
   bit-identity is the test suite's job, not the bench's. *)

type row = {
  name : string;
  depth : int;
  base_wall_s : float;
  wall_s : float;
  radius : float;
  refined_radius : float;
}

let measure ~rounds run =
  let result = ref None in
  let best = ref infinity in
  for _ = 1 to max rounds 1 do
    let t0 = Unix.gettimeofday () in
    result := Some (run ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!best, Option.get !result)

let json_of_row ~cores r =
  Printf.sprintf
    "{\"name\":\"%s\",\"depth\":%d,\"base_wall_s\":%.3f,\"wall_s\":%.3f,\"radius\":%.17g,\"refined_radius\":%.17g,\"cores\":%d}"
    r.name r.depth r.base_wall_s r.wall_s r.radius r.refined_radius cores

let write_json path ~cores rows =
  if Sys.file_exists path then begin
    let prev = Filename.remove_extension path ^ ".prev.json" in
    (try Sys.remove prev with Sys_error _ -> ());
    Sys.rename path prev;
    Printf.printf "rotated previous %s -> %s\n" path prev
  end;
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      output_string oc (json_of_row ~cores r);
      if i < List.length rows - 1 then output_string oc ",";
      output_string oc "\n")
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let data = ref "data" in
  let models = ref "small_3,sst_3,small_6" in
  let iters = ref 10 in
  let rounds = ref 1 in
  let json = ref false in
  let out = ref "BENCH_refine.json" in
  Arg.parse
    [
      ("--data", Arg.Set_string data, "DIR  model directory (default data)");
      ( "--models",
        Arg.Set_string models,
        "LIST  comma-separated zoo models (default small_3,sst_3,small_6)" );
      ("--iters", Arg.Set_int iters, "N  bisection steps (default 10)");
      ("--rounds", Arg.Set_int rounds, "N  timing repetitions, min kept (default 1)");
      ("--json", Arg.Set json, "  write the results to --out as JSON");
      ("--out", Arg.Set_string out, "PATH  JSON output path (default BENCH_refine.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "refine [--data DIR] [--models LIST] [--json] [--out PATH]";
  Zoo.data_dir := !data;
  let base_cfg =
    (* serial probes and serial branch waves: in-process, scheduler-free
       timings *)
    Deept.Config.with_search
      (Deept.Config.search ~probe_backend:Deept.Config.Serial_probes ())
      Deept.Config.precise
  in
  let refine_cfg =
    Deept.Config.with_refine (Some Deept.Config.default_refine) base_cfg
  in
  (* ℓ∞ balls: every noise symbol is an independent ε, so a symbol split
     is an exact partition and branch-and-bound genuinely recovers
     queries. (ℓ2 splits go through the φ-decoupling relaxation, which
     gives back on the dual-norm bound at least what the halving gains —
     see DESIGN.md §13 — so refinement cannot move an ℓ2 edge.) *)
  let word = 1 and p = Deept.Lp.Linf in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "refined vs base Precise certified radius, idx 0 word %d linf, iters %d\n\n"
    word !iters;
  let failures = ref 0 in
  let strict_gains = ref 0 in
  let rows =
    List.map
      (fun mname ->
        let model =
          Zoo.load_or_train ~log:(fun s -> Printf.eprintf "%s\n%!" s) mname
        in
        let entry = Zoo.entry mname in
        let c = Zoo.corpus_of entry.Zoo.corpus in
        let program = Nn.Model.to_ir model in
        let toks, true_class = List.nth c.Text.Corpus.test 0 in
        let x = Nn.Model.embed_tokens model toks in
        let depth = Ir.depth_of_kind program "self_attention" in
        let search cfg () =
          Deept.Certify.certified_radius_v cfg program ~p x ~word ~true_class
            ~iters:!iters ()
        in
        let base_wall_s, base = measure ~rounds:!rounds (search base_cfg) in
        let wall_s, refined = measure ~rounds:!rounds (search refine_cfg) in
        if refined.Deept.Certify.radius <> base.Deept.Certify.radius then begin
          Printf.eprintf
            "refine: %s plain radius drifted under refinement: %.17g != %.17g\n%!"
            mname refined.Deept.Certify.radius base.Deept.Certify.radius;
          incr failures
        end;
        let rr =
          match refined.Deept.Certify.refined_radius with
          | Some r -> r
          | None ->
              (* an open bracket (everything certified up to the growth
                 cap) leaves nothing to refine; report base *)
              base.Deept.Certify.radius
        in
        if rr < base.Deept.Certify.radius then begin
          Printf.eprintf "refine: %s refined %.17g < base %.17g\n%!" mname rr
            base.Deept.Certify.radius;
          incr failures
        end;
        if rr > base.Deept.Certify.radius then incr strict_gains;
        {
          name = Printf.sprintf "refine_%s" mname;
          depth;
          base_wall_s;
          wall_s;
          radius = base.Deept.Certify.radius;
          refined_radius = rr;
        })
      (String.split_on_char ',' !models |> List.filter (fun s -> s <> ""))
  in
  Printf.printf "%-20s %5s %10s %12s %12s %14s %8s\n" "model" "depth"
    "base s" "refine s" "base radius" "refined radius" "gain";
  List.iter
    (fun r ->
      Printf.printf "%-20s %5d %10.3f %12.3f %12.8f %14.8f %7.2f%%\n" r.name
        r.depth r.base_wall_s r.wall_s r.radius r.refined_radius
        (if r.radius > 0.0 then (r.refined_radius /. r.radius -. 1.0) *. 100.0
         else 0.0))
    rows;
  (* At the default three-model list, refinement must recover queries on
     at least two models to earn its keep; a deliberately shortened list
     (the CI gate re-measures only small_3 — ℓ∞ Precise searches on the
     larger models cost tens of minutes) still requires every listed
     model to gain. *)
  let need = min 2 (List.length rows) in
  if !strict_gains < need then begin
    Printf.eprintf
      "refine: only %d model(s) gained strictly (need >= %d) — refinement is \
       not earning its keep\n%!"
      !strict_gains need;
    incr failures
  end;
  if !failures > 0 then exit 4;
  if !json then write_json !out ~cores rows
