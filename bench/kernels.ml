(* Reproducible benchmark of the zonotope matmul kernels: the seed serial
   kernel vs the register-blocked kernel vs blocked + domain-parallel,
   plus (since the fused-kernel PR) the affine-fusion win and the
   Marshal-vs-shared-memory job dispatch cost.

     dune exec bench/kernels.exe --             # table on stdout
     dune exec bench/kernels.exe -- --json      # + writes BENCH_kernels.json
     dune exec bench/kernels.exe -- --domains 8 # pool size for the parallel row

   The shapes below were recorded from a real propagation
   (`certify t1 --model sst_3`, seq len 9, d_model 24, 3 layers) by
   tracing every Mat product:

   - coefficient-block products w^T (24 x 24) x (24 x E) dominate the
     run; the symbol count E grows from 24 (embedding phi block) through
     ~344 and ~1344 (mid layers) to ~3800 (last layer, before
     reduction);
   - the softmax difference map is an 81 x 9 by 9 x E product
     (map_rows_affine of the n^2-variable difference matrix);
   - value centers are tiny 9 x 24 by 24 x 24 products, kept as a
     below-threshold control (the parallel row must not regress them).

   The fused rows measure what the Fuse pre-pass buys on those shapes: a
   chain of three affine ops costs three coefficient passes unfused and
   one when composed at load (the composition itself is outside the
   timed region, exactly as it is outside the certification loop).

   The sparse rows measure what column-block liveness buys on the
   late-pipeline shapes where decorrelation and branch compaction leave
   most symbol columns dead: the blocked dense kernel over the full
   width vs the same product restricted to the live intervals
   (bit-identical by the occupancy invariant, checked before timing).

   The dispatch rows measure the per-job transport cost of a coefficient
   block to a forked worker: Marshal over the job pipe (the seed
   transport) vs writing into the pre-fork MAP_SHARED arena and shipping
   an (offset, dims) descriptor, with the worker reading the arena in
   place (Shm/Bigmat). The worker is forked before any domain pool
   exists — the same order the supervisor observes.

   When a previous BENCH_kernels.json exists it is rotated to
   BENCH_kernels.prev.json so `check_regress.exe` can compare runs. *)

open Tensor

type shape = {
  label : string;
  ta : bool;  (* the gemm ~ta:true coefficient-block orientation *)
  m : int;    (* a is m x k (or k x m when ta), b is k x n *)
  k : int;
  n : int;
}

let shapes =
  [
    { label = "coeff_ta_24x24_e24"; ta = true; m = 24; k = 24; n = 24 };
    { label = "coeff_ta_24x24_e344"; ta = true; m = 24; k = 24; n = 344 };
    { label = "coeff_ta_24x24_e1344"; ta = true; m = 24; k = 24; n = 1344 };
    { label = "coeff_ta_24x24_e3800"; ta = true; m = 24; k = 24; n = 3800 };
    { label = "softmax_rows_81x9_e1344"; ta = false; m = 81; k = 9; n = 1344 };
    { label = "center_9x24x24"; ta = false; m = 9; k = 24; n = 24 };
  ]

(* Shared CI machines throttle unpredictably, and a slow epoch that hits
   one kernel's contiguous measurement window would make the speedup
   ratios meaningless. So the kernels are timed {e interleaved}: each
   round measures every kernel once (with repetitions calibrated to a
   >= 20 ms window), and each kernel keeps its minimum across rounds —
   if the machine is fast during any round, every kernel gets a fair
   fast sample. *)
let rounds = 7

let calibrate f =
  ignore (Sys.opaque_identity (f ()));
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.02 && reps < 1 lsl 20 then go (reps * 4) else reps
  in
  go 1

(* [time_interleaved fs] returns the per-kernel best ns/call. *)
let time_interleaved fs =
  let fs = Array.of_list fs in
  let reps = Array.map calibrate fs in
  let best = Array.map (fun _ -> infinity) fs in
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps.(i) do
          ignore (Sys.opaque_identity (f ()))
        done;
        let dt = Unix.gettimeofday () -. t0 in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  Array.to_list (Array.mapi (fun i b -> b /. float_of_int reps.(i) *. 1e9) best)

type row = {
  shape : shape;
  serial_ns : float;   (* the seed kernel: matmul_naive (+ transpose for ta) *)
  blocked_ns : float;
  parallel_ns : float;
}

let measure ~pool (s : shape) =
  let rng = Rng.create 0x5eed in
  let a =
    if s.ta then Mat.random_uniform rng s.k s.m 1.0
    else Mat.random_uniform rng s.m s.k 1.0
  in
  let b = Mat.random_uniform rng s.k s.n 1.0 in
  let serial () =
    if s.ta then Mat.matmul_naive (Mat.transpose a) b else Mat.matmul_naive a b
  in
  let blocked () = if s.ta then Mat.matmul_ta a b else Mat.matmul a b in
  let parallel () =
    if s.ta then Mat.matmul_ta ~pool a b else Mat.matmul ~pool a b
  in
  (* The three kernels must agree bit-for-bit before being timed. *)
  let reference = serial () in
  List.iter
    (fun (name, f) ->
      if not (Mat.equal reference (f ())) then (
        Printf.eprintf "kernels: %s kernel diverges on %s\n%!" name s.label;
        exit 4))
    [ ("blocked", blocked); ("parallel", parallel) ];
  match time_interleaved [ serial; blocked; parallel ] with
  | [ serial_ns; blocked_ns; parallel_ns ] ->
      { shape = s; serial_ns; blocked_ns; parallel_ns }
  | _ -> assert false

(* --- fused affine chains ---------------------------------------------- *)

(* A Linear -> Linear -> Linear run on the recorded coefficient-block
   shape: unfused, the interpreter performs one w^T x (24 x E) pass per
   op; fused, one pass with the pre-composed weight. Composition happens
   once at program load, so it sits outside the timed closures. *)
type fused_row = { flabel : string; e : int; unfused_ns : float; fused_ns : float }

let chain_len = 3
let fused_es = [ 1344; 3800 ]

let measure_fused e =
  let rng = Rng.create 0xfead in
  let d = 24 in
  let ws = List.init chain_len (fun _ -> Mat.random_uniform rng d d 1.0) in
  let g = Mat.random_uniform rng d e 1.0 in
  let wf =
    match ws with
    | w :: rest -> List.fold_left Mat.matmul w rest
    | [] -> assert false
  in
  let unfused () = List.fold_left (fun acc w -> Mat.matmul_ta w acc) g ws in
  let fused () = Mat.matmul_ta wf g in
  (* (w1.w2.w3)^T g must match w3^T (w2^T (w1^T g)) up to reassociation
     noise before either arm is timed. *)
  if not (Mat.equal ~tol:1e-6 (unfused ()) (fused ())) then begin
    Printf.eprintf "kernels: fused chain diverges at e=%d\n%!" e;
    exit 4
  end;
  match time_interleaved [ unfused; fused ] with
  | [ unfused_ns; fused_ns ] ->
      {
        flabel = Printf.sprintf "fused_chain%d_e%d" chain_len e;
        e;
        unfused_ns;
        fused_ns;
      }
  | _ -> assert false

(* --- sparsity-aware (tile-skipping) kernels ---------------------------- *)

(* Late-pipeline coefficient blocks are column-sparse: decorrelation
   zeroes most eps columns and branch compaction leaves a reduced tail
   plus a handful of freshly minted split columns, with Bands tracking
   the survivors. Each row times the blocked dense kernel against the
   same product restricted to the live intervals — the operand's dead
   columns are genuinely zero, exactly the occupancy invariant the
   sparse path relies on in production — after checking the two agree
   bit for bit. *)
type sparse_row = {
  sshape : shape;
  sdensity : float;
  dense_ns : float;
  sparse_ns : float;
}

let sparse_shapes =
  [
    (* the last-layer post-softmax coefficient block after a
       decorrelation pass leaves ~10% of the 3800 symbols live *)
    ( { label = "sparse_ta_24x24_e3800_d10"; ta = true; m = 24; k = 24; n = 3800 },
      [ (0, 120); (1200, 1330); (2500, 2630) ] );
    (* a refined branch right after restrict_symbol: the parent's
       compacted tail plus the minted split columns, ~5% of the
       pre-compaction width *)
    ( { label = "sparse_rows_81x9_e1344_d05"; ta = false; m = 81; k = 9; n = 1344 },
      [ (0, 48); (1320, 1344) ] );
  ]

let measure_sparse ((s : shape), live) =
  let rng = Rng.create 0x5ba5 in
  let a =
    if s.ta then Mat.random_uniform rng s.k s.m 1.0
    else Mat.random_uniform rng s.m s.k 1.0
  in
  let b = Mat.create s.k s.n in
  List.iter
    (fun (lo, hi) ->
      for i = 0 to s.k - 1 do
        for j = lo to hi - 1 do
          b.Mat.data.((i * s.n) + j) <- Rng.uniform rng (-1.0) 1.0
        done
      done)
    live;
  let dense () = if s.ta then Mat.matmul_ta a b else Mat.matmul a b in
  let sparse () =
    if s.ta then Mat.matmul_ta ~cols:live a b else Mat.matmul ~cols:live a b
  in
  let reference = dense () in
  if not (Mat.equal reference (sparse ())) then begin
    Printf.eprintf "kernels: sparse kernel diverges on %s\n%!" s.label;
    exit 4
  end;
  let sdensity =
    float_of_int (List.fold_left (fun acc (lo, hi) -> acc + hi - lo) 0 live)
    /. float_of_int s.n
  in
  match time_interleaved [ dense; sparse ] with
  | [ dense_ns; sparse_ns ] -> { sshape = s; sdensity; dense_ns; sparse_ns }
  | _ -> assert false

(* --- Marshal vs shared-memory dispatch -------------------------------- *)

(* Round-trip one coefficient block (216 x E: the 9 x 24 value's
   coefficient rows) to a forked worker and back to an acknowledgment.
   Marshal arm: the whole matrix crosses the job pipe. Shm arm: the
   parent writes the block into the pre-fork arena and ships only the
   descriptor; the worker hashes the floats in place through a Bigmat
   view (zero copies on the read side). The hash makes the worker touch
   every float — an idle ack would let the shm arm win by not reading —
   and doubles as the cross-transport bit-identity check. *)
type dispatch_row = { dlabel : string; e : int; marshal_ns : float; shm_ns : float }

let dispatch_vars = 216
let dispatch_es = [ 344; 1344; 3800 ]

type msg = Job of Shm.mat_desc | Quit

let mix h x = Int64.logxor (Int64.mul h 0x100000001b3L) (Int64.bits_of_float x)
let hash_seed = 0xcbf29ce484222325L
let hash_mat (m : Mat.t) = Array.fold_left mix hash_seed m.Mat.data
let hash_view (b : Bigmat.t) = Bigmat.fold mix hash_seed b

type dispatch_ctx = {
  arena : Shm.t;
  to_child : out_channel;
  from_child : in_channel;
  child : int;
}

let setup_dispatch () =
  let arena =
    Shm.create ~floats:(dispatch_vars * (List.fold_left max 0 dispatch_es) + 1024)
  in
  let job_r, job_w = Unix.pipe ~cloexec:false () in
  let res_r, res_w = Unix.pipe ~cloexec:false () in
  match Unix.fork () with
  | 0 ->
      Unix.close job_w;
      Unix.close res_r;
      let ic = Unix.in_channel_of_descr job_r in
      let oc = Unix.out_channel_of_descr res_w in
      let rec serve () =
        (match (Marshal.from_channel ic : msg) with
        | Quit -> exit 0
        | Job (Shm.Inline m) ->
            Marshal.to_channel oc (hash_mat m) [];
            flush oc
        | Job ((Shm.Block _ | Shm.Banded _) as d) ->
            Marshal.to_channel oc (hash_view (Shm.view_mat arena d)) [];
            flush oc);
        serve ()
      in
      serve ()
  | child ->
      Unix.close job_r;
      Unix.close res_w;
      {
        arena;
        to_child = Unix.out_channel_of_descr job_w;
        from_child = Unix.in_channel_of_descr res_r;
        child;
      }

let round_trip ctx (d : Shm.mat_desc) : int64 =
  Marshal.to_channel ctx.to_child (Job d) [];
  flush ctx.to_child;
  Marshal.from_channel ctx.from_child

let teardown_dispatch ctx =
  Marshal.to_channel ctx.to_child Quit [];
  flush ctx.to_child;
  ignore (Unix.waitpid [] ctx.child)

let measure_dispatch ctx e =
  let rng = Rng.create (0xd15 + e) in
  let m = Mat.random_uniform rng dispatch_vars e 1.0 in
  let expect = hash_mat m in
  let marshal_rt () = round_trip ctx (Shm.Inline m) in
  (* threshold 1 forces the arena path at every E, so each row measures
     the transport itself; production packing keeps blocks under
     Shm.default_threshold on the Marshal path. *)
  let shm_rt () =
    let d = Shm.pack_mat ~threshold:1 ctx.arena m in
    let h = round_trip ctx d in
    Shm.free_mat ctx.arena d;
    h
  in
  (* Bit-identity across the two transports before either is timed. *)
  if marshal_rt () <> expect || shm_rt () <> expect then begin
    Printf.eprintf "kernels: dispatch transports disagree at e=%d\n%!" e;
    exit 4
  end;
  let timed f () = ignore (Sys.opaque_identity (f ())) in
  match time_interleaved [ timed marshal_rt; timed shm_rt ] with
  | [ marshal_ns; shm_ns ] ->
      { dlabel = Printf.sprintf "dispatch_216xe%d" e; e; marshal_ns; shm_ns }
  | _ -> assert false

(* --- reporting -------------------------------------------------------- *)

let geomean xs =
  exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

(* Every row carries the machine's core count, like bench/radius.ml: a
   snapshot from a 1-core container is honest about why its parallel
   numbers look the way they do. *)
let json_of_row ~cores r =
  Printf.sprintf
    "{\"name\":\"%s\",\"ta\":%b,\"m\":%d,\"k\":%d,\"n\":%d,\"serial_ns\":%.1f,\"blocked_ns\":%.1f,\"parallel_ns\":%.1f,\"cores\":%d}"
    r.shape.label r.shape.ta r.shape.m r.shape.k r.shape.n r.serial_ns
    r.blocked_ns r.parallel_ns cores

let json_of_fused ~cores r =
  Printf.sprintf
    "{\"name\":\"%s\",\"chain\":%d,\"m\":24,\"k\":24,\"n\":%d,\"unfused_ns\":%.1f,\"fused_ns\":%.1f,\"cores\":%d}"
    r.flabel chain_len r.e r.unfused_ns r.fused_ns cores

let json_of_sparse ~cores r =
  Printf.sprintf
    "{\"name\":\"%s\",\"ta\":%b,\"m\":%d,\"k\":%d,\"n\":%d,\"density\":%.4f,\"dense_ns\":%.1f,\"sparse_ns\":%.1f,\"cores\":%d}"
    r.sshape.label r.sshape.ta r.sshape.m r.sshape.k r.sshape.n r.sdensity
    r.dense_ns r.sparse_ns cores

let json_of_dispatch ~cores r =
  Printf.sprintf
    "{\"name\":\"%s\",\"rows\":%d,\"n\":%d,\"marshal_ns\":%.1f,\"shm_ns\":%.1f,\"cores\":%d}"
    r.dlabel dispatch_vars r.e r.marshal_ns r.shm_ns cores

let write_json path lines =
  if Sys.file_exists path then begin
    let prev = Filename.remove_extension path ^ ".prev.json" in
    (try Sys.remove prev with Sys_error _ -> ());
    Sys.rename path prev;
    Printf.printf "rotated previous %s -> %s\n" path prev
  end;
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i l ->
      output_string oc l;
      if i < List.length lines - 1 then output_string oc ",";
      output_string oc "\n")
    lines;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let domains = ref 4 in
  let json = ref false in
  let out = ref "BENCH_kernels.json" in
  Arg.parse
    [
      ("--domains", Arg.Set_int domains, "N  pool size for the parallel row (default 4)");
      ("--json", Arg.Set json, "  write the results to --out as JSON");
      ("--out", Arg.Set_string out, "PATH  JSON output path (default BENCH_kernels.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "kernels [--domains N] [--json] [--out PATH]";
  (* A larger minor heap keeps the timings kernel-dominated: every call
     allocates its output matrix, and with the default 256 KB minor heap
     the measurement would mostly be minor collections (which, with idle
     pool domains, also involve multi-domain barriers). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let cores = Domain.recommended_domain_count () in
  (* The dispatch worker must fork before the domain pool exists (forking
     a multi-domain runtime is unsupported) — the supervisor observes the
     same order: arena, then fork, then any in-process pools. *)
  let dispatch = if Shm.available () then Some (setup_dispatch ()) else None in
  let pool = Dpool.create !domains in
  Printf.printf "matmul kernels, %d-domain pool (%d recommended on this machine)\n\n"
    !domains cores;
  Printf.printf "%-26s %12s %12s %12s %9s %9s\n" "shape" "serial ns" "blocked ns"
    "block+par ns" "x blocked" "x par";
  let rows = List.map (measure ~pool) shapes in
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.0f %12.0f %12.0f %8.2fx %8.2fx\n" r.shape.label
        r.serial_ns r.blocked_ns r.parallel_ns (r.serial_ns /. r.blocked_ns)
        (r.serial_ns /. r.parallel_ns))
    rows;
  let sp_blocked = geomean (List.map (fun r -> r.serial_ns /. r.blocked_ns) rows) in
  let sp_par = geomean (List.map (fun r -> r.serial_ns /. r.parallel_ns) rows) in
  Printf.printf "\ngeomean speedup: blocked %.2fx, blocked+parallel %.2fx\n"
    sp_blocked sp_par;
  let fused_rows = List.map measure_fused fused_es in
  Printf.printf "\n%-26s %12s %12s %9s\n" "affine chain" "unfused ns" "fused ns"
    "x fused";
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.0f %12.0f %8.2fx\n" r.flabel r.unfused_ns
        r.fused_ns (r.unfused_ns /. r.fused_ns))
    fused_rows;
  let sparse_rows = List.map measure_sparse sparse_shapes in
  Printf.printf "\n%-26s %8s %12s %12s %9s\n" "sparse (tile-skipping)" "density"
    "dense ns" "sparse ns" "x sparse";
  List.iter
    (fun r ->
      Printf.printf "%-26s %7.0f%% %12.0f %12.0f %8.2fx\n" r.sshape.label
        (r.sdensity *. 100.0) r.dense_ns r.sparse_ns (r.dense_ns /. r.sparse_ns))
    sparse_rows;
  let dispatch_rows =
    match dispatch with
    | None ->
        Printf.printf "\ndispatch rows skipped (DEEPT_NO_SHM=1)\n";
        []
    | Some ctx ->
        let rs = List.map (measure_dispatch ctx) dispatch_es in
        teardown_dispatch ctx;
        Printf.printf "\n%-26s %12s %12s %9s\n" "job dispatch" "marshal ns"
          "shm ns" "x shm";
        List.iter
          (fun r ->
            Printf.printf "%-26s %12.0f %12.0f %8.2fx\n" r.dlabel r.marshal_ns
              r.shm_ns (r.marshal_ns /. r.shm_ns))
          rs;
        rs
  in
  if !json then
    write_json !out
      (List.map (json_of_row ~cores) rows
      @ List.map (json_of_fused ~cores) fused_rows
      @ List.map (json_of_sparse ~cores) sparse_rows
      @ List.map (json_of_dispatch ~cores) dispatch_rows);
  Dpool.shutdown pool
