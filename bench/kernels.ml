(* Reproducible benchmark of the zonotope matmul kernels: the seed serial
   kernel vs the register-blocked kernel vs blocked + domain-parallel.

     dune exec bench/kernels.exe --             # table on stdout
     dune exec bench/kernels.exe -- --json      # + writes BENCH_kernels.json
     dune exec bench/kernels.exe -- --domains 8 # pool size for the parallel row

   The shapes below were recorded from a real propagation
   (`certify t1 --model sst_3`, seq len 9, d_model 24, 3 layers) by
   tracing every Mat product:

   - coefficient-block products w^T (24 x 24) x (24 x E) dominate the
     run; the symbol count E grows from 24 (embedding phi block) through
     ~344 and ~1344 (mid layers) to ~3800 (last layer, before
     reduction);
   - the softmax difference map is an 81 x 9 by 9 x E product
     (map_rows_affine of the n^2-variable difference matrix);
   - value centers are tiny 9 x 24 by 24 x 24 products, kept as a
     below-threshold control (the parallel row must not regress them).

   When a previous BENCH_kernels.json exists it is rotated to
   BENCH_kernels.prev.json so `check_regress.exe` can compare runs. *)

open Tensor

type shape = {
  label : string;
  ta : bool;  (* the gemm ~ta:true coefficient-block orientation *)
  m : int;    (* a is m x k (or k x m when ta), b is k x n *)
  k : int;
  n : int;
}

let shapes =
  [
    { label = "coeff_ta_24x24_e24"; ta = true; m = 24; k = 24; n = 24 };
    { label = "coeff_ta_24x24_e344"; ta = true; m = 24; k = 24; n = 344 };
    { label = "coeff_ta_24x24_e1344"; ta = true; m = 24; k = 24; n = 1344 };
    { label = "coeff_ta_24x24_e3800"; ta = true; m = 24; k = 24; n = 3800 };
    { label = "softmax_rows_81x9_e1344"; ta = false; m = 81; k = 9; n = 1344 };
    { label = "center_9x24x24"; ta = false; m = 9; k = 24; n = 24 };
  ]

(* Shared CI machines throttle unpredictably, and a slow epoch that hits
   one kernel's contiguous measurement window would make the speedup
   ratios meaningless. So the kernels are timed {e interleaved}: each
   round measures every kernel once (with repetitions calibrated to a
   >= 20 ms window), and each kernel keeps its minimum across rounds —
   if the machine is fast during any round, every kernel gets a fair
   fast sample. *)
let rounds = 7

let calibrate f =
  ignore (Sys.opaque_identity (f ()));
  let rec go reps =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      ignore (Sys.opaque_identity (f ()))
    done;
    let dt = Unix.gettimeofday () -. t0 in
    if dt < 0.02 && reps < 1 lsl 20 then go (reps * 4) else reps
  in
  go 1

(* [time_interleaved fs] returns the per-kernel best ns/call. *)
let time_interleaved fs =
  let fs = Array.of_list fs in
  let reps = Array.map calibrate fs in
  let best = Array.map (fun _ -> infinity) fs in
  for _ = 1 to rounds do
    Array.iteri
      (fun i f ->
        let t0 = Unix.gettimeofday () in
        for _ = 1 to reps.(i) do
          ignore (Sys.opaque_identity (f ()))
        done;
        let dt = Unix.gettimeofday () -. t0 in
        if dt < best.(i) then best.(i) <- dt)
      fs
  done;
  Array.to_list (Array.mapi (fun i b -> b /. float_of_int reps.(i) *. 1e9) best)

type row = {
  shape : shape;
  serial_ns : float;   (* the seed kernel: matmul_naive (+ transpose for ta) *)
  blocked_ns : float;
  parallel_ns : float;
}

let measure ~pool (s : shape) =
  let rng = Rng.create 0x5eed in
  let a =
    if s.ta then Mat.random_uniform rng s.k s.m 1.0
    else Mat.random_uniform rng s.m s.k 1.0
  in
  let b = Mat.random_uniform rng s.k s.n 1.0 in
  let serial () =
    if s.ta then Mat.matmul_naive (Mat.transpose a) b else Mat.matmul_naive a b
  in
  let blocked () = if s.ta then Mat.matmul_ta a b else Mat.matmul a b in
  let parallel () =
    if s.ta then Mat.matmul_ta ~pool a b else Mat.matmul ~pool a b
  in
  (* The three kernels must agree bit-for-bit before being timed. *)
  let reference = serial () in
  List.iter
    (fun (name, f) ->
      if not (Mat.equal reference (f ())) then (
        Printf.eprintf "kernels: %s kernel diverges on %s\n%!" name s.label;
        exit 4))
    [ ("blocked", blocked); ("parallel", parallel) ];
  match time_interleaved [ serial; blocked; parallel ] with
  | [ serial_ns; blocked_ns; parallel_ns ] ->
      { shape = s; serial_ns; blocked_ns; parallel_ns }
  | _ -> assert false

let geomean xs =
  exp (List.fold_left (fun acc x -> acc +. log x) 0.0 xs /. float_of_int (List.length xs))

let json_of_row r =
  Printf.sprintf
    "{\"name\":\"%s\",\"ta\":%b,\"m\":%d,\"k\":%d,\"n\":%d,\"serial_ns\":%.1f,\"blocked_ns\":%.1f,\"parallel_ns\":%.1f}"
    r.shape.label r.shape.ta r.shape.m r.shape.k r.shape.n r.serial_ns
    r.blocked_ns r.parallel_ns

let write_json path rows =
  if Sys.file_exists path then begin
    let prev = Filename.remove_extension path ^ ".prev.json" in
    (try Sys.remove prev with Sys_error _ -> ());
    Sys.rename path prev;
    Printf.printf "rotated previous %s -> %s\n" path prev
  end;
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      output_string oc (json_of_row r);
      if i < List.length rows - 1 then output_string oc ",";
      output_string oc "\n")
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let domains = ref 4 in
  let json = ref false in
  let out = ref "BENCH_kernels.json" in
  Arg.parse
    [
      ("--domains", Arg.Set_int domains, "N  pool size for the parallel row (default 4)");
      ("--json", Arg.Set json, "  write the results to --out as JSON");
      ("--out", Arg.Set_string out, "PATH  JSON output path (default BENCH_kernels.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "kernels [--domains N] [--json] [--out PATH]";
  (* A larger minor heap keeps the timings kernel-dominated: every call
     allocates its output matrix, and with the default 256 KB minor heap
     the measurement would mostly be minor collections (which, with idle
     pool domains, also involve multi-domain barriers). *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 4 * 1024 * 1024 };
  let pool = Dpool.create !domains in
  Printf.printf "matmul kernels, %d-domain pool (%d recommended on this machine)\n\n"
    !domains
    (Domain.recommended_domain_count ());
  Printf.printf "%-26s %12s %12s %12s %9s %9s\n" "shape" "serial ns" "blocked ns"
    "block+par ns" "x blocked" "x par";
  let rows = List.map (measure ~pool) shapes in
  List.iter
    (fun r ->
      Printf.printf "%-26s %12.0f %12.0f %12.0f %8.2fx %8.2fx\n" r.shape.label
        r.serial_ns r.blocked_ns r.parallel_ns (r.serial_ns /. r.blocked_ns)
        (r.serial_ns /. r.parallel_ns))
    rows;
  let sp_blocked = geomean (List.map (fun r -> r.serial_ns /. r.blocked_ns) rows) in
  let sp_par = geomean (List.map (fun r -> r.serial_ns /. r.parallel_ns) rows) in
  Printf.printf "\ngeomean speedup: blocked %.2fx, blocked+parallel %.2fx\n"
    sp_blocked sp_par;
  if !json then write_json !out rows;
  Dpool.shutdown pool
