(* Reproducible benchmark of the radius search: sequential bisection
   (--probes 1, bit-identical to the committed pins) vs the speculative
   parallel grid search (Psearch, fork-based probe workers) on the
   recorded sst_3 model — the paper's headline measurement loop.

     dune exec bench/radius.exe -- --data data            # table on stdout
     dune exec bench/radius.exe -- --data data --json     # + BENCH_radius.json
     dune exec bench/radius.exe -- --data data --probes 8 # wider grid arm

   Both arms search the same input (test sentence 0, word 1, l2 ball,
   iters = 10): the grid arm must return a radius that certifies and a
   final bracket at most as wide as the sequential one, or the benchmark
   exits non-zero — the gate guards correctness as well as wall-clock.
   Wall-clock is the minimum of [rounds] full searches (the search is
   seconds long and CPU-bound, so 2 rounds suffice to shed one-off
   scheduler noise). When a previous BENCH_radius.json exists it is
   rotated to BENCH_radius.prev.json so `check_regress.exe` can compare
   runs. *)

(* Sequential (probes = 1) certified radius of the benchmark input,
   captured from the pre-Psearch implementation. Exact dyadic rational
   from the bisection — compared bit-for-bit: any drift means the
   default search path is no longer the committed algorithm. *)
let pinned_seq_radius = 0.1474609375

type arm = {
  name : string;
  probes : int;
  wall_s : float;
  report : Deept.Certify.radius_report;
}

let measure ~rounds ~iters ~probes cfg program ~p x ~word ~true_class =
  let cfg =
    Deept.Config.with_search (Deept.Config.search ~probes ()) cfg
  in
  let run () =
    Deept.Certify.certified_radius_v cfg program ~p x ~word ~true_class ~iters
      ()
  in
  let report = ref None in
  let best = ref infinity in
  for _ = 1 to max rounds 1 do
    let t0 = Unix.gettimeofday () in
    report := Some (run ());
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt
  done;
  (!best, Option.get !report)

let bracket_width (r : Deept.Certify.radius_report) =
  let good, bad = r.Deept.Certify.bracket in
  bad -. good

let json_of_arm ~cores a =
  let r = a.report in
  Printf.sprintf
    "{\"name\":\"%s\",\"probes\":%d,\"wall_s\":%.3f,\"radius\":%.17g,\"bracket_width\":%.17g,\"bracket_probes\":%d,\"bisect_probes\":%d,\"rounds\":%d,\"cores\":%d}"
    a.name a.probes a.wall_s r.Deept.Certify.radius (bracket_width r)
    r.Deept.Certify.bracket_probes r.Deept.Certify.bisect_probes
    r.Deept.Certify.rounds cores

let write_json path ~cores arms =
  if Sys.file_exists path then begin
    let prev = Filename.remove_extension path ^ ".prev.json" in
    (try Sys.remove prev with Sys_error _ -> ());
    Sys.rename path prev;
    Printf.printf "rotated previous %s -> %s\n" path prev
  end;
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i a ->
      output_string oc (json_of_arm ~cores a);
      if i < List.length arms - 1 then output_string oc ",";
      output_string oc "\n")
    arms;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let data = ref "data" in
  let probes = ref 4 in
  let iters = ref 10 in
  let rounds = ref 2 in
  let json = ref false in
  let out = ref "BENCH_radius.json" in
  Arg.parse
    [
      ("--data", Arg.Set_string data, "DIR  model directory (default data)");
      ("--probes", Arg.Set_int probes, "N  grid-arm probes per round (default 4)");
      ("--iters", Arg.Set_int iters, "N  sequential bisection steps (default 10)");
      ("--rounds", Arg.Set_int rounds, "N  timing repetitions, min kept (default 2)");
      ("--json", Arg.Set json, "  write the results to --out as JSON");
      ("--out", Arg.Set_string out, "PATH  JSON output path (default BENCH_radius.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "radius [--data DIR] [--probes N] [--json] [--out PATH]";
  if !probes < 2 then begin
    prerr_endline "radius: --probes must be >= 2 (the grid arm)";
    exit 2
  end;
  Zoo.data_dir := !data;
  let entry = Zoo.entry "sst_3" in
  let model = Zoo.load_or_train ~log:(fun s -> Printf.eprintf "%s\n%!" s) "sst_3" in
  let c = Zoo.corpus_of entry.Zoo.corpus in
  let program = Nn.Model.to_ir model in
  let toks, true_class = List.nth c.Text.Corpus.test 0 in
  let x = Nn.Model.embed_tokens model toks in
  let word = 1 and p = Deept.Lp.L2 in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "radius search, sst_3 idx 0 word %d l2, iters %d (%d core(s) recommended \
     on this machine)\n\n"
    word !iters cores;
  let arm name probes =
    let wall_s, report =
      measure ~rounds:!rounds ~iters:!iters ~probes Deept.Config.fast program
        ~p x ~word ~true_class
    in
    { name; probes; wall_s; report }
  in
  let seq = arm (Printf.sprintf "sst_3_i0_w%d_l2_probes1" word) 1 in
  let grid =
    arm (Printf.sprintf "sst_3_i0_w%d_l2_probes%d" word !probes) !probes
  in
  (* Correctness gates: sequential radius is pinned bit-for-bit; the grid
     radius must come from a probe that certified (re-checked here from
     scratch, no prefix sharing) with a bracket at most as wide. *)
  if seq.report.Deept.Certify.radius <> pinned_seq_radius then begin
    Printf.eprintf "radius: probes=1 radius %.17g != pinned %.17g\n%!"
      seq.report.Deept.Certify.radius pinned_seq_radius;
    exit 4
  end;
  let grid_r = grid.report.Deept.Certify.radius in
  if
    grid_r > 0.0
    && not
         (Deept.Certify.certify Deept.Config.fast program
            (Deept.Region.lp_ball ~p x ~word ~radius:grid_r)
            ~true_class)
  then begin
    Printf.eprintf "radius: grid radius %.17g does not re-certify\n%!" grid_r;
    exit 4
  end;
  if bracket_width grid.report > bracket_width seq.report then begin
    Printf.eprintf "radius: grid bracket %.3g wider than sequential %.3g\n%!"
      (bracket_width grid.report) (bracket_width seq.report);
    exit 4
  end;
  Printf.printf "%-24s %9s %8s %13s %8s+%-7s %7s\n" "arm" "wall s" "radius"
    "bracket width" "bracket" "refine" "rounds";
  List.iter
    (fun a ->
      let r = a.report in
      Printf.printf "%-24s %9.3f %8.5f %13.3g %8d+%-7d %7d\n" a.name a.wall_s
        r.Deept.Certify.radius (bracket_width r)
        r.Deept.Certify.bracket_probes r.Deept.Certify.bisect_probes
        r.Deept.Certify.rounds)
    [ seq; grid ];
  Printf.printf "\nspeedup (probes %d vs 1): %.2fx at %.3g vs %.3g bracket width\n"
    !probes (seq.wall_s /. grid.wall_s)
    (bracket_width grid.report)
    (bracket_width seq.report);
  if cores < !probes then
    Printf.printf
      "note: only %d core(s) available for %d concurrent probes — the \
       probes serialize, so the wall-clock speedup on this machine \
       understates a %d-core run\n"
      cores !probes !probes;
  if !json then write_json !out ~cores [ seq; grid ]
