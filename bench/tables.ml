(* One function per table/figure of the paper's evaluation. Each prints the
   same rows the paper reports (min and average certified radius, time,
   ratios), on the scaled-down model zoo (see DESIGN.md section 1). *)

open Tensor
open Common

let layer_models prefix = List.map (fun m -> (m, prefix ^ "_" ^ string_of_int m)) [ 3; 6; 12 ]

let load name = Zoo.load_or_train ~log:(fun s -> Printf.eprintf "%s\n%!" s) name

(* ------------------------------------------------------------------ *)
(* Tables 1 and 2: DeepT-Fast vs CROWN-BaF on the SST-like / Yelp-like
   corpora, certified radius per norm and depth.                        *)

let fast_comparison ~title ~prefix ~corpus scale =
  table_header title
    (Printf.sprintf
       "certified radius (min/avg over %d sentences x %d positions), avg time \
        per radius search"
       scale.examples scale.positions);
  Printf.printf "%-3s %-5s | %9s %9s %7s | %9s %9s %7s | %s\n" "M" "lp"
    "DT min" "DT avg" "DT t(s)" "BaF min" "BaF avg" "BaF t" "ratio";
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples model corpus ~n:scale.examples in
      List.iter
        (fun (p, pname) ->
          let dt =
            radius_stats deept_fast program ~p ~iters:scale.iters examples
              ~positions:scale.positions
          in
          let bf =
            radius_stats crown_baf program ~p ~iters:scale.iters examples
              ~positions:scale.positions
          in
          Printf.printf "%-3d %-5s | %9s %9s %7.2f | %9s %9s %7.2f | %s\n%!" m
            pname (fmt_r dt.min_r) (fmt_r dt.avg_r)
            (dt.time /. float_of_int (max 1 dt.queries))
            (fmt_r bf.min_r) (fmt_r bf.avg_r)
            (bf.time /. float_of_int (max 1 bf.queries))
            (fmt_ratio dt.avg_r bf.avg_r))
        norms)
    (layer_models prefix)

let table1 scale =
  fast_comparison scale
    ~title:"Table 1: DeepT-Fast vs CROWN-BaF (SST-like corpus)"
    ~prefix:"sst" ~corpus:(Zoo.sst_corpus ())

let table2 scale =
  fast_comparison scale
    ~title:"Table 2: DeepT-Fast vs CROWN-BaF (Yelp-like corpus)"
    ~prefix:"yelp" ~corpus:(Zoo.yelp_corpus ())

(* ------------------------------------------------------------------ *)
(* Table 3: wider networks; CROWN-BaF exceeds the memory budget on the
   deepest one (the paper's 2080 Ti OOM, scaled to our sizes).          *)

let crown_memory_budget = 64 * 1024 * 1024

let table3 scale =
  table_header "Table 3: wider Transformers (2x embedding, 4x hidden)"
    (Printf.sprintf
       "CROWN rows print '-' when the relaxation graph exceeds the %d MB \
        budget (the paper's GPU OOM, scaled)"
       (crown_memory_budget / 1024 / 1024));
  Printf.printf "%-3s %-5s | %9s %9s %7s | %9s %9s %7s | %s\n" "M" "lp"
    "DT min" "DT avg" "DT t(s)" "BaF min" "BaF avg" "BaF t" "ratio";
  let corpus = Zoo.sst_corpus () in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples model corpus ~n:scale.examples in
      let seq_len =
        List.fold_left (fun acc e -> max acc (Array.length e.toks)) 2 examples
      in
      let bytes = Linrelax.Verify.approx_bytes (Linrelax.Verify.graph_of program ~seq_len) in
      let crown_fits = bytes <= crown_memory_budget in
      List.iter
        (fun (p, pname) ->
          let dt =
            radius_stats deept_fast program ~p ~iters:scale.iters examples
              ~positions:scale.positions
          in
          if crown_fits then begin
            let bf =
              radius_stats crown_baf program ~p ~iters:scale.iters examples
                ~positions:scale.positions
            in
            Printf.printf "%-3d %-5s | %9s %9s %7.2f | %9s %9s %7.2f | %s\n%!" m
              pname (fmt_r dt.min_r) (fmt_r dt.avg_r)
              (dt.time /. float_of_int (max 1 dt.queries))
              (fmt_r bf.min_r) (fmt_r bf.avg_r)
              (bf.time /. float_of_int (max 1 bf.queries))
              (fmt_ratio dt.avg_r bf.avg_r)
          end
          else
            Printf.printf "%-3d %-5s | %9s %9s %7.2f | %9s %9s %7s | %s\n%!" m
              pname (fmt_r dt.min_r) (fmt_r dt.avg_r)
              (dt.time /. float_of_int (max 1 dt.queries))
              "-" "-" "-" "-")
        norms;
      if not crown_fits then
        Printf.printf "    (CROWN graph for M=%d needs %d MB)\n" m
          (bytes / 1024 / 1024))
    (layer_models "wide")

(* ------------------------------------------------------------------ *)
(* Tables 4 and 12: the precision/performance trade-off on the downscaled
   networks, linf; Table 12 additionally reports CROWN-BaF.             *)

let tradeoff ~with_baf ~title scale =
  table_header title
    "linf radii, one position per sentence (as in Section 6.3)";
  let verifiers =
    [ deept_fast ] @ (if with_baf then [ crown_baf ] else [])
    @ [ deept_precise; crown_backward ]
  in
  Printf.printf "%-3s" "M";
  List.iter (fun v -> Printf.printf " | %-15s min/avg/t" v.vname) verifiers;
  Printf.printf "\n";
  let corpus = Zoo.sst_small_corpus () in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples ~max_len:7 model corpus ~n:scale.examples in
      Printf.printf "%-3d" m;
      List.iter
        (fun v ->
          let st =
            radius_stats v program ~p:Deept.Lp.Linf ~iters:scale.iters examples
              ~positions:1
          in
          Printf.printf " | %9s %9s %6.2f" (fmt_r st.min_r) (fmt_r st.avg_r)
            (st.time /. float_of_int (max 1 st.queries));
          Printf.printf "%!")
        verifiers;
      Printf.printf "\n%!")
    (layer_models "small")

let table4 scale =
  tradeoff scale ~with_baf:false
    ~title:"Table 4: DeepT-Fast vs DeepT-Precise vs CROWN-Backward (linf)"

let table12 scale =
  tradeoff scale ~with_baf:true
    ~title:"Table 12 (A.4): full precision-performance comparison (linf)"

(* ------------------------------------------------------------------ *)
(* Table 5: l1/l2 comparison including CROWN-Backward.                  *)

let table5 scale =
  table_header "Table 5: l1/l2 radii vs CROWN-BaF and CROWN-Backward"
    "downscaled networks (as in Section 6.4)";
  Printf.printf "%-3s %-4s | %9s %9s %6s | %9s %9s %6s | %9s %9s %6s\n" "M" "lp"
    "DT min" "DT avg" "t" "BaF min" "BaF avg" "t" "BW min" "BW avg" "t";
  let corpus = Zoo.sst_small_corpus () in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples ~max_len:7 model corpus ~n:scale.examples in
      List.iter
        (fun (p, pname) ->
          let cell v =
            radius_stats v program ~p ~iters:scale.iters examples ~positions:1
          in
          let dt = cell deept_fast and bf = cell crown_baf and bw = cell crown_backward in
          Printf.printf
            "%-3d %-4s | %9s %9s %6.2f | %9s %9s %6.2f | %9s %9s %6.2f\n%!" m
            pname (fmt_r dt.min_r) (fmt_r dt.avg_r)
            (dt.time /. float_of_int (max 1 dt.queries))
            (fmt_r bf.min_r) (fmt_r bf.avg_r)
            (bf.time /. float_of_int (max 1 bf.queries))
            (fmt_r bw.min_r) (fmt_r bw.avg_r)
            (bw.time /. float_of_int (max 1 bw.queries)))
        [ (Deept.Lp.L1, "l1"); (Deept.Lp.L2, "l2") ])
    (layer_models "small")

(* ------------------------------------------------------------------ *)
(* Table 6: dual-norm application order ablation (Section 6.5).          *)

let table6 scale =
  table_header "Table 6: dual-norm order in the fast dot product"
    "applying the dual norm to the linf terms first vs the lp terms first";
  Printf.printf "%-3s %-4s | %9s %9s %6s | %9s %9s %6s | %s\n" "M" "lp"
    "linf-1st" "avg" "t" "lp-1st" "avg" "t" "change";
  let corpus = Zoo.sst_corpus () in
  let cfg_linf = Deept.Config.fast in
  let cfg_lp = { Deept.Config.fast with Deept.Config.order = Deept.Config.Lp_first } in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples model corpus ~n:scale.examples in
      List.iter
        (fun (p, pname) ->
          let a =
            radius_stats (deept_verifier "linf-first" cfg_linf) program ~p
              ~iters:scale.iters examples ~positions:scale.positions
          in
          let b =
            radius_stats (deept_verifier "lp-first" cfg_lp) program ~p
              ~iters:scale.iters examples ~positions:scale.positions
          in
          let change =
            if b.avg_r > 0.0 then 100.0 *. ((a.avg_r /. b.avg_r) -. 1.0) else nan
          in
          Printf.printf "%-3d %-4s | %9s %9s %6.2f | %9s %9s %6.2f | %+.2f%%\n%!"
            m pname (fmt_r a.min_r) (fmt_r a.avg_r)
            (a.time /. float_of_int (max 1 a.queries))
            (fmt_r b.min_r) (fmt_r b.avg_r)
            (b.time /. float_of_int (max 1 b.queries))
            change)
        [ (Deept.Lp.L1, "l1"); (Deept.Lp.L2, "l2") ])
    (layer_models "sst")

(* ------------------------------------------------------------------ *)
(* Table 7: standard layer normalization (divide by std).                *)

let table7 scale =
  table_header "Table 7: Transformers with standard layer normalization"
    "both verifiers run the sqrt/recip decomposition of the std division";
  Printf.printf "%-3s %-5s | %9s %9s %7s | %9s %9s %7s | %s\n" "M" "lp"
    "DT min" "DT avg" "DT t(s)" "BaF min" "BaF avg" "BaF t" "ratio";
  let corpus = Zoo.sst_corpus () in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples model corpus ~n:scale.examples in
      List.iter
        (fun (p, pname) ->
          let dt =
            radius_stats deept_fast program ~p ~iters:scale.iters examples
              ~positions:scale.positions
          in
          let bf =
            radius_stats crown_baf program ~p ~iters:scale.iters examples
              ~positions:scale.positions
          in
          Printf.printf "%-3d %-5s | %9s %9s %7.2f | %9s %9s %7.2f | %s\n%!" m
            pname (fmt_r dt.min_r) (fmt_r dt.avg_r)
            (dt.time /. float_of_int (max 1 dt.queries))
            (fmt_r bf.min_r) (fmt_r bf.avg_r)
            (bf.time /. float_of_int (max 1 bf.queries))
            (fmt_ratio dt.avg_r bf.avg_r))
        norms)
    (layer_models "std")

(* ------------------------------------------------------------------ *)
(* Table 8: certification against synonym attacks (threat model T2).     *)

let synonym_sentences model corpus syn ~min_combos ~n =
  let program = Nn.Model.to_ir model in
  List.filteri (fun i _ -> i < n)
    (List.filter
       (fun (toks, label) ->
         Text.Synonyms.count_combinations syn toks >= min_combos
         && Nn.Forward.predict program (Nn.Model.embed_tokens model toks) = label)
       corpus.Text.Corpus.test)

let table8 scale =
  table_header "Table 8: synonym-attack certification (noise-trained 3-layer)"
    "each word may be replaced by any of its synonyms simultaneously";
  let model = load "robust_3" in
  let corpus = Zoo.sst_corpus () in
  let entry = Zoo.entry "robust_3" in
  Printf.printf "network accuracy: %.3f\n" (Zoo.test_accuracy model entry);
  let syn = Zoo.synonyms_for model corpus in
  let program = Nn.Model.to_ir model in
  let sentences =
    synonym_sentences model corpus syn ~min_combos:16 ~n:(scale.examples * 8)
  in
  let run label certify =
    let t0 = Unix.gettimeofday () in
    let certified =
      List.fold_left (fun acc s -> if certify s then acc + 1 else acc) 0 sentences
    in
    let dt = Unix.gettimeofday () -. t0 in
    let n = List.length sentences in
    Printf.printf "%-12s | certified %d / %d (%.0f%%) | %.2f s/sentence\n%!" label
      certified n
      (100.0 *. float_of_int certified /. float_of_int (max 1 n))
      (dt /. float_of_int (max 1 n))
  in
  run "DeepT-Fast" (fun (toks, label) ->
      let x = Nn.Model.embed_tokens model toks in
      let subs = Text.Synonyms.substitutions syn model toks in
      Deept.Certify.certify_synonyms Deept.Config.fast program x subs
        ~true_class:label);
  run "CROWN-BaF" (fun (toks, label) ->
      let x = Nn.Model.embed_tokens model toks in
      let subs = Text.Synonyms.substitutions syn model toks in
      let g = Linrelax.Verify.graph_of program ~seq_len:(Mat.rows x) in
      Linrelax.Verify.certify ~verifier:Linrelax.Verify.Baf g
        (Linrelax.Verify.region_synonym_box x subs)
        ~true_class:label)

(* ------------------------------------------------------------------ *)
(* Table 9: an example certifiable sentence with its synonyms and the
   enumeration-cost comparison.                                          *)

let table9 _scale =
  table_header "Table 9: example certifiable sentence under synonym attack" "";
  let model = load "robust_3" in
  let corpus = Zoo.sst_corpus () in
  let syn = Zoo.synonyms_for model corpus in
  let program = Nn.Model.to_ir model in
  (* the certified sentence with the most combinations *)
  let candidates = synonym_sentences model corpus syn ~min_combos:16 ~n:100 in
  let best = ref None in
  List.iter
    (fun (toks, label) ->
      let x = Nn.Model.embed_tokens model toks in
      let subs = Text.Synonyms.substitutions syn model toks in
      if
        Deept.Certify.certify_synonyms Deept.Config.fast program x subs
          ~true_class:label
      then begin
        let combos = Text.Synonyms.count_combinations syn toks in
        match !best with
        | Some (c, _, _) when c >= combos -> ()
        | _ -> best := Some (combos, toks, label)
      end)
    candidates;
  match !best with
  | None -> Printf.printf "no certifiable sentence found\n"
  | Some (combos, toks, label) ->
      Printf.printf "%-14s %-10s %s\n" "token" "#synonyms" "synonyms";
      Array.iter
        (fun tok ->
          let names = Text.Synonyms.names syn corpus tok in
          Printf.printf "%-14s %-10d %s\n" (Text.Corpus.word corpus tok)
            (List.length names)
            (if names = [] then "(none)" else String.concat ", " names))
        toks;
      let x = Nn.Model.embed_tokens model toks in
      let subs = Text.Synonyms.substitutions syn model toks in
      let t0 = Unix.gettimeofday () in
      let ok =
        Deept.Certify.certify_synonyms Deept.Config.fast program x subs
          ~true_class:label
      in
      let t_cert = Unix.gettimeofday () -. t0 in
      (* measured per-classification cost -> extrapolated enumeration cost *)
      let t0 = Unix.gettimeofday () in
      let reps = 200 in
      for _ = 1 to reps do
        ignore (Nn.Forward.predict program x)
      done;
      let per_forward = (Unix.gettimeofday () -. t0) /. float_of_int reps in
      let t_enum = per_forward *. float_of_int combos in
      let breakeven = t_cert /. Float.max per_forward 1e-12 in
      Printf.printf
        "\n%d combinations; certified: %b in %.3f s; enumerating them: ~%.3f s.\n\
         One abstract run costs as much as ~%.0f classifications, so any\n\
         sentence beyond that many combinations is cheaper to certify than to\n\
         enumerate; the paper's 23M-combination sentence would need ~%.0f s of\n\
         enumeration against the same %.3f s certification (%.0fx).\n"
        combos ok t_cert t_enum breakeven
        (per_forward *. 23_000_000.0)
        t_cert
        (per_forward *. 23_000_000.0 /. Float.max t_cert 1e-9)

(* ------------------------------------------------------------------ *)
(* Table 10 (A.2): complete verification vs the Multi-norm Zonotope on a
   small fully-connected network.                                        *)

let table10 scale =
  table_header
    "Table 10 (A.2): complete BaB verifier (GeoCert stand-in) vs DeepT, l2"
    "tiny ReLU network on 4 quadrant-mean features of the synthetic 1-vs-7 task";
  let rng = Rng.create 31415 in
  let imgs = Zoo.vision_data () in
  let data =
    List.map
      (fun (i : Vision.Images.image) -> (Vision.Images.features i, i.Vision.Images.label))
      imgs
  in
  let train = List.filteri (fun i _ -> i < 400) data in
  let eval = List.filteri (fun i _ -> i >= 400) data in
  let mlp = Nn.Mlp.create rng ~dims:[ 4; 10; 50; 10; 2 ] in
  Nn.Mlp.train ~epochs:20 ~lr:3e-3 ~rng mlp train;
  let program = Nn.Mlp.to_ir mlp in
  Printf.printf "network: 4-10-50-10-2, accuracy %.3f\n"
    (Nn.Train.accuracy_ir program eval);
  let examples =
    List.filteri (fun i _ -> i < scale.examples)
      (List.filter (fun (x, l) -> Nn.Forward.predict program x = l) eval)
  in
  let cfg = { Deept.Config.default with Deept.Config.reduction_k = 0 } in
  let run label radius_of =
    let t0 = Unix.gettimeofday () in
    let radii = List.map radius_of examples in
    let dt = Unix.gettimeofday () -. t0 in
    let n = float_of_int (List.length radii) in
    Printf.printf "%-18s | min %.5f  avg %.5f | %.2f s total\n%!" label
      (List.fold_left Float.min infinity radii)
      (List.fold_left ( +. ) 0.0 radii /. n)
      dt
  in
  run "Complete (BaB)" (fun (x, l) ->
      Complete.Bab.certified_radius ~iters:scale.iters ~max_boxes:40_000 program
        ~p:Deept.Lp.L2 ~center:(Mat.row x 0) ~true_class:l ());
  run "DeepT zonotope" (fun (x, l) ->
      Deept.Certify.certified_radius cfg program ~p:Deept.Lp.L2 x ~word:0
        ~true_class:l ~iters:scale.iters ())

(* ------------------------------------------------------------------ *)
(* Table 11 (A.3): Vision Transformer certification.                     *)

let table11 scale =
  table_header "Table 11 (A.3): Vision Transformer certification"
    "lp balls over all pixels, through patch embedding and encoder";
  let model = load "vit_1" in
  let entry = Zoo.entry "vit_1" in
  Printf.printf "ViT accuracy: %.3f\n" (Zoo.test_accuracy model entry);
  let program = Nn.Model.to_ir model in
  let imgs = List.filteri (fun i _ -> i >= 400) (Zoo.vision_data ()) in
  let examples =
    List.filteri (fun i _ -> i < scale.examples)
      (List.filter
         (fun (im : Vision.Images.image) ->
           Nn.Forward.predict program (Vision.Images.patches im)
           = im.Vision.Images.label)
         imgs)
  in
  List.iter
    (fun (p, pname) ->
      (* pixel-level linf radii are far smaller than l1/l2 ones; bracket
         each norm's binary search accordingly *)
      let hi = match p with Deept.Lp.Linf -> 0.03 | Deept.Lp.L2 -> 0.4 | Deept.Lp.L1 -> 1.0 in
      let t0 = Unix.gettimeofday () in
      let radii =
        List.map
          (fun (im : Vision.Images.image) ->
            let x = Vision.Images.patches im in
            Deept.Certify.max_radius ~hi ~iters:scale.iters (fun radius ->
                radius > 0.0
                && Deept.Certify.certify Deept.Config.fast program
                     (Deept.Region.lp_ball_all ~p x ~radius)
                     ~true_class:im.Vision.Images.label))
          examples
      in
      let dt = Unix.gettimeofday () -. t0 in
      let n = float_of_int (List.length radii) in
      Printf.printf "%-5s | min %.5f  avg %.5f | %.2f s/image\n%!" pname
        (List.fold_left Float.min infinity radii)
        (List.fold_left ( +. ) 0.0 radii /. n)
        (dt /. n))
    norms

(* ------------------------------------------------------------------ *)
(* Table 13 (A.5): softmax-sum refinement ablation.                      *)

let table13 scale =
  table_header "Table 13 (A.5): effect of the softmax-sum zonotope refinement"
    "DeepT-Fast with and without the sum-constraint refinement";
  Printf.printf "%-3s %-5s | %9s %6s | %9s %6s | %s\n" "M" "lp" "with" "t"
    "without" "t" "change";
  let corpus = Zoo.sst_corpus () in
  let cfg_on = Deept.Config.fast in
  let cfg_off = { Deept.Config.fast with Deept.Config.refine_softmax_sum = false } in
  List.iter
    (fun (m, name) ->
      let model = load name in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples model corpus ~n:scale.examples in
      List.iter
        (fun (p, pname) ->
          let a =
            radius_stats (deept_verifier "refine" cfg_on) program ~p
              ~iters:scale.iters examples ~positions:scale.positions
          in
          let b =
            radius_stats (deept_verifier "plain" cfg_off) program ~p
              ~iters:scale.iters examples ~positions:scale.positions
          in
          let change =
            if b.avg_r > 0.0 then 100.0 *. ((a.avg_r /. b.avg_r) -. 1.0) else nan
          in
          Printf.printf "%-3d %-5s | %9s %6.2f | %9s %6.2f | %+.2f%%\n%!" m pname
            (fmt_r a.avg_r)
            (a.time /. float_of_int (max 1 a.queries))
            (fmt_r b.avg_r)
            (b.time /. float_of_int (max 1 b.queries))
            change)
        norms)
    (layer_models "sst")

(* ------------------------------------------------------------------ *)
(* Table 14 (A.6): the combined verifier (Precise last layer only).      *)

let table14 scale =
  table_header "Table 14 (A.6): combined DeepT (precise dot product in the last layer)"
    "vs CROWN-Backward, linf, downscaled networks";
  Printf.printf "%-3s | %9s %9s %6s | %9s %9s %6s\n" "M" "Comb min" "avg" "t"
    "BW min" "avg" "t";
  let corpus = Zoo.sst_small_corpus () in
  List.iter
    (fun m ->
      let model = load ("small_" ^ string_of_int m) in
      let program = Nn.Model.to_ir model in
      let examples = pick_examples ~max_len:7 model corpus ~n:scale.examples in
      let c =
        radius_stats deept_combined program ~p:Deept.Lp.Linf ~iters:scale.iters
          examples ~positions:1
      in
      let bw =
        radius_stats crown_backward program ~p:Deept.Lp.Linf ~iters:scale.iters
          examples ~positions:1
      in
      Printf.printf "%-3d | %9s %9s %6.2f | %9s %9s %6.2f\n%!" m (fmt_r c.min_r)
        (fmt_r c.avg_r)
        (c.time /. float_of_int (max 1 c.queries))
        (fmt_r bw.min_r) (fmt_r bw.avg_r)
        (bw.time /. float_of_int (max 1 bw.queries)))
    [ 6; 12 ]

(* ------------------------------------------------------------------ *)
(* Figure 4: the Multi-norm Zonotope example from the paper.             *)

let figure4 _scale =
  table_header "Figure 4: a Multi-norm Zonotope with two variables"
    "x = 4 + p1 + p2 - e1 + 2 e2,  y = 3 + p1 + p2 + e1 + e2,  ||p||2 <= 1";
  let center = Mat.of_rows [| [| 4.0; 3.0 |] |] in
  let phi = Mat.of_rows [| [| 1.0; 1.0 |]; [| 1.0; 1.0 |] |] in
  let eps = Mat.of_rows [| [| -1.0; 2.0 |]; [| 1.0; 1.0 |] |] in
  let z = Deept.Zonotope.make ~p:Deept.Lp.L2 ~center ~phi ~eps in
  let b = Deept.Zonotope.bounds z in
  Printf.printf "bounds: x in [%.4f, %.4f], y in [%.4f, %.4f]\n"
    (Mat.get b.Interval.Imat.lo 0 0) (Mat.get b.Interval.Imat.hi 0 0)
    (Mat.get b.Interval.Imat.lo 0 1) (Mat.get b.Interval.Imat.hi 0 1);
  (* the classical sub-zonotope obtained by dropping the phi symbols *)
  let zc =
    Deept.Zonotope.make ~p:Deept.Lp.L2 ~center
      ~phi:(Mat.create 2 0) ~eps
  in
  let bc = Deept.Zonotope.bounds zc in
  Printf.printf "classical part: x in [%.4f, %.4f], y in [%.4f, %.4f]\n"
    (Mat.get bc.Interval.Imat.lo 0 0) (Mat.get bc.Interval.Imat.hi 0 0)
    (Mat.get bc.Interval.Imat.lo 0 1) (Mat.get bc.Interval.Imat.hi 0 1);
  (* ASCII density plot of sampled points (the figure's shaded region) *)
  let rng = Rng.create 4 in
  let w = 56 and h = 20 in
  let grid = Array.make_matrix h w ' ' in
  let xmin = 0.0 and xmax = 8.5 and ymin = 0.0 and ymax = 6.5 in
  let mark m (x, y) =
    let cx = int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (w - 1)) in
    let cy = int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (h - 1)) in
    if cx >= 0 && cx < w && cy >= 0 && cy < h then begin
      let row = h - 1 - cy in
      if grid.(row).(cx) = ' ' || m = '#' then grid.(row).(cx) <- m
    end
  in
  for _ = 1 to 20000 do
    let s = Deept.Zonotope.sample rng z in
    mark '.' (Mat.get s 0 0, Mat.get s 0 1)
  done;
  for _ = 1 to 20000 do
    let s = Deept.Zonotope.sample rng zc in
    mark '#' (Mat.get s 0 0, Mat.get s 0 1)
  done;
  Array.iter (fun row -> Printf.printf "|%s|\n" (String.init w (Array.get row))) grid;
  Printf.printf "('#' = classical zonotope obtained by dropping the phi symbols)\n"
