(* Kernel-benchmark regression gate.

     dune exec bench/kernels.exe -- --json   # rotates the old json, writes new
     dune exec bench/check_regress.exe       # compares the two

   Loads BENCH_kernels.json and the rotated BENCH_kernels.prev.json and
   exits non-zero when any shape's blocked or blocked+parallel kernel got
   more than 25% slower than the previous run. With no previous snapshot
   (first run, fresh checkout) there is nothing to compare and the gate
   passes trivially. *)

let tolerance = 0.25

(* The benchmark writes one flat object per line; pull a field out of a
   line without a general JSON parser (the repo intentionally has none). *)
let find_sub line pat =
  let ll = String.length line and pl = String.length pat in
  let rec go i = if i + pl > ll then None
    else if String.sub line i pl = pat then Some (i + pl)
    else go (i + 1)
  in
  go 0

let num_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let ll = String.length line in
      while
        !stop < ll
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let str_field line key =
  match find_sub line (Printf.sprintf "\"%s\":\"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

(* name -> (blocked_ns, parallel_ns) *)
let load path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match (str_field line "name", num_field line "blocked_ns",
              num_field line "parallel_ns")
       with
       | Some name, Some b, Some p -> rows := (name, (b, p)) :: !rows
       | _ -> () (* the enclosing "[" / "]" lines *)
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let cur_path = ref "BENCH_kernels.json" in
  Arg.parse
    [ ("--current", Arg.Set_string cur_path, "PATH  current snapshot") ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "check_regress [--current PATH]";
  let prev_path = Filename.remove_extension !cur_path ^ ".prev.json" in
  if not (Sys.file_exists !cur_path) then begin
    Printf.eprintf
      "check_regress: %s not found — run `dune exec bench/kernels.exe -- --json` first\n"
      !cur_path;
    exit 1
  end;
  if not (Sys.file_exists prev_path) then begin
    Printf.printf "check_regress: no previous snapshot (%s); nothing to compare\n"
      prev_path;
    exit 0
  end;
  let cur = load !cur_path and prev = load prev_path in
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (name, (pb, pp)) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "  %-26s dropped from current run\n" name
      | Some (cb, cp) ->
          incr compared;
          let check what prev_ns cur_ns =
            let ratio = cur_ns /. prev_ns in
            let flag = ratio > 1.0 +. tolerance in
            if flag then incr failures;
            Printf.printf "  %-26s %-9s %10.0f -> %10.0f ns  (%+.1f%%)%s\n" name
              what prev_ns cur_ns
              ((ratio -. 1.0) *. 100.0)
              (if flag then "  REGRESSION" else "")
          in
          check "blocked" pb cb;
          check "block+par" pp cp)
    prev;
  if !compared = 0 then
    Printf.printf "check_regress: no common shapes between snapshots\n"
  else if !failures > 0 then begin
    Printf.printf "%d kernel timing(s) regressed by more than %.0f%%\n" !failures
      (tolerance *. 100.0);
    exit 1
  end
  else Printf.printf "no kernel regressed by more than %.0f%%\n" (tolerance *. 100.0)
