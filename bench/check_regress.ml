(* Benchmark regression gate.

     dune exec bench/kernels.exe -- --json   # rotates the old json, writes new
     dune exec bench/check_regress.exe       # compares the two

   Loads a benchmark snapshot (BENCH_kernels.json or BENCH_radius.json)
   and its rotated *.prev.json and exits non-zero when any row's timing
   metric got more than 25% slower than the previous run. The metrics
   compared are whichever of the known timing keys each row carries
   (blocked_ns / parallel_ns for the kernel bench, wall_s for the radius
   bench), so one gate binary covers every snapshot format. With no
   previous snapshot (first run, fresh checkout) there is nothing to
   compare and the gate passes trivially. *)

(* Default for the kernel bench, whose single-process timings are
   stable. Gates over fork-based benchmarks (the radius search) pass a
   wider --tolerance: on a machine with fewer cores than probes the
   forked workers time-share, and their wall-clock swings far more
   between runs than any in-process kernel. *)
let tolerance = ref 0.25

(* Timing fields compared when present; lower is better for all,
   compared as a ratio against the previous run. *)
let metrics =
  [
    "blocked_ns";
    "parallel_ns";
    "wall_s";
    "p95_ms";
    (* the fused-kernel PR's rows: affine-fusion win and the job
       transport cost (Marshal pipe vs shared-memory descriptors) *)
    "unfused_ns";
    "fused_ns";
    "marshal_ns";
    "shm_ns";
    (* the sparsity PR's rows: blocked dense vs ?cols tile-skipping on
       banded late-pipeline coefficient blocks *)
    "dense_ns";
    "sparse_ns";
    (* the refine bench's base arm (plain Precise radius search; its
       refine arm reports as wall_s). Keys match with the leading
       quote, so "wall_s" never aliases into this one. *)
    "base_wall_s";
  ]

(* Rate fields in [0, 1] (the service bench's shed and cache-hit
   rates): a ratio is meaningless when the previous value is 0, so
   these are compared by absolute difference instead — either
   direction, since a shed rate that collapses to 0 means the overload
   phase stopped overloading (a broken benchmark, not an improvement). *)
let abs_metrics = [ "shed_rate"; "hit_rate" ]
let abs_tolerance = ref 0.1

(* The benchmark writes one flat object per line; pull a field out of a
   line without a general JSON parser (the repo intentionally has none). *)
let find_sub line pat =
  let ll = String.length line and pl = String.length pat in
  let rec go i = if i + pl > ll then None
    else if String.sub line i pl = pat then Some (i + pl)
    else go (i + 1)
  in
  go 0

let num_field line key =
  match find_sub line (Printf.sprintf "\"%s\":" key) with
  | None -> None
  | Some start ->
      let stop = ref start in
      let ll = String.length line in
      while
        !stop < ll
        && (match line.[!stop] with
           | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
           | _ -> false)
      do
        incr stop
      done;
      float_of_string_opt (String.sub line start (!stop - start))

let str_field line key =
  match find_sub line (Printf.sprintf "\"%s\":\"" key) with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

type kind = Relative | Absolute

(* name -> (metric, kind, value) list, for the known metrics the row
   carries *)
let load path =
  let ic = open_in path in
  let rows = ref [] in
  (try
     while true do
       let line = input_line ic in
       match str_field line "name" with
       | None -> () (* the enclosing "[" / "]" lines *)
       | Some name ->
           let pick kind names =
             List.filter_map
               (fun m ->
                 Option.map (fun v -> (m, kind, v)) (num_field line m))
               names
           in
           let vals = pick Relative metrics @ pick Absolute abs_metrics in
           if vals <> [] then rows := (name, vals) :: !rows
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !rows

let () =
  let cur_path = ref "BENCH_kernels.json" in
  Arg.parse
    [
      ("--current", Arg.Set_string cur_path, "PATH  current snapshot");
      ( "--tolerance",
        Arg.Set_float tolerance,
        "FRAC  allowed slowdown fraction (default 0.25)" );
      ( "--abs-tolerance",
        Arg.Set_float abs_tolerance,
        "DELTA  allowed absolute drift of rate metrics (default 0.1)" );
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "check_regress [--current PATH] [--tolerance FRAC]";
  let prev_path = Filename.remove_extension !cur_path ^ ".prev.json" in
  if not (Sys.file_exists !cur_path) then begin
    Printf.eprintf
      "check_regress: %s not found — run `dune exec bench/kernels.exe -- --json` first\n"
      !cur_path;
    exit 1
  end;
  (* Intra-row invariant of the refine bench, checked on the current
     snapshot alone (no previous run needed): a refined radius below the
     base radius means the refinement arm regressed the very search it
     extends. refine.exe gates this at write time; re-checking the
     committed snapshot here means a hand-edited or stale baseline
     cannot pass silently. *)
  let invariant_failures = ref 0 in
  let ic = open_in !cur_path in
  (try
     while true do
       let line = input_line ic in
       match
         ( str_field line "name",
           num_field line "radius",
           num_field line "refined_radius" )
       with
       | Some name, Some r, Some rr when rr < r ->
           Printf.printf
             "  %-26s refined_radius %.17g < radius %.17g  INVARIANT\n" name rr
             r;
           incr invariant_failures
       | _ -> ()
     done
   with End_of_file -> ());
  close_in ic;
  if !invariant_failures > 0 then begin
    Printf.printf "%d row(s) violate refined_radius >= radius\n"
      !invariant_failures;
    exit 1
  end;
  if not (Sys.file_exists prev_path) then begin
    Printf.printf "check_regress: no previous snapshot (%s); nothing to compare\n"
      prev_path;
    exit 0
  end;
  let cur = load !cur_path and prev = load prev_path in
  let failures = ref 0 in
  let compared = ref 0 in
  List.iter
    (fun (name, pvals) ->
      match List.assoc_opt name cur with
      | None -> Printf.printf "  %-26s dropped from current run\n" name
      | Some cvals ->
          List.iter
            (fun (metric, kind, pv) ->
              match
                List.find_opt (fun (m, _, _) -> m = metric) cvals
              with
              | None ->
                  Printf.printf "  %-26s %-11s dropped from current run\n" name
                    metric
              | Some (_, _, cv) -> (
                  incr compared;
                  match kind with
                  | Relative ->
                      let ratio = cv /. pv in
                      let flag = ratio > 1.0 +. !tolerance in
                      if flag then incr failures;
                      Printf.printf "  %-26s %-11s %12g -> %12g  (%+.1f%%)%s\n"
                        name metric pv cv
                        ((ratio -. 1.0) *. 100.0)
                        (if flag then "  REGRESSION" else "")
                  | Absolute ->
                      let drift = Float.abs (cv -. pv) in
                      let flag = drift > !abs_tolerance in
                      if flag then incr failures;
                      Printf.printf
                        "  %-26s %-11s %12g -> %12g  (drift %.3f)%s\n" name
                        metric pv cv drift
                        (if flag then "  REGRESSION" else "")))
            pvals)
    prev;
  if !compared = 0 then
    Printf.printf "check_regress: no common rows between snapshots\n"
  else if !failures > 0 then begin
    Printf.printf "%d timing(s) regressed by more than %.0f%%\n" !failures
      (!tolerance *. 100.0);
    exit 1
  end
  else Printf.printf "no timing regressed by more than %.0f%%\n" (!tolerance *. 100.0)
