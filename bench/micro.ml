(* Bechamel micro-benchmarks of the verifier kernels — one per table
   family, so regressions in the operations behind each experiment are
   visible in isolation:

   - zonotope affine map (all tables: every Linear/Center_norm op)
   - fast vs precise dot product (Tables 1-5, 12, 14)
   - softmax transformer, with and without refinement (Tables 1-3, 13)
   - noise-symbol reduction (Section 5.1 knob behind Tables 1-3)
   - CROWN backsubstitution (Tables 1-5, 7, 12, 14 baselines)
   - complete BaB verification step (Table 10)                        *)

open Bechamel
open Toolkit
open Tensor

let rng = Rng.create 99

let mk_zono ~vars ~eps =
  let ctx = Deept.Zonotope.ctx () in
  ignore (Deept.Zonotope.alloc_eps ctx eps);
  let z =
    Deept.Zonotope.make ~p:Deept.Lp.L2
      ~center:(Mat.random_gaussian rng 4 (vars / 4) 1.0)
      ~phi:(Mat.random_gaussian rng vars 8 0.2)
      ~eps:(Mat.random_gaussian rng vars eps 0.2)
  in
  (ctx, z)

let test_affine =
  let _, z = mk_zono ~vars:64 ~eps:128 in
  let w = Mat.random_gaussian rng 16 16 0.5 in
  let b = Array.make 16 0.0 in
  Test.make ~name:"zonotope linear_map 4x16 e=128"
    (Staged.stage (fun () -> ignore (Deept.Zonotope.linear_map z w b)))

let test_dot_fast =
  Test.make ~name:"dot product fast 4x8 . 8x4 e=128"
    (Staged.stage (fun () ->
         let ctx, a = mk_zono ~vars:32 ~eps:128 in
         let b =
           Deept.Zonotope.make ~p:Deept.Lp.L2
             ~center:(Mat.random_gaussian rng 8 4 1.0)
             ~phi:(Mat.random_gaussian rng 32 8 0.2)
             ~eps:(Mat.random_gaussian rng 32 128 0.2)
         in
         ignore (Deept.Dot.matmul_zz ~precise:false ctx a b)))

let test_dot_precise =
  Test.make ~name:"dot product precise 4x8 . 8x4 e=128"
    (Staged.stage (fun () ->
         let ctx, a = mk_zono ~vars:32 ~eps:128 in
         let b =
           Deept.Zonotope.make ~p:Deept.Lp.L2
             ~center:(Mat.random_gaussian rng 8 4 1.0)
             ~phi:(Mat.random_gaussian rng 32 8 0.2)
             ~eps:(Mat.random_gaussian rng 32 128 0.2)
         in
         ignore (Deept.Dot.matmul_zz ~precise:true ctx a b)))

let test_softmax refine =
  let name = if refine then "softmax row n=8 + refinement" else "softmax row n=8" in
  Test.make ~name
    (Staged.stage (fun () ->
         let ctx, z = mk_zono ~vars:8 ~eps:64 in
         let row = Deept.Zonotope.reshape_value z ~rows:1 ~cols:8 in
         ignore
           (Deept.Softmax_t.apply_row ~form:Deept.Config.Stable ~refine ctx row)))

let test_reduction =
  Test.make ~name:"DecorrelateMin_k 64 vars 512->128"
    (Staged.stage (fun () ->
         let ctx, z = mk_zono ~vars:64 ~eps:512 in
         ignore (Deept.Reduction.decorrelate_min_k ctx z 128)))

(* Per-op budget checkpoints (deadline + symbol cap + poison scan) run on
   every propagation; these two measure their overhead against the same
   end-to-end propagation with no budget configured. *)
let propagate_setup =
  lazy
    (let model = Helpers_model.tiny () in
     let program = Nn.Model.to_ir model in
     let x = Nn.Model.embed_tokens model [| 0; 3; 5; 2 |] in
     let region = Deept.Region.lp_ball ~p:Deept.Lp.L2 x ~word:1 ~radius:0.01 in
     (program, region))

let test_propagate_unbudgeted =
  Test.make ~name:"propagate fast (1 layer, n=4)"
    (Staged.stage (fun () ->
         let program, region = Lazy.force propagate_setup in
         ignore (Deept.Propagate.run Deept.Config.fast program region)))

let test_propagate_budgeted =
  let cfg = Deept.Config.with_budget ~deadline:60.0 ~max_eps:100_000 Deept.Config.fast in
  Test.make ~name:"propagate fast + budget checks"
    (Staged.stage (fun () ->
         let program, region = Lazy.force propagate_setup in
         ignore (Deept.Propagate.run cfg program region)))

let crown_setup =
  lazy
    (let model = Helpers_model.tiny () in
     let program = Nn.Model.to_ir model in
     let x = Nn.Model.embed_tokens model [| 0; 3; 5; 2 |] in
     let g = Linrelax.Verify.graph_of program ~seq_len:4 in
     let region =
       Linrelax.Verify.region_word_ball ~p:Deept.Lp.L2 x ~word:1 ~radius:0.01
     in
     (g, region))

let test_crown_backward =
  Test.make ~name:"CROWN-Backward margin (1 layer, n=4)"
    (Staged.stage (fun () ->
         let g, region = Lazy.force crown_setup in
         ignore
           (Linrelax.Verify.margin ~verifier:Linrelax.Verify.Backward g region
              ~true_class:0)))

let test_bab =
  let prog =
    lazy
      (let rng = Rng.create 7 in
       let mlp = Nn.Mlp.create rng ~dims:[ 4; 8; 8; 2 ] in
       Nn.Mlp.to_ir mlp)
  in
  Test.make ~name:"complete BaB verify r=0.05 (4-8-8-2)"
    (Staged.stage (fun () ->
         ignore
           (Complete.Bab.verify (Lazy.force prog) ~p:Deept.Lp.L2
              ~center:[| 0.3; 0.1; 0.4; 0.2 |] ~radius:0.05 ~true_class:0)))

let benchmarks =
  Test.make_grouped ~name:"kernels"
    [
      test_affine;
      test_dot_fast;
      test_dot_precise;
      test_softmax false;
      test_softmax true;
      test_reduction;
      test_propagate_unbudgeted;
      test_propagate_budgeted;
      test_crown_backward;
      test_bab;
    ]

let run () =
  let cfg = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.6) ~kde:(Some 300) () in
  let instances = Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances benchmarks in
  let results =
    List.map (fun i -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) i raw) instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]) instances results in
  Printf.printf "\n%s\nMicro-benchmarks (ns per run, monotonic clock)\n%s\n"
    Common.hr Common.hr;
  Hashtbl.iter
    (fun name tbl ->
      Hashtbl.iter
        (fun test result ->
          match Bechamel.Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "%-45s %12.0f ns (%s)\n" test est name
          | _ -> ())
        tbl)
    results
