(* Reproducible benchmark of the certifyd service path: a forked daemon
   serving real certification jobs on the recorded sst_3 model.

     dune exec bench/daemon.exe -- --data data          # table on stdout
     dune exec bench/daemon.exe -- --data data --json   # + BENCH_service.json

   Three phases over one daemon:

   - steady: a closed loop with as many outstanding requests as the
     daemon has workers — every request must come back as a result
     (shedding at steady load is a bug, exit 4), p50/p95/p99 latency
     recorded;
   - cache replay: the same requests again — every one must be a cache
     hit with a verdict bit-identical to the cold run (exit 4
     otherwise), hit rate recorded;
   - overload: a burst of distinct (cache-missing) requests several
     times the admission cap, fired open-loop — the daemon must shed
     with `overloaded' rather than queue without bound (exit 4 if the
     shed rate is under 25%), shed rate recorded.

   When a previous BENCH_service.json exists it is rotated to
   BENCH_service.prev.json so check_regress.exe can compare runs: p95
   latency relatively (lower is better), shed and hit rates by absolute
   drift. *)

let percentile xs q =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then 0.0
  else a.(min (n - 1) (max 0 (int_of_float (ceil (q *. float_of_int n)) - 1)))

type phase = {
  name : string;
  lat_ms : float list;  (** client-observed latency per completed request *)
  shed : int;
  hits : int;
  total : int;
}

let json_of_phase ~jobs ~workers ~queue_cap p =
  let pc q = percentile p.lat_ms q in
  match p.name with
  | "service_steady" ->
      Printf.sprintf
        "{\"name\":\"service_steady\",\"jobs\":%d,\"workers\":%d,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f}"
        jobs workers (pc 0.50) (pc 0.95) (pc 0.99)
  | "service_cache" ->
      Printf.sprintf
        "{\"name\":\"service_cache\",\"jobs\":%d,\"hit_rate\":%.4f,\"hit_p95_ms\":%.3f}"
        p.total
        (float_of_int p.hits /. float_of_int (max 1 p.total))
        (pc 0.95)
  | _ ->
      Printf.sprintf
        "{\"name\":\"service_overload\",\"burst\":%d,\"queue_cap\":%d,\"shed_rate\":%.4f}"
        p.total queue_cap
        (float_of_int p.shed /. float_of_int (max 1 p.total))

let write_json path rows =
  if Sys.file_exists path then begin
    let prev = Filename.remove_extension path ^ ".prev.json" in
    (try Sys.remove prev with Sys_error _ -> ());
    Sys.rename path prev;
    Printf.printf "rotated previous %s -> %s\n" path prev
  end;
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      output_string oc r;
      if i < List.length rows - 1 then output_string oc ",";
      output_string oc "\n")
    rows;
  output_string oc "]\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

let () =
  let data = ref "data" in
  let workers = ref 2 in
  let steady = ref 12 in
  let burst = ref 48 in
  let queue_cap = ref 4 in
  let json = ref false in
  let out = ref "BENCH_service.json" in
  Arg.parse
    [
      ("--data", Arg.Set_string data, "DIR  model directory (default data)");
      ("--workers", Arg.Set_int workers, "N  daemon worker processes (default 2)");
      ("--steady", Arg.Set_int steady, "N  steady-phase requests (default 12)");
      ("--burst", Arg.Set_int burst, "N  overload-phase burst size (default 48)");
      ("--queue-cap", Arg.Set_int queue_cap, "N  daemon admission cap (default 4)");
      ("--json", Arg.Set json, "  write the results to --out as JSON");
      ("--out", Arg.Set_string out, "PATH  JSON output path (default BENCH_service.json)");
    ]
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "daemon [--data DIR] [--json] [--out PATH]";
  Zoo.data_dir := !data;
  let socket = Filename.concat (Sys.getcwd ()) "certifyd_bench.sock" in
  let journal = Filename.concat (Sys.getcwd ()) "certifyd_bench.jsonl" in
  let daemon_pid =
    match Unix.fork () with
    | 0 -> (
        try
          Service.Server.run
            (Service.Server.opts
               ~pool:(Deept.Config.pool ~workers:!workers ())
               ~deadline_s:20.0 ~queue_cap:!queue_cap ~journal ~socket
               [ "sst_3" ]);
          exit 0
        with e ->
          Printf.eprintf "bench daemon: %s\n%!" (Printexc.to_string e);
          exit 1)
    | pid -> pid
  in
  let fail fmt =
    Printf.ksprintf
      (fun msg ->
        Printf.eprintf "daemon bench: %s\n%!" msg;
        (try Unix.kill daemon_pid Sys.sigkill with Unix.Unix_error _ -> ());
        exit 4)
      fmt
  in
  let conn = Service.Client.connect_retry ~timeout_s:120.0 socket in
  let req k radius =
    Service.Protocol.certify ~word:1 ~tag:k ~model:"sst_3" ~radius
      (Service.Protocol.Index (k mod 100))
  in
  (* --- steady: closed loop, [workers] outstanding ------------------- *)
  let send_t = Hashtbl.create 64 in
  let send k radius =
    Hashtbl.replace send_t k (Unix.gettimeofday ());
    Service.Client.send conn (Service.Protocol.Certify (req k radius))
  in
  let steady_radius = 0.02 in
  let cold = Hashtbl.create 64 in
  let run_steady () =
    let lats = ref [] in
    let next = ref 0 in
    let prime = min !workers !steady in
    for _ = 1 to prime do
      send !next steady_radius;
      incr next
    done;
    for _ = 1 to !steady do
      match Service.Client.recv conn with
      | Some (Service.Protocol.Result r) ->
          let tag = match r.Service.Protocol.tag with Some t -> t | None -> -1 in
          let t0 =
            match Hashtbl.find_opt send_t tag with Some t -> t | None -> 0.0
          in
          lats := ((Unix.gettimeofday () -. t0) *. 1000.0) :: !lats;
          if r.Service.Protocol.cached then
            fail "steady phase served from cache (tag %d)" tag;
          Hashtbl.replace cold tag
            (Deept.Verdict.to_string r.Service.Protocol.verdict);
          if !next < !steady then begin
            send !next steady_radius;
            incr next
          end
      | Some _ -> fail "steady phase shed or errored"
      | None -> fail "daemon closed the connection in steady phase"
    done;
    { name = "service_steady"; lat_ms = !lats; shed = 0; hits = 0; total = !steady }
  in
  (* --- cache replay: same requests, all must hit -------------------- *)
  let run_cache () =
    let lats = ref [] in
    let hits = ref 0 in
    for k = 0 to !steady - 1 do
      let t0 = Unix.gettimeofday () in
      match Service.Client.request conn (Service.Protocol.Certify (req k steady_radius)) with
      | Some (Service.Protocol.Result r) ->
          lats := ((Unix.gettimeofday () -. t0) *. 1000.0) :: !lats;
          if not r.Service.Protocol.cached then
            fail "replay of tag %d was not served from cache" k;
          incr hits;
          let v = Deept.Verdict.to_string r.Service.Protocol.verdict in
          let expect = Hashtbl.find cold k in
          if v <> expect then
            fail "cached verdict for tag %d is %s, cold run said %s" k v expect
      | Some _ -> fail "cache replay shed or errored"
      | None -> fail "daemon closed the connection in cache replay"
    done;
    { name = "service_cache"; lat_ms = !lats; shed = 0; hits = !hits; total = !steady }
  in
  (* --- overload: open-loop burst of distinct requests --------------- *)
  let run_overload () =
    (* distinct radii -> guaranteed cache misses, so every request faces
       admission control *)
    for k = 0 to !burst - 1 do
      send (1000 + k) (0.03 +. (float_of_int k *. 1e-9))
    done;
    let shed = ref 0 and served = ref 0 in
    for _ = 1 to !burst do
      match Service.Client.recv conn with
      | Some (Service.Protocol.Overloaded _) -> incr shed
      | Some (Service.Protocol.Result _) -> incr served
      | Some _ -> fail "overload phase: unexpected response"
      | None -> fail "daemon closed the connection in overload phase"
    done;
    if !shed + !served <> !burst then fail "overload phase lost responses";
    { name = "service_overload"; lat_ms = []; shed = !shed; hits = 0; total = !burst }
  in
  let steady_p = run_steady () in
  let cache_p = run_cache () in
  let overload_p = run_overload () in
  (* correctness gates, radius-bench style: the numbers only mean
     something if the daemon behaved *)
  let shed_rate =
    float_of_int overload_p.shed /. float_of_int overload_p.total
  in
  if shed_rate < 0.25 then
    fail "overload phase shed only %.0f%% — admission control asleep"
      (shed_rate *. 100.0);
  (match Service.Client.request conn Service.Protocol.Stats with
  | Some (Service.Protocol.Stats_r s) ->
      if s.Service.Protocol.queue_depth > !queue_cap then
        fail "queue depth %d exceeds cap %d" s.Service.Protocol.queue_depth
          !queue_cap
  | _ -> fail "stats request failed");
  ignore (Service.Client.request conn Service.Protocol.Shutdown);
  Service.Client.close conn;
  (match Unix.waitpid [] daemon_pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> fail "daemon did not exit cleanly");
  Printf.printf
    "certifyd service bench: sst_3, %d worker(s), queue cap %d\n\n" !workers
    !queue_cap;
  Printf.printf "%-18s %8s %8s %8s %10s %10s\n" "phase" "p50 ms" "p95 ms"
    "p99 ms" "shed rate" "hit rate";
  List.iter
    (fun p ->
      Printf.printf "%-18s %8.1f %8.1f %8.1f %10.3f %10.3f\n" p.name
        (percentile p.lat_ms 0.50) (percentile p.lat_ms 0.95)
        (percentile p.lat_ms 0.99)
        (float_of_int p.shed /. float_of_int (max 1 p.total))
        (float_of_int p.hits /. float_of_int (max 1 p.total)))
    [ steady_p; cache_p; overload_p ];
  if !json then
    write_json !out
      (List.map
         (json_of_phase ~jobs:!steady ~workers:!workers ~queue_cap:!queue_cap)
         [ steady_p; cache_p; overload_p ])
