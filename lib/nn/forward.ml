open Tensor

let softmax_rows m =
  Mat.of_rows (Array.init (Mat.rows m) (fun i -> Vecops.softmax (Mat.row m i)))

let attention (att : Ir.attention) x =
  let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
  let dk = adk / att.heads and dv = adv / att.heads in
  let q = Mat.add_row_broadcast (Mat.matmul x att.wq) att.bq in
  let k = Mat.add_row_broadcast (Mat.matmul x att.wk) att.bk in
  let v = Mat.add_row_broadcast (Mat.matmul x att.wv) att.bv in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let heads =
    Array.init att.heads (fun h ->
        let qh = Mat.sub_cols q (h * dk) dk in
        let kh = Mat.sub_cols k (h * dk) dk in
        let vh = Mat.sub_cols v (h * dv) dv in
        let scores = Mat.scale scale (Mat.gemm ~tb:true qh kh) in
        Mat.matmul (softmax_rows scores) vh)
  in
  let z = Array.fold_left Mat.hcat heads.(0) (Array.sub heads 1 (att.heads - 1)) in
  Mat.add_row_broadcast (Mat.matmul z att.wo) att.bo

let center_norm ~gamma ~beta ~divide_std x =
  let n = Mat.rows x and c = Mat.cols x in
  let fc = float_of_int c in
  let means = Mat.row_means x in
  let out = Mat.create n c in
  for i = 0 to n - 1 do
    let sigma =
      if divide_std then begin
        let var = ref 0.0 in
        for j = 0 to c - 1 do
          let u = Mat.get x i j -. means.(i) in
          var := !var +. (u *. u)
        done;
        sqrt ((!var /. fc) +. 1e-5)
      end
      else 1.0
    in
    for j = 0 to c - 1 do
      Mat.set out i j
        ((((Mat.get x i j -. means.(i)) /. sigma) *. gamma.(j)) +. beta.(j))
    done
  done;
  out

let positional pos x =
  if Mat.rows x > Mat.rows pos then
    invalid_arg "Forward: sequence longer than positional table";
  Mat.mapi (fun i j v -> v +. Mat.get pos i j) x

(* Concrete execution is the trivial instance of the shared interpreter:
   abstract value = float matrix. Checks default off, but a caller can
   still install a trace sink (per-op wall time) or the poison scan. *)
module Domain = struct
  type state = unit
  type value = Mat.t

  let name = "concrete"

  let transfer () ~op_index:_ (op : Ir.op) ~get ~set:_ =
    match op with
    | Linear { src; w; b } -> Mat.add_row_broadcast (Mat.matmul (get src) w) b
    | Relu src -> Mat.map (fun v -> if v > 0.0 then v else 0.0) (get src)
    | Tanh src -> Mat.map tanh (get src)
    | Add (a, b) -> Mat.add (get a) (get b)
    | Center_norm { src; gamma; beta; divide_std } ->
        center_norm ~gamma ~beta ~divide_std (get src)
    | Self_attention { src; att } -> attention att (get src)
    | Pool_first src -> Mat.sub_rows (get src) 0 1
    | Positional { src; pos } -> positional pos (get src)

  let widen () ~op_index:_ v = v
  let is_poisoned = Mat.finite_class
  let size () m = Mat.rows m * Mat.cols m

  (* A concrete value is a point: its bound width is zero. *)
  let width () _ = 0.0

  (* Dense storage, no sparsity tracking. *)
  let density () _ = 1.0
end

module I = Interp.Make (Domain)

let run_all ?checks (p : Ir.program) x =
  if Mat.cols x <> p.input_dim then invalid_arg "Forward.run: input dim mismatch";
  I.run_all ?checks () p x

let run ?checks p x = (run_all ?checks p x).(Ir.output_id p)

let logits p x =
  let out = run p x in
  if Mat.rows out <> 1 then invalid_arg "Forward.logits: output is not a single row";
  Mat.row out 0

let predict p x = Vecops.argmax (logits p x)
