(** Concrete (floating-point) execution of {!Ir.program}s.

    This is the reference semantics that every abstract interpreter in the
    repository over-approximates; soundness tests compare abstract bounds
    against values computed here. *)

val attention : Ir.attention -> Tensor.Mat.t -> Tensor.Mat.t
(** Multi-head self-attention on an [n x d] input (Eq. 1 of the paper). *)

val run : ?checks:Tensor.Mat.t Interp.checks -> Ir.program -> Tensor.Mat.t -> Tensor.Mat.t
(** [run p x] evaluates the program on input [x] ([n x input_dim]) and
    returns the output value. Runs on the shared {!Interp} loop;
    [checks] (default: none) can install a trace sink or poison scan. *)

val run_all :
  ?checks:Tensor.Mat.t Interp.checks -> Ir.program -> Tensor.Mat.t -> Tensor.Mat.t array
(** Like {!run} but returns every intermediate value ([length] =
    [Ir.num_values p]); index 0 is the input. *)

val logits : Ir.program -> Tensor.Mat.t -> float array
(** [logits p x] runs the program and returns the (single) output row.
    Raises [Invalid_argument] if the output has more than one row. *)

val predict : Ir.program -> Tensor.Mat.t -> int
(** Argmax class of {!logits}. *)
