(** Interval bound propagation through {!Ir.program}s.

    The cheapest sound verifier in the repository. It serves three roles:
    a baseline in tests (every tighter domain must fit inside its bounds
    only when that domain degrades to intervals — and must always contain
    the concrete execution), the bounding procedure of the complete
    branch-and-bound verifier, and a sanity oracle for the zonotope and
    CROWN implementations. *)

val attention : Ir.attention -> Imat.t -> Imat.t
(** Interval transformer for multi-head self-attention; uses the
    numerically favourable softmax form 1 / Σ exp(νj − νi) with the exact
    zero for the j = i term. *)

val run : ?checks:Imat.t Interp.checks -> Ir.program -> Imat.t -> Imat.t
(** Propagates an interval input through the program. The walk runs on
    the shared {!Interp} loop: pass [checks] to arm a deadline, a size
    budget (total interval entries of an op output), the NaN/Inf poison
    scan or a trace sink. The checkpoint aborts raise whatever
    [checks.abort] returns — the resilient engine supplies
    [Verdict.Abort], making interval runs cooperatively preemptible. *)

val run_all : ?checks:Imat.t Interp.checks -> Ir.program -> Imat.t -> Imat.t array
(** All intermediate bounds; index 0 is the input. *)

val margin :
  ?checks:Imat.t Interp.checks -> Ir.program -> Imat.t -> true_class:int -> float
(** Lower bound of [min_{j ≠ t} (logit_t − logit_j)] on the region. NaN
    bounds propagate to a NaN margin (which never certifies) — this is
    the box rung of the resilient engine's degradation ladder, so it must
    fail loudly rather than certify on poisoned arithmetic. *)

val certify :
  ?checks:Imat.t Interp.checks -> Ir.program -> Imat.t -> true_class:int -> bool
(** [certify p region ~true_class] holds when {!margin} is positive, i.e.
    IBP proves local robustness on the region. *)
