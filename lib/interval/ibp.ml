open Tensor

(* Row-wise softmax on an interval matrix using the stable form
   sigma_i = 1 / sum_j exp(nu_j - nu_i); the j = i difference is exactly 0. *)
let softmax_rows (s : Imat.t) =
  let n, c = Imat.dims s in
  let out = Imat.create n c in
  for r = 0 to n - 1 do
    for i = 0 to c - 1 do
      let denom = ref Itv.zero in
      for j = 0 to c - 1 do
        let d =
          if i = j then Itv.zero else Itv.sub (Imat.get s r j) (Imat.get s r i)
        in
        denom := Itv.add !denom (Itv.exp_ d)
      done;
      Imat.set out r i (Itv.recip !denom)
    done
  done;
  out

let attention (att : Ir.attention) x =
  let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
  let dk = adk / att.heads and dv = adv / att.heads in
  let q = Imat.add_row_const (Imat.matmul_const x att.wq) att.bq in
  let k = Imat.add_row_const (Imat.matmul_const x att.wk) att.bk in
  let v = Imat.add_row_const (Imat.matmul_const x att.wv) att.bv in
  let n, _ = Imat.dims x in
  let sub_cols (m : Imat.t) start len =
    Imat.make (Mat.sub_cols m.Imat.lo start len) (Mat.sub_cols m.Imat.hi start len)
  in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let heads =
    Array.init att.heads (fun h ->
        let qh = sub_cols q (h * dk) dk in
        let kh = sub_cols k (h * dk) dk in
        let vh = sub_cols v (h * dv) dv in
        let khT =
          Imat.make (Mat.transpose kh.Imat.lo) (Mat.transpose kh.Imat.hi)
        in
        let scores = Imat.matmul qh khT in
        let scores =
          Imat.make (Mat.scale scale scores.Imat.lo) (Mat.scale scale scores.Imat.hi)
        in
        Imat.matmul (softmax_rows scores) vh)
  in
  let z =
    Array.fold_left
      (fun acc (h : Imat.t) ->
        match acc with
        | None -> Some h
        | Some (a : Imat.t) ->
            Some (Imat.make (Mat.hcat a.Imat.lo h.Imat.lo) (Mat.hcat a.Imat.hi h.Imat.hi)))
      None heads
    |> Option.get
  in
  ignore n;
  Imat.add_row_const (Imat.matmul_const z att.wo) att.bo

let center_norm ~gamma ~beta ~divide_std (x : Imat.t) =
  let n, c = Imat.dims x in
  let fc = float_of_int c in
  let out = Imat.create n c in
  for i = 0 to n - 1 do
    (* Interval of the row mean. *)
    let mean = ref Itv.zero in
    for j = 0 to c - 1 do
      mean := Itv.add !mean (Imat.get x i j)
    done;
    let mean = Itv.scale (1.0 /. fc) !mean in
    let sigma =
      if not divide_std then Itv.point 1.0
      else begin
        let var = ref Itv.zero in
        for j = 0 to c - 1 do
          var := Itv.add !var (Itv.sq (Itv.sub (Imat.get x i j) mean))
        done;
        Itv.sqrt_ (Itv.add_const 1e-5 (Itv.scale (1.0 /. fc) !var))
      end
    in
    for j = 0 to c - 1 do
      let centered = Itv.sub (Imat.get x i j) mean in
      let scaled = if divide_std then Itv.div centered sigma else centered in
      Imat.set out i j (Itv.add_const beta.(j) (Itv.scale gamma.(j) scaled))
    done
  done;
  out

(* The interval walk is an instance of the shared interpreter: the
   DOMAIN below supplies only the per-op transfer; deadlines, size
   budgets, the poison scan and tracing come from Interp's checkpoint
   loop (run_box arms the deadline so the ladder's interval rung is
   cooperatively preemptible — PR 1 could only notice a timeout after
   the fact). *)
module Domain = struct
  type state = unit
  type value = Imat.t

  let name = "interval"

  let transfer () ~op_index:_ (op : Ir.op) ~get ~set:_ =
    match op with
    | Linear { src; w; b } -> Imat.add_row_const (Imat.matmul_const (get src) w) b
    | Relu src -> Imat.map Itv.relu (get src)
    | Tanh src -> Imat.map Itv.tanh_ (get src)
    | Add (a, b) -> Imat.add (get a) (get b)
    | Center_norm { src; gamma; beta; divide_std } ->
        center_norm ~gamma ~beta ~divide_std (get src)
    | Self_attention { src; att } -> attention att (get src)
    | Pool_first src ->
        let v = get src in
        Imat.make (Mat.sub_rows v.Imat.lo 0 1) (Mat.sub_rows v.Imat.hi 0 1)
    | Positional { src; pos } ->
        let v = get src in
        let add_pos m = Mat.mapi (fun i j e -> e +. Mat.get pos i j) m in
        Imat.make (add_pos v.Imat.lo) (add_pos v.Imat.hi)

  let widen () ~op_index:_ v = v

  let is_poisoned (v : Imat.t) =
    match (Mat.finite_class v.Imat.lo, Mat.finite_class v.Imat.hi) with
    | `Nan, _ | _, `Nan -> `Nan
    | `Inf, _ | _, `Inf -> `Inf
    | `Finite, `Finite -> `Finite

  let size () (v : Imat.t) =
    let n, c = Imat.dims v in
    n * c

  let width () (v : Imat.t) =
    let n, c = Imat.dims v in
    let w = ref 0.0 in
    for i = 0 to n - 1 do
      for j = 0 to c - 1 do
        let iv = Imat.get v i j in
        let d = iv.Itv.hi -. iv.Itv.lo in
        if Float.is_nan d || d > !w then w := d
      done
    done;
    !w

  (* Dense storage, no sparsity tracking. *)
  let density () _ = 1.0
end

module I = Interp.Make (Domain)

let run_all ?checks (p : Ir.program) x =
  let _, c = Imat.dims x in
  if c <> p.input_dim then invalid_arg "Ibp.run: input dim mismatch";
  I.run_all ?checks () p x

let run ?checks p x = (run_all ?checks p x).(Ir.output_id p)

let margin ?checks p region ~true_class =
  let out = run ?checks p region in
  let n, c = Imat.dims out in
  if n <> 1 then invalid_arg "Ibp.margin: output is not a single row";
  if true_class < 0 || true_class >= c then invalid_arg "Ibp.margin: bad class";
  (* NaN-poisoned bounds must surface as a NaN margin, never as a
     certification: min is computed with explicit NaN propagation because
     float comparisons silently drop NaN. *)
  let m = ref infinity in
  for j = 0 to c - 1 do
    if j <> true_class then begin
      let diff = Itv.sub (Imat.get out 0 true_class) (Imat.get out 0 j) in
      if Float.is_nan !m || Float.is_nan diff.Itv.lo then m := Float.nan
      else if diff.Itv.lo < !m then m := diff.Itv.lo
    end
  done;
  !m

let certify ?checks p region ~true_class = margin ?checks p region ~true_class > 0.0
