(** Scalar-level linear-relaxation graph — the CROWN baseline's IR.

    The paper compares DeepT against the CROWN verifier of Shi et al.,
    which propagates {e linear} lower/upper bounds and backsubstitutes
    them towards the input. To reproduce that baseline we expand each
    {!Ir.program} into a graph of primitive nodes over {e flattened}
    variable vectors: exact linear maps, elementwise non-linearities, and
    bilinear forms (the query-key product, the softmax's
    exponential-times-reciprocal recombination, and the attention-value
    product). Per the paper (Section 5.4), the softmax is decomposed in
    the {e direct} form [exp → sum → recip → mul] — one of the precision
    disadvantages DeepT's stable form avoids. *)

type unary_kind = Relu | Tanh | Exp | Recip | Sqrt

type node =
  | Input
      (** the flattened program input, [n_input] variables *)
  | Linear of { src : int; m : Tensor.Mat.t; c : float array }
      (** [v = m · v_src + c] (exact) *)
  | Unary of { src : int; kind : unary_kind }
      (** elementwise non-linearity *)
  | Add of int * int
  | Bilinear of { a : int; b : int; terms : (int * int * float) list array }
      (** [v.(k) = Σ_{(i,j,s) ∈ terms.(k)} s · v_a.(i) · v_b.(j)] *)

type t = {
  nodes : node array;  (** node 0 is [Input] *)
  sizes : int array;  (** variable count of each node *)
  output : int;  (** id of the program output node *)
}

val node_srcs : node -> int list

type compiled = {
  graph : t;
  op_ranges : (int * int) array;
      (** per-{!Ir.op} contiguous node-id range [lo, hi): the nodes the
          op at that index expanded into. Drives the relaxation pass
          from the shared {!Interp} loop (see {!Verify}). *)
}

val compile : Ir.program -> seq_len:int -> compiled
(** Expands a program for a fixed sequence length (linear-bound matrices
    need static shapes, so CROWN runs per sentence length — as does the
    original implementation, which builds per-input computation graphs),
    recording which node-id range each Ir op expanded into. *)

val of_ir : Ir.program -> seq_len:int -> t
(** [compile] without the op ranges. *)

val eval : t -> float array -> float array array
(** Concrete reference evaluation of every node on a flat input (testing:
    must agree with {!Nn.Forward}). *)

val approx_bytes : t -> int
(** Rough resident size of the graph's relaxation matrices — the memory
    gate used to reproduce the paper's CROWN out-of-memory failures on
    wide networks (Table 3). *)

val pp_stats : Format.formatter -> t -> unit
