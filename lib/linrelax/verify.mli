(** The CROWN baseline verifiers (Shi et al.), as compared against in the
    paper's evaluation: [Backward] (precise, slow, superlinear in depth)
    and [Baf] (backward-and-forward: early-stopped backsubstitution —
    fast, loses precision with depth). The API mirrors {!Deept.Certify}
    so benchmarks can drive both verifiers uniformly. *)

type verifier = Backward | Baf
(** [Baf] stops backsubstitution after roughly one Transformer layer's
    worth of relaxations (configurable via [baf_steps]). *)

type compiled = {
  program : Ir.program;
  seq_len : int;
  lg : Lgraph.compiled;
}
(** A program expanded for one sequence length, with the per-Ir-op node
    ranges that let the relaxation pass run on the shared {!Interp}
    loop. Building it is the expensive setup step — reuse one value
    across a radius search. *)

val compile : Ir.program -> seq_len:int -> compiled

val graph_of : Ir.program -> seq_len:int -> compiled
(** Alias of {!compile} (historical name). *)

val approx_bytes : compiled -> int
(** {!Lgraph.approx_bytes} of the underlying graph. *)

val pp_stats : Format.formatter -> compiled -> unit

val region_word_ball :
  p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> radius:float -> Engine.region
(** Threat model T1 (one word perturbed), as an engine region. *)

val region_all_ball : p:Deept.Lp.t -> Tensor.Mat.t -> radius:float -> Engine.region

val region_box : Tensor.Mat.t -> Tensor.Mat.t -> Engine.region
(** Axis-aligned box [lo, hi]. *)

val region_synonym_box :
  Tensor.Mat.t -> (int * float array list) list -> Engine.region
(** Threat model T2, mirroring {!Deept.Region.synonym_box}. *)

val margin :
  verifier:verifier -> ?baf_steps:int -> ?budget:Deept.Config.budget ->
  ?trace:Interp.sink -> compiled -> Engine.region ->
  true_class:int -> float
(** Lower bound of [min_{j≠t} (y_t − y_j)] (the functional is
    backsubstituted as a whole, so common terms cancel).

    The relaxation pass runs per Ir op on the shared {!Interp} loop;
    [budget] arms its checkpoints with the same typed aborts as the
    zonotope engine — [Verdict.Abort Timeout] past the wall-clock
    deadline, [Verdict.Abort Symbol_budget] once the cumulative count of
    relaxation scalars exceeds [max_eps] (the linrelax equivalent of the
    live ε-symbol count). The deadline covers the relaxation pass (the
    dominant cost including the lazily-forced node bounds), not the
    final margin backsubstitution. [trace] streams per-op events
    ({!Profile} works unchanged). *)

val certify :
  verifier:verifier -> ?baf_steps:int -> ?budget:Deept.Config.budget ->
  ?trace:Interp.sink -> compiled -> Engine.region ->
  true_class:int -> bool

val certified_radius :
  verifier:verifier -> ?baf_steps:int -> ?budget:Deept.Config.budget ->
  ?trace:Interp.sink -> ?hi:float -> ?iters:int ->
  ?search:Deept.Config.search ->
  Ir.program -> p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> true_class:int ->
  unit -> float
(** Bracket search for the largest certified ℓp radius around one word,
    mirroring {!Deept.Certify.certified_radius}. A probe aborted by
    [budget] counts as not-certified ({!Deept.Certify.max_radius}'s
    fault handling), so the search still terminates. [trace] is
    installed on every probe, so one {!Profile} collector absorbs the
    whole search. [search] selects the probe executor (default:
    sequential bisection); the relaxation pass has no affine-prefix
    amortization, so only the concurrency leg applies.

    Caveat: the relaxation's certified-at-radius predicate is only
    {e approximately} monotone — branch choices (crossing-neuron
    detection) can flip within an ulp near the boundary, so a
    multi-probe search may settle on a slightly different radius than
    bisection. Either answer comes from a probe that genuinely
    certified; the monotonicity assumption in {!Deept.Psearch} is an
    assumption about the predicate, not a guarantee this relaxation
    provides at fine scales. *)

val default_baf_steps : int
