(** Linear bound propagation with backsubstitution — the CROWN engine.

    For every node the engine records a {e relaxation}: linear lower and
    upper bounds of the node's variables in terms of its source(s).
    Concrete bounds of any linear functional of a node are obtained by
    {e backsubstitution}: the functional's coefficients are pushed
    backwards through the relaxations (splitting positive and negative
    parts against the lower/upper sides), until they reach the input,
    where the input region concretizes them via the dual norm.

    Two modes reproduce the paper's two baselines:
    - [Backward] — full backsubstitution to the input for every query
      (CROWN-Backward: precise, memory- and time-hungry, superlinear in
      depth because every non-linearity re-traverses the whole prefix);
    - [Baf window] — backsubstitution stops once the coefficients are
      [window] node ids behind the query (about one Transformer layer)
      and concretizes them at the best known bounds of the node reached
      (CROWN-Backward-and-Forward: fast, loses precision with depth,
      especially through the bilinear nodes). *)

type mode = Backward | Baf of int

type region = {
  center : float array;  (** flattened input point *)
  p : Deept.Lp.t;
  scale : float array;  (** per-coordinate perturbation scale (>= 0) *)
}
(** The input set [{ center + r : ‖(r_i / scale_i)_i‖_p ≤ 1 }] (entries
    with scale 0 are unperturbed). An ℓp ball of radius ρ on some
    coordinates uses [scale_i = ρ] there; a box uses [p = Linf] with
    per-coordinate radii. *)

type t
(** Analysis state for one graph and region. *)

val analyze : mode:mode -> Lgraph.t -> region -> t
(** Runs the relaxation pass over the whole graph: {!init} followed by
    {!analyze_node} on every node in id order. *)

val init : mode:mode -> Lgraph.t -> region -> t
(** Fresh analysis state with no node analyzed yet.
    @raise Invalid_argument on a region size mismatch. *)

val analyze_node : t -> int -> unit
(** Builds node [id]'s relaxation and forward-interval bounds. Nodes
    must be analyzed in increasing id order (a relaxation may demand
    bounds of any earlier node); {!Verify} drives this incrementally
    from the shared {!Interp} loop so the CROWN pass gets the same
    deadline/budget checkpoints as every other domain. *)

val node_size : t -> int -> int
(** Variable count of a node ([Lgraph.sizes]). *)

val interval_width : t -> int -> float
(** Largest bound width among a node's variables (best known bounds);
    nan when a variable's bounds are NaN. Trace/profiling hook. *)

val node_bounds : t -> int -> float array * float array
(** Concrete (lower, upper) bounds of a node's variables, computed per
    the analysis mode (cached). *)

val output_bounds : t -> float array * float array

val linear_lower_bound : t -> node:int -> coeffs:float array -> float
(** Lower bound of [coeffs · v_node] by backsubstitution in the current
    mode — used for certification margins [y_t − y_f], where keeping the
    functional un-concretized is what makes CROWN relational. *)
