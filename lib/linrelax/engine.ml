open Tensor

type mode = Backward | Baf of int

type region = { center : float array; p : Deept.Lp.t; scale : float array }

type sparse_row = (int * float) array

type rel =
  | Rlinear of { src : int; m : Mat.t; c : float array }
  | Radd of int * int
  | Rdiag of { src : int; low : Relax.line array; high : Relax.line array }
  | Rbilin of {
      a : int;
      b : int;
      la : sparse_row array;
      lb : sparse_row array;
      lc : float array;
      ua : sparse_row array;
      ub : sparse_row array;
      uc : float array;
    }

type t = {
  g : Lgraph.t;
  mode : mode;
  region : region;
  rels : rel option array;
  itv_lo : float array array;
  itv_hi : float array array;
  best : (float array * float array) option array;
}

(* ------------------------------------------------------------------ *)
(* Forward interval bounds (always available; used by BaF concretization
   and to intersect with backsubstituted bounds). Sources are read through
   their refined bounds when those exist: the naive interval chain blows up
   to infinities within a couple of Transformer layers, and inf * 0 in the
   bilinear products would turn into NaN.                               *)

(* Best currently known interval bounds of a node (used when a BaF pass
   concretizes early, and to floor/intersect results). *)
let known_bounds st id =
  match st.best.(id) with
  | Some b -> b
  | None -> (st.itv_lo.(id), st.itv_hi.(id))

(* NaN (from inf - inf or inf * 0) carries no information: widen to the
   trivial bound instead of poisoning downstream intersections. *)
let clean_bounds (lo, hi) =
  ( Array.map (fun v -> if Float.is_nan v then neg_infinity else v) lo,
    Array.map (fun v -> if Float.is_nan v then infinity else v) hi )

let forward_interval st (node : Lgraph.node) =
  match node with
  | Lgraph.Input ->
      let n = st.g.Lgraph.sizes.(0) in
      let lo = Array.init n (fun i -> st.region.center.(i) -. st.region.scale.(i)) in
      let hi = Array.init n (fun i -> st.region.center.(i) +. st.region.scale.(i)) in
      (lo, hi)
  | Lgraph.Linear { src; m; c } ->
      let slo, shi = known_bounds st src in
      let n = Mat.rows m in
      let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
      for r = 0 to n - 1 do
        let accl = ref c.(r) and acch = ref c.(r) in
        let base = r * Mat.cols m in
        for k = 0 to Mat.cols m - 1 do
          let w = m.Mat.data.(base + k) in
          if w > 0.0 then begin
            accl := !accl +. (w *. slo.(k));
            acch := !acch +. (w *. shi.(k))
          end
          else if w < 0.0 then begin
            accl := !accl +. (w *. shi.(k));
            acch := !acch +. (w *. slo.(k))
          end
        done;
        lo.(r) <- !accl;
        hi.(r) <- !acch
      done;
      (lo, hi)
  | Lgraph.Unary { src; kind } ->
      let f_lo, f_hi =
        match kind with
        | Lgraph.Relu -> ((fun x -> Float.max 0.0 x), fun x -> Float.max 0.0 x)
        | Lgraph.Tanh -> (tanh, tanh)
        | Lgraph.Exp -> (exp, exp)
        | Lgraph.Sqrt -> ((fun x -> sqrt (Float.max 0.0 x)), fun x -> sqrt (Float.max 0.0 x))
        | Lgraph.Recip ->
            (* antitone; inputs floored as in the relaxation *)
            let r x = 1.0 /. Float.max x Relax.recip_floor in
            (r, r)
      in
      let slo, shi = known_bounds st src in
      if kind = Lgraph.Recip then
        (Array.map f_lo shi, Array.map f_hi slo)
      else (Array.map f_lo slo, Array.map f_hi shi)
  | Lgraph.Add (a, b) ->
      let alo, ahi = known_bounds st a and blo, bhi = known_bounds st b in
      (Array.map2 ( +. ) alo blo, Array.map2 ( +. ) ahi bhi)
  | Lgraph.Bilinear { a; b; terms } ->
      let alo, ahi = known_bounds st a in
      let blo, bhi = known_bounds st b in
      let n = Array.length terms in
      let lo = Array.make n 0.0 and hi = Array.make n 0.0 in
      Array.iteri
        (fun k ts ->
          List.iter
            (fun (i, j, s) ->
              let p1 = alo.(i) *. blo.(j) and p2 = alo.(i) *. bhi.(j) in
              let p3 = ahi.(i) *. blo.(j) and p4 = ahi.(i) *. bhi.(j) in
              let pmin = Float.min (Float.min p1 p2) (Float.min p3 p4) in
              let pmax = Float.max (Float.max p1 p2) (Float.max p3 p4) in
              if s > 0.0 then begin
                lo.(k) <- lo.(k) +. (s *. pmin);
                hi.(k) <- hi.(k) +. (s *. pmax)
              end
              else begin
                lo.(k) <- lo.(k) +. (s *. pmax);
                hi.(k) <- hi.(k) +. (s *. pmin)
              end)
            ts)
        terms;
      (lo, hi)

(* ------------------------------------------------------------------ *)
(* Backsubstitution.                                                    *)

let split_pos_neg w = if w > 0.0 then (w, 0.0) else (0.0, w)

(* Concretize a coefficient matrix at known bounds of [id], accumulating
   into the constant vectors. [which] selects the bound being computed. *)
let concretize_at st id (mat : Mat.t) (const : float array) ~upper =
  let lo, hi = known_bounds st id in
  let n = Mat.cols mat in
  for r = 0 to Mat.rows mat - 1 do
    let base = r * n in
    let acc = ref const.(r) in
    for k = 0 to n - 1 do
      let w = mat.Mat.data.(base + k) in
      if w > 0.0 then acc := !acc +. (w *. if upper then hi.(k) else lo.(k))
      else if w < 0.0 then acc := !acc +. (w *. if upper then lo.(k) else hi.(k))
    done;
    const.(r) <- !acc
  done

let concretize_input st (mat : Mat.t) (const : float array) ~upper =
  let q = Deept.Lp.dual st.region.p in
  let n = Mat.cols mat in
  let out = Array.make (Mat.rows mat) 0.0 in
  let scaled = Array.make n 0.0 in
  for r = 0 to Mat.rows mat - 1 do
    let base = r * n in
    let dot = ref const.(r) in
    for k = 0 to n - 1 do
      let w = mat.Mat.data.(base + k) in
      dot := !dot +. (w *. st.region.center.(k));
      scaled.(k) <- w *. st.region.scale.(k)
    done;
    let radius = Deept.Lp.norm q scaled in
    out.(r) <- (if upper then !dot +. radius else !dot -. radius)
  done;
  out

(* Push an accumulated coefficient matrix backwards through a relaxation.
   [lower] selects which bound of the TARGET is being computed; positive
   coefficients then consume the relaxation's lower side and negative ones
   its upper side (flipped for the upper target bound). *)
let push_through st id (mat : Mat.t) (const : float array) ~upper add_coefs =
  let rel = Option.get st.rels.(id) in
  let m = Mat.rows mat in
  match rel with
  | Rlinear { src; m = w; c } ->
      add_coefs src (Mat.matmul mat w);
      for r = 0 to m - 1 do
        let base = r * Mat.cols mat in
        let acc = ref const.(r) in
        for k = 0 to Mat.cols mat - 1 do
          let v = mat.Mat.data.(base + k) in
          if v <> 0.0 then acc := !acc +. (v *. c.(k))
        done;
        const.(r) <- !acc
      done
  | Radd (a, b) ->
      add_coefs a (Mat.copy mat);
      add_coefs b (Mat.copy mat)
  | Rdiag { src; low; high } ->
      let n = Mat.cols mat in
      let out = Mat.create m n in
      for r = 0 to m - 1 do
        let base = r * n in
        let acc = ref const.(r) in
        for k = 0 to n - 1 do
          let w = mat.Mat.data.(base + k) in
          if w <> 0.0 then begin
            let pos, neg = split_pos_neg w in
            let lline, uline = if upper then (high.(k), low.(k)) else (low.(k), high.(k)) in
            out.Mat.data.(base + k) <- (pos *. lline.Relax.slope) +. (neg *. uline.Relax.slope);
            acc := !acc +. (pos *. lline.Relax.icept) +. (neg *. uline.Relax.icept)
          end
        done;
        const.(r) <- !acc
      done;
      add_coefs src out
  | Rbilin { a; b; la; lb; lc; ua; ub; uc } ->
      let na = st.g.Lgraph.sizes.(a) and nb = st.g.Lgraph.sizes.(b) in
      let ca = Mat.create m na and cb = Mat.create m nb in
      let n = Mat.cols mat in
      for r = 0 to m - 1 do
        let base = r * n in
        let acc = ref const.(r) in
        for k = 0 to n - 1 do
          let w = mat.Mat.data.(base + k) in
          if w <> 0.0 then begin
            (* choose the side matching the sign (and target bound) *)
            let use_lower = (w > 0.0) <> upper in
            let sa, sb, sc =
              if use_lower then (la.(k), lb.(k), lc.(k)) else (ua.(k), ub.(k), uc.(k))
            in
            Array.iter
              (fun (i, v) -> ca.Mat.data.((r * na) + i) <- ca.Mat.data.((r * na) + i) +. (w *. v))
              sa;
            Array.iter
              (fun (j, v) -> cb.Mat.data.((r * nb) + j) <- cb.Mat.data.((r * nb) + j) +. (w *. v))
              sb;
            acc := !acc +. (w *. sc)
          end
        done;
        const.(r) <- !acc
      done;
      add_coefs a ca;
      add_coefs b cb

(* Backsubstitute a linear functional [t_mat · v_node] down to the input,
   obtaining one bound vector. *)
let backsub_one st ~node ~(t_mat : Mat.t) ~upper =
  let m = Mat.rows t_mat in
  let coefs : Mat.t option array = Array.make (node + 1) None in
  let const = Array.make m 0.0 in
  let add_coefs id mat =
    match coefs.(id) with
    | None -> coefs.(id) <- Some mat
    | Some acc -> Mat.add_in_place acc mat
  in
  coefs.(node) <- Some (Mat.copy t_mat);
  (* BaF stops backsubstituting once the coefficients have travelled
     [window] node ids backwards from the query node (about one
     Transformer layer by default) and concretizes them at the best known
     bounds of the node reached — "backsubstitution with early stopping". *)
  let horizon =
    match st.mode with Backward -> -1 | Baf window -> node - window
  in
  for id = node downto 1 do
    match coefs.(id) with
    | None -> ()
    | Some mat ->
        coefs.(id) <- None;
        if id <= horizon then concretize_at st id mat const ~upper
        else push_through st id mat const ~upper add_coefs
  done;
  (match coefs.(0) with
  | None -> const
  | Some mat -> concretize_input st mat const ~upper)

(* ------------------------------------------------------------------ *)
(* Relaxation construction.                                            *)

let rec node_bounds st id =
  match st.best.(id) with
  | Some b -> b
  | None ->
      let n = st.g.Lgraph.sizes.(id) in
      let b =
        if id = 0 then (st.itv_lo.(0), st.itv_hi.(0))
        else begin
          let idm = Mat.identity n in
          let lo = backsub_one st ~node:id ~t_mat:idm ~upper:false in
          let hi = backsub_one st ~node:id ~t_mat:idm ~upper:true in
          (* intersect with the forward interval (both are sound); NaN on
             either side is "no information" *)
          let safe_max a b = if Float.is_nan a then b else if Float.is_nan b then a else Float.max a b in
          let safe_min a b = if Float.is_nan a then b else if Float.is_nan b then a else Float.min a b in
          let lo = Array.mapi (fun i v -> safe_max v st.itv_lo.(id).(i)) lo in
          let hi = Array.mapi (fun i v -> safe_min v st.itv_hi.(id).(i)) hi in
          (lo, hi)
        end
      in
      st.best.(id) <- Some b;
      b

and build_rel st (node : Lgraph.node) =
  match node with
  | Lgraph.Input -> None
  | Lgraph.Linear { src; m; c } -> Some (Rlinear { src; m; c })
  | Lgraph.Add (a, b) -> Some (Radd (a, b))
  | Lgraph.Unary { src; kind } ->
      let lo, hi = node_bounds st src in
      let n = st.g.Lgraph.sizes.(src) in
      let low = Array.make n { Relax.slope = 0.0; icept = 0.0 } in
      let high = Array.make n { Relax.slope = 0.0; icept = 0.0 } in
      for k = 0 to n - 1 do
        let l, u = Relax.unary_lines kind ~l:lo.(k) ~u:hi.(k) in
        low.(k) <- l;
        high.(k) <- u
      done;
      Some (Rdiag { src; low; high })
  | Lgraph.Bilinear { a; b; terms } ->
      let alo, ahi = node_bounds st a in
      let blo, bhi = node_bounds st b in
      let n = Array.length terms in
      let la = Array.make n [||] and lb = Array.make n [||] in
      let ua = Array.make n [||] and ub = Array.make n [||] in
      let lc = Array.make n 0.0 and uc = Array.make n 0.0 in
      Array.iteri
        (fun k ts ->
          let la_l = ref [] and lb_l = ref [] and ua_l = ref [] and ub_l = ref [] in
          List.iter
            (fun (i, j, s) ->
              let pl, pu =
                Relax.product_planes ~lx:alo.(i) ~ux:ahi.(i) ~ly:blo.(j) ~uy:bhi.(j)
              in
              (* s * (x*y): s > 0 keeps the plane roles, s < 0 swaps them. *)
              let lo_pl, hi_pl = if s > 0.0 then (pl, pu) else (pu, pl) in
              la_l := (i, s *. lo_pl.Relax.cx) :: !la_l;
              lb_l := (j, s *. lo_pl.Relax.cy) :: !lb_l;
              lc.(k) <- lc.(k) +. (s *. lo_pl.Relax.c);
              ua_l := (i, s *. hi_pl.Relax.cx) :: !ua_l;
              ub_l := (j, s *. hi_pl.Relax.cy) :: !ub_l;
              uc.(k) <- uc.(k) +. (s *. hi_pl.Relax.c))
            ts;
          la.(k) <- Array.of_list !la_l;
          lb.(k) <- Array.of_list !lb_l;
          ua.(k) <- Array.of_list !ua_l;
          ub.(k) <- Array.of_list !ub_l)
        terms;
      Some (Rbilin { a; b; la; lb; lc; ua; ub; uc })

let init ~mode (g : Lgraph.t) region =
  if Array.length region.center <> g.Lgraph.sizes.(0)
     || Array.length region.scale <> g.Lgraph.sizes.(0)
  then invalid_arg "Engine.analyze: region size mismatch";
  let n = Array.length g.Lgraph.nodes in
  {
    g;
    mode;
    region;
    rels = Array.make n None;
    itv_lo = Array.make n [||];
    itv_hi = Array.make n [||];
    best = Array.make n None;
  }

let analyze_node st id =
  let node = st.g.Lgraph.nodes.(id) in
  (* Relaxation first (it may query bounds of earlier nodes), then the
     forward interval of this node. *)
  st.rels.(id) <- build_rel st node;
  let lo, hi = clean_bounds (forward_interval st node) in
  st.itv_lo.(id) <- lo;
  st.itv_hi.(id) <- hi

let analyze ~mode (g : Lgraph.t) region =
  let st = init ~mode g region in
  Array.iteri (fun id _ -> analyze_node st id) g.Lgraph.nodes;
  st

let node_size st id = st.g.Lgraph.sizes.(id)

let interval_width st id =
  let lo, hi = known_bounds st id in
  let w = ref 0.0 in
  Array.iteri
    (fun i l ->
      let d = hi.(i) -. l in
      if Float.is_nan d || d > !w then w := d)
    lo;
  !w

let output_bounds st = node_bounds st st.g.Lgraph.output

let linear_lower_bound st ~node ~coeffs =
  let t_mat = Mat.row_vector coeffs in
  (backsub_one st ~node ~t_mat ~upper:false).(0)
