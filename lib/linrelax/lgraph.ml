open Tensor

type unary_kind = Relu | Tanh | Exp | Recip | Sqrt

type node =
  | Input
  | Linear of { src : int; m : Mat.t; c : float array }
  | Unary of { src : int; kind : unary_kind }
  | Add of int * int
  | Bilinear of { a : int; b : int; terms : (int * int * float) list array }

type t = { nodes : node array; sizes : int array; output : int }

let node_srcs = function
  | Input -> []
  | Linear { src; _ } | Unary { src; _ } -> [ src ]
  | Add (a, b) | Bilinear { a; b; _ } -> [ a; b ]

(* --- builders ------------------------------------------------------ *)

type builder = { mutable rev_nodes : node list; mutable rev_sizes : int list; mutable count : int }

let new_builder () = { rev_nodes = []; rev_sizes = []; count = 0 }

let push b node size =
  b.rev_nodes <- node :: b.rev_nodes;
  b.rev_sizes <- size :: b.rev_sizes;
  b.count <- b.count + 1;
  b.count - 1

(* Row-wise [x . w + bias] on an [n x din] value, flattened. *)
let rowwise_linear ~n ~din w bias =
  let dout = Mat.cols w in
  let m = Mat.create (n * dout) (n * din) in
  for i = 0 to n - 1 do
    for jo = 0 to dout - 1 do
      for ji = 0 to din - 1 do
        Mat.set m ((i * dout) + jo) ((i * din) + ji) (Mat.get w ji jo)
      done
    done
  done;
  let c = Array.init (n * dout) (fun v -> bias.(v mod dout)) in
  (m, c)

(* Row-centering followed by gamma scale and beta shift, flattened. *)
let center_norm_linear ~n ~d gamma beta =
  let m = Mat.create (n * d) (n * d) in
  let inv = 1.0 /. float_of_int d in
  for i = 0 to n - 1 do
    for c = 0 to d - 1 do
      for c' = 0 to d - 1 do
        let base = if c = c' then 1.0 -. inv else -.inv in
        Mat.set m ((i * d) + c) ((i * d) + c') (gamma.(c) *. base)
      done
    done
  done;
  let cvec = Array.init (n * d) (fun v -> beta.(v mod d)) in
  (m, cvec)

let selection_linear ~out_size ~in_size pick =
  let m = Mat.create out_size in_size in
  for v = 0 to out_size - 1 do
    Mat.set m v (pick v) 1.0
  done;
  (m, Array.make out_size 0.0)

(* Embeds an [n x dv] head output into the [n x (heads*dv)] concatenation. *)
let head_embedding ~n ~dv ~heads ~h =
  let out = n * heads * dv and inp = n * dv in
  let m = Mat.create out inp in
  for i = 0 to n - 1 do
    for t = 0 to dv - 1 do
      Mat.set m ((i * heads * dv) + (h * dv) + t) ((i * dv) + t) 1.0
    done
  done;
  (m, Array.make out 0.0)

let attention b ~n ~src (att : Ir.attention) =
  let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
  let heads = att.heads in
  let dk = adk / heads and dv = adv / heads in
  let d = Mat.rows att.wq in
  let lin w bias =
    let m, c = rowwise_linear ~n ~din:d w bias in
    push b (Linear { src; m; c }) (n * Mat.cols w)
  in
  let q = lin att.wq att.bq in
  let k = lin att.wk att.bk in
  let v = lin att.wv att.bv in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let head h =
    (* scores: S[i,j] = scale * sum_t Q[i, h dk + t] * K[j, h dk + t] *)
    let terms =
      Array.init (n * n) (fun s ->
          let i = s / n and j = s mod n in
          List.init dk (fun t ->
              (((i * adk) + (h * dk) + t), ((j * adk) + (h * dk) + t), scale)))
    in
    let s = push b (Bilinear { a = q; b = k; terms }) (n * n) in
    let e = push b (Unary { src = s; kind = Exp }) (n * n) in
    let sum_m, sum_c =
      let m = Mat.create n (n * n) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.set m i ((i * n) + j) 1.0
        done
      done;
      (m, Array.make n 0.0)
    in
    let sums = push b (Linear { src = e; m = sum_m; c = sum_c }) n in
    let r = push b (Unary { src = sums; kind = Recip }) n in
    (* P[i,j] = e[i,j] * r[i] *)
    let pterms =
      Array.init (n * n) (fun s ->
          let i = s / n in
          [ (s, i, 1.0) ])
    in
    let p = push b (Bilinear { a = e; b = r; terms = pterms }) (n * n) in
    (* Z[i,t] = sum_j P[i,j] * V[j, h dv + t] *)
    let zterms =
      Array.init (n * dv) (fun s ->
          let i = s / dv and t = s mod dv in
          List.init n (fun j -> (((i * n) + j), ((j * adv) + (h * dv) + t), 1.0)))
    in
    push b (Bilinear { a = p; b = v; terms = zterms }) (n * dv)
  in
  let z_heads = List.init heads head in
  (* Concatenate heads by summing per-head embeddings. *)
  let embed h zh =
    let m, c = head_embedding ~n ~dv ~heads ~h in
    push b (Linear { src = zh; m; c }) (n * heads * dv)
  in
  let embedded = List.mapi embed z_heads in
  let zcat =
    match embedded with
    | [] -> invalid_arg "Lgraph.attention: no heads"
    | first :: rest ->
        List.fold_left (fun acc e -> push b (Add (acc, e)) (n * heads * dv)) first rest
  in
  let m, c = rowwise_linear ~n ~din:adv att.wo att.bo in
  push b (Linear { src = zcat; m; c }) (n * d)

(* Standard layer norm (divide by std): centered value, variance via a
   bilinear square, sqrt, reciprocal, bilinear rescale, affine gamma/beta. *)
let std_norm b ~n ~src ~d gamma beta =
  let ones = Array.make d 1.0 and zeros = Array.make d 0.0 in
  let cm, cc = center_norm_linear ~n ~d ones zeros in
  let centered = push b (Linear { src; m = cm; c = cc }) (n * d) in
  let vterms =
    Array.init n (fun i ->
        List.init d (fun c -> (((i * d) + c), ((i * d) + c), 1.0 /. float_of_int d)))
  in
  let var0 = push b (Bilinear { a = centered; b = centered; terms = vterms }) n in
  let var =
    push b
      (Linear { src = var0; m = Mat.identity n; c = Array.make n 1e-5 })
      n
  in
  let sigma = push b (Unary { src = var; kind = Sqrt }) n in
  let r = push b (Unary { src = sigma; kind = Recip }) n in
  let sterms =
    Array.init (n * d) (fun v ->
        let i = v / d in
        [ (v, i, 1.0) ])
  in
  let scaled = push b (Bilinear { a = centered; b = r; terms = sterms }) (n * d) in
  let gm = Mat.init (n * d) (n * d) (fun v v' -> if v = v' then gamma.(v mod d) else 0.0) in
  let gc = Array.init (n * d) (fun v -> beta.(v mod d)) in
  push b (Linear { src = scaled; m = gm; c = gc }) (n * d)

type compiled = { graph : t; op_ranges : (int * int) array }

let compile (p : Ir.program) ~seq_len =
  let n = seq_len in
  let b = new_builder () in
  let input = push b Input (n * p.input_dim) in
  assert (input = 0);
  (* Per-IR-value node id and row count (Pool_first collapses rows). *)
  let ids = Array.make (Ir.num_values p) 0 in
  let rows = Array.make (Ir.num_values p) n in
  rows.(0) <- n;
  (* Node pushes for one Ir op are contiguous, so a [lo, hi) id range per
     op is enough to drive the relaxation pass from the shared
     interpreter (Verify's DOMAIN instance). *)
  let op_ranges = Array.make (Array.length p.ops) (0, 0) in
  let dims v = Ir.out_dim p v in
  Array.iteri
    (fun i (op : Ir.op) ->
      let out = i + 1 in
      let node_lo = b.count in
      (match op with
      | Linear { src; w; b = bias } ->
          let m, c = rowwise_linear ~n:rows.(src) ~din:(dims src) w bias in
          rows.(out) <- rows.(src);
          ids.(out) <-
            push b (Linear { src = ids.(src); m; c }) (rows.(src) * Mat.cols w)
      | Relu src ->
          rows.(out) <- rows.(src);
          ids.(out) <-
            push b (Unary { src = ids.(src); kind = Relu }) (rows.(src) * dims src)
      | Tanh src ->
          rows.(out) <- rows.(src);
          ids.(out) <-
            push b (Unary { src = ids.(src); kind = Tanh }) (rows.(src) * dims src)
      | Add (x, y) ->
          rows.(out) <- rows.(x);
          ids.(out) <- push b (Add (ids.(x), ids.(y))) (rows.(x) * dims x)
      | Center_norm { src; gamma; beta; divide_std } ->
          rows.(out) <- rows.(src);
          if divide_std then
            ids.(out) <-
              std_norm b ~n:rows.(src) ~src:ids.(src) ~d:(dims src) gamma beta
          else begin
            let m, c = center_norm_linear ~n:rows.(src) ~d:(dims src) gamma beta in
            ids.(out) <-
              push b (Linear { src = ids.(src); m; c }) (rows.(src) * dims src)
          end
      | Self_attention { src; att } ->
          rows.(out) <- rows.(src);
          ids.(out) <- attention b ~n:rows.(src) ~src:ids.(src) att
      | Pool_first src ->
          let d = dims src in
          let m, c = selection_linear ~out_size:d ~in_size:(rows.(src) * d) (fun v -> v) in
          rows.(out) <- 1;
          ids.(out) <- push b (Linear { src = ids.(src); m; c }) d
      | Positional { src; pos } ->
          let d = dims src in
          let size = rows.(src) * d in
          let m = Mat.identity size in
          let c = Array.init size (fun v -> Mat.get pos (v / d) (v mod d)) in
          rows.(out) <- rows.(src);
          ids.(out) <- push b (Linear { src = ids.(src); m; c }) size);
      op_ranges.(i) <- (node_lo, b.count))
    p.ops;
  let graph =
    {
      nodes = Array.of_list (List.rev b.rev_nodes);
      sizes = Array.of_list (List.rev b.rev_sizes);
      output = ids.(Ir.output_id p);
    }
  in
  { graph; op_ranges }

let of_ir (p : Ir.program) ~seq_len = (compile p ~seq_len).graph

let eval g input =
  let vals = Array.make (Array.length g.nodes) [||] in
  Array.iteri
    (fun id node ->
      let v =
        match node with
        | Input ->
            if Array.length input <> g.sizes.(0) then
              invalid_arg "Lgraph.eval: input size";
            input
        | Linear { src; m; c } ->
            let y = Mat.mat_vec m vals.(src) in
            Array.mapi (fun i x -> x +. c.(i)) y
        | Unary { src; kind } ->
            let f =
              match kind with
              | Relu -> fun x -> Float.max 0.0 x
              | Tanh -> tanh
              | Exp -> exp
              | Recip -> fun x -> 1.0 /. x
              | Sqrt -> sqrt
            in
            Array.map f vals.(src)
        | Add (a, b) -> Array.map2 ( +. ) vals.(a) vals.(b)
        | Bilinear { a; b; terms } ->
            Array.map
              (fun ts ->
                List.fold_left
                  (fun acc (i, j, s) -> acc +. (s *. vals.(a).(i) *. vals.(b).(j)))
                  0.0 ts)
              terms
      in
      vals.(id) <- v)
    g.nodes;
  vals

let approx_bytes g =
  Array.fold_left
    (fun acc node ->
      acc
      +
      match node with
      | Linear { m; _ } -> 8 * Mat.rows m * Mat.cols m
      | Bilinear { terms; _ } ->
          (* two sparse sides, lower and upper *)
          32 * Array.fold_left (fun a ts -> a + List.length ts) 0 terms
      | Input | Unary _ | Add _ -> 0)
    0 g.nodes
  + (* per-node cached bounds *)
  Array.fold_left (fun acc s -> acc + (16 * s)) 0 g.sizes

let pp_stats ppf g =
  let count k =
    Array.fold_left
      (fun acc n ->
        acc
        +
        match (n, k) with
        | Input, `I | Linear _, `L | Unary _, `U | Add _, `A | Bilinear _, `B -> 1
        | _ -> 0)
      0 g.nodes
  in
  Format.fprintf ppf "lgraph: %d nodes (%d linear, %d unary, %d add, %d bilinear)"
    (Array.length g.nodes) (count `L) (count `U) (count `A) (count `B)
