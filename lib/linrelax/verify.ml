open Tensor

type verifier = Backward | Baf

(* About two Transformer layers' worth of relaxation nodes (one layer with
   4 heads is ~42 nodes: QKV, per-head score/exp/sum/recip/P/Z chains,
   concatenation, residuals, normalization, feed-forward). Tuned so BaF is
   close to full backsubstitution on shallow stacks while degrading with
   depth — the trade-off the paper reports for CROWN-BaF. *)
let default_baf_steps = 96

type compiled = { program : Ir.program; seq_len : int; lg : Lgraph.compiled }

let compile program ~seq_len = { program; seq_len; lg = Lgraph.compile program ~seq_len }
let graph_of p ~seq_len = compile p ~seq_len
let approx_bytes c = Lgraph.approx_bytes c.lg.Lgraph.graph
let pp_stats ppf c = Lgraph.pp_stats ppf c.lg.Lgraph.graph

let flat (m : Mat.t) = Array.copy m.Mat.data

let region_word_ball ~p x ~word ~radius : Engine.region =
  let n = Mat.rows x and d = Mat.cols x in
  if word < 0 || word >= n then invalid_arg "Verify.region_word_ball";
  let scale = Array.make (n * d) 0.0 in
  for j = 0 to d - 1 do
    scale.((word * d) + j) <- radius
  done;
  { center = flat x; p; scale }

let region_all_ball ~p x ~radius : Engine.region =
  { center = flat x; p; scale = Array.make (Mat.rows x * Mat.cols x) radius }

let region_box lo hi : Engine.region =
  if Mat.dims lo <> Mat.dims hi then invalid_arg "Verify.region_box";
  let n = Mat.rows lo * Mat.cols lo in
  let center = Array.init n (fun v -> 0.5 *. (lo.Mat.data.(v) +. hi.Mat.data.(v))) in
  let scale = Array.init n (fun v -> 0.5 *. (hi.Mat.data.(v) -. lo.Mat.data.(v))) in
  Array.iter (fun s -> if s < 0.0 then invalid_arg "Verify.region_box: lo > hi") scale;
  { center; p = Deept.Lp.Linf; scale }

let region_synonym_box x subs =
  let d = Mat.cols x in
  let lo = Mat.copy x and hi = Mat.copy x in
  List.iter
    (fun (pos, alts) ->
      List.iter
        (fun (alt : float array) ->
          if Array.length alt <> d then invalid_arg "Verify.region_synonym_box";
          for j = 0 to d - 1 do
            Mat.set lo pos j (Float.min (Mat.get lo pos j) alt.(j));
            Mat.set hi pos j (Float.max (Mat.get hi pos j) alt.(j))
          done)
        alts)
    subs;
  region_box lo hi

let mode_of verifier baf_steps : Engine.mode =
  match verifier with Backward -> Engine.Backward | Baf -> Engine.Baf baf_steps

(* The CROWN relaxation pass as a DOMAIN instance: the abstract "value"
   of an Ir op is the id of the last relaxation node it expanded into;
   the transfer analyzes the op's node range in id order — exactly the
   sequence Engine.analyze used to run, so results are bit-identical.
   Running it through Interp is what gives the baseline deadline/budget
   checkpoints with typed Verdict aborts and per-op tracing. *)
module Domain = struct
  type state = {
    st : Engine.t;
    ranges : (int * int) array;
    mutable scalars : int;  (* cumulative relaxation scalars analyzed *)
  }

  type value = int

  let name = "linrelax"

  let transfer d ~op_index (_ : Ir.op) ~get:_ ~set:_ =
    let lo, hi = d.ranges.(op_index) in
    for id = lo to hi - 1 do
      Engine.analyze_node d.st id;
      d.scalars <- d.scalars + Engine.node_size d.st id
    done;
    hi - 1

  let widen _ ~op_index:_ v = v

  (* Engine.clean_bounds already widens NaN to the trivial bound; a
     poison scan would re-flag those sound infinities, so leave it to
     the caller to keep checks.poison off (checks_of below does). *)
  let is_poisoned _ = `Finite
  let size d _ = d.scalars
  let width d id = Engine.interval_width d.st id

  (* Dense storage, no sparsity tracking. *)
  let density _ _ = 1.0
end

module I = Interp.Make (Domain)

(* Interp checks from a Deept budget: deadline and size cap (max_eps is
   read as a cap on cumulative relaxation scalars — the linrelax
   equivalent of the zonotope's ε-symbol count), aborting with the same
   typed Verdict.Abort exceptions as the zonotope engine. *)
let checks_of ?trace budget : int Interp.checks option =
  match (budget, trace) with
  | None, None -> None
  | _ ->
      let b = Option.value budget ~default:Deept.Config.no_budget in
      let t0 = Unix.gettimeofday () in
      Some
        {
          Interp.deadline =
            Option.map (fun l -> t0 +. l) b.Deept.Config.time_limit_s;
          max_size = b.Deept.Config.max_eps;
          poison = false;
          fault = None;
          trace;
          abort = Deept.Propagate.abort_of;
        }

let analyze ~mode ?checks (c : compiled) region =
  let st = Engine.init ~mode c.lg.Lgraph.graph region in
  (* Node 0 (Input) precedes every op's node range. *)
  Engine.analyze_node st 0;
  let d =
    { Domain.st; ranges = c.lg.Lgraph.op_ranges; scalars = Engine.node_size st 0 }
  in
  ignore (I.run ?checks d c.program 0);
  st

let rec margin ~verifier ?(baf_steps = default_baf_steps) ?budget ?trace c
    region ~true_class =
  try margin_exn ~verifier ~baf_steps ~budget ~trace c region ~true_class
  with Deept.Zonotope.Unbounded -> neg_infinity

and margin_exn ~verifier ~baf_steps ~budget ~trace c region ~true_class =
  let checks = checks_of ?trace budget in
  let st = analyze ~mode:(mode_of verifier baf_steps) ?checks c region in
  let g = c.lg.Lgraph.graph in
  let n_out = g.Lgraph.sizes.(g.Lgraph.output) in
  if true_class < 0 || true_class >= n_out then invalid_arg "Verify.margin: class";
  let best = ref infinity in
  for j = 0 to n_out - 1 do
    if j <> true_class then begin
      let coeffs = Array.make n_out 0.0 in
      coeffs.(true_class) <- 1.0;
      coeffs.(j) <- -1.0;
      let lb = Engine.linear_lower_bound st ~node:g.Lgraph.output ~coeffs in
      if lb < !best then best := lb
    end
  done;
  !best

let certify ~verifier ?baf_steps ?budget ?trace c region ~true_class =
  margin ~verifier ?baf_steps ?budget ?trace c region ~true_class > 0.0

let certified_radius ~verifier ?baf_steps ?budget ?trace ?hi ?(iters = 10)
    ?search program ~p x ~word ~true_class () =
  let c = compile program ~seq_len:(Mat.rows x) in
  Deept.Certify.max_radius ?hi ~iters ?search (fun radius ->
      radius > 0.0
      && certify ~verifier ?baf_steps ?budget ?trace c
           (region_word_ball ~p x ~word ~radius)
           ~true_class)
