open Tensor

let eval_abs_sum ~r ~s t =
  let acc = ref 0.0 in
  Array.iteri (fun i ri -> acc := !acc +. Float.abs (ri +. (s.(i) *. t))) r;
  !acc

let minimize_abs_sum ~r ~s ~allowed =
  let n = Array.length r in
  if Array.length s <> n || Array.length allowed <> n then
    invalid_arg "Refinement.minimize_abs_sum: length mismatch";
  (* Breakpoints where one |r + s t| term vanishes. *)
  let bps = ref [] in
  for i = 0 to n - 1 do
    if s.(i) <> 0.0 then bps := (-.r.(i) /. s.(i), Float.abs s.(i), allowed.(i)) :: !bps
  done;
  let bps = Array.of_list !bps in
  if Array.length bps = 0 then 0.0
  else begin
    Array.sort (fun (a, _, _) (b, _, _) -> compare a b) bps;
    let total = Array.fold_left (fun acc (_, w, _) -> acc +. w) 0.0 bps in
    (* Weighted median: first breakpoint where the cumulative weight
       reaches half the total — there the slope of f changes sign. *)
    let median = ref (Array.length bps - 1) in
    let acc = ref 0.0 in
    (try
       Array.iteri
         (fun i (_, w, _) ->
           acc := !acc +. w;
           if !acc >= 0.5 *. total then begin
             median := i;
             raise Exit
           end)
         bps
     with Exit -> ());
    let t_of i = let t, _, _ = bps.(i) in t in
    let ok i = let _, _, a = bps.(i) in a in
    if ok !median then t_of !median
    else begin
      (* Linear scan outward for the nearest allowed candidates; f is
         convex, so the best allowed point is one of the two. *)
      let left = ref (!median - 1) in
      while !left >= 0 && not (ok !left) do decr left done;
      let right = ref (!median + 1) in
      while !right < Array.length bps && not (ok !right) do incr right done;
      match (!left >= 0, !right < Array.length bps) with
      | false, false -> 0.0
      | true, false -> t_of !left
      | false, true -> t_of !right
      | true, true ->
          let fl = eval_abs_sum ~r ~s (t_of !left)
          and fr = eval_abs_sum ~r ~s (t_of !right) in
          if fl <= fr then t_of !left else t_of !right
    end
  end

let sum_residual (z : Zonotope.t) ~target =
  let nv = Zonotope.num_vars z in
  let ep = Zonotope.num_phi z and ee = Zonotope.num_eps z in
  let c = ref target in
  let alpha = Array.make ep 0.0 and beta = Array.make ee 0.0 in
  for v = 0 to nv - 1 do
    c := !c -. z.Zonotope.center.Mat.data.(v);
    for j = 0 to ep - 1 do
      alpha.(j) <- alpha.(j) -. z.Zonotope.phi.Mat.data.((v * ep) + j)
    done;
    for j = 0 to ee - 1 do
      beta.(j) <- beta.(j) -. z.Zonotope.eps.Mat.data.((v * ee) + j)
    done
  done;
  (!c, alpha, beta)

let pivot_tol = 1e-9

(* Any multiplier of the residual is sound, but a huge one (which appears
   when the softmax saturates and the residual's coefficients nearly
   vanish) amplifies the residual's other coefficients catastrophically.
   Refinements needing a larger multiplier are skipped. *)
let t_cap = 100.0

(* y'_v = y_v + t * S applied in place on copies of the coefficient data. *)
let add_multiple_of_s ~center ~phi ~eps ~v ~t ~c_s ~alpha_s ~beta_s =
  if t <> 0.0 then begin
    let ep = Array.length alpha_s and ee = Array.length beta_s in
    center.Mat.data.(v) <- center.Mat.data.(v) +. (t *. c_s);
    for j = 0 to ep - 1 do
      phi.Mat.data.((v * ep) + j) <-
        phi.Mat.data.((v * ep) + j) +. (t *. alpha_s.(j))
    done;
    for j = 0 to ee - 1 do
      eps.Mat.data.((v * ee) + j) <-
        eps.Mat.data.((v * ee) + j) +. (t *. beta_s.(j))
    done
  end

let softmax_sum (z : Zonotope.t) =
  let nv = Zonotope.num_vars z in
  let ep = Zonotope.num_phi z and ee = Zonotope.num_eps z in
  if nv < 2 || ee = 0 then z
  else begin
    let c_s, alpha_s, beta_s = sum_residual z ~target:1.0 in
    (* Pivot: the ε symbol with the largest residual coefficient. *)
    let k = ref 0 in
    for j = 1 to ee - 1 do
      if Float.abs beta_s.(j) > Float.abs beta_s.(!k) then k := j
    done;
    let k = !k in
    if Float.abs beta_s.(k) < pivot_tol then z
    else begin
      let center = Mat.copy z.Zonotope.center in
      let phi = Mat.copy z.Zonotope.phi in
      let eps = Mat.copy z.Zonotope.eps in
      (* Step 1: refine y_0 with the mass-minimizing multiplier. Candidates
         eliminating a φ coefficient are disallowed (Appendix A.1). *)
      let r = Array.make (ep + ee) 0.0 and s = Array.make (ep + ee) 0.0 in
      let allowed = Array.make (ep + ee) true in
      for j = 0 to ep - 1 do
        r.(j) <- phi.Mat.data.(j);
        s.(j) <- alpha_s.(j);
        allowed.(j) <- false
      done;
      for j = 0 to ee - 1 do
        r.(ep + j) <- eps.Mat.data.(j);
        s.(ep + j) <- beta_s.(j)
      done;
      let t0 = minimize_abs_sum ~r ~s ~allowed in
      (* The minimizer only searches breakpoints; t = 0 (no refinement) is
         always admissible, so never do worse than it, and never apply an
         extreme multiplier. *)
      let t0 =
        if Float.abs t0 > t_cap || eval_abs_sum ~r ~s t0 > eval_abs_sum ~r ~s 0.0
        then 0.0
        else t0
      in
      add_multiple_of_s ~center ~phi ~eps ~v:0 ~t:t0 ~c_s ~alpha_s ~beta_s;
      (* Step 2: eliminate the pivot symbol from the other variables. *)
      for v = 1 to nv - 1 do
        let t = -.eps.Mat.data.((v * ee) + k) /. beta_s.(k) in
        if Float.abs t <= t_cap then
          add_multiple_of_s ~center ~phi ~eps ~v ~t ~c_s ~alpha_s ~beta_s
      done;
      (* Step 3: tighten ε ranges implied by S = 0 and renormalize the
         tightened symbols back to [-1, 1] within this zonotope. *)
      let q = Lp.dual z.Zonotope.p in
      let alpha_norm = Lp.norm q alpha_s in
      let beta_l1 = Vecops.l1 beta_s in
      for m = 0 to ee - 1 do
        let bm = beta_s.(m) in
        if Float.abs bm > pivot_tol then begin
          let mid = -.c_s /. bm in
          let rad = (alpha_norm +. beta_l1 -. Float.abs bm) /. Float.abs bm in
          let lo = Float.max (-1.0) (mid -. rad) in
          let hi = Float.min 1.0 (mid +. rad) in
          if lo > -1.0 +. 1e-12 || hi < 1.0 -. 1e-12 then begin
            let lo = Float.min lo hi and hi = Float.max lo hi in
            let nmid = 0.5 *. (lo +. hi) and nrad = 0.5 *. (hi -. lo) in
            for v = 0 to nv - 1 do
              let coeff = eps.Mat.data.((v * ee) + m) in
              if coeff <> 0.0 then begin
                center.Mat.data.(v) <- center.Mat.data.(v) +. (coeff *. nmid);
                eps.Mat.data.((v * ee) + m) <- coeff *. nrad
              end
            done
          end
        end
      done;
      (* The residual mix adds t * β_s to every variable's ε row; β_s is
         ±0.0 on columns dead in every row and t is finite (capped), so
         dead columns stay dead — but the writes land in all rows, so
         each band must be widened to the full row range. *)
      Zonotope.make ~p:z.Zonotope.p ~center ~phi ~eps
      |> Zonotope.with_eps_occ (Bands.widen_rows ~rows:nv z.Zonotope.eps_occ)
    end
  end
