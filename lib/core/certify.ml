open Tensor

let margin (out : Zonotope.t) ~true_class =
  if out.Zonotope.vrows <> 1 then invalid_arg "Certify.margin: output not 1 x C";
  let c = out.Zonotope.vcols in
  if true_class < 0 || true_class >= c then invalid_arg "Certify.margin: class";
  let ct, at, bt = Zonotope.var_affine out true_class in
  let best = ref infinity in
  for j = 0 to c - 1 do
    if j <> true_class then begin
      let cj, aj, bj = Zonotope.var_affine out j in
      let alpha = Vecops.sub at aj in
      (* ε widths can differ between reads only through padding; var_affine
         returns rows of the same matrix, so they match. *)
      let beta = Vecops.sub bt bj in
      let q = Lp.dual out.Zonotope.p in
      let lb = ct -. cj -. Lp.norm q alpha -. Vecops.l1 beta in
      if lb < !best then best := lb
    end
  done;
  !best

let certify_margin ?prefix cfg program region ~true_class =
  (* An Unbounded abstraction (overflowed exponential at an absurd radius)
     or an aborted propagation (budget, poison) simply cannot be
     certified. *)
  match Propagate.run ?prefix cfg program region with
  | out ->
      let m = margin out ~true_class in
      if Float.is_nan m then neg_infinity else m
  | exception Zonotope.Unbounded -> neg_infinity
  | exception Verdict.Abort _ -> neg_infinity

let certify ?prefix cfg program region ~true_class =
  certify_margin ?prefix cfg program region ~true_class > 0.0

let certify_v ?prefix cfg program region ~true_class =
  match Propagate.run ?prefix cfg program region with
  | out ->
      let m = margin out ~true_class in
      if Float.is_nan m then Verdict.Unknown Verdict.Numerical_fault
      else if m = neg_infinity then Verdict.Unknown Verdict.Unbounded
      else if m > 0.0 then Verdict.Certified
      else Verdict.Unknown Verdict.Imprecise
  | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
  | exception Verdict.Abort r -> Verdict.Unknown r

(* ---------------- radius search ---------------- *)

let executor_of (s : Config.search) =
  if s.Config.probes <= 1 then Psearch.Sequential else Psearch.Grid s.Config.probes

let runner_of (s : Config.search) =
  match s.Config.probe_backend with
  | Config.Serial_probes -> Psearch.serial_runner
  | Config.Fork_probes -> Psearch.fork_runner
  | Config.Domain_probes -> (
      match Propagate.shared_pool s.Config.probes with
      | Some dp -> Psearch.dpool_runner dp
      | None -> Psearch.serial_runner)

(* Validation kept here (with the historical messages) rather than in
   Psearch so hardening tests keep pinning the same errors. *)
let run_search ?(lo = 0.0) ?(hi = 0.5) ~iters ~(search : Config.search) probe =
  if hi <= lo then invalid_arg "Certify.max_radius: hi <= lo";
  if not (Float.is_finite hi && Float.is_finite lo) then
    invalid_arg "Certify.max_radius: bracket must be finite";
  Psearch.search ~lo ~hi ~iters ?rounds:search.Config.rounds
    ~exec:(executor_of search) ~runner:(runner_of search) probe

let max_radius ?lo ?hi ?(iters = 10) ?(search = Config.default_search) certifies
    =
  (* A probe that faults — typed abort or collapsed abstraction — counts as
     "bad": it may shrink the bracket but can never certify, so the search
     always terminates and only ever returns a radius that certified. *)
  (run_search ?lo ?hi ~iters ~search (Psearch.probe_of certifies)).Psearch.radius

(* Probe amortization: the leading affine prefix (ViT patch embedding) is
   an exact linear map, so a unit-radius input region propagated once
   yields, for every probe radius r, the prefix output by rescaling the
   generator coefficient matrices by r — the center is radius-independent
   and stays physically shared (Zonotope.scale_coeffs). Engaged only for
   multi-probe searches: float rescaling is within tolerance of, but not
   bit-identical to, re-propagation, and the probes = 1 radii are pinned
   bit-for-bit in the test suite. Disabled under fault injection (the
   fault must fire inside every probe, and Inject_nan/Inject_inf mutate
   the op output in place — unsafe on a shared center) and by the
   DEEPT_NO_PREFIX_SHARE escape hatch. *)
let search_prefix (cfg : Config.t) program ~p x ~word =
  let s = cfg.Config.search in
  if
    s.Config.probes <= 1
    || (not s.Config.share_prefix)
    || Sys.getenv_opt "DEEPT_NO_PREFIX_SHARE" <> None
    || cfg.Config.fault <> None
  then None
  else
    match Propagate.affine_prefix_len program with
    | 0 -> None
    | len -> (
        match
          Propagate.run_prefix cfg program
            (Region.lp_ball ~p x ~word ~radius:1.0)
            ~len
        with
        | vals -> Some (vals, len)
        | exception _ -> None)

(* Rescale a shared prefix value array to probe radius [r]. Slots beyond
   the prefix all alias the input zonotope, so scaled values are memoized
   by physical equality to keep the aliasing (and the work) O(prefix). *)
let scale_vals r vals =
  let memo = ref [] in
  Array.map
    (fun z ->
      match List.assq_opt z !memo with
      | Some z' -> z'
      | None ->
          let z' = Zonotope.scale_coeffs r z in
          memo := (z, z') :: !memo;
          z')
    vals

let certified_radius cfg program ~p x ~word ~true_class ?hi ?(iters = 10) () =
  let search = cfg.Config.search in
  let shared = search_prefix cfg program ~p x ~word in
  let certifies radius =
    radius > 0.0
    &&
    let prefix =
      Option.map (fun (vals, len) -> (scale_vals radius vals, len)) shared
    in
    certify ?prefix cfg program (Region.lp_ball ~p x ~word ~radius) ~true_class
  in
  max_radius ?hi ~iters ~search certifies

type radius_report = {
  radius : float;
  bracket : float * float;
  bracket_probes : int;
  bisect_probes : int;
  rounds : int;
  faulted_probes : (float * Verdict.unknown_reason) list;
  refined_radius : float option;
}

(* Branch-and-bound refinement at the failing edge of the plain search's
   final bracket (good, bad). The first refined probe is [bad] itself —
   the smallest radius the *plain* config is known to fail at. Only if
   branch-and-bound certifies that edge does the search continue (a few
   bisections of [bad, 2*bad], all with the refined certifier);
   otherwise the plain radius stands. So a refined radius above the
   plain one is attributable to refinement alone, never to extra
   bisection of the plain bracket, and the refined probes — each up to
   1 + max_branches full propagations — are spent only where refinement
   has already proven it can move the edge. The probe is deterministic
   (Brefine's contract), so the refined radius is as reproducible as
   the plain one. *)
let refine_steps = 3

let refine_edge (cfg : Config.t) program ~p x ~word ~true_class (good, bad) =
  match cfg.Config.refine with
  | None -> None
  | Some _ ->
      if not (Float.is_finite bad) || bad <= good then None
      else begin
        let certifies radius =
          radius > 0.0
          && Brefine.certify cfg program
               (Region.lp_ball ~p x ~word ~radius)
               ~true_class
        in
        if not (certifies bad) then Some good
        else begin
          let g = ref bad and b = ref (2.0 *. bad) in
          for _ = 1 to refine_steps do
            let mid = 0.5 *. (!g +. !b) in
            if certifies mid then g := mid else b := mid
          done;
          Some !g
        end
      end

let certified_radius_v cfg program ~p x ~word ~true_class ?hi ?(iters = 10) ()
    =
  let search = cfg.Config.search in
  let shared = search_prefix cfg program ~p x ~word in
  let probe radius =
    if radius <= 0.0 then Psearch.Bad
    else begin
      let prefix =
        Option.map (fun (vals, len) -> (scale_vals radius vals, len)) shared
      in
      match
        certify_v ?prefix cfg program
          (Region.lp_ball ~p x ~word ~radius)
          ~true_class
      with
      | Verdict.Certified -> Psearch.Good
      | Verdict.Falsified | Verdict.Unknown Verdict.Imprecise -> Psearch.Bad
      | Verdict.Unknown r -> Psearch.Faulted r
    end
  in
  let r = run_search ?hi ~iters ~search probe in
  let refined_radius =
    refine_edge cfg program ~p x ~word ~true_class
      (r.Psearch.good, r.Psearch.bad)
  in
  {
    radius = r.Psearch.radius;
    bracket = (r.Psearch.good, r.Psearch.bad);
    bracket_probes = r.Psearch.stats.Psearch.bracket_probes;
    bisect_probes = r.Psearch.stats.Psearch.bisect_probes;
    rounds = r.Psearch.stats.Psearch.rounds;
    faulted_probes = r.Psearch.stats.Psearch.faulted;
    refined_radius;
  }

let certify_synonyms cfg program x subs ~true_class =
  certify cfg program (Region.synonym_box x subs) ~true_class

let count_combinations subs =
  List.fold_left (fun acc (_, alts) -> acc * (1 + List.length alts)) 1 subs

let enumerate_synonyms ?(limit = 1_000_000) program x subs ~true_class =
  let subs = Array.of_list subs in
  let n = Array.length subs in
  let current = Mat.copy x in
  let checked = ref 0 in
  let ok = ref true in
  let d = Mat.cols x in
  let set_row pos (row : float array option) =
    match row with
    | None ->
        for j = 0 to d - 1 do
          Mat.set current pos j (Mat.get x pos j)
        done
    | Some r ->
        for j = 0 to d - 1 do
          Mat.set current pos j r.(j)
        done
  in
  let rec go i =
    if not !ok || !checked >= limit then ()
    else if i = n then begin
      incr checked;
      if Nn.Forward.predict program current <> true_class then ok := false
    end
    else begin
      let pos, alts = subs.(i) in
      set_row pos None;
      go (i + 1);
      List.iter
        (fun alt ->
          if !ok && !checked < limit then begin
            set_row pos (Some alt);
            go (i + 1)
          end)
        alts;
      set_row pos None
    end
  in
  go 0;
  (!ok, !checked)

(* --- zero-copy region batches ---------------------------------------- *)

(* Certify explicit input regions on the supervised pool with the Shm
   transport. Unlike the batch driver (whose jobs are tiny token
   descriptors, with the region rebuilt inside the worker), the regions
   here are matrix-heavy values produced *after* any worker could have
   inherited them — so without the arena each job would Marshal its
   coefficient matrices through the pipe. The parent packs every region
   before Supervisor.run forks (workers inherit the mapping), ships
   descriptors, and frees all blocks once every job's outcome — result
   or worker death — is final; a SIGKILLed worker therefore leaves the
   arena fully reusable. Margins are computed from a bit-exact unpack,
   so results are bit-identical whichever transport each matrix took. *)
let certify_regions ?arena ?pool cfg program ~true_class jobs =
  let packed =
    List.map (fun (id, z) -> (id, Xfer.pack_zono ?arena z)) jobs
  in
  let worker _id desc =
    certify_margin cfg program (Xfer.unpack_zono ?arena desc) ~true_class
  in
  let results = Supervisor.run ?pool ~worker packed in
  (match arena with
  | Some a -> List.iter (fun (_, d) -> Xfer.free_zono a d) packed
  | None -> ());
  results
