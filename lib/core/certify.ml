open Tensor

let margin (out : Zonotope.t) ~true_class =
  if out.Zonotope.vrows <> 1 then invalid_arg "Certify.margin: output not 1 x C";
  let c = out.Zonotope.vcols in
  if true_class < 0 || true_class >= c then invalid_arg "Certify.margin: class";
  let ct, at, bt = Zonotope.var_affine out true_class in
  let best = ref infinity in
  for j = 0 to c - 1 do
    if j <> true_class then begin
      let cj, aj, bj = Zonotope.var_affine out j in
      let alpha = Vecops.sub at aj in
      (* ε widths can differ between reads only through padding; var_affine
         returns rows of the same matrix, so they match. *)
      let beta = Vecops.sub bt bj in
      let q = Lp.dual out.Zonotope.p in
      let lb = ct -. cj -. Lp.norm q alpha -. Vecops.l1 beta in
      if lb < !best then best := lb
    end
  done;
  !best

let certify_margin ?prefix cfg program region ~true_class =
  (* An Unbounded abstraction (overflowed exponential at an absurd radius)
     or an aborted propagation (budget, poison) simply cannot be
     certified. *)
  match Propagate.run ?prefix cfg program region with
  | out ->
      let m = margin out ~true_class in
      if Float.is_nan m then neg_infinity else m
  | exception Zonotope.Unbounded -> neg_infinity
  | exception Verdict.Abort _ -> neg_infinity

let certify ?prefix cfg program region ~true_class =
  certify_margin ?prefix cfg program region ~true_class > 0.0

let certify_v ?prefix cfg program region ~true_class =
  match Propagate.run ?prefix cfg program region with
  | out ->
      let m = margin out ~true_class in
      if Float.is_nan m then Verdict.Unknown Verdict.Numerical_fault
      else if m = neg_infinity then Verdict.Unknown Verdict.Unbounded
      else if m > 0.0 then Verdict.Certified
      else Verdict.Unknown Verdict.Imprecise
  | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
  | exception Verdict.Abort r -> Verdict.Unknown r

let max_radius ?(lo = 0.0) ?(hi = 0.5) ?(iters = 10) certifies =
  if hi <= lo then invalid_arg "Certify.max_radius: hi <= lo";
  if not (Float.is_finite hi && Float.is_finite lo) then
    invalid_arg "Certify.max_radius: bracket must be finite";
  (* A probe that faults — typed abort or collapsed abstraction — counts as
     "bad": it may shrink the bracket but can never certify, so the search
     always terminates and only ever returns a radius that certified. *)
  let probe r =
    match certifies r with
    | ok -> ok
    | exception Verdict.Abort _ -> false
    | exception Zonotope.Unbounded -> false
  in
  (* Establish a bracket [good, bad]. *)
  let good = ref lo and bad = ref infinity in
  let r = ref hi in
  (try
     for _ = 0 to 3 do
       if probe !r then begin
         good := !r;
         r := !r *. 2.0
       end
       else begin
         bad := !r;
         raise Exit
       end
     done
   with Exit -> ());
  if !bad = infinity then !good
  else begin
    for _ = 1 to iters do
      let mid = 0.5 *. (!good +. !bad) in
      if probe mid then good := mid else bad := mid
    done;
    !good
  end

let certified_radius cfg program ~p x ~word ~true_class ?hi ?(iters = 10) () =
  max_radius ?hi ~iters (fun radius ->
      radius > 0.0
      && certify cfg program (Region.lp_ball ~p x ~word ~radius) ~true_class)

type radius_report = {
  radius : float;
  probes : int;
  faulted_probes : (float * Verdict.unknown_reason) list;
}

let certified_radius_v cfg program ~p x ~word ~true_class ?hi ?(iters = 10) () =
  let probes = ref 0 and faulted = ref [] in
  let certifies radius =
    incr probes;
    radius > 0.0
    &&
    match
      certify_v cfg program (Region.lp_ball ~p x ~word ~radius) ~true_class
    with
    | Verdict.Certified -> true
    | Verdict.Falsified | Verdict.Unknown Verdict.Imprecise -> false
    | Verdict.Unknown r ->
        faulted := (radius, r) :: !faulted;
        false
  in
  let radius = max_radius ?hi ~iters certifies in
  { radius; probes = !probes; faulted_probes = List.rev !faulted }

let certify_synonyms cfg program x subs ~true_class =
  certify cfg program (Region.synonym_box x subs) ~true_class

let count_combinations subs =
  List.fold_left (fun acc (_, alts) -> acc * (1 + List.length alts)) 1 subs

let enumerate_synonyms ?(limit = 1_000_000) program x subs ~true_class =
  let subs = Array.of_list subs in
  let n = Array.length subs in
  let current = Mat.copy x in
  let checked = ref 0 in
  let ok = ref true in
  let d = Mat.cols x in
  let set_row pos (row : float array option) =
    match row with
    | None ->
        for j = 0 to d - 1 do
          Mat.set current pos j (Mat.get x pos j)
        done
    | Some r ->
        for j = 0 to d - 1 do
          Mat.set current pos j r.(j)
        done
  in
  let rec go i =
    if not !ok || !checked >= limit then ()
    else if i = n then begin
      incr checked;
      if Nn.Forward.predict program current <> true_class then ok := false
    end
    else begin
      let pos, alts = subs.(i) in
      set_row pos None;
      go (i + 1);
      List.iter
        (fun alt ->
          if !ok && !checked < limit then begin
            set_row pos (Some alt);
            go (i + 1)
          end)
        alts;
      set_row pos None
    end
  in
  go 0;
  (!ok, !checked)
