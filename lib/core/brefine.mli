(** Branch-and-bound symbol-splitting refinement — the precision
    ladder's {e upward} direction (DESIGN.md §13).

    {!Engine}'s degradation ladder only trades precision {e down}; when
    the requested rung returns [Unknown Imprecise] the query used to be
    lost even though the final zonotope records exactly which noise
    symbols lost the margin. This module recovers such queries: it ranks
    the input noise symbols by their |coefficient| contribution to the
    {e losing} logit margin (read straight off the output zonotope),
    splits the strongest [top_k] symbol ranges in half
    ({!Zonotope.restrict_symbol}) and re-certifies the [2^top_k]
    half-combinations branch-and-bound style.

    {b Union semantics (sound).} The branches of one split jointly cover
    the parent region, so the parent is [Certified] iff {e every} branch
    certifies. Any faulted branch — typed abort, collapsed abstraction,
    dead fork worker — aborts the refinement to [Unknown] with that
    branch's reason (the first faulted branch in deterministic branch
    order). A branch verdict is margin-only, so refinement can never
    produce — and therefore never flip — a [Falsified].

    {b Determinism.} The first split wave may run on any of
    {!Psearch}'s wave runners (serial / fork / domain pool); every
    deeper re-split runs serially inside its branch with a budget share
    fixed before the wave launches, so the refinement's outcome is a
    pure function of (config, program, region) — bit-identical across
    runners.

    Branch budget ([Config.refine.max_branches]) counts branch
    propagations across the whole tree; the per-propagation deadline and
    symbol budget are inherited from [Config.budget] like every other
    propagation. *)

type branch_eval = {
  bverdict : Verdict.t;
  props : int;  (** propagations consumed by the branch, recursion included *)
  bdepth : int;  (** split levels below the branch *)
}
(** Result of one branch evaluation — plain data, safe across the
    Marshal boundary of a fork wave. *)

type wave = branch_eval Psearch.wave

type report = {
  verdict : Verdict.t;
      (** [Certified], or [Unknown] — never [Falsified] (margin-only) *)
  split : Zonotope.symbol list;
      (** the top-level split symbols, strongest-ranked first; empty
          when no split happened (clean verdict, fault, or nothing
          splittable) *)
  branches : int;  (** branch propagations spent (ranking run excluded) *)
  depth : int;  (** deepest split level reached; 0 = no split *)
}

val certify_v :
  ?wave:wave ->
  Config.t ->
  Ir.program ->
  Zonotope.t ->
  true_class:int ->
  report
(** [certify_v cfg program region ~true_class] propagates the region
    once; if the margin is imprecise, refines branch-and-bound style
    under [cfg.refine]. [?wave] overrides the first-wave runner (tests:
    fault injection, cross-runner bit-identity); the default is chosen
    from [cfg.search.probe_backend] like the radius-probe runners.
    @raise Invalid_argument when [cfg.refine] is [None]. *)

val certify :
  ?wave:wave -> Config.t -> Ir.program -> Zonotope.t -> true_class:int -> bool
(** [certify_v] collapsed to "did it certify" — the refined radius-probe
    predicate used by {!Certify.certified_radius}. *)

(**/**)

val losing_margin : Zonotope.t -> true_class:int -> float * int
(** [(margin lower bound, argmin adversary class)] of an output
    zonotope; agrees with [Certify.margin] on the bound. Exposed for
    tests. *)

val rank_symbols :
  Zonotope.t -> Zonotope.t -> true_class:int -> (float * Zonotope.symbol) list
(** [rank_symbols out region ~true_class]: the input symbols of
    [region] ranked by |coefficient| in [out]'s losing margin,
    strongest first. Exposed for tests. *)
