open Tensor
open Interval

exception Unbounded

type ctx = {
  mutable n_eps : int;
  mutable deadline : float option;
  mutable pool : Dpool.t option;
}

let ctx () = { n_eps = 0; deadline = None; pool = None }
let ctx_symbols c = c.n_eps
let set_deadline c d = c.deadline <- d
let set_pool c p = c.pool <- p
let ctx_pool c = c.pool

let check_deadline c =
  match c.deadline with
  | Some t when Unix.gettimeofday () > t -> raise (Verdict.Abort Verdict.Timeout)
  | _ -> ()

let alloc_eps c n =
  if n < 0 then invalid_arg "Zonotope.alloc_eps";
  let first = c.n_eps in
  c.n_eps <- c.n_eps + n;
  first

let reset_symbols c n =
  if n < 0 then invalid_arg "Zonotope.reset_symbols";
  c.n_eps <- n

type t = {
  vrows : int;
  vcols : int;
  p : Lp.t;
  center : Mat.t;
  phi : Mat.t;
  eps : Mat.t;
  eps_occ : Bands.t;
}

let num_vars z = z.vrows * z.vcols
let num_phi z = Mat.cols z.phi
let num_eps z = Mat.cols z.eps

(* The ε occupancy invariant (see Bands and DESIGN.md section 14):
   outside the band union of [eps_occ] every entry of [eps] has
   absolute value 0.0. Every transformer below maintains it — affine
   maps convert bands structurally, nonlinear transformers append a
   band for the rows they minted symbols for, and anything that could
   smear values across the tracked structure (non-finite scalars,
   non-finite weights) widens to [Bands.full], which is always sound.
   With DEEPT_NO_SPARSE set, [make] pins every occupancy to full and
   the whole layer degrades to the dense kernels. *)

let make ~p ~center ~phi ~eps =
  let n = Mat.rows center * Mat.cols center in
  if Mat.rows phi <> n || Mat.rows eps <> n then
    invalid_arg "Zonotope.make: coefficient row count mismatch";
  let eps_occ =
    if not Bands.enabled || Mat.cols eps > 0 then Bands.full else Bands.empty
  in
  { vrows = Mat.rows center; vcols = Mat.cols center; p; center; phi; eps;
    eps_occ }

let with_eps_occ occ z =
  { z with eps_occ = (if Bands.enabled then occ else Bands.full) }

(* Occupancy of freshly minted symbols: transformers assign fresh ids
   ascending in the flat variable order ([fresh.(v)] is the id offset of
   variable [v], or -1), so the ids minted inside one value row of
   [per_row] variables form a contiguous column range — one band per
   value row that allocated any. *)
let fresh_bands ~fresh ~base ~rows ~per_row =
  let bands = ref [] in
  for i = rows - 1 downto 0 do
    let lo = ref max_int and hi = ref min_int in
    for j = 0 to per_row - 1 do
      let f = fresh.((i * per_row) + j) in
      if f >= 0 then begin
        if f < !lo then lo := f;
        if f + 1 > !hi then hi := f + 1
      end
    done;
    if !lo < !hi then
      bands :=
        { Bands.col_lo = base + !lo; col_hi = base + !hi;
          row_lo = i * per_row; row_hi = (i + 1) * per_row }
        :: !bands
  done;
  Bands.of_bands !bands

let of_const p m =
  let n = Mat.rows m * Mat.cols m in
  {
    vrows = Mat.rows m;
    vcols = Mat.cols m;
    p;
    center = Mat.copy m;
    phi = Mat.create n 0;
    eps = Mat.create n 0;
    eps_occ = Bands.empty;
  }

(* ---------------- bounds ---------------- *)

let dual_row_norm p (m : Mat.t) v =
  (* ℓ_dual(p) norm of row [v] of [m], without copying the row. *)
  let c = Mat.cols m in
  let base = v * c in
  match Lp.dual p with
  | Lp.L1 ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := !acc +. Float.abs (Array.unsafe_get m.Mat.data (base + j))
      done;
      !acc
  | Lp.L2 ->
      (* scaled to avoid overflow on huge coefficients (saturated softmax
         layers produce exp-scale values) *)
      let mx = ref 0.0 in
      for j = 0 to c - 1 do
        mx := Float.max !mx (Float.abs (Array.unsafe_get m.Mat.data (base + j)))
      done;
      if !mx = 0.0 || not (Float.is_finite !mx) then !mx
      else begin
        let acc = ref 0.0 in
        for j = 0 to c - 1 do
          let x = Array.unsafe_get m.Mat.data (base + j) /. !mx in
          acc := !acc +. (x *. x)
        done;
        !mx *. sqrt !acc
      end
  | Lp.Linf ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := Float.max !acc (Float.abs (Array.unsafe_get m.Mat.data (base + j)))
      done;
      !acc

(* ℓ1 norm of ε row [v] walking only the live band intervals. Skipped
   entries contribute [Float.abs (±0.0) = +0.0], and adding +0.0 to the
   non-negative accumulator never changes a bit, so this is
   unconditionally identical to the dense scan — no finiteness gate
   needed (dead entries are ±0.0 by the occupancy invariant, never NaN:
   paths that could poison them widen the occupancy to full first). *)
let eps_l1_row z v =
  if Bands.is_full z.eps_occ then dual_row_norm Lp.Linf z.eps v
  else begin
    let m = z.eps in
    let c = Mat.cols m in
    let base = v * c in
    let acc = ref 0.0 in
    List.iter
      (fun (lo, hi) ->
        for j = lo to hi - 1 do
          acc := !acc +. Float.abs (Array.unsafe_get m.Mat.data (base + j))
        done)
      (Bands.row_intervals ~lo:v ~hi:(v + 1) ~cols:c z.eps_occ);
    !acc
  end

let radius_terms z v =
  if v < 0 || v >= num_vars z then invalid_arg "Zonotope.radius_terms";
  let a = dual_row_norm z.p z.phi v in
  let b = eps_l1_row z v in
  (a, b)

let bounds_var z v =
  let c = z.center.Mat.data.(v) in
  let a, b = radius_terms z v in
  let lo = c -. a -. b and hi = c +. a +. b in
  if Float.is_nan lo || Float.is_nan hi then raise Unbounded;
  Itv.make lo hi

(* Parallelizing threshold, in coefficient reads; below it the pool
   dispatch overhead dominates. *)
let par_threshold = 32_768

let bounds ?pool z =
  let lo = Mat.create z.vrows z.vcols and hi = Mat.create z.vrows z.vcols in
  let nv = num_vars z in
  let width = num_phi z + num_eps z + 1 in
  let body start stop =
    for v = start to stop - 1 do
      let c = z.center.Mat.data.(v) in
      let a, b = radius_terms z v in
      let l = c -. a -. b and h = c +. a +. b in
      if Float.is_nan l || Float.is_nan h then raise Unbounded;
      lo.Mat.data.(v) <- l;
      hi.Mat.data.(v) <- h
    done
  in
  (match pool with
  | Some p when Dpool.size p > 1 && nv * width >= par_threshold ->
      (* Floor the chunk size at 2 chunks per domain: each claim is a
         mutex round-trip, and a variable's bounds do not depend on how
         the range is cut, so load-balance-aware chunks stay exact. *)
      let balance = 2 * Dpool.size p in
      Dpool.run_ranges p ~n:nv
        ~chunk:(max ((nv + balance - 1) / balance) (par_threshold / (8 * width)))
        (fun ~start ~stop -> body start stop)
  | _ -> body 0 nv);
  Imat.make lo hi

(* ---------------- sampling ---------------- *)

let instantiate z ~phi ~eps =
  if Array.length phi <> num_phi z then invalid_arg "Zonotope.instantiate: phi length";
  if Array.length eps > num_eps z then
    invalid_arg "Zonotope.instantiate: too many eps";
  let out = Mat.copy z.center in
  let n = num_vars z in
  let ep = num_phi z and ee = num_eps z in
  for v = 0 to n - 1 do
    let acc = ref out.Mat.data.(v) in
    let pb = v * ep in
    for j = 0 to ep - 1 do
      acc := !acc +. (z.phi.Mat.data.(pb + j) *. phi.(j))
    done;
    let eb = v * ee in
    for j = 0 to min ee (Array.length eps) - 1 do
      acc := !acc +. (z.eps.Mat.data.(eb + j) *. eps.(j))
    done;
    out.Mat.data.(v) <- !acc
  done;
  out

let sample rng z =
  let phi = Lp.unit_ball_sample rng z.p (num_phi z) in
  let eps = Array.init (num_eps z) (fun _ -> Rng.uniform rng (-1.0) 1.0) in
  instantiate z ~phi ~eps

(* ---------------- alignment ---------------- *)

let pad_eps z w =
  let cur = num_eps z in
  if cur >= w then z
  else begin
    let n = num_vars z in
    let eps = Mat.create n w in
    for v = 0 to n - 1 do
      Array.blit z.eps.Mat.data (v * cur) eps.Mat.data (v * w) cur
    done;
    (* The appended columns are all-zero, so a full occupancy can be
       sharpened to a band over the pre-existing columns — this is
       where a dense prefix regains structure before fresh symbols are
       appended behind it. *)
    let eps_occ =
      if Bands.enabled && Bands.is_full z.eps_occ && cur > 0 then
        Bands.of_bands
          [ { Bands.col_lo = 0; col_hi = cur; row_lo = 0; row_hi = n } ]
      else z.eps_occ
    in
    { z with eps; eps_occ }
  end

let align a b =
  let w = max (num_eps a) (num_eps b) in
  (pad_eps a w, pad_eps b w)

(* ---------------- affine transformers ---------------- *)

(* Apply [block -> w^T . block] to every per-value-row coefficient block.
   [matmul_ta] fuses the transpose of [w] (no copy per value row) and
   shards wide blocks — the dominant products of a certification, with
   the ε width in the thousands by the last layer — over the pool.

   [?occ] (the coefficient matrix's band occupancy) lets the kernel
   skip dead column tiles per value row. Gated on the weight being free
   of infinities: with finite weights a dead column's dense output is
   exactly the +0.0 the skip leaves behind (the zero-skip is on the
   weight operand, so a dead ±0.0 coefficient only ever enters as
   [finite * ±0.0] accumulated onto +0.0), while an infinite weight
   would turn [inf * 0.0] into NaN in the dense result — so those fall
   back to the dense sweep. *)
let map_coeff_blocks ?pool ?occ vrows vcols_in vcols_out (w : Mat.t) (g : Mat.t)
    =
  let e = Mat.cols g in
  let out = Mat.create (vrows * vcols_out) e in
  if e > 0 then begin
    let cols_for =
      match occ with
      | Some o when not (Bands.is_full o) && Mat.finite_class w = `Finite ->
          fun i ->
            Some
              (Bands.row_intervals ~lo:(i * vcols_in)
                 ~hi:((i + 1) * vcols_in)
                 ~cols:e o)
      | _ -> fun _ -> None
    in
    for i = 0 to vrows - 1 do
      let block = Mat.sub_rows g (i * vcols_in) vcols_in in
      let mapped = Mat.matmul_ta ?pool ?cols:(cols_for i) w block in
      Array.blit mapped.Mat.data 0 out.Mat.data (i * vcols_out * e)
        (vcols_out * e)
    done
  end;
  out

(* An infinite coefficient (overflowed dot-product remainder, Dot.mid_rad)
   multiplied by a zero weight — or two infinite terms of opposite sign —
   turns into NaN inside the matmul. Widening those NaNs back to +inf is
   sound (the radius term becomes infinite, so the variable's bounds are
   [-inf, +inf] ⊇ anything) and keeps the poison from spreading as NaN,
   which float comparisons silently ignore. Only coefficient matrices may
   be widened this way; an infinite *center* would shift the box, so NaN
   centers are left for the bounds check / propagation checkpoint. *)
let scrub_coeff_nan (m : Mat.t) =
  Array.iteri
    (fun i x -> if Float.is_nan x then m.Mat.data.(i) <- infinity)
    m.Mat.data

let linear_map ?pool z w b =
  if Mat.rows w <> z.vcols then invalid_arg "Zonotope.linear_map: shape mismatch";
  if Array.length b <> Mat.cols w then invalid_arg "Zonotope.linear_map: bias";
  let vcols = Mat.cols w in
  let out =
    {
      vrows = z.vrows;
      vcols;
      p = z.p;
      center = Mat.add_row_broadcast (Mat.matmul ?pool z.center w) b;
      phi = map_coeff_blocks ?pool z.vrows z.vcols vcols w z.phi;
      eps = map_coeff_blocks ?pool ~occ:z.eps_occ z.vrows z.vcols vcols w z.eps;
      (* the map mixes variables only within a value row, so bands
         survive at value-row granularity; an infinite weight can smear
         NaN/inf anywhere, so that path forgets the structure *)
      eps_occ =
        (if Mat.finite_class w = `Finite then
           Bands.block_rows ~bin:z.vcols ~bout:vcols z.eps_occ
         else Bands.full);
    }
  in
  if Mat.finite_class z.phi = `Inf || Mat.finite_class z.eps = `Inf then begin
    scrub_coeff_nan out.phi;
    scrub_coeff_nan out.eps
  end;
  out

let add a b =
  if a.vrows <> b.vrows || a.vcols <> b.vcols then
    invalid_arg "Zonotope.add: value shape mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.add: phi width mismatch";
  let a, b = align a b in
  {
    a with
    center = Mat.add a.center b.center;
    phi = Mat.add a.phi b.phi;
    eps = Mat.add a.eps b.eps;
    eps_occ = Bands.union a.eps_occ b.eps_occ;
  }

let add_const z m = { z with center = Mat.add z.center m }

(* Scaling by a finite [s] maps a dead ±0.0 to ±0.0 (possibly flipping
   its sign — the occupancy invariant only tracks |x| = 0.0); a
   non-finite [s] turns dead zeros into NaN, so the structure is
   forgotten. *)
let scale s z =
  let eps_occ = if Float.is_finite s then z.eps_occ else Bands.full in
  {
    z with
    center = Mat.scale s z.center;
    phi = Mat.scale s z.phi;
    eps = Mat.scale s z.eps;
    eps_occ;
  }

(* Rescale only the generator coefficients, sharing the center. This is
   the radius-search amortization primitive: a unit-radius ℓp ball around
   [x] propagated through an affine prefix has coefficient matrices that
   are exactly linear in the radius, while the center is radius-
   independent — so one unit-radius propagation serves every probe.
   Sharing the center (no copy) is safe because the only center-mutating
   path, fault injection, disables prefix sharing (see
   Certify.search_prefix). *)
let scale_coeffs s z =
  let eps_occ = if Float.is_finite s then z.eps_occ else Bands.full in
  { z with phi = Mat.scale s z.phi; eps = Mat.scale s z.eps; eps_occ }

let neg z = scale (-1.0) z

(* ---------------- symbol splitting (branch-and-bound) ---------------- *)

type half = Lower | Upper
type symbol = Phi of int | Eps of int

(* Restricting ε_k to a half-range is an exact re-parameterization:
   ε_k = shift + 0.5 ε'_k with ε'_k ∈ [-1, 1] covers exactly [-1, 0]
   (Lower) or [0, 1] (Upper), so the two halves partition the parent.
   All ops are plain float multiply-adds in variable order — the result
   is bit-deterministic.

   A φ symbol cannot be halved in place: the φ block is constrained
   jointly by ‖φ‖_p ≤ 1, and substituting φ_k = shift + 0.5 φ'_k while
   keeping φ'_k inside the p-ball can *shrink* other coordinates' reach
   (unsound: e.g. p = 2, φ = (0.6, -0.8) lies in the parent, but after
   substituting on k = 1 the needed φ' has norm > 1). Instead the split
   coordinate is decoupled: the φ column is zeroed and re-issued as a
   fresh ε column of half magnitude, centered on the chosen half. The
   branch then constrains φ_k ∈ [shift - 1/2, shift + 1/2] {e
   independently} of the other φ coordinates — a superset of the
   parent's {‖φ‖_p ≤ 1, φ_k in the half}, so each branch is a sound
   relaxation and the two branches still cover the parent. The branch is
   strictly tighter than the parent in the split coordinate (range
   halved), which is where downstream nonlinear transformers gain
   precision. *)
let restrict_symbol z sym half =
  let n = num_vars z in
  let shift = match half with Lower -> -0.5 | Upper -> 0.5 in
  match sym with
  | Eps k ->
      let e = num_eps z in
      if k < 0 || k >= e then
        invalid_arg "Zonotope.restrict_symbol: eps index out of range";
      let center = Mat.copy z.center and eps = Mat.copy z.eps in
      for v = 0 to n - 1 do
        let c = eps.Mat.data.((v * e) + k) in
        center.Mat.data.(v) <- center.Mat.data.(v) +. (shift *. c);
        eps.Mat.data.((v * e) + k) <- 0.5 *. c
      done;
      { z with center; eps }
  | Phi k ->
      let np = num_phi z and ne = num_eps z in
      if k < 0 || k >= np then
        invalid_arg "Zonotope.restrict_symbol: phi index out of range";
      let center = Mat.copy z.center and phi = Mat.copy z.phi in
      let eps = Mat.create n (ne + 1) in
      for v = 0 to n - 1 do
        let c = phi.Mat.data.((v * np) + k) in
        center.Mat.data.(v) <- center.Mat.data.(v) +. (shift *. c);
        phi.Mat.data.((v * np) + k) <- 0.0;
        Array.blit z.eps.Mat.data (v * ne) eps.Mat.data (v * (ne + 1)) ne;
        eps.Mat.data.((v * (ne + 1)) + ne) <- 0.5 *. c
      done;
      (* the minted ε column is the split φ column's coefficients: a
         one-column band over all rows *)
      let eps_occ =
        Bands.add z.eps_occ
          { Bands.col_lo = ne; col_hi = ne + 1; row_lo = 0; row_hi = n }
      in
      { z with center; phi; eps; eps_occ }

let center_rows z ~gamma ~beta =
  if Array.length gamma <> z.vcols || Array.length beta <> z.vcols then
    invalid_arg "Zonotope.center_rows: parameter length";
  let d = z.vcols in
  let fd = float_of_int d in
  (* Per value row: y_ij = gamma_j * (x_ij - mean_i) + beta_j. All linear:
     the same map applies to the center (plus bias) and to every
     coefficient column (no bias). *)
    let center =
    let means = Mat.row_means z.center in
    Mat.mapi (fun i j v -> (gamma.(j) *. (v -. means.(i))) +. beta.(j)) z.center
  in
  (* A non-finite gamma would write NaN where the dense map reads a
     dead ±0.0 (inf * 0.0), so column skipping is only engaged — and
     the band structure only kept — when every gamma is finite. *)
  let gamma_finite = Array.for_all Float.is_finite gamma in
  let coeff ?occ (m : Mat.t) =
    (* coefficient matrices: same linear map, no bias *)
    let e = Mat.cols m in
    let out = Mat.create (Mat.rows m) e in
    if e > 0 then
      for i = 0 to z.vrows - 1 do
        let base = i * d in
        let live =
          match occ with
          | Some o when gamma_finite && not (Bands.is_full o) ->
              Bands.row_intervals ~lo:base ~hi:(base + d) ~cols:e o
          | _ -> [ (0, e) ]
        in
        List.iter
          (fun (jlo, jhi) ->
            for j = jlo to jhi - 1 do
              let mean = ref 0.0 in
              for c = 0 to d - 1 do
                mean := !mean +. m.Mat.data.(((base + c) * e) + j)
              done;
              let mean = !mean /. fd in
              for c = 0 to d - 1 do
                out.Mat.data.(((base + c) * e) + j) <-
                  gamma.(c) *. (m.Mat.data.(((base + c) * e) + j) -. mean)
              done
            done)
          live
      done;
    out
  in
  let eps_occ =
    if gamma_finite then
      (* the mean mixes rows within a value row: widen bands to
         value-row granularity *)
      Bands.block_rows ~bin:d ~bout:d z.eps_occ
    else Bands.full
  in
  { z with center; phi = coeff z.phi; eps = coeff ~occ:z.eps_occ z.eps; eps_occ }

let positional z pos =
  if Mat.rows pos < z.vrows || Mat.cols pos <> z.vcols then
    invalid_arg "Zonotope.positional: shape mismatch";
  let shift = Mat.init z.vrows z.vcols (fun i j -> Mat.get pos i j) in
  add_const z shift

(* ---------------- structural ---------------- *)

let select_rows_of_mat (m : Mat.t) idx =
  let c = Mat.cols m in
  let out = Mat.create (Array.length idx) c in
  Array.iteri
    (fun k r -> Array.blit m.Mat.data (r * c) out.Mat.data (k * c) c)
    idx;
  out

let reindex z vrows vcols idx ~eps_occ =
  (* [eps_occ] is the caller's row-permuted occupancy: each call site
     knows how [idx] moves coefficient rows and supplies a sound
     (possibly widened) image of [z.eps_occ] under that move. *)
  {
    z with
    vrows;
    vcols;
    center =
      Mat.of_array ~rows:vrows ~cols:vcols
        (Array.map (fun v -> z.center.Mat.data.(v)) idx);
    phi = select_rows_of_mat z.phi idx;
    eps = select_rows_of_mat z.eps idx;
    eps_occ;
  }

let select_value_rows z start n =
  if start < 0 || n < 0 || start + n > z.vrows then
    invalid_arg "Zonotope.select_value_rows";
  let idx =
    Array.init (n * z.vcols) (fun k ->
        let i = k / z.vcols and j = k mod z.vcols in
        ((start + i) * z.vcols) + j)
  in
  (* contiguous row slice: intersect the bands with it and rebase *)
  let eps_occ =
    Bands.restrict_rows ~lo:(start * z.vcols) ~hi:((start + n) * z.vcols)
      z.eps_occ
  in
  reindex z n z.vcols idx ~eps_occ

let pool_first z = select_value_rows z 0 1

let select_value_cols z start n =
  if start < 0 || n < 0 || start + n > z.vcols then
    invalid_arg "Zonotope.select_value_cols";
  let idx =
    Array.init (z.vrows * n) (fun k ->
        let i = k / n and j = k mod n in
        (i * z.vcols) + start + j)
  in
  (* keeps a sub-range of each value row: widening each band to its
     value rows and re-blocking at the new width is sound *)
  let eps_occ = Bands.block_rows ~bin:z.vcols ~bout:n z.eps_occ in
  reindex z z.vrows n idx ~eps_occ

let transpose_value z =
  let idx =
    Array.init (num_vars z) (fun k ->
        let i = k / z.vrows and j = k mod z.vrows in
        (* output var (i, j) with shape (vcols, vrows) reads input (j, i) *)
        (j * z.vcols) + i)
  in
  (* a vector transpose permutes nothing; a true transpose scatters
     rows, so widen each band to all rows *)
  let eps_occ =
    if z.vrows = 1 || z.vcols = 1 then z.eps_occ
    else Bands.widen_rows ~rows:(num_vars z) z.eps_occ
  in
  reindex z z.vcols z.vrows idx ~eps_occ

let reshape_value z ~rows ~cols =
  if rows * cols <> num_vars z then invalid_arg "Zonotope.reshape_value";
  { z with vrows = rows; vcols = cols;
    center = Mat.reshape z.center ~rows ~cols }

let hcat_value a b =
  if a.vrows <> b.vrows then invalid_arg "Zonotope.hcat_value: row mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.hcat_value: phi mismatch";
  let a, b = align a b in
  let vcols = a.vcols + b.vcols in
  let pick (ma : Mat.t) (mb : Mat.t) cols_kind =
    let e = match cols_kind with `Phi -> num_phi a | `Eps -> num_eps a in
    let out = Mat.create (a.vrows * vcols) e in
    if e > 0 then
      for i = 0 to a.vrows - 1 do
        Array.blit ma.Mat.data (i * a.vcols * e) out.Mat.data (i * vcols * e)
          (a.vcols * e);
        Array.blit mb.Mat.data (i * b.vcols * e) out.Mat.data
          ((i * vcols * e) + (a.vcols * e))
          (b.vcols * e)
      done;
    out
  in
  {
    vrows = a.vrows;
    vcols;
    p = a.p;
    center = Mat.hcat a.center b.center;
    phi = pick a.phi b.phi `Phi;
    eps = pick a.eps b.eps `Eps;
    (* both sides' rows land inside the same widened value rows *)
    eps_occ =
      Bands.union
        (Bands.block_rows ~bin:a.vcols ~bout:vcols a.eps_occ)
        (Bands.block_rows ~bin:b.vcols ~bout:vcols b.eps_occ);
  }

let vcat_value a b =
  if a.vcols <> b.vcols then invalid_arg "Zonotope.vcat_value: col mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.vcat_value: phi mismatch";
  let a, b = align a b in
  {
    a with
    vrows = a.vrows + b.vrows;
    center = Mat.vcat a.center b.center;
    phi = Mat.vcat a.phi b.phi;
    eps = Mat.vcat a.eps b.eps;
    eps_occ =
      Bands.union a.eps_occ
        (Bands.shift_rows (a.vrows * a.vcols) b.eps_occ);
  }

let of_rows = function
  | [] -> invalid_arg "Zonotope.of_rows: empty"
  | z :: rest -> List.fold_left vcat_value z rest

let map_rows_affine ?pool z m =
  if Mat.cols m <> z.vrows then invalid_arg "Zonotope.map_rows_affine";
  (* y = m . x : output var (i, j) = sum_k m_ik x_kj. Coefficients combine
     linearly with the same weights. Viewing the coefficient matrix of a
     [vrows x vcols] value as a [vrows x (vcols * e)] matrix (same
     row-major data) turns the combination into one matrix product, which
     runs on the blocked (and, for the softmax's n^2-variable difference
     matrices, pool-sharded) kernel. *)
  let vrows = Mat.rows m in
  (* An infinity in [m] multiplies dead +0.0 entries into NaN under the
     dense kernel; only a finite [m] may skip dead columns or keep the
     band structure. *)
  let m_finite = Mat.finite_class m = `Finite in
  let combine ?occ (g : Mat.t) =
    let e = Mat.cols g in
    if e = 0 then Mat.create (vrows * z.vcols) 0
    else begin
      let wide = Mat.of_array ~rows:z.vrows ~cols:(z.vcols * e) g.Mat.data in
      (* In the wide view, value column j holds symbol columns
         [j*e, (j+1)*e): replicate the live symbol intervals into each
         value column's slot (ascending j keeps the list sorted). *)
      let cols =
        match occ with
        | Some o when m_finite && not (Bands.is_full o) ->
            let ivs = Bands.col_intervals ~cols:e o in
            Some
              (List.concat_map
                 (fun j ->
                   List.map (fun (lo, hi) -> ((j * e) + lo, (j * e) + hi)) ivs)
                 (List.init z.vcols Fun.id))
        | _ -> None
      in
      let mapped = Mat.matmul ?pool ?cols m wide in
      Mat.of_array ~rows:(vrows * z.vcols) ~cols:e mapped.Mat.data
    end
  in
  {
    z with
    vrows;
    center = Mat.matmul m z.center;
    phi = combine z.phi;
    eps = combine ~occ:z.eps_occ z.eps;
    eps_occ =
      (if m_finite then
         (* every output row mixes all input rows of its value column:
            widen each band to the full new row range *)
         Bands.widen_rows ~rows:(vrows * z.vcols) z.eps_occ
       else Bands.full);
  }

(* ---------------- variable access ---------------- *)

let var_affine z v =
  if v < 0 || v >= num_vars z then invalid_arg "Zonotope.var_affine";
  (z.center.Mat.data.(v), Mat.row z.phi v, Mat.row z.eps v)

let phi_block z start n = Mat.sub_rows z.phi start n
let eps_block z start n = Mat.sub_rows z.eps start n

(* ---------------- dead-symbol compaction ---------------- *)

let eps_density z =
  Bands.density ~rows:(num_vars z) ~cols:(num_eps z) z.eps_occ

let compact z =
  let e = num_eps z in
  if e = 0 || Bands.is_full z.eps_occ then z
  else begin
    let dead = Bands.dead_cols ~cols:e z.eps_occ in
    let live = ref 0 in
    Array.iter (fun d -> if not d then incr live) dead;
    if !live = e then z
    else begin
      (* Dropping a coverage-empty column removes only ±0.0 entries:
         the ℓ1 row norms — and therefore every radius and verdict —
         are unchanged. [remap] sends old column ids to new ones so the
         bands move with their columns. *)
      let remap = Array.make e (-1) in
      let next = ref 0 in
      for j = 0 to e - 1 do
        if not dead.(j) then begin
          remap.(j) <- !next;
          incr next
        end
      done;
      let n = num_vars z in
      let out = Mat.create n !live in
      for i = 0 to n - 1 do
        let src = i * e and dst = i * !live in
        for j = 0 to e - 1 do
          let k = Array.unsafe_get remap j in
          if k >= 0 then
            Array.unsafe_set out.Mat.data (dst + k)
              (Array.unsafe_get z.eps.Mat.data (src + j))
        done
      done;
      let eps_occ =
        Bands.remap_cols
          (fun j -> if j < e && remap.(j) >= 0 then Some remap.(j) else None)
          z.eps_occ
      in
      { z with eps = out; eps_occ }
    end
  end

let contains_sample ?(tol = 1e-7) z m =
  Mat.dims m = (z.vrows, z.vcols)
  &&
  (* Short-circuit on the first violated variable: each check costs a
     full dual-norm scan of the variable's coefficient rows, so finishing
     the loop after [ok] is already false is pure waste. *)
  let nv = num_vars z in
  let rec ok v =
    v >= nv
    ||
    let itv = bounds_var z v in
    let x = m.Mat.data.(v) in
    x >= itv.Itv.lo -. tol && x <= itv.Itv.hi +. tol && ok (v + 1)
  in
  ok 0
