open Tensor
open Interval

exception Unbounded

type ctx = {
  mutable n_eps : int;
  mutable deadline : float option;
  mutable pool : Dpool.t option;
}

let ctx () = { n_eps = 0; deadline = None; pool = None }
let ctx_symbols c = c.n_eps
let set_deadline c d = c.deadline <- d
let set_pool c p = c.pool <- p
let ctx_pool c = c.pool

let check_deadline c =
  match c.deadline with
  | Some t when Unix.gettimeofday () > t -> raise (Verdict.Abort Verdict.Timeout)
  | _ -> ()

let alloc_eps c n =
  if n < 0 then invalid_arg "Zonotope.alloc_eps";
  let first = c.n_eps in
  c.n_eps <- c.n_eps + n;
  first

let reset_symbols c n =
  if n < 0 then invalid_arg "Zonotope.reset_symbols";
  c.n_eps <- n

type t = {
  vrows : int;
  vcols : int;
  p : Lp.t;
  center : Mat.t;
  phi : Mat.t;
  eps : Mat.t;
}

let num_vars z = z.vrows * z.vcols
let num_phi z = Mat.cols z.phi
let num_eps z = Mat.cols z.eps

let make ~p ~center ~phi ~eps =
  let n = Mat.rows center * Mat.cols center in
  if Mat.rows phi <> n || Mat.rows eps <> n then
    invalid_arg "Zonotope.make: coefficient row count mismatch";
  { vrows = Mat.rows center; vcols = Mat.cols center; p; center; phi; eps }

let of_const p m =
  let n = Mat.rows m * Mat.cols m in
  {
    vrows = Mat.rows m;
    vcols = Mat.cols m;
    p;
    center = Mat.copy m;
    phi = Mat.create n 0;
    eps = Mat.create n 0;
  }

(* ---------------- bounds ---------------- *)

let dual_row_norm p (m : Mat.t) v =
  (* ℓ_dual(p) norm of row [v] of [m], without copying the row. *)
  let c = Mat.cols m in
  let base = v * c in
  match Lp.dual p with
  | Lp.L1 ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := !acc +. Float.abs (Array.unsafe_get m.Mat.data (base + j))
      done;
      !acc
  | Lp.L2 ->
      (* scaled to avoid overflow on huge coefficients (saturated softmax
         layers produce exp-scale values) *)
      let mx = ref 0.0 in
      for j = 0 to c - 1 do
        mx := Float.max !mx (Float.abs (Array.unsafe_get m.Mat.data (base + j)))
      done;
      if !mx = 0.0 || not (Float.is_finite !mx) then !mx
      else begin
        let acc = ref 0.0 in
        for j = 0 to c - 1 do
          let x = Array.unsafe_get m.Mat.data (base + j) /. !mx in
          acc := !acc +. (x *. x)
        done;
        !mx *. sqrt !acc
      end
  | Lp.Linf ->
      let acc = ref 0.0 in
      for j = 0 to c - 1 do
        acc := Float.max !acc (Float.abs (Array.unsafe_get m.Mat.data (base + j)))
      done;
      !acc

let radius_terms z v =
  if v < 0 || v >= num_vars z then invalid_arg "Zonotope.radius_terms";
  let a = dual_row_norm z.p z.phi v in
  let b = dual_row_norm Lp.Linf z.eps v in
  (a, b)

let bounds_var z v =
  let c = z.center.Mat.data.(v) in
  let a, b = radius_terms z v in
  let lo = c -. a -. b and hi = c +. a +. b in
  if Float.is_nan lo || Float.is_nan hi then raise Unbounded;
  Itv.make lo hi

(* Parallelizing threshold, in coefficient reads; below it the pool
   dispatch overhead dominates. *)
let par_threshold = 32_768

let bounds ?pool z =
  let lo = Mat.create z.vrows z.vcols and hi = Mat.create z.vrows z.vcols in
  let nv = num_vars z in
  let width = num_phi z + num_eps z + 1 in
  let body start stop =
    for v = start to stop - 1 do
      let c = z.center.Mat.data.(v) in
      let a, b = radius_terms z v in
      let l = c -. a -. b and h = c +. a +. b in
      if Float.is_nan l || Float.is_nan h then raise Unbounded;
      lo.Mat.data.(v) <- l;
      hi.Mat.data.(v) <- h
    done
  in
  (match pool with
  | Some p when Dpool.size p > 1 && nv * width >= par_threshold ->
      (* Floor the chunk size at 2 chunks per domain: each claim is a
         mutex round-trip, and a variable's bounds do not depend on how
         the range is cut, so load-balance-aware chunks stay exact. *)
      let balance = 2 * Dpool.size p in
      Dpool.run_ranges p ~n:nv
        ~chunk:(max ((nv + balance - 1) / balance) (par_threshold / (8 * width)))
        (fun ~start ~stop -> body start stop)
  | _ -> body 0 nv);
  Imat.make lo hi

(* ---------------- sampling ---------------- *)

let instantiate z ~phi ~eps =
  if Array.length phi <> num_phi z then invalid_arg "Zonotope.instantiate: phi length";
  if Array.length eps > num_eps z then
    invalid_arg "Zonotope.instantiate: too many eps";
  let out = Mat.copy z.center in
  let n = num_vars z in
  let ep = num_phi z and ee = num_eps z in
  for v = 0 to n - 1 do
    let acc = ref out.Mat.data.(v) in
    let pb = v * ep in
    for j = 0 to ep - 1 do
      acc := !acc +. (z.phi.Mat.data.(pb + j) *. phi.(j))
    done;
    let eb = v * ee in
    for j = 0 to min ee (Array.length eps) - 1 do
      acc := !acc +. (z.eps.Mat.data.(eb + j) *. eps.(j))
    done;
    out.Mat.data.(v) <- !acc
  done;
  out

let sample rng z =
  let phi = Lp.unit_ball_sample rng z.p (num_phi z) in
  let eps = Array.init (num_eps z) (fun _ -> Rng.uniform rng (-1.0) 1.0) in
  instantiate z ~phi ~eps

(* ---------------- alignment ---------------- *)

let pad_eps z w =
  let cur = num_eps z in
  if cur >= w then z
  else begin
    let n = num_vars z in
    let eps = Mat.create n w in
    for v = 0 to n - 1 do
      Array.blit z.eps.Mat.data (v * cur) eps.Mat.data (v * w) cur
    done;
    { z with eps }
  end

let align a b =
  let w = max (num_eps a) (num_eps b) in
  (pad_eps a w, pad_eps b w)

(* ---------------- affine transformers ---------------- *)

(* Apply [block -> w^T . block] to every per-value-row coefficient block.
   [matmul_ta] fuses the transpose of [w] (no copy per value row) and
   shards wide blocks — the dominant products of a certification, with
   the ε width in the thousands by the last layer — over the pool. *)
let map_coeff_blocks ?pool vrows vcols_in vcols_out (w : Mat.t) (g : Mat.t) =
  let e = Mat.cols g in
  let out = Mat.create (vrows * vcols_out) e in
  if e > 0 then
    for i = 0 to vrows - 1 do
      let block = Mat.sub_rows g (i * vcols_in) vcols_in in
      let mapped = Mat.matmul_ta ?pool w block in
      Array.blit mapped.Mat.data 0 out.Mat.data (i * vcols_out * e)
        (vcols_out * e)
    done;
  out

(* An infinite coefficient (overflowed dot-product remainder, Dot.mid_rad)
   multiplied by a zero weight — or two infinite terms of opposite sign —
   turns into NaN inside the matmul. Widening those NaNs back to +inf is
   sound (the radius term becomes infinite, so the variable's bounds are
   [-inf, +inf] ⊇ anything) and keeps the poison from spreading as NaN,
   which float comparisons silently ignore. Only coefficient matrices may
   be widened this way; an infinite *center* would shift the box, so NaN
   centers are left for the bounds check / propagation checkpoint. *)
let scrub_coeff_nan (m : Mat.t) =
  Array.iteri
    (fun i x -> if Float.is_nan x then m.Mat.data.(i) <- infinity)
    m.Mat.data

let linear_map ?pool z w b =
  if Mat.rows w <> z.vcols then invalid_arg "Zonotope.linear_map: shape mismatch";
  if Array.length b <> Mat.cols w then invalid_arg "Zonotope.linear_map: bias";
  let vcols = Mat.cols w in
  let out =
    {
      vrows = z.vrows;
      vcols;
      p = z.p;
      center = Mat.add_row_broadcast (Mat.matmul ?pool z.center w) b;
      phi = map_coeff_blocks ?pool z.vrows z.vcols vcols w z.phi;
      eps = map_coeff_blocks ?pool z.vrows z.vcols vcols w z.eps;
    }
  in
  if Mat.finite_class z.phi = `Inf || Mat.finite_class z.eps = `Inf then begin
    scrub_coeff_nan out.phi;
    scrub_coeff_nan out.eps
  end;
  out

let add a b =
  if a.vrows <> b.vrows || a.vcols <> b.vcols then
    invalid_arg "Zonotope.add: value shape mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.add: phi width mismatch";
  let a, b = align a b in
  {
    a with
    center = Mat.add a.center b.center;
    phi = Mat.add a.phi b.phi;
    eps = Mat.add a.eps b.eps;
  }

let add_const z m = { z with center = Mat.add z.center m }

let scale s z =
  {
    z with
    center = Mat.scale s z.center;
    phi = Mat.scale s z.phi;
    eps = Mat.scale s z.eps;
  }

(* Rescale only the generator coefficients, sharing the center. This is
   the radius-search amortization primitive: a unit-radius ℓp ball around
   [x] propagated through an affine prefix has coefficient matrices that
   are exactly linear in the radius, while the center is radius-
   independent — so one unit-radius propagation serves every probe.
   Sharing the center (no copy) is safe because the only center-mutating
   path, fault injection, disables prefix sharing (see
   Certify.search_prefix). *)
let scale_coeffs s z = { z with phi = Mat.scale s z.phi; eps = Mat.scale s z.eps }

let neg z = scale (-1.0) z

(* ---------------- symbol splitting (branch-and-bound) ---------------- *)

type half = Lower | Upper
type symbol = Phi of int | Eps of int

(* Restricting ε_k to a half-range is an exact re-parameterization:
   ε_k = shift + 0.5 ε'_k with ε'_k ∈ [-1, 1] covers exactly [-1, 0]
   (Lower) or [0, 1] (Upper), so the two halves partition the parent.
   All ops are plain float multiply-adds in variable order — the result
   is bit-deterministic.

   A φ symbol cannot be halved in place: the φ block is constrained
   jointly by ‖φ‖_p ≤ 1, and substituting φ_k = shift + 0.5 φ'_k while
   keeping φ'_k inside the p-ball can *shrink* other coordinates' reach
   (unsound: e.g. p = 2, φ = (0.6, -0.8) lies in the parent, but after
   substituting on k = 1 the needed φ' has norm > 1). Instead the split
   coordinate is decoupled: the φ column is zeroed and re-issued as a
   fresh ε column of half magnitude, centered on the chosen half. The
   branch then constrains φ_k ∈ [shift - 1/2, shift + 1/2] {e
   independently} of the other φ coordinates — a superset of the
   parent's {‖φ‖_p ≤ 1, φ_k in the half}, so each branch is a sound
   relaxation and the two branches still cover the parent. The branch is
   strictly tighter than the parent in the split coordinate (range
   halved), which is where downstream nonlinear transformers gain
   precision. *)
let restrict_symbol z sym half =
  let n = num_vars z in
  let shift = match half with Lower -> -0.5 | Upper -> 0.5 in
  match sym with
  | Eps k ->
      let e = num_eps z in
      if k < 0 || k >= e then
        invalid_arg "Zonotope.restrict_symbol: eps index out of range";
      let center = Mat.copy z.center and eps = Mat.copy z.eps in
      for v = 0 to n - 1 do
        let c = eps.Mat.data.((v * e) + k) in
        center.Mat.data.(v) <- center.Mat.data.(v) +. (shift *. c);
        eps.Mat.data.((v * e) + k) <- 0.5 *. c
      done;
      { z with center; eps }
  | Phi k ->
      let np = num_phi z and ne = num_eps z in
      if k < 0 || k >= np then
        invalid_arg "Zonotope.restrict_symbol: phi index out of range";
      let center = Mat.copy z.center and phi = Mat.copy z.phi in
      let eps = Mat.create n (ne + 1) in
      for v = 0 to n - 1 do
        let c = phi.Mat.data.((v * np) + k) in
        center.Mat.data.(v) <- center.Mat.data.(v) +. (shift *. c);
        phi.Mat.data.((v * np) + k) <- 0.0;
        Array.blit z.eps.Mat.data (v * ne) eps.Mat.data (v * (ne + 1)) ne;
        eps.Mat.data.((v * (ne + 1)) + ne) <- 0.5 *. c
      done;
      { z with center; phi; eps }

let center_rows z ~gamma ~beta =
  if Array.length gamma <> z.vcols || Array.length beta <> z.vcols then
    invalid_arg "Zonotope.center_rows: parameter length";
  let d = z.vcols in
  let fd = float_of_int d in
  (* Per value row: y_ij = gamma_j * (x_ij - mean_i) + beta_j. All linear:
     the same map applies to the center (plus bias) and to every
     coefficient column (no bias). *)
    let center =
    let means = Mat.row_means z.center in
    Mat.mapi (fun i j v -> (gamma.(j) *. (v -. means.(i))) +. beta.(j)) z.center
  in
  let coeff (m : Mat.t) =
    (* coefficient matrices: same linear map, no bias *)
    let e = Mat.cols m in
    let out = Mat.create (Mat.rows m) e in
    if e > 0 then
      for i = 0 to z.vrows - 1 do
        let base = i * d in
        for j = 0 to e - 1 do
          let mean = ref 0.0 in
          for c = 0 to d - 1 do
            mean := !mean +. m.Mat.data.(((base + c) * e) + j)
          done;
          let mean = !mean /. fd in
          for c = 0 to d - 1 do
            out.Mat.data.(((base + c) * e) + j) <-
              gamma.(c) *. (m.Mat.data.(((base + c) * e) + j) -. mean)
          done
        done
      done;
    out
  in
  { z with center; phi = coeff z.phi; eps = coeff z.eps }

let positional z pos =
  if Mat.rows pos < z.vrows || Mat.cols pos <> z.vcols then
    invalid_arg "Zonotope.positional: shape mismatch";
  let shift = Mat.init z.vrows z.vcols (fun i j -> Mat.get pos i j) in
  add_const z shift

(* ---------------- structural ---------------- *)

let select_rows_of_mat (m : Mat.t) idx =
  let c = Mat.cols m in
  let out = Mat.create (Array.length idx) c in
  Array.iteri
    (fun k r -> Array.blit m.Mat.data (r * c) out.Mat.data (k * c) c)
    idx;
  out

let reindex z vrows vcols idx =
  {
    z with
    vrows;
    vcols;
    center =
      Mat.of_array ~rows:vrows ~cols:vcols
        (Array.map (fun v -> z.center.Mat.data.(v)) idx);
    phi = select_rows_of_mat z.phi idx;
    eps = select_rows_of_mat z.eps idx;
  }

let select_value_rows z start n =
  if start < 0 || n < 0 || start + n > z.vrows then
    invalid_arg "Zonotope.select_value_rows";
  let idx =
    Array.init (n * z.vcols) (fun k ->
        let i = k / z.vcols and j = k mod z.vcols in
        ((start + i) * z.vcols) + j)
  in
  reindex z n z.vcols idx

let pool_first z = select_value_rows z 0 1

let select_value_cols z start n =
  if start < 0 || n < 0 || start + n > z.vcols then
    invalid_arg "Zonotope.select_value_cols";
  let idx =
    Array.init (z.vrows * n) (fun k ->
        let i = k / n and j = k mod n in
        (i * z.vcols) + start + j)
  in
  reindex z z.vrows n idx

let transpose_value z =
  let idx =
    Array.init (num_vars z) (fun k ->
        let i = k / z.vrows and j = k mod z.vrows in
        (* output var (i, j) with shape (vcols, vrows) reads input (j, i) *)
        (j * z.vcols) + i)
  in
  reindex z z.vcols z.vrows idx

let reshape_value z ~rows ~cols =
  if rows * cols <> num_vars z then invalid_arg "Zonotope.reshape_value";
  { z with vrows = rows; vcols = cols;
    center = Mat.reshape z.center ~rows ~cols }

let hcat_value a b =
  if a.vrows <> b.vrows then invalid_arg "Zonotope.hcat_value: row mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.hcat_value: phi mismatch";
  let a, b = align a b in
  let vcols = a.vcols + b.vcols in
  let pick (ma : Mat.t) (mb : Mat.t) cols_kind =
    let e = match cols_kind with `Phi -> num_phi a | `Eps -> num_eps a in
    let out = Mat.create (a.vrows * vcols) e in
    if e > 0 then
      for i = 0 to a.vrows - 1 do
        Array.blit ma.Mat.data (i * a.vcols * e) out.Mat.data (i * vcols * e)
          (a.vcols * e);
        Array.blit mb.Mat.data (i * b.vcols * e) out.Mat.data
          ((i * vcols * e) + (a.vcols * e))
          (b.vcols * e)
      done;
    out
  in
  {
    vrows = a.vrows;
    vcols;
    p = a.p;
    center = Mat.hcat a.center b.center;
    phi = pick a.phi b.phi `Phi;
    eps = pick a.eps b.eps `Eps;
  }

let vcat_value a b =
  if a.vcols <> b.vcols then invalid_arg "Zonotope.vcat_value: col mismatch";
  if num_phi a <> num_phi b then invalid_arg "Zonotope.vcat_value: phi mismatch";
  let a, b = align a b in
  {
    a with
    vrows = a.vrows + b.vrows;
    center = Mat.vcat a.center b.center;
    phi = Mat.vcat a.phi b.phi;
    eps = Mat.vcat a.eps b.eps;
  }

let of_rows = function
  | [] -> invalid_arg "Zonotope.of_rows: empty"
  | z :: rest -> List.fold_left vcat_value z rest

let map_rows_affine ?pool z m =
  if Mat.cols m <> z.vrows then invalid_arg "Zonotope.map_rows_affine";
  (* y = m . x : output var (i, j) = sum_k m_ik x_kj. Coefficients combine
     linearly with the same weights. Viewing the coefficient matrix of a
     [vrows x vcols] value as a [vrows x (vcols * e)] matrix (same
     row-major data) turns the combination into one matrix product, which
     runs on the blocked (and, for the softmax's n^2-variable difference
     matrices, pool-sharded) kernel. *)
  let vrows = Mat.rows m in
  let combine (g : Mat.t) =
    let e = Mat.cols g in
    if e = 0 then Mat.create (vrows * z.vcols) 0
    else begin
      let wide = Mat.of_array ~rows:z.vrows ~cols:(z.vcols * e) g.Mat.data in
      let mapped = Mat.matmul ?pool m wide in
      Mat.of_array ~rows:(vrows * z.vcols) ~cols:e mapped.Mat.data
    end
  in
  {
    z with
    vrows;
    center = Mat.matmul m z.center;
    phi = combine z.phi;
    eps = combine z.eps;
  }

(* ---------------- variable access ---------------- *)

let var_affine z v =
  if v < 0 || v >= num_vars z then invalid_arg "Zonotope.var_affine";
  (z.center.Mat.data.(v), Mat.row z.phi v, Mat.row z.eps v)

let phi_block z start n = Mat.sub_rows z.phi start n
let eps_block z start n = Mat.sub_rows z.eps start n

let contains_sample ?(tol = 1e-7) z m =
  Mat.dims m = (z.vrows, z.vcols)
  &&
  (* Short-circuit on the first violated variable: each check costs a
     full dual-norm scan of the variable's coefficient rows, so finishing
     the loop after [ok] is already false is pure waste. *)
  let nv = num_vars z in
  let rec ok v =
    v >= nv
    ||
    let itv = bounds_var z v in
    let x = m.Mat.data.(v) in
    x >= itv.Itv.lo -. tol && x <= itv.Itv.hi +. tol && ok (v + 1)
  in
  ok 0
