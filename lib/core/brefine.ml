open Tensor

(* Branch-and-bound refinement: the ladder's upward direction.

   When a propagation is clean but the margin lower bound is not
   positive (Unknown Imprecise), the final zonotope says exactly which
   noise symbols lost the margin: the losing logit difference
   [logit_t - logit_j*] is an affine form over the symbols, and a
   symbol's |coefficient| in that form is its contribution to the bound
   gap. Splitting a strong symbol's range in half and re-certifying both
   halves tightens every downstream nonlinear transformer (their
   over-approximation error shrinks with input width), so a query the
   abstraction just barely lost can be recovered.

   Soundness is by branch coverage, not by ranking: the branches of one
   split jointly cover the parent region (Zonotope.restrict_symbol), so
   "every branch certifies" proves the parent. The ranking only decides
   *which* symbol to split — a mis-attributed coefficient (possible for
   ε symbols once Reduction has compacted columns mid-network) wastes
   budget but can never unsound the answer. Falsification is out of
   scope here: a branch verdict is margin-only, so refinement can prove
   Certified or report Unknown, never flip to Falsified. *)

type branch_eval = { bverdict : Verdict.t; props : int; bdepth : int }
type wave = branch_eval Psearch.wave

type report = {
  verdict : Verdict.t;
  split : Zonotope.symbol list;
  branches : int;
  depth : int;
}

let no_split verdict = { verdict; split = []; branches = 0; depth = 0 }

let wave_of (cfg : Config.t) : wave =
  match cfg.Config.search.Config.probe_backend with
  | Config.Serial_probes -> Psearch.serial_wave
  | Config.Fork_probes ->
      Psearch.fork_wave ~crash:(fun r ->
          { bverdict = Verdict.Unknown r; props = 0; bdepth = 0 })
  | Config.Domain_probes -> (
      match
        Propagate.shared_pool
          (match cfg.Config.refine with
          | Some r -> max 2 (min 16 r.Config.max_branches)
          | None -> 2)
      with
      | Some dp -> Psearch.dpool_wave dp
      | None -> Psearch.serial_wave)

(* Certify.margin with the adversary remembered: the smallest margin
   lower bound over classes j ≠ t, and that argmin class (the losing
   logit). Ties keep the smaller class index — the scan order — so the
   choice is deterministic. *)
let losing_margin (out : Zonotope.t) ~true_class =
  if out.Zonotope.vrows <> 1 then
    invalid_arg "Brefine.losing_margin: output not 1 x C";
  let c = out.Zonotope.vcols in
  if true_class < 0 || true_class >= c then
    invalid_arg "Brefine.losing_margin: class out of range";
  let ct, at, bt = Zonotope.var_affine out true_class in
  let q = Lp.dual out.Zonotope.p in
  let best = ref infinity and best_j = ref (-1) in
  for j = 0 to c - 1 do
    if j <> true_class then begin
      let cj, aj, bj = Zonotope.var_affine out j in
      let lb =
        ct -. cj -. Lp.norm q (Vecops.sub at aj) -. Vecops.l1 (Vecops.sub bt bj)
      in
      if lb < !best then begin
        best := lb;
        best_j := j
      end
    end
  done;
  (!best, !best_j)

(* Input symbols of [region] ranked by their |coefficient| contribution
   to the losing margin of [out], strongest first (ties: φ before ε,
   then ascending index — the construction order under a stable sort).
   Zero-contribution symbols are dropped: splitting them cannot move the
   bound. *)
let rank_symbols (out : Zonotope.t) (region : Zonotope.t) ~true_class =
  let _, j = losing_margin out ~true_class in
  if j < 0 then []
  else begin
    let _, at, bt = Zonotope.var_affine out true_class in
    let _, aj, bj = Zonotope.var_affine out j in
    let alpha = Vecops.sub at aj and beta = Vecops.sub bt bj in
    let weight (arr : float array) i =
      if i < Array.length arr then Float.abs arr.(i) else 0.0
    in
    let syms = ref [] in
    for i = Zonotope.num_eps region - 1 downto 0 do
      let w = weight beta i in
      if w > 0.0 then syms := (w, Zonotope.Eps i) :: !syms
    done;
    for i = Zonotope.num_phi region - 1 downto 0 do
      let w = weight alpha i in
      if w > 0.0 then syms := (w, Zonotope.Phi i) :: !syms
    done;
    List.stable_sort (fun (a, _) (b, _) -> Float.compare b a) !syms
  end

let verdict_of_margin m =
  if Float.is_nan m then Verdict.Unknown Verdict.Numerical_fault
  else if m = neg_infinity then Verdict.Unknown Verdict.Unbounded
  else if m > 0.0 then Verdict.Certified
  else Verdict.Unknown Verdict.Imprecise

(* Sound union semantics over one split wave: the branches jointly cover
   the parent, so all-Certified proves it; any faulted branch (abort,
   collapse, dead fork worker) makes the union unsound to trust and the
   whole refinement answers with that branch's fault — the first one in
   branch order, a deterministic choice; otherwise some branch was
   merely imprecise and the parent stays Unknown Imprecise. *)
let combine (evals : branch_eval array) =
  if Array.for_all (fun e -> e.bverdict = Verdict.Certified) evals then
    Verdict.Certified
  else
    match Array.find_opt (fun e -> Verdict.is_fault e.bverdict) evals with
    | Some e -> e.bverdict
    | None -> Verdict.Unknown Verdict.Imprecise

(* Largest k with [1 <= k <= cap] and [2^k <= budget]; 0 if none. *)
let fit_k cap budget =
  let k = ref 0 in
  while !k < cap && 1 lsl (!k + 1) <= budget do
    incr k
  done;
  !k

(* Evaluate one branch region: propagate, settle on the margin, and —
   when still imprecise with depth and budget to spare — re-split
   *serially*. Only the first split wave of a refinement may run on a
   parallel wave runner; everything below is sequential inside its
   branch, so a branch's result (and therefore the whole tree's) is a
   pure function of (cfg, program, region) — bit-identical across
   serial, fork and domain-pool runners. *)
let rec eval_branch (cfg : Config.t) program ~true_class region ~budget
    ~depth_left =
  match Propagate.run cfg program region with
  | exception Zonotope.Unbounded ->
      { bverdict = Verdict.Unknown Verdict.Unbounded; props = 1; bdepth = 0 }
  | exception Verdict.Abort r ->
      { bverdict = Verdict.Unknown r; props = 1; bdepth = 0 }
  | out -> (
      let m, _ = losing_margin out ~true_class in
      match verdict_of_margin m with
      | Verdict.Unknown Verdict.Imprecise when depth_left > 0 && budget >= 2
        -> (
          match
            split_node cfg program ~true_class region out ~budget ~depth_left
              ~wave:Psearch.serial_wave
          with
          | None ->
              {
                bverdict = Verdict.Unknown Verdict.Imprecise;
                props = 1;
                bdepth = 0;
              }
          | Some (v, props, d, _) ->
              { bverdict = v; props = 1 + props; bdepth = d })
      | v -> { bverdict = v; props = 1; bdepth = 0 })

(* Split an imprecise node: rank, choose k, evaluate the 2^k half
   combinations on [wave], combine. Returns [None] when no split fits
   (nothing splittable, or the budget cannot afford even one 2-way
   split). The remaining budget is shared evenly between the branches
   ((budget - n) / n each) *before* any branch runs, so a branch's
   recursion allowance never depends on sibling results — the
   cross-runner determinism hinge. *)
and split_node (cfg : Config.t) program ~true_class region out ~budget
    ~depth_left ~wave =
  let r =
    match cfg.Config.refine with
    | Some r -> r
    | None -> invalid_arg "Brefine: cfg.refine is None"
  in
  let syms = rank_symbols out region ~true_class in
  let k = fit_k (min r.Config.top_k (List.length syms)) budget in
  if k < 1 then None
  else begin
    let chosen = List.filteri (fun i _ -> i < k) (List.map snd syms) in
    let n = 1 lsl k in
    let sub_budget = (budget - n) / n in
    let evals =
      wave
        (fun b ->
          (* Compact before propagating: splits re-center and append
             one-hot columns, leaving coverage-empty ones behind; a
             dropped column is ±0.0 in every row, so branch margins —
             and hence verdicts — are unchanged (zero-weight symbols are
             never ranked, so the split choice below is also immune).
             [Propagate.run] seeds its ctx from the region's ε width,
             keeping downstream symbol ids coherent. *)
          let region_b =
            List.fold_left
              (fun (z, i) sym ->
                let half =
                  if b land (1 lsl i) <> 0 then Zonotope.Upper
                  else Zonotope.Lower
                in
                (Zonotope.restrict_symbol z sym half, i + 1))
              (region, 0) chosen
            |> fst |> Zonotope.compact
          in
          eval_branch cfg program ~true_class region_b ~budget:sub_budget
            ~depth_left:(depth_left - 1))
        n
    in
    let verdict = combine evals in
    let props = Array.fold_left (fun a e -> a + e.props) 0 evals in
    let d = 1 + Array.fold_left (fun a e -> max a e.bdepth) 0 evals in
    Some (verdict, props, d, chosen)
  end

let certify_v ?wave (cfg : Config.t) program region ~true_class =
  let rcfg =
    match cfg.Config.refine with
    | Some r -> r
    | None -> invalid_arg "Brefine.certify_v: cfg.refine is None"
  in
  let wave = match wave with Some w -> w | None -> wave_of cfg in
  match Propagate.run cfg program region with
  | exception Zonotope.Unbounded ->
      no_split (Verdict.Unknown Verdict.Unbounded)
  | exception Verdict.Abort r -> no_split (Verdict.Unknown r)
  | out -> (
      let m, _ = losing_margin out ~true_class in
      match verdict_of_margin m with
      | Verdict.Unknown Verdict.Imprecise -> (
          match
            split_node cfg program ~true_class region out
              ~budget:rcfg.Config.max_branches ~depth_left:rcfg.Config.depth
              ~wave
          with
          | None -> no_split (Verdict.Unknown Verdict.Imprecise)
          | Some (v, props, d, chosen) ->
              { verdict = v; split = chosen; branches = props; depth = d })
      | v -> no_split v)

let certify ?wave cfg program region ~true_class =
  (certify_v ?wave cfg program region ~true_class).verdict = Verdict.Certified
