(** Robustness certification (Sections 2, 3.2 and 6).

    A classification is certified on a region when the lower bound of
    [y_true − y_other] is positive for every competing class; the bound
    is read off the output zonotope's affine forms (difference of two
    variables is again affine, so correlations cancel exactly — this is
    strictly tighter than comparing interval bounds). *)

val margin : Zonotope.t -> true_class:int -> float
(** Lower bound of [min_{j ≠ t} (y_t − y_j)] on an output zonotope of
    value shape [1 x C]. *)

val certify :
  ?prefix:Zonotope.t array * int ->
  Config.t -> Ir.program -> Zonotope.t -> true_class:int -> bool
(** Propagates the region and checks the margin. [prefix] forwards a
    shared affine prefix to {!Propagate.run} (see
    {!Propagate.run_prefix}); {!Engine} uses it to avoid re-propagating
    the patch embedding on every ladder rung. *)

val certify_margin :
  ?prefix:Zonotope.t array * int ->
  Config.t -> Ir.program -> Zonotope.t -> true_class:int -> float
(** Like {!certify} but returns the margin itself ([neg_infinity] when
    the propagation aborted or collapsed). *)

val certify_v :
  ?prefix:Zonotope.t array * int ->
  Config.t -> Ir.program -> Zonotope.t -> true_class:int -> Verdict.t
(** Typed variant of {!certify}: a clean propagation yields [Certified]
    or [Unknown Imprecise]; an aborted one ({!Verdict.Abort} from the
    budget checkpoints, fault injection, or a collapsed abstraction)
    yields [Unknown] with the reason preserved. Never returns
    [Certified] from a propagation that raised. [Falsified] is only
    produced by {!Engine.certify}, which searches for concrete
    counterexamples. *)

val max_radius :
  ?lo:float -> ?hi:float -> ?iters:int -> ?search:Config.search ->
  (float -> bool) -> float
(** [max_radius certifies] searches the largest radius accepted by the
    monotone predicate [certifies] via {!Psearch}: starting from [hi]
    (default 0.5, doubled up to 3 times while certified), then [iters]
    (default 10) bisection steps between the bracketing values. Returns
    the largest radius known to certify (0 if even tiny radii fail).

    [search] (default {!Config.default_search}) selects the executor:
    [probes = 1] is the sequential bisection above, bit-identical to the
    pre-{!Psearch} implementation; [probes = n > 1] evaluates [n]
    deterministic radii per round concurrently on the configured
    backend, converging by [1/(n+1)] per round instead of [1/2].

    Robustness guarantees: the bracket must be finite
    ([Invalid_argument] otherwise); a probe that raises
    {!Verdict.Abort} or {!Zonotope.Unbounded} — a faulted propagation —
    counts as "bad", so the search terminates and the returned radius
    always comes from a probe that genuinely certified. *)

val certified_radius :
  Config.t -> Ir.program -> p:Lp.t -> Tensor.Mat.t -> word:int ->
  true_class:int -> ?hi:float -> ?iters:int -> unit -> float
(** The paper's main measurement: the largest ℓp radius around one
    word's embedding that certifies (bracket search over {!certify},
    driven by [cfg.search]). For multi-probe searches on models with an
    affine prefix, the prefix is propagated once at unit radius and
    rescaled per probe ({!Zonotope.scale_coeffs}) unless
    [cfg.search.share_prefix] is off, the [DEEPT_NO_PREFIX_SHARE]
    environment variable is set, or a fault is injected. *)

type radius_report = {
  radius : float;  (** largest radius that certified (0 if none) *)
  bracket : float * float;
      (** final [(good, bad)] bracket; [bad = infinity] when even the
          growth cap certified *)
  bracket_probes : int;
      (** propagations spent establishing the initial bracket
          (sequential: the up-to-4 doubling probes; grid: wave-0 plus
          growth waves) *)
  bisect_probes : int;  (** propagations spent refining the bracket *)
  rounds : int;
      (** concurrent refinement rounds (0 for the sequential executor,
          whose probes are all counted individually) *)
  faulted_probes : (float * Verdict.unknown_reason) list;
      (** probes that ended in a typed fault rather than a clean
          not-certified, in launch order — nonempty means the radius may
          be pessimistic (faulted probes count as "bad") *)
  refined_radius : float option;
      (** largest radius certified with branch-and-bound refinement
          ({!Brefine}) at the plain search's failing edge; always
          [>= radius]. [None] when [cfg.refine] is off or the plain
          bracket never closed. The first refined probe is the plain
          [bad] edge itself and the search only continues past it on
          success, so a strictly larger value is attributable to
          refinement, never to extra bisection of the plain bracket. *)
}

val certified_radius_v :
  Config.t -> Ir.program -> p:Lp.t -> Tensor.Mat.t -> word:int ->
  true_class:int -> ?hi:float -> ?iters:int -> unit -> radius_report
(** Like {!certified_radius} but over {!certify_v}, reporting the final
    bracket, the probe budget split by phase, and which probes faulted
    instead of silently treating them as "not robust". When
    [cfg.refine] is set, a few branch-and-bound probes run at the
    bracket's failing edge afterwards and fill [refined_radius]; the
    plain search (and hence [radius]) is untouched by refinement. *)

val search_prefix :
  Config.t -> Ir.program -> p:Lp.t -> Tensor.Mat.t -> word:int ->
  (Zonotope.t array * int) option
(** The shared unit-radius prefix used by the radius searches: [Some]
    only when [cfg.search] asks for a multi-probe search with prefix
    sharing, no fault is injected, the escape hatch is unset and the
    program has a nonempty affine prefix. Exposed for tests. *)

val certify_synonyms :
  Config.t -> Ir.program -> Tensor.Mat.t -> (int * float array list) list ->
  true_class:int -> bool
(** Threat model T2: certify the synonym box {!Region.synonym_box}. *)

val enumerate_synonyms :
  ?limit:int -> Ir.program -> Tensor.Mat.t -> (int * float array list) list ->
  true_class:int -> bool * int
(** Enumeration baseline: classifies every combination of substitutions
    concretely. Returns [(all_correct, combinations_checked)]; stops
    early at [limit] combinations (default 1_000_000) or on the first
    misclassification. *)

val count_combinations : (int * float array list) list -> int
(** Number of sentences the enumeration baseline must classify
    (product over positions of [1 + #alternatives]). *)

val certify_regions :
  ?arena:Xfer.arena -> ?pool:Config.pool ->
  Config.t -> Ir.program -> true_class:int ->
  (int * Zonotope.t) list ->
  float Supervisor.job_result list
(** Certify a batch of explicit input regions on the supervised worker
    pool, returning each job's margin (see {!certify_margin};
    [neg_infinity] means not certified). With [arena] (created before
    the call, hence before the pool forks), each region's large
    coefficient matrices travel by {!Xfer} descriptor through the
    MAP_SHARED arena instead of being [Marshal]ed over the job pipe;
    small matrices — and everything under [DEEPT_NO_SHM=1] or without
    [arena] — keep the Marshal path. Margins are bit-identical across
    the two transports. All arena blocks are freed after the last
    outcome is collected, including jobs whose worker was killed, so
    the arena is reusable afterwards. *)
