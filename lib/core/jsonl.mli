(** Flat JSON-lines codec shared by every line format in the repository.

    One object of string/number fields per line — the {!Journal}, the
    service wire protocol ({!Service.Protocol} in [lib/service]) and the
    daemon's intake file all speak this shape, and the toolchain ships no
    JSON library, so one small strict parser serves them all. Not a
    general JSON parser: no nesting, no arrays, no booleans or nulls —
    by design, so torn or corrupt lines fail loudly and early.

    Writers keep formatting their own lines with [Printf] (each format
    pins its own float precision); {!escape} is the shared string
    escaper, {!parse} the shared strict reader. *)

val escape : string -> string
(** JSON string-literal escaping (quotes, backslash, control chars). *)

type value = Str of string | Num of float

val parse : string -> ((string * value) list, string) result
(** Strict parse of one [{"k":v,...}] line: duplicate fields, trailing
    garbage, nesting and non-string/number values are all errors. Fields
    come back in reverse source order; use the accessors below. *)

val known : (string * value) list -> string list -> (unit, string) result
(** [known fields names] rejects any field outside [names] — line
    formats are closed, so an unknown field means version skew or
    corruption. *)

(** Typed accessors; [Error] carries a ["missing field k" / "field k
    must be a ..."] diagnostic. The [_opt] variants return [Ok None]
    when the field is absent but still type-check it when present. *)

val str : (string * value) list -> string -> (string, string) result
val num : (string * value) list -> string -> (float, string) result
val int : (string * value) list -> string -> (int, string) result
val str_opt : (string * value) list -> string -> (string option, string) result
val num_opt : (string * value) list -> string -> (float option, string) result
val int_opt : (string * value) list -> string -> (int option, string) result
