(* Speculative parallel bracket search over a monotone radius predicate.

   The sequential executor replicates Certify.max_radius probe-for-probe
   (same float arithmetic, same early exits). The grid executor evaluates
   n deterministic radii per round concurrently and folds the outcomes in
   RADIUS ORDER: the new bracket is the largest contiguous all-Good
   prefix, so the result depends only on the probed radii and the
   predicate — never on which probe finished first. With n = 1 the grid
   degenerates to bisection bit-for-bit (the midpoint is special-cased to
   the sequential 0.5 *. (g +. b) formula). *)

type outcome = Good | Bad | Faulted of Verdict.unknown_reason

type probe = float -> outcome

type runner = probe -> float array -> outcome array

type executor = Sequential | Grid of int

type stats = {
  bracket_probes : int;
  bisect_probes : int;
  rounds : int;
  faulted : (float * Verdict.unknown_reason) list;
}

type result = { radius : float; good : float; bad : float; stats : stats }

let probe_of certifies r =
  match certifies r with
  | true -> Good
  | false -> Bad
  | exception Verdict.Abort reason -> Faulted reason
  | exception Zonotope.Unbounded -> Faulted Verdict.Unbounded

(* ---------------- generic wave runners ---------------- *)

(* The scheduling substrate shared by the radius probes below and by
   Brefine's branch waves: evaluate [f 0 .. f (n-1)], return results in
   index order. Results must be plain data (they may cross the Marshal
   boundary), and [f] must be deterministic — a crashed fork worker is
   never retried, it is mapped through [crash]. *)
type 'r wave = (int -> 'r) -> int -> 'r array

let serial_wave f n =
  if n = 0 then [||]
  else begin
    (* explicit ascending loop: the evaluation order is part of the
       determinism contract, not an Array.init implementation detail *)
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* One forked process per index over the Supervisor plumbing. The work
   closure is inherited by fork, not marshalled; only the result crosses
   the pipe. A crashed worker surfaces as [crash reason] in its slot. *)
let fork_wave ~crash f n =
  if n = 0 then [||]
  else if Tensor.Dpool.domains_active () then
    (* The OCaml 5 runtime forbids Unix.fork while worker domains are
       live (e.g. a --domains pool built for a shared prefix): degrade
       to in-process evaluation rather than crash. *)
    serial_wave f n
  else begin
    (* Forked children inherit buffered stdio; flush now or every worker
       re-emits the parent's pending output on exit. *)
    flush stdout;
    flush stderr;
    let jobs = List.init n (fun i -> (i, i)) in
    let pool = Config.pool ~workers:n ~max_retries:0 () in
    let results = Supervisor.run ~pool ~worker:(fun _ i -> f i) jobs in
    let out = Array.make n None in
    List.iter
      (fun (r : _ Supervisor.job_result) ->
        out.(r.Supervisor.job) <-
          Some
            (match r.Supervisor.outcome with
            | Ok o -> o
            | Error fl -> crash (Supervisor.failure_reason fl)))
      results;
    Array.map
      (function Some r -> r | None -> crash Verdict.Worker_crashed)
      out
  end

(* Thread-per-index over a shared domain pool — for --jobs 1 runs where
   forking whole processes is undesirable. Each chunk is one evaluation;
   results land in caller-indexed slots, so completion order is
   irrelevant. *)
let dpool_wave dp f n =
  if n = 0 then [||]
  else begin
    let out = Array.make n None in
    Tensor.Dpool.run_chunks dp ~nchunks:n (fun i -> out.(i) <- Some (f i));
    Array.map (function Some r -> r | None -> assert false) out
  end

(* ---------------- probe runners ---------------- *)

let serial_runner probe radii =
  serial_wave (fun i -> probe radii.(i)) (Array.length radii)

(* Probes are deterministic, so a crashed worker is not retried — the
   crash is reported as a Faulted outcome (counted "bad" by the fold)
   instead of being re-run to crash again. Outcomes are plain data (no
   closures), so they cross the Marshal boundary unchanged. *)
let fork_runner probe radii =
  fork_wave
    ~crash:(fun reason -> Faulted reason)
    (fun i -> probe radii.(i))
    (Array.length radii)

let dpool_runner dp probe radii =
  dpool_wave dp (fun i -> probe radii.(i)) (Array.length radii)

(* ---------------- the search ---------------- *)

(* Sequential: Certify.max_radius's exact probe sequence, with
   accounting. Up to 4 bracket-growth probes (hi, 2hi, 4hi, 8hi; early
   exit on the first failure), then [iters] bisections of the bracket. *)
let sequential ~lo ~hi ~iters probe =
  let bracket_probes = ref 0 and bisect_probes = ref 0 in
  let faulted = ref [] in
  let eval r =
    match probe r with
    | Good -> true
    | Bad -> false
    | Faulted reason ->
        faulted := (r, reason) :: !faulted;
        false
  in
  let good = ref lo and bad = ref infinity in
  let r = ref hi in
  (try
     for _ = 0 to 3 do
       incr bracket_probes;
       if eval !r then begin
         good := !r;
         r := !r *. 2.0
       end
       else begin
         bad := !r;
         raise Exit
       end
     done
   with Exit -> ());
  if !bad <> infinity then
    for _ = 1 to iters do
      incr bisect_probes;
      let mid = 0.5 *. (!good +. !bad) in
      if eval mid then good := mid else bad := mid
    done;
  {
    radius = !good;
    good = !good;
    bad = !bad;
    stats =
      {
        bracket_probes = !bracket_probes;
        bisect_probes = !bisect_probes;
        rounds = 0;
        faulted = List.rev !faulted;
      };
  }

(* Fold one wave of outcomes in radius order (points ascending): the new
   [good] is the last point of the leading all-Good prefix, the new [bad]
   the first non-Good point. Every outcome after the first non-Good is
   ignored for the bracket (it was speculative work), but its faults are
   still recorded. *)
let fold_wave ~good ~bad ~faulted points outcomes =
  let n = Array.length points in
  let first_bad = ref n in
  for i = 0 to n - 1 do
    (match outcomes.(i) with
    | Good -> ()
    | Bad -> if !first_bad = n then first_bad := i
    | Faulted reason ->
        if !first_bad = n then first_bad := i;
        faulted := (points.(i), reason) :: !faulted)
  done;
  let good = if !first_bad > 0 then points.(!first_bad - 1) else good in
  let bad = if !first_bad < n then points.(!first_bad) else bad in
  (good, bad)

(* Smallest round count whose final bracket width is at most sequential
   bisection's. Sequential: width W / 2^iters. Grid: each round divides
   the width by n+1, and when the bracket came from wave-0's interior
   points it already starts n-times narrower than sequential's [lo, hi],
   which is worth crediting: n * (n+1)^R >= 2^iters. *)
let default_rounds ~n ~iters ~wave0_credit =
  if iters <= 0 then 0
  else begin
    let target = 2.0 ** float_of_int iters in
    let target = if wave0_credit then target /. float_of_int n else target in
    let base = float_of_int (n + 1) in
    let r = ref 0 and w = ref 1.0 in
    while !w < target do
      incr r;
      w := !w *. base
    done;
    !r
  end

let grid ~n ~lo ~hi ~iters ~rounds ~runner probe =
  let bracket_probes = ref 0 and bisect_probes = ref 0 in
  let faulted = ref [] in
  let run points =
    let outcomes = runner probe points in
    if Array.length outcomes <> Array.length points then
      invalid_arg "Psearch: runner returned wrong arity";
    outcomes
  in
  (* Wave 0: speculative split of [lo, hi] into n subintervals; the top
     point is exactly [hi] so n = 1 probes the sequential start. *)
  let span = hi -. lo in
  let points =
    Array.init n (fun i ->
        let k = i + 1 in
        if k = n then hi else lo +. (span *. float_of_int k /. float_of_int n))
  in
  bracket_probes := !bracket_probes + n;
  let good, bad = fold_wave ~good:lo ~bad:infinity ~faulted points (run points) in
  let wave0_credit = bad <> infinity && n > 1 in
  (* Growth waves: the predicate held everywhere up to [hi]; double past
     it like the sequential search (which stops at 8 * hi). *)
  let good = ref good and bad = ref bad in
  while !bad = infinity && !good < hi *. 8.0 do
    let top = !good in
    let points = Array.init n (fun i -> top *. (2.0 ** float_of_int (i + 1))) in
    bracket_probes := !bracket_probes + n;
    let g, b = fold_wave ~good:!good ~bad:!bad ~faulted points (run points) in
    good := g;
    bad := b
  done;
  let rounds_done = ref 0 in
  if !bad <> infinity then begin
    let nrounds =
      match rounds with
      | Some r -> r
      | None -> default_rounds ~n ~iters ~wave0_credit
    in
    for _ = 1 to nrounds do
      let g = !good and b = !bad in
      let points =
        if n = 1 then [| 0.5 *. (g +. b) |]
        else
          Array.init n (fun i ->
              g +. ((b -. g) *. float_of_int (i + 1) /. float_of_int (n + 1)))
      in
      bisect_probes := !bisect_probes + n;
      let g, b = fold_wave ~good:g ~bad:b ~faulted points (run points) in
      good := g;
      bad := b;
      incr rounds_done
    done
  end;
  {
    radius = !good;
    good = !good;
    bad = !bad;
    stats =
      {
        bracket_probes = !bracket_probes;
        bisect_probes = !bisect_probes;
        rounds = !rounds_done;
        faulted = List.rev !faulted;
      };
  }

let search ?(lo = 0.0) ?(hi = 0.5) ?(iters = 10) ?rounds ?(exec = Sequential)
    ?(runner = serial_runner) probe =
  if hi <= lo then invalid_arg "Psearch.search: hi <= lo";
  if not (Float.is_finite hi && Float.is_finite lo) then
    invalid_arg "Psearch.search: bracket must be finite";
  if iters < 0 then invalid_arg "Psearch.search: negative iters";
  match exec with
  | Sequential -> sequential ~lo ~hi ~iters probe
  | Grid n ->
      if n < 1 then invalid_arg "Psearch.search: Grid needs n >= 1";
      grid ~n ~lo ~hi ~iters ~rounds ~runner probe
