let use_precise (cfg : Config.t) ~layer ~total =
  match cfg.Config.variant with
  | Config.Fast -> false
  | Config.Precise -> true
  | Config.Combined -> layer = total - 1

(* Deterministic fault injection (Config.fault). Runs inside the per-op
   Unbounded guard so Raise_unbounded exercises the same catch path a
   genuinely collapsed transformer would take. *)
let apply_fault (f : Config.fault_spec) (out : Zonotope.t) =
  match f.Config.action with
  | Config.Inject_nan -> out.Zonotope.center.Tensor.Mat.data.(0) <- Float.nan
  | Config.Inject_inf -> out.Zonotope.center.Tensor.Mat.data.(0) <- infinity
  | Config.Stall s -> if s > 0.0 then Unix.sleepf s
  | Config.Raise_unbounded -> raise Zonotope.Unbounded

(* NaN dominates Inf: a NaN means arithmetic already went through an
   undefined form; an Inf (e.g. an overflowed dot-product remainder) is
   still a sound, if vacuous, bound — but poisons everything downstream,
   so both abort the run. *)
let poison_scan (z : Zonotope.t) =
  match
    ( Tensor.Mat.finite_class z.Zonotope.center,
      Tensor.Mat.finite_class z.Zonotope.phi,
      Tensor.Mat.finite_class z.Zonotope.eps )
  with
  | `Nan, _, _ | _, `Nan, _ | _, _, `Nan -> `Nan
  | `Inf, _, _ | _, `Inf, _ | _, _, `Inf -> `Inf
  | `Finite, `Finite, `Finite -> `Finite

(* One lazily-created domain pool per (process, size). Spawned domains do
   not survive a fork, and Supervisor workers fork after the parent may
   already have certified something — so the cache is keyed by pid and a
   forked child transparently builds its own pool on first use, leaving
   the inherited (stale) entry unused. *)
let pool_cache : (int * int, Tensor.Dpool.t) Hashtbl.t = Hashtbl.create 4
let pool_mutex = Mutex.create ()

let shared_pool n =
  if n <= 1 then None
  else
    let key = (Unix.getpid (), n) in
    Some
      (Mutex.protect pool_mutex (fun () ->
           match Hashtbl.find_opt pool_cache key with
           | Some p -> p
           | None ->
               let p = Tensor.Dpool.create n in
               Hashtbl.add pool_cache key p;
               p))

let run_all (cfg : Config.t) (p : Ir.program) input =
  if input.Zonotope.vcols <> p.input_dim then
    invalid_arg "Propagate.run: input dim mismatch";
  let t0 = Unix.gettimeofday () in
  let budget = cfg.Config.budget in
  let ctx = Zonotope.ctx () in
  (* Arm the intra-op deadline: long transformers (the dot product) poll it
     inside their hot loops, so one giant op cannot blow past the budget
     that the per-op checkpoints below only enforce between ops. *)
  Zonotope.set_deadline ctx
    (Option.map (fun l -> t0 +. l) budget.Config.time_limit_s);
  (* Arm the domain pool the same way: transformers that can shard their
     hot loops pick it up from the ctx, with bit-identical results. *)
  let pool = shared_pool cfg.Config.domains in
  Zonotope.set_pool ctx pool;
  ignore (Zonotope.alloc_eps ctx (Zonotope.num_eps input));
  let total_layers = Ir.depth_of_kind p "self_attention" in
  let layer = ref 0 in
  let vals = Array.make (Ir.num_values p) input in
  Array.iteri
    (fun i (op : Ir.op) ->
      let out =
        try
          let out =
            match op with
            | Linear { src; w; b } -> Zonotope.linear_map ?pool vals.(src) w b
            | Relu src -> Elementwise.relu ctx vals.(src)
            | Tanh src -> Elementwise.tanh_ ctx vals.(src)
            | Add (a, b) -> Zonotope.add vals.(a) vals.(b)
            | Center_norm { src; gamma; beta; divide_std } ->
                if divide_std then
                  Std_norm.apply ctx vals.(src) ~gamma ~beta
                else Zonotope.center_rows vals.(src) ~gamma ~beta
            | Self_attention { src; att } ->
                (* Layer input: reduce noise symbols before the residual split
                   (Section 5.1), updating the stored value so the residual
                   Add sees the reduced zonotope too. *)
                if cfg.Config.reduction_k > 0 then
                  vals.(src) <-
                    Reduction.decorrelate_min_k ctx vals.(src) cfg.Config.reduction_k;
                let precise = use_precise cfg ~layer:!layer ~total:total_layers in
                incr layer;
                Attention_t.apply ~cfg ~precise ctx att vals.(src)
            | Pool_first src -> Zonotope.pool_first vals.(src)
            | Positional { src; pos } -> Zonotope.positional vals.(src) pos
          in
          (match cfg.Config.fault with
          | Some f when f.Config.fault_op = i -> apply_fault f out
          | _ -> ());
          out
        with Zonotope.Unbounded -> raise (Verdict.Abort Verdict.Unbounded)
      in
      (if Sys.getenv_opt "DEEPT_TRACE" <> None then begin
         let w =
           try
             let b = Zonotope.bounds out in
             Tensor.Mat.max_abs
               (Tensor.Mat.sub b.Interval.Imat.hi b.Interval.Imat.lo)
           with Zonotope.Unbounded -> nan
         in
         Printf.eprintf "op %-3d %-16s width %.4g eps=%d\n%!" i
           (match op with
            | Linear _ -> "linear" | Relu _ -> "relu" | Tanh _ -> "tanh"
            | Add _ -> "add" | Center_norm _ -> "center_norm"
            | Self_attention _ -> "self_attention" | Pool_first _ -> "pool"
            | Positional _ -> "positional")
           w (Zonotope.num_eps out)
       end);
      (* Per-op checkpoints: abort with a typed exception instead of letting
         poison or a blown budget propagate to the margin. *)
      (match budget.Config.time_limit_s with
      | Some limit when Unix.gettimeofday () -. t0 > limit ->
          raise (Verdict.Abort Verdict.Timeout)
      | _ -> ());
      (match budget.Config.max_eps with
      | Some cap when Zonotope.ctx_symbols ctx > cap ->
          raise (Verdict.Abort Verdict.Symbol_budget)
      | _ -> ());
      (match poison_scan out with
      | `Finite -> ()
      | `Nan | `Inf -> raise (Verdict.Abort Verdict.Numerical_fault));
      vals.(i + 1) <- out)
    p.ops;
  vals

let run cfg p input = (run_all cfg p input).(Ir.output_id p)
