let use_precise (cfg : Config.t) ~layer ~total =
  match cfg.Config.variant with
  | Config.Fast -> false
  | Config.Precise -> true
  | Config.Combined -> layer = total - 1

(* Deterministic fault injection (Config.fault). Runs inside the per-op
   Unbounded guard so Raise_unbounded exercises the same catch path a
   genuinely collapsed transformer would take. *)
let apply_fault (f : Config.fault_spec) (out : Zonotope.t) =
  match f.Config.action with
  | Config.Inject_nan -> out.Zonotope.center.Tensor.Mat.data.(0) <- Float.nan
  | Config.Inject_inf -> out.Zonotope.center.Tensor.Mat.data.(0) <- infinity
  | Config.Stall s -> if s > 0.0 then Unix.sleepf s
  | Config.Raise_unbounded -> raise Zonotope.Unbounded

(* NaN dominates Inf: a NaN means arithmetic already went through an
   undefined form; an Inf (e.g. an overflowed dot-product remainder) is
   still a sound, if vacuous, bound — but poisons everything downstream,
   so both abort the run. *)
let poison_scan (z : Zonotope.t) =
  match
    ( Tensor.Mat.finite_class z.Zonotope.center,
      Tensor.Mat.finite_class z.Zonotope.phi,
      Tensor.Mat.finite_class z.Zonotope.eps )
  with
  | `Nan, _, _ | _, `Nan, _ | _, _, `Nan -> `Nan
  | `Inf, _, _ | _, `Inf, _ | _, _, `Inf -> `Inf
  | `Finite, `Finite, `Finite -> `Finite

(* One lazily-created domain pool per (process, size). Spawned domains do
   not survive a fork, and Supervisor workers fork after the parent may
   already have certified something — so the cache is keyed by pid and a
   forked child transparently builds its own pool on first use, leaving
   the inherited (stale) entry unused. *)
let pool_cache : (int * int, Tensor.Dpool.t) Hashtbl.t = Hashtbl.create 4
let pool_mutex = Mutex.create ()

let shared_pool n =
  if n <= 1 then None
  else
    let key = (Unix.getpid (), n) in
    Some
      (Mutex.protect pool_mutex (fun () ->
           match Hashtbl.find_opt pool_cache key with
           | Some p -> p
           | None ->
               let p = Tensor.Dpool.create n in
               Hashtbl.add pool_cache key p;
               p))

let abort_of : Interp.abort -> exn = function
  | Interp.Timeout -> Verdict.Abort Verdict.Timeout
  | Interp.Size_budget -> Verdict.Abort Verdict.Symbol_budget
  | Interp.Poison _ -> Verdict.Abort Verdict.Numerical_fault

(* The Multi-norm Zonotope DOMAIN instance (Section 5). The shared
   interpreter owns the per-op loop and checkpoints; the transformer
   dispatch below is all that is zonotope-specific. *)
module Domain = struct
  type state = {
    cfg : Config.t;
    ctx : Zonotope.ctx;
    pool : Tensor.Dpool.t option;
    total_layers : int;
    mutable layer : int;
  }

  type value = Zonotope.t

  let name = "zonotope"

  let transfer st ~op_index:_ (op : Ir.op) ~get ~set =
    let { cfg; ctx; pool; total_layers; _ } = st in
    try
      match op with
      | Ir.Linear { src; w; b } -> Zonotope.linear_map ?pool (get src) w b
      | Ir.Relu src -> Elementwise.relu ctx (get src)
      | Ir.Tanh src -> Elementwise.tanh_ ctx (get src)
      | Ir.Add (a, b) -> Zonotope.add (get a) (get b)
      | Ir.Center_norm { src; gamma; beta; divide_std } ->
          if divide_std then Std_norm.apply ctx (get src) ~gamma ~beta
          else Zonotope.center_rows (get src) ~gamma ~beta
      | Ir.Self_attention { src; att } ->
          (* Layer input: reduce noise symbols before the residual split
             (Section 5.1), updating the stored value so the residual
             Add sees the reduced zonotope too. *)
          if cfg.Config.reduction_k > 0 then
            set src (Reduction.decorrelate_min_k ctx (get src) cfg.Config.reduction_k);
          let precise = use_precise cfg ~layer:st.layer ~total:total_layers in
          st.layer <- st.layer + 1;
          Attention_t.apply ~cfg ~precise ctx att (get src)
      | Ir.Pool_first src -> Zonotope.pool_first (get src)
      | Ir.Positional { src; pos } -> Zonotope.positional (get src) pos
    with Zonotope.Unbounded -> raise (Verdict.Abort Verdict.Unbounded)

  let widen _ ~op_index:_ z = z
  let is_poisoned = poison_scan
  let size st _ = Zonotope.ctx_symbols st.ctx

  let width _ z =
    match Zonotope.bounds z with
    | b ->
        Tensor.Mat.max_abs (Tensor.Mat.sub b.Interval.Imat.hi b.Interval.Imat.lo)
    | exception Zonotope.Unbounded -> nan

  let density _ z = Zonotope.eps_density z
end

module I = Interp.Make (Domain)

(* DEEPT_TRACE compatibility shim: the old env var becomes a stderr sink
   on the interpreter's trace stream, installed only when the config has
   no explicit sink. Output format is unchanged (incl. the historical
   "pool" abbreviation). *)
let stderr_sink (e : Interp.event) =
  Printf.eprintf "op %-3d %-16s width %.4g eps=%d\n%!" e.Interp.op_index
    (match e.Interp.kind with "pool_first" -> "pool" | k -> k)
    e.Interp.width e.Interp.size

let trace_of (cfg : Config.t) =
  match cfg.Config.trace with
  | Some _ as s -> s
  | None -> if Sys.getenv_opt "DEEPT_TRACE" <> None then Some stderr_sink else None

let checks_of ~t0 (cfg : Config.t) : Zonotope.t Interp.checks =
  let budget = cfg.Config.budget in
  {
    Interp.deadline = Option.map (fun l -> t0 +. l) budget.Config.time_limit_s;
    max_size = budget.Config.max_eps;
    poison = true;
    fault =
      Option.map
        (fun f ->
          ( f.Config.fault_op,
            fun out ->
              try apply_fault f out
              with Zonotope.Unbounded -> raise (Verdict.Abort Verdict.Unbounded) ))
        cfg.Config.fault;
    trace = trace_of cfg;
    abort = abort_of;
  }

let state_of ~t0 (cfg : Config.t) (p : Ir.program) input =
  let ctx = Zonotope.ctx () in
  (* Arm the intra-op deadline: long transformers (the dot product) poll it
     inside their hot loops, so one giant op cannot blow past the budget
     that the per-op checkpoints only enforce between ops. *)
  Zonotope.set_deadline ctx
    (Option.map (fun l -> t0 +. l) cfg.Config.budget.Config.time_limit_s);
  (* Arm the domain pool the same way: transformers that can shard their
     hot loops pick it up from the ctx, with bit-identical results. *)
  let pool = shared_pool cfg.Config.domains in
  Zonotope.set_pool ctx pool;
  ignore (Zonotope.alloc_eps ctx (Zonotope.num_eps input));
  {
    Domain.cfg;
    ctx;
    pool;
    total_layers = Ir.depth_of_kind p "self_attention";
    layer = 0;
  }

(* Affine fusion is a pure load-time rewrite, but Config.fault addresses
   fault sites by op index into the unfused graph — the same reason
   prefix sharing turns itself off under fault injection (Certify).
   Gate it here so every front-end inherits the rule. *)
let fuse_for (cfg : Config.t) p =
  if cfg.Config.fault <> None then p else Fuse.fuse_program p

let affine_prefix_len (p : Ir.program) =
  let n = Array.length p.Ir.ops in
  let rec go i =
    if i >= n then i
    else
      match p.Ir.ops.(i) with
      | Ir.Linear _ | Ir.Add _ | Ir.Positional _ | Ir.Pool_first _
      | Ir.Center_norm { divide_std = false; _ } ->
          go (i + 1)
      | Ir.Center_norm _ | Ir.Relu _ | Ir.Tanh _ | Ir.Self_attention _ -> i
  in
  go 0

let check_input (p : Ir.program) input =
  if input.Zonotope.vcols <> p.Ir.input_dim then
    invalid_arg "Propagate.run: input dim mismatch"

let run_prefix (cfg : Config.t) (p : Ir.program) input ~len =
  check_input p input;
  if len < 0 || len > affine_prefix_len p then
    invalid_arg "Propagate.run_prefix: not an affine prefix";
  let t0 = Unix.gettimeofday () in
  let st = state_of ~t0 cfg p input in
  let vals = Array.make (Ir.num_values p) input in
  I.run_values ~checks:(checks_of ~t0 cfg) ~stop:len st p vals;
  vals

let run_all ?prefix (cfg : Config.t) (p : Ir.program) input =
  check_input p input;
  let t0 = Unix.gettimeofday () in
  let st = state_of ~t0 cfg p input in
  let checks = checks_of ~t0 cfg in
  match prefix with
  | None -> I.run_all ~checks st p input
  | Some (pvals, start) ->
      (* The reduction step mutates the layer-input slot in place, so a
         rung must work on its own copy of the shared prefix values. *)
      let vals = Array.copy pvals in
      I.run_values ~checks ~start st p vals;
      vals

let run ?prefix cfg p input = (run_all ?prefix cfg p input).(Ir.output_id p)
