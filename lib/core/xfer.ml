(* Zonotope job transport: descriptor codec over the Shm arena.

   A multi-norm zonotope is three matrices plus small metadata. For
   dispatch to a forked worker, each matrix becomes a Shm.mat_desc —
   arena-resident when large, inline (plain Marshal) when small — and
   the descriptor triple is what crosses the job pipe. Packing and
   freeing happen in the arena's owner (the supervisor); unpacking is a
   bit-exact copy-out on the worker side, so results computed from an
   unpacked zonotope are bit-identical to results computed from the
   original, whichever transport each matrix took. *)

open Tensor

type arena = Shm.t

type zono_desc = {
  p : Lp.t;
  vrows : int;
  vcols : int;
  center : Shm.mat_desc;
  phi : Shm.mat_desc;
  eps : Shm.mat_desc;
  eps_occ : Bands.t;
      (* rides the pipe so the worker's unpacked zonotope keeps its
         sparsity; also what makes the eps matrix eligible for the
         Banded arena encoding (only live columns are shipped) *)
}

let inline_zono (z : Zonotope.t) =
  {
    p = z.Zonotope.p;
    vrows = z.Zonotope.vrows;
    vcols = z.Zonotope.vcols;
    center = Shm.Inline z.Zonotope.center;
    phi = Shm.Inline z.Zonotope.phi;
    eps = Shm.Inline z.Zonotope.eps;
    eps_occ = z.Zonotope.eps_occ;
  }

let pack_zono ?arena ?threshold (z : Zonotope.t) =
  match arena with
  | None -> inline_zono z
  | Some a ->
      if not (Shm.available ()) then inline_zono z
      else
        {
          p = z.Zonotope.p;
          vrows = z.Zonotope.vrows;
          vcols = z.Zonotope.vcols;
          center = Shm.pack_mat ?threshold a z.Zonotope.center;
          phi = Shm.pack_mat ?threshold a z.Zonotope.phi;
          eps =
            Shm.pack_mat ?threshold
              ~cols:
                (Bands.col_intervals ~cols:(Zonotope.num_eps z)
                   z.Zonotope.eps_occ)
              a z.Zonotope.eps;
          eps_occ = z.Zonotope.eps_occ;
        }

let unpack_zono ?arena (d : zono_desc) =
  let mat = function
    | Shm.Inline m -> m
    | (Shm.Block _ | Shm.Banded _) as b -> (
        match arena with
        | Some a -> Shm.unpack_mat a b
        | None ->
            invalid_arg "Xfer.unpack_zono: arena-resident block but no arena")
  in
  (* A Banded eps unpacks dead entries to +0.0 where the sender may have
     held -0.0 — covered by the occupancy contract (|dead| = 0.0), and
     invisible to radii/verdicts (abs/L1 treat ±0.0 identically). *)
  Zonotope.make ~p:d.p ~center:(mat d.center) ~phi:(mat d.phi) ~eps:(mat d.eps)
  |> Zonotope.with_eps_occ d.eps_occ

let free_zono arena (d : zono_desc) =
  Shm.free_mat arena d.center;
  Shm.free_mat arena d.phi;
  Shm.free_mat arena d.eps

let desc_floats (d : zono_desc) =
  Shm.desc_floats d.center + Shm.desc_floats d.phi + Shm.desc_floats d.eps

let zono_floats (z : Zonotope.t) =
  let f m = Mat.rows m * Mat.cols m in
  f z.Zonotope.center + f z.Zonotope.phi + f z.Zonotope.eps
