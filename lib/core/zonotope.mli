(** The Multi-norm Zonotope abstract domain (Section 4, Equation 4).

    A Multi-norm Zonotope abstracts a matrix-shaped set of values
    [x = c + A·φ + B·ε] with [‖φ‖ₚ ≤ 1] and [ε ∈ [-1, 1]^E∞]. The [φ]
    symbols express an ℓp-ball input perturbation exactly; the [ε]
    symbols are the classical zonotope generators, and new ones are
    introduced by the non-linear abstract transformers.

    {b Representation.} The abstracted value is an [vrows x vcols]
    matrix; variable [(i, j)] is row [i * vcols + j] of the coefficient
    matrices. [phi] has one column per φ symbol and never grows after
    construction; [eps] has one column per ε symbol and grows as
    transformers allocate fresh symbols from a shared {!ctx}.

    {b Symbol identity.} ε column [k] always denotes the global symbol
    [k] of the owning context. Zonotopes created earlier simply have
    fewer columns; {!align} zero-pads so that values produced at
    different times can be combined exactly. *)

exception Unbounded
(** Raised when the abstraction has numerically collapsed: a bound became
    NaN (typically inf - inf after the exponential or a dot-product
    remainder overflowed at an absurdly large probe radius). Certification
    front-ends catch it and report "not certified" — always sound. *)

type ctx
(** Shared ε-symbol allocator for one verification run. *)

val ctx : unit -> ctx
(** Fresh context with no allocated symbols. *)

val ctx_symbols : ctx -> int
(** Number of ε symbols allocated so far. *)

val alloc_eps : ctx -> int -> int
(** [alloc_eps ctx n] reserves [n] fresh symbol ids, returning the first. *)

val reset_symbols : ctx -> int -> unit
(** [reset_symbols ctx n] declares that only [n] symbols remain live —
    used by noise-symbol reduction, which renumbers the symbol space.
    Only sound when a single zonotope is alive. *)

val set_deadline : ctx -> float option -> unit
(** [set_deadline ctx (Some t)] arms an absolute wall-clock deadline
    (epoch seconds, as returned by [Unix.gettimeofday]) that long-running
    transformers poll {e inside} their hot loops via {!check_deadline}.
    {!Propagate.run} arms it from {!Config.budget.time_limit_s} so a
    single giant dot product cannot overrun the budget between the
    per-op checkpoints. [None] disarms. *)

val check_deadline : ctx -> unit
(** @raise Verdict.Abort [Timeout] if the armed deadline has passed.
    No-op (one branch) when disarmed. Safe to call from pool worker
    domains: the deadline is read-only while transformers run. *)

val set_pool : ctx -> Tensor.Dpool.t option -> unit
(** [set_pool ctx (Some p)] makes the heavy transformers shard their
    hot loops over the domain pool [p]. Chunk boundaries depend only on
    problem sizes, so results are bit-identical to the serial run
    (see {!Tensor.Dpool}). [None] (the default) keeps everything on the
    calling domain. *)

val ctx_pool : ctx -> Tensor.Dpool.t option
(** The pool armed by {!set_pool}, if any. *)

type t = {
  vrows : int;
  vcols : int;
  p : Lp.t;  (** the norm bounding the φ symbols *)
  center : Tensor.Mat.t;  (** [vrows x vcols] *)
  phi : Tensor.Mat.t;  (** [(vrows * vcols) x Ep] *)
  eps : Tensor.Mat.t;  (** [(vrows * vcols) x E∞ (prefix)] *)
  eps_occ : Tensor.Bands.t;
      (** column-band occupancy of [eps]: outside the band union every
          entry of [eps] is ±0.0 (see {!Tensor.Bands}). Maintained by
          every transformer; [Tensor.Bands.full] is always sound. *)
}

(** {1 Construction} *)

val of_const : Lp.t -> Tensor.Mat.t -> t
(** Point zonotope (no noise symbols). *)

val make : p:Lp.t -> center:Tensor.Mat.t -> phi:Tensor.Mat.t -> eps:Tensor.Mat.t -> t
(** Checks coefficient row counts against the value shape. The occupancy
    defaults to [Bands.empty] for a zero-column ε matrix and
    [Bands.full] otherwise; sharpen it afterwards with {!with_eps_occ}. *)

val with_eps_occ : Tensor.Bands.t -> t -> t
(** [with_eps_occ occ z] replaces the ε occupancy. The caller asserts
    [occ] covers every nonzero of [z.eps] ({!Tensor.Bands}); with
    [DEEPT_NO_SPARSE] set the occupancy is pinned to [Bands.full]
    regardless. *)

val fresh_bands :
  fresh:int array -> base:int -> rows:int -> per_row:int -> Tensor.Bands.t
(** Occupancy of freshly minted symbols: [fresh.(v)] is the id offset
    (from global id [base]) minted for flat variable [v], or [-1].
    Offsets must ascend with [v] (how all transformers allocate), so the
    ids of one value row of [per_row] variables form a contiguous column
    range — the result has one band per value row that minted any. *)

val num_vars : t -> int
val num_phi : t -> int
val num_eps : t -> int

(** {1 Concrete bounds (Theorem 1)} *)

val bounds : ?pool:Tensor.Dpool.t -> t -> Interval.Imat.t
(** Tight per-variable interval bounds: [c ± (‖α‖_q + ‖β‖₁)].
    Shards the per-variable norm loop over [pool] when given and the
    coefficient matrices are large enough. *)

val bounds_var : t -> int -> Interval.Itv.t
(** Bounds of one flat variable index. *)

val radius_terms : t -> int -> float * float
(** [(‖α_v‖_q, ‖β_v‖₁)] for variable [v] — the φ and ε contributions to
    its radius. *)

(** {1 Sampling (for soundness tests)} *)

val sample : Tensor.Rng.t -> t -> Tensor.Mat.t
(** A concrete matrix obtained by instantiating all noise symbols inside
    their domains. Every sample must satisfy the bounds. *)

val instantiate : t -> phi:float array -> eps:float array -> Tensor.Mat.t
(** Concrete value for given symbol instantiations ([eps] may be shorter
    than the global symbol count; missing symbols are 0). *)

(** {1 Exact affine transformers (Theorem 2)} *)

val linear_map : ?pool:Tensor.Dpool.t -> t -> Tensor.Mat.t -> float array -> t
(** [linear_map x w b] abstracts the row-wise affine map [x·w + b]. *)

val add : t -> t -> t
(** Sum of two zonotopes over the same symbols (ε widths may differ;
    the shorter is zero-padded). Value shapes must match. *)

val add_const : t -> Tensor.Mat.t -> t
val scale : float -> t -> t

val scale_coeffs : float -> t -> t
(** [scale_coeffs s z] rescales only the generator coefficient matrices
    (φ and ε) by [s], {e sharing} the center matrix with [z]. For a
    region whose generators were built at unit radius and propagated
    through an affine prefix, this reconstructs the prefix output at
    radius [s] without re-propagating — the radius-search amortization
    primitive ({!Certify}). The shared center must not be mutated;
    callers that inject faults must not use coefficient sharing. *)

val neg : t -> t

(** {1 Symbol splitting (branch-and-bound refinement)} *)

type half = Lower | Upper

type symbol =
  | Phi of int  (** an ℓp-constrained input noise symbol (column of φ) *)
  | Eps of int  (** an ℓ∞ noise symbol (column of ε) *)

val restrict_symbol : t -> symbol -> half -> t
(** [restrict_symbol z sym half] restricts one noise symbol to the lower
    ([[-1, 0]]) or upper ([[0, 1]]) half of its range, re-centering the
    affected variables and halving the symbol's coefficients — the
    splitting primitive of {!Brefine}'s branch-and-bound.

    For an [Eps] symbol the split is an exact partition: the [Lower] and
    [Upper] branches together concretize to exactly the parent. For a
    [Phi] symbol (jointly constrained by [‖φ‖_p ≤ 1]) halving in place
    would be unsound, so the split coordinate is {e decoupled}: its φ
    column is zeroed and re-issued as a fresh trailing ε column of half
    magnitude around the half's midpoint. Each branch is then a sound
    relaxation of "parent ∩ half" and the two branches still cover the
    parent, which is all branch-and-bound needs ("every branch certifies"
    remains a sound proof); the branch is strictly tighter than the
    parent in the split coordinate.

    Pure float multiply-adds in a fixed order: bit-deterministic across
    runs, processes and domain counts.
    @raise Invalid_argument if the symbol index is out of range. *)

val center_rows : t -> gamma:float array -> beta:float array -> t
(** The paper's normalization layer (no std): subtract the row mean of
    the value, then scale each column by [gamma] and shift by [beta] —
    all affine, hence exact. *)

val positional : t -> Tensor.Mat.t -> t
(** Adds constant positional rows to the value. *)

(** {1 Structural operations} *)

val align : t -> t -> t * t
(** Zero-pads ε matrices to a common width. *)

val pad_eps : t -> int -> t
(** Zero-pads the ε matrix to the given width (no-op if already wider). *)

val pool_first : t -> t
(** Restricts to the first value row. *)

val select_value_rows : t -> int -> int -> t
(** [select_value_rows z start n] keeps value rows [start..start+n-1]. *)

val select_value_cols : t -> int -> int -> t
(** Keeps a contiguous range of value columns. *)

val transpose_value : t -> t
(** Transposes the abstracted value (pure reindexing of variables). *)

val reshape_value : t -> rows:int -> cols:int -> t
(** Reinterprets the value shape keeping the flat (row-major) variable
    order; [rows * cols] must equal {!num_vars}. *)

val hcat_value : t -> t -> t
(** Horizontally concatenates the abstracted values. *)

val vcat_value : t -> t -> t
(** Vertically concatenates the abstracted values. *)

val of_rows : t list -> t
(** Stacks single-row zonotopes (value shape [1 x d] each). *)

val map_rows_affine : ?pool:Tensor.Dpool.t -> t -> Tensor.Mat.t -> t
(** [map_rows_affine z m] abstracts [m · x] for the constant matrix [m]
    applied from the left to the [vrows x vcols] value [x]. *)

(** {1 Dead-symbol compaction} *)

val eps_density : t -> float
(** Live fraction of the ε coefficient matrix per its occupancy bands
    ([Tensor.Bands.density]); 1.0 when nothing is known (full). *)

val compact : t -> t
(** Physically drops ε columns covered by no occupancy band and remaps
    the surviving columns (order-preserving) in both the matrix and the
    bands. Dropped columns are provably ±0.0 in every row, so radii,
    bounds and verdicts are bit-identical before and after.

    {b Symbol identity caveat:} after compaction ε column ids no longer
    match the owning {!ctx}'s global numbering — callers that index
    symbols ({!restrict_symbol} [Eps k]) must remap, and the ctx must be
    re-synced via {!reset_symbols} when the compacted value is the only
    one alive (noise-symbol reduction and branch evaluation do both). *)

(** {1 Variable-level access (used by the transformers)} *)

val var_affine : t -> int -> float * float array * float array
(** [(c, α_row, β_row)] of a flat variable (copies). *)

val phi_block : t -> int -> int -> Tensor.Mat.t
(** [phi_block z start n] copies coefficient rows [start..start+n-1]. *)

val eps_block : t -> int -> int -> Tensor.Mat.t

val contains_sample : ?tol:float -> t -> Tensor.Mat.t -> bool
(** Quick necessary check used in tests: the matrix lies inside the
    interval concretization {!bounds}. *)
