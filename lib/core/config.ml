type dot_variant = Fast | Precise | Combined
type dual_order = Linf_first | Lp_first
type softmax_form = Stable | Direct

type fault_action =
  | Inject_nan
  | Inject_inf
  | Stall of float
  | Raise_unbounded

type fault_spec = { fault_op : int; action : fault_action; persist : int }

type budget = { time_limit_s : float option; max_eps : int option }

let no_budget = { time_limit_s = None; max_eps = None }

type pool = {
  workers : int;
  hard_deadline_s : float option;
  grace_s : float;
  mem_limit_mb : int option;
  max_retries : int;
  backoff_s : float;
  max_backoff_s : float;
}

let default_pool =
  {
    workers = 1;
    hard_deadline_s = None;
    grace_s = 1.0;
    mem_limit_mb = None;
    max_retries = 1;
    backoff_s = 0.05;
    max_backoff_s = 5.0;
  }

let pool ?(workers = default_pool.workers) ?hard_deadline_s
    ?(grace_s = default_pool.grace_s) ?mem_limit_mb
    ?(max_retries = default_pool.max_retries)
    ?(backoff_s = default_pool.backoff_s)
    ?(max_backoff_s = default_pool.max_backoff_s) () =
  if workers < 1 then invalid_arg "Config.pool: workers < 1";
  if grace_s < 0.0 then invalid_arg "Config.pool: negative grace";
  if max_retries < 0 then invalid_arg "Config.pool: negative max_retries";
  if backoff_s < 0.0 then invalid_arg "Config.pool: negative backoff";
  if max_backoff_s < backoff_s then
    invalid_arg "Config.pool: max_backoff below backoff";
  (match hard_deadline_s with
  | Some d when d <= 0.0 -> invalid_arg "Config.pool: non-positive deadline"
  | _ -> ());
  (match mem_limit_mb with
  | Some m when m < 1 -> invalid_arg "Config.pool: mem limit < 1 MB"
  | _ -> ());
  {
    workers;
    hard_deadline_s;
    grace_s;
    mem_limit_mb;
    max_retries;
    backoff_s;
    max_backoff_s;
  }

type probe_backend = Fork_probes | Domain_probes | Serial_probes

type search = {
  probes : int;
  rounds : int option;
  share_prefix : bool;
  probe_backend : probe_backend;
}

let default_search =
  { probes = 1; rounds = None; share_prefix = true; probe_backend = Fork_probes }

let search ?(probes = default_search.probes) ?rounds
    ?(share_prefix = default_search.share_prefix)
    ?(probe_backend = default_search.probe_backend) () =
  if probes < 1 || probes > 64 then
    invalid_arg "Config.search: need 1 <= probes <= 64";
  (match rounds with
  | Some r when r < 1 -> invalid_arg "Config.search: rounds < 1"
  | _ -> ());
  { probes; rounds; share_prefix; probe_backend }

type refine = { top_k : int; max_branches : int; depth : int }

let default_refine = { top_k = 2; max_branches = 8; depth = 2 }

let refine ?(top_k = default_refine.top_k)
    ?(max_branches = default_refine.max_branches)
    ?(depth = default_refine.depth) () =
  if top_k < 1 || top_k > 6 then
    invalid_arg "Config.refine: need 1 <= top_k <= 6";
  if max_branches < 2 || max_branches > 256 then
    invalid_arg "Config.refine: need 2 <= max_branches <= 256";
  if depth < 1 || depth > 8 then
    invalid_arg "Config.refine: need 1 <= depth <= 8";
  { top_k; max_branches; depth }

type t = {
  variant : dot_variant;
  order : dual_order;
  softmax : softmax_form;
  refine_softmax_sum : bool;
  reduction_k : int;
  budget : budget;
  fault : fault_spec option;
  domains : int;
  trace : Interp.sink option;
  search : search;
  refine : refine option;
}

let default =
  {
    variant = Fast;
    order = Linf_first;
    softmax = Stable;
    refine_softmax_sum = true;
    reduction_k = 128;
    budget = no_budget;
    fault = None;
    domains = 1;
    trace = None;
    search = default_search;
    refine = None;
  }

let fast = default
let precise = { default with variant = Precise; reduction_k = 96 }
let combined = { default with variant = Combined; reduction_k = 128 }

let fault ?(persist = max_int) fault_op action =
  if fault_op < 0 then invalid_arg "Config.fault: negative op index";
  if persist < 1 then invalid_arg "Config.fault: persist < 1";
  { fault_op; action; persist }

let with_budget ?deadline ?max_eps cfg =
  { cfg with budget = { time_limit_s = deadline; max_eps } }

let with_domains n cfg =
  if n < 1 || n > 128 then invalid_arg "Config.with_domains: need 1 <= n <= 128";
  { cfg with domains = n }

let with_trace sink cfg = { cfg with trace = sink }
let with_search s cfg = { cfg with search = s }
let with_refine r cfg = { cfg with refine = r }

let probe_backend_name = function
  | Fork_probes -> "fork"
  | Domain_probes -> "domain"
  | Serial_probes -> "serial"

let variant_name = function Fast -> "fast" | Precise -> "precise" | Combined -> "combined"

let refine_key = function
  | None -> "-"
  | Some r -> Printf.sprintf "k%d.b%d.d%d" r.top_k r.max_branches r.depth

let policy_key c =
  Printf.sprintf "%s:o%s:s%s:ss%d:k%d:rf%s"
    (variant_name c.variant)
    (match c.order with Linf_first -> "linf" | Lp_first -> "lp")
    (match c.softmax with Stable -> "stable" | Direct -> "direct")
    (if c.refine_softmax_sum then 1 else 0)
    c.reduction_k
    (refine_key c.refine)

let fault_action_name = function
  | Inject_nan -> "nan"
  | Inject_inf -> "inf"
  | Stall s -> Printf.sprintf "stall:%g" s
  | Raise_unbounded -> "unbounded"

let pp ppf c =
  let b = Buffer.create 16 in
  (match c.budget.time_limit_s with
  | Some s -> Buffer.add_string b (Printf.sprintf ", deadline=%gs" s)
  | None -> ());
  (match c.budget.max_eps with
  | Some n -> Buffer.add_string b (Printf.sprintf ", max_eps=%d" n)
  | None -> ());
  (match c.fault with
  | Some f ->
      Buffer.add_string b
        (Printf.sprintf ", fault=%s@%d" (fault_action_name f.action) f.fault_op)
  | None -> ());
  if c.domains > 1 then
    Buffer.add_string b (Printf.sprintf ", domains=%d" c.domains);
  if c.search.probes > 1 then
    Buffer.add_string b
      (Printf.sprintf ", probes=%d(%s%s)" c.search.probes
         (probe_backend_name c.search.probe_backend)
         (if c.search.share_prefix then "" else ", no-share"));
  (match c.refine with
  | Some r ->
      Buffer.add_string b
        (Printf.sprintf ", refine=k%d/b%d/d%d" r.top_k r.max_branches r.depth)
  | None -> ());
  Format.fprintf ppf "deept(%s, %s, softmax=%s, refine=%b, k=%d%s)"
    (variant_name c.variant)
    (match c.order with Linf_first -> "linf-first" | Lp_first -> "lp-first")
    (match c.softmax with Stable -> "stable" | Direct -> "direct")
    c.refine_softmax_sum c.reduction_k (Buffer.contents b)
