(** Crash-safe job journal.

    One line of JSON per completed job, so a batch run — or the
    long-lived certification daemon — that is killed at any instant
    (power loss, OOM killer, SIGKILL) can be resumed without
    re-certifying finished work. Durability is append-only: every
    {!append} writes one line, flushes and fsyncs, so journaling a job
    costs O(1) no matter how long the daemon has been up. A kill can
    therefore tear the {e final} line mid-write; {!resume} and {!load}
    recognise exactly that artifact — a single unparseable trailing
    line — skip it with a warning, and {!resume} truncates it away so
    later appends extend a well-formed file. A malformed line anywhere
    {e else} still fails loudly: that is corruption, not a crash.

    The journal format is a flat JSON object per line:

    {v
    {"job":3,"verdict":"unknown(timeout)","rung":"interval","attempts":4,
     "retries":1,"wall_s":1.203017,"detail":""}
    v}

    Verdicts round-trip through {!Verdict.to_string} /
    {!Verdict.of_string}; [detail] carries the supervisor's failure
    reason (["signal 9"], ["oom"], …) for dead-worker entries. *)

type entry = {
  job : int;  (** batch-wide job id (e.g. test-set sentence index) *)
  verdict : Verdict.t;
  rung : string;  (** ladder rung that produced the verdict, or ["worker"] *)
  attempts : int;  (** ladder rungs tried *)
  retries : int;  (** supervisor-level re-runs after worker deaths *)
  wall_s : float;  (** wall-clock seconds spent on the job *)
  detail : string;  (** free-form failure detail, [""] when clean *)
}

val to_json : entry -> string
(** One line, no trailing newline. *)

val of_json : string -> (entry, string) result
(** Strict inverse of {!to_json} (unknown fields rejected, all fields
    required); the [Error] carries a parse diagnostic. *)

type t
(** An open journal: in-memory entries plus the backing file. *)

val create : string -> t
(** Start a fresh journal at this path (an existing file is replaced on
    the first append). *)

val resume : string -> t
(** Load an existing journal (missing file = empty journal) and keep
    appending to it. A torn final line — the artifact of an append
    interrupted by a crash — is dropped with a warning and truncated
    from the file; a stale [.tmp] left by the pre-append-only format is
    removed. @raise Failure on a malformed line that is {e not} the
    final one — impossible for journals written by this module, so
    corruption stays loud. *)

val path : t -> string

val entries : t -> entry list
(** In append order, including entries loaded by {!resume}. *)

val journaled : t -> int -> bool
(** [journaled j id] — has job [id] already been recorded? Resume uses
    this to skip finished work. *)

val append : t -> entry -> unit
(** Record one completed job, durably (see module doc). Appending a job
    id that is already journaled raises [Invalid_argument] — the
    supervisor must never double-report. *)

val load : string -> entry list
(** Read-only load; a torn final line is skipped with a warning (the
    file is left untouched). @raise Failure on other malformed lines,
    [Sys_error] if the file does not exist. *)

val fsync_dir : site:string -> string -> unit
(** Best-effort fsync of a directory (through {!Sysio}), making a freshly
    created file's directory entry durable. Shared with the daemon's
    intake file. *)
