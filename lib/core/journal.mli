(** Crash-safe batch journal.

    One line of JSON per completed job, so a batch run that is killed at
    any instant — power loss, OOM killer, SIGKILL — can be resumed
    without re-certifying finished sentences and without ever reading a
    torn record. Durability comes from the classic write-to-temp +
    atomic-rename discipline: every {!append} rewrites the full journal
    to [path ^ ".tmp"], fsyncs it, renames it over [path] and fsyncs the
    containing directory, so the on-disk journal is always a complete
    prefix of the run. Batches are small (thousands of lines), so the
    O(n²) total write cost is noise next to certification itself.

    The journal format is a flat JSON object per line:

    {v
    {"job":3,"verdict":"unknown(timeout)","rung":"interval","attempts":4,
     "retries":1,"wall_s":1.203017,"detail":""}
    v}

    Verdicts round-trip through {!Verdict.to_string} /
    {!Verdict.of_string}; [detail] carries the supervisor's failure
    reason (["signal 9"], ["oom"], …) for dead-worker entries. *)

type entry = {
  job : int;  (** batch-wide job id (e.g. test-set sentence index) *)
  verdict : Verdict.t;
  rung : string;  (** ladder rung that produced the verdict, or ["worker"] *)
  attempts : int;  (** ladder rungs tried *)
  retries : int;  (** supervisor-level re-runs after worker deaths *)
  wall_s : float;  (** wall-clock seconds spent on the job *)
  detail : string;  (** free-form failure detail, [""] when clean *)
}

val to_json : entry -> string
(** One line, no trailing newline. *)

val of_json : string -> (entry, string) result
(** Strict inverse of {!to_json} (unknown fields rejected, all fields
    required); the [Error] carries a parse diagnostic. *)

type t
(** An open journal: in-memory entries plus the backing file. *)

val create : string -> t
(** Start a fresh journal at this path (an existing file is replaced on
    the first append). *)

val resume : string -> t
(** Load an existing journal (missing file = empty journal) and keep
    appending to it. A stale [.tmp] from an interrupted append is
    removed. @raise Failure on a malformed line — impossible for
    journals written by this module, so corruption stays loud. *)

val path : t -> string

val entries : t -> entry list
(** In append order, including entries loaded by {!resume}. *)

val journaled : t -> int -> bool
(** [journaled j id] — has job [id] already been recorded? Resume uses
    this to skip finished work. *)

val append : t -> entry -> unit
(** Record one completed job, durably (see module doc). Appending a job
    id that is already journaled raises [Invalid_argument] — the
    supervisor must never double-report. *)

val load : string -> entry list
(** Read-only load. @raise Failure on malformed lines, [Sys_error] if
    the file does not exist. *)
