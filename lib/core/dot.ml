open Tensor
open Interval

type quad_bound = {
  phi_phi : Itv.t;
  phi_eps : Itv.t;
  eps_phi : Itv.t;
  eps_eps : Itv.t;
}

(* |V^T| applied to a vector of row norms: t_k = sum_j norms_j * |V_{jk}|. *)
let abs_vec_mat norms (v : Mat.t) =
  let d = Mat.rows v and e = Mat.cols v in
  if Array.length norms <> d then invalid_arg "Dot.abs_vec_mat";
  let out = Array.make e 0.0 in
  for j = 0 to d - 1 do
    let nj = norms.(j) in
    if nj <> 0.0 then begin
      let base = j * e in
      for kk = 0 to e - 1 do
        out.(kk) <- out.(kk) +. (nj *. Float.abs v.Mat.data.(base + kk))
      done
    end
  done;
  out

(* Equation 5 with [w] normed first:
   bound = || (||w_j||_{q2})_j^T |V| ||_{q1}. *)
let cascade_w_first ~p1 ~p2 (v : Mat.t) (w : Mat.t) =
  if Mat.cols v = 0 || Mat.cols w = 0 then 0.0
  else begin
    let nw = Mat.row_lp_norms w (Lp.to_float (Lp.dual p2)) in
    let t = abs_vec_mat nw v in
    Lp.norm (Lp.dual p1) t
  end

let fast_abs_bound ~order ~p1 ~p2 (v : Mat.t) (w : Mat.t) =
  if Mat.rows v <> Mat.rows w then invalid_arg "Dot.fast_abs_bound: dim mismatch";
  let w_first =
    if p1 = p2 then true
    else
      match (order : Config.dual_order) with
      | Config.Linf_first -> p2 = Lp.Linf
      | Config.Lp_first -> p2 <> Lp.Linf
  in
  if w_first then cascade_w_first ~p1 ~p2 v w else cascade_w_first ~p1:p2 ~p2:p1 w v

let precise_eps_bound (b1 : Mat.t) (b2 : Mat.t) =
  if Mat.rows b1 <> Mat.rows b2 || Mat.cols b1 <> Mat.cols b2 then
    invalid_arg "Dot.precise_eps_bound: shape mismatch";
  let e = Mat.cols b1 in
  if e = 0 then Itv.zero
  else begin
    (* C = B1^T B2; diagonal entries multiply eps^2 in [0,1], symmetrized
       off-diagonal pairs multiply eps_k eps_l in [-1,1]. *)
    let c = Mat.gemm ~ta:true b1 b2 in
    let lo = ref 0.0 and hi = ref 0.0 in
    for k = 0 to e - 1 do
      let ckk = Mat.get c k k in
      if ckk > 0.0 then hi := !hi +. ckk else lo := !lo +. ckk;
      for l = k + 1 to e - 1 do
        let s = Float.abs (Mat.get c k l +. Mat.get c l k) in
        hi := !hi +. s;
        lo := !lo -. s
      done
    done;
    Itv.make !lo !hi
  end

let sym m = Itv.make (-.m) m

let quad_bounds ~precise ~order ~p ~a1 ~b1 ~a2 ~b2 =
  {
    phi_phi = sym (fast_abs_bound ~order ~p1:p ~p2:p a1 a2);
    phi_eps = sym (fast_abs_bound ~order ~p1:p ~p2:Lp.Linf a1 b2);
    eps_phi = sym (fast_abs_bound ~order ~p1:Lp.Linf ~p2:p b1 a2);
    eps_eps =
      (if precise then precise_eps_bound b1 b2
       else sym (fast_abs_bound ~order ~p1:Lp.Linf ~p2:Lp.Linf b1 b2));
  }

let total_quad q =
  Itv.add q.phi_phi (Itv.add q.phi_eps (Itv.add q.eps_phi q.eps_eps))

(* When the remainder bound overflows to infinity, keep the center
   untouched and make the fresh symbol's radius infinite: downstream
   bounds become infinite and certification honestly fails, instead of
   center = (inf + -inf)/2 = NaN poisoning everything. *)
let mid_rad itv =
  let c = Itv.center itv and r = 0.5 *. Itv.width itv in
  if Float.is_finite c then (c, r) else (0.0, infinity)

(* Gather the coefficient rows of value column [j] of [z] (a k x m value):
   rows { t*m + j : t = 0..k-1 } of the coefficient matrix. *)
let gather_col_block (g : Mat.t) ~k ~m ~j =
  let e = Mat.cols g in
  let out = Mat.create k e in
  for t = 0 to k - 1 do
    Array.blit g.Mat.data (((t * m) + j) * e) out.Mat.data (t * e) e
  done;
  out

let matmul_zz ?(precise = false) ?(order = Config.Linf_first) ctx
    (a : Zonotope.t) (b : Zonotope.t) =
  if a.Zonotope.vcols <> b.Zonotope.vrows then
    invalid_arg "Dot.matmul_zz: inner dimension mismatch";
  if a.Zonotope.p <> b.Zonotope.p then invalid_arg "Dot.matmul_zz: norm mismatch";
  if Zonotope.num_phi a <> Zonotope.num_phi b then
    invalid_arg "Dot.matmul_zz: phi width mismatch";
  let a = Zonotope.pad_eps a (Zonotope.ctx_symbols ctx) in
  let b = Zonotope.pad_eps b (Zonotope.ctx_symbols ctx) in
  let n = a.Zonotope.vrows and k = a.Zonotope.vcols and m = b.Zonotope.vcols in
  let ep = Zonotope.num_phi a and ee = Zonotope.num_eps a in
  let p = a.Zonotope.p in
  (* Pre-gather row blocks of [a] and column blocks of [b]. *)
  let aphi = Array.init n (fun i -> Zonotope.phi_block a (i * k) k) in
  let aeps = Array.init n (fun i -> Zonotope.eps_block a (i * k) k) in
  let ca = Array.init n (fun i -> Mat.row a.Zonotope.center i) in
  let bphi = Array.init m (fun j -> gather_col_block b.Zonotope.phi ~k ~m ~j) in
  let beps = Array.init m (fun j -> gather_col_block b.Zonotope.eps ~k ~m ~j) in
  let cb = Array.init m (fun j -> Mat.col b.Zonotope.center j) in
  let nv = n * m in
  let center = Mat.matmul a.Zonotope.center b.Zonotope.center in
  let phi = Mat.create nv ep in
  let eps_aff = Mat.create nv ee in
  let rad = Array.make nv 0.0 in
  (* One chunk per output row: every output (i, j) is computed by exactly
     one chunk with the same arithmetic, so sharding the rows over the
     pool cannot change a bit of the result. The cooperative deadline is
     polled once per chunk; an expired deadline raises inside the chunk
     and the pool cancels the remaining ones via its atomic failure
     flag. *)
  let row i =
    (* The dot product dominates propagation cost; without an intra-op
       poll a single large matmul could overrun the wall-clock budget
       unboundedly between Propagate's per-op checkpoints. *)
    Zonotope.check_deadline ctx;
    for j = 0 to m - 1 do
      let v = (i * m) + j in
      (* Exact affine part: c_a^T . (b coeff block) + c_b^T . (a coeff block) *)
      if ep > 0 then begin
        let pa = Vecops.add (Mat.vec_mat ca.(i) bphi.(j)) (Mat.vec_mat cb.(j) aphi.(i)) in
        Array.blit pa 0 phi.Mat.data (v * ep) ep
      end;
      if ee > 0 then begin
        let pe = Vecops.add (Mat.vec_mat ca.(i) beps.(j)) (Mat.vec_mat cb.(j) aeps.(i)) in
        Array.blit pe 0 eps_aff.Mat.data (v * ee) ee
      end;
      (* Quadratic remainder. *)
      let q =
        quad_bounds ~precise ~order ~p ~a1:aphi.(i) ~b1:aeps.(i) ~a2:bphi.(j)
          ~b2:beps.(j)
      in
      let itv = total_quad q in
      let mid, r = mid_rad itv in
      center.Mat.data.(v) <- center.Mat.data.(v) +. mid;
      rad.(v) <- r
    done
  in
  (match Zonotope.ctx_pool ctx with
  | Some pool when Tensor.Dpool.size pool > 1 && n > 1 ->
      Tensor.Dpool.run_chunks pool ~nchunks:n row
  | _ ->
      for i = 0 to n - 1 do
        row i
      done);
  (* One fresh symbol per output with a non-trivial remainder. *)
  let fresh = Array.make nv (-1) in
  let n_new = ref 0 in
  Array.iteri
    (fun v r ->
      if r > 0.0 then begin
        fresh.(v) <- !n_new;
        incr n_new
      end)
    rad;
  let base = Zonotope.alloc_eps ctx !n_new in
  assert (base = ee);
  let w = base + !n_new in
  let eps = Mat.create nv w in
  for v = 0 to nv - 1 do
    Array.blit eps_aff.Mat.data (v * ee) eps.Mat.data (v * w) ee;
    if fresh.(v) >= 0 then eps.Mat.data.((v * w) + base + fresh.(v)) <- rad.(v)
  done;
  (* The affine ε part mixes [a]'s coefficients within a value row
     (block k -> m) and [b]'s across all rows (widen); dead columns stay
     exactly ±0.0 only when both centers are finite (an infinite center
     times a dead 0.0 would write NaN there), so widen to full
     otherwise. *)
  let occ =
    if
      Mat.finite_class a.Zonotope.center <> `Finite
      || Mat.finite_class b.Zonotope.center <> `Finite
    then Bands.full
    else
      Bands.union
        (Bands.union
           (Bands.block_rows ~bin:k ~bout:m a.Zonotope.eps_occ)
           (Bands.widen_rows ~rows:nv b.Zonotope.eps_occ))
        (Zonotope.fresh_bands ~fresh ~base ~rows:n ~per_row:m)
  in
  Zonotope.make ~p ~center ~phi ~eps |> Zonotope.with_eps_occ occ

let mul_zz ?(precise = false) ?(order = Config.Linf_first) ctx (a : Zonotope.t)
    (b : Zonotope.t) =
  if a.Zonotope.vrows <> b.Zonotope.vrows || a.Zonotope.vcols <> b.Zonotope.vcols
  then invalid_arg "Dot.mul_zz: shape mismatch";
  if a.Zonotope.p <> b.Zonotope.p then invalid_arg "Dot.mul_zz: norm mismatch";
  let a = Zonotope.pad_eps a (Zonotope.ctx_symbols ctx) in
  let b = Zonotope.pad_eps b (Zonotope.ctx_symbols ctx) in
  let nv = Zonotope.num_vars a in
  let ep = Zonotope.num_phi a and ee = Zonotope.num_eps a in
  let p = a.Zonotope.p in
  let center = Mat.mul a.Zonotope.center b.Zonotope.center in
  let phi = Mat.create nv ep in
  let eps_aff = Mat.create nv ee in
  let rad = Array.make nv 0.0 in
  (* Each variable [v] writes only its own slices of phi/eps/center/rad,
     so sharding the variable range over the pool is bit-deterministic.
     The deadline is polled once per 64-variable chunk, matching the
     serial poll cadence. *)
  let var_range ~start ~stop =
    Zonotope.check_deadline ctx;
    for v = start to stop - 1 do
    let c1 = a.Zonotope.center.Mat.data.(v) and c2 = b.Zonotope.center.Mat.data.(v) in
    for t = 0 to ep - 1 do
      phi.Mat.data.((v * ep) + t) <-
        (c1 *. b.Zonotope.phi.Mat.data.((v * ep) + t))
        +. (c2 *. a.Zonotope.phi.Mat.data.((v * ep) + t))
    done;
    for t = 0 to ee - 1 do
      eps_aff.Mat.data.((v * ee) + t) <-
        (c1 *. b.Zonotope.eps.Mat.data.((v * ee) + t))
        +. (c2 *. a.Zonotope.eps.Mat.data.((v * ee) + t))
    done;
    let a1 = Zonotope.phi_block a v 1 and b1 = Zonotope.eps_block a v 1 in
    let a2 = Zonotope.phi_block b v 1 and b2 = Zonotope.eps_block b v 1 in
    let q = quad_bounds ~precise ~order ~p ~a1 ~b1 ~a2 ~b2 in
    let itv = total_quad q in
    let mid, r = mid_rad itv in
    center.Mat.data.(v) <- center.Mat.data.(v) +. mid;
    rad.(v) <- r
    done
  in
  (match Zonotope.ctx_pool ctx with
  | Some pool when Tensor.Dpool.size pool > 1 && nv > 64 ->
      Tensor.Dpool.run_ranges pool ~n:nv ~chunk:64 var_range
  | _ -> var_range ~start:0 ~stop:nv);
  let fresh = Array.make nv (-1) in
  let n_new = ref 0 in
  Array.iteri
    (fun v r ->
      if r > 0.0 then begin
        fresh.(v) <- !n_new;
        incr n_new
      end)
    rad;
  let base = Zonotope.alloc_eps ctx !n_new in
  let w = base + !n_new in
  let eps = Mat.create nv w in
  for v = 0 to nv - 1 do
    Array.blit eps_aff.Mat.data (v * ee) eps.Mat.data (v * w) ee;
    if fresh.(v) >= 0 then eps.Mat.data.((v * w) + base + fresh.(v)) <- rad.(v)
  done;
  (* Pointwise product keeps each operand's row structure; same
     finite-center condition as [matmul_zz] for the dead columns. *)
  let occ =
    if
      Mat.finite_class a.Zonotope.center <> `Finite
      || Mat.finite_class b.Zonotope.center <> `Finite
    then Bands.full
    else
      Bands.union
        (Bands.union a.Zonotope.eps_occ b.Zonotope.eps_occ)
        (Zonotope.fresh_bands ~fresh ~base ~rows:a.Zonotope.vrows
           ~per_row:a.Zonotope.vcols)
  in
  Zonotope.make ~p ~center ~phi ~eps |> Zonotope.with_eps_occ occ
