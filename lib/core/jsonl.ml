(* Flat JSON lines, hand-rolled.

   The toolchain ships no JSON library, and every line format in the
   repository — the batch journal, the daemon's wire protocol and intake
   file, the benchmark snapshots — is one flat object of known fields per
   line, so a tiny strict codec keeps the dependency surface at zero.
   Originally private to Journal; extracted when the service protocol
   needed the same discipline. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Values are strings or numbers; that is all the line formats emit. *)
type value = Str of string | Num of float

exception Parse of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at column %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do advance () done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub line (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c when c < 0x80 -> Buffer.add_char b (Char.chr c)
              | _ -> fail "unsupported \\u escape");
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (string_lit ())
    | _ -> Num (number ())
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  (if peek () = Some '}' then advance ()
   else
     let rec members () =
       let k = string_lit () in
       expect ':';
       let v = value () in
       if List.mem_assoc k !fields then fail ("duplicate field " ^ k);
       fields := (k, v) :: !fields;
       skip_ws ();
       match peek () with
       | Some ',' -> advance (); skip_ws (); members ()
       | Some '}' -> advance ()
       | _ -> fail "expected ',' or '}'"
     in
     members ());
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  !fields

let parse line =
  match parse_line line with
  | exception Parse msg -> Error msg
  | fields -> Ok fields

let known fields names =
  match List.find_opt (fun (k, _) -> not (List.mem k names)) fields with
  | Some (k, _) -> Error ("unknown field " ^ k)
  | None -> Ok ()

(* ---------------- typed field accessors ---------------- *)

let str fields k =
  match List.assoc_opt k fields with
  | Some (Str s) -> Ok s
  | Some (Num _) -> Error ("field " ^ k ^ " must be a string")
  | None -> Error ("missing field " ^ k)

let num fields k =
  match List.assoc_opt k fields with
  | Some (Num f) -> Ok f
  | Some (Str _) -> Error ("field " ^ k ^ " must be a number")
  | None -> Error ("missing field " ^ k)

let int fields k =
  Result.bind (num fields k) (fun f ->
      if Float.is_integer f then Ok (int_of_float f)
      else Error ("field " ^ k ^ " must be an integer"))

let some r = Result.map Option.some r

let str_opt fields k =
  if List.mem_assoc k fields then some (str fields k) else Ok None

let num_opt fields k =
  if List.mem_assoc k fields then some (num fields k) else Ok None

let int_opt fields k =
  if List.mem_assoc k fields then some (int fields k) else Ok None
