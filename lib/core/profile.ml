(* Per-op profile collector over the interpreter's trace stream.

   A collector is just an Interp.sink that aggregates events by op
   index; install it with Config.with_trace (zonotope runs) or via
   Interp.checks directly (any other domain). One collector can absorb
   many runs — a certified-radius search feeds every probe's events into
   the same rows, so `calls` counts propagations per op and `wall_s`
   their summed wall time, while `size`/`width` keep the last observed
   value (the ε-count / bound-width evolution of the final probe). *)

type row = {
  op_index : int;
  kind : string;
  mutable calls : int;
  mutable wall_s : float;
  mutable size : int;
  mutable width : float;
  mutable density : float;
}

type t = { mutable rows : row option array }

let create () = { rows = Array.make 0 None }

let ensure t i =
  let n = Array.length t.rows in
  if i >= n then begin
    let grown = Array.make (max (i + 1) (max 8 (2 * n))) None in
    Array.blit t.rows 0 grown 0 n;
    t.rows <- grown
  end

let sink t (e : Interp.event) =
  ensure t e.Interp.op_index;
  let r =
    match t.rows.(e.Interp.op_index) with
    | Some r -> r
    | None ->
        let r =
          {
            op_index = e.Interp.op_index;
            kind = e.Interp.kind;
            calls = 0;
            wall_s = 0.0;
            size = 0;
            width = 0.0;
            density = 1.0;
          }
        in
        t.rows.(e.Interp.op_index) <- Some r;
        r
  in
  r.calls <- r.calls + 1;
  r.wall_s <- r.wall_s +. e.Interp.wall_s;
  r.size <- e.Interp.size;
  r.width <- e.Interp.width;
  r.density <- e.Interp.density

let rows t = Array.to_list t.rows |> List.filter_map Fun.id

(* kind -> (calls, wall_s), insertion-ordered by first appearance. *)
let by_kind t =
  let order = ref [] in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match Hashtbl.find_opt tbl r.kind with
      | Some (c, w) -> Hashtbl.replace tbl r.kind (c + r.calls, w +. r.wall_s)
      | None ->
          order := r.kind :: !order;
          Hashtbl.add tbl r.kind (r.calls, r.wall_s))
    (rows t);
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let total_wall t = List.fold_left (fun acc r -> acc +. r.wall_s) 0.0 (rows t)

let pp ppf t =
  let rs = rows t in
  Format.fprintf ppf
    "@[<v>  op  kind              calls   wall(s)     size     width   density";
  List.iter
    (fun r ->
      Format.fprintf ppf "@,%4d  %-16s %6d  %8.4f %8d  %8.4g  %8.3f" r.op_index
        r.kind r.calls r.wall_s r.size r.width r.density)
    rs;
  Format.fprintf ppf "@,      %-16s %6d  %8.4f" "(total)"
    (List.fold_left (fun acc r -> acc + r.calls) 0 rs)
    (total_wall t);
  List.iter
    (fun (k, (c, w)) ->
      Format.fprintf ppf "@,      %-16s %6d  %8.4f" k c w)
    (by_kind t);
  Format.fprintf ppf "@]"

(* Hand-rolled JSON, same house style as the bench snapshots (the repo
   intentionally has no JSON dependency). Floats use %.6g; non-finite
   widths (collapsed bounds) are emitted as null. *)
let json_float b x =
  if Float.is_finite x then Buffer.add_string b (Printf.sprintf "%.6g" x)
  else Buffer.add_string b "null"

let to_json ?model t =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\n";
  (match model with
  | Some m -> Buffer.add_string b (Printf.sprintf "  \"model\": %S,\n" m)
  | None -> ());
  Buffer.add_string b
    (Printf.sprintf "  \"total_wall_s\": %.6g,\n  \"ops\": [\n" (total_wall t));
  let rs = rows t in
  List.iteri
    (fun i r ->
      Buffer.add_string b
        (Printf.sprintf "    {\"op\":%d,\"kind\":%S,\"calls\":%d,\"wall_s\":%.6g,\"size\":%d,\"width\":"
           r.op_index r.kind r.calls r.wall_s r.size);
      json_float b r.width;
      Buffer.add_string b ",\"density\":";
      json_float b r.density;
      Buffer.add_string b (if i = List.length rs - 1 then "}\n" else "},\n"))
    rs;
  Buffer.add_string b "  ],\n  \"kinds\": [\n";
  let ks = by_kind t in
  List.iteri
    (fun i (k, (c, w)) ->
      Buffer.add_string b
        (Printf.sprintf "    {\"kind\":%S,\"calls\":%d,\"wall_s\":%.6g}%s\n" k c w
           (if i = List.length ks - 1 then "" else ",")))
    ks;
  Buffer.add_string b "  ]\n}\n";
  Buffer.contents b

let save_json ?model path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_json ?model t))
