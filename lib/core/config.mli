(** Verifier configuration: the DeepT variants evaluated in the paper.

    - [DeepT-Fast] (Section 4.8, "Fast Bounds") — dual-norm cascade for
      all quadratic terms of the dot product;
    - [DeepT-Precise] — O(E∞²) interval analysis for the ε·ε term;
    - [Combined] (Appendix A.6) — Precise in the last Transformer layer,
      Fast elsewhere. *)

type dot_variant = Fast | Precise | Combined

type dual_order = Linf_first | Lp_first
(** Which operand of the fast dot-product bound has the dual-norm trick
    applied first (Section 6.5). The paper finds [Linf_first] slightly
    better on average. *)

type softmax_form = Stable | Direct
(** [Stable]: 1 / Σ exp(νj − νi) (the paper's choice, Section 5.2).
    [Direct]: exp(νi) · recip(Σ exp(νj)) — what CROWN uses; exposed for
    the ablation. *)

(** {1 Resilience: budgets and fault injection} *)

type fault_action =
  | Inject_nan  (** overwrite one entry of the op's output with NaN *)
  | Inject_inf  (** overwrite one entry of the op's output with +∞ *)
  | Stall of float  (** sleep this many (wall-clock) seconds after the op *)
  | Raise_unbounded
      (** raise {!Zonotope.Unbounded} at the op — simulates a collapsed
          transformer (saturated exponential) *)

type fault_spec = {
  fault_op : int;  (** op index the fault fires after *)
  action : fault_action;
  persist : int;
      (** how many ladder rungs the fault stays active for; {!Engine}
          strips the fault from rung configs once this many attempts have
          been made. [max_int] = the op is permanently broken. *)
}
(** Deterministic fault injection, threaded through {!Propagate.run} so
    every rung of the degradation ladder and every [Unknown] reason can
    be exercised in tests without relying on flaky timing or on finding a
    model that organically overflows. *)

type budget = {
  time_limit_s : float option;
      (** wall-clock deadline for one propagation, checked after every
          op; exceeded → {!Verdict.Abort}[ Timeout] *)
  max_eps : int option;
      (** cap on live ε noise symbols; exceeded →
          {!Verdict.Abort}[ Symbol_budget] *)
}

val no_budget : budget

val fault : ?persist:int -> int -> fault_action -> fault_spec
(** [fault ~persist op action] — [persist] defaults to [max_int]. *)

(** {1 Process isolation: worker-pool policy}

    Policy knobs of the {!Supervisor} worker pool. Unlike {!budget},
    which is enforced {e cooperatively} inside one propagation, these
    limits are enforced from the outside on forked worker processes —
    they hold even when a worker is wedged in a tight loop or dies. *)

type pool = {
  workers : int;  (** forked worker processes (≥ 1) *)
  hard_deadline_s : float option;
      (** per-job wall-clock deadline enforced by the supervisor: on
          overrun the worker gets SIGTERM, then SIGKILL after [grace_s].
          The job is reported as {!Verdict.Worker_killed}. *)
  grace_s : float;  (** SIGTERM → SIGKILL escalation delay *)
  mem_limit_mb : int option;
      (** per-worker major-heap cap. The stdlib [Unix] module exposes no
          [setrlimit], so the cap is enforced by a GC alarm in the worker
          that exits with a dedicated code when the major heap exceeds
          the limit; the supervisor reports the job as
          {!Verdict.Worker_crashed} (reason "oom"). *)
  max_retries : int;
      (** how many times a job whose worker {e crashed} is re-queued
          (deadline kills are deterministic overruns and are not
          retried) *)
  backoff_s : float;
      (** base of the exponential retry backoff: retry [k] of a job is
          nominally delayed by [backoff_s * 2^k], jittered (see
          {!Supervisor.backoff_delay}) so simultaneous worker deaths do
          not restart in lockstep *)
  max_backoff_s : float;
      (** hard ceiling on any single backoff delay, jitter included —
          keeps the exponential from growing past usefulness in
          long-lived pools (the daemon's worker-respawn loop) *)
}

val default_pool : pool
(** One worker, no hard deadline, 1 s grace, no memory cap, one retry,
    50 ms backoff base capped at 5 s. *)

val pool :
  ?workers:int ->
  ?hard_deadline_s:float ->
  ?grace_s:float ->
  ?mem_limit_mb:int ->
  ?max_retries:int ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  unit ->
  pool
(** Validating constructor over {!default_pool}.
    @raise Invalid_argument on non-positive workers/deadline/memory,
    negative grace/retries/backoff, or [max_backoff_s < backoff_s]. *)

(** {1 Radius search: speculative parallel probes}

    Policy for {!Certify.max_radius}'s bracket search. With [probes = 1]
    the search is the classic sequential bisection (bit-identical to
    every committed pin). With [probes = n > 1] each round splits the
    current bracket into [n+1] deterministic subintervals and evaluates
    the [n] interior radii concurrently — see {!Psearch}. *)

type probe_backend =
  | Fork_probes
      (** one forked process per interior radius, reusing the
          {!Supervisor} marshalling plumbing (default; robust to probe
          crashes, no shared state) *)
  | Domain_probes
      (** one thread per probe over the shared {!Tensor.Dpool} — for
          [--jobs 1] runs where forking is undesirable *)
  | Serial_probes
      (** evaluate the grid left-to-right in-process — deterministic
          reference backend, used by tests and as the fallback *)

type search = {
  probes : int;
      (** concurrent interior probes per round (≥ 1); 1 = sequential
          bisection, bit-identical to the pre-search-engine code *)
  rounds : int option;
      (** grid rounds after bracketing; [None] picks the smallest count
          whose final width is at most sequential bisection's *)
  share_prefix : bool;
      (** amortize the affine prefix across probes: propagate it once at
          unit radius and rescale generator coefficients by [r] per
          probe ({!Zonotope.scale_coeffs}). Not bit-identical to
          re-propagation (float rescaling), so tests gate it with a
          tolerance; the [DEEPT_NO_PREFIX_SHARE] env var is the runtime
          escape hatch. Auto-disabled under fault injection. *)
  probe_backend : probe_backend;
}

val default_search : search
(** [probes = 1], automatic rounds, prefix sharing on, fork backend. *)

val search :
  ?probes:int ->
  ?rounds:int ->
  ?share_prefix:bool ->
  ?probe_backend:probe_backend ->
  unit ->
  search
(** Validating constructor over {!default_search}.
    @raise Invalid_argument unless [1 <= probes <= 64] and
    [rounds >= 1] when given. *)

(** {1 Upward refinement: branch-and-bound symbol splitting}

    Policy for {!Brefine}'s branch-and-bound refinement — the ladder's
    {e upward} direction. When a rung fails on precision ([Unknown
    Imprecise]), the refiner ranks input noise symbols by their absolute
    coefficient contribution to the losing logit margin, splits the
    [top_k] strongest symbol ranges in half and re-certifies every
    half-combination. [None] (the default) disables refinement and
    preserves the engine's pre-refinement behavior bit-for-bit. *)

type refine = {
  top_k : int;
      (** symbols split per branch-and-bound node (≥ 1); a node spawns
          [2^top_k] sub-branches (capped by [max_branches]) *)
  max_branches : int;
      (** total branch-propagation budget for one refinement; shared
          between the first split wave and recursive re-splits *)
  depth : int;
      (** maximum nesting of splits: 1 = split once, no recursion on
          still-imprecise branches *)
}

val default_refine : refine
(** [top_k = 2], [max_branches = 8], [depth = 2]. *)

val refine : ?top_k:int -> ?max_branches:int -> ?depth:int -> unit -> refine
(** Validating constructor over {!default_refine}.
    @raise Invalid_argument unless [1 <= top_k <= 6],
    [2 <= max_branches <= 256] and [1 <= depth <= 8]. *)

type t = {
  variant : dot_variant;
  order : dual_order;
  softmax : softmax_form;
  refine_softmax_sum : bool;
      (** apply the softmax-sum zonotope refinement (Section 5.3) *)
  reduction_k : int;
      (** ℓ∞ noise symbols kept by DecorrelateMin_k at each layer input;
          0 disables reduction *)
  budget : budget;  (** resource limits enforced per-op (default: none) *)
  fault : fault_spec option;  (** deterministic fault injection hook *)
  domains : int;
      (** OCaml domains sharding the hot kernels {e inside} one
          propagation (default 1 = serial). Results are bit-identical
          for every value; see {!Tensor.Dpool}. Independent of
          {!pool}.workers, which forks whole processes across inputs. *)
  trace : Interp.sink option;
      (** per-op trace sink fed by the interpreter's event stream
          (default [None] = silent). {!Profile} collectors and the
          [DEEPT_TRACE] stderr dump are both sinks; the env var is now
          only a compatibility shim that installs a stderr sink when no
          explicit one is set. A sink is a closure: leave it [None] in
          configs that cross the {!Supervisor} Marshal boundary. *)
  search : search;
      (** radius-search policy (default {!default_search} = sequential
          bisection). Plain data, safe across the Marshal boundary. *)
  refine : refine option;
      (** branch-and-bound refinement policy for the ladder's upward
          direction (default [None] = refinement off, pre-refinement
          behavior preserved bit-for-bit). Plain data, Marshal-safe. *)
}

val default : t
(** DeepT-Fast with ℓ∞-first dual order, stable softmax, sum refinement
    on, reduction to 128 symbols. *)

val fast : t
val precise : t
(** Like {!default} with the Precise dot product (and a smaller symbol
    budget, mirroring the paper's setup). *)

val combined : t
(** Appendix A.6 variant. *)

val with_budget : ?deadline:float -> ?max_eps:int -> t -> t
(** Replaces the budget (omitted limits are cleared). *)

val with_domains : int -> t -> t
(** Sets {!t.domains}.
    @raise Invalid_argument unless [1 <= n <= 128]. *)

val with_trace : Interp.sink option -> t -> t
(** Sets {!t.trace}. *)

val with_search : search -> t -> t
(** Sets {!t.search}. *)

val with_refine : refine option -> t -> t
(** Sets {!t.refine}. *)

val policy_key : t -> string
(** Canonical serialization of every {e precision-relevant} field of the
    config — variant, dual order, softmax form, sum refinement,
    reduction budget, and the refine policy. Two configs with equal
    [policy_key] produce bit-identical verdicts on the same query, so
    this is the one sanctioned cache-key component for config identity
    (see {!Service.Cache}): new precision-relevant fields must be added
    here, never ad-hoc in a cache. Budgets, fault injection, tracing and
    scheduling knobs are deliberately excluded — they affect {e whether}
    an answer is produced, not which answer. *)

val variant_name : dot_variant -> string
val probe_backend_name : probe_backend -> string
val fault_action_name : fault_action -> string
val pp : Format.formatter -> t -> unit
