(** Zonotope job transport over the {!Tensor.Shm} arena.

    Converts a {!Zonotope.t} into a small marshallable descriptor whose
    large matrices live in a MAP_SHARED arena created before the worker
    pool forked, and back. The descriptor — not the matrices — crosses
    the supervisor's job pipe; the worker reads the arena pages in
    place. Unpacking is a bit-exact copy, so any result computed from
    the unpacked zonotope is bit-identical to one computed from the
    original, regardless of which matrices took the arena path and
    which stayed inline (size threshold, arena exhaustion, or
    [DEEPT_NO_SHM=1]). *)

type arena = Tensor.Shm.t

type zono_desc = {
  p : Lp.t;
  vrows : int;
  vcols : int;
  center : Tensor.Shm.mat_desc;
  phi : Tensor.Shm.mat_desc;
  eps : Tensor.Shm.mat_desc;
  eps_occ : Tensor.Bands.t;
      (** the ε occupancy rides along so the unpacked zonotope keeps its
          sparsity on the worker side *)
}

val inline_zono : Zonotope.t -> zono_desc
(** All three matrices inline — the pure-Marshal transport. *)

val pack_zono : ?arena:arena -> ?threshold:int -> Zonotope.t -> zono_desc
(** Pack for dispatch: matrices of at least [threshold]
    ({!Tensor.Shm.default_threshold}) floats go to the arena, the rest
    (and everything, when [arena] is absent or [DEEPT_NO_SHM=1] is set)
    stay inline. The ε matrix uses the arena's [Banded] encoding when
    its occupancy covers less than the full width — only live columns
    are written and shipped. Arena owner only. *)

val unpack_zono : ?arena:arena -> zono_desc -> Zonotope.t
(** Bit-exact reconstruction (worker side) up to dead-zero signs: a
    [Banded] ε block scatters dead entries as canonical [+0.0] where
    the sender may have carried [-0.0] — invisible to every bound and
    verdict. @raise Invalid_argument on an arena-resident block when no
    [arena] is supplied. *)

val free_zono : arena -> zono_desc -> unit
(** Return the descriptor's arena blocks (owner side, once the job's
    result — or its worker's death — has been collected). *)

val desc_floats : zono_desc -> int
(** Arena floats held by the descriptor (0 when fully inline). *)

val zono_floats : Zonotope.t -> int
(** Total floats of a zonotope's three matrices — what {!pack_zono}
    would need in the worst case; for sizing arenas. *)
