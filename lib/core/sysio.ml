(* Injectable syscall shim — see sysio.mli for the contract.

   Layering: each public wrapper owns the POSIX retry discipline
   (restart EINTR, loop partial writes) and calls a [raw_*] primitive
   underneath. Fault injection happens in the primitives, *below* the
   retry loops, so an injected EINTR storm or short write exercises
   exactly the code that would face the real thing. *)

type op = Write | Send | Fsync | Rename | Truncate | Close

let op_name = function
  | Write -> "write"
  | Send -> "send"
  | Fsync -> "fsync"
  | Rename -> "rename"
  | Truncate -> "truncate"
  | Close -> "close"

let op_of_name = function
  | "write" -> Some Write
  | "send" -> Some Send
  | "fsync" -> Some Fsync
  | "rename" -> Some Rename
  | "truncate" -> Some Truncate
  | "close" -> Some Close
  | _ -> None

type action = Err of Unix.error | Short of int | Eintr of int | Torn of int | Crash

type plan = {
  nth : int;
  op : op option;
  site : string option;
  action : action;
  persist : bool;
}

let plan ?op ?site ?(persist = false) ~nth action =
  if nth < 0 then invalid_arg "Sysio.plan: nth < 0";
  (match action with
  | Short k when k < 1 -> invalid_arg "Sysio.plan: Short k < 1"
  | Eintr n when n < 1 -> invalid_arg "Sysio.plan: Eintr n < 1"
  | Torn k when k < 0 -> invalid_arg "Sysio.plan: Torn k < 0"
  | _ -> ());
  (* A persistent EINTR storm would livelock the restart loops, and a
     persistent crash is indistinguishable from a one-shot one. *)
  (match action with
  | (Eintr _ | Crash | Torn _) when persist ->
      invalid_arg "Sysio.plan: persist only composes with Err and Short"
  | _ -> ());
  { nth; op; site; action; persist }

(* The errno names the drills use; anything else round-trips through
   Unix.EUNKNOWNERR and is not accepted by the parser. *)
let errno_names =
  [
    ("enospc", Unix.ENOSPC);
    ("eio", Unix.EIO);
    ("epipe", Unix.EPIPE);
    ("econnreset", Unix.ECONNRESET);
    ("eacces", Unix.EACCES);
  ]

let action_to_string = function
  | Err e -> (
      match List.find_opt (fun (_, e') -> e' = e) errno_names with
      | Some (n, _) -> n
      | None -> (
          match e with
          | Unix.EUNKNOWNERR n -> "errno:" ^ string_of_int n
          | _ -> "errno:?"))
  | Short k -> Printf.sprintf "short:%d" k
  | Eintr n -> Printf.sprintf "eintr:%d" n
  | Torn k -> Printf.sprintf "torn:%d" k
  | Crash -> "crash"

let plan_to_string p =
  String.concat ""
    [
      action_to_string p.action;
      Printf.sprintf "@%d" p.nth;
      (match p.op with Some o -> ":op=" ^ op_name o | None -> "");
      (match p.site with Some s -> ":site=" ^ s | None -> "");
      (if p.persist then ":persist" else "");
    ]

let plan_of_string s =
  let ( let* ) = Result.bind in
  let* action_s, rest =
    match String.index_opt s '@' with
    | Some i ->
        Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    | None -> Error (Printf.sprintf "chaos plan %S: missing '@NTH'" s)
  in
  let* action =
    let int_suffix prefix k =
      let pl = String.length prefix in
      if
        String.length action_s > pl + 1
        && String.sub action_s 0 (pl + 1) = prefix ^ ":"
      then
        match
          int_of_string_opt
            (String.sub action_s (pl + 1) (String.length action_s - pl - 1))
        with
        | Some n -> Some (k n)
        | None -> None
      else None
    in
    match
      List.filter_map
        (fun x -> x)
        [
          (if action_s = "crash" then Some Crash else None);
          int_suffix "torn" (fun k -> Torn k);
          int_suffix "short" (fun k -> Short k);
          int_suffix "eintr" (fun k -> Eintr k);
          Option.map
            (fun (_, e) -> Err e)
            (List.find_opt (fun (n, _) -> n = action_s) errno_names);
        ]
    with
    | [ a ] -> Ok a
    | _ ->
        Error
          (Printf.sprintf
             "chaos plan: bad action %S (use crash, torn:K, short:K, eintr:N \
              or an errno: %s)"
             action_s
             (String.concat ", " (List.map fst errno_names)))
  in
  let parts = String.split_on_char ':' rest in
  let* nth =
    match parts with
    | n :: _ -> (
        match int_of_string_opt n with
        | Some n when n >= 0 -> Ok n
        | _ -> Error (Printf.sprintf "chaos plan: bad op index %S" n))
    | [] -> Error "chaos plan: missing op index"
  in
  let* op, site, persist =
    List.fold_left
      (fun acc part ->
        let* (op, site, persist) = acc in
        if part = "persist" then Ok (op, site, true)
        else
          match String.index_opt part '=' with
          | Some i -> (
              let k = String.sub part 0 i in
              let v = String.sub part (i + 1) (String.length part - i - 1) in
              match k with
              | "op" -> (
                  match op_of_name v with
                  | Some o -> Ok (Some o, site, persist)
                  | None -> Error (Printf.sprintf "chaos plan: bad op %S" v))
              | "site" when v <> "" -> Ok (op, Some v, persist)
              | "site" -> Error "chaos plan: empty site filter"
              | _ -> Error (Printf.sprintf "chaos plan: unknown filter %S" k))
          | None -> Error (Printf.sprintf "chaos plan: unknown part %S" part))
      (Ok (None, None, false))
      (List.tl parts)
  in
  match plan ?op ?site ~persist ~nth action with
  | p -> Ok p
  | exception Invalid_argument m -> Error m

(* ---------------- state ---------------- *)

type event = { index : int; eop : op; esite : string; len : int }

type armed_state = {
  aplan : plan option;
  recorder : (event -> unit) option;
  mutable count : int;
  mutable fired : bool;  (* a one-shot plan already went off *)
  mutable storm : (string * int) ref option;  (* EINTR storm: site, left *)
}

type mode = Off | On of armed_state

let state = ref Off

let arm p =
  state :=
    On { aplan = Some p; recorder = None; count = 0; fired = false; storm = None }

let record f =
  state :=
    On { aplan = None; recorder = Some f; count = 0; fired = false; storm = None }

let disarm () = state := Off
let armed () = match !state with On _ -> true | Off -> false
let ops () = match !state with On a -> a.count | Off -> 0

let contains ~sub s =
  let ls = String.length sub and l = String.length s in
  let rec go i = i + ls <= l && (String.sub s i ls = sub || go (i + 1)) in
  go 0

(* Abrupt process death, as a kill signal would leave it: no at_exit,
   no channel flushes. The return type lets [die] end any branch. *)
let die () : 'a =
  Unix.kill (Unix.getpid ()) Sys.sigkill;
  assert false

exception Injected_eintr

(* Count one operation; decide what the primitive must do. Returns the
   byte budget for writes: [None] = full, [Some k] = transfer at most k
   then (for Torn) die after the transfer. *)
type verdict = Proceed | Cap of int | Cap_then_die of int

let observe eop ~site ~len =
  match !state with
  | Off -> Proceed
  | On a -> (
      (* an in-progress EINTR storm swallows calls at its site without
         consuming plan matches *)
      (match a.storm with
      | Some s when snd !s > 0 && contains ~sub:(fst !s) site ->
          s := (fst !s, snd !s - 1);
          raise Injected_eintr
      | _ -> ());
      let matches_filters p =
        (match p.op with Some o -> o = eop | None -> true)
        && match p.site with Some sub -> contains ~sub site | None -> true
      in
      match a.aplan with
      | None ->
          let i = a.count in
          a.count <- a.count + 1;
          (match a.recorder with
          | Some f -> f { index = i; eop; esite = site; len }
          | None -> ());
          Proceed
      | Some p when not (matches_filters p) -> Proceed
      | Some p ->
          let i = a.count in
          a.count <- a.count + 1;
          let fire = if p.persist then i >= p.nth else i = p.nth && not a.fired in
          if not fire then Proceed
          else begin
            a.fired <- true;
            match p.action with
            | Crash -> die ()
            | Err e -> raise (Unix.Unix_error (e, op_name eop, site))
            | Eintr n ->
                a.storm <- Some (ref (site, n - 1));
                raise Injected_eintr
            | Short k -> if eop = Write || eop = Send then Cap k else Proceed
            | Torn k ->
                if eop = Write || eop = Send then Cap_then_die k else die ()
          end)

(* ---------------- primitives ---------------- *)

(* One counted write attempt; may transfer fewer bytes than asked. *)
let raw_write eop ~site fd buf pos len =
  match observe eop ~site ~len with
  | Proceed -> Unix.write fd buf pos len
  | Cap k -> Unix.write fd buf pos (min k len)
  | Cap_then_die k ->
      (* The prefix really lands (a killed process's page-cache writes
         survive it); the suffix never exists — the torn-append shape. *)
      if min k len > 0 then ignore (Unix.write fd buf pos (min k len));
      die ()

let raw_plain eop ~site f =
  match observe eop ~site ~len:0 with Proceed | Cap _ | Cap_then_die _ -> f ()

(* ---------------- wrappers ---------------- *)

let rec write_all_op eop ~site fd buf pos len =
  if len > 0 then
    match raw_write eop ~site fd buf pos len with
    | n -> write_all_op eop ~site fd buf (pos + n) (len - n)
    | exception Injected_eintr -> write_all_op eop ~site fd buf pos len
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        write_all_op eop ~site fd buf pos len

let write_all ~site fd buf pos len = write_all_op Write ~site fd buf pos len

let write_string ~site fd s =
  write_all_op Write ~site fd (Bytes.unsafe_of_string s) 0 (String.length s)

let send_string ~site fd s =
  write_all_op Send ~site fd (Bytes.unsafe_of_string s) 0 (String.length s)

let rec single_write ~site fd s pos len =
  match raw_write Send ~site fd (Bytes.unsafe_of_string s) pos len with
  | n -> n
  | exception Injected_eintr -> single_write ~site fd s pos len
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      single_write ~site fd s pos len

let rec retry_plain eop ~site f =
  match raw_plain eop ~site f with
  | x -> x
  | exception Injected_eintr -> retry_plain eop ~site f
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> retry_plain eop ~site f

let fsync ~site fd = retry_plain Fsync ~site (fun () -> Unix.fsync fd)
let rename ~site src dst = retry_plain Rename ~site (fun () -> Unix.rename src dst)
let ftruncate ~site fd n = retry_plain Truncate ~site (fun () -> Unix.ftruncate fd n)
let close ~site fd = retry_plain Close ~site (fun () -> Unix.close fd)
