open Tensor
open Interval

type coeffs = { lambda : float; mu : float; beta : float }

exception Unbounded = Zonotope.Unbounded

let check_finite ~l ~u = if not (Float.is_finite l && Float.is_finite u) then raise Unbounded

let point_coeffs y = { lambda = 0.0; mu = y; beta = 0.0 }
let tiny = 1e-12

let interval_coeffs fl fu =
  (* Sound fallback: ignore the input correlation entirely. Used when the
     range is too narrow (or too extreme) for the tangent-chord formulas to
     be numerically trustworthy. *)
  { lambda = 0.0; mu = 0.5 *. (fu +. fl); beta = 0.5 *. (fu -. fl) }

let narrow = 1e-9


let relu_coeffs ~l ~u =
  check_finite ~l ~u;
  if u <= 0.0 then point_coeffs 0.0
  else if l >= 0.0 then { lambda = 1.0; mu = 0.0; beta = 0.0 }
  else begin
    let lambda = u /. (u -. l) in
    let m = 0.5 *. Float.max (-.lambda *. l) ((1.0 -. lambda) *. u) in
    { lambda; mu = m; beta = m }
  end

let tanh_coeffs ~l ~u =
  check_finite ~l ~u;
  if u -. l < tiny then point_coeffs (tanh l)
  else if u -. l < narrow then interval_coeffs (tanh l) (tanh u)
  else begin
    let tl = tanh l and tu = tanh u in
    let lambda = Float.min (1.0 -. (tl *. tl)) (1.0 -. (tu *. tu)) in
    let mu = 0.5 *. (tu +. tl -. (lambda *. (u +. l))) in
    let beta = 0.5 *. (tu -. tl -. (lambda *. (u -. l))) in
    { lambda; mu; beta }
  end

(* Small constant from the paper keeping the relaxations strictly positive. *)
let pos_eps = 0.01

let exp_coeffs ~l ~u =
  check_finite ~l ~u;
  if u -. l < tiny then point_coeffs (exp l)
  else if u -. l < narrow || exp u -. exp l <= 0.0 then
    interval_coeffs (exp l) (exp u)
  else if u > 100.0 then begin
    (* Chord slope overflows double precision long before this point; the
       interval relaxation stays sound (and certification at such ranges
       fails anyway). *)
    let el = exp l and eu = exp u in
    { lambda = 0.0; mu = 0.5 *. (eu +. el); beta = 0.5 *. (eu -. el) }
  end
  else begin
    let el = exp l and eu = exp u in
    let t_crit = log ((eu -. el) /. (u -. l)) in
    let t_opt = Float.min t_crit (l +. 1.0 -. pos_eps) in
    let lambda = exp t_opt in
    let mu = 0.5 *. (lambda -. (lambda *. t_opt) +. eu -. (lambda *. u)) in
    let beta = 0.5 *. ((lambda *. t_opt) -. lambda +. eu -. (lambda *. u)) in
    { lambda; mu; beta }
  end

let recip_coeffs ?(floor = 0.0) ~l ~u () =
  check_finite ~l ~u;
  let l = Float.max l floor in
  let u = Float.max u l in
  if l <= 0.0 then raise Unbounded;
  if u -. l < tiny then point_coeffs (1.0 /. l)
  else if u -. l < narrow then interval_coeffs (1.0 /. u) (1.0 /. l)
  else if l > 1e15 then
    (* Saturated softmax denominators reach astronomic values; the output
       is then [1/u, 1/l], essentially a point near 0, and the tangent
       formulas would overflow. *)
    interval_coeffs (1.0 /. u) (1.0 /. l)
  else begin
    (* The tangent point must satisfy t >= sqrt(u l) for the chord-side
       bound to hold at the right endpoint, and t > u/2 for the tangent
       value at u to stay positive (required by the paper's construction;
       the published formula reads "min", but only "max" delivers the
       positivity the surrounding text claims). sqrt u * sqrt l avoids the
       overflow of u * l for large denominators. *)
    let t_crit = sqrt u *. sqrt l in
    let t_opt = Float.max t_crit ((0.5 *. u) *. (1.0 +. pos_eps)) in
    let lambda = -1.0 /. (t_opt *. t_opt) in
    let mu =
      0.5 *. ((1.0 /. t_opt) -. (lambda *. t_opt) +. (1.0 /. l) -. (lambda *. l))
    in
    let beta =
      0.5 *. ((lambda *. t_opt) -. (1.0 /. t_opt) +. (1.0 /. l) -. (lambda *. l))
    in
    { lambda; mu; beta }
  end

let sqrt_coeffs ~l ~u =
  check_finite ~l ~u;
  let l = Float.max 0.0 l in
  let u = Float.max u l in
  if u -. l < tiny then point_coeffs (sqrt l)
  else if u -. l < narrow then interval_coeffs (sqrt l) (sqrt u)
  else begin
    (* Chord slope; the maximal gap to the function is at the tangency
       point xs with df(xs) = lambda, i.e. xs = 1/(4 lambda^2). *)
    let sl = sqrt l and su = sqrt u in
    let lambda = (su -. sl) /. (u -. l) in
    let xstar = 1.0 /. (4.0 *. lambda *. lambda) in
    let gap_hi = sqrt xstar -. (lambda *. xstar) in
    let gap_lo = sl -. (lambda *. l) in
    let mu = 0.5 *. (gap_hi +. gap_lo) in
    let beta = 0.5 *. (gap_hi -. gap_lo) in
    { lambda; mu; beta }
  end

let eval c ~l ~u x =
  ignore l;
  ignore u;
  let mid = (c.lambda *. x) +. c.mu in
  Itv.make (mid -. c.beta) (mid +. c.beta)

let apply ctx (z : Zonotope.t) rule =
  (* Elementwise transformers run over every variable of wide coefficient
     matrices; poll the cooperative deadline so a single huge layer cannot
     overrun the budget between Propagate's per-op checkpoints. *)
  Zonotope.check_deadline ctx;
  let pool = Zonotope.ctx_pool ctx in
  let n = Zonotope.num_vars z in
  let b = Zonotope.bounds ?pool z in
  let cs =
    Array.init n (fun v ->
        let l = b.Imat.lo.Mat.data.(v) and u = b.Imat.hi.Mat.data.(v) in
        rule ~l ~u)
  in
  (* Count fresh symbols and allocate them contiguously. *)
  let fresh = Array.make n (-1) in
  let n_new = ref 0 in
  Array.iteri
    (fun v c ->
      if c.beta > 0.0 then begin
        fresh.(v) <- !n_new;
        incr n_new
      end)
    cs;
  (* Pad to the context's current width so the new columns sit at globally
     fresh symbol ids. *)
  let z = Zonotope.pad_eps z (Zonotope.ctx_symbols ctx) in
  let base = Zonotope.alloc_eps ctx !n_new in
  let old_w = Zonotope.num_eps z in
  let w = base + !n_new in
  assert (old_w = base);
  let center = Mat.copy z.Zonotope.center in
  let phi = Mat.copy z.Zonotope.phi in
  let eps = Mat.create n w in
  let ep = Zonotope.num_phi z in
  (* A zero slope must annihilate the input coefficients outright: some of
     them can be infinite (an overflowed dot-product remainder), and
     0 * inf would inject NaN instead of the intended constant form. *)
  let scaled lam x = if lam = 0.0 then 0.0 else lam *. x in
  (* A non-finite slope would smear NaN into columns the occupancy
     declares dead (lam * ±0.0); only an all-finite lambda vector may
     skip dead columns or keep the band structure. *)
  let lambdas_finite = Array.for_all (fun c -> Float.is_finite c.lambda) cs in
  let skip_dead = lambdas_finite && not (Bands.is_full z.Zonotope.eps_occ) in
  (* Each variable touches only its own coefficient rows, so the scaling
     loop shards over the pool with bit-identical results; the deadline
     is polled once per chunk. *)
  let var_range ~start ~stop =
    Zonotope.check_deadline ctx;
    for v = start to stop - 1 do
      let c = cs.(v) in
      center.Mat.data.(v) <- scaled c.lambda center.Mat.data.(v) +. c.mu;
      for j = 0 to ep - 1 do
        phi.Mat.data.((v * ep) + j) <- scaled c.lambda phi.Mat.data.((v * ep) + j)
      done;
      if skip_dead then
        List.iter
          (fun (jlo, jhi) ->
            for j = jlo to jhi - 1 do
              eps.Mat.data.((v * w) + j) <-
                scaled c.lambda z.Zonotope.eps.Mat.data.((v * old_w) + j)
            done)
          (Bands.row_intervals ~lo:v ~hi:(v + 1) ~cols:old_w
             z.Zonotope.eps_occ)
      else
        for j = 0 to old_w - 1 do
          eps.Mat.data.((v * w) + j) <-
            scaled c.lambda z.Zonotope.eps.Mat.data.((v * old_w) + j)
        done;
      if fresh.(v) >= 0 then eps.Mat.data.((v * w) + base + fresh.(v)) <- c.beta
    done
  in
  (match pool with
  | Some p when Dpool.size p > 1 && n * (ep + w + 1) >= 32_768 ->
      Dpool.run_ranges p ~n ~chunk:64 var_range
  | _ -> var_range ~start:0 ~stop:n);
  let occ =
    if lambdas_finite then
      Bands.union z.Zonotope.eps_occ
        (Zonotope.fresh_bands ~fresh ~base ~rows:z.Zonotope.vrows
           ~per_row:z.Zonotope.vcols)
    else Bands.full
  in
  Zonotope.make ~p:z.Zonotope.p ~center ~phi ~eps
  |> Zonotope.with_eps_occ occ

let relu ctx z = apply ctx z relu_coeffs
let sqrt_ ctx z = apply ctx z sqrt_coeffs
let tanh_ ctx z = apply ctx z tanh_coeffs
let exp_ ctx z = apply ctx z exp_coeffs
let recip ?floor ctx z = apply ctx z (fun ~l ~u -> recip_coeffs ?floor ~l ~u ())
