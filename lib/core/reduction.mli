(** Noise symbol reduction — DecorrelateMin_k (Section 5.1).

    Non-affine transformers keep allocating fresh ε symbols; without
    intervention the coefficient matrices grow with network depth. The
    paper bounds memory by keeping, at every Transformer layer input, only
    the [k] ε symbols with the largest total coefficient mass
    [m_j = Σᵢ |B_{ij}|] and folding all eliminated symbols into one fresh
    independent symbol per variable (the row-wise absolute sum of the
    dropped coefficients).

    This renumbers the ε symbol space, so it is only sound when a single
    zonotope is alive — exactly the situation at a layer input, before
    the residual split (which is where the paper applies it). *)

val decorrelate_min_k : Zonotope.ctx -> Zonotope.t -> int -> Zonotope.t
(** [decorrelate_min_k ctx z k] reduces [z] to at most
    [k + num_vars z] ε symbols and resets the context's symbol counter
    to the new width. [k = 0] folds every symbol (pure interval
    decorrelation); a negative [k] is an error. The O(nv·w) score and
    fold scans are sharded over the context's domain pool
    ({!Zonotope.ctx_pool}) when one is set — bit-identical for every
    pool size (columns accumulate in serial order; chunks write disjoint
    slots). *)

val scores : ?pool:Tensor.Dpool.t -> Zonotope.t -> float array
(** The heuristic importance score [m_j] of each ε symbol. [pool] shards
    the scan over symbol columns (deterministic: each column accumulates
    in the same order as the serial scan). *)

val top_k_indices : float array -> int -> int array
(** [top_k_indices s k] returns the indices of the [k] largest entries of
    [s] (ties broken towards the smaller index), sorted ascending. Runs in
    O(|s| log k) via partial heap selection; exposed so tests can check it
    against the full-sort reference. [k <= 0] returns the empty array,
    [k >= length s] every index. *)
