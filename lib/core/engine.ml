open Tensor

type rung =
  | Abstract of { rname : string; cfg : Config.t }
  | Box
  | Refine of { rname : string; cfg : Config.t }

type direction = Down | Up

type attempt = { rung_name : string; verdict : Verdict.t; direction : direction }

type outcome = {
  verdict : Verdict.t;
  rung_name : string;
  attempts : attempt list;
}

type ladder = { down : rung list; up : rung list }

let rung_name = function
  | Abstract { rname; _ } -> rname
  | Box -> "interval"
  | Refine { rname; _ } -> rname

let ladder ?(up = []) down =
  if down = [] then invalid_arg "Engine.ladder: empty down walk";
  { down; up }

let default_ladder (cfg : Config.t) =
  let base = Abstract { rname = Config.variant_name cfg.Config.variant; cfg } in
  let fast =
    if cfg.Config.variant = Config.Fast then []
    else
      [ Abstract { rname = "fast"; cfg = { cfg with Config.variant = Config.Fast } } ]
  in
  let small_k =
    if cfg.Config.reduction_k > 0 then max 8 (cfg.Config.reduction_k / 4) else 32
  in
  let reduced =
    if cfg.Config.reduction_k = 0 || small_k < cfg.Config.reduction_k then
      [
        Abstract
          {
            rname = Printf.sprintf "fast-k%d" small_k;
            cfg = { cfg with Config.variant = Config.Fast; reduction_k = small_k };
          };
      ]
    else []
  in
  (base :: fast) @ reduced @ [ Box ]

(* The upward walk: one branch-and-bound refinement rung, present only
   when the config opts into refinement — with [refine = None] the
   ladder is exactly the pre-refinement one-directional walk,
   bit-for-bit. *)
let refine_rungs (cfg : Config.t) =
  match cfg.Config.refine with
  | None -> []
  | Some _ -> [ Refine { rname = "refine"; cfg } ]

let ladder_of cfg = { down = default_ladder cfg; up = refine_rungs cfg }

(* The fault stays active for [persist] ladder attempts, then the rung
   configs run clean — this is what lets tests exercise "rung N faults,
   rung N+1 rescues" deterministically. *)
let fault_for attempt_idx = function
  | Some (f : Config.fault_spec) when attempt_idx < f.Config.persist -> Some f
  | _ -> None

(* ---------------- concrete falsification ---------------- *)

let falsify ~samples program (region : Zonotope.t) ~true_class =
  let bad x =
    match Nn.Forward.predict program x with
    | c -> c <> true_class
    | exception _ -> false
  in
  if bad region.Zonotope.center then true
  else begin
    let rng = Rng.create 0x7a11 in
    let found = ref false in
    (try
       for _ = 1 to samples do
         if (not !found) && bad (Zonotope.sample rng region) then found := true
       done
     with _ -> ());
    !found
  end

(* ---------------- the interval box rung ---------------- *)

(* Cheapest sound fallback: concretize the region to its interval hull and
   run IBP. Honors the same budget/fault discipline as the zonotope rungs
   so the whole ladder can be driven to any Unknown reason in tests.

   The interval walk runs on the shared interpreter with the deadline
   armed, so since PR 4 this rung is cooperatively preemptible: a slow
   interval propagation aborts mid-walk with Verdict.Abort Timeout
   (caught by the ladder and recorded against the "interval" rung)
   instead of only being noticed after the fact. The post-hoc timeout
   check is kept for overruns inside the final ops. The poison scan
   stays off — interval bounds routinely pass through infinities (e.g.
   saturated exponentials) and still concretize to a usable margin, and
   poisoned results are already mapped to Unknown below. *)
let run_box ~fault ~(budget : Config.budget) program region ~true_class =
  let t0 = Unix.gettimeofday () in
  let checks =
    {
      Interp.no_checks with
      Interp.deadline =
        Option.map (fun l -> t0 +. l) budget.Config.time_limit_s;
      abort = Propagate.abort_of;
    }
  in
  (match fault with
  | Some { Config.action = Config.Stall s; _ } -> if s > 0.0 then Unix.sleepf s
  | _ -> ());
  match fault with
  | Some { Config.action = Config.Raise_unbounded; _ } ->
      Verdict.Unknown Verdict.Unbounded
  | _ -> (
      match Zonotope.bounds region with
      | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Numerical_fault
      | b -> (
          match Interval.Ibp.margin ~checks program b ~true_class with
          | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
          | m -> (
              let timed_out =
                match budget.Config.time_limit_s with
                | Some limit -> Unix.gettimeofday () -. t0 > limit
                | None -> false
              in
              if timed_out then Verdict.Unknown Verdict.Timeout
              else
                match fault with
                | Some
                    { Config.action = Config.Inject_nan | Config.Inject_inf; _ }
                  ->
                    (* An injected poison is what this attempt actually
                       dies with: both poisons read as Numerical_fault,
                       matching the zonotope rungs' poison scan.
                       (Inject_inf used to be funneled through
                       [m = -inf] and mislabeled Unbounded, so a ladder
                       exhausted under a persistent inf fault recorded
                       the wrong reason on its interval attempt.) *)
                    Verdict.Unknown Verdict.Numerical_fault
                | _ ->
                    if Float.is_nan m then
                      Verdict.Unknown Verdict.Numerical_fault
                    else if m = neg_infinity then
                      Verdict.Unknown Verdict.Unbounded
                    else if m > 0.0 then Verdict.Certified
                    else Verdict.Unknown Verdict.Imprecise)))

(* ---------------- the ladder ---------------- *)

let run_rung attempt_idx (base_cfg : Config.t) ?prefix program region ~true_class
    = function
  | Abstract { cfg; _ } ->
      let cfg = { cfg with Config.fault = fault_for attempt_idx cfg.Config.fault } in
      Certify.certify_v ?prefix cfg program region ~true_class
  | Box ->
      run_box
        ~fault:(fault_for attempt_idx base_cfg.Config.fault)
        ~budget:base_cfg.Config.budget program region ~true_class
  | Refine { cfg; _ } ->
      (* Branch regions differ from the input region, so the shared
         prefix does not apply — each branch re-propagates in full. *)
      let cfg = { cfg with Config.fault = fault_for attempt_idx cfg.Config.fault } in
      (Brefine.certify_v cfg program region ~true_class).Brefine.verdict

(* The leading affine ops (ViT patch embedding: Linear + Positional) are
   deterministic, config-independent exact maps — propagate them once and
   let every Abstract rung resume from the shared values instead of
   re-propagating from the program input. Skipped when a fault is
   injected (the fault must fire on each rung, at its op, under that
   rung's config) and abandoned on any prefix failure, in which case the
   rungs fall back to full runs and abort individually exactly as they
   did before the hoist. *)
let shared_prefix (cfg : Config.t) program region =
  match cfg.Config.fault with
  | Some _ -> None
  | None -> (
      match Propagate.affine_prefix_len program with
      | 0 -> None
      | len -> (
          match Propagate.run_prefix cfg program region ~len with
          | vals -> Some (vals, len)
          | exception _ -> None))

let certify ?ladder:l ?(falsify_samples = 8) (cfg : Config.t) program region
    ~true_class =
  let l =
    match l with
    | Some { down = []; _ } -> invalid_arg "Engine.certify: empty ladder"
    | Some l -> l
    | None -> ladder_of cfg
  in
  if falsify_samples > 0 && falsify ~samples:falsify_samples program region ~true_class
  then begin
    let a = { rung_name = "concrete"; verdict = Verdict.Falsified; direction = Down } in
    { verdict = Verdict.Falsified; rung_name = "concrete"; attempts = [ a ] }
  end
  else begin
    let prefix = shared_prefix cfg program region in
    let attempts = ref [] in
    let run idx rung =
      match run_rung idx cfg ?prefix program region ~true_class rung with
      | v -> v
      | exception Verdict.Abort r -> Verdict.Unknown r
      | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
    in
    let record rung direction v =
      attempts := { rung_name = rung_name rung; verdict = v; direction } :: !attempts
    in
    let final v rung =
      { verdict = v; rung_name = rung_name rung; attempts = List.rev !attempts }
    in
    (* Upward walk: refine-and-retry rungs, entered only when the
       requested rung failed cleanly on precision. A decisive answer
       (Certified — refinement cannot falsify) ends the walk; anything
       else falls through to the next up rung, and the last attempt's
       verdict stands when the walk is exhausted. The attempt index
       keeps counting so a fault spec's [persist] spans both
       directions. *)
    let rec go_up idx = function
      | [] -> assert false
      | rung :: rest ->
          let v = run idx rung in
          record rung Up v;
          if v = Verdict.Certified || v = Verdict.Falsified || rest = [] then
            final v rung
          else go_up (idx + 1) rest
    in
    (* Downward walk: the pre-refinement degradation ladder, unchanged.
       The up walk fires only off the *first* rung — the configuration
       the caller asked for — and only on Unknown Imprecise: cheaper
       rungs are coarser, so refining one of them when the requested
       rung already failed on precision could not prove anything the
       requested rung's refinement would not. *)
    let rec go_down idx = function
      | [] -> assert false
      | rung :: rest ->
          let v = run idx rung in
          record rung Down v;
          if idx = 0 && v = Verdict.Unknown Verdict.Imprecise && l.up <> []
          then go_up (idx + 1) l.up
          else if Verdict.is_fault v && rest <> [] then go_down (idx + 1) rest
          else final v rung
    in
    go_down 0 l.down
  end

let pp_outcome ppf o =
  Format.fprintf ppf "%s@%s" (Verdict.to_string o.verdict) o.rung_name;
  match o.attempts with
  | [] | [ _ ] -> ()
  | att ->
      Format.fprintf ppf " (ladder:";
      List.iter
        (fun (a : attempt) ->
          Format.fprintf ppf " %s=%s" a.rung_name (Verdict.to_string a.verdict))
        att;
      Format.fprintf ppf ")"
