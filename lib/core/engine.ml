open Tensor

type rung = Abstract of { rname : string; cfg : Config.t } | Box

type attempt = { rung_name : string; verdict : Verdict.t }

type outcome = {
  verdict : Verdict.t;
  rung_name : string;
  attempts : attempt list;
}

let rung_name = function Abstract { rname; _ } -> rname | Box -> "interval"

let default_ladder (cfg : Config.t) =
  let base = Abstract { rname = Config.variant_name cfg.Config.variant; cfg } in
  let fast =
    if cfg.Config.variant = Config.Fast then []
    else
      [ Abstract { rname = "fast"; cfg = { cfg with Config.variant = Config.Fast } } ]
  in
  let small_k =
    if cfg.Config.reduction_k > 0 then max 8 (cfg.Config.reduction_k / 4) else 32
  in
  let reduced =
    if cfg.Config.reduction_k = 0 || small_k < cfg.Config.reduction_k then
      [
        Abstract
          {
            rname = Printf.sprintf "fast-k%d" small_k;
            cfg = { cfg with Config.variant = Config.Fast; reduction_k = small_k };
          };
      ]
    else []
  in
  (base :: fast) @ reduced @ [ Box ]

(* The fault stays active for [persist] ladder attempts, then the rung
   configs run clean — this is what lets tests exercise "rung N faults,
   rung N+1 rescues" deterministically. *)
let fault_for attempt_idx = function
  | Some (f : Config.fault_spec) when attempt_idx < f.Config.persist -> Some f
  | _ -> None

(* ---------------- concrete falsification ---------------- *)

let falsify ~samples program (region : Zonotope.t) ~true_class =
  let bad x =
    match Nn.Forward.predict program x with
    | c -> c <> true_class
    | exception _ -> false
  in
  if bad region.Zonotope.center then true
  else begin
    let rng = Rng.create 0x7a11 in
    let found = ref false in
    (try
       for _ = 1 to samples do
         if (not !found) && bad (Zonotope.sample rng region) then found := true
       done
     with _ -> ());
    !found
  end

(* ---------------- the interval box rung ---------------- *)

(* Cheapest sound fallback: concretize the region to its interval hull and
   run IBP. Honors the same budget/fault discipline as the zonotope rungs
   so the whole ladder can be driven to any Unknown reason in tests.

   The interval walk runs on the shared interpreter with the deadline
   armed, so since PR 4 this rung is cooperatively preemptible: a slow
   interval propagation aborts mid-walk with Verdict.Abort Timeout
   (caught by the ladder and recorded against the "interval" rung)
   instead of only being noticed after the fact. The post-hoc timeout
   check is kept for overruns inside the final ops. The poison scan
   stays off — interval bounds routinely pass through infinities (e.g.
   saturated exponentials) and still concretize to a usable margin, and
   poisoned results are already mapped to Unknown below. *)
let run_box ~fault ~(budget : Config.budget) program region ~true_class =
  let t0 = Unix.gettimeofday () in
  let checks =
    {
      Interp.no_checks with
      Interp.deadline =
        Option.map (fun l -> t0 +. l) budget.Config.time_limit_s;
      abort = Propagate.abort_of;
    }
  in
  (match fault with
  | Some { Config.action = Config.Stall s; _ } -> if s > 0.0 then Unix.sleepf s
  | _ -> ());
  match fault with
  | Some { Config.action = Config.Raise_unbounded; _ } ->
      Verdict.Unknown Verdict.Unbounded
  | _ -> (
      match Zonotope.bounds region with
      | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Numerical_fault
      | b -> (
          match Interval.Ibp.margin ~checks program b ~true_class with
          | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
          | m ->
              let m =
                match fault with
                | Some { Config.action = Config.Inject_nan; _ } -> Float.nan
                | Some { Config.action = Config.Inject_inf; _ } -> neg_infinity
                | _ -> m
              in
              let timed_out =
                match budget.Config.time_limit_s with
                | Some limit -> Unix.gettimeofday () -. t0 > limit
                | None -> false
              in
              if timed_out then Verdict.Unknown Verdict.Timeout
              else if Float.is_nan m then Verdict.Unknown Verdict.Numerical_fault
              else if m = neg_infinity then Verdict.Unknown Verdict.Unbounded
              else if m > 0.0 then Verdict.Certified
              else Verdict.Unknown Verdict.Imprecise))

(* ---------------- the ladder ---------------- *)

let run_rung attempt_idx (base_cfg : Config.t) ?prefix program region ~true_class
    = function
  | Abstract { cfg; _ } ->
      let cfg = { cfg with Config.fault = fault_for attempt_idx cfg.Config.fault } in
      Certify.certify_v ?prefix cfg program region ~true_class
  | Box ->
      run_box
        ~fault:(fault_for attempt_idx base_cfg.Config.fault)
        ~budget:base_cfg.Config.budget program region ~true_class

(* The leading affine ops (ViT patch embedding: Linear + Positional) are
   deterministic, config-independent exact maps — propagate them once and
   let every Abstract rung resume from the shared values instead of
   re-propagating from the program input. Skipped when a fault is
   injected (the fault must fire on each rung, at its op, under that
   rung's config) and abandoned on any prefix failure, in which case the
   rungs fall back to full runs and abort individually exactly as they
   did before the hoist. *)
let shared_prefix (cfg : Config.t) program region =
  match cfg.Config.fault with
  | Some _ -> None
  | None -> (
      match Propagate.affine_prefix_len program with
      | 0 -> None
      | len -> (
          match Propagate.run_prefix cfg program region ~len with
          | vals -> Some (vals, len)
          | exception _ -> None))

let certify ?ladder ?(falsify_samples = 8) (cfg : Config.t) program region
    ~true_class =
  let rungs = match ladder with Some [] -> invalid_arg "Engine.certify: empty ladder" | Some r -> r | None -> default_ladder cfg in
  if falsify_samples > 0 && falsify ~samples:falsify_samples program region ~true_class
  then begin
    let a = { rung_name = "concrete"; verdict = Verdict.Falsified } in
    { verdict = Verdict.Falsified; rung_name = "concrete"; attempts = [ a ] }
  end
  else begin
    let prefix = shared_prefix cfg program region in
    let attempts = ref [] in
    let rec go idx = function
      | [] -> assert false
      | rung :: rest ->
          let v =
            match run_rung idx cfg ?prefix program region ~true_class rung with
            | v -> v
            | exception Verdict.Abort r -> Verdict.Unknown r
            | exception Zonotope.Unbounded -> Verdict.Unknown Verdict.Unbounded
          in
          attempts := { rung_name = rung_name rung; verdict = v } :: !attempts;
          let final () =
            {
              verdict = v;
              rung_name = rung_name rung;
              attempts = List.rev !attempts;
            }
          in
          if Verdict.is_fault v && rest <> [] then go (idx + 1) rest else final ()
    in
    go 0 rungs
  end

let pp_outcome ppf o =
  Format.fprintf ppf "%s@%s" (Verdict.to_string o.verdict) o.rung_name;
  match o.attempts with
  | [] | [ _ ] -> ()
  | att ->
      Format.fprintf ppf " (ladder:";
      List.iter
        (fun (a : attempt) ->
          Format.fprintf ppf " %s=%s" a.rung_name (Verdict.to_string a.verdict))
        att;
      Format.fprintf ppf ")"
