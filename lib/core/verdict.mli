(** Structured certification verdicts.

    The boolean answer of {!Certify.certify} conflates "the abstraction
    is too coarse" with "the verifier died trying" — a propagation that
    overflows, saturates into NaN or blows its resource budget must not
    silently read as "not robust", and must never poison a batch. Every
    resilient entry point ({!Certify.certify_v}, {!Engine.certify})
    returns this type instead:

    - [Certified]: the margin lower bound is positive — robust on the
      region (sound).
    - [Falsified]: a concrete counterexample was found (the region
      contains an input the network misclassifies). Also sound.
    - [Unknown r]: no answer, with the reason [r] preserved. *)

type unknown_reason =
  | Timeout  (** wall-clock deadline exceeded mid-propagation *)
  | Symbol_budget  (** live ε-noise-symbol cap exceeded *)
  | Numerical_fault
      (** NaN or ±∞ detected in the abstraction after an op — e.g. the
          dot-product remainder overflow of {!Dot.matmul_zz}, or an
          injected fault (see {!Config.fault_spec}) *)
  | Unbounded
      (** the abstraction collapsed inside a transformer
          ({!Zonotope.Unbounded}: saturated exponential, degenerate
          reciprocal) *)
  | Imprecise
      (** clean propagation, but the margin lower bound is not positive:
          the abstraction is too coarse at this radius. Descending the
          degradation ladder cannot help — cheaper configs are coarser —
          so {!Engine.certify} stops here. *)
  | Worker_killed
      (** a {!Supervisor} worker overran its hard deadline and was
          terminated by the supervisor (SIGTERM, escalating to SIGKILL
          after the grace period) *)
  | Worker_crashed
      (** a {!Supervisor} worker died without answering: nonzero exit,
          unexpected signal (e.g. SIGSEGV), out-of-memory guard, or a
          garbled result on the pipe *)
  | Overloaded
      (** the certification daemon shed the job at admission: its bounded
          queue was past the high-water mark. The response carries a
          retry-after hint; the query was never attempted. *)
  | Quarantined
      (** the daemon's circuit breaker has the target model quarantined
          after consecutive worker deaths on it; the query was rejected
          at admission until the breaker half-opens. *)

type t = Certified | Falsified | Unknown of unknown_reason

exception Abort of unknown_reason
(** Raised by {!Propagate.run}'s per-op checkpoints when a budget is
    exhausted or poison is detected. Typed front-ends map it to
    [Unknown]; the legacy boolean front-ends map it to "not certified"
    (always sound). *)

val all_reasons : unknown_reason list
(** Every constructor, in declaration order — lets tests and the journal
    round-trip stay exhaustive without a fragile hand-written list. *)

val reason_name : unknown_reason -> string
val to_string : t -> string

val reason_of_string : string -> unknown_reason option
(** Inverse of {!reason_name}. *)

val of_string : string -> t option
(** Inverse of {!to_string} — ["certified"], ["falsified"],
    ["unknown(REASON)"]. Used by {!Journal} to round-trip verdicts
    through the on-disk batch journal. *)

val of_string_res : string -> (t, string) result
(** Like {!of_string} but a rejection explains itself: an unknown reason
    lists every valid reason name, a malformed verdict shows the
    expected shapes. The journal and the service protocol use this so a
    corrupt or version-skewed line fails with an actionable message
    instead of a bare [None]. *)

val pp : Format.formatter -> t -> unit
val pp_reason : Format.formatter -> unknown_reason -> unit
val is_certified : t -> bool

val is_fault : t -> bool
(** True for every [Unknown] except [Imprecise] — the verdicts the
    degradation ladder is allowed to retry. *)

val equal : t -> t -> bool
