(** Injectable syscall shim for the durability path.

    Every write, fsync, rename, truncate, close and socket send that the
    certification stack's durability story depends on — journal appends,
    intake records, supervisor pipes, the client socket — goes through
    this module instead of calling [Unix] directly. When the shim is
    {e off} (the default) each wrapper is one match on an immutable
    [Off] state away from the raw syscall: no allocation, no logging,
    no measurable overhead. When {e armed} with a {!plan}, the shim
    deterministically injects the faults a hostile kernel or dying disk
    would produce — an errno at the Nth operation, short writes, EINTR
    storms, a write torn after [k] bytes followed by process death —
    which is what makes crash-consistency checkable by enumeration
    instead of by hand-picked kill points (see [bin/crashprobe.ml]).

    The wrappers also own the boring half of the POSIX contract so no
    call site gets it wrong: genuine (and injected) [EINTR] is always
    restarted, and {!write_all} loops on partial writes — bytes are
    never silently dropped. {!single_write} is the one exception: it
    restarts [EINTR] but returns a possibly-partial count, for
    nonblocking sockets whose caller must re-buffer the unsent suffix.

    State is process-global and inherited across [fork]; a forked child
    that should run clean (a daemon's pre-forked worker) calls
    {!disarm}. *)

(** Operation classes, for plan filtering. [Send] is a socket write,
    [Write] a file or pipe write; the rest match their syscalls. *)
type op = Write | Send | Fsync | Rename | Truncate | Close

val op_name : op -> string

(** What happens when the plan matches an operation:

    - [Err e]: the operation fails with [Unix_error (e, _, site)] —
      [ENOSPC], [EIO], [EPIPE], … The caller's error handling runs.
    - [Short k]: a write/send transfers at most [k] bytes ([k >= 1], so
      looping callers still make progress). Other ops are unaffected.
    - [Eintr n]: this and the next [n-1] operations at the same site
      raise [EINTR] — a storm, observed below the wrappers' restart
      loops, so it exercises them without reaching the caller.
    - [Torn k]: a write/send really transfers [min k len] bytes of the
      buffer and the process then dies by SIGKILL — the canonical
      torn-append crash. On a non-write op it degrades to [Crash].
    - [Crash]: the process dies by SIGKILL instead of performing the
      operation — a kill landing between two syscalls. *)
type action = Err of Unix.error | Short of int | Eintr of int | Torn of int | Crash

type plan = {
  nth : int;  (** 0-based index among counted (matching) operations *)
  op : op option;  (** only this class counts toward [nth]; [None] = all *)
  site : string option;
      (** only sites containing this substring count; [None] = all *)
  action : action;
  persist : bool;
      (** keep firing on every later match instead of once at [nth];
          only meaningful for [Err] and [Short] *)
}

val plan : ?op:op -> ?site:string -> ?persist:bool -> nth:int -> action -> plan
(** Validated constructor. @raise Invalid_argument on [nth < 0],
    [Short k] with [k < 1], [Eintr n] with [n < 1], [Torn k] with
    [k < 0], or [persist] combined with [Eintr]/[Torn]/[Crash] (a
    persistent storm would livelock the restart loops). *)

val plan_to_string : plan -> string

val plan_of_string : string -> (plan, string) result
(** Parse the CLI / drill syntax, the inverse of {!plan_to_string}:

    {v ACTION@NTH[:op=OP][:site=SUB][:persist] v}

    where [ACTION] is [crash], [torn:K], [short:K], [eintr:N], or an
    errno name ([enospc], [eio], [epipe], [econnreset], [eacces]).
    Examples: ["crash@12"], ["torn:9@3:site=journal.append"],
    ["short:7@0:op=write:persist"], ["enospc@5:site=intake"]. *)

val arm : plan -> unit
(** Install a plan (replacing any previous one) and reset the counter. *)

val disarm : unit -> unit
(** Back to direct syscalls; also clears the recorder and counter. *)

val armed : unit -> bool

(** One counted operation, as seen by the recorder. [len] is the byte
    count a write/send was asked to transfer, [0] for other ops. *)
type event = { index : int; eop : op; esite : string; len : int }

val record : (event -> unit) -> unit
(** Count and report every durability operation {e without} injecting
    faults — the crash-point explorer's enumeration pass. Replaces any
    armed plan. *)

val ops : unit -> int
(** Operations counted since the last {!arm}/{!record}; [0] when off. *)

(* ---- wrapped syscalls ---- *)

val write_all : site:string -> Unix.file_descr -> bytes -> int -> int -> unit
(** Write the whole range: restarts [EINTR], loops on short writes. *)

val write_string : site:string -> Unix.file_descr -> string -> unit
(** {!write_all} for a whole string. *)

val send_string : site:string -> Unix.file_descr -> string -> unit
(** {!write_string}, counted as a socket [Send]. *)

val single_write : site:string -> Unix.file_descr -> string -> int -> int -> int
(** One send on a (typically nonblocking) socket: restarts [EINTR],
    returns the possibly-partial byte count; [EAGAIN]/[EPIPE]/… raise
    as usual for the caller to handle. Counted as [Send]. *)

val fsync : site:string -> Unix.file_descr -> unit
val rename : site:string -> string -> string -> unit
val ftruncate : site:string -> Unix.file_descr -> int -> unit
val close : site:string -> Unix.file_descr -> unit
