(** Supervised worker pool: process isolation for batch certification.

    PR 1's cooperative budgets cannot contain every failure: a checkpoint
    between ops never fires inside a wedged C-speed loop, and nothing
    cooperative survives a segfault, an OOM kill or a runaway allocation.
    This module supplies the missing {e hard} containment layer — the
    batch driver treats per-input queries as independent, restartable
    units (the way Faith batches GPU queries and Shi et al. loop over
    per-sentence certifications) and runs them on forked workers:

    {v
            supervisor (parent)
            ├── worker 1   (fork; jobs in / results out over pipes)
            ├── worker 2
            ┆
            └── worker N
    v}

    - jobs [(id, payload)] are shipped to workers with [Marshal] over a
      pipe; results come back the same way, one in flight per worker;
    - a per-job {e hard deadline} ({!Config.pool.hard_deadline_s}) is
      enforced from outside: SIGTERM on overrun, SIGKILL after
      {!Config.pool.grace_s} — a worker wedged in a non-allocating loop
      still dies;
    - worker memory is capped ({!Config.pool.mem_limit_mb}) by an
      in-worker GC guard (the portable stand-in for [setrlimit], which
      the stdlib [Unix] does not expose) that exits with a dedicated
      code when the major heap exceeds the limit;
    - any worker death — signal, nonzero exit, OOM, garbage on the
      result pipe — is confined to the job it was running: the job is
      reported as {!failure} (mapping to {!Verdict.Worker_killed} /
      {!Verdict.Worker_crashed}) or retried, a fresh worker is forked,
      and the rest of the batch proceeds;
    - {e crashed} jobs are retried on a fresh worker with exponential
      backoff up to {!Config.pool.max_retries}; deadline kills are
      deterministic overruns and are not retried.

    Payloads and results must be marshallable (no closures, no custom
    blocks). Workers inherit the [worker] closure and all loaded state
    (model weights, config) through [fork], so only small job descriptors
    cross the pipe. *)

type failure =
  | Killed of { signal : int }
      (** the supervisor terminated the worker for overrunning its hard
          deadline ([signal] is the OCaml signal number that ended it:
          [Sys.sigterm], or [Sys.sigkill] after escalation) *)
  | Crashed of { reason : string }
      (** the worker died without being asked to: [{"exit 70"}] (uncaught
          exception), ["oom"] (memory guard), ["signal SIGSEGV"], or
          ["decode: ..."] (garbled result pipe) *)

type 'b job_result = {
  job : int;
  outcome : ('b, failure) result;
  wall_s : float;
      (** wall-clock from the job's first dispatch to its final verdict,
          retries included *)
  retries : int;  (** how many times the job was re-dispatched *)
}

val failure_reason : failure -> Verdict.unknown_reason
(** [Killed _] → {!Verdict.Worker_killed}; [Crashed _] →
    {!Verdict.Worker_crashed}. *)

val failure_detail : failure -> string
(** Human-readable detail, e.g. ["SIGKILL"], ["oom"], ["exit 70"] —
    journaled in {!Journal.entry.detail}. *)

val exit_uncaught : int
(** Exit code of a worker whose job raised an uncaught exception. *)

val exit_oom : int
(** Exit code of a worker stopped by the memory guard. *)

val backoff_delay : Config.pool -> retries:int -> float
(** Delay before re-dispatching after the [retries]-th crash: uniformly
    jittered over [cap/2, cap] with
    [cap = min (backoff_s * 2^retries) max_backoff_s]. Jitter prevents
    workers felled by one event (an OOM sweep, a poisonous model) from
    restarting — and crashing — in lockstep; the cap keeps long-lived
    pools (the certification daemon) from backing off into uselessness.
    Shared by this pool's retry gate and the daemon's respawn loop. *)

val classify_status : term_sent:bool -> Unix.process_status -> failure
(** Maps a reaped worker status to a {!failure}: with [term_sent] (the
    supervisor had already escalated a deadline overrun) any death is
    {!Killed}; otherwise signals, the OOM guard's exit code and other
    nonzero exits are {!Crashed} with the standard reason strings.
    Exposed so the daemon's persistent pool reports deaths identically
    to batch runs. *)

val worker_loop :
  mem_limit_mb:int option ->
  job_r:Unix.file_descr ->
  res_w:Unix.file_descr ->
  (int -> 'a -> 'b) ->
  unit
(** The worker side of the pool protocol, for processes forked outside
    {!run} (the daemon pre-forks warm workers and keeps them across
    jobs): installs the memory guard, then loops reading [(id, payload)]
    jobs off [job_r] with [Marshal] and writing [(id, result)] to
    [res_w] until EOF ([exit 0]). An uncaught exception exits with
    {!exit_uncaught}; the guard exits with {!exit_oom}. Never returns. *)

val run :
  ?pool:Config.pool ->
  ?on_result:('b job_result -> unit) ->
  worker:(int -> 'a -> 'b) ->
  (int * 'a) list ->
  'b job_result list
(** [run ~pool ~worker jobs] certifies every job to a final
    [job_result], in job-id order. [on_result] fires once per job the
    moment its result is final (out of order) — the batch driver appends
    to the {!Journal} there, so a killed run loses at most the jobs
    still in flight. Job ids must be distinct
    (@raise Invalid_argument otherwise). The pool defaults to
    {!Config.default_pool}. SIGPIPE is ignored for the duration of the
    call (worker death must surface as a typed failure, not kill the
    supervisor). *)
