type failure = Killed of { signal : int } | Crashed of { reason : string }

type 'b job_result = {
  job : int;
  outcome : ('b, failure) result;
  wall_s : float;
  retries : int;
}

let exit_uncaught = 70
let exit_oom = 71

let failure_reason = function
  | Killed _ -> Verdict.Worker_killed
  | Crashed _ -> Verdict.Worker_crashed

let signal_name s =
  if s = Sys.sigterm then "SIGTERM"
  else if s = Sys.sigkill then "SIGKILL"
  else if s = Sys.sigsegv then "SIGSEGV"
  else if s = Sys.sigint then "SIGINT"
  else if s = Sys.sigabrt then "SIGABRT"
  else "signal " ^ string_of_int s

let failure_detail = function
  | Killed { signal } -> signal_name signal
  | Crashed { reason } -> reason

(* Jittered, capped exponential backoff. Deterministic backoff restarts
   every victim of a simultaneous kill (an OOM sweep, a model that
   crashes every worker at once) in lockstep, synchronizing the next
   crash wave; the jitter spreads retry [k] uniformly over
   [cap/2, cap] with cap = min(backoff_s * 2^k, max_backoff_s). *)
let jitter_rng = lazy (Random.State.make_self_init ())

let backoff_delay pool ~retries =
  let cap =
    Float.min
      (pool.Config.backoff_s *. (2.0 ** float_of_int retries))
      pool.Config.max_backoff_s
  in
  cap *. (0.5 +. (0.5 *. Random.State.float (Lazy.force jitter_rng) 1.0))

(* ---------------- the worker side ---------------- *)

(* Portable stand-in for setrlimit (absent from the stdlib Unix module):
   a GC alarm fires at the end of every major collection and exits with a
   dedicated code once the major heap exceeds the cap. A worker that
   allocates its way toward an OOM necessarily drives major collections,
   so the guard fires well before the machine is in trouble. *)
let install_mem_guard mb =
  let cap_words = mb * 1024 * 1024 / (Sys.word_size / 8) in
  ignore
    (Gc.create_alarm (fun () ->
         if (Gc.quick_stat ()).Gc.heap_words > cap_words then exit exit_oom))

let worker_main ~mem_limit_mb ~job_r ~res_w (worker : int -> 'a -> 'b) =
  Sys.set_signal Sys.sigpipe Sys.Signal_default;
  (match mem_limit_mb with Some mb -> install_mem_guard mb | None -> ());
  let jin = Unix.in_channel_of_descr job_r in
  let rec loop () =
    match (Marshal.from_channel jin : int * 'a) with
    | exception End_of_file -> exit 0
    | id, payload ->
        let r = worker id payload in
        (* Unbuffered through the shim: short writes looped, EINTR
           restarted, and the chaos layer can tear a result mid-pipe
           (the supervisor's decode-failure path handles the stump). *)
        let b = Marshal.to_bytes (id, r) [] in
        Sysio.write_all ~site:"worker.result" res_w b 0 (Bytes.length b);
        loop ()
  in
  try loop ()
  with e ->
    Printf.eprintf "supervisor worker %d: uncaught %s\n%!" (Unix.getpid ())
      (Printexc.to_string e);
    exit exit_uncaught

let worker_loop = worker_main

(* ---------------- the supervisor side ---------------- *)

type wstate = {
  pid : int;
  job_out : out_channel;
  res_fd : Unix.file_descr;
  res_in : in_channel;
  job_w_fd : Unix.file_descr;
  mutable busy : int option;  (* job id in flight *)
  mutable started : float;  (* dispatch time of the in-flight job *)
  mutable term_at : float option;  (* SIGTERM sent (hard-deadline overrun) *)
  mutable sigkilled : bool;
}

type 'a jstate = {
  id : int;
  payload : 'a;
  mutable retries : int;
  mutable not_before : float;  (* backoff gate for re-dispatch *)
  mutable first_dispatch : float option;
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

let classify_status ~term_sent status =
  if term_sent then
    let signal = match status with Unix.WSIGNALED s -> s | _ -> Sys.sigterm in
    Killed { signal }
  else
    match status with
    | Unix.WSIGNALED s -> Crashed { reason = signal_name s }
    | Unix.WEXITED c when c = exit_oom -> Crashed { reason = "oom" }
    | Unix.WEXITED c -> Crashed { reason = "exit " ^ string_of_int c }
    | Unix.WSTOPPED s -> Crashed { reason = "stopped " ^ signal_name s }

let classify w status = classify_status ~term_sent:(w.term_at <> None) status

let run ?(pool = Config.default_pool) ?on_result ~worker jobs =
  if pool.Config.workers < 1 then invalid_arg "Supervisor.run: workers < 1";
  let ids = List.map fst jobs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Supervisor.run: duplicate job ids";
  if jobs = [] then []
  else begin
    let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect
      ~finally:(fun () -> Sys.set_signal Sys.sigpipe old_sigpipe)
    @@ fun () ->
    let total = List.length jobs in
    let pending =
      ref
        (List.map
           (fun (id, payload) ->
             { id; payload; retries = 0; not_before = 0.0; first_dispatch = None })
           jobs)
    in
    let results : (int, 'b job_result) Hashtbl.t = Hashtbl.create total in
    let workers = ref [] in
    (* Every parent-side fd, so each freshly forked child can close its
       siblings' pipe ends: an orphaned worker must see EOF on its job
       pipe the moment the supervisor dies, not when its siblings do. *)
    let parent_fds () =
      List.concat_map (fun w -> [ w.res_fd; w.job_w_fd ]) !workers
    in
    let spawn () =
      let job_r, job_w = Unix.pipe () in
      let res_r, res_w = Unix.pipe () in
      match Unix.fork () with
      | 0 ->
          List.iter
            (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
            (parent_fds ());
          Unix.close job_w;
          Unix.close res_r;
          worker_main ~mem_limit_mb:pool.Config.mem_limit_mb ~job_r ~res_w
            worker
      | pid ->
          Unix.close job_r;
          Unix.close res_w;
          let w =
            {
              pid;
              job_out = Unix.out_channel_of_descr job_w;
              res_fd = res_r;
              res_in = Unix.in_channel_of_descr res_r;
              job_w_fd = job_w;
              busy = None;
              started = 0.0;
              term_at = None;
              sigkilled = false;
            }
          in
          workers := w :: !workers;
          w
    in
    let discard w =
      workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
      close_out_noerr w.job_out;
      close_in_noerr w.res_in
    in
    let finalize (j : 'a jstate) outcome =
      let wall_s =
        match j.first_dispatch with
        | Some t -> Unix.gettimeofday () -. t
        | None -> 0.0
      in
      let r = { job = j.id; outcome; wall_s; retries = j.retries } in
      Hashtbl.replace results j.id r;
      match on_result with Some f -> f r | None -> ()
    in
    (* jobs currently on a worker; removed from [pending] while in flight *)
    let inflight : (int, 'a jstate) Hashtbl.t = Hashtbl.create 8 in
    let dispatch w (j : 'a jstate) =
      let now = Unix.gettimeofday () in
      if j.first_dispatch = None then j.first_dispatch <- Some now;
      pending := List.filter (fun j' -> j'.id <> j.id) !pending;
      Hashtbl.replace inflight j.id j;
      match
        let b = Marshal.to_bytes (j.id, j.payload) [] in
        Sysio.write_all ~site:"supervisor.dispatch" w.job_w_fd b 0
          (Bytes.length b)
      with
      | () ->
          w.busy <- Some j.id;
          w.started <- now
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
          (* the worker died between jobs (external kill, idle OOM): the
             job never ran there — reap, put it back, drop the corpse *)
          ignore (waitpid_retry w.pid);
          discard w;
          Hashtbl.remove inflight j.id;
          pending := j :: !pending
    in
    (* A worker died (EOF or garbage on its result pipe). Map the death
       onto its in-flight job, if any, honoring the retry policy. *)
    let handle_death w ~decode_error =
      let status = waitpid_retry w.pid in
      (match Option.bind w.busy (Hashtbl.find_opt inflight) with
      | None -> ()
      | Some j ->
          Hashtbl.remove inflight j.id;
          let failure =
            match decode_error with
            | Some msg -> Crashed { reason = "decode: " ^ msg }
            | None -> classify w status
          in
          (match failure with
          | Crashed _ when j.retries < pool.Config.max_retries ->
              j.not_before <-
                Unix.gettimeofday () +. backoff_delay pool ~retries:j.retries;
              j.retries <- j.retries + 1;
              pending := j :: !pending
          | _ -> finalize j (Error failure)));
      discard w
    in
    let accept_result w (id, (res : 'b)) =
      (match Hashtbl.find_opt inflight id with
      | Some j ->
          Hashtbl.remove inflight id;
          finalize j (Ok res)
      | None -> () (* result raced a kill decision; already reported *));
      w.busy <- None
    in
    let enforce_deadlines now =
      match pool.Config.hard_deadline_s with
      | None -> ()
      | Some limit ->
          List.iter
            (fun w ->
              match (w.busy, w.term_at) with
              | Some _, None when now -. w.started > limit ->
                  w.term_at <- Some now;
                  (try Unix.kill w.pid Sys.sigterm
                   with Unix.Unix_error _ -> ())
              | Some _, Some t
                when (not w.sigkilled) && now -. t > pool.Config.grace_s ->
                  w.sigkilled <- true;
                  (try Unix.kill w.pid Sys.sigkill
                   with Unix.Unix_error _ -> ())
              | _ -> ())
            !workers
    in
    (* earliest future event the loop must wake for *)
    let next_timeout now =
      let candidates = ref [] in
      (match pool.Config.hard_deadline_s with
      | Some limit ->
          List.iter
            (fun w ->
              match (w.busy, w.term_at) with
              | Some _, None ->
                  candidates := (w.started +. limit -. now) :: !candidates
              | Some _, Some t when not w.sigkilled ->
                  candidates := (t +. pool.Config.grace_s -. now) :: !candidates
              | _ -> ())
            !workers
      | None -> ());
      List.iter
        (fun j ->
          if j.not_before > now then
            candidates := (j.not_before -. now) :: !candidates)
        !pending;
      match !candidates with
      | [] -> 0.5
      | l -> Float.max 0.01 (List.fold_left Float.min 0.5 l)
    in
    let n_workers = min pool.Config.workers total in
    (* keep up to [n_workers] live workers fed; fork replacements for the
       dead as long as dispatchable work remains *)
    let rec feed () =
      let now = Unix.gettimeofday () in
      match List.find_opt (fun j -> j.not_before <= now) !pending with
      | None -> ()
      | Some j -> (
          match
            List.find_opt (fun w -> w.busy = None && w.term_at = None) !workers
          with
          | Some w ->
              dispatch w j;
              feed ()
          | None ->
              if List.length !workers < n_workers then begin
                ignore (spawn ());
                feed ()
              end)
    in
    for _ = 1 to n_workers do ignore (spawn ()) done;
    while Hashtbl.length results < total do
      let now = Unix.gettimeofday () in
      feed ();
      enforce_deadlines now;
      let fds = List.map (fun w -> w.res_fd) !workers in
      let readable, _, _ =
        match Unix.select fds [] [] (next_timeout now) with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      List.iter
        (fun fd ->
          match List.find_opt (fun w -> w.res_fd = fd) !workers with
          | None -> ()
          | Some w -> (
              match (Marshal.from_channel w.res_in : int * 'b) with
              | msg -> accept_result w msg
              | exception End_of_file -> handle_death w ~decode_error:None
              | exception Failure msg ->
                  (try Unix.kill w.pid Sys.sigkill
                   with Unix.Unix_error _ -> ());
                  handle_death w ~decode_error:(Some msg)))
        readable
    done;
    (* orderly shutdown: EOF on the job pipes, then reap *)
    List.iter
      (fun w ->
        close_out_noerr w.job_out;
        close_in_noerr w.res_in)
      !workers;
    List.iter (fun w -> ignore (waitpid_retry w.pid)) !workers;
    workers := [];
    List.sort (fun a b -> compare a.job b.job)
      (Hashtbl.fold (fun _ r acc -> r :: acc) results [])
  end
