(** Dot-product and multiplication abstract transformers (Sections 4.8–4.9).

    These are the key transformers of the paper: self-attention multiplies
    two quantities that are {e both} under perturbation — the query/key
    product [Q·Kᵀ] and the attention/value product [softmax(S)·V]. The
    output of a product of two affine forms has a quadratic remainder in
    the noise symbols; each output variable receives the exact affine part
    plus one fresh ε symbol covering an interval bound of the remainder.

    Two remainder bounds are provided:
    - {b Fast} (Equation 5): dual-norm cascade, [O(N(Ep + E∞))] per output;
    - {b Precise} (Equation 6): exact treatment of the ε²/ε·ε structure of
      the ℓ∞-ℓ∞ term, [O(N·E∞²)] per output. *)

type quad_bound = {
  phi_phi : Interval.Itv.t;
  phi_eps : Interval.Itv.t;
  eps_phi : Interval.Itv.t;
  eps_eps : Interval.Itv.t;
}
(** Interval bounds of the four noise-interaction terms of one output. *)

val fast_abs_bound :
  order:Config.dual_order ->
  p1:Lp.t -> p2:Lp.t -> Tensor.Mat.t -> Tensor.Mat.t -> float
(** [fast_abs_bound ~order ~p1 ~p2 v w] bounds [|(V ξ₁)·(W ξ₂)|] for
    [‖ξ₁‖_{p1} ≤ 1, ‖ξ₂‖_{p2} ≤ 1] by the dual-norm cascade of
    Equation 5. [order] selects which operand is normed first when the
    two norms differ (the Section 6.5 ablation). [v] and [w] are the
    coefficient blocks ([dim x E]). *)

val precise_eps_bound : Tensor.Mat.t -> Tensor.Mat.t -> Interval.Itv.t
(** Equation 6: bound of [(B₁ε)·(B₂ε)] that accounts for [ε² ∈ [0,1]]
    on the diagonal and symmetrizes off-diagonal pairs. *)

val quad_bounds :
  precise:bool ->
  order:Config.dual_order ->
  p:Lp.t ->
  a1:Tensor.Mat.t -> b1:Tensor.Mat.t ->
  a2:Tensor.Mat.t -> b2:Tensor.Mat.t ->
  quad_bound
(** Bounds for all four interaction terms of one dot product; the ε-ε
    term uses {!precise_eps_bound} when [precise]. *)

val matmul_zz :
  ?precise:bool ->
  ?order:Config.dual_order ->
  Zonotope.ctx -> Zonotope.t -> Zonotope.t -> Zonotope.t
(** [matmul_zz ctx a b] abstracts the value-level matrix product
    [A·B] of two zonotopes sharing noise symbols ([a : n x k],
    [b : k x m]). Each output variable gets the exact affine part
    [c₁·c₂ + (c₁ᵀA₂ + c₂ᵀA₁)φ + (c₁ᵀB₂ + c₂ᵀB₁)ε] plus one fresh ε
    symbol covering the quadratic remainder.

    Polls {!Zonotope.check_deadline} once per output row, so a deadline
    armed on [ctx] preempts even a single huge dot product mid-op.
    @raise Verdict.Abort [Timeout] when the armed deadline has passed. *)

val mul_zz :
  ?precise:bool ->
  ?order:Config.dual_order ->
  Zonotope.ctx -> Zonotope.t -> Zonotope.t -> Zonotope.t
(** Element-wise product of two zonotopes with identical value shapes
    (Section 4.9: multiplication is the 1-element dot product). *)
