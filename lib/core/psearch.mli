(** Speculative parallel bracket search over a monotone radius predicate
    — the engine behind {!Certify.max_radius} (DESIGN.md §9).

    The radius search is a bracket refinement: maintain [good] (largest
    radius known to certify) and [bad] (smallest known to fail) and
    shrink [bad - good]. Sequential bisection probes one radius per
    step; the {!Grid} executor probes [n] deterministic radii per round
    {e concurrently} and folds the outcomes {b in radius order} — the
    new bracket is the last point of the leading all-Good prefix and the
    first non-Good point — so the result depends only on the probed
    radii and the predicate, never on which probe finished first.
    Convergence per round goes from [1/2] to [1/(n+1)].

    Determinism contract: for a fixed (deterministic) probe, the
    sequence of probed radii and the returned bracket are identical
    across runners and across runs; [Grid 1] is bit-for-bit the
    sequential bisection. *)

type outcome =
  | Good  (** the radius certified *)
  | Bad  (** clean not-certified *)
  | Faulted of Verdict.unknown_reason
      (** the probe aborted (budget, collapse, dead worker); treated as
          [Bad] for the bracket — a fault can never certify — but
          reported so callers can flag the radius as pessimistic *)

type probe = float -> outcome

type runner = probe -> float array -> outcome array
(** Evaluates one wave of radii, returning outcomes in {e input} order
    (index [i] answers [radii.(i)]); how the wave is scheduled is the
    runner's business. A runner must return the same arity it was
    given. *)

type executor =
  | Sequential
      (** probe-for-probe identical to the pre-engine
          [Certify.max_radius]: up to 4 bracket-growth probes, then
          [iters] bisections. Never calls the runner. *)
  | Grid of int
      (** [Grid n]: each round splits the bracket into [n + 1]
          subintervals and evaluates the [n] interior radii as one
          runner wave. [Grid 1] degenerates to bisection (the midpoint
          is the sequential [0.5 *. (good +. bad)] exactly). *)

type stats = {
  bracket_probes : int;  (** probes spent establishing [good, bad) *)
  bisect_probes : int;  (** probes spent refining the bracket *)
  rounds : int;  (** refinement rounds (0 for [Sequential]) *)
  faulted : (float * Verdict.unknown_reason) list;
      (** faulted probes in launch order; nonempty means [radius] may be
          pessimistic *)
}

type result = {
  radius : float;  (** largest radius that certified ([lo] if none) *)
  good : float;
  bad : float;  (** [infinity] when even the growth cap certified *)
  stats : stats;
}

val probe_of : (float -> bool) -> probe
(** Wraps a boolean predicate, mapping {!Verdict.Abort} and
    {!Zonotope.Unbounded} to [Faulted]. *)

(** {1 Generic wave runners}

    The scheduling substrate under the probe runners, reused by
    {!Brefine} for branch-and-bound waves: evaluate [f 0 .. f (n-1)]
    and return the results in index order. [f] must be deterministic
    and its result plain data (it may cross the Marshal boundary). *)

type 'r wave = (int -> 'r) -> int -> 'r array

val serial_wave : 'r wave
(** Ascending in-process evaluation — the deterministic reference. *)

val fork_wave : crash:(Verdict.unknown_reason -> 'r) -> 'r wave
(** One forked process per index over the {!Supervisor} plumbing
    ([max_retries = 0]); a crashed worker's slot is filled with
    [crash reason]. The closure is inherited by [fork], not marshalled.
    Degrades to {!serial_wave} while any {!Tensor.Dpool} has live
    worker domains (the runtime forbids forking then). *)

val dpool_wave : Tensor.Dpool.t -> 'r wave
(** Thread-per-index over a shared domain pool; results land in
    caller-indexed slots. Nested pool use inside [f] degrades to serial
    (the pool's reentrancy guard). *)

val serial_runner : runner
(** Left-to-right in-process evaluation — the deterministic reference
    backend and the [Sequential] executor's implicit behavior. *)

val fork_runner : runner
(** One forked probe process per radius over the {!Supervisor}
    marshalling plumbing ([max_retries = 0]: probes are deterministic,
    so a crashed worker is reported as [Faulted], not re-run). The probe
    closure is inherited by [fork], not marshalled. Degrades to
    {!serial_runner} while any {!Tensor.Dpool} has live worker domains
    (the runtime forbids forking then). *)

val dpool_runner : Tensor.Dpool.t -> runner
(** Thread-per-probe over a shared domain pool — for single-process
    runs. Nested pool use inside a probe degrades to serial (the pool's
    reentrancy guard), so prefer {!fork_runner} when probes themselves
    shard over domains. *)

val search :
  ?lo:float ->
  ?hi:float ->
  ?iters:int ->
  ?rounds:int ->
  ?exec:executor ->
  ?runner:runner ->
  probe ->
  result
(** [search probe] brackets and refines the largest radius accepted by
    the monotone predicate. Defaults: [lo = 0], [hi = 0.5],
    [iters = 10], [exec = Sequential], [runner = serial_runner].

    [iters] is the sequential bisection count; grid executors derive
    their round count from it (smallest count whose final width is at
    most sequential bisection's) unless [rounds] overrides it.

    @raise Invalid_argument on an empty or non-finite initial bracket,
    negative [iters], or [Grid n] with [n < 1]. *)
