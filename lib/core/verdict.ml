type unknown_reason =
  | Timeout
  | Symbol_budget
  | Numerical_fault
  | Unbounded
  | Imprecise

type t = Certified | Falsified | Unknown of unknown_reason

exception Abort of unknown_reason

let reason_name = function
  | Timeout -> "timeout"
  | Symbol_budget -> "symbol-budget"
  | Numerical_fault -> "numerical-fault"
  | Unbounded -> "unbounded"
  | Imprecise -> "imprecise"

let to_string = function
  | Certified -> "certified"
  | Falsified -> "falsified"
  | Unknown r -> "unknown(" ^ reason_name r ^ ")"

let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
let is_certified = function Certified -> true | _ -> false
let is_fault = function
  | Unknown (Timeout | Symbol_budget | Numerical_fault | Unbounded) -> true
  | Certified | Falsified | Unknown Imprecise -> false
let equal (a : t) (b : t) = a = b
