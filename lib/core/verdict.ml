type unknown_reason =
  | Timeout
  | Symbol_budget
  | Numerical_fault
  | Unbounded
  | Imprecise
  | Worker_killed
  | Worker_crashed
  | Overloaded
  | Quarantined

type t = Certified | Falsified | Unknown of unknown_reason

exception Abort of unknown_reason

let all_reasons =
  [
    Timeout;
    Symbol_budget;
    Numerical_fault;
    Unbounded;
    Imprecise;
    Worker_killed;
    Worker_crashed;
    Overloaded;
    Quarantined;
  ]

let reason_name = function
  | Timeout -> "timeout"
  | Symbol_budget -> "symbol-budget"
  | Numerical_fault -> "numerical-fault"
  | Unbounded -> "unbounded"
  | Imprecise -> "imprecise"
  | Worker_killed -> "worker-killed"
  | Worker_crashed -> "worker-crashed"
  | Overloaded -> "overloaded"
  | Quarantined -> "quarantined"

let to_string = function
  | Certified -> "certified"
  | Falsified -> "falsified"
  | Unknown r -> "unknown(" ^ reason_name r ^ ")"

let reason_of_string s =
  List.find_opt (fun r -> reason_name r = s) all_reasons

let of_string_res = function
  | "certified" -> Ok Certified
  | "falsified" -> Ok Falsified
  | s ->
      let n = String.length s in
      if n > 9 && String.sub s 0 8 = "unknown(" && s.[n - 1] = ')' then begin
        let reason = String.sub s 8 (n - 9) in
        match reason_of_string reason with
        | Some r -> Ok (Unknown r)
        | None ->
            Error
              (Printf.sprintf
                 "unknown verdict reason %S (expected one of: %s)" reason
                 (String.concat ", " (List.map reason_name all_reasons)))
      end
      else
        Error
          (Printf.sprintf
             "bad verdict %S (expected \"certified\", \"falsified\" or \
              \"unknown(REASON)\")"
             s)

let of_string s = Result.to_option (of_string_res s)

let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
let is_certified = function Certified -> true | _ -> false
let is_fault = function
  | Unknown
      ( Timeout | Symbol_budget | Numerical_fault | Unbounded | Worker_killed
      | Worker_crashed | Overloaded | Quarantined ) ->
      true
  | Certified | Falsified | Unknown Imprecise -> false
let equal (a : t) (b : t) = a = b
