type unknown_reason =
  | Timeout
  | Symbol_budget
  | Numerical_fault
  | Unbounded
  | Imprecise
  | Worker_killed
  | Worker_crashed

type t = Certified | Falsified | Unknown of unknown_reason

exception Abort of unknown_reason

let all_reasons =
  [
    Timeout;
    Symbol_budget;
    Numerical_fault;
    Unbounded;
    Imprecise;
    Worker_killed;
    Worker_crashed;
  ]

let reason_name = function
  | Timeout -> "timeout"
  | Symbol_budget -> "symbol-budget"
  | Numerical_fault -> "numerical-fault"
  | Unbounded -> "unbounded"
  | Imprecise -> "imprecise"
  | Worker_killed -> "worker-killed"
  | Worker_crashed -> "worker-crashed"

let to_string = function
  | Certified -> "certified"
  | Falsified -> "falsified"
  | Unknown r -> "unknown(" ^ reason_name r ^ ")"

let reason_of_string s =
  List.find_opt (fun r -> reason_name r = s) all_reasons

let of_string = function
  | "certified" -> Some Certified
  | "falsified" -> Some Falsified
  | s ->
      let n = String.length s in
      if n > 9 && String.sub s 0 8 = "unknown(" && s.[n - 1] = ')' then
        Option.map
          (fun r -> Unknown r)
          (reason_of_string (String.sub s 8 (n - 9)))
      else None

let pp ppf v = Format.pp_print_string ppf (to_string v)
let pp_reason ppf r = Format.pp_print_string ppf (reason_name r)
let is_certified = function Certified -> true | _ -> false
let is_fault = function
  | Unknown
      ( Timeout | Symbol_budget | Numerical_fault | Unbounded | Worker_killed
      | Worker_crashed ) ->
      true
  | Certified | Falsified | Unknown Imprecise -> false
let equal (a : t) (b : t) = a = b
