open Tensor

let lp_ball ~p x ~word ~radius =
  if radius < 0.0 then invalid_arg "Region.lp_ball: negative radius";
  let n = Mat.rows x and d = Mat.cols x in
  if word < 0 || word >= n then invalid_arg "Region.lp_ball: word out of range";
  let nv = n * d in
  match p with
  | Lp.Linf ->
      let eps = Mat.create nv d in
      for j = 0 to d - 1 do
        Mat.set eps ((word * d) + j) j radius
      done;
      (* only the perturbed word's rows carry ε coefficients *)
      Zonotope.make ~p ~center:(Mat.copy x) ~phi:(Mat.create nv 0) ~eps
      |> Zonotope.with_eps_occ
           (Bands.of_bands
              [ { Bands.col_lo = 0; col_hi = d;
                  row_lo = word * d; row_hi = (word + 1) * d } ])
  | Lp.L1 | Lp.L2 ->
      let phi = Mat.create nv d in
      for j = 0 to d - 1 do
        Mat.set phi ((word * d) + j) j radius
      done;
      Zonotope.make ~p ~center:(Mat.copy x) ~phi ~eps:(Mat.create nv 0)

let lp_ball_all ~p x ~radius =
  if radius < 0.0 then invalid_arg "Region.lp_ball_all: negative radius";
  let nv = Mat.rows x * Mat.cols x in
  let diag = Mat.init nv nv (fun i j -> if i = j then radius else 0.0) in
  match p with
  | Lp.Linf ->
      Zonotope.make ~p ~center:(Mat.copy x) ~phi:(Mat.create nv 0) ~eps:diag
  | Lp.L1 | Lp.L2 ->
      Zonotope.make ~p ~center:(Mat.copy x) ~phi:diag ~eps:(Mat.create nv 0)

let box lo hi =
  if Mat.dims lo <> Mat.dims hi then invalid_arg "Region.box: shape mismatch";
  let nv = Mat.rows lo * Mat.cols lo in
  let center = Mat.zip (fun l h -> 0.5 *. (l +. h)) lo hi in
  let rads = Mat.zip (fun l h -> 0.5 *. (h -. l)) lo hi in
  (* One ε symbol per genuinely perturbed entry. *)
  let idx = ref [] and count = ref 0 in
  for v = 0 to nv - 1 do
    let r = rads.Mat.data.(v) in
    if r < 0.0 then invalid_arg "Region.box: lo > hi";
    if r > 0.0 then begin
      idx := (v, !count, r) :: !idx;
      incr count
    end
  done;
  let eps = Mat.create nv !count in
  List.iter (fun (v, k, r) -> eps.Mat.data.((v * !count) + k) <- r) !idx;
  (* One 1x1 band per perturbed entry; when there are many, the band
     cap coalesces them into the bounding box of the perturbed rows,
     which is still tight for localized perturbations (synonym_box). *)
  let occ =
    Bands.of_bands
      (List.map
         (fun (v, k, _) ->
           { Bands.col_lo = k; col_hi = k + 1; row_lo = v; row_hi = v + 1 })
         !idx)
  in
  Zonotope.make ~p:Lp.Linf ~center ~phi:(Mat.create nv 0) ~eps
  |> Zonotope.with_eps_occ occ

let synonym_box x subs =
  let d = Mat.cols x in
  let lo = Mat.copy x and hi = Mat.copy x in
  List.iter
    (fun (pos, alts) ->
      if pos < 0 || pos >= Mat.rows x then invalid_arg "Region.synonym_box: position";
      List.iter
        (fun alt ->
          if Array.length alt <> d then
            invalid_arg "Region.synonym_box: embedding size mismatch";
          for j = 0 to d - 1 do
            Mat.set lo pos j (Float.min (Mat.get lo pos j) alt.(j));
            Mat.set hi pos j (Float.max (Mat.get hi pos j) alt.(j))
          done)
        alts)
    subs;
  box lo hi
