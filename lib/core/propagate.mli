(** Multi-norm Zonotope interpreter over {!Ir.program}s — the verifier's
    engine (Section 5).

    Walks the program, maintaining one zonotope per IR value. Following
    the paper, {!Reduction.decorrelate_min_k} runs on the input of every
    Transformer layer, just before the residual split around the
    self-attention (the only point where a single zonotope is alive, so
    symbol renumbering is safe). With [Config.variant = Combined], the
    precise dot product is used in the last Transformer layer only
    (Appendix A.6). *)

val run : Config.t -> Ir.program -> Zonotope.t -> Zonotope.t
(** Output zonotope of the program on the given input region.

    After every op the interpreter runs a checkpoint and aborts with a
    typed {!Verdict.Abort} instead of propagating poison:
    - [Timeout] when [cfg.budget.time_limit_s] wall-clock seconds have
      elapsed since entry;
    - [Symbol_budget] when the live ε-symbol count exceeds
      [cfg.budget.max_eps];
    - [Numerical_fault] when the output zonotope contains a NaN or an
      infinity (e.g. an overflowed dot-product remainder);
    - [Unbounded] when a transformer collapses mid-op
      ({!Zonotope.Unbounded}).

    [cfg.fault] injects a deterministic fault after the named op (see
    {!Config.fault_spec}) — the test hook behind the degradation-ladder
    suite. With the default config (no budget, no fault) only the
    poison/collapse checkpoints are active. *)

val run_all : Config.t -> Ir.program -> Zonotope.t -> Zonotope.t array
(** All intermediate zonotopes (sharing one symbol context); index 0 is
    the input. Intended for inspection and tests — note that, unlike
    {!run}, values from different stages may have different ε widths.

    Setting the environment variable [DEEPT_TRACE] makes the interpreter
    print one line per op (kind, bound width, ε count) to stderr — the
    first tool to reach for when certification of a deep network fails
    unexpectedly. *)
