(** Multi-norm Zonotope interpreter over {!Ir.program}s — the verifier's
    engine (Section 5).

    Since PR 4 this is a {!Interp.DOMAIN} instance over the shared
    interpreter loop: the module supplies only the zonotope transformer
    per op; the per-op checkpoints (deadline / ε budget / poison scan),
    fault injection and the trace stream live in {!Interp} and are
    identical across all domains. Following the paper,
    {!Reduction.decorrelate_min_k} runs on the input of every
    Transformer layer, just before the residual split around the
    self-attention (the only point where a single zonotope is alive, so
    symbol renumbering is safe). With [Config.variant = Combined], the
    precise dot product is used in the last Transformer layer only
    (Appendix A.6). *)

val run :
  ?prefix:Zonotope.t array * int ->
  Config.t ->
  Ir.program ->
  Zonotope.t ->
  Zonotope.t
(** Output zonotope of the program on the given input region.

    After every op the interpreter runs a checkpoint and aborts with a
    typed {!Verdict.Abort} instead of propagating poison:
    - [Timeout] when [cfg.budget.time_limit_s] wall-clock seconds have
      elapsed since entry;
    - [Symbol_budget] when the live ε-symbol count exceeds
      [cfg.budget.max_eps];
    - [Numerical_fault] when the output zonotope contains a NaN or an
      infinity (e.g. an overflowed dot-product remainder);
    - [Unbounded] when a transformer collapses mid-op
      ({!Zonotope.Unbounded}).

    [cfg.fault] injects a deterministic fault after the named op (see
    {!Config.fault_spec}) — the test hook behind the degradation-ladder
    suite. With the default config (no budget, no fault) only the
    poison/collapse checkpoints are active.

    [prefix] is [(vals, start)] from {!run_prefix}: propagation resumes
    at op [start] on a copy of [vals], skipping the shared affine
    prefix. The result is bit-identical to a full run because affine
    ops neither allocate symbols nor depend on {!Config.t}. *)

val run_all :
  ?prefix:Zonotope.t array * int ->
  Config.t ->
  Ir.program ->
  Zonotope.t ->
  Zonotope.t array
(** All intermediate zonotopes (sharing one symbol context); index 0 is
    the input. Intended for inspection and tests — note that, unlike
    {!run}, values from different stages may have different ε widths.

    Per-op tracing goes through [cfg.trace] (see {!Config.t} and
    {!Profile}). Setting the environment variable [DEEPT_TRACE] is a
    compatibility shim that installs a stderr sink (one line per op:
    kind, bound width, live ε symbols) when no explicit sink is set —
    still the first tool to reach for when certification of a deep
    network fails unexpectedly. *)

val run_prefix :
  Config.t -> Ir.program -> Zonotope.t -> len:int -> Zonotope.t array
(** Propagates only ops [0 .. len - 1] and returns the value array (the
    remaining slots hold the input). [len] must not exceed
    {!affine_prefix_len}: affine ops are config-independent and
    symbol-free, so the result can be shared across ladder rungs via
    [?prefix].
    @raise Invalid_argument if [len] exceeds the affine prefix. *)

val fuse_for : Config.t -> Ir.program -> Ir.program
(** Apply {!Fuse.fuse_program} unless the config arms fault injection.

    [Config.fault] names its injection site by op index {e into the
    graph being interpreted}: fusing would renumber (and possibly
    absorb) the faulted op, silently moving the drill. So — exactly
    like prefix sharing in {!Certify.search_prefix} — affine fusion
    turns itself off whenever [cfg.fault] is set, keeping every per-op
    fault site addressable. With no fault armed this is the load-time
    fusion entry point for certification front-ends; the returned
    program is the input itself when nothing fused (zoo models: their
    residual connections give every normalization two consumers, so
    fusion is a structural no-op and all committed pins are preserved
    by construction). *)

val affine_prefix_len : Ir.program -> int
(** Length of the leading run of ops whose zonotope transformers are
    exact affine maps independent of {!Config.t}: [Linear], [Add],
    [Positional], [Pool_first] and mean-only [Center_norm]. For the ViT
    models this covers the patch embedding; for text models it is 0
    (they start with self-attention). *)

(** {1 Internals shared with {!Engine}} *)

val use_precise : Config.t -> layer:int -> total:int -> bool
val apply_fault : Config.fault_spec -> Zonotope.t -> unit
val poison_scan : Zonotope.t -> [ `Finite | `Nan | `Inf ]

val shared_pool : int -> Tensor.Dpool.t option
(** The per-(pid, size) cached domain pool backing [Config.domains]. *)

val abort_of : Interp.abort -> exn
(** Maps interpreter checkpoint aborts to {!Verdict.Abort} — [Timeout],
    [Symbol_budget] and [Numerical_fault] respectively. Shared by every
    certification front-end that arms {!Interp.checks} (interval rung,
    linear-relaxation baseline). *)
