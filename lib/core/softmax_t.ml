open Tensor

(* A score position is saturated when some other position dominates it by
   more than this margin everywhere on the region: the softmax output is
   then provably below exp(-margin) and the exponential would overflow the
   float range if materialized. *)
let saturation_margin = 700.0

(* sigma_i = 1 / sum_j exp(nu_j - nu_i) for one score row (1 x n value). *)
let stable_row ctx row =
  (* The n^2-variable difference matrix makes softmax one of the heaviest
     transformers; poll the cooperative deadline once per score row. *)
  Zonotope.check_deadline ctx;
  let pool = Zonotope.ctx_pool ctx in
  let n = row.Zonotope.vcols in
  (* Difference matrix D(i,j) = nu_j - nu_i as a linear map of the n score
     variables viewed as an n x 1 value. *)
  let col = Zonotope.transpose_value row in
  let m =
    Mat.init (n * n) n (fun v t ->
        let i = v / n and j = v mod n in
        (if t = j then 1.0 else 0.0) -. if t = i then 1.0 else 0.0)
  in
  let d =
    Zonotope.reshape_value (Zonotope.map_rows_affine ?pool col m) ~rows:n ~cols:n
  in
  let db = Zonotope.bounds ?pool d in
  (* Saturated outputs are emitted directly as [0, exp(-l_max)] — exact up
     to float resolution and immune to exponential overflow (the attention
     of trained networks saturates routinely in deep layers). *)
  let sat_bound i =
    let l_max = ref neg_infinity in
    for j = 0 to n - 1 do
      l_max := Float.max !l_max (Mat.get db.Interval.Imat.lo i j)
    done;
    if !l_max > saturation_margin then
      Some (Float.max (exp (-. !l_max)) 1e-300)
    else None
  in
  let boxed u =
    (* the interval [0, u] as an independent scalar zonotope: a single
       one-hot ε column, so its occupancy is one 1x1 band *)
    let base = Zonotope.alloc_eps ctx 1 in
    let eps = Mat.create 1 (base + 1) in
    Mat.set eps 0 base (0.5 *. u);
    Zonotope.make ~p:row.Zonotope.p
      ~center:(Mat.make 1 1 (0.5 *. u))
      ~phi:(Mat.create 1 (Zonotope.num_phi row))
      ~eps
    |> Zonotope.with_eps_occ
         (Bands.of_bands
            [ { Bands.col_lo = base; col_hi = base + 1; row_lo = 0; row_hi = 1 } ])
  in
  let outputs =
    List.init n (fun i ->
        match sat_bound i with
        | Some u -> boxed u
        | None -> (
            (* generic chain on row i of D; if the exponential still
               overflows (a huge range that is not uniformly dominated),
               fall back to the universally valid sigma_i in [0, 1] *)
            let di = Zonotope.select_value_rows d i 1 in
            try
              let e = Elementwise.exp_ ctx di in
              let t = Zonotope.linear_map e (Mat.make n 1 1.0) [| 0.0 |] in
              Elementwise.recip ctx t
            with Zonotope.Unbounded -> boxed 1.0))
  in
  (* Stack the n scalar outputs into a 1 x n row. *)
  let stacked = Zonotope.of_rows outputs in
  Zonotope.transpose_value stacked

(* sigma_i = exp(nu_i) * recip(sum_j exp(nu_j)) — the CROWN-style
   composition, for the ablation. *)
let direct_row ctx row =
  Zonotope.check_deadline ctx;
  let n = row.Zonotope.vcols in
  let e = Elementwise.exp_ ctx row in
  let s = Zonotope.linear_map e (Mat.make n 1 1.0) [| 0.0 |] in
  let r = Elementwise.recip ctx s in
  (* Broadcast the scalar reciprocal across the row. *)
  let r_bcast =
    Zonotope.transpose_value (Zonotope.map_rows_affine r (Mat.make n 1 1.0))
  in
  Dot.mul_zz ctx e r_bcast

let apply_row ~form ~refine ctx row =
  if row.Zonotope.vrows <> 1 then invalid_arg "Softmax_t.apply_row: need 1 x N";
  let out =
    match (form : Config.softmax_form) with
    | Config.Stable -> stable_row ctx row
    | Config.Direct -> direct_row ctx row
  in
  if refine then Refinement.softmax_sum out else out

let apply ~form ~refine ctx z =
  (* Rows must stay sequential: each one allocates fresh eps symbols from
     the shared ctx, so their symbol ids depend on the order. Parallelism
     lives inside a row (map_rows_affine / bounds over n^2 variables). *)
  let rows =
    List.init z.Zonotope.vrows (fun r ->
        apply_row ~form ~refine ctx (Zonotope.select_value_rows z r 1))
  in
  Zonotope.of_rows rows
