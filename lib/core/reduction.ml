open Tensor

(* Same threshold as the Zonotope kernels: below ~32k coefficient reads
   the pool dispatch overhead dominates the O(nv·w) scan. *)
let par_threshold = 32_768

(* Shard over symbol {e columns}: each column's score accumulates in the
   same v-ascending order as the serial scan, and distinct chunks write
   distinct [s.(j)] slots — bit-identical for every pool size. (Sharding
   over variables would need per-chunk partial sums whose final
   combination reassociates the float additions.) *)
let scores ?pool (z : Zonotope.t) =
  let nv = Zonotope.num_vars z and w = Zonotope.num_eps z in
  let s = Array.make w 0.0 in
  let data = z.Zonotope.eps.Mat.data in
  (* Columns outside every occupancy band hold only ±0.0: the dense scan
     accumulates [abs (±0.0) = +0.0] there, leaving the initial 0.0 —
     skipping them is unconditionally bit-identical. *)
  let live = Bands.col_intervals ~cols:w z.Zonotope.eps_occ in
  let body start stop =
    for v = 0 to nv - 1 do
      let base = v * w in
      List.iter
        (fun (lo, hi) ->
          for j = max lo start to min hi stop - 1 do
            s.(j) <- s.(j) +. Float.abs (Array.unsafe_get data (base + j))
          done)
        live
    done
  in
  (match pool with
  | Some p when Dpool.size p > 1 && nv * w >= par_threshold ->
      let balance = 2 * Dpool.size p in
      Dpool.run_ranges p ~n:w
        ~chunk:(max ((w + balance - 1) / balance) 1)
        (fun ~start ~stop -> body start stop)
  | _ -> body 0 w);
  s

(* [top_k_indices s k] selects the [k] indices of [s] with the highest
   scores, ties broken towards the smaller index, and returns them sorted
   ascending. Equivalent to sorting all [w] indices by
   (score desc, index asc) and keeping the prefix — the top-k set under
   that total order is unique, so this matches the full sort bit-for-bit —
   but runs in O(w log k) with a k-element min-heap instead of O(w log w).
   At a transformer layer input w is the accumulated symbol count
   (thousands) while k is the retention budget (tens), so the partial
   selection is what keeps [decorrelate_min_k] cheap. *)
let top_k_indices (s : float array) k =
  let w = Array.length s in
  if k <= 0 then [||]
  else if k >= w then Array.init w (fun j -> j)
  else begin
    (* Min-heap of the current keep set, rooted at its worst element:
       [worse a b] is the strict order "a would be dropped before b". *)
    let heap = Array.make k 0 in
    let size = ref 0 in
    let worse a b =
      s.(a) < s.(b) || (s.(a) = s.(b) && a > b)
    in
    let swap i j =
      let t = heap.(i) in
      heap.(i) <- heap.(j);
      heap.(j) <- t
    in
    let rec sift_up i =
      if i > 0 then begin
        let parent = (i - 1) / 2 in
        if worse heap.(i) heap.(parent) then begin
          swap i parent;
          sift_up parent
        end
      end
    in
    let rec sift_down i =
      let l = (2 * i) + 1 and r = (2 * i) + 2 in
      let m = ref i in
      if l < !size && worse heap.(l) heap.(!m) then m := l;
      if r < !size && worse heap.(r) heap.(!m) then m := r;
      if !m <> i then begin
        swap i !m;
        sift_down !m
      end
    in
    for j = 0 to w - 1 do
      if !size < k then begin
        heap.(!size) <- j;
        incr size;
        sift_up (!size - 1)
      end
      else if worse heap.(0) j then begin
        heap.(0) <- j;
        sift_down 0
      end
    done;
    Array.sort compare heap;
    heap
  end

let decorrelate_min_k ctx (z : Zonotope.t) k =
  if k < 0 then invalid_arg "Reduction.decorrelate_min_k: negative k";
  let w = Zonotope.num_eps z in
  if w <= k then begin
    (* Under budget, but coverage-empty columns are still dead weight for
       every downstream op: drop them physically (no-op without bands). *)
    let z = Zonotope.compact z in
    Zonotope.reset_symbols ctx (Zonotope.num_eps z);
    z
  end
  else begin
    let pool = Zonotope.ctx_pool ctx in
    let s = scores ?pool z in
    let keep = top_k_indices s k in
    let dropped = Array.make w true in
    Array.iter (fun j -> dropped.(j) <- false) keep;
    let nv = Zonotope.num_vars z in
    (* Per-variable folded mass of the dropped symbols. Sharded over
       variables: each v folds in the serial j-ascending order and chunks
       write disjoint [fold.(v)] slots, so the result is bit-identical
       for every pool size. *)
    let fold = Array.make nv 0.0 in
    let data = z.Zonotope.eps.Mat.data in
    (* Dead columns contribute [abs (±0.0)] to the fold — skipping them
       is bit-identical, same argument as in [scores]. *)
    let live_row v =
      Bands.row_intervals ~lo:v ~hi:(v + 1) ~cols:w z.Zonotope.eps_occ
    in
    let fold_body start stop =
      for v = start to stop - 1 do
        let base = v * w in
        let acc = ref 0.0 in
        List.iter
          (fun (lo, hi) ->
            for j = lo to hi - 1 do
              if dropped.(j) then acc := !acc +. Float.abs data.(base + j)
            done)
          (live_row v);
        fold.(v) <- !acc
      done
    in
    (match pool with
    | Some p when Dpool.size p > 1 && nv * w >= par_threshold ->
        let balance = 2 * Dpool.size p in
        Dpool.run_ranges p ~n:nv
          ~chunk:(max ((nv + balance - 1) / balance) 1)
          (fun ~start ~stop -> fold_body start stop)
    | _ -> fold_body 0 nv);
    let fresh = Array.make nv (-1) in
    let n_new = ref 0 in
    Array.iteri
      (fun v m ->
        if m > 0.0 then begin
          fresh.(v) <- !n_new;
          incr n_new
        end)
      fold;
    let new_w = k + !n_new in
    let eps = Mat.create nv new_w in
    for v = 0 to nv - 1 do
      let base = v * w and obase = v * new_w in
      Array.iteri (fun t j -> eps.Mat.data.(obase + t) <- data.(base + j)) keep;
      if fresh.(v) >= 0 then eps.Mat.data.(obase + k + fresh.(v)) <- fold.(v)
    done;
    (* [keep] is sorted ascending, so old column j -> its keep position
       is a monotone remap; fold symbols get per-value-row bands. Then
       compact: zero-score kept columns are coverage-empty and can be
       dropped outright (identical radii — they are ±0.0 everywhere). *)
    let pos = Array.make w (-1) in
    Array.iteri (fun t j -> pos.(j) <- t) keep;
    let occ =
      Bands.union
        (Bands.remap_cols
           (fun j -> if j < w && pos.(j) >= 0 then Some pos.(j) else None)
           z.Zonotope.eps_occ)
        (Zonotope.fresh_bands ~fresh ~base:k ~rows:z.Zonotope.vrows
           ~per_row:z.Zonotope.vcols)
    in
    let out =
      Zonotope.make ~p:z.Zonotope.p ~center:(Mat.copy z.Zonotope.center)
        ~phi:(Mat.copy z.Zonotope.phi) ~eps
      |> Zonotope.with_eps_occ occ |> Zonotope.compact
    in
    Zonotope.reset_symbols ctx (Zonotope.num_eps out);
    out
  end
