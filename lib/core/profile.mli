(** Per-op profiling over the interpreter's trace stream.

    A collector aggregates {!Interp.event}s by op index: call count,
    summed wall-clock time, and the last observed domain size (live ε
    symbols for the zonotope) and bound width. Because one collector can
    absorb many propagations, feeding a whole certified-radius search
    into it yields the per-op cost profile of the entire query —
    [certify --profile] prints the table and writes
    [PROFILE_<model>.json]. *)

type row = {
  op_index : int;
  kind : string;  (** {!Ir.kind_name} *)
  mutable calls : int;  (** trace events seen for this op *)
  mutable wall_s : float;  (** summed transformer wall time *)
  mutable size : int;  (** last observed domain size (ε count) *)
  mutable width : float;  (** last observed bound width; nan = collapsed *)
  mutable density : float;
      (** last observed coefficient-storage density (live area / dense
          area, {!Interp.DOMAIN.density}); 1.0 for dense domains *)
}

type t

val create : unit -> t

val sink : t -> Interp.sink
(** The sink to install ([Config.with_trace (Some (Profile.sink p))] or
    [Interp.checks.trace]). *)

val rows : t -> row list
(** Aggregated rows in op order (ops never traced are absent). *)

val by_kind : t -> (string * (int * float)) list
(** [(kind, (calls, wall_s))] totals, ordered by first appearance. *)

val total_wall : t -> float

val pp : Format.formatter -> t -> unit
(** Per-op table followed by per-kind totals. *)

val to_json : ?model:string -> t -> string
(** JSON document (hand-rolled, dependency-free): [model],
    [total_wall_s], per-op [ops] array, per-kind [kinds] array.
    Non-finite widths serialize as [null]. *)

val save_json : ?model:string -> string -> t -> unit
(** [save_json ?model path t] writes {!to_json} to [path]. *)
