(** Resilient certification engine: fault containment and the
    graceful-degradation ladder.

    The paper's headline trade-off (DeepT-Precise vs DeepT-Fast vs
    Combined) is a precision/performance dial; this module manages that
    dial at runtime. One query = one walk down a {e ladder} of
    increasingly cheap configurations:

    + the requested config (Precise / Combined / Fast);
    + DeepT-Fast (if the requested config was more expensive);
    + DeepT-Fast with a quartered noise-symbol budget [reduction_k];
    + the interval (IBP) concretization of the region — the cheapest
      sound verifier in the repository.

    A rung that ends in a {e fault} — [Timeout], [Symbol_budget],
    [Numerical_fault], [Unbounded] — hands the query to the next rung; a
    rung that answers ([Certified], [Falsified]) or that cleanly fails on
    precision ([Unknown Imprecise] — descending cannot help precision)
    ends the walk. The outcome records every attempt, so a batch driver
    can report which rung rescued each query.

    Before any propagation the engine spends a few concrete forward
    passes looking for a counterexample inside the region; finding one
    short-circuits to [Falsified] (rung ["concrete"]).

    Soundness invariant: the verdict always comes from the rung named in
    the outcome, and a rung that raised a numerical fault can only
    contribute an [Unknown] — never [Certified]. *)

type rung =
  | Abstract of { rname : string; cfg : Config.t }
      (** one zonotope propagation under [cfg] *)
  | Box  (** interval concretization + IBP (rung name ["interval"]) *)

type attempt = { rung_name : string; verdict : Verdict.t }

type outcome = {
  verdict : Verdict.t;  (** final answer *)
  rung_name : string;  (** rung that produced it *)
  attempts : attempt list;  (** every rung tried, in order *)
}

val rung_name : rung -> string

val default_ladder : Config.t -> rung list
(** The ladder described above, derived from a starting config. The
    budget and fault spec of the starting config are inherited by every
    rung; {!Config.fault_spec.persist} bounds how many rungs the fault
    stays active for. *)

val certify :
  ?ladder:rung list ->
  ?falsify_samples:int ->
  Config.t -> Ir.program -> Zonotope.t -> true_class:int -> outcome
(** Walks the ladder (default {!default_ladder}). [falsify_samples]
    (default 8, 0 disables) bounds the concrete counterexample search;
    sampling is deterministic. The program's leading affine ops (the
    ViT patch embedding) are propagated once and shared across the
    zonotope rungs ({!Propagate.run_prefix}) — bit-identical to
    per-rung full runs, and disabled automatically under fault
    injection. @raise Invalid_argument on an empty explicit ladder. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** ["certified@fast (ladder: precise=unknown(timeout) fast=certified)"] *)
