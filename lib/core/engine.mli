(** Resilient certification engine: fault containment and the
    bidirectional precision ladder.

    The paper's headline trade-off (DeepT-Precise vs DeepT-Fast vs
    Combined) is a precision/performance dial; this module manages that
    dial at runtime. One query = one walk over a {e ladder} with two
    directions.

    {b Down} (graceful degradation, the original walk): increasingly
    cheap configurations —

    + the requested config (Precise / Combined / Fast);
    + DeepT-Fast (if the requested config was more expensive);
    + DeepT-Fast with a quartered noise-symbol budget [reduction_k];
    + the interval (IBP) concretization of the region — the cheapest
      sound verifier in the repository.

    A rung that ends in a {e fault} — [Timeout], [Symbol_budget],
    [Numerical_fault], [Unbounded] — hands the query to the next rung
    down; a rung that answers ([Certified], [Falsified]) ends the walk.

    {b Up} (refine-and-retry, {!Brefine}): when the {e requested} rung
    fails cleanly on precision ([Unknown Imprecise]) and the config opts
    in ([Config.refine]), the walk turns upward instead of stopping: the
    refine rung splits the strongest noise symbols and re-certifies the
    halves branch-and-bound style. Cheaper rungs never refine — they are
    coarser than the rung that already failed, so their refinement could
    not prove anything the requested rung's refinement would not. With
    [Config.refine = None] the up walk is empty and the engine behaves
    exactly as before refinement existed, bit-for-bit.

    The outcome records every attempt with its direction, so a batch
    driver can report which rung rescued each query.

    Before any propagation the engine spends a few concrete forward
    passes looking for a counterexample inside the region; finding one
    short-circuits to [Falsified] (rung ["concrete"]). Refinement can
    never flip that — the up walk only fires on [Unknown Imprecise], and
    a branch verdict is margin-only ([Certified] or [Unknown], never
    [Falsified]).

    Soundness invariant: the verdict always comes from the rung named in
    the outcome, and a rung that raised a numerical fault can only
    contribute an [Unknown] — never [Certified]. *)

type rung =
  | Abstract of { rname : string; cfg : Config.t }
      (** one zonotope propagation under [cfg] *)
  | Box  (** interval concretization + IBP (rung name ["interval"]) *)
  | Refine of { rname : string; cfg : Config.t }
      (** branch-and-bound refinement under [cfg] (which must carry
          [refine = Some _]); rung name ["refine"] in the default
          ladder *)

type direction =
  | Down  (** degradation: this attempt ran a cheaper configuration *)
  | Up  (** refinement: this attempt split symbols and retried *)

type attempt = { rung_name : string; verdict : Verdict.t; direction : direction }

type outcome = {
  verdict : Verdict.t;  (** final answer *)
  rung_name : string;  (** rung that produced it *)
  attempts : attempt list;  (** every rung tried, in order *)
}

type ladder = { down : rung list; up : rung list }
(** The walk: [down] is tried first (head = the requested rung); [up]
    is entered only when the first down rung returns
    [Unknown Imprecise]. *)

val rung_name : rung -> string

val ladder : ?up:rung list -> rung list -> ladder
(** [ladder ?up down] — [up] defaults to empty (no refinement).
    @raise Invalid_argument on an empty [down] walk. *)

val default_ladder : Config.t -> rung list
(** The downward walk described above, derived from a starting config.
    The budget and fault spec of the starting config are inherited by
    every rung; {!Config.fault_spec.persist} bounds how many ladder
    attempts the fault stays active for. *)

val refine_rungs : Config.t -> rung list
(** The upward walk: [[Refine _]] when the config carries a refine
    policy, [[]] otherwise. *)

val ladder_of : Config.t -> ladder
(** [{ down = default_ladder cfg; up = refine_rungs cfg }] — what
    {!certify} walks by default. *)

val certify :
  ?ladder:ladder ->
  ?falsify_samples:int ->
  Config.t -> Ir.program -> Zonotope.t -> true_class:int -> outcome
(** Walks the ladder (default {!ladder_of}). [falsify_samples]
    (default 8, 0 disables) bounds the concrete counterexample search;
    sampling is deterministic. The program's leading affine ops (the
    ViT patch embedding) are propagated once and shared across the
    zonotope rungs ({!Propagate.run_prefix}) — bit-identical to
    per-rung full runs, and disabled automatically under fault
    injection; refine rungs re-propagate in full (branch regions differ
    from the input region). @raise Invalid_argument on an empty
    explicit down walk. *)

val pp_outcome : Format.formatter -> outcome -> unit
(** ["certified@fast (ladder: precise=unknown(timeout) fast=certified)"] *)
