type entry = {
  job : int;
  verdict : Verdict.t;
  rung : string;
  attempts : int;
  retries : int;
  wall_s : float;
  detail : string;
}

(* ---------------- flat JSON, hand-rolled ----------------

   The toolchain ships no JSON library, and the journal only ever holds
   one flat object of known fields per line, so a tiny strict
   encoder/decoder keeps the dependency surface at zero. *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json e =
  Printf.sprintf
    "{\"job\":%d,\"verdict\":\"%s\",\"rung\":\"%s\",\"attempts\":%d,\"retries\":%d,\"wall_s\":%.6f,\"detail\":\"%s\"}"
    e.job
    (escape (Verdict.to_string e.verdict))
    (escape e.rung) e.attempts e.retries e.wall_s (escape e.detail)

(* Values are strings or numbers; that is all the journal ever emits. *)
type jvalue = Jstring of string | Jnumber of float

exception Parse of string

let parse_line line =
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Parse (Printf.sprintf "%s at column %d" msg !pos)) in
  let peek () = if !pos < n then Some line.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while !pos < n && (line.[!pos] = ' ' || line.[!pos] = '\t') do advance () done
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> Buffer.add_char b '"'; advance (); go ()
          | Some '\\' -> Buffer.add_char b '\\'; advance (); go ()
          | Some 'n' -> Buffer.add_char b '\n'; advance (); go ()
          | Some 'r' -> Buffer.add_char b '\r'; advance (); go ()
          | Some 't' -> Buffer.add_char b '\t'; advance (); go ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "truncated \\u escape";
              let hex = String.sub line (!pos + 1) 4 in
              (match int_of_string_opt ("0x" ^ hex) with
              | Some c when c < 0x80 -> Buffer.add_char b (Char.chr c)
              | _ -> fail "unsupported \\u escape");
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c -> Buffer.add_char b c; advance (); go ()
    in
    go ();
    Buffer.contents b
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match line.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub line start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstring (string_lit ())
    | _ -> Jnumber (number ())
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  (if peek () = Some '}' then advance ()
   else
     let rec members () =
       let k = string_lit () in
       expect ':';
       let v = value () in
       if List.mem_assoc k !fields then fail ("duplicate field " ^ k);
       fields := (k, v) :: !fields;
       skip_ws ();
       match peek () with
       | Some ',' -> advance (); skip_ws (); members ()
       | Some '}' -> advance ()
       | _ -> fail "expected ',' or '}'"
     in
     members ());
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  !fields

let of_json line =
  match parse_line line with
  | exception Parse msg -> Error msg
  | fields -> (
      let known =
        [ "job"; "verdict"; "rung"; "attempts"; "retries"; "wall_s"; "detail" ]
      in
      match List.find_opt (fun (k, _) -> not (List.mem k known)) fields with
      | Some (k, _) -> Error ("unknown field " ^ k)
      | None -> (
          let str k =
            match List.assoc_opt k fields with
            | Some (Jstring s) -> Ok s
            | Some (Jnumber _) -> Error ("field " ^ k ^ " must be a string")
            | None -> Error ("missing field " ^ k)
          in
          let num k =
            match List.assoc_opt k fields with
            | Some (Jnumber f) -> Ok f
            | Some (Jstring _) -> Error ("field " ^ k ^ " must be a number")
            | None -> Error ("missing field " ^ k)
          in
          let int k =
            Result.bind (num k) (fun f ->
                if Float.is_integer f then Ok (int_of_float f)
                else Error ("field " ^ k ^ " must be an integer"))
          in
          let ( let* ) = Result.bind in
          let* job = int "job" in
          let* vs = str "verdict" in
          let* rung = str "rung" in
          let* attempts = int "attempts" in
          let* retries = int "retries" in
          let* wall_s = num "wall_s" in
          let* detail = str "detail" in
          match Verdict.of_string vs with
          | None -> Error ("bad verdict " ^ vs)
          | Some verdict ->
              Ok { job; verdict; rung; attempts; retries; wall_s; detail }))

(* ---------------- the journal file ---------------- *)

type t = {
  jpath : string;
  mutable rev_entries : entry list;  (* newest first *)
  mutable ids : (int, unit) Hashtbl.t;
}

let path j = j.jpath
let entries j = List.rev j.rev_entries
let journaled j id = Hashtbl.mem j.ids id

let of_entries jpath es =
  let ids = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace ids e.job ()) es;
  { jpath; rev_entries = List.rev es; ids }

let create jpath = of_entries jpath []

let load jpath =
  let ic = open_in jpath in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let rec go lineno acc =
        match input_line ic with
        | exception End_of_file -> List.rev acc
        | "" -> go (lineno + 1) acc
        | line -> (
            match of_json line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error msg ->
                failwith
                  (Printf.sprintf "Journal.load: %s:%d: %s" jpath lineno msg))
      in
      go 1 [])

let resume jpath =
  (* An interrupted append can leave a stale temp file; the journal
     itself is always a complete snapshot thanks to the atomic rename. *)
  (try Sys.remove (jpath ^ ".tmp") with Sys_error _ -> ());
  let es = if Sys.file_exists jpath then load jpath else [] in
  of_entries jpath es

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* best effort, e.g. exotic fs *)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let append j e =
  if journaled j e.job then
    invalid_arg
      (Printf.sprintf "Journal.append: job %d already journaled" e.job);
  j.rev_entries <- e :: j.rev_entries;
  Hashtbl.replace j.ids e.job ();
  let tmp = j.jpath ^ ".tmp" in
  let oc = open_out tmp in
  (try
     List.iter
       (fun e ->
         output_string oc (to_json e);
         output_char oc '\n')
       (entries j);
     flush oc;
     Unix.fsync (Unix.descr_of_out_channel oc);
     close_out oc
   with exn ->
     close_out_noerr oc;
     raise exn);
  Unix.rename tmp j.jpath;
  fsync_dir (Filename.dirname j.jpath)
