type entry = {
  job : int;
  verdict : Verdict.t;
  rung : string;
  attempts : int;
  retries : int;
  wall_s : float;
  detail : string;
}

let to_json e =
  Printf.sprintf
    "{\"job\":%d,\"verdict\":\"%s\",\"rung\":\"%s\",\"attempts\":%d,\"retries\":%d,\"wall_s\":%.6f,\"detail\":\"%s\"}"
    e.job
    (Jsonl.escape (Verdict.to_string e.verdict))
    (Jsonl.escape e.rung) e.attempts e.retries e.wall_s (Jsonl.escape e.detail)

let of_json line =
  let ( let* ) = Result.bind in
  let* fields = Jsonl.parse line in
  let* () =
    Jsonl.known fields
      [ "job"; "verdict"; "rung"; "attempts"; "retries"; "wall_s"; "detail" ]
  in
  let* job = Jsonl.int fields "job" in
  let* vs = Jsonl.str fields "verdict" in
  let* rung = Jsonl.str fields "rung" in
  let* attempts = Jsonl.int fields "attempts" in
  let* retries = Jsonl.int fields "retries" in
  let* wall_s = Jsonl.num fields "wall_s" in
  let* detail = Jsonl.str fields "detail" in
  let* verdict = Verdict.of_string_res vs in
  Ok { job; verdict; rung; attempts; retries; wall_s; detail }

(* ---------------- the journal file ----------------

   True append-only JSONL: every {!append} writes one line and fsyncs
   it, so the cost of journaling a job is O(1), not O(jobs) — the
   daemon journals every accepted job of an unbounded run through this
   path. The price of in-place appends is that a crash (power loss,
   SIGKILL) can tear the final line mid-write; recovery therefore
   treats exactly one trailing unparseable line as the expected crash
   artifact — skipped with a warning, truncated away on {!resume} so
   subsequent appends extend a well-formed file. Corruption anywhere
   else stays loud. *)

type t = {
  jpath : string;
  mutable rev_entries : entry list;  (* newest first *)
  mutable ids : (int, unit) Hashtbl.t;
  mutable fd : Unix.file_descr option;  (* open lazily on first append *)
  mutable truncate_on_open : bool;  (* [create]: replace an old file *)
}

let path j = j.jpath
let entries j = List.rev j.rev_entries
let journaled j id = Hashtbl.mem j.ids id

let of_entries jpath ~truncate_on_open es =
  let ids = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace ids e.job ()) es;
  { jpath; rev_entries = List.rev es; ids; fd = None; truncate_on_open }

let create jpath = of_entries jpath ~truncate_on_open:true []

(* Read the file, tolerating a torn final line. Returns the entries of
   every well-formed line and, when the tail is torn, the byte offset
   where the damage starts plus a diagnostic. *)
let load_tail jpath =
  let content =
    let ic = open_in_bin jpath in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let len = String.length content in
  let rec go start lineno acc =
    if start >= len then (List.rev acc, None)
    else
      let stop =
        match String.index_from_opt content start '\n' with
        | Some i -> i
        | None -> len
      in
      let line = String.sub content start (stop - start) in
      let next = stop + 1 in
      if line = "" then go next (lineno + 1) acc
      else
        match of_json line with
        | Ok e -> go next (lineno + 1) (e :: acc)
        | Error msg ->
            (* Only the final line of the file may fail — that is the
               signature of an append torn by a crash. *)
            let rest_blank =
              let rec blank i =
                i >= len || ((content.[i] = '\n' || content.[i] = ' ') && blank (i + 1))
              in
              blank next
            in
            if rest_blank then
              ( List.rev acc,
                Some
                  ( start,
                    Printf.sprintf "%s:%d: torn final line (%s)" jpath lineno
                      msg ) )
            else
              failwith (Printf.sprintf "Journal.load: %s:%d: %s" jpath lineno msg)
  in
  go 0 1 []

let load jpath =
  let es, torn = load_tail jpath in
  (match torn with
  | Some (_, msg) ->
      Printf.eprintf "journal: warning: skipping %s\n%!" msg
  | None -> ());
  es

let resume jpath =
  (* Journals written before the append-only rewrite could leave a stale
     temp file from their tmp+rename discipline; still clean it up. *)
  (try Sys.remove (jpath ^ ".tmp") with Sys_error _ -> ());
  if not (Sys.file_exists jpath) then of_entries jpath ~truncate_on_open:false []
  else begin
    let es, torn = load_tail jpath in
    (match torn with
    | Some (offset, msg) ->
        Printf.eprintf "journal: warning: dropping %s\n%!" msg;
        (* Cut the torn bytes so future appends extend a clean file. *)
        let fd = Unix.openfile jpath [ Unix.O_WRONLY ] 0o644 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () -> Sysio.ftruncate ~site:"journal.truncate" fd offset)
    | None -> ());
    of_entries jpath ~truncate_on_open:false es
  end

let fsync_dir ~site dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()  (* best effort, e.g. exotic fs *)
  | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () -> try Sysio.fsync ~site fd with Unix.Unix_error _ -> ())

let descr j =
  match j.fd with
  | Some fd -> fd
  | None ->
      let flags =
        if j.truncate_on_open then
          [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
        else [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
      in
      let fd = Unix.openfile j.jpath flags 0o644 in
      j.fd <- Some fd;
      j.truncate_on_open <- false;
      (* make the file's directory entry durable once *)
      fsync_dir ~site:"journal.dir" (Filename.dirname j.jpath);
      fd

let append j e =
  if journaled j e.job then
    invalid_arg
      (Printf.sprintf "Journal.append: job %d already journaled" e.job);
  j.rev_entries <- e :: j.rev_entries;
  Hashtbl.replace j.ids e.job ();
  let fd = descr j in
  (* One unbuffered write per line through the Sysio shim: partial
     writes are looped, EINTR restarted, and the chaos layer can tear
     or fail the append at any byte (see Sysio / bin/crashprobe). *)
  Sysio.write_string ~site:"journal.append" fd (to_json e ^ "\n");
  Sysio.fsync ~site:"journal.fsync" fd
