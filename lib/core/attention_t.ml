open Tensor

let apply ~(cfg : Config.t) ~precise ctx (att : Ir.attention) x =
  let pool = Zonotope.ctx_pool ctx in
  let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
  let dk = adk / att.heads and dv = adv / att.heads in
  let q = Zonotope.linear_map ?pool x att.wq att.bq in
  let k = Zonotope.linear_map ?pool x att.wk att.bk in
  let v = Zonotope.linear_map ?pool x att.wv att.bv in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let order = cfg.Config.order in
  let heads =
    List.init att.heads (fun h ->
        let qh = Zonotope.select_value_cols q (h * dk) dk in
        let kh = Zonotope.select_value_cols k (h * dk) dk in
        let vh = Zonotope.select_value_cols v (h * dv) dv in
        let scores =
          Zonotope.scale scale
            (Dot.matmul_zz ~precise ~order ctx qh (Zonotope.transpose_value kh))
        in
        let p =
          Softmax_t.apply ~form:cfg.Config.softmax
            ~refine:cfg.Config.refine_softmax_sum ctx scores
        in
        Dot.matmul_zz ~precise ~order ctx p vh)
  in
  let z =
    match heads with
    | [] -> invalid_arg "Attention_t.apply: no heads"
    | h :: rest -> List.fold_left Zonotope.hcat_value h rest
  in
  Zonotope.linear_map ?pool z att.wo att.bo
