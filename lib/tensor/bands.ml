(* Column-band occupancy: a small over-approximation of the nonzero
   support of a coefficient matrix. See bands.mli for the invariant
   (outside the band union |x| = 0.0; inside, no promise) and for why
   [full] is always a sound fallback.

   Everything here is shape-relative: a [t] carries no matrix
   dimensions of its own, and [Full] means "all of whatever matrix this
   annotates". Extractors take the concrete shape and clip. *)

type band = { col_lo : int; col_hi : int; row_lo : int; row_hi : int }
type t = Full | Bands of band list

let enabled =
  match Sys.getenv_opt "DEEPT_NO_SPARSE" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let full = Full
let empty = Bands []

(* Bands are maintained per value row of the op that minted the
   symbols, so a deep network accumulates one band per (nonlinear op x
   value row). Past this cap neighbouring bands (sorted by column) are
   coalesced into bounding boxes — coarser but still sound, and it
   keeps every kernel-side scan O(1)-ish. *)
let max_bands = 128

let degenerate b = b.col_lo >= b.col_hi || b.row_lo >= b.row_hi

let contains outer inner =
  outer.col_lo <= inner.col_lo
  && inner.col_hi <= outer.col_hi
  && outer.row_lo <= inner.row_lo
  && inner.row_hi <= outer.row_hi

let bbox a b =
  {
    col_lo = min a.col_lo b.col_lo;
    col_hi = max a.col_hi b.col_hi;
    row_lo = min a.row_lo b.row_lo;
    row_hi = max a.row_hi b.row_hi;
  }

(* Merge exactly when the union is itself a rectangle (containment, or
   equal rows with touching columns, or equal columns with touching
   rows) — those merges lose nothing. *)
let try_merge a b =
  if contains a b then Some a
  else if contains b a then Some b
  else if
    a.row_lo = b.row_lo && a.row_hi = b.row_hi && b.col_lo <= a.col_hi
    && a.col_lo <= b.col_hi
  then Some { a with col_lo = min a.col_lo b.col_lo; col_hi = max a.col_hi b.col_hi }
  else if
    a.col_lo = b.col_lo && a.col_hi = b.col_hi && b.row_lo <= a.row_hi
    && a.row_lo <= b.row_hi
  then Some { a with row_lo = min a.row_lo b.row_lo; row_hi = max a.row_hi b.row_hi }
  else None

let rec cap bs =
  if List.length bs <= max_bands then bs
  else
    let rec pairup = function
      | a :: b :: tl -> bbox a b :: pairup tl
      | l -> l
    in
    cap (pairup bs)

let normalize bs =
  let bs = List.filter (fun b -> not (degenerate b)) bs in
  let bs =
    List.sort
      (fun a b ->
        if a.col_lo <> b.col_lo then compare a.col_lo b.col_lo
        else if a.row_lo <> b.row_lo then compare a.row_lo b.row_lo
        else if a.col_hi <> b.col_hi then compare a.col_hi b.col_hi
        else compare a.row_hi b.row_hi)
      bs
  in
  (* Linear merge against the accumulator head; a merged band keeps the
     head's col_lo, so the list stays sorted and two passes catch the
     chains one pass leaves behind. *)
  let pass bs =
    List.rev
      (List.fold_left
         (fun acc b ->
           match acc with
           | prev :: tl -> (
               match try_merge prev b with
               | Some m -> m :: tl
               | None -> b :: prev :: tl)
           | [] -> [ b ])
         [] bs)
  in
  cap (pass (pass bs))

let of_bands bs = Bands (normalize bs)

let clip ~rows ~cols b =
  {
    col_lo = max 0 b.col_lo;
    col_hi = min cols b.col_hi;
    row_lo = max 0 b.row_lo;
    row_hi = min rows b.row_hi;
  }

let to_bands ~rows ~cols = function
  | Full ->
      if rows > 0 && cols > 0 then
        [ { col_lo = 0; col_hi = cols; row_lo = 0; row_hi = rows } ]
      else []
  | Bands bs ->
      List.filter
        (fun b -> not (degenerate b))
        (List.map (clip ~rows ~cols) bs)

let is_full = function Full -> true | Bands _ -> false

let is_empty t = enabled && match t with Bands [] -> true | _ -> false

let add t b =
  match t with Full -> Full | Bands bs -> of_bands (b :: bs)

let union a b =
  match (a, b) with
  | Full, _ | _, Full -> Full
  | Bands xs, Bands ys -> of_bands (xs @ ys)

let map_bands f = function
  | Full -> Full
  | Bands bs -> of_bands (List.map f bs)

let shift_rows d t =
  map_bands (fun b -> { b with row_lo = b.row_lo + d; row_hi = b.row_hi + d }) t

let restrict_rows ~lo ~hi t =
  match t with
  | Full -> Full
  | Bands bs ->
      of_bands
        (List.filter_map
           (fun b ->
             let rlo = max lo b.row_lo and rhi = min hi b.row_hi in
             if rlo < rhi then
               Some { b with row_lo = rlo - lo; row_hi = rhi - lo }
             else None)
           bs)

let widen_rows ~rows t =
  map_bands (fun b -> { b with row_lo = 0; row_hi = rows }) t

let block_rows ~bin ~bout t =
  if bin <= 0 || bout <= 0 then Full
  else
    map_bands
      (fun b ->
        {
          b with
          row_lo = b.row_lo / bin * bout;
          row_hi = (b.row_hi + bin - 1) / bin * bout;
        })
      t

(* Sorted, disjoint union of half-open intervals. *)
let merge_intervals ivs =
  let ivs = List.sort compare ivs in
  List.rev
    (List.fold_left
       (fun acc (lo, hi) ->
         match acc with
         | (plo, phi) :: tl when lo <= phi -> (plo, max phi hi) :: tl
         | _ -> (lo, hi) :: acc)
       [] ivs)

let col_intervals ~cols t =
  if cols <= 0 then []
  else
    match t with
    | Full -> [ (0, cols) ]
    | _ when not enabled -> [ (0, cols) ]
    | Bands bs ->
        merge_intervals
          (List.filter_map
             (fun b ->
               let lo = max 0 b.col_lo and hi = min cols b.col_hi in
               if lo < hi then Some (lo, hi) else None)
             bs)

let row_intervals ~lo ~hi ~cols t =
  if cols <= 0 then []
  else
    match t with
    | Full -> [ (0, cols) ]
    | _ when not enabled -> [ (0, cols) ]
    | Bands bs ->
        merge_intervals
          (List.filter_map
             (fun b ->
               if b.row_lo < hi && lo < b.row_hi then begin
                 let clo = max 0 b.col_lo and chi = min cols b.col_hi in
                 if clo < chi then Some (clo, chi) else None
               end
               else None)
             bs)

let dead_cols ~cols t =
  let n = max 0 cols in
  match t with
  | Full -> Array.make n false
  | _ when not enabled -> Array.make n false
  | Bands bs ->
      let dead = Array.make n true in
      List.iter
        (fun b ->
          for c = max 0 b.col_lo to min n b.col_hi - 1 do
            dead.(c) <- false
          done)
        bs;
      dead

let remap_cols f t =
  match t with
  | Full -> Full
  | Bands bs ->
      of_bands
        (List.filter_map
           (fun b ->
             (* f is monotone on kept columns, so the image of a
                contiguous range is contiguous: min/max of the kept
                images bound it exactly. *)
             let nlo = ref max_int and nhi = ref min_int in
             for c = b.col_lo to b.col_hi - 1 do
               match f c with
               | Some c' ->
                   if c' < !nlo then nlo := c';
                   if c' + 1 > !nhi then nhi := c' + 1
               | None -> ()
             done;
             if !nlo < !nhi then Some { b with col_lo = !nlo; col_hi = !nhi }
             else None)
           bs)

let mem t ~row ~col =
  match t with
  | Full -> true
  | _ when not enabled -> true
  | Bands bs ->
      List.exists
        (fun b ->
          b.col_lo <= col && col < b.col_hi && b.row_lo <= row && row < b.row_hi)
        bs

let area ~rows ~cols t =
  match t with
  | Full -> max 0 rows * max 0 cols
  | Bands bs -> (
      match to_bands ~rows ~cols (Bands bs) with
      | [] -> 0
      | bs ->
          (* Coordinate-compressed sweep over row slabs: slab edges
             include every band's row boundaries, so within a slab each
             band either covers it fully or misses it, and the live
             width is the merged column-interval length. Overlaps count
             once. *)
          let edges =
            List.sort_uniq compare
              (List.concat_map (fun b -> [ b.row_lo; b.row_hi ]) bs)
          in
          let rec slabs acc = function
            | r0 :: (r1 :: _ as tl) ->
                let width =
                  List.fold_left
                    (fun w (lo, hi) -> w + hi - lo)
                    0
                    (merge_intervals
                       (List.filter_map
                          (fun b ->
                            if b.row_lo <= r0 && r1 <= b.row_hi then
                              Some (b.col_lo, b.col_hi)
                            else None)
                          bs))
                in
                slabs (acc + ((r1 - r0) * width)) tl
            | _ -> acc
          in
          slabs 0 edges)

let density ~rows ~cols t =
  let total = rows * cols in
  if total <= 0 then 1.0
  else
    match t with
    | Full -> 1.0
    | Bands _ -> float_of_int (area ~rows ~cols t) /. float_of_int total

let pp ppf = function
  | Full -> Format.fprintf ppf "full"
  | Bands bs ->
      Format.fprintf ppf "@[<h>%d band(s):" (List.length bs);
      List.iter
        (fun b ->
          Format.fprintf ppf " c[%d,%d)r[%d,%d)" b.col_lo b.col_hi b.row_lo
            b.row_hi)
        bs;
      Format.fprintf ppf "@]"
