(** Shared-memory arena: zero-copy transport for large matrices across
    [fork].

    A MAP_SHARED [Unix.map_file] mapping of an unlinked temp file. The
    supervisor creates the arena {e before} forking workers, writes big
    coefficient matrices into it, and ships only [(offset, rows, cols)]
    descriptors over the job pipes; workers read the floats in place
    (optionally through a {!Bigmat} view, with no copy at all).

    {b Ownership.} Only the creating process may call {!alloc}/{!free};
    the free list lives in its heap and is invisible to workers, so a
    worker killed mid-job cannot corrupt allocator state — the parent
    frees the job's blocks once the supervisor has collected the result
    (or the death), and the arena is immediately reusable.

    {b Escape hatch.} [DEEPT_NO_SHM=1] (mirroring [MAT_NAIVE=1]) makes
    {!available} report [false]; callers then keep everything on the
    plain [Marshal] path. *)

type t

val available : unit -> bool
(** [false] iff [DEEPT_NO_SHM] is set (to anything but ["0"] or [""]). *)

val create : floats:int -> t
(** Map a fresh arena of [floats] float64 slots. The backing temp file
    is unlinked immediately, so no stale file can outlive the
    processes. *)

val capacity : t -> int
(** Arena size in floats. *)

val avail : t -> int
(** Free floats (sum of the free list) — [capacity] when no block is
    live. Owner process only. *)

val alloc : t -> int -> int option
(** First-fit allocation of [n] floats; [None] when no free block is
    large enough. Owner process only
    (@raise Invalid_argument otherwise). *)

val free : t -> off:int -> len:int -> unit
(** Return a block, coalescing adjacent free ranges. Owner process only.
    @raise Invalid_argument on overlap or out-of-range. *)

val write_floats : t -> off:int -> float array -> unit
val read_floats : t -> off:int -> int -> float array

(** {1 Matrix descriptors}

    The small marshallable values that replace whole matrices on the
    job pipe. *)

type mat_desc =
  | Inline of Mat.t
      (** below {!default_threshold} (or the arena was full): the matrix
          itself travels by [Marshal], exactly as before this layer *)
  | Block of { off : int; rows : int; cols : int }
      (** the matrix lives in the arena at [off] *)
  | Banded of {
      off : int;
      rows : int;
      cols : int;
      intervals : (int * int) list;
    }
      (** only the live column ranges [intervals] (sorted, disjoint,
          half-open) are stored at [off], row-major concatenated; all
          other entries unpack to [+0.0]. Produced by {!pack_mat} when
          the caller supplies column occupancy ([?cols]) covering less
          than the full width. *)

val default_threshold : int
(** Matrices smaller than this many floats stay [Inline] (131072 floats
    = 1 MiB: the recorded ≥ 1344-symbol coefficient blocks go to the
    arena, smaller ones keep the cheaper Marshal path). *)

val pack_mat : ?threshold:int -> ?cols:(int * int) list -> t -> Mat.t -> mat_desc
(** Copy the matrix into the arena if it is big enough and space
    permits; degrade to [Inline] otherwise (never fails). Owner process
    only.

    [cols] (sorted disjoint half-open live column intervals, typically
    [Bands.col_intervals]) switches to the [Banded] encoding when it
    covers less than the full width: only the live columns are written
    to the arena, and the caller asserts everything outside them is
    ±0.0 (dead entries later unpack as [+0.0]). The [threshold] then
    applies to the stored (live) size.
    @raise Invalid_argument on unsorted/overlapping/out-of-range
    intervals. *)

val unpack_mat : t -> mat_desc -> Mat.t
(** Bit-exact copy out (any process sharing the mapping); a [Banded]
    block scatters into a zero-filled matrix, so dead entries are
    canonical [+0.0]. *)

val view_mat : t -> mat_desc -> Bigmat.t
(** Zero-copy {!Bigmat} view of a [Block] (an [Inline] matrix is copied
    into a fresh buffer; a [Banded] block is scatter-copied — the
    transport still shipped only its live columns). *)

val free_mat : t -> mat_desc -> unit
(** Return a [Block]'s storage; no-op on [Inline]. Owner process only. *)

val desc_floats : mat_desc -> int
(** Arena floats a descriptor holds (0 for [Inline]). *)
