type t = { rows : int; cols : int; data : float array }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Mat: negative dimension"

let create rows cols =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let make rows cols v =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  check_dims rows cols;
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      Array.unsafe_set data (base + j) (f i j)
    done
  done;
  { rows; cols; data }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_array: size mismatch";
  { rows; cols; data }

let of_rows rws =
  let rows = Array.length rws in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length rws.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
      rws;
    init rows cols (fun i j -> rws.(i).(j))
  end

let row_vector v = { rows = 1; cols = Array.length v; data = Array.copy v }
let col_vector v = { rows = Array.length v; cols = 1; data = Array.copy v }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let random_uniform rng rows cols s =
  init rows cols (fun _ _ -> Rng.uniform rng (-.s) s)

let random_gaussian rng rows cols std =
  init rows cols (fun _ _ -> Rng.gaussian_scaled rng ~mean:0.0 ~std)

let copy m = { m with data = Array.copy m.data }

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get";
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set";
  Array.unsafe_set m.data ((i * m.cols) + j) v

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col";
  Array.init m.rows (fun i -> Array.unsafe_get m.data ((i * m.cols) + j))

let to_rows m = Array.init m.rows (fun i -> row m i)

let transpose m =
  init m.cols m.rows (fun i j -> Array.unsafe_get m.data ((j * m.cols) + i))

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  let cols = a.cols + b.cols in
  let data = Array.make (a.rows * cols) 0.0 in
  for i = 0 to a.rows - 1 do
    Array.blit a.data (i * a.cols) data (i * cols) a.cols;
    Array.blit b.data (i * b.cols) data ((i * cols) + a.cols) b.cols
  done;
  { rows = a.rows; cols; data }

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  let data = Array.append a.data b.data in
  { rows = a.rows + b.rows; cols = a.cols; data }

let sub_rows m start n =
  if start < 0 || n < 0 || start + n > m.rows then invalid_arg "Mat.sub_rows";
  { rows = n; cols = m.cols; data = Array.sub m.data (start * m.cols) (n * m.cols) }

let sub_cols m start n =
  if start < 0 || n < 0 || start + n > m.cols then invalid_arg "Mat.sub_cols";
  init m.rows n (fun i j -> Array.unsafe_get m.data ((i * m.cols) + start + j))

let reshape m ~rows ~cols =
  if rows * cols <> m.rows * m.cols then invalid_arg "Mat.reshape: size mismatch";
  { rows; cols; data = Array.copy m.data }

let select_cols m idx =
  Array.iter (fun j -> if j < 0 || j >= m.cols then invalid_arg "Mat.select_cols") idx;
  init m.rows (Array.length idx) (fun i k ->
      Array.unsafe_get m.data ((i * m.cols) + Array.unsafe_get idx k))

let map f m = { m with data = Array.map f m.data }

let mapi f m =
  init m.rows m.cols (fun i j -> f i j (Array.unsafe_get m.data ((i * m.cols) + j)))

let zip f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.zip: shape mismatch";
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done;
  { a with data }

let add a b = zip ( +. ) a b
let sub a b = zip ( -. ) a b
let mul a b = zip ( *. ) a b
let scale s m = map (fun x -> s *. x) m
let add_scalar s m = map (fun x -> s +. x) m
let abs m = map Float.abs m
let neg m = map Float.neg m

let add_in_place dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Mat.add_in_place: shape mismatch";
  for i = 0 to Array.length dst.data - 1 do
    Array.unsafe_set dst.data i
      (Array.unsafe_get dst.data i +. Array.unsafe_get src.data i)
  done

let axpy a x y =
  if x.rows <> y.rows || x.cols <> y.cols then invalid_arg "Mat.axpy: shape mismatch";
  for i = 0 to Array.length y.data - 1 do
    Array.unsafe_set y.data i
      (Array.unsafe_get y.data i +. (a *. Array.unsafe_get x.data i))
  done

let scale_in_place s m =
  for i = 0 to Array.length m.data - 1 do
    Array.unsafe_set m.data i (s *. Array.unsafe_get m.data i)
  done

let fill m v = Array.fill m.data 0 (Array.length m.data) v

(* ---------------- matrix products ----------------

   Three kernels compute the same sums in the same order (ascending over
   the inner dimension), so their results are bit-identical on finite
   data and certification verdicts do not depend on which one ran:

   - [matmul_naive]: the original i-k-j kernel, kept verbatim as the
     reference implementation and as the [MAT_NAIVE=1] escape hatch.
   - blocked: a register-tiled kernel (2 output rows x 4 output columns
     accumulated in registers over the full inner dimension) that does
     ~1 load per multiply-add where the naive kernel does a load and a
     store of the output per multiply-add. 2-3x faster on the small-k
     products certification is made of.
   - blocked + pool: the blocked kernel sharded over disjoint output-row
     ranges on a [Dpool]. Chunk boundaries depend only on the problem
     size, and every output row is computed by exactly one chunk with
     the same arithmetic, so pool size cannot change a single bit.

   All kernels skip zero left-hand entries exactly like the original
   naive kernel: this keeps genuine sparsity in the coefficient blocks
   cheap, and — more importantly — preserves the annihilation semantics
   a zero weight must have even against an infinite coefficient
   (0 * inf is NaN in IEEE, but a zero weight means the input provably
   does not contribute). The skip is always on the same operand, so
   blocked and naive results agree bit-for-bit on infinities too. *)

(* i-k-j loop order: the inner loop walks both [b] and [out] contiguously. *)
let matmul_naive a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    let arow = i * k and orow = i * n in
    for p = 0 to k - 1 do
      let aip = Array.unsafe_get a.data (arow + p) in
      if aip <> 0.0 then begin
        let brow = p * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (orow + j)
            (Array.unsafe_get out (orow + j)
            +. (aip *. Array.unsafe_get b.data (brow + j)))
        done
      end
    done
  done;
  { rows = m; cols = n; data = out }

let use_naive =
  match Sys.getenv_opt "MAT_NAIVE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

(* Columns are processed in tiles of this many output columns: the tile
   of [b] ([k] rows x [jtile] columns, ~23 KB at k = 24) stays in L1
   across every row of the output instead of being re-streamed from L2/L3
   once per row pair. Tiling only reorders {e which} outputs are computed
   when — each output is still one full-[k] ascending dot product — so it
   cannot change a bit of the result. *)
let jtile = 120

(* One output row of A.B with 4-column register accumulators, restricted
   to columns [jlo, jhi). Also the remainder path of the 2-row tile: the
   per-row arithmetic is identical (ascending p, one accumulator per
   output), which is what keeps blocked results independent of row-range
   boundaries. *)
let mm_row ~k ~n (a : float array) (b : float array) (out : float array) i ~jlo
    ~jhi =
  let a0 = i * k and o0 = i * n in
  let j = ref jlo in
  while !j + 3 < jhi do
    let j0 = !j in
    let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
    for p = 0 to k - 1 do
      let x = Array.unsafe_get a (a0 + p) in
      if x <> 0.0 then begin
        let br = (p * n) + j0 in
        s0 := !s0 +. (x *. Array.unsafe_get b br);
        s1 := !s1 +. (x *. Array.unsafe_get b (br + 1));
        s2 := !s2 +. (x *. Array.unsafe_get b (br + 2));
        s3 := !s3 +. (x *. Array.unsafe_get b (br + 3))
      end
    done;
    Array.unsafe_set out (o0 + j0) !s0;
    Array.unsafe_set out (o0 + j0 + 1) !s1;
    Array.unsafe_set out (o0 + j0 + 2) !s2;
    Array.unsafe_set out (o0 + j0 + 3) !s3;
    j := j0 + 4
  done;
  while !j < jhi do
    let j0 = !j in
    let s = ref 0.0 in
    for p = 0 to k - 1 do
      let x = Array.unsafe_get a (a0 + p) in
      if x <> 0.0 then s := !s +. (x *. Array.unsafe_get b ((p * n) + j0))
    done;
    Array.unsafe_set out (o0 + j0) !s;
    incr j
  done

(* Blocked A.B restricted to output rows [r0, r1) and columns [jlo, jhi):
   a 2x4 register tile over full-k dot products, with single-row and
   narrow-column remainder paths that accumulate in the same
   (ascending p) order. *)
let mm_rows ~k ~n (a : float array) (b : float array) (out : float array) r0 r1
    ~jlo ~jhi =
  let i = ref r0 in
  while !i + 1 < r1 do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k in
    let o0 = i0 * n and o1 = (i0 + 1) * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s00 = ref 0.0 and s01 = ref 0.0 and s02 = ref 0.0 and s03 = ref 0.0 in
      let s10 = ref 0.0 and s11 = ref 0.0 and s12 = ref 0.0 and s13 = ref 0.0 in
      for p = 0 to k - 1 do
        let x0 = Array.unsafe_get a (a0 + p) in
        let x1 = Array.unsafe_get a (a1 + p) in
        let br = (p * n) + j0 in
        let b0 = Array.unsafe_get b br in
        let b1 = Array.unsafe_get b (br + 1) in
        let b2 = Array.unsafe_get b (br + 2) in
        let b3 = Array.unsafe_get b (br + 3) in
        if x0 <> 0.0 then begin
          s00 := !s00 +. (x0 *. b0);
          s01 := !s01 +. (x0 *. b1);
          s02 := !s02 +. (x0 *. b2);
          s03 := !s03 +. (x0 *. b3)
        end;
        if x1 <> 0.0 then begin
          s10 := !s10 +. (x1 *. b0);
          s11 := !s11 +. (x1 *. b1);
          s12 := !s12 +. (x1 *. b2);
          s13 := !s13 +. (x1 *. b3)
        end
      done;
      Array.unsafe_set out (o0 + j0) !s00;
      Array.unsafe_set out (o0 + j0 + 1) !s01;
      Array.unsafe_set out (o0 + j0 + 2) !s02;
      Array.unsafe_set out (o0 + j0 + 3) !s03;
      Array.unsafe_set out (o1 + j0) !s10;
      Array.unsafe_set out (o1 + j0 + 1) !s11;
      Array.unsafe_set out (o1 + j0 + 2) !s12;
      Array.unsafe_set out (o1 + j0 + 3) !s13;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for p = 0 to k - 1 do
        let bv = Array.unsafe_get b ((p * n) + j0) in
        let x0 = Array.unsafe_get a (a0 + p) in
        let x1 = Array.unsafe_get a (a1 + p) in
        if x0 <> 0.0 then s0 := !s0 +. (x0 *. bv);
        if x1 <> 0.0 then s1 := !s1 +. (x1 *. bv)
      done;
      Array.unsafe_set out (o0 + j0) !s0;
      Array.unsafe_set out (o1 + j0) !s1;
      incr j
    done;
    i := i0 + 2
  done;
  if !i < r1 then mm_row ~k ~n a b out !i ~jlo ~jhi

(* A^T.B restricted to output rows [r0, r1) and columns [jlo, jhi)
   (a is k x m, read with stride m): same 2x4 tile, same ascending-p
   accumulation, no transpose copy. *)
let mm_ta_rows ~k ~m ~n (a : float array) (b : float array) (out : float array)
    r0 r1 ~jlo ~jhi =
  let row1 i0 =
    let o0 = i0 * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for p = 0 to k - 1 do
        let x = Array.unsafe_get a ((p * m) + i0) in
        if x <> 0.0 then begin
          let br = (p * n) + j0 in
          s0 := !s0 +. (x *. Array.unsafe_get b br);
          s1 := !s1 +. (x *. Array.unsafe_get b (br + 1));
          s2 := !s2 +. (x *. Array.unsafe_get b (br + 2));
          s3 := !s3 +. (x *. Array.unsafe_get b (br + 3))
        end
      done;
      Array.unsafe_set out (o0 + j0) !s0;
      Array.unsafe_set out (o0 + j0 + 1) !s1;
      Array.unsafe_set out (o0 + j0 + 2) !s2;
      Array.unsafe_set out (o0 + j0 + 3) !s3;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s = ref 0.0 in
      for p = 0 to k - 1 do
        let x = Array.unsafe_get a ((p * m) + i0) in
        if x <> 0.0 then s := !s +. (x *. Array.unsafe_get b ((p * n) + j0))
      done;
      Array.unsafe_set out (o0 + j0) !s;
      incr j
    done
  in
  let i = ref r0 in
  while !i + 1 < r1 do
    let i0 = !i in
    let o0 = i0 * n and o1 = (i0 + 1) * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s00 = ref 0.0 and s01 = ref 0.0 and s02 = ref 0.0 and s03 = ref 0.0 in
      let s10 = ref 0.0 and s11 = ref 0.0 and s12 = ref 0.0 and s13 = ref 0.0 in
      for p = 0 to k - 1 do
        let ar = (p * m) + i0 in
        let x0 = Array.unsafe_get a ar in
        let x1 = Array.unsafe_get a (ar + 1) in
        let br = (p * n) + j0 in
        let b0 = Array.unsafe_get b br in
        let b1 = Array.unsafe_get b (br + 1) in
        let b2 = Array.unsafe_get b (br + 2) in
        let b3 = Array.unsafe_get b (br + 3) in
        if x0 <> 0.0 then begin
          s00 := !s00 +. (x0 *. b0);
          s01 := !s01 +. (x0 *. b1);
          s02 := !s02 +. (x0 *. b2);
          s03 := !s03 +. (x0 *. b3)
        end;
        if x1 <> 0.0 then begin
          s10 := !s10 +. (x1 *. b0);
          s11 := !s11 +. (x1 *. b1);
          s12 := !s12 +. (x1 *. b2);
          s13 := !s13 +. (x1 *. b3)
        end
      done;
      Array.unsafe_set out (o0 + j0) !s00;
      Array.unsafe_set out (o0 + j0 + 1) !s01;
      Array.unsafe_set out (o0 + j0 + 2) !s02;
      Array.unsafe_set out (o0 + j0 + 3) !s03;
      Array.unsafe_set out (o1 + j0) !s10;
      Array.unsafe_set out (o1 + j0 + 1) !s11;
      Array.unsafe_set out (o1 + j0 + 2) !s12;
      Array.unsafe_set out (o1 + j0 + 3) !s13;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for p = 0 to k - 1 do
        let ar = (p * m) + i0 in
        let bv = Array.unsafe_get b ((p * n) + j0) in
        let x0 = Array.unsafe_get a ar in
        let x1 = Array.unsafe_get a (ar + 1) in
        if x0 <> 0.0 then s0 := !s0 +. (x0 *. bv);
        if x1 <> 0.0 then s1 := !s1 +. (x1 *. bv)
      done;
      Array.unsafe_set out (o0 + j0) !s0;
      Array.unsafe_set out (o1 + j0) !s1;
      incr j
    done;
    i := i0 + 2
  done;
  if !i < r1 then row1 !i

(* A.B^T restricted to output rows [r0, r1) and columns [jlo, jhi): both
   operands are walked along contiguous rows, so no transpose copy of [b]
   is needed (the tile of [b] here is [jhi - jlo] contiguous rows). *)
let mm_tb_rows ~k ~n (a : float array) (b : float array) (out : float array) r0
    r1 ~jlo ~jhi =
  for i = r0 to r1 - 1 do
    let a0 = i * k and o0 = i * n in
    for j = jlo to jhi - 1 do
      let b0 = j * k in
      let s = ref 0.0 in
      for p = 0 to k - 1 do
        let x = Array.unsafe_get a (a0 + p) in
        if x <> 0.0 then s := !s +. (x *. Array.unsafe_get b (b0 + p))
      done;
      Array.unsafe_set out (o0 + j) !s
    done
  done

(* Drive a row-range kernel over the column tiles: tile loop outside,
   rows inside, so one [b] tile serves every row before the next tile is
   streamed in. *)
let with_jtiles ~n body r0 r1 =
  let jlo = ref 0 in
  while !jlo < n do
    let jhi = min n (!jlo + jtile) in
    body r0 r1 ~jlo:!jlo ~jhi;
    jlo := jhi
  done

(* Below this many multiply-adds the pool dispatch overhead outweighs the
   parallel win; the blocked kernel runs on the calling domain. *)
let par_threshold = 32_768

(* Row-chunking: ~[par_threshold/8] multiply-adds per chunk (so wide
   products split into single-row chunks and narrow ones into fat row
   bands), floored so a job never splits into more than 2 chunks per
   domain — each chunk claim is a mutex round-trip, and on heavily
   oversubscribed machines that dispatch overhead would otherwise eat
   the blocked kernel's win. Every output row is computed entirely by
   one chunk with the same arithmetic, so chunk boundaries (and hence
   the pool size) cannot change a bit of the result. *)
let with_rows ?pool ~rows ~row_work body =
  match pool with
  | Some p when Dpool.size p > 1 && rows * row_work >= par_threshold ->
      let balance = 2 * Dpool.size p in
      let chunk =
        max ((rows + balance - 1) / balance)
          ((par_threshold / 8 / max 1 row_work) + 1)
      in
      Dpool.run_ranges p ~n:rows ~chunk (fun ~start ~stop -> body start stop)
  | _ -> body 0 rows

let matmul ?pool a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: inner dimension mismatch";
  if use_naive then matmul_naive a b
  else begin
    let m = a.rows and k = a.cols and n = b.cols in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        with_jtiles ~n (mm_rows ~k ~n a.data b.data out) r0 r1);
    { rows = m; cols = n; data = out }
  end

let matmul_ta ?pool a b =
  if a.rows <> b.rows then invalid_arg "Mat.matmul_ta: inner dimension mismatch";
  if use_naive then matmul_naive (transpose a) b
  else begin
    let m = a.cols and k = a.rows and n = b.cols in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        with_jtiles ~n (mm_ta_rows ~k ~m ~n a.data b.data out) r0 r1);
    { rows = m; cols = n; data = out }
  end

let matmul_tb ?pool a b =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_tb: inner dimension mismatch";
  if use_naive then matmul_naive a (transpose b)
  else begin
    let m = a.rows and k = a.cols and n = b.rows in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        with_jtiles ~n (mm_tb_rows ~k ~n a.data b.data out) r0 r1);
    { rows = m; cols = n; data = out }
  end

let gemm ?pool ?(ta = false) ?(tb = false) a b =
  match (ta, tb) with
  | false, false -> matmul ?pool a b
  | true, false -> matmul_ta ?pool a b
  | false, true -> matmul_tb ?pool a b
  | true, true -> matmul_tb ?pool (transpose a) b

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mat_vec: size mismatch";
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (Array.unsafe_get m.data (base + j) *. Array.unsafe_get v j)
      done;
      !acc)

let vec_mat v m =
  if Array.length v <> m.rows then invalid_arg "Mat.vec_mat: size mismatch";
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let vi = Array.unsafe_get v i in
    if vi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        Array.unsafe_set out j
          (Array.unsafe_get out j +. (vi *. Array.unsafe_get m.data (base + j)))
      done
    end
  done;
  out

let add_row_broadcast m v =
  if Array.length v <> m.cols then invalid_arg "Mat.add_row_broadcast";
  mapi (fun _ j x -> x +. Array.unsafe_get v j) m

let mul_row_broadcast m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mul_row_broadcast";
  mapi (fun _ j x -> x *. Array.unsafe_get v j) m

let fold f acc m = Array.fold_left f acc m.data
let sum m = fold ( +. ) 0.0 m
let frobenius m = sqrt (fold (fun acc x -> acc +. (x *. x)) 0.0 m)
let max_abs m = fold (fun acc x -> Float.max acc (Float.abs x)) 0.0 m

let finite_class m =
  let n = Array.length m.data in
  let has_inf = ref false and has_nan = ref false in
  let i = ref 0 in
  while (not !has_nan) && !i < n do
    let x = Array.unsafe_get m.data !i in
    if Float.is_nan x then has_nan := true
    else if not (Float.is_finite x) then has_inf := true;
    incr i
  done;
  if !has_nan then `Nan else if !has_inf then `Inf else `Finite

let row_sums m =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. Array.unsafe_get m.data (base + j)
      done;
      !acc)

let row_means m =
  let s = row_sums m in
  Array.map (fun x -> x /. float_of_int m.cols) s

let col_sums m =
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set out j
        (Array.unsafe_get out j +. Array.unsafe_get m.data (base + j))
    done
  done;
  out

let row_lp_norms m p =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      if p = infinity then begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := Float.max !acc (Float.abs (Array.unsafe_get m.data (base + j)))
        done;
        !acc
      end
      else if p = 1.0 then begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := !acc +. Float.abs (Array.unsafe_get m.data (base + j))
        done;
        !acc
      end
      else if p = 2.0 then begin
        (* scaled to avoid overflow on huge entries *)
        let mx = ref 0.0 in
        for j = 0 to m.cols - 1 do
          mx := Float.max !mx (Float.abs (Array.unsafe_get m.data (base + j)))
        done;
        if !mx = 0.0 || not (Float.is_finite !mx) then !mx
        else begin
          let acc = ref 0.0 in
          for j = 0 to m.cols - 1 do
            let x = Array.unsafe_get m.data (base + j) /. !mx in
            acc := !acc +. (x *. x)
          done;
          !mx *. sqrt !acc
        end
      end
      else begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := !acc +. (Float.abs (Array.unsafe_get m.data (base + j)) ** p)
        done;
        !acc ** (1.0 /. p)
      end)

let equal ?(tol = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    if Float.abs (Array.unsafe_get a.data i -. Array.unsafe_get b.data i) > tol then
      ok := false
  done;
  !ok

let pp ppf m =
  let max_show = 8 in
  Format.fprintf ppf "@[<v>mat %dx%d" m.rows m.cols;
  for i = 0 to min m.rows max_show - 1 do
    Format.fprintf ppf "@,[";
    for j = 0 to min m.cols max_show - 1 do
      Format.fprintf ppf "%s%.4g" (if j > 0 then " " else "") (get m i j)
    done;
    if m.cols > max_show then Format.fprintf ppf " ...";
    Format.fprintf ppf "]"
  done;
  if m.rows > max_show then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
