type t = { rows : int; cols : int; data : float array }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Mat: negative dimension"

let create rows cols =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) 0.0 }

let make rows cols v =
  check_dims rows cols;
  { rows; cols; data = Array.make (rows * cols) v }

let init rows cols f =
  check_dims rows cols;
  let data = Array.make (rows * cols) 0.0 in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      Array.unsafe_set data (base + j) (f i j)
    done
  done;
  { rows; cols; data }

let of_array ~rows ~cols data =
  if Array.length data <> rows * cols then
    invalid_arg "Mat.of_array: size mismatch";
  { rows; cols; data }

let of_rows rws =
  let rows = Array.length rws in
  if rows = 0 then { rows = 0; cols = 0; data = [||] }
  else begin
    let cols = Array.length rws.(0) in
    Array.iter
      (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_rows: ragged rows")
      rws;
    init rows cols (fun i j -> rws.(i).(j))
  end

let row_vector v = { rows = 1; cols = Array.length v; data = Array.copy v }
let col_vector v = { rows = Array.length v; cols = 1; data = Array.copy v }

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let random_uniform rng rows cols s =
  init rows cols (fun _ _ -> Rng.uniform rng (-.s) s)

let random_gaussian rng rows cols std =
  init rows cols (fun _ _ -> Rng.gaussian_scaled rng ~mean:0.0 ~std)

let copy m = { m with data = Array.copy m.data }

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get";
  Array.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set";
  Array.unsafe_set m.data ((i * m.cols) + j) v

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col";
  Array.init m.rows (fun i -> Array.unsafe_get m.data ((i * m.cols) + j))

let to_rows m = Array.init m.rows (fun i -> row m i)

let transpose m =
  init m.cols m.rows (fun i j -> Array.unsafe_get m.data ((j * m.cols) + i))

let hcat a b =
  if a.rows <> b.rows then invalid_arg "Mat.hcat: row mismatch";
  let cols = a.cols + b.cols in
  let data = Array.make (a.rows * cols) 0.0 in
  for i = 0 to a.rows - 1 do
    Array.blit a.data (i * a.cols) data (i * cols) a.cols;
    Array.blit b.data (i * b.cols) data ((i * cols) + a.cols) b.cols
  done;
  { rows = a.rows; cols; data }

let vcat a b =
  if a.cols <> b.cols then invalid_arg "Mat.vcat: column mismatch";
  let data = Array.append a.data b.data in
  { rows = a.rows + b.rows; cols = a.cols; data }

let sub_rows m start n =
  if start < 0 || n < 0 || start + n > m.rows then invalid_arg "Mat.sub_rows";
  { rows = n; cols = m.cols; data = Array.sub m.data (start * m.cols) (n * m.cols) }

let sub_cols m start n =
  if start < 0 || n < 0 || start + n > m.cols then invalid_arg "Mat.sub_cols";
  init m.rows n (fun i j -> Array.unsafe_get m.data ((i * m.cols) + start + j))

let reshape m ~rows ~cols =
  if rows * cols <> m.rows * m.cols then invalid_arg "Mat.reshape: size mismatch";
  { rows; cols; data = Array.copy m.data }

let select_cols m idx =
  Array.iter (fun j -> if j < 0 || j >= m.cols then invalid_arg "Mat.select_cols") idx;
  init m.rows (Array.length idx) (fun i k ->
      Array.unsafe_get m.data ((i * m.cols) + Array.unsafe_get idx k))

let map f m = { m with data = Array.map f m.data }

let mapi f m =
  init m.rows m.cols (fun i j -> f i j (Array.unsafe_get m.data ((i * m.cols) + j)))

let zip f a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg "Mat.zip: shape mismatch";
  let n = Array.length a.data in
  let data = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data i
      (f (Array.unsafe_get a.data i) (Array.unsafe_get b.data i))
  done;
  { a with data }

let add a b = zip ( +. ) a b
let sub a b = zip ( -. ) a b
let mul a b = zip ( *. ) a b
let scale s m = map (fun x -> s *. x) m
let add_scalar s m = map (fun x -> s +. x) m
let abs m = map Float.abs m
let neg m = map Float.neg m

let add_in_place dst src =
  if dst.rows <> src.rows || dst.cols <> src.cols then
    invalid_arg "Mat.add_in_place: shape mismatch";
  for i = 0 to Array.length dst.data - 1 do
    Array.unsafe_set dst.data i
      (Array.unsafe_get dst.data i +. Array.unsafe_get src.data i)
  done

let axpy a x y =
  if x.rows <> y.rows || x.cols <> y.cols then invalid_arg "Mat.axpy: shape mismatch";
  for i = 0 to Array.length y.data - 1 do
    Array.unsafe_set y.data i
      (Array.unsafe_get y.data i +. (a *. Array.unsafe_get x.data i))
  done

let scale_in_place s m =
  for i = 0 to Array.length m.data - 1 do
    Array.unsafe_set m.data i (s *. Array.unsafe_get m.data i)
  done

let fill m v = Array.fill m.data 0 (Array.length m.data) v

(* ---------------- matrix products ----------------

   The kernel bodies live in [Mat_kern], generated from the single
   shared source kern_body.inc (the Bigarray backend compiles the same
   text — see the header comment there for the loop structure and the
   bit-identity argument). This module adds the shape checks, the
   output allocation and the [Dpool] row sharding:

   - blocked + pool: the blocked kernel sharded over disjoint output-row
     ranges on a [Dpool]. Chunk boundaries depend only on the problem
     size, and every output row is computed by exactly one chunk with
     the same arithmetic, so pool size cannot change a single bit.
   - [?cols] restricts the computed output columns to the given sorted
     live intervals (a [Bands] occupancy's view of the right operand);
     skipped columns keep the +0.0 of the fresh output buffer. Callers
     pass it only when the skipped columns are provably zero in the
     dense result too (left operand finite, right-operand columns dead),
     which keeps the sparse and dense paths bit-identical. The
     [MAT_NAIVE=1] escape hatch ignores [?cols] and computes the dense
     product — same bits, by the same argument. *)

(* i-k-j loop order: the inner loop walks both [b] and [out] contiguously. *)
let matmul_naive a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = Array.make (m * n) 0.0 in
  Mat_kern.naive_into ~m ~k ~n a.data b.data out;
  { rows = m; cols = n; data = out }

let use_naive = Mat_kern.use_naive

(* Below this many multiply-adds the pool dispatch overhead outweighs the
   parallel win; the blocked kernel runs on the calling domain. *)
let par_threshold = 32_768

(* Row-chunking: ~[par_threshold/8] multiply-adds per chunk (so wide
   products split into single-row chunks and narrow ones into fat row
   bands), floored so a job never splits into more than 2 chunks per
   domain — each chunk claim is a mutex round-trip, and on heavily
   oversubscribed machines that dispatch overhead would otherwise eat
   the blocked kernel's win. Every output row is computed entirely by
   one chunk with the same arithmetic, so chunk boundaries (and hence
   the pool size) cannot change a bit of the result. *)
let with_rows ?pool ~rows ~row_work body =
  match pool with
  | Some p when Dpool.size p > 1 && rows * row_work >= par_threshold ->
      let balance = 2 * Dpool.size p in
      let chunk =
        max ((rows + balance - 1) / balance)
          ((par_threshold / 8 / max 1 row_work) + 1)
      in
      Dpool.run_ranges p ~n:rows ~chunk (fun ~start ~stop -> body start stop)
  | _ -> body 0 rows

let matmul ?pool ?cols a b =
  if a.cols <> b.rows then invalid_arg "Mat.matmul: inner dimension mismatch";
  if use_naive then matmul_naive a b
  else begin
    let m = a.rows and k = a.cols and n = b.cols in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        Mat_kern.with_jtiles ?cols ~n (Mat_kern.mm_rows ~k ~n a.data b.data out)
          r0 r1);
    { rows = m; cols = n; data = out }
  end

let matmul_ta ?pool ?cols a b =
  if a.rows <> b.rows then invalid_arg "Mat.matmul_ta: inner dimension mismatch";
  if use_naive then matmul_naive (transpose a) b
  else begin
    let m = a.cols and k = a.rows and n = b.cols in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        Mat_kern.with_jtiles ?cols ~n
          (Mat_kern.mm_ta_rows ~k ~m ~n a.data b.data out)
          r0 r1);
    { rows = m; cols = n; data = out }
  end

let matmul_tb ?pool ?cols a b =
  if a.cols <> b.cols then invalid_arg "Mat.matmul_tb: inner dimension mismatch";
  if use_naive then matmul_naive a (transpose b)
  else begin
    let m = a.rows and k = a.cols and n = b.rows in
    let out = Array.make (m * n) 0.0 in
    with_rows ?pool ~rows:m ~row_work:(k * n) (fun r0 r1 ->
        Mat_kern.with_jtiles ?cols ~n (Mat_kern.mm_tb_rows ~k ~n a.data b.data out)
          r0 r1);
    { rows = m; cols = n; data = out }
  end

let gemm ?pool ?(ta = false) ?(tb = false) a b =
  match (ta, tb) with
  | false, false -> matmul ?pool a b
  | true, false -> matmul_ta ?pool a b
  | false, true -> matmul_tb ?pool a b
  | true, true -> matmul_tb ?pool (transpose a) b

let mat_vec m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mat_vec: size mismatch";
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. (Array.unsafe_get m.data (base + j) *. Array.unsafe_get v j)
      done;
      !acc)

let vec_mat v m =
  if Array.length v <> m.rows then invalid_arg "Mat.vec_mat: size mismatch";
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let vi = Array.unsafe_get v i in
    if vi <> 0.0 then begin
      let base = i * m.cols in
      for j = 0 to m.cols - 1 do
        Array.unsafe_set out j
          (Array.unsafe_get out j +. (vi *. Array.unsafe_get m.data (base + j)))
      done
    end
  done;
  out

let add_row_broadcast m v =
  if Array.length v <> m.cols then invalid_arg "Mat.add_row_broadcast";
  mapi (fun _ j x -> x +. Array.unsafe_get v j) m

let mul_row_broadcast m v =
  if Array.length v <> m.cols then invalid_arg "Mat.mul_row_broadcast";
  mapi (fun _ j x -> x *. Array.unsafe_get v j) m

let fold f acc m = Array.fold_left f acc m.data
let sum m = fold ( +. ) 0.0 m
let frobenius m = sqrt (fold (fun acc x -> acc +. (x *. x)) 0.0 m)
let max_abs m = fold (fun acc x -> Float.max acc (Float.abs x)) 0.0 m

let finite_class m =
  let n = Array.length m.data in
  let has_inf = ref false and has_nan = ref false in
  let i = ref 0 in
  while (not !has_nan) && !i < n do
    let x = Array.unsafe_get m.data !i in
    if Float.is_nan x then has_nan := true
    else if not (Float.is_finite x) then has_inf := true;
    incr i
  done;
  if !has_nan then `Nan else if !has_inf then `Inf else `Finite

let row_sums m =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      let acc = ref 0.0 in
      for j = 0 to m.cols - 1 do
        acc := !acc +. Array.unsafe_get m.data (base + j)
      done;
      !acc)

let row_means m =
  let s = row_sums m in
  Array.map (fun x -> x /. float_of_int m.cols) s

let col_sums m =
  let out = Array.make m.cols 0.0 in
  for i = 0 to m.rows - 1 do
    let base = i * m.cols in
    for j = 0 to m.cols - 1 do
      Array.unsafe_set out j
        (Array.unsafe_get out j +. Array.unsafe_get m.data (base + j))
    done
  done;
  out

let row_lp_norms m p =
  Array.init m.rows (fun i ->
      let base = i * m.cols in
      if p = infinity then begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := Float.max !acc (Float.abs (Array.unsafe_get m.data (base + j)))
        done;
        !acc
      end
      else if p = 1.0 then begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := !acc +. Float.abs (Array.unsafe_get m.data (base + j))
        done;
        !acc
      end
      else if p = 2.0 then begin
        (* scaled to avoid overflow on huge entries *)
        let mx = ref 0.0 in
        for j = 0 to m.cols - 1 do
          mx := Float.max !mx (Float.abs (Array.unsafe_get m.data (base + j)))
        done;
        if !mx = 0.0 || not (Float.is_finite !mx) then !mx
        else begin
          let acc = ref 0.0 in
          for j = 0 to m.cols - 1 do
            let x = Array.unsafe_get m.data (base + j) /. !mx in
            acc := !acc +. (x *. x)
          done;
          !mx *. sqrt !acc
        end
      end
      else begin
        let acc = ref 0.0 in
        for j = 0 to m.cols - 1 do
          acc := !acc +. (Float.abs (Array.unsafe_get m.data (base + j)) ** p)
        done;
        !acc ** (1.0 /. p)
      end)

let equal ?(tol = 0.0) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let ok = ref true in
  for i = 0 to Array.length a.data - 1 do
    if Float.abs (Array.unsafe_get a.data i -. Array.unsafe_get b.data i) > tol then
      ok := false
  done;
  !ok

let pp ppf m =
  let max_show = 8 in
  Format.fprintf ppf "@[<v>mat %dx%d" m.rows m.cols;
  for i = 0 to min m.rows max_show - 1 do
    Format.fprintf ppf "@,[";
    for j = 0 to min m.cols max_show - 1 do
      Format.fprintf ppf "%s%.4g" (if j > 0 then " " else "") (get m i j)
    done;
    if m.cols > max_show then Format.fprintf ppf " ...";
    Format.fprintf ppf "]"
  done;
  if m.rows > max_show then Format.fprintf ppf "@,...";
  Format.fprintf ppf "@]"
