(* Bigarray-backed dense matrices for the zonotope coefficient blocks.

   Same row-major flat layout and the same blocked kernels as [Mat], but
   over a C-layout float64 [Bigarray.Array1] instead of an OCaml float
   array. Two properties make that worth a second backend:

   - an [Array1] can be a *view* into a [Unix.map_file] MAP_SHARED
     arena ([Shm]), so a forked worker can run the kernels directly on
     parent-written coefficient blocks without copying them off the
     job pipe;
   - the data lives outside the OCaml heap, so multi-megabyte
     coefficient blocks neither inflate the major heap nor get walked
     by the GC.

   The kernels are line-for-line ports of the PR 3 register/column-tiled
   [Mat] kernels: identical 2x4 register tile, identical [jtile], the
   same left-operand zero skip and the same ascending-p accumulation
   order — so on equal inputs the results are bit-identical to [Mat]'s
   (the test suite checks this, including on degenerate shapes). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buf }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Bigmat: negative dimension"

let create rows cols =
  check_dims rows cols;
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; data }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      Bigarray.Array1.unsafe_set m.data (base + j) (f i j)
    done
  done;
  m

let of_array1 ~rows ~cols data =
  check_dims rows cols;
  if Bigarray.Array1.dim data <> rows * cols then
    invalid_arg "Bigmat.of_array1: size mismatch";
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Bigmat.get";
  Bigarray.Array1.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Bigmat.set";
  Bigarray.Array1.unsafe_set m.data ((i * m.cols) + j) v

(* Copy conversions to and from the float-array backend. [blit_of_mat]
   fills an existing Bigmat (typically an arena view) in place. *)

let blit_of_mat (src : Mat.t) dst =
  if Mat.rows src <> dst.rows || Mat.cols src <> dst.cols then
    invalid_arg "Bigmat.blit_of_mat: shape mismatch";
  let d = src.Mat.data in
  for i = 0 to Array.length d - 1 do
    Bigarray.Array1.unsafe_set dst.data i (Array.unsafe_get d i)
  done

let of_mat (m : Mat.t) =
  let b =
    {
      rows = Mat.rows m;
      cols = Mat.cols m;
      data =
        Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
          (Mat.rows m * Mat.cols m);
    }
  in
  blit_of_mat m b;
  b

let to_mat m =
  let n = m.rows * m.cols in
  let data = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data i (Bigarray.Array1.unsafe_get m.data i)
  done;
  Mat.of_array ~rows:m.rows ~cols:m.cols data

(* Bitwise equality (via the IEEE bit pattern, so NaNs compare by
   payload, not by IEEE = which would make nothing equal). *)
let equal_bits_mat b (m : Mat.t) =
  b.rows = Mat.rows m && b.cols = Mat.cols m
  &&
  let d = m.Mat.data in
  let n = Array.length d in
  let ok = ref true in
  for i = 0 to n - 1 do
    if
      Int64.bits_of_float (Bigarray.Array1.unsafe_get b.data i)
      <> Int64.bits_of_float (Array.unsafe_get d i)
    then ok := false
  done;
  !ok

(* ---------------- matrix products ----------------

   Ports of the [Mat] kernels (see the long comment there): the naive
   i-k-j reference, the 2x4 register tile restricted to a row range and
   a column tile, and the A^T.B variant that reads [a] with stride [m].
   Loop structure, accumulation order and the zero skip are identical,
   which is what makes the two backends bit-compatible. *)

let matmul_naive a b =
  if a.cols <> b.rows then invalid_arg "Bigmat.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = create m n in
  let od = out.data and ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * k and orow = i * n in
    for p = 0 to k - 1 do
      let aip = Bigarray.Array1.unsafe_get ad (arow + p) in
      if aip <> 0.0 then begin
        let brow = p * n in
        for j = 0 to n - 1 do
          Bigarray.Array1.unsafe_set od (orow + j)
            (Bigarray.Array1.unsafe_get od (orow + j)
            +. (aip *. Bigarray.Array1.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  out

let use_naive =
  match Sys.getenv_opt "MAT_NAIVE" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let jtile = 120

let mm_row ~k ~n (a : buf) (b : buf) (out : buf) i ~jlo ~jhi =
  let a0 = i * k and o0 = i * n in
  let j = ref jlo in
  while !j + 3 < jhi do
    let j0 = !j in
    let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
    for p = 0 to k - 1 do
      let x = Bigarray.Array1.unsafe_get a (a0 + p) in
      if x <> 0.0 then begin
        let br = (p * n) + j0 in
        s0 := !s0 +. (x *. Bigarray.Array1.unsafe_get b br);
        s1 := !s1 +. (x *. Bigarray.Array1.unsafe_get b (br + 1));
        s2 := !s2 +. (x *. Bigarray.Array1.unsafe_get b (br + 2));
        s3 := !s3 +. (x *. Bigarray.Array1.unsafe_get b (br + 3))
      end
    done;
    Bigarray.Array1.unsafe_set out (o0 + j0) !s0;
    Bigarray.Array1.unsafe_set out (o0 + j0 + 1) !s1;
    Bigarray.Array1.unsafe_set out (o0 + j0 + 2) !s2;
    Bigarray.Array1.unsafe_set out (o0 + j0 + 3) !s3;
    j := j0 + 4
  done;
  while !j < jhi do
    let j0 = !j in
    let s = ref 0.0 in
    for p = 0 to k - 1 do
      let x = Bigarray.Array1.unsafe_get a (a0 + p) in
      if x <> 0.0 then s := !s +. (x *. Bigarray.Array1.unsafe_get b ((p * n) + j0))
    done;
    Bigarray.Array1.unsafe_set out (o0 + j0) !s;
    incr j
  done

let mm_rows ~k ~n (a : buf) (b : buf) (out : buf) r0 r1 ~jlo ~jhi =
  let i = ref r0 in
  while !i + 1 < r1 do
    let i0 = !i in
    let a0 = i0 * k and a1 = (i0 + 1) * k in
    let o0 = i0 * n and o1 = (i0 + 1) * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s00 = ref 0.0 and s01 = ref 0.0 and s02 = ref 0.0 and s03 = ref 0.0 in
      let s10 = ref 0.0 and s11 = ref 0.0 and s12 = ref 0.0 and s13 = ref 0.0 in
      for p = 0 to k - 1 do
        let x0 = Bigarray.Array1.unsafe_get a (a0 + p) in
        let x1 = Bigarray.Array1.unsafe_get a (a1 + p) in
        let br = (p * n) + j0 in
        let b0 = Bigarray.Array1.unsafe_get b br in
        let b1 = Bigarray.Array1.unsafe_get b (br + 1) in
        let b2 = Bigarray.Array1.unsafe_get b (br + 2) in
        let b3 = Bigarray.Array1.unsafe_get b (br + 3) in
        if x0 <> 0.0 then begin
          s00 := !s00 +. (x0 *. b0);
          s01 := !s01 +. (x0 *. b1);
          s02 := !s02 +. (x0 *. b2);
          s03 := !s03 +. (x0 *. b3)
        end;
        if x1 <> 0.0 then begin
          s10 := !s10 +. (x1 *. b0);
          s11 := !s11 +. (x1 *. b1);
          s12 := !s12 +. (x1 *. b2);
          s13 := !s13 +. (x1 *. b3)
        end
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s00;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 1) !s01;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 2) !s02;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 3) !s03;
      Bigarray.Array1.unsafe_set out (o1 + j0) !s10;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 1) !s11;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 2) !s12;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 3) !s13;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for p = 0 to k - 1 do
        let bv = Bigarray.Array1.unsafe_get b ((p * n) + j0) in
        let x0 = Bigarray.Array1.unsafe_get a (a0 + p) in
        let x1 = Bigarray.Array1.unsafe_get a (a1 + p) in
        if x0 <> 0.0 then s0 := !s0 +. (x0 *. bv);
        if x1 <> 0.0 then s1 := !s1 +. (x1 *. bv)
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s0;
      Bigarray.Array1.unsafe_set out (o1 + j0) !s1;
      incr j
    done;
    i := i0 + 2
  done;
  if !i < r1 then mm_row ~k ~n a b out !i ~jlo ~jhi

let mm_ta_rows ~k ~m ~n (a : buf) (b : buf) (out : buf) r0 r1 ~jlo ~jhi =
  let row1 i0 =
    let o0 = i0 * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 and s2 = ref 0.0 and s3 = ref 0.0 in
      for p = 0 to k - 1 do
        let x = Bigarray.Array1.unsafe_get a ((p * m) + i0) in
        if x <> 0.0 then begin
          let br = (p * n) + j0 in
          s0 := !s0 +. (x *. Bigarray.Array1.unsafe_get b br);
          s1 := !s1 +. (x *. Bigarray.Array1.unsafe_get b (br + 1));
          s2 := !s2 +. (x *. Bigarray.Array1.unsafe_get b (br + 2));
          s3 := !s3 +. (x *. Bigarray.Array1.unsafe_get b (br + 3))
        end
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s0;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 1) !s1;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 2) !s2;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 3) !s3;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s = ref 0.0 in
      for p = 0 to k - 1 do
        let x = Bigarray.Array1.unsafe_get a ((p * m) + i0) in
        if x <> 0.0 then
          s := !s +. (x *. Bigarray.Array1.unsafe_get b ((p * n) + j0))
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s;
      incr j
    done
  in
  let i = ref r0 in
  while !i + 1 < r1 do
    let i0 = !i in
    let o0 = i0 * n and o1 = (i0 + 1) * n in
    let j = ref jlo in
    while !j + 3 < jhi do
      let j0 = !j in
      let s00 = ref 0.0 and s01 = ref 0.0 and s02 = ref 0.0 and s03 = ref 0.0 in
      let s10 = ref 0.0 and s11 = ref 0.0 and s12 = ref 0.0 and s13 = ref 0.0 in
      for p = 0 to k - 1 do
        let ar = (p * m) + i0 in
        let x0 = Bigarray.Array1.unsafe_get a ar in
        let x1 = Bigarray.Array1.unsafe_get a (ar + 1) in
        let br = (p * n) + j0 in
        let b0 = Bigarray.Array1.unsafe_get b br in
        let b1 = Bigarray.Array1.unsafe_get b (br + 1) in
        let b2 = Bigarray.Array1.unsafe_get b (br + 2) in
        let b3 = Bigarray.Array1.unsafe_get b (br + 3) in
        if x0 <> 0.0 then begin
          s00 := !s00 +. (x0 *. b0);
          s01 := !s01 +. (x0 *. b1);
          s02 := !s02 +. (x0 *. b2);
          s03 := !s03 +. (x0 *. b3)
        end;
        if x1 <> 0.0 then begin
          s10 := !s10 +. (x1 *. b0);
          s11 := !s11 +. (x1 *. b1);
          s12 := !s12 +. (x1 *. b2);
          s13 := !s13 +. (x1 *. b3)
        end
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s00;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 1) !s01;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 2) !s02;
      Bigarray.Array1.unsafe_set out (o0 + j0 + 3) !s03;
      Bigarray.Array1.unsafe_set out (o1 + j0) !s10;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 1) !s11;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 2) !s12;
      Bigarray.Array1.unsafe_set out (o1 + j0 + 3) !s13;
      j := j0 + 4
    done;
    while !j < jhi do
      let j0 = !j in
      let s0 = ref 0.0 and s1 = ref 0.0 in
      for p = 0 to k - 1 do
        let ar = (p * m) + i0 in
        let bv = Bigarray.Array1.unsafe_get b ((p * n) + j0) in
        let x0 = Bigarray.Array1.unsafe_get a ar in
        let x1 = Bigarray.Array1.unsafe_get a (ar + 1) in
        if x0 <> 0.0 then s0 := !s0 +. (x0 *. bv);
        if x1 <> 0.0 then s1 := !s1 +. (x1 *. bv)
      done;
      Bigarray.Array1.unsafe_set out (o0 + j0) !s0;
      Bigarray.Array1.unsafe_set out (o1 + j0) !s1;
      incr j
    done;
    i := i0 + 2
  done;
  if !i < r1 then row1 !i

let with_jtiles ~n body r0 r1 =
  let jlo = ref 0 in
  while !jlo < n do
    let jhi = min n (!jlo + jtile) in
    body r0 r1 ~jlo:!jlo ~jhi;
    jlo := jhi
  done

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matmul a b =
  if a.cols <> b.rows then invalid_arg "Bigmat.matmul: inner dimension mismatch";
  if use_naive then matmul_naive a b
  else begin
    let m = a.rows and k = a.cols and n = b.cols in
    let out = create m n in
    with_jtiles ~n (mm_rows ~k ~n a.data b.data out.data) 0 m;
    out
  end

let matmul_ta a b =
  if a.rows <> b.rows then
    invalid_arg "Bigmat.matmul_ta: inner dimension mismatch";
  if use_naive then matmul_naive (transpose a) b
  else begin
    let m = a.cols and k = a.rows and n = b.cols in
    let out = create m n in
    with_jtiles ~n (mm_ta_rows ~k ~m ~n a.data b.data out.data) 0 m;
    out
  end

let fold f acc m =
  let n = m.rows * m.cols in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get m.data i)
  done;
  !acc

let max_abs m = fold (fun acc x -> Float.max acc (Float.abs x)) 0.0 m
