(* Bigarray-backed dense matrices for the zonotope coefficient blocks.

   Same row-major flat layout and the same blocked kernels as [Mat], but
   over a C-layout float64 [Bigarray.Array1] instead of an OCaml float
   array. Two properties make that worth a second backend:

   - an [Array1] can be a *view* into a [Unix.map_file] MAP_SHARED
     arena ([Shm]), so a forked worker can run the kernels directly on
     parent-written coefficient blocks without copying them off the
     job pipe;
   - the data lives outside the OCaml heap, so multi-megabyte
     coefficient blocks neither inflate the major heap nor get walked
     by the GC.

   The kernels are line-for-line ports of the PR 3 register/column-tiled
   [Mat] kernels: identical 2x4 register tile, identical [jtile], the
   same left-operand zero skip and the same ascending-p accumulation
   order — so on equal inputs the results are bit-identical to [Mat]'s
   (the test suite checks this, including on degenerate shapes). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buf }

let check_dims r c =
  if r < 0 || c < 0 then invalid_arg "Bigmat: negative dimension"

let create rows cols =
  check_dims rows cols;
  let data = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (rows * cols) in
  Bigarray.Array1.fill data 0.0;
  { rows; cols; data }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    let base = i * cols in
    for j = 0 to cols - 1 do
      Bigarray.Array1.unsafe_set m.data (base + j) (f i j)
    done
  done;
  m

let of_array1 ~rows ~cols data =
  check_dims rows cols;
  if Bigarray.Array1.dim data <> rows * cols then
    invalid_arg "Bigmat.of_array1: size mismatch";
  { rows; cols; data }

let rows m = m.rows
let cols m = m.cols
let dims m = (m.rows, m.cols)

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Bigmat.get";
  Bigarray.Array1.unsafe_get m.data ((i * m.cols) + j)

let set m i j v =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Bigmat.set";
  Bigarray.Array1.unsafe_set m.data ((i * m.cols) + j) v

(* Copy conversions to and from the float-array backend. [blit_of_mat]
   fills an existing Bigmat (typically an arena view) in place. *)

let blit_of_mat (src : Mat.t) dst =
  if Mat.rows src <> dst.rows || Mat.cols src <> dst.cols then
    invalid_arg "Bigmat.blit_of_mat: shape mismatch";
  let d = src.Mat.data in
  for i = 0 to Array.length d - 1 do
    Bigarray.Array1.unsafe_set dst.data i (Array.unsafe_get d i)
  done

let of_mat (m : Mat.t) =
  let b =
    {
      rows = Mat.rows m;
      cols = Mat.cols m;
      data =
        Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout
          (Mat.rows m * Mat.cols m);
    }
  in
  blit_of_mat m b;
  b

let to_mat m =
  let n = m.rows * m.cols in
  let data = Array.make n 0.0 in
  for i = 0 to n - 1 do
    Array.unsafe_set data i (Bigarray.Array1.unsafe_get m.data i)
  done;
  Mat.of_array ~rows:m.rows ~cols:m.cols data

(* Bitwise equality (via the IEEE bit pattern, so NaNs compare by
   payload, not by IEEE = which would make nothing equal). *)
let equal_bits_mat b (m : Mat.t) =
  b.rows = Mat.rows m && b.cols = Mat.cols m
  &&
  let d = m.Mat.data in
  let n = Array.length d in
  let ok = ref true in
  for i = 0 to n - 1 do
    if
      Int64.bits_of_float (Bigarray.Array1.unsafe_get b.data i)
      <> Int64.bits_of_float (Array.unsafe_get d i)
    then ok := false
  done;
  !ok

(* ---------------- matrix products ----------------

   The kernel bodies live in [Bigmat_kern], generated from the same
   kern_body.inc source as [Mat_kern]: identical 2x4 register tile,
   identical [jtile], the same left-operand zero skip, the same
   ascending-p accumulation order and the same [?cols] tile-skip
   driver — compiled from one text, so the two backends cannot drift
   and results stay bit-identical on equal inputs (the test suite
   checks this, including on degenerate shapes). *)

let matmul_naive a b =
  if a.cols <> b.rows then invalid_arg "Bigmat.matmul: inner dimension mismatch";
  let m = a.rows and k = a.cols and n = b.cols in
  let out = create m n in
  Bigmat_kern.naive_into ~m ~k ~n a.data b.data out.data;
  out

let use_naive = Bigmat_kern.use_naive

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let matmul ?cols a b =
  if a.cols <> b.rows then invalid_arg "Bigmat.matmul: inner dimension mismatch";
  if use_naive then matmul_naive a b
  else begin
    let m = a.rows and k = a.cols and n = b.cols in
    let out = create m n in
    Bigmat_kern.with_jtiles ?cols ~n
      (Bigmat_kern.mm_rows ~k ~n a.data b.data out.data)
      0 m;
    out
  end

let matmul_ta ?cols a b =
  if a.rows <> b.rows then
    invalid_arg "Bigmat.matmul_ta: inner dimension mismatch";
  if use_naive then matmul_naive (transpose a) b
  else begin
    let m = a.cols and k = a.rows and n = b.cols in
    let out = create m n in
    Bigmat_kern.with_jtiles ?cols ~n
      (Bigmat_kern.mm_ta_rows ~k ~m ~n a.data b.data out.data)
      0 m;
    out
  end

let matmul_tb ?cols a b =
  if a.cols <> b.cols then
    invalid_arg "Bigmat.matmul_tb: inner dimension mismatch";
  if use_naive then matmul_naive a (transpose b)
  else begin
    let m = a.rows and k = a.cols and n = b.rows in
    let out = create m n in
    Bigmat_kern.with_jtiles ?cols ~n
      (Bigmat_kern.mm_tb_rows ~k ~n a.data b.data out.data)
      0 m;
    out
  end

let fold f acc m =
  let n = m.rows * m.cols in
  let acc = ref acc in
  for i = 0 to n - 1 do
    acc := f !acc (Bigarray.Array1.unsafe_get m.data i)
  done;
  !acc

let max_abs m = fold (fun acc x -> Float.max acc (Float.abs x)) 0.0 m
