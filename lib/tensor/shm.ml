(* Shared-memory arena for zero-copy job dispatch.

   A MAP_SHARED [Unix.map_file] mapping of an unlinked temp file,
   exposed as a float64 [Bigarray.Array1]. The mapping is created in the
   supervisor *before* it forks workers, so every worker inherits the
   same physical pages: the parent writes a coefficient matrix into the
   arena once, ships only an (offset, rows, cols) descriptor over the
   job pipe, and the worker reads the floats in place — no [Marshal]
   serialization, no multi-megabyte copy squeezed through a 64 KB pipe
   buffer.

   Allocator discipline: only the parent (the process that created the
   arena) calls [alloc]/[free]. The free list lives in that process's
   OCaml heap — workers never see or mutate it — so a worker dying
   mid-job (SIGKILL, OOM) cannot corrupt allocator state: the parent
   frees the job's blocks when the supervisor reports the job done or
   failed, and the arena is immediately reusable. Data races are
   excluded by the pipe protocol: a block is written before its
   descriptor is sent, and never mutated until the worker's result (or
   death) has been collected.

   [DEEPT_NO_SHM=1] is the escape hatch mirroring [MAT_NAIVE=1]: callers
   consult [available ()] and fall back to the plain Marshal transport. *)

type t = {
  buf : Bigmat.buf;
  capacity : int; (* in floats *)
  owner : int; (* pid that created the arena and owns the free list *)
  mutable free_list : (int * int) list; (* (offset, length), sorted, coalesced *)
}

let available () =
  match Sys.getenv_opt "DEEPT_NO_SHM" with
  | None | Some "" | Some "0" -> true
  | Some _ -> false

let create ~floats =
  if floats < 0 then invalid_arg "Shm.create: negative size";
  let path = Filename.temp_file "deept_shm" ".arena" in
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o600 in
  (* Unlink immediately: the mapping keeps the pages alive, and a killed
     process can never leave a stale arena file behind. *)
  (try Sys.remove path with Sys_error _ -> ());
  let ga =
    Unix.map_file fd Bigarray.float64 Bigarray.c_layout true [| max 1 floats |]
  in
  Unix.close fd;
  {
    buf = Bigarray.array1_of_genarray ga;
    capacity = floats;
    owner = Unix.getpid ();
    free_list = (if floats > 0 then [ (0, floats) ] else []);
  }

let capacity t = t.capacity

let avail t = List.fold_left (fun acc (_, len) -> acc + len) 0 t.free_list

let check_owner t who =
  if Unix.getpid () <> t.owner then
    invalid_arg (who ^ ": arena allocator is owned by the creating process")

(* First fit. Deterministic, and with the job-batch free pattern (all
   blocks of a batch freed before the next batch allocates) fragmentation
   cannot accumulate. *)
let alloc t n =
  check_owner t "Shm.alloc";
  if n < 0 then invalid_arg "Shm.alloc: negative size";
  if n = 0 then Some 0
  else
    let rec go acc = function
      | [] -> None
      | (off, len) :: rest when len >= n ->
          let rest' = if len = n then rest else (off + n, len - n) :: rest in
          t.free_list <- List.rev_append acc rest';
          Some off
      | blk :: rest -> go (blk :: acc) rest
    in
    go [] t.free_list

let free t ~off ~len =
  check_owner t "Shm.free";
  if len < 0 || off < 0 || off + len > t.capacity then invalid_arg "Shm.free";
  if len > 0 then begin
    (* Insert sorted by offset, coalescing with both neighbours. *)
    let merge_right (o, l) = function
      | (o2, l2) :: rest when o + l = o2 -> (o, l + l2) :: rest
      | rest -> (o, l) :: rest
    in
    let rec ins = function
      | [] -> [ (off, len) ]
      | (o, l) :: rest when off + len < o -> (off, len) :: (o, l) :: rest
      | (o, l) :: rest when off + len = o -> (off, len + l) :: rest
      | (o, l) :: rest when o + l = off -> merge_right (o, l + len) rest
      | (o, l) :: rest when off >= o + l -> (o, l) :: ins rest
      | _ -> invalid_arg "Shm.free: block overlaps the free list"
    in
    t.free_list <- ins t.free_list
  end

let check_range t ~off n who =
  if off < 0 || n < 0 || off + n > t.capacity then invalid_arg who

let write_floats t ~off (a : float array) =
  let n = Array.length a in
  check_range t ~off n "Shm.write_floats";
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set t.buf (off + i) (Array.unsafe_get a i)
  done

let read_floats t ~off n =
  check_range t ~off n "Shm.read_floats";
  Array.init n (fun i -> Bigarray.Array1.unsafe_get t.buf (off + i))

(* ------------------------------------------------------------------ *)
(* Matrix descriptors: what actually crosses the job pipe. *)

type mat_desc =
  | Inline of Mat.t  (* below threshold (or arena full): plain Marshal *)
  | Block of { off : int; rows : int; cols : int }
  | Banded of {
      off : int;
      rows : int;
      cols : int;
      intervals : (int * int) list;
          (* sorted disjoint live column ranges; only their entries are
             stored (row-major, concatenated), everything outside
             unpacks to +0.0 *)
    }

let intervals_width ivs =
  List.fold_left (fun acc (lo, hi) -> acc + (hi - lo)) 0 ivs

let check_intervals ~cols ivs who =
  let last =
    List.fold_left
      (fun prev (lo, hi) ->
        if lo < prev || hi < lo || hi > cols then invalid_arg who;
        hi)
      0 ivs
  in
  ignore last

(* Blocks below ~1 MiB stay on the Marshal path: serializing them is
   cheaper than the allocator round-trip is worth, and keeping small
   payloads inline means an exhausted arena degrades gracefully instead
   of failing. 131072 floats puts the recorded 1344-symbol coefficient
   blocks (216 x 1344) on the arena path and the 344-symbol ones inline. *)
let default_threshold = 131_072

let pack_mat ?(threshold = default_threshold) ?cols:live t (m : Mat.t) =
  let rows = Mat.rows m and cols = Mat.cols m in
  let n = rows * cols in
  match live with
  | Some ivs when intervals_width ivs < cols ->
      (* Banded: store only the live columns. The caller asserts entries
         outside [ivs] are ±0.0 (they unpack as +0.0 — the canonical
         dead zero). The threshold applies to the *stored* size: a
         matrix whose live part is small rides the pipe inline-banded
         cheaply too, but Inline keeps the dense matrix, so only the
         arena path actually sheds the dead columns. *)
      check_intervals ~cols ivs "Shm.pack_mat: bad intervals";
      let lw = intervals_width ivs in
      let bn = rows * lw in
      if bn < threshold then Inline m
      else (
        match alloc t bn with
        | None -> Inline m
        | Some off ->
            let pos = ref off in
            for r = 0 to rows - 1 do
              let base = r * cols in
              List.iter
                (fun (lo, hi) ->
                  for j = lo to hi - 1 do
                    Bigarray.Array1.unsafe_set t.buf !pos
                      (Array.unsafe_get m.Mat.data (base + j));
                    incr pos
                  done)
                ivs
            done;
            Banded { off; rows; cols; intervals = ivs })
  | _ -> (
      if n < threshold then Inline m
      else
        match alloc t n with
        | None -> Inline m (* arena full: degrade to Marshal, never fail *)
        | Some off ->
            write_floats t ~off m.Mat.data;
            Block { off; rows = Mat.rows m; cols = Mat.cols m })

(* Scatter a banded block into a zero-filled [rows x cols] write target.
   Dead entries stay the +0.0 of the fresh buffer. *)
let scatter_banded t ~off ~rows ~cols ~intervals set =
  let lw = intervals_width intervals in
  check_range t ~off (rows * lw) "Shm.unpack_mat";
  let pos = ref off in
  for r = 0 to rows - 1 do
    let base = r * cols in
    List.iter
      (fun (lo, hi) ->
        for j = lo to hi - 1 do
          set (base + j) (Bigarray.Array1.unsafe_get t.buf !pos);
          incr pos
        done)
      intervals
  done

let unpack_mat t = function
  | Inline m -> m
  | Block { off; rows; cols } ->
      Mat.of_array ~rows ~cols (read_floats t ~off (rows * cols))
  | Banded { off; rows; cols; intervals } ->
      let out = Mat.create rows cols in
      scatter_banded t ~off ~rows ~cols ~intervals (fun i v ->
          Array.unsafe_set out.Mat.data i v);
      out

let view_mat t = function
  | Inline m -> Bigmat.of_mat m
  | Block { off; rows; cols } ->
      check_range t ~off (rows * cols) "Shm.view_mat";
      Bigmat.of_array1 ~rows ~cols (Bigarray.Array1.sub t.buf off (rows * cols))
  | Banded { off; rows; cols; intervals } ->
      (* A banded block is stored compacted, so a dense view requires a
         scatter copy — the transport still shipped only the live
         columns. *)
      let out = Bigmat.create rows cols in
      scatter_banded t ~off ~rows ~cols ~intervals (fun i v ->
          Bigarray.Array1.unsafe_set out.Bigmat.data i v);
      out

let free_mat t = function
  | Inline _ -> ()
  | Block { off; rows; cols } -> free t ~off ~len:(rows * cols)
  | Banded { off; rows; intervals; _ } ->
      free t ~off ~len:(rows * intervals_width intervals)

let desc_floats = function
  | Inline _ -> 0
  | Block { rows; cols; _ } -> rows * cols
  | Banded { rows; intervals; _ } -> rows * intervals_width intervals
