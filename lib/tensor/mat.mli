(** Dense row-major matrices of floats.

    This is the numeric workhorse of the whole library: concrete network
    inference, autodiff, interval matrices and zonotope coefficient blocks
    are all stored as [Mat.t]. The representation is a flat [float array]
    indexed as [data.(r * cols + c)]; all loops are written in the
    cache-friendly i-k-j order where it matters. *)

type t = private { rows : int; cols : int; data : float array }
(** A [rows] x [cols] matrix. The [data] array has length [rows * cols]
    and is exposed (read-only via the private row) for hot loops. *)

(** {1 Construction} *)

val create : int -> int -> t
(** [create r c] is the r x c zero matrix. *)

val make : int -> int -> float -> t
(** [make r c v] fills every entry with [v]. *)

val init : int -> int -> (int -> int -> float) -> t
(** [init r c f] sets entry (i, j) to [f i j]. *)

val of_array : rows:int -> cols:int -> float array -> t
(** Wraps a flat row-major array (takes ownership; no copy). *)

val of_rows : float array array -> t
(** Builds a matrix from an array of equal-length rows (copies). *)

val row_vector : float array -> t
(** 1 x n matrix sharing no storage with the argument. *)

val col_vector : float array -> t
(** n x 1 matrix. *)

val identity : int -> t
(** Identity matrix. *)

val random_uniform : Rng.t -> int -> int -> float -> t
(** [random_uniform rng r c s] has entries uniform in [-s, s]. *)

val random_gaussian : Rng.t -> int -> int -> float -> t
(** [random_gaussian rng r c std] has N(0, std^2) entries. *)

val copy : t -> t
(** Deep copy. *)

(** {1 Access} *)

val rows : t -> int
val cols : t -> int

val get : t -> int -> int -> float
(** Bounds-checked element access. *)

val set : t -> int -> int -> float -> unit
(** Bounds-checked element update. *)

val row : t -> int -> float array
(** [row m i] copies row [i] out. *)

val col : t -> int -> float array
(** [col m j] copies column [j] out. *)

val to_rows : t -> float array array
(** All rows, copied. *)

val dims : t -> int * int
(** [(rows, cols)]. *)

(** {1 Shape surgery} *)

val transpose : t -> t
val hcat : t -> t -> t
(** Horizontal concatenation; requires equal row counts. *)

val vcat : t -> t -> t
(** Vertical concatenation; requires equal column counts. *)

val sub_rows : t -> int -> int -> t
(** [sub_rows m start n] extracts rows [start .. start+n-1]. *)

val sub_cols : t -> int -> int -> t
(** [sub_cols m start n] extracts columns [start .. start+n-1]. *)

val reshape : t -> rows:int -> cols:int -> t
(** Reinterprets the same data with a new shape (copies; sizes must agree). *)

val select_cols : t -> int array -> t
(** [select_cols m idx] keeps the listed columns, in order. *)

(** {1 Pointwise and scalar operations} *)

val map : (float -> float) -> t -> t
val mapi : (int -> int -> float -> float) -> t -> t
val zip : (float -> float -> float) -> t -> t -> t
(** Pointwise binary operation; shapes must match. *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
(** Hadamard (entrywise) product. *)

val scale : float -> t -> t
val add_scalar : float -> t -> t
val abs : t -> t
val neg : t -> t

val add_in_place : t -> t -> unit
(** [add_in_place dst src] accumulates [src] into [dst]. *)

val axpy : float -> t -> t -> unit
(** [axpy a x y] performs y := y + a*x in place. *)

val scale_in_place : float -> t -> unit
val fill : t -> float -> unit

(** {1 Linear algebra} *)

val matmul : ?pool:Dpool.t -> ?cols:(int * int) list -> t -> t -> t
(** [matmul a b] with a: m x k, b: k x n gives m x n. Runs the
    register-blocked kernel, sharded over disjoint output-row chunks on
    [pool] when given and the product is large enough; results are
    bit-identical to {!matmul_naive} on finite data regardless of pool
    size. [MAT_NAIVE=1] in the environment forces the naive kernel
    (read once at startup).

    [cols] (sorted half-open intervals, typically
    [Bands.col_intervals]) restricts the computed output columns: tiles
    outside the intervals are skipped and those outputs keep the +0.0
    of the fresh result buffer. The caller asserts the skipped columns
    are dead — all-zero in [b] with [a] free of infinities — which
    makes the skipped +0.0 exactly what the dense kernel would have
    computed, so the restriction cannot change a bit. [MAT_NAIVE=1]
    ignores [cols] and computes the dense product (same bits, same
    argument). *)

val matmul_naive : t -> t -> t
(** The original i-k-j reference kernel, serial and unblocked. The seed
    baseline of [bench/kernels.ml] and the oracle of the kernel
    equivalence property tests. *)

val matmul_ta : ?pool:Dpool.t -> ?cols:(int * int) list -> t -> t -> t
(** [matmul_ta a b] = [matmul (transpose a) b] without materializing the
    transpose: a: k x m, b: k x n gives m x n. [cols] as in {!matmul}. *)

val matmul_tb : ?pool:Dpool.t -> ?cols:(int * int) list -> t -> t -> t
(** [matmul_tb a b] = [matmul a (transpose b)] without materializing the
    transpose: a: m x k, b: n x k gives m x n. [cols] as in {!matmul}
    (dead columns here are all-zero rows of [b]). *)

val gemm : ?pool:Dpool.t -> ?ta:bool -> ?tb:bool -> t -> t -> t
(** General matrix product with optional operand transposes, fused into
    the blocked kernels (no transpose copies except for [ta && tb]). *)

val mat_vec : t -> float array -> float array
(** Matrix-vector product. *)

val vec_mat : float array -> t -> float array
(** Row-vector times matrix. *)

val add_row_broadcast : t -> float array -> t
(** Adds a length-[cols] vector to every row. *)

val mul_row_broadcast : t -> float array -> t
(** Multiplies every row entrywise by a length-[cols] vector. *)

(** {1 Reductions} *)

val sum : t -> float
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val frobenius : t -> float
val max_abs : t -> float

val finite_class : t -> [ `Finite | `Inf | `Nan ]
(** One-pass poison scan: [`Nan] if any entry is NaN, else [`Inf] if any
    entry is infinite, else [`Finite]. NaN dominates Inf. Used by the
    verifier's per-op checkpoints to detect numerical faults early. *)

val row_sums : t -> float array
val row_means : t -> float array
val col_sums : t -> float array

val row_lp_norms : t -> float -> float array
(** [row_lp_norms m p] is the ℓp norm of each row; [p] may be [infinity]. *)

val equal : ?tol:float -> t -> t -> bool
(** Entrywise comparison with absolute tolerance (default 0). *)

val pp : Format.formatter -> t -> unit
(** Human-readable printer (truncates large matrices). *)
