(** Column-band occupancy for sparse coefficient matrices.

    A zonotope's ε coefficient matrix is structurally sparse: input
    symbols fill a dense left block, every symbol minted by a nonlinear
    transfer touches only the rows of the op that introduced it, and
    [Zonotope.restrict_symbol] appends near-one-hot columns. This module
    tracks that structure as a small sorted list of rectangular bands
    [(col_lo, col_hi, row_lo, row_hi)] — half-open ranges over the
    matrix's columns (noise symbols) and rows (flattened variables).

    The invariant is one-directional: {e outside} the band union every
    entry has absolute value 0.0 (the sign of a dead zero is not
    tracked — e.g. scaling by a negative turns a dead [+0.0] into
    [-0.0]). Inside a band nothing is promised. An occupancy therefore
    over-approximates the nonzero support, and [full] — every entry
    possibly live — is always a sound fallback, which is what every
    transfer falls back to when it cannot maintain bands precisely.

    Bands are what the tile-skipping kernels consume ({!col_intervals} /
    {!row_intervals} feed [Mat.matmul ~cols]) and what dead-symbol
    compaction inspects (a column outside every band is provably zero
    and can be dropped). *)

type band = { col_lo : int; col_hi : int; row_lo : int; row_hi : int }
(** A rectangle of possibly-nonzero entries: columns [col_lo .. col_hi)
    of rows [row_lo .. row_hi). *)

type t
(** An occupancy: either [full] (no information — every entry possibly
    nonzero) or a normalized list of bands whose union covers every
    nonzero entry. *)

val enabled : bool
(** False when [DEEPT_NO_SPARSE] is set (to anything but [""] or ["0"])
    in the environment, read once at startup. When false, consumers
    must treat every occupancy as {!full}: {!col_intervals} and
    {!row_intervals} return the dense interval and {!is_empty} is
    always false, so the tile-skipping and compaction paths degrade to
    the dense kernels without call sites having to test the flag. *)

val full : t
(** No structure known; every entry possibly nonzero. Always sound. *)

val empty : t
(** Every entry provably zero (e.g. a zero-width or all-zero matrix). *)

val of_bands : band list -> t
(** Normalizes (drops degenerate rectangles, sorts by [col_lo], merges
    mergeable neighbours, caps the band count by coalescing into
    bounding boxes). Over-approximation is preserved by construction. *)

val to_bands : rows:int -> cols:int -> t -> band list
(** The band list, concretizing [full] to the single dense band of the
    given shape. Clips bands to the shape. *)

val is_full : t -> bool

val is_empty : t -> bool
(** True only when the occupancy proves the whole matrix zero. Always
    false when sparsity is disabled ({!enabled} = false). *)

val add : t -> band -> t
(** Union with one more rectangle. [add full _ = full]. *)

val union : t -> t -> t

val shift_rows : int -> t -> t
(** Translate every band down by [d] rows ([full] stays [full]); used
    when matrices are stacked ([vcat]). *)

val restrict_rows : lo:int -> hi:int -> t -> t
(** Occupancy of the row slice [lo .. hi), rebased to row 0 ([full]
    stays [full]); exact for contiguous row selections. *)

val widen_rows : rows:int -> t -> t
(** Forget row structure: every band stretched to [0 .. rows). Sound
    over-approximation for transfers that mix rows arbitrarily. *)

val block_rows : bin:int -> bout:int -> t -> t
(** Convert row granularity: round each band's row range outward to
    whole [bin]-row blocks, then rescale block indices to [bout] rows
    each. This is the occupancy transform of every per-value-row affine
    map (a value row of [bin] scalars becomes one of [bout] scalars):
    output rows of block [i] depend only on input rows of block [i]. *)

val col_intervals : cols:int -> t -> (int * int) list
(** Merged, sorted, disjoint live column intervals over all rows,
    clipped to [0 .. cols); [[(0, cols)]] for [full] (and whenever
    sparsity is disabled). This is the [~cols] argument of the
    tile-skipping kernels. *)

val row_intervals : lo:int -> hi:int -> cols:int -> t -> (int * int) list
(** Like {!col_intervals} but restricted to bands meeting rows
    [lo .. hi) — the per-row-block refinement used when a kernel works
    on one value row at a time. *)

val dead_cols : cols:int -> t -> bool array
(** [dead_cols ~cols t] marks columns covered by no band — provably
    zero in every row, hence droppable by compaction. All-false for
    [full] or when sparsity is disabled. *)

val remap_cols : (int -> int option) -> t -> t
(** Rewrite column ids through a compaction table: [f c] is the new id
    of old column [c], or [None] if the column was dropped. [f] must be
    monotone on the kept columns (compaction is order-preserving), so a
    contiguous kept range maps to a contiguous range. *)

val mem : t -> row:int -> col:int -> bool
(** Whether [(row, col)] lies inside some band (i.e. possibly nonzero). *)

val area : rows:int -> cols:int -> t -> int
(** Exact area of the band union clipped to the shape (overlaps counted
    once). *)

val density : rows:int -> cols:int -> t -> float
(** [area / (rows * cols)]; 1.0 for [full] or a zero-size shape. *)

val pp : Format.formatter -> t -> unit
