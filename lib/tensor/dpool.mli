(** A reusable, spawn-once pool of OCaml 5 domains for intra-certification
    parallelism.

    Work is split by the {e caller} into chunks whose boundaries depend
    only on the problem size; the pool merely decides which domain runs
    which chunk (work-sharing over an atomic counter). As long as chunks
    write disjoint outputs, results are bit-identical for every pool
    size — the determinism contract the certification kernels rely on.

    The first chunk to raise an exception (a cooperative deadline poll,
    an unbounded bound) cancels the remaining chunks via an atomic flag;
    the exception is re-raised on the calling domain once in-flight
    chunks drain. The calling domain participates in every job, so a
    1-sized pool — or a nested call from inside a running chunk — is
    plain serial execution. *)

type t

val create : ?force:bool -> int -> t
(** [create n] spawns up to [n - 1] worker domains (the caller is the
    n-th), clamped to [Domain.recommended_domain_count () - 1] — extra
    compute threads on an oversubscribed machine only preempt each
    other, and the clamp cannot change results (chunk boundaries depend
    on [size n] alone, chunk {e assignment} never affects the output).
    [~force:true] spawns all [n - 1] regardless, for tests that must
    exercise cross-domain claiming on small machines.
    Raises [Invalid_argument] unless [1 <= n <= 128]. *)

val size : t -> int

val shutdown : t -> unit
(** Terminates and joins the worker domains. The pool must be idle. *)

val domains_active : unit -> bool
(** Whether any pool in the process currently has live worker domains.
    The OCaml 5 runtime forbids [Unix.fork] while other domains run, so
    fork-based schedulers consult this to degrade to in-process
    execution instead of crashing. *)

val run_chunks : t -> nchunks:int -> (int -> unit) -> unit
(** [run_chunks p ~nchunks f] runs [f c] for every [c] in [0, nchunks),
    each exactly once, distributed over the pool. Serial (in chunk
    order, on the calling domain) when the pool has size 1, there is a
    single chunk, or the call is nested inside a running chunk. *)

val run_ranges : t -> n:int -> chunk:int -> (start:int -> stop:int -> unit) -> unit
(** [run_ranges p ~n ~chunk f] covers [0, n) with half-open ranges of
    [chunk] items (the last one ragged) and runs [f ~start ~stop] on
    each. *)
