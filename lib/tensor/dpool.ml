(* A reusable pool of OCaml 5 domains for intra-certification parallelism.

   Design constraints, in priority order:

   1. Determinism: callers split work into chunks whose boundaries depend
      only on the problem size, never on the pool size or on scheduling.
      Each chunk owns a disjoint slice of the output, so results are
      bit-identical whether the pool has 1 domain or 8, and whichever
      domain happens to claim which chunk.
   2. Spawn-once: domains are spawned at [create] and parked on a
      condition variable between jobs. Per-job cost is one broadcast and
      one atomic counter, cheap enough for the many small-to-medium
      matrix products certification performs.
   3. Cooperative cancellation: the first chunk to raise (a cooperative
      deadline poll, an [Unbounded] bound) stores its exception in an
      atomic; the remaining chunks are claimed but skipped, and the
      exception is re-raised on the calling domain once the job drains.

   The pool is work-sharing: chunks are claimed from an atomic counter,
   so a slow chunk does not stall the others. The calling domain
   participates in the job, so [create 1] (or a reentrant call from
   inside a running chunk) degrades to plain serial execution. *)

type job = {
  run : int -> unit;  (* chunk index -> work on that chunk *)
  nchunks : int;
  next : int Atomic.t;  (* next chunk index to claim *)
  pending : int Atomic.t;  (* chunks not yet finished (or skipped) *)
  failed : exn option Atomic.t;  (* first exception; cancels the rest *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  work_cv : Condition.t;  (* workers park here between jobs *)
  done_cv : Condition.t;  (* the caller parks here while a job drains *)
  mutable current : job option;
  mutable seq : int;  (* job generation, so workers run each job once *)
  mutable stop : bool;
  active : bool Atomic.t;  (* reentrancy guard: nested calls go serial *)
  mutable workers : unit Domain.t array;
}

let size p = p.size

(* Live worker domains across every pool in the process. The OCaml 5
   runtime forbids [Unix.fork] while other domains are running, so
   fork-based schedulers (Psearch.fork_runner) consult this to degrade
   instead of crashing. *)
let live_workers = Atomic.make 0

let domains_active () = Atomic.get live_workers > 0

(* Claim-and-run loop shared by workers and the caller. Every chunk is
   claimed exactly once; after a failure the remaining chunks are claimed
   and dropped so [pending] still drains to zero. *)
let drain pool j ~signal =
  let continue = ref true in
  while !continue do
    let c = Atomic.fetch_and_add j.next 1 in
    if c >= j.nchunks then continue := false
    else begin
      (if Atomic.get j.failed = None then
         try j.run c
         with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
      if Atomic.fetch_and_add j.pending (-1) = 1 && signal then begin
        (* last chunk: wake the caller, which may already be waiting *)
        Mutex.lock pool.mutex;
        Condition.broadcast pool.done_cv;
        Mutex.unlock pool.mutex
      end
    end
  done

let worker pool =
  let rec loop last_seq =
    Mutex.lock pool.mutex;
    while (not pool.stop) && pool.seq = last_seq do
      Condition.wait pool.work_cv pool.mutex
    done;
    let seq = pool.seq and job = pool.current and stop = pool.stop in
    Mutex.unlock pool.mutex;
    if not stop then begin
      (match job with Some j -> drain pool j ~signal:true | None -> ());
      loop seq
    end
  in
  loop 0

let create ?(force = false) n =
  if n < 1 then invalid_arg "Dpool.create: need at least one domain";
  if n > 128 then invalid_arg "Dpool.create: more than 128 domains";
  (* Never run more compute threads than the hardware offers: extra
     domains on an oversubscribed machine only preempt each other (and
     the caller) mid-chunk. Chunk boundaries depend on [size] alone and
     results are chunk-assignment-independent, so clamping the worker
     count changes nothing but the speed. [force] spawns all [n - 1]
     regardless — used by tests that must exercise real cross-domain
     claiming even on small machines. *)
  let spawned =
    if force then n - 1
    else min (n - 1) (max 0 (Domain.recommended_domain_count () - 1))
  in
  let pool =
    {
      size = n;
      mutex = Mutex.create ();
      work_cv = Condition.create ();
      done_cv = Condition.create ();
      current = None;
      seq = 0;
      stop = false;
      active = Atomic.make false;
      workers = [||];
    }
  in
  pool.workers <- Array.init spawned (fun _ -> Domain.spawn (fun () -> worker pool));
  ignore (Atomic.fetch_and_add live_workers spawned);
  pool

let shutdown pool =
  Mutex.lock pool.mutex;
  pool.stop <- true;
  Condition.broadcast pool.work_cv;
  Mutex.unlock pool.mutex;
  Array.iter Domain.join pool.workers;
  ignore (Atomic.fetch_and_add live_workers (-(Array.length pool.workers)));
  pool.workers <- [||]

(* Run [f c] for every chunk index [c] in [0, nchunks): in chunk order on
   the calling domain when the pool cannot help (size 1, a single chunk,
   or a nested call from inside a running chunk), otherwise shared across
   the pool. Chunk boundaries are the caller's: results must not depend
   on which domain runs a chunk. *)
let run_chunks pool ~nchunks f =
  if nchunks <= 0 then ()
  else if nchunks = 1 || pool.size = 1 then
    for c = 0 to nchunks - 1 do
      f c
    done
  else if not (Atomic.compare_and_set pool.active false true) then
    (* nested parallel region (e.g. a matrix product inside a chunk of a
       parallel dot-product): run serially, the outer job owns the pool *)
    for c = 0 to nchunks - 1 do
      f c
    done
  else begin
    let j =
      {
        run = f;
        nchunks;
        next = Atomic.make 0;
        pending = Atomic.make nchunks;
        failed = Atomic.make None;
      }
    in
    Mutex.lock pool.mutex;
    pool.current <- Some j;
    pool.seq <- pool.seq + 1;
    Condition.broadcast pool.work_cv;
    Mutex.unlock pool.mutex;
    drain pool j ~signal:false;
    Mutex.lock pool.mutex;
    while Atomic.get j.pending > 0 do
      Condition.wait pool.done_cv pool.mutex
    done;
    pool.current <- None;
    Mutex.unlock pool.mutex;
    Atomic.set pool.active false;
    match Atomic.get j.failed with Some e -> raise e | None -> ()
  end

(* Split [n] items into deterministic fixed-size chunks and run
   [f ~start ~stop] over them (half-open ranges). The chunk size is part
   of the caller's contract: it fixes the work decomposition regardless
   of pool size. *)
let run_ranges pool ~n ~chunk f =
  if n > 0 then begin
    if chunk < 1 then invalid_arg "Dpool.run_ranges: chunk < 1";
    let nchunks = (n + chunk - 1) / chunk in
    run_chunks pool ~nchunks (fun c ->
        let start = c * chunk in
        f ~start ~stop:(min n (start + chunk)))
  end
