(** Bigarray-backed dense matrices (C-layout float64 [Array1]) behind
    the {!Mat} kernel interface.

    The blocked kernels are exact ports of {!Mat}'s (same 2x4 register
    tile, same column tiling, same left-operand zero skip, same
    ascending inner-dimension accumulation), so on equal inputs the
    results are bit-identical across the two backends. [MAT_NAIVE=1]
    selects the naive reference kernel exactly as it does for {!Mat}.

    The payoff over {!Mat}: the storage can alias a [Unix.map_file]
    MAP_SHARED arena ({!Shm}), letting forked workers run kernels
    directly on parent-written coefficient blocks — the zero-copy job
    transport — and large blocks live outside the GC-managed heap. *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { rows : int; cols : int; data : buf }

val create : int -> int -> t
(** Zero-filled [rows x cols] matrix on a fresh (non-shared) buffer. *)

val init : int -> int -> (int -> int -> float) -> t

val of_array1 : rows:int -> cols:int -> buf -> t
(** Wrap an existing buffer (e.g. an {!Shm} arena view) without
    copying. @raise Invalid_argument on a size mismatch. *)

val of_mat : Mat.t -> t
(** Copy a float-array matrix into a fresh buffer. *)

val to_mat : t -> Mat.t
(** Copy out to the float-array backend. *)

val blit_of_mat : Mat.t -> t -> unit
(** Copy a {!Mat} into an existing equal-shaped Bigmat in place (the
    write side of the arena transport).
    @raise Invalid_argument on a shape mismatch. *)

val rows : t -> int
val cols : t -> int
val dims : t -> int * int
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val transpose : t -> t

val matmul : ?cols:(int * int) list -> t -> t -> t
(** Blocked [A.B]; bit-identical to [Mat.matmul] on equal inputs.
    [cols] restricts the computed output columns to the given live
    intervals exactly as in [Mat.matmul] (the caller asserts the
    skipped columns are dead). *)

val matmul_ta : ?cols:(int * int) list -> t -> t -> t
(** Blocked [Aᵀ.B] without a transpose copy; bit-identical to
    [Mat.matmul_ta] on equal inputs. [cols] as in {!matmul}. *)

val matmul_tb : ?cols:(int * int) list -> t -> t -> t
(** Blocked [A.Bᵀ] without a transpose copy; bit-identical to
    [Mat.matmul_tb] on equal inputs. [cols] as in {!matmul}. *)

val matmul_naive : t -> t -> t
(** The i-k-j reference kernel ([MAT_NAIVE=1] path). *)

val equal_bits_mat : t -> Mat.t -> bool
(** Bitwise equality against a float-array matrix (compares IEEE bit
    patterns, so it is meaningful even on NaN). *)

val fold : ('a -> float -> 'a) -> 'a -> t -> 'a
val max_abs : t -> float
