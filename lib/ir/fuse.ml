(* Affine-fusion pre-pass over Ir programs.

   The zonotope interpreter pays one full pass over the (variables x
   symbols) coefficient matrices per op. For ops that are row-wise
   affine in the value columns — [Linear], and mean-only [Center_norm],
   which is the column-affine map y = x.M + beta with
   M[c][j] = gamma[j] * (delta_cj - 1/d) — a chain of k such ops can be
   composed once at program load into a single [Linear] node, so the
   interpreter performs one coefficient pass instead of k.

   Legality rules (each is load-bearing):

   - only [Linear] and [Center_norm { divide_std = false }] enter a
     run: every other op either allocates symbols, is non-linear, or is
     not expressible as a plain x.M + b on the value columns
     ([Pool_first] and [Positional] change or depend on the row
     structure, so they stay put — and remain countable by
     [Propagate.affine_prefix_len], which sees fused nodes as the plain
     [Linear]s they are);
   - a run extends through value [v] only when [v] has exactly one
     consumer (the next op of the run) and is not the program output:
     fusing away a value somebody else reads would change the graph's
     meaning, not just its cost;
   - runs shorter than 2 composed ops are emitted verbatim: rewriting a
     lone [Center_norm] into a dense [Linear] would replace an O(d)
     structured transfer by an O(d^2) matmul for zero fused benefit;
   - the fused program must pass [Ir.validate] (composition of finite
     weights can overflow on adversarial models); if it does not, the
     original program is returned untouched.

   Numerics: the composed weights are dyadically recombined
   (w1.w2 instead of two successive products), so fused intermediate
   floats may differ from unfused ones in the last ulps. Certification
   *decisions* — and therefore the bisection radii, which are dyadic
   rationals determined by those boolean decisions — are preserved; the
   test suite pins this on the committed models. On every zoo model the
   pass is in fact a structural no-op (residual connections give each
   normalization two consumers), so existing pins are untouched by
   construction; the fused win shows on chain-shaped programs (see
   bench/kernels.ml's fused rows). *)

open Tensor

type stats = { runs : int; ops_fused : int; ops_before : int; ops_after : int }

(* The (M, b) atom of an op that is row-wise affine in the value
   columns, or None. *)
let atom d op =
  match op with
  | Ir.Linear { src; w; b } -> Some (src, `Mat (w, b))
  | Ir.Center_norm { src; gamma; beta; divide_std = false } ->
      Some (src, `Center (d, gamma, beta))
  | _ -> None

let materialize = function
  | `Mat (w, b) -> (w, b)
  | `Center (d, gamma, beta) ->
      let inv = 1.0 /. float_of_int d in
      ( Mat.init d d (fun c j ->
            gamma.(j) *. ((if c = j then 1.0 else 0.0) -. inv)),
        beta )

(* (M, b) . (M', b') = (M.M', b.M' + b') *)
let compose (m, b) (m', b') =
  (Mat.matmul m m', Array.mapi (fun j x -> x +. b'.(j)) (Mat.vec_mat b m'))

let fuse (p : Ir.program) =
  let n = Array.length p.Ir.ops in
  let dims = Array.init (Ir.num_values p) (Ir.out_dim p) in
  (* Consumer counts per value id; the program output counts as one. *)
  let uses = Array.make (n + 1) 0 in
  Array.iter
    (fun op -> List.iter (fun s -> uses.(s) <- uses.(s) + 1) (Ir.op_src_ids op))
    p.Ir.ops;
  uses.(Ir.output_id p) <- uses.(Ir.output_id p) + 1;
  let remap = Array.make (n + 1) (-1) in
  remap.(0) <- 0;
  let out = ref [] in
  let n_out = ref 0 in
  let emit op =
    out := op :: !out;
    incr n_out
  in
  let runs = ref 0 and ops_fused = ref 0 in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    (match atom dims.(start + 1) p.Ir.ops.(start) with
    | Some (src0, a0) ->
        (* Greedily extend while the op's value feeds exactly the next
           affine op. Op index j defines value j + 1. *)
        let stop = ref start in
        let continue = ref true in
        while !continue && !stop + 1 < n do
          let v = !stop + 1 in
          match atom dims.(!stop + 2) p.Ir.ops.(!stop + 1) with
          | Some (src, _) when src = v && uses.(v) = 1 -> incr stop
          | _ -> continue := false
        done;
        if !stop > start then begin
          let acc = ref (materialize a0) in
          for j = start + 1 to !stop do
            match atom dims.(j + 1) p.Ir.ops.(j) with
            | Some (_, a) -> acc := compose !acc (materialize a)
            | None -> assert false
          done;
          let w, b = !acc in
          emit (Ir.Linear { src = remap.(src0); w; b });
          (* Intermediate values vanish; the run's last value survives. *)
          remap.(!stop + 1) <- !n_out;
          incr runs;
          ops_fused := !ops_fused + (!stop - start + 1);
          i := !stop + 1
        end
        else begin
          emit
            (match p.Ir.ops.(start) with
            | Ir.Linear { src; w; b } -> Ir.Linear { src = remap.(src); w; b }
            | Ir.Center_norm { src; gamma; beta; divide_std } ->
                Ir.Center_norm { src = remap.(src); gamma; beta; divide_std }
            | _ -> assert false);
          remap.(start + 1) <- !n_out;
          incr i
        end
    | None ->
        let r v =
          let v' = remap.(v) in
          assert (v' >= 0);
          v'
        in
        emit
          (match p.Ir.ops.(start) with
          | Ir.Linear { src; w; b } -> Ir.Linear { src = r src; w; b }
          | Ir.Relu src -> Ir.Relu (r src)
          | Ir.Tanh src -> Ir.Tanh (r src)
          | Ir.Add (a, b) -> Ir.Add (r a, r b)
          | Ir.Center_norm { src; gamma; beta; divide_std } ->
              Ir.Center_norm { src = r src; gamma; beta; divide_std }
          | Ir.Self_attention { src; att } ->
              Ir.Self_attention { src = r src; att }
          | Ir.Pool_first src -> Ir.Pool_first (r src)
          | Ir.Positional { src; pos } -> Ir.Positional { src = r src; pos });
        remap.(start + 1) <- !n_out;
        incr i)
  done;
  let fused =
    { Ir.input_dim = p.Ir.input_dim; ops = Array.of_list (List.rev !out) }
  in
  let stats =
    {
      runs = !runs;
      ops_fused = !ops_fused;
      ops_before = n;
      ops_after = Array.length fused.Ir.ops;
    }
  in
  if !runs = 0 then (p, { stats with ops_after = n })
  else
    match Ir.validate fused with
    | Ok () -> (fused, stats)
    | Error _ ->
        (* Composed weights went non-finite: keep the original graph. *)
        (p, { runs = 0; ops_fused = 0; ops_before = n; ops_after = n })

let fuse_program p = fst (fuse p)
