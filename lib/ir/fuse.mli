(** Affine-fusion pre-pass: compose maximal chains of row-wise affine
    ops into single {!Ir.op.Linear} nodes at program load.

    A chain of k affine ops costs the zonotope interpreter k full
    passes over the coefficient matrices; the composed node costs one.
    Eligible ops are [Linear] and mean-only [Center_norm] (the
    column-affine map [y = x.M + beta] with
    [M[c][j] = gamma[j]((c = j) - 1/d)]). A run extends through a value
    only when that value has exactly one consumer and is not the
    program output, and runs shorter than two ops are emitted verbatim
    — so the pass can only remove coefficient passes, never change
    reachable graph structure.

    Fused nodes are plain [Linear]s: every domain, the serializer,
    [Ir.validate] and {!Propagate.affine_prefix_len} (prefix sharing)
    work on them unchanged. Composition reassociates float products,
    so fused intermediate values may differ from unfused ones in the
    last ulps; certification decisions — and the bisection radii
    derived from them — are preserved (pinned by the test suite). On
    the zoo models the pass is a structural no-op (residuals give every
    normalization two consumers), which is what makes it
    bit-compatible with every committed pin by construction.

    Fusion must be disabled when per-op fault injection is armed
    ([Config.fault] names an op index into the {e unfused} graph); use
    [Propagate.fuse_for], which gates on the config, rather than
    calling {!fuse_program} directly from certification front-ends. *)

type stats = {
  runs : int;  (** composed chains *)
  ops_fused : int;  (** source ops absorbed into those chains *)
  ops_before : int;
  ops_after : int;
}

val fuse : Ir.program -> Ir.program * stats
(** Returns the fused program (the input itself when no chain of ≥ 2
    eligible ops exists, or when the composed weights fail
    [Ir.validate]) and what was done. *)

val fuse_program : Ir.program -> Ir.program
(** [fst (fuse p)]. *)
