(** Model intermediate representation.

    Every network in this repository — Transformer encoders for sentiment
    classification, the Vision Transformer, plain feed-forward ReLU nets —
    is compiled to this small sequential SSA-style IR. All analyses are
    interpreters over it: concrete inference ([Nn.Forward]), interval
    bound propagation ([Interval.Ibp]), Multi-norm Zonotope propagation
    ([Deept.Propagate]) and linear relaxation ([Linrelax]).

    Values are matrices. Value [0] is the program input (the embedded
    token sequence, [n x d] with [n] variable at run time); the op at
    index [i] defines value [i + 1]. Ops refer to earlier values by id,
    which encodes residual connections directly. *)

type value_id = int
(** Index into the value environment: 0 is the input, [i + 1] is the
    output of op [i]. *)

type attention = {
  heads : int;  (** number of attention heads [A] *)
  wq : Tensor.Mat.t;  (** query projection, [d x (A * dk)] *)
  bq : float array;  (** query bias, length [A * dk] *)
  wk : Tensor.Mat.t;  (** key projection, [d x (A * dk)] *)
  bk : float array;  (** key bias *)
  wv : Tensor.Mat.t;  (** value projection, [d x (A * dv)] *)
  bv : float array;  (** value bias *)
  wo : Tensor.Mat.t;  (** output projection, [(A * dv) x d] *)
  bo : float array;  (** output bias, length [d] *)
}
(** Multi-head self-attention parameters (Section 3.1 of the paper). *)

type op =
  | Linear of { src : value_id; w : Tensor.Mat.t; b : float array }
      (** Row-wise affine map: [y = x * w + b], [w : d_in x d_out]. *)
  | Relu of value_id
  | Tanh of value_id
  | Add of value_id * value_id
      (** Entrywise sum of two earlier values (residual connections). *)
  | Center_norm of {
      src : value_id;
      gamma : float array;
      beta : float array;
      divide_std : bool;
    }
      (** Row-wise normalization: subtract the row mean, optionally divide
          by the row standard deviation, then scale by [gamma] and shift
          by [beta]. The paper's default ([divide_std = false]) follows
          Shi et al.: no division by the standard deviation. *)
  | Self_attention of { src : value_id; att : attention }
  | Pool_first of value_id
      (** Keep only the first row (the paper's pooling layer). *)
  | Positional of { src : value_id; pos : Tensor.Mat.t }
      (** Adds the constant positional-encoding row [pos.(i)] to row [i].
          Requires the run-time row count to not exceed [rows pos]. *)

type program = {
  input_dim : int;  (** number of columns of the input value *)
  ops : op array;
}

val output_id : program -> value_id
(** Id of the last value, the program output. *)

val num_values : program -> int
(** Total number of values including the input. *)

val op_src_ids : op -> value_id list
(** The value ids an op reads. *)

val out_dim : program -> value_id -> int
(** Statically known column count of a value. Row counts depend on the
    input sequence length (until [Pool_first], which forces 1 row). *)

val validate : program -> (unit, string) result
(** Checks SSA well-formedness: every source id precedes its use, all
    weight shapes agree with the inferred value shapes, attention head
    counts divide projection widths. Also rejects NaN/Inf weight
    entries with a precise op-path message ("op 3 (self_attention):
    weight wq has nan at (0, 2)") so a corrupt model file fails at load
    time instead of surfacing as a mid-propagation [Numerical_fault]. *)

val validate_exn : program -> unit
(** Like {!validate} but raises [Invalid_argument] with the message. *)

val num_params : program -> int
(** Total number of scalar parameters. *)

val kind_name : op -> string
(** Constructor name of an op ("linear", "self_attention", ...), the
    key used by {!depth_of_kind} and by {!Interp} trace events. *)

val depth_of_kind : program -> string -> int
(** [depth_of_kind p kind] counts ops whose constructor name matches
    [kind] (e.g. ["self_attention"] counts Transformer layers). *)

val pp : Format.formatter -> program -> unit
(** Structural summary: one line per op with shapes. *)

(** {1 Parameter access}

    Uniform access to all weight tensors of a program, used by the
    serializer and by tests that perturb parameters. *)

val parameters : program -> (string * Tensor.Mat.t) list
(** Matrix parameters with stable hierarchical names ("op3.wq", ...).
    Bias vectors are exposed as [1 x n] matrices. Matrices are copied;
    use the serializer in {!Serialize} to persist or restore models. *)

module Serialize : sig
(** Portable text serialization of {!program} values.

    The format is a line-oriented text format (hex-exact floats via
    ["%h"]), so saved models round-trip bit-exactly across runs and are
    diffable. Used by [bin/train] to persist the model zoo and by the
    benchmark harness to reload it. *)

val to_channel : out_channel -> program -> unit
(** Writes a program (architecture and weights). *)

val of_channel : in_channel -> program
(** Reads a program written by {!to_channel}.
    @raise Failure on malformed input. *)

val save : string -> program -> unit
(** [save path p] writes [p] to [path], creating parent directories. *)

val load : string -> program
(** [load path] reads a program back.
    @raise Sys_error if the file does not exist. *)

end
