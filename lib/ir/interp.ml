(* Generic abstract interpreter over Ir programs. See interp.mli for the
   contract. The checkpoint order after each op is load-bearing and must
   not change — it pins the observational behavior the certification
   tests rely on:

     transfer (+ fault injection) -> widen -> trace -> deadline
       -> size budget -> poison scan -> store

   In particular the trace event fires before any abort so a run that
   dies at op i still reports op i, and the poison scan runs last so a
   deadline hit on an already-poisoned value reports Timeout, exactly as
   the pre-functor Propagate loop did. *)

type finiteness = [ `Finite | `Nan | `Inf ]

type event = {
  op_index : int;
  kind : string;
  wall_s : float;
  size : int;
  width : float;
  density : float;
}

type sink = event -> unit

type abort =
  | Timeout
  | Size_budget
  | Poison of [ `Nan | `Inf ]

type 'v checks = {
  deadline : float option;
  max_size : int option;
  poison : bool;
  fault : (int * ('v -> unit)) option;
  trace : sink option;
  abort : abort -> exn;
}

let no_checks =
  {
    deadline = None;
    max_size = None;
    poison = false;
    fault = None;
    trace = None;
    abort = (fun _ -> Failure "Interp: checkpoint tripped without an abort handler");
  }

module type DOMAIN = sig
  type state
  type value

  val name : string

  val transfer :
    state ->
    op_index:int ->
    Ir.op ->
    get:(Ir.value_id -> value) ->
    set:(Ir.value_id -> value -> unit) ->
    value

  val widen : state -> op_index:int -> value -> value
  val is_poisoned : value -> finiteness
  val size : state -> value -> int
  val width : state -> value -> float
  val density : state -> value -> float
end

module Make (D : DOMAIN) = struct
  let step checks st (p : Ir.program) (vals : D.value array) i =
    let op = p.Ir.ops.(i) in
    (* Timing only matters when someone is listening. *)
    let t_op = match checks.trace with
      | Some _ -> Unix.gettimeofday ()
      | None -> 0.0
    in
    let out =
      D.transfer st ~op_index:i op
        ~get:(fun v -> vals.(v))
        ~set:(fun v x -> vals.(v) <- x)
    in
    (match checks.fault with
    | Some (at, action) when at = i -> action out
    | _ -> ());
    let out = D.widen st ~op_index:i out in
    (match checks.trace with
    | Some sink ->
        sink
          {
            op_index = i;
            kind = Ir.kind_name op;
            wall_s = Unix.gettimeofday () -. t_op;
            size = D.size st out;
            width = D.width st out;
            density = D.density st out;
          }
    | None -> ());
    (match checks.deadline with
    | Some dl when Unix.gettimeofday () > dl -> raise (checks.abort Timeout)
    | _ -> ());
    (match checks.max_size with
    | Some cap when D.size st out > cap -> raise (checks.abort Size_budget)
    | _ -> ());
    (if checks.poison then
       match D.is_poisoned out with
       | `Finite -> ()
       | (`Nan | `Inf) as bad -> raise (checks.abort (Poison bad)));
    vals.(i + 1) <- out

  let run_values ?(checks = no_checks) ?(start = 0) ?stop st (p : Ir.program)
      (vals : D.value array) =
    let n = Array.length p.Ir.ops in
    let stop = match stop with Some s -> s | None -> n in
    if Array.length vals <> Ir.num_values p then
      invalid_arg
        (Printf.sprintf "Interp(%s).run_values: %d values for %d-op program"
           D.name (Array.length vals) n);
    if start < 0 || stop > n || start > stop then
      invalid_arg
        (Printf.sprintf "Interp(%s).run_values: bad op range [%d, %d) of %d"
           D.name start stop n);
    for i = start to stop - 1 do
      step checks st p vals i
    done

  let run_all ?checks st (p : Ir.program) (input : D.value) =
    let vals = Array.make (Ir.num_values p) input in
    run_values ?checks st p vals;
    vals

  let run ?checks st (p : Ir.program) (input : D.value) =
    (run_all ?checks st p input).(Ir.output_id p)
end
