(** Generic abstract interpreter over {!Ir.program}s.

    Every analysis in this repository — concrete inference
    ([Nn.Forward]), interval bound propagation ([Interval.Ibp]), the
    Multi-norm Zonotope ([Deept.Propagate]) and the linear-relaxation
    baseline ([Linrelax.Verify]) — is an instance of one interpretation
    loop: walk the op array, apply a domain-specific transformer per op,
    and store one abstract value per IR value id.

    This module owns that loop. A domain plugs in through {!DOMAIN}
    (one transformer, plus poison/size/width hooks); the loop owns
    everything cross-cutting:

    - {b checkpoints} — a wall-clock deadline, a domain-size budget and
      a NaN/Inf poison scan run after every op, aborting with a typed
      exception supplied by the caller (the certifier maps them to
      [Verdict.Abort]);
    - {b fault injection} — a deterministic callback fired after one
      designated op, the test hook behind the degradation-ladder suites;
    - {b tracing} — a structured {!event} per op delivered to an
      optional {!sink}; per-op profiling ([certify --profile]) and the
      [DEEPT_TRACE] stderr dump are both sinks.

    Domains never re-implement dispatch, and a new abstract domain gets
    deadlines, budgets, poison containment and profiling for free (see
    DESIGN.md §8). *)

type finiteness = [ `Finite | `Nan | `Inf ]
(** Poison classification of an abstract value. [`Nan] dominates
    [`Inf]: a NaN means arithmetic already went through an undefined
    form, an Inf is still a sound (if vacuous) bound — but both poison
    everything downstream. *)

type event = {
  op_index : int;  (** index into [program.ops] *)
  kind : string;  (** {!Ir.kind_name} of the op *)
  wall_s : float;  (** wall-clock seconds spent in the transformer *)
  size : int;  (** domain size metric (ε symbols, entries, scalars) *)
  width : float;
      (** largest concretized bound width of the op output; [nan] when
          the domain cannot bound it (collapsed abstraction) *)
  density : float;
      (** live fraction of the op output's coefficient storage per the
          domain's sparsity tracking ({!DOMAIN.density}); 1.0 for
          domains without one *)
}
(** One per-op trace record. [wall_s], [size], [width] and [density]
    are computed only when a sink is installed — an idle trace stream
    costs one branch per op. *)

type sink = event -> unit

type abort =
  | Timeout  (** the wall-clock deadline passed *)
  | Size_budget  (** the domain size metric exceeded its cap *)
  | Poison of [ `Nan | `Inf ]  (** the op output failed the poison scan *)

type 'v checks = {
  deadline : float option;
      (** absolute wall-clock deadline (epoch seconds); checked after
          every op *)
  max_size : int option;
      (** cap on the domain's {!DOMAIN.size} metric — live ε symbols
          for the zonotope, relaxation scalars for linrelax *)
  poison : bool;  (** scan every op output for NaN/Inf *)
  fault : (int * ('v -> unit)) option;
      (** [(op, action)]: run [action] on the output of op [op] —
          deterministic fault injection (may mutate the value or raise) *)
  trace : sink option;
  abort : abort -> exn;
      (** the exception raised when a checkpoint trips; certification
          front-ends supply a [Verdict.Abort] constructor *)
}
(** Checkpoint configuration for one run. {!no_checks} disables
    everything; with it the loop is exactly the bare dispatch walk. *)

val no_checks : 'v checks
(** No deadline, no size cap, no poison scan, no fault, no trace. The
    [abort] hook is unreachable (raises [Failure] defensively). *)

(** An abstract domain: one value type, one transformer per {!Ir.op},
    and the hooks the generic loop needs. *)
module type DOMAIN = sig
  type state
  (** Per-run mutable state (symbol allocator, config, caches). *)

  type value
  (** The abstract value attached to each IR value id. *)

  val name : string
  (** Short domain name, used in diagnostics. *)

  val transfer :
    state ->
    op_index:int ->
    Ir.op ->
    get:(Ir.value_id -> value) ->
    set:(Ir.value_id -> value -> unit) ->
    value
  (** Abstract transformer for one op. [get] reads earlier values;
      [set] may replace one (the zonotope domain re-stores the reduced
      layer input so the residual [Add] sees it too). A domain whose
      arithmetic can collapse must catch its own collapse exception and
      re-raise the typed abort it wants callers to see. *)

  val widen : state -> op_index:int -> value -> value
  (** Applied to every op output before the checkpoints; the identity
      for all current domains, the hook where a widening/reduction
      policy slots in. *)

  val is_poisoned : value -> finiteness
  (** NaN/Inf scan used by the poison checkpoint. *)

  val size : state -> value -> int
  (** The metric compared against [checks.max_size], and reported in
      trace events. *)

  val width : state -> value -> float
  (** Largest concretized bound width of a value, for trace events.
      Only called when a sink is installed — may be expensive. *)

  val density : state -> value -> float
  (** Live fraction of the value's coefficient storage (live area /
      dense area) for trace events; domains without sparsity tracking
      return 1.0. Only called when a sink is installed. *)
end

module Make (D : DOMAIN) : sig
  val run_values :
    ?checks:D.value checks ->
    ?start:int ->
    ?stop:int ->
    D.state ->
    Ir.program ->
    D.value array ->
    unit
  (** [run_values st p vals] interprets ops [start..stop-1] (default:
      all), writing the output of op [i] to [vals.(i + 1)]. Entries
      [0..start] must already be filled. The value array has
      {!Ir.num_values} entries. *)

  val run_all :
    ?checks:D.value checks -> D.state -> Ir.program -> D.value -> D.value array
  (** All intermediate values; index 0 is the input. *)

  val run : ?checks:D.value checks -> D.state -> Ir.program -> D.value -> D.value
  (** The program output value. *)
end
