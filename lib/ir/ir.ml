open Tensor

type value_id = int

type attention = {
  heads : int;
  wq : Mat.t;
  bq : float array;
  wk : Mat.t;
  bk : float array;
  wv : Mat.t;
  bv : float array;
  wo : Mat.t;
  bo : float array;
}

type op =
  | Linear of { src : value_id; w : Mat.t; b : float array }
  | Relu of value_id
  | Tanh of value_id
  | Add of value_id * value_id
  | Center_norm of {
      src : value_id;
      gamma : float array;
      beta : float array;
      divide_std : bool;
    }
  | Self_attention of { src : value_id; att : attention }
  | Pool_first of value_id
  | Positional of { src : value_id; pos : Mat.t }

type program = { input_dim : int; ops : op array }

let output_id p = Array.length p.ops
let num_values p = Array.length p.ops + 1

let op_src_ids = function
  | Linear { src; _ } | Relu src | Tanh src
  | Center_norm { src; _ }
  | Self_attention { src; _ }
  | Positional { src; _ }
  | Pool_first src ->
      [ src ]
  | Add (a, b) -> [ a; b ]

(* Column count of each value; row counts are dynamic. *)
let dims_of p =
  let n = num_values p in
  let d = Array.make n 0 in
  d.(0) <- p.input_dim;
  Array.iteri
    (fun i op ->
      let v = i + 1 in
      d.(v) <-
        (match op with
        | Linear { w; _ } -> Mat.cols w
        | Relu src | Tanh src | Pool_first src -> d.(src)
        | Add (a, _) -> d.(a)
        | Center_norm { src; _ } | Positional { src; _ } -> d.(src)
        | Self_attention { att; _ } -> Mat.cols att.wo))
    p.ops;
  d

let out_dim p v =
  if v < 0 || v >= num_values p then invalid_arg "Ir.out_dim";
  (dims_of p).(v)

let kind_name = function
  | Linear _ -> "linear"
  | Relu _ -> "relu"
  | Tanh _ -> "tanh"
  | Add _ -> "add"
  | Center_norm _ -> "center_norm"
  | Self_attention _ -> "self_attention"
  | Pool_first _ -> "pool_first"
  | Positional _ -> "positional"

(* First non-finite entry of an array, with its class. *)
let nonfinite_at (a : float array) =
  let n = Array.length a in
  let rec go i =
    if i >= n then None
    else
      let x = Array.unsafe_get a i in
      if Float.is_nan x then Some (i, "nan")
      else if x = infinity || x = neg_infinity then Some (i, "inf")
      else go (i + 1)
  in
  go 0

let validate p =
  let ( let* ) r f = Result.bind r f in
  let fail fmt = Format.kasprintf (fun s -> Error s) fmt in
  (* Weight finiteness: a corrupt model file must fail here, at load
     time, with the op path — not deep inside a propagation as a
     confusing Numerical_fault. *)
  let finite_vec i op what (v : float array) =
    match nonfinite_at v with
    | None -> Ok ()
    | Some (k, cls) ->
        fail "op %d (%s): weight %s has %s at index %d" i (kind_name op) what
          cls k
  in
  let finite_mat i op what (m : Mat.t) =
    match nonfinite_at m.Mat.data with
    | None -> Ok ()
    | Some (k, cls) ->
        fail "op %d (%s): weight %s has %s at (%d, %d)" i (kind_name op) what
          cls (k / Mat.cols m) (k mod Mat.cols m)
  in
  let finite_op i op =
    match op with
    | Relu _ | Tanh _ | Add _ | Pool_first _ -> Ok ()
    | Linear { w; b; _ } ->
        let* () = finite_mat i op "w" w in
        finite_vec i op "b" b
    | Positional { pos; _ } -> finite_mat i op "pos" pos
    | Center_norm { gamma; beta; _ } ->
        let* () = finite_vec i op "gamma" gamma in
        finite_vec i op "beta" beta
    | Self_attention { att; _ } ->
        let* () = finite_mat i op "wq" att.wq in
        let* () = finite_vec i op "bq" att.bq in
        let* () = finite_mat i op "wk" att.wk in
        let* () = finite_vec i op "bk" att.bk in
        let* () = finite_mat i op "wv" att.wv in
        let* () = finite_vec i op "bv" att.bv in
        let* () = finite_mat i op "wo" att.wo in
        finite_vec i op "bo" att.bo
  in
  let check_src i src =
    if src < 0 || src > i then fail "op %d reads future or invalid value %d" i src
    else Ok ()
  in
  (* All source ids must be valid before shape inference can run. *)
  let srcs_ok = ref (Ok ()) in
  Array.iteri
    (fun i op ->
      List.iter
        (fun src ->
          if Result.is_ok !srcs_ok then
            srcs_ok := check_src i src)
        (op_src_ids op))
    p.ops;
  match !srcs_ok with
  | Error _ as e -> e
  | Ok () ->
  let dims = dims_of p in
  let rec go i =
    if i >= Array.length p.ops then Ok ()
    else
      let op = p.ops.(i) in
      let* () =
        List.fold_left
          (fun acc src -> Result.bind acc (fun () -> check_src i src))
          (Ok ()) (op_src_ids op)
      in
      let* () =
        match op with
        | Linear { src; w; b } ->
            if Mat.rows w <> dims.(src) then
              fail "op %d: Linear weight rows %d <> input dim %d" i (Mat.rows w)
                dims.(src)
            else if Array.length b <> Mat.cols w then
              fail "op %d: Linear bias length %d <> weight cols %d" i
                (Array.length b) (Mat.cols w)
            else Ok ()
        | Relu _ | Tanh _ | Pool_first _ -> Ok ()
        | Positional { src; pos } ->
            if Mat.cols pos <> dims.(src) then
              fail "op %d: Positional width %d <> value dim %d" i (Mat.cols pos)
                dims.(src)
            else Ok ()
        | Add (a, b) ->
            if dims.(a) <> dims.(b) then
              fail "op %d: Add dims %d <> %d" i dims.(a) dims.(b)
            else Ok ()
        | Center_norm { src; gamma; beta; _ } ->
            if Array.length gamma <> dims.(src) || Array.length beta <> dims.(src)
            then fail "op %d: Center_norm parameter length mismatch" i
            else Ok ()
        | Self_attention { src; att } ->
            let d = dims.(src) in
            let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
            if Mat.rows att.wq <> d || Mat.rows att.wk <> d || Mat.rows att.wv <> d
            then fail "op %d: attention projection input dim mismatch" i
            else if Mat.cols att.wk <> adk then
              fail "op %d: wq/wk width mismatch" i
            else if att.heads <= 0 || adk mod att.heads <> 0 || adv mod att.heads <> 0
            then fail "op %d: head count %d does not divide widths" i att.heads
            else if Mat.rows att.wo <> adv then
              fail "op %d: wo rows %d <> A*dv %d" i (Mat.rows att.wo) adv
            else if
              Array.length att.bq <> adk
              || Array.length att.bk <> adk
              || Array.length att.bv <> adv
              || Array.length att.bo <> Mat.cols att.wo
            then fail "op %d: attention bias length mismatch" i
            else Ok ()
      in
      let* () = finite_op i op in
      go (i + 1)
  in
  go 0

let validate_exn p =
  match validate p with Ok () -> () | Error msg -> invalid_arg ("Ir.validate: " ^ msg)

let attention_params att =
  Mat.(rows att.wq * cols att.wq)
  + Mat.(rows att.wk * cols att.wk)
  + Mat.(rows att.wv * cols att.wv)
  + Mat.(rows att.wo * cols att.wo)
  + Array.length att.bq + Array.length att.bk + Array.length att.bv
  + Array.length att.bo

let num_params p =
  Array.fold_left
    (fun acc op ->
      acc
      +
      match op with
      | Linear { w; b; _ } -> Mat.(rows w * cols w) + Array.length b
      | Relu _ | Tanh _ | Add _ | Pool_first _ -> 0
      | Positional { pos; _ } -> Mat.(rows pos * cols pos)
      | Center_norm { gamma; beta; _ } -> Array.length gamma + Array.length beta
      | Self_attention { att; _ } -> attention_params att)
    0 p.ops

let depth_of_kind p kind =
  Array.fold_left (fun acc op -> if kind_name op = kind then acc + 1 else acc) 0 p.ops

let pp ppf p =
  let dims = dims_of p in
  Format.fprintf ppf "@[<v>program: input dim %d, %d ops, %d params" p.input_dim
    (Array.length p.ops) (num_params p);
  Array.iteri
    (fun i op ->
      let srcs = String.concat "," (List.map string_of_int (op_src_ids op)) in
      Format.fprintf ppf "@,%%%d = %s(%s) : d=%d" (i + 1) (kind_name op) srcs
        dims.(i + 1))
    p.ops;
  Format.fprintf ppf "@]"

let parameters p =
  let out = ref [] in
  let push name m = out := (name, m) :: !out in
  Array.iteri
    (fun i op ->
      let pre = Printf.sprintf "op%d" (i + 1) in
      match op with
      | Linear { w; b; _ } ->
          push (pre ^ ".w") (Mat.copy w);
          push (pre ^ ".b") (Mat.row_vector b)
      | Center_norm { gamma; beta; _ } ->
          push (pre ^ ".gamma") (Mat.row_vector gamma);
          push (pre ^ ".beta") (Mat.row_vector beta)
      | Self_attention { att; _ } ->
          push (pre ^ ".wq") (Mat.copy att.wq);
          push (pre ^ ".bq") (Mat.row_vector att.bq);
          push (pre ^ ".wk") (Mat.copy att.wk);
          push (pre ^ ".bk") (Mat.row_vector att.bk);
          push (pre ^ ".wv") (Mat.copy att.wv);
          push (pre ^ ".bv") (Mat.row_vector att.bv);
          push (pre ^ ".wo") (Mat.copy att.wo);
          push (pre ^ ".bo") (Mat.row_vector att.bo)
      | Positional { pos; _ } -> push (pre ^ ".pos") (Mat.copy pos)
      | Relu _ | Tanh _ | Add _ | Pool_first _ -> ())
    p.ops;
  List.rev !out

module Serialize = struct
let magic = "deept-model v1"

let write_floats oc (a : float array) =
  Array.iteri
    (fun i x ->
      if i > 0 then output_char oc ' ';
      Printf.fprintf oc "%h" x)
    a;
  output_char oc '\n'

let write_mat oc name (m : Mat.t) =
  Printf.fprintf oc "mat %s %d %d\n" name (Mat.rows m) (Mat.cols m);
  write_floats oc m.Mat.data

let write_vec oc name (v : float array) =
  Printf.fprintf oc "vec %s %d\n" name (Array.length v);
  write_floats oc v

let write_att oc (a : attention) =
  Printf.fprintf oc "heads %d\n" a.heads;
  write_mat oc "wq" a.wq;
  write_vec oc "bq" a.bq;
  write_mat oc "wk" a.wk;
  write_vec oc "bk" a.bk;
  write_mat oc "wv" a.wv;
  write_vec oc "bv" a.bv;
  write_mat oc "wo" a.wo;
  write_vec oc "bo" a.bo

let to_channel oc (p : program) =
  Printf.fprintf oc "%s\n" magic;
  Printf.fprintf oc "input_dim %d\n" p.input_dim;
  Printf.fprintf oc "ops %d\n" (Array.length p.ops);
  Array.iter
    (fun (op : op) ->
      match op with
      | Linear { src; w; b } ->
          Printf.fprintf oc "op linear %d\n" src;
          write_mat oc "w" w;
          write_vec oc "b" b
      | Relu src -> Printf.fprintf oc "op relu %d\n" src
      | Tanh src -> Printf.fprintf oc "op tanh %d\n" src
      | Add (a, b) -> Printf.fprintf oc "op add %d %d\n" a b
      | Center_norm { src; gamma; beta; divide_std } ->
          Printf.fprintf oc "op center_norm %d %b\n" src divide_std;
          write_vec oc "gamma" gamma;
          write_vec oc "beta" beta
      | Self_attention { src; att } ->
          Printf.fprintf oc "op self_attention %d\n" src;
          write_att oc att
      | Pool_first src -> Printf.fprintf oc "op pool_first %d\n" src
      | Positional { src; pos } ->
          Printf.fprintf oc "op positional %d\n" src;
          write_mat oc "pos" pos)
    p.ops

(* ------------------------------------------------------------------ *)

let fail fmt = Printf.ksprintf failwith fmt

let read_line_exn ic =
  match In_channel.input_line ic with
  | Some l -> l
  | None -> fail "Serialize: unexpected end of file"

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun t -> t <> "")

let read_floats ic n =
  let toks = split_ws (read_line_exn ic) in
  if List.length toks <> n then fail "Serialize: expected %d floats" n;
  Array.of_list (List.map float_of_string toks)

let read_mat ic name =
  match split_ws (read_line_exn ic) with
  | [ "mat"; n; r; c ] when n = name ->
      let r = int_of_string r and c = int_of_string c in
      Mat.of_array ~rows:r ~cols:c (read_floats ic (r * c))
  | _ -> fail "Serialize: expected matrix %s" name

let read_vec ic name =
  match split_ws (read_line_exn ic) with
  | [ "vec"; n; len ] when n = name -> read_floats ic (int_of_string len)
  | _ -> fail "Serialize: expected vector %s" name

let read_att ic : attention =
  let heads =
    match split_ws (read_line_exn ic) with
    | [ "heads"; h ] -> int_of_string h
    | _ -> fail "Serialize: expected heads"
  in
  let wq = read_mat ic "wq" in
  let bq = read_vec ic "bq" in
  let wk = read_mat ic "wk" in
  let bk = read_vec ic "bk" in
  let wv = read_mat ic "wv" in
  let bv = read_vec ic "bv" in
  let wo = read_mat ic "wo" in
  let bo = read_vec ic "bo" in
  { heads; wq; bq; wk; bk; wv; bv; wo; bo }

let read_op ic : op =
  match split_ws (read_line_exn ic) with
  | [ "op"; "linear"; src ] ->
      let src = int_of_string src in
      let w = read_mat ic "w" in
      let b = read_vec ic "b" in
      Linear { src; w; b }
  | [ "op"; "relu"; src ] -> Relu (int_of_string src)
  | [ "op"; "tanh"; src ] -> Tanh (int_of_string src)
  | [ "op"; "add"; a; b ] -> Add (int_of_string a, int_of_string b)
  | [ "op"; "center_norm"; src; ds ] ->
      let src = int_of_string src and divide_std = bool_of_string ds in
      let gamma = read_vec ic "gamma" in
      let beta = read_vec ic "beta" in
      Center_norm { src; gamma; beta; divide_std }
  | [ "op"; "self_attention"; src ] ->
      let src = int_of_string src in
      Self_attention { src; att = read_att ic }
  | [ "op"; "pool_first"; src ] -> Pool_first (int_of_string src)
  | [ "op"; "positional"; src ] ->
      let src = int_of_string src in
      Positional { src; pos = read_mat ic "pos" }
  | toks -> fail "Serialize: bad op line %S" (String.concat " " toks)

let of_channel ic : program =
  if read_line_exn ic <> magic then fail "Serialize: bad magic";
  let input_dim =
    match split_ws (read_line_exn ic) with
    | [ "input_dim"; d ] -> int_of_string d
    | _ -> fail "Serialize: expected input_dim"
  in
  let n_ops =
    match split_ws (read_line_exn ic) with
    | [ "ops"; n ] -> int_of_string n
    | _ -> fail "Serialize: expected ops count"
  in
  let ops = Array.init n_ops (fun _ -> read_op ic) in
  let p : program = { input_dim; ops } in
  validate_exn p;
  p

let rec mkdir_p dir =
  if dir <> "" && dir <> "/" && dir <> "." && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    Sys.mkdir dir 0o755
  end

let save path p =
  mkdir_p (Filename.dirname path);
  Out_channel.with_open_text path (fun oc -> to_channel oc p)

let load path = In_channel.with_open_text path of_channel

end
