(* Warm model cache, loaded in the daemon before the first fork.

   Parsing and lowering a zoo model is the expensive part of a cold
   certification; the daemon pays it once per model at startup, and the
   pre-forked workers inherit the loaded weights, corpus and lowered
   program read-only through fork's copy-on-write pages. *)

type entry = {
  zoo : Zoo.entry;
  model : Nn.Model.t;
  corpus : Text.Corpus.t;
  program : Ir.program;
  digest : string;
  test_len : int;
}

type t = (string * entry) list

let load_one ?log name =
  let zoo = Zoo.entry name in
  let model = Zoo.load_or_train ?log name in
  let corpus = Zoo.corpus_of zoo.Zoo.corpus in
  let program = Nn.Model.to_ir model in
  let digest = Digest.to_hex (Digest.file (Zoo.path zoo)) in
  let test_len = List.length corpus.Text.Corpus.test in
  { zoo; model; corpus; program; digest; test_len }

let load ?log names =
  List.map
    (fun name ->
      (match log with
      | Some f -> f (Printf.sprintf "loading model %s" name)
      | None -> ());
      (name, load_one ?log name))
    names

let find t name = List.assoc_opt name t
let names t = List.map fst t
