(* Warm model cache, loaded in the daemon before the first fork.

   Parsing and lowering a zoo model is the expensive part of a cold
   certification; the daemon pays it once per model at startup, and the
   pre-forked workers inherit the loaded weights, corpus and lowered
   program read-only through fork's copy-on-write pages.

   Two load-time transforms ride on top since the fused-kernel PR:

   - the lowered program goes through the affine-fusion pre-pass
     (Fuse). The service protocol has no per-op fault field, so the
     fusion x fault-injection exclusion (Propagate.fuse_for) cannot be
     violated from here; and on the zoo architectures fusion is a
     structural no-op, so cached result digests are unchanged.
   - every program parameter is also *landed* in a shared-memory arena
     (Tensor.Shm) created before the workers fork. That gives all
     workers one stable MAP_SHARED snapshot of the weights, addressed
     by (offset, dims) descriptors — the same transport the zero-copy
     job dispatch uses — instead of N copy-on-write heap copies whose
     pages privatize under GC. The compute kernels still read the heap
     Mats; the arena snapshot is what descriptor-based dispatch and the
     cross-fork bit-identity tests read in place. *)

type entry = {
  zoo : Zoo.entry;
  model : Nn.Model.t;
  corpus : Text.Corpus.t;
  program : Ir.program;
  digest : string;
  test_len : int;
  resident : (string * Tensor.Shm.mat_desc) list;
}

type t = { arena : Tensor.Shm.t option; entries : (string * entry) list }

let load_one ?log ?arena name =
  let zoo = Zoo.entry name in
  let model = Zoo.load_or_train ?log name in
  let corpus = Zoo.corpus_of zoo.Zoo.corpus in
  let program = Fuse.fuse_program (Nn.Model.to_ir model) in
  let digest = Digest.to_hex (Digest.file (Zoo.path zoo)) in
  let test_len = List.length corpus.Text.Corpus.test in
  let resident =
    match arena with
    | None -> []
    | Some a ->
        (* threshold 0: land every parameter, however small — the point
           is one complete shared snapshot, not the dispatch economics. *)
        List.map
          (fun (pname, m) -> (pname, Tensor.Shm.pack_mat ~threshold:0 a m))
          (Ir.parameters program)
  in
  { zoo; model; corpus; program; digest; test_len; resident }

let load ?log names =
  (* Fixed arena budget rather than a pre-measuring pass: zoo weights
     are a few MiB at most, and a model that does not fit simply
     degrades to Inline descriptors (pack_mat never fails). *)
  let arena =
    if Tensor.Shm.available () && names <> [] then
      Some (Tensor.Shm.create ~floats:(1 lsl 22) (* 32 MiB of float64 *))
    else None
  in
  let entries =
    List.map
      (fun name ->
        (match log with
        | Some f -> f (Printf.sprintf "loading model %s" name)
        | None -> ());
        (name, load_one ?log ?arena name))
      names
  in
  (match (log, arena) with
  | Some f, Some a ->
      let used = Tensor.Shm.capacity a - Tensor.Shm.avail a in
      f
        (Printf.sprintf "arena: %.1f MiB of warm weights resident (shared)"
           (float_of_int (used * 8) /. (1024.0 *. 1024.0)))
  | _ -> ());
  { arena; entries }

let find t name = List.assoc_opt name t.entries
let names t = List.map fst t.entries
let arena t = t.arena
