(** Blocking certifyd client: one connection, line-in/line-out.

    The tests, the benchmark harness and [certifyd request] all speak to
    the daemon through this. Responses to pipelined certify requests
    come back in completion order — correlate with
    {!Protocol.certify.tag}. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error if nothing is listening. *)

val connect_retry : ?timeout_s:float -> string -> t
(** Retry until the socket accepts (default 10 s) — for racing a daemon
    that is still loading models. Raises like {!connect} on timeout. *)

val send : t -> Protocol.request -> unit

val recv : t -> Protocol.response option
(** Next response line; [None] on EOF (daemon closed the connection).
    @raise Failure on a line that does not parse. *)

val request : t -> Protocol.request -> Protocol.response option
(** {!send} then {!recv}. *)

val close : t -> unit
