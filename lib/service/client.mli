(** Blocking certifyd client: one connection, line-in/line-out.

    The tests, the benchmark harness and [certifyd request] all speak to
    the daemon through this. Responses to pipelined certify requests
    come back in completion order — correlate with
    {!Protocol.certify.tag}. *)

type t

val connect : string -> t
(** Connect to the daemon's Unix-domain socket.
    @raise Unix.Unix_error if nothing is listening. *)

val connect_retry : ?timeout_s:float -> string -> t
(** Retry until the socket accepts (default 10 s) — for racing a daemon
    that is still loading models. Raises like {!connect} on timeout. *)

val send : t -> Protocol.request -> unit

val recv : t -> Protocol.response option
(** Next response line; [None] on EOF (daemon closed the connection).
    @raise Failure on a line that does not parse. *)

val request : t -> Protocol.request -> Protocol.response option
(** {!send} then {!recv}. *)

val close : t -> unit

(** {2 Retrying session}

    A lost response is indistinguishable from a lost request, so blind
    resends risk running a job twice. {!call} closes that hole: every
    logical request carries an idempotency key ([rid]) that is reused
    verbatim across retries and reconnects, and the daemon answers a
    duplicate rid with the original job's result. *)

type policy = {
  max_attempts : int;  (** total tries per {!call}, including the first *)
  backoff_s : float;  (** initial sleep between tries; doubles *)
  max_backoff_s : float;  (** backoff and sleep ceiling *)
  connect_timeout_s : float;  (** per-reconnect {!connect_retry} budget *)
}

val default_policy : policy
(** 5 attempts, 50 ms initial backoff, 2 s cap, 10 s connect budget. *)

val policy :
  ?max_attempts:int ->
  ?backoff_s:float ->
  ?max_backoff_s:float ->
  ?connect_timeout_s:float ->
  unit ->
  policy
(** Validated constructor over {!default_policy}.
    @raise Invalid_argument on a non-positive field or a cap below the
    initial backoff. *)

type session
(** A lazily-(re)connected client with a per-session rid namespace. *)

val session : ?policy:policy -> string -> session
(** [session path] — no I/O happens until the first {!call}. *)

val call : session -> Protocol.certify -> Protocol.response
(** Send one certify request, retrying until a terminal response:

    - missing [rid]: a fresh session-unique one is filled in, and the
      {e same} rid is resent on every retry — the daemon deduplicates;
    - [Overloaded] / [Quarantined]: sleep
      [max(retry_after hint, backoff)] with ±50% jitter, then retry;
      the last attempt returns the shed response as-is;
    - EOF / [EPIPE] / [ECONNRESET] mid-request: reconnect (honouring
      [connect_timeout_s]) and resend.

    @raise Failure when the connection keeps dying through
    [max_attempts]; @raise Unix.Unix_error when reconnection times
    out. *)

val hangup : session -> unit
(** Close the session's connection, if open; the next {!call}
    reconnects. *)
