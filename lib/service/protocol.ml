module Jsonl = Deept.Jsonl
module Verdict = Deept.Verdict
module Config = Deept.Config
module Lp = Deept.Lp

type input = Index of int | Sentence of string

type certify = {
  model : string;
  input : input;
  word : int;
  p : Lp.t;
  radius : float;
  verifier : Config.dot_variant;
  refine : bool;
  deadline_s : float option;
  tag : int option;
  rid : string option;
  drill_crash : bool;
  drill_stall_s : float option;
}

type request = Certify of certify | Stats | Shutdown

type result_r = {
  id : int;
  tag : int option;
  verdict : Verdict.t;
  rung : string;
  attempts : int;
  retries : int;
  wall_s : float;
  cached : bool;
}

type stats_r = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  inflight : int;
  jobs_done : int;
  shed : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  worker_deaths : int;
  draining : bool;
  breakers : string;
  rungs : string;
}

type response =
  | Result of result_r
  | Overloaded of { tag : int option; retry_after_s : float }
  | Quarantined of { tag : int option; model : string; retry_after_s : float }
  | Stats_r of stats_r
  | Error of string
  | Ok_ack

(* ---------------- encoding ----------------

   One flat JSON object per line, both directions. Optional fields are
   omitted, not null; floats that must round-trip exactly (radius) use
   %.17g, human-facing ones (latencies) %.6g. *)

let norm_name p =
  match p with Lp.L1 -> "1" | Lp.L2 -> "2" | Lp.Linf -> "inf"

let norm_of_name = function
  | "1" -> Ok Lp.L1
  | "2" -> Ok Lp.L2
  | "inf" -> Ok Lp.Linf
  | s -> Error ("unknown norm " ^ s ^ " (use 1, 2 or inf)")

let verifier_of_name = function
  | "fast" -> Ok Config.Fast
  | "precise" -> Ok Config.Precise
  | "combined" -> Ok Config.Combined
  | s -> Error ("unknown verifier " ^ s ^ " (use fast, precise or combined)")

let buf_field b first k v =
  if not !first then Buffer.add_char b ',';
  first := false;
  Buffer.add_string b (Printf.sprintf "\"%s\":%s" k v)

let quoted s = "\"" ^ Jsonl.escape s ^ "\""

let certify_fields ?id (c : certify) =
  let b = Buffer.create 128 in
  let first = ref true in
  let fld = buf_field b first in
  Buffer.add_char b '{';
  fld "op" (quoted "certify");
  (match id with Some i -> fld "id" (string_of_int i) | None -> ());
  fld "model" (quoted c.model);
  (match c.input with
  | Index i -> fld "index" (string_of_int i)
  | Sentence s -> fld "sentence" (quoted s));
  fld "word" (string_of_int c.word);
  fld "norm" (quoted (norm_name c.p));
  fld "radius" (Printf.sprintf "%.17g" c.radius);
  fld "verifier" (quoted (Config.variant_name c.verifier));
  if c.refine then fld "refine" "1";
  (match c.deadline_s with
  | Some d -> fld "deadline_s" (Printf.sprintf "%.17g" d)
  | None -> ());
  (match c.tag with Some t -> fld "tag" (string_of_int t) | None -> ());
  (match c.rid with Some r -> fld "rid" (quoted r) | None -> ());
  if c.drill_crash then fld "crash" "1";
  (match c.drill_stall_s with
  | Some s -> fld "stall_s" (Printf.sprintf "%.17g" s)
  | None -> ());
  Buffer.add_char b '}';
  Buffer.contents b

let request_to_json = function
  | Certify c -> certify_fields c
  | Stats -> "{\"op\":\"stats\"}"
  | Shutdown -> "{\"op\":\"shutdown\"}"

let certify_known =
  [
    "op"; "id"; "model"; "index"; "sentence"; "word"; "norm"; "radius";
    "verifier"; "refine"; "deadline_s"; "tag"; "rid"; "crash"; "stall_s";
  ]

(* Request ids are client-chosen; keep them short and printable so they
   can ride in intake lines and logs without escaping surprises. *)
let valid_rid r =
  let n = String.length r in
  n >= 1 && n <= 64
  && String.for_all (fun c -> Char.code c > 0x20 && Char.code c < 0x7f) r

let ( let* ) = Result.bind

let certify_of_fields ~allow_id fields =
  let* () =
    Jsonl.known fields
      (if allow_id then certify_known
       else List.filter (fun k -> k <> "id") certify_known)
  in
  let* model = Jsonl.str fields "model" in
  let* index = Jsonl.int_opt fields "index" in
  let* sentence = Jsonl.str_opt fields "sentence" in
  let* input =
    match (index, sentence) with
    | Some i, None -> Ok (Index i)
    | None, Some s -> Ok (Sentence s)
    | None, None -> Ok (Index 0)
    | Some _, Some _ -> Error "give either index or sentence, not both"
  in
  let* word =
    Result.map (Option.value ~default:1) (Jsonl.int_opt fields "word")
  in
  let* norm =
    Result.map (Option.value ~default:"2") (Jsonl.str_opt fields "norm")
  in
  let* p = norm_of_name norm in
  let* radius = Jsonl.num fields "radius" in
  let* () =
    if Float.is_finite radius && radius >= 0.0 then Ok ()
    else Error "radius must be finite and >= 0"
  in
  let* vname =
    Result.map (Option.value ~default:"fast") (Jsonl.str_opt fields "verifier")
  in
  let* verifier = verifier_of_name vname in
  let* refine = Jsonl.int_opt fields "refine" in
  let* deadline_s = Jsonl.num_opt fields "deadline_s" in
  let* tag = Jsonl.int_opt fields "tag" in
  let* rid = Jsonl.str_opt fields "rid" in
  let* () =
    match rid with
    | Some r when not (valid_rid r) ->
        Error "rid must be 1-64 printable non-space characters"
    | _ -> Ok ()
  in
  let* crash = Jsonl.int_opt fields "crash" in
  let* drill_stall_s = Jsonl.num_opt fields "stall_s" in
  Ok
    {
      model;
      input;
      word;
      p;
      radius;
      verifier;
      refine = refine = Some 1;
      deadline_s;
      tag;
      rid;
      drill_crash = crash = Some 1;
      drill_stall_s;
    }

let request_of_json line =
  let* fields = Jsonl.parse line in
  let* op = Jsonl.str fields "op" in
  match op with
  | "certify" -> Result.map (fun c -> Certify c) (certify_of_fields ~allow_id:false fields)
  | "stats" ->
      let* () = Jsonl.known fields [ "op" ] in
      Ok Stats
  | "shutdown" ->
      let* () = Jsonl.known fields [ "op" ] in
      Ok Shutdown
  | op -> Error ("unknown request op " ^ op ^ " (use certify, stats or shutdown)")

(* The daemon's intake file reuses the certify encoding plus the
   daemon-assigned job id, so --resume can replay exactly the accepted
   requests. *)
let intake_to_json ~id c = certify_fields ~id c

let intake_of_json line =
  let* fields = Jsonl.parse line in
  let* op = Jsonl.str fields "op" in
  let* () = if op = "certify" then Ok () else Error ("bad intake op " ^ op) in
  let* id = Jsonl.int fields "id" in
  let* c = certify_of_fields ~allow_id:true fields in
  Ok (id, c)

(* ---------------- responses ---------------- *)

let opt_tag_field tag =
  match tag with Some t -> Printf.sprintf ",\"tag\":%d" t | None -> ""

let response_to_json = function
  | Result r ->
      Printf.sprintf
        "{\"op\":\"result\",\"id\":%d%s,\"verdict\":%s,\"rung\":%s,\"attempts\":%d,\"retries\":%d,\"wall_s\":%.6f,\"cached\":%d}"
        r.id (opt_tag_field r.tag)
        (quoted (Verdict.to_string r.verdict))
        (quoted r.rung) r.attempts r.retries r.wall_s
        (if r.cached then 1 else 0)
  | Overloaded { tag; retry_after_s } ->
      Printf.sprintf "{\"op\":\"overloaded\"%s,\"retry_after_s\":%.6f}"
        (opt_tag_field tag) retry_after_s
  | Quarantined { tag; model; retry_after_s } ->
      Printf.sprintf
        "{\"op\":\"quarantined\"%s,\"model\":%s,\"retry_after_s\":%.6f}"
        (opt_tag_field tag) (quoted model) retry_after_s
  | Stats_r s ->
      Printf.sprintf
        "{\"op\":\"stats\",\"uptime_s\":%.6f,\"workers\":%d,\"queue_depth\":%d,\"inflight\":%d,\"jobs_done\":%d,\"shed\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"cache_size\":%d,\"worker_deaths\":%d,\"draining\":%d,\"breakers\":%s,\"rungs\":%s}"
        s.uptime_s s.workers s.queue_depth s.inflight s.jobs_done s.shed
        s.cache_hits s.cache_misses s.cache_size s.worker_deaths
        (if s.draining then 1 else 0)
        (quoted s.breakers) (quoted s.rungs)
  | Error msg -> Printf.sprintf "{\"op\":\"error\",\"msg\":%s}" (quoted msg)
  | Ok_ack -> "{\"op\":\"ok\"}"

let response_of_json line =
  let* fields = Jsonl.parse line in
  let* op = Jsonl.str fields "op" in
  match op with
  | "result" ->
      let* id = Jsonl.int fields "id" in
      let* tag = Jsonl.int_opt fields "tag" in
      let* vs = Jsonl.str fields "verdict" in
      let* verdict = Verdict.of_string_res vs in
      let* rung = Jsonl.str fields "rung" in
      let* attempts = Jsonl.int fields "attempts" in
      let* retries = Jsonl.int fields "retries" in
      let* wall_s = Jsonl.num fields "wall_s" in
      let* cached = Jsonl.int fields "cached" in
      Ok
        (Result
           {
             id;
             tag;
             verdict;
             rung;
             attempts;
             retries;
             wall_s;
             cached = cached = 1;
           })
  | "overloaded" ->
      let* tag = Jsonl.int_opt fields "tag" in
      let* retry_after_s = Jsonl.num fields "retry_after_s" in
      Ok (Overloaded { tag; retry_after_s })
  | "quarantined" ->
      let* tag = Jsonl.int_opt fields "tag" in
      let* model = Jsonl.str fields "model" in
      let* retry_after_s = Jsonl.num fields "retry_after_s" in
      Ok (Quarantined { tag; model; retry_after_s })
  | "stats" ->
      let* uptime_s = Jsonl.num fields "uptime_s" in
      let* workers = Jsonl.int fields "workers" in
      let* queue_depth = Jsonl.int fields "queue_depth" in
      let* inflight = Jsonl.int fields "inflight" in
      let* jobs_done = Jsonl.int fields "jobs_done" in
      let* shed = Jsonl.int fields "shed" in
      let* cache_hits = Jsonl.int fields "cache_hits" in
      let* cache_misses = Jsonl.int fields "cache_misses" in
      let* cache_size = Jsonl.int fields "cache_size" in
      let* worker_deaths = Jsonl.int fields "worker_deaths" in
      let* draining = Jsonl.int fields "draining" in
      let* breakers = Jsonl.str fields "breakers" in
      let* rungs =
        Result.map (Option.value ~default:"") (Jsonl.str_opt fields "rungs")
      in
      Ok
        (Stats_r
           {
             uptime_s;
             workers;
             queue_depth;
             inflight;
             jobs_done;
             shed;
             cache_hits;
             cache_misses;
             cache_size;
             worker_deaths;
             draining = draining = 1;
             breakers;
             rungs;
           })
  | "error" ->
      let* msg = Jsonl.str fields "msg" in
      Ok (Error msg)
  | "ok" -> Ok Ok_ack
  | op -> Stdlib.Error ("unknown response op " ^ op)

let certify ?(word = 1) ?(p = Lp.L2) ?(verifier = Config.Fast)
    ?(refine = false) ?deadline_s ?tag ?rid ?(drill_crash = false)
    ?drill_stall_s ~model ~radius input =
  (match rid with
  | Some r when not (valid_rid r) ->
      invalid_arg "Protocol.certify: rid must be 1-64 printable characters"
  | _ -> ());
  {
    model;
    input;
    word;
    p;
    radius;
    verifier;
    refine;
    deadline_s;
    tag;
    rid;
    drill_crash;
    drill_stall_s;
  }

(* The one request -> Config derivation. Everything that consumes a
   certify request — the worker that runs it and the cache key that
   memoizes it — goes through here, so a policy knob added to the
   request cannot silently reach one and not the other. Budgets
   (deadline) are layered on separately by the caller: they shape how
   long a run may take, not what it computes, and the cache keys them
   independently. *)
let base_config (c : certify) =
  let base =
    match c.verifier with
    | Config.Fast -> Config.fast
    | Config.Precise -> Config.precise
    | Config.Combined -> Config.combined
  in
  if c.refine then Config.with_refine (Some Config.default_refine) base
  else base
