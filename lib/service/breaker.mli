(** Per-model circuit breaker over consecutive worker deaths.

    Fault containment for the daemon's third failure class: a {e model}
    (not a job) that reliably kills workers. [threshold] consecutive
    crashes open the breaker; while open, jobs for the model are
    answered [Quarantined] with the remaining cooloff. After the cooloff
    one probe job is admitted (half-open): success closes the breaker,
    another death re-opens it for a fresh cooloff. The clock is
    injected, so tests walk the open → half-open → closed schedule with
    a fake clock instead of sleeping. *)

type state = Closed | Open of float  (** absolute reopen time *) | Half_open

type t

val create : ?threshold:int -> ?cooloff_s:float -> now:(unit -> float) -> unit -> t
(** Defaults: [threshold 3], [cooloff_s 5.0].
    @raise Invalid_argument on a non-positive threshold or cooloff. *)

val admit : t -> [ `Ok | `Reject of float ]
(** [`Reject remaining_s] while open (or while a half-open probe is
    already in flight); [`Ok] otherwise. Crossing the cooloff boundary
    transitions Open → Half_open and admits the probe. *)

val success : t -> unit
(** A job for this model completed without killing its worker. *)

val failure : t -> unit
(** A worker died running this model ({!Supervisor.Crashed} — deadline
    kills are the job's fault, not the model's, and must not be fed
    here). *)

val state : t -> state

val trips : t -> int
(** Times the breaker has opened. *)

val state_name : t -> string
(** ["closed"], ["open(3.2s)"] or ["half-open"]. *)
