(** Result cache keyed by everything a verdict depends on.

    A daemon fronting a model zoo sees repeats — the same (model, input,
    radius, verifier) query from different clients, or the same batch
    replayed after a crash. The cache short-circuits those to the stored
    verdict. Keys embed the model {e digest} (weights hash, so a
    retrained model never serves stale verdicts), the exact input, the
    perturbation (norm, radius at full [%.17g] precision) and the
    verifier policy including the effective deadline. The policy
    component is {!Deept.Config.policy_key} applied to
    {!Protocol.base_config} — the exact config the worker runs — so a
    refined and an unrefined run of the same query never alias. Only non-fault
    verdicts are stored — a timeout or dead worker describes that run,
    not the query.

    Durability rides on the {!Deept.Journal}: the daemon writes each
    completed job with [detail = "key=<cache key>"], and {!absorb}
    rebuilds the cache from journal entries on [--resume] — no second
    persistence format. *)

type result_entry = {
  verdict : Deept.Verdict.t;
  rung : string;
  attempts : int;
}

type t

val create : unit -> t

val key : digest:string -> Protocol.certify -> string
(** Canonical single-line key (safe inside a journal [detail] field). *)

val find : t -> string -> result_entry option
(** Counted as a hit or miss. *)

val store : t -> string -> result_entry -> unit
(** No-op for fault verdicts ({!Deept.Verdict.is_fault}). *)

val absorb : t -> Deept.Journal.entry list -> unit
(** Rebuild from journal entries whose [detail] is ["key=..."]. *)

val size : t -> int
val hits : t -> int
val misses : t -> int
