(* Bounded admission queue with an EWMA service-time estimate.

   The daemon's load-shedding pivot: [admit] refuses work past the cap
   (the caller answers Overloaded with [retry_after] as the hint), while
   [requeue] — crash retries and --resume replays, work the daemon has
   already promised durably — bypasses the cap and goes to the front. *)

type 'a t = {
  cap : int;
  default_service_s : float; (* retry-hint stand-in before the EWMA primes *)
  q : 'a Queue.t;
  mutable front : 'a list; (* requeued jobs, ahead of [q] *)
  mutable ewma_s : float;
  mutable accepted : int;
  mutable shed : int;
}

let ewma_alpha = 0.2

let create ?(default_service_s = 0.1) ~cap () =
  if default_service_s <= 0.0 then
    invalid_arg "Jobq.create: default_service_s <= 0";
  {
    cap;
    default_service_s;
    q = Queue.create ();
    front = [];
    ewma_s = 0.0;
    accepted = 0;
    shed = 0;
  }
let depth t = List.length t.front + Queue.length t.q

let admit t x =
  if depth t >= t.cap then begin
    t.shed <- t.shed + 1;
    false
  end
  else begin
    Queue.add x t.q;
    t.accepted <- t.accepted + 1;
    true
  end

let requeue t x = t.front <- x :: t.front

let pop t ~ready =
  (* First ready job in queue order; the scan preserves the relative
     order of the not-yet-ready remainder. *)
  let rec split_front acc = function
    | [] -> None
    | x :: rest when ready x ->
        t.front <- List.rev_append acc rest;
        Some x
    | x :: rest -> split_front (x :: acc) rest
  in
  match split_front [] t.front with
  | Some _ as r -> r
  | None ->
      let n = Queue.length t.q in
      let found = ref None in
      for _ = 1 to n do
        let x = Queue.pop t.q in
        if !found = None && ready x then found := Some x
        else Queue.add x t.q
      done;
      !found

let note_service t wall_s =
  (* A cache-warm or stalled-clock sample of 0 (or junk) must not pin
     the EWMA at an unprimed 0 — the shed hint would degenerate. *)
  if Float.is_finite wall_s && wall_s > 0.0 then
    t.ewma_s <-
      (if t.ewma_s = 0.0 then wall_s
       else (ewma_alpha *. wall_s) +. ((1.0 -. ewma_alpha) *. t.ewma_s))

let retry_after t ~workers =
  let per = if t.ewma_s > 0.0 then t.ewma_s else t.default_service_s in
  Float.max 0.05 (float_of_int (depth t + 1) *. per /. float_of_int (max 1 workers))

let full t = depth t >= t.cap

let iter t f =
  List.iter f t.front;
  Queue.iter f t.q

let accepted t = t.accepted
let shed t = t.shed
let ewma_s t = t.ewma_s
