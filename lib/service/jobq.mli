(** Bounded FIFO admission queue — the daemon's backpressure pivot.

    Unbounded queues turn overload into unbounded memory growth and
    minutes-deep latency; this queue instead {e sheds}: {!admit} refuses
    work once [cap] jobs are waiting, and the caller answers the client
    with [Overloaded] plus a {!retry_after} hint derived from an EWMA of
    recent service times. Work the daemon has already durably promised —
    crash retries, [--resume] replays — re-enters through {!requeue},
    which bypasses the cap (shedding promised work would break the
    exactly-once drill). *)

type 'a t

val create : ?default_service_s:float -> cap:int -> unit -> 'a t
(** [default_service_s] (default 0.1, must be positive) stands in for
    the EWMA in {!retry_after} until the first completed job primes it —
    without it the very first shed would hint an arbitrary constant. *)

val depth : 'a t -> int

val admit : 'a t -> 'a -> bool
(** [false] = shed (counted); the job was not enqueued. *)

val requeue : 'a t -> 'a -> unit
(** Front-push, cap-exempt: retries and resume replays. *)

val pop : 'a t -> ready:('a -> bool) -> 'a option
(** First job (queue order) satisfying [ready] — jobs still in backoff
    stay put, order preserved. *)

val note_service : 'a t -> float -> unit
(** Feed one completed job's wall time into the EWMA (α = 0.2).
    Non-finite or non-positive samples are discarded. *)

val retry_after : 'a t -> workers:int -> float
(** Load-shedding hint: expected queue drain time
    [(depth+1) · per / workers], floored at 50 ms, where [per] is the
    EWMA once primed and [default_service_s] before that. *)

val full : 'a t -> bool
(** [depth >= cap] — the next {!admit} would shed. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Every waiting job (front first) — for backoff timers and client
    cleanup; do not mutate the queue inside. *)

val accepted : 'a t -> int
val shed : 'a t -> int
val ewma_s : 'a t -> float
