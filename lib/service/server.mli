(** certifyd's server loop: admission control, dispatch, fault
    containment and journal-backed durability in one select loop.

    Architecture (see DESIGN.md §10):

    {v
              clients (Unix socket, JSON lines)
                 │ admission: validate → cache → shed → breaker
                 ▼
       bounded job queue ── intake file (fsync before dispatch)
                 │
                 ▼
       pre-forked warm workers (Marshal pipes, hard deadlines)
                 │
                 ▼
       journal (fsync per completion) → response to client
    v}

    Robustness properties:

    - {e backpressure}: past [queue_cap] waiting jobs, new work is shed
      with an [Overloaded] response and an EWMA-derived retry hint —
      the queue cannot grow without bound;
    - {e fault containment}: a worker death (crash, OOM guard, deadline
      kill) is confined to its in-flight job — crash retries with
      jittered backoff, a per-model circuit breaker quarantines a model
      after repeated crashes, and a replacement worker is forked on a
      consecutive-death backoff schedule;
    - {e durability}: accepted jobs hit the fsynced intake file before
      they can run; completions hit the fsynced journal before the
      client sees them. A daemon killed at any instant and restarted
      with [resume = true] re-runs exactly the intaken-but-unjournaled
      jobs, and the journal rebuilds the result cache.

    Drain (SIGTERM, SIGINT or a [Shutdown] request): new certify
    requests are shed, queued and in-flight jobs finish and are
    journaled, buffered responses are flushed, workers get EOF and are
    reaped, the socket is unlinked. *)

type opts = {
  socket : string;  (** Unix-domain socket path (replaced if present) *)
  models : string list;  (** zoo models to warm-load before binding *)
  pool : Deept.Config.pool;
      (** worker count, hard deadline, memory cap, retry/backoff policy *)
  deadline_s : float option;
      (** default cooperative per-job deadline (jobs may override) *)
  queue_cap : int;  (** waiting jobs before admission sheds *)
  breaker_threshold : int;  (** consecutive crashes that open a breaker *)
  breaker_cooloff_s : float;
  write_timeout_s : float;
      (** a client whose socket accepts no bytes for this long while
          responses are pending is dropped (its jobs finish journal-only) *)
  retry_hint_s : float;
      (** [Overloaded] retry hint per job before the service-time EWMA
          has its first sample *)
  journal : string option;
      (** completion journal path; the intake file lives beside it at
          [<journal>.intake]. [None] = no durability (tests only). *)
  resume : bool;  (** recover journal + intake instead of starting fresh *)
  log : string -> unit;
}

val opts :
  ?pool:Deept.Config.pool ->
  ?deadline_s:float ->
  ?queue_cap:int ->
  ?breaker_threshold:int ->
  ?breaker_cooloff_s:float ->
  ?write_timeout_s:float ->
  ?retry_hint_s:float ->
  ?journal:string ->
  ?resume:bool ->
  ?log:(string -> unit) ->
  socket:string ->
  string list ->
  opts
(** Defaults: {!Deept.Config.default_pool}, no deadline, [queue_cap 64],
    breaker 3 crashes / 5 s cooloff, 10 s write timeout, 0.1 s unprimed
    retry hint, no journal. @raise Invalid_argument on a non-positive
    cap, timeout or hint, or [resume] without a journal. *)

val run : opts -> unit
(** Load the models, bind the socket and serve until drained. Blocks for
    the daemon's whole life; returns after an orderly drain. *)

val load_intake : log:(string -> unit) -> string -> (int * Protocol.certify) list
(** Read an intake file, tolerating (and truncating) a torn final line
    exactly like {!Deept.Journal.resume}. Exposed for tests.
    @raise Failure on a malformed line that is not the final one. *)
