(* Per-model circuit breaker over worker deaths.

   A model whose certification reliably kills workers (pathological
   weights, an OOM-scale query) must not grind the pool through an
   endless crash-restart loop; after [threshold] consecutive deaths the
   breaker opens and the daemon answers Quarantined until the cooloff
   elapses, then lets exactly one probe job through (half-open). The
   clock is injected so tests drive the schedule deterministically. *)

type state = Closed | Open of float | Half_open

type t = {
  threshold : int;
  cooloff_s : float;
  now : unit -> float;
  mutable state : state;
  mutable consecutive : int;
  mutable probing : bool; (* Half_open: one probe already in flight *)
  mutable trips : int;
}

let create ?(threshold = 3) ?(cooloff_s = 5.0) ~now () =
  if threshold < 1 then invalid_arg "Breaker.create: threshold < 1";
  if cooloff_s <= 0.0 then invalid_arg "Breaker.create: cooloff_s <= 0";
  { threshold; cooloff_s; now; state = Closed; consecutive = 0; probing = false; trips = 0 }

let admit t =
  match t.state with
  | Closed -> `Ok
  | Open until ->
      let now = t.now () in
      if now >= until then begin
        t.state <- Half_open;
        t.probing <- true;
        `Ok
      end
      else `Reject (until -. now)
  | Half_open ->
      if t.probing then `Reject t.cooloff_s
      else begin
        t.probing <- true;
        `Ok
      end

let success t =
  t.state <- Closed;
  t.consecutive <- 0;
  t.probing <- false

let failure t =
  t.consecutive <- t.consecutive + 1;
  match t.state with
  | Half_open ->
      (* The probe died: straight back to Open for another cooloff. *)
      t.state <- Open (t.now () +. t.cooloff_s);
      t.probing <- false;
      t.trips <- t.trips + 1
  | Closed when t.consecutive >= t.threshold ->
      t.state <- Open (t.now () +. t.cooloff_s);
      t.trips <- t.trips + 1
  | Closed | Open _ -> ()

let state t = t.state
let trips t = t.trips

let state_name t =
  match t.state with
  | Closed -> "closed"
  | Open until -> Printf.sprintf "open(%.1fs)" (Float.max 0.0 (until -. t.now ()))
  | Half_open -> "half-open"
