module Jsonl = Deept.Jsonl
module Verdict = Deept.Verdict
module Config = Deept.Config
module Journal = Deept.Journal

type result_entry = { verdict : Verdict.t; rung : string; attempts : int }

type t = {
  tbl : (string, result_entry) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create () = { tbl = Hashtbl.create 64; hits = 0; misses = 0 }

(* The key pins everything the verdict depends on: the model *weights*
   (digest, not name — retraining must invalidate), the exact input,
   the perturbation and the verifier policy. The policy component is
   Config.policy_key over Protocol.base_config — the same derivation
   the worker runs the job with — so any precision-relevant knob added
   to the request changes the key automatically; hand-rolling the
   verifier name here is how a refine flag would silently alias a
   non-refined entry. One line, journal-safe (the key rides in
   Journal.entry.detail as "key=..."). *)
let key ~digest (c : Protocol.certify) =
  let input =
    match c.input with
    | Protocol.Index i -> Printf.sprintf "i%d" i
    | Protocol.Sentence s -> "s" ^ Jsonl.escape s
  in
  Printf.sprintf "%s|%s|w%d|L%s|r%.17g|%s|d%s" digest input c.word
    (Protocol.norm_name c.p) c.radius
    (Config.policy_key (Protocol.base_config c))
    (match c.deadline_s with None -> "-" | Some d -> Printf.sprintf "%.17g" d)

let find t k =
  match Hashtbl.find_opt t.tbl k with
  | Some _ as r ->
      t.hits <- t.hits + 1;
      r
  | None ->
      t.misses <- t.misses + 1;
      None

let store t k e =
  (* Fault verdicts (timeouts, dead workers, quarantine) describe the
     run, not the query — never cache them. *)
  if not (Verdict.is_fault e.verdict) then Hashtbl.replace t.tbl k e

let absorb t entries =
  List.iter
    (fun (e : Journal.entry) ->
      let d = e.detail in
      if String.length d > 4 && String.sub d 0 4 = "key=" then
        store t
          (String.sub d 4 (String.length d - 4))
          { verdict = e.verdict; rung = e.rung; attempts = e.attempts })
    entries

let size t = Hashtbl.length t.tbl
let hits t = t.hits
let misses t = t.misses
