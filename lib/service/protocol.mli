(** certifyd wire protocol: one flat JSON object per line, both ways.

    The daemon listens on a Unix-domain socket; clients write one
    request per line and read one response per line. The codec is the
    shared strict {!Deept.Jsonl} reader (no nesting, closed field sets),
    so a torn or skewed line is an [Error] response, never a crash. The
    same certify encoding, extended with the daemon-assigned job id,
    serves as the daemon's durable {e intake} record — what [--resume]
    replays. *)

type input =
  | Index of int  (** test-set sentence index of the model's corpus *)
  | Sentence of string  (** raw space-separated tokens *)

type certify = {
  model : string;  (** zoo entry name, e.g. ["sst_3"] *)
  input : input;
  word : int;  (** word position under attack (clamped to length) *)
  p : Deept.Lp.t;
  radius : float;
  verifier : Deept.Config.dot_variant;
  refine : bool;
      (** run the engine's refinement rung on precision failures
          (branch-and-bound symbol splitting, {!Deept.Brefine}) with
          {!Deept.Config.default_refine}. Wire field ["refine":1];
          absent means off. *)
  deadline_s : float option;
      (** per-job cooperative deadline; [None] inherits the daemon's *)
  tag : int option;  (** opaque client correlation id, echoed back *)
  rid : string option;
      (** idempotency key: the daemon deduplicates requests that carry
          the same rid — retries after a lost response replay the
          original job's result instead of recomputing or double-running
          it. 1-64 printable non-space chars; survives [--resume] by
          riding in the intake record. *)
  drill_crash : bool;  (** fault drill: worker exits hard mid-job *)
  drill_stall_s : float option;  (** fault drill: worker sleeps first *)
}

type request = Certify of certify | Stats | Shutdown

type result_r = {
  id : int;  (** daemon-assigned job id (journal key) *)
  tag : int option;
  verdict : Deept.Verdict.t;
  rung : string;
  attempts : int;
  retries : int;
  wall_s : float;
  cached : bool;  (** served from the result cache, not recomputed *)
}

type stats_r = {
  uptime_s : float;
  workers : int;
  queue_depth : int;
  inflight : int;
  jobs_done : int;
  shed : int;
  cache_hits : int;
  cache_misses : int;
  cache_size : int;
  worker_deaths : int;
  draining : bool;
  breakers : string;  (** per-model breaker states, ["name=closed ..."] *)
  rungs : string;
      (** histogram of ladder rungs attempted by jobs computed in this
          process ({e not} cache replays), ["precise=3 refine=2 ..."];
          empty until the first computed job *)
}

type response =
  | Result of result_r
  | Overloaded of { tag : int option; retry_after_s : float }
      (** admission control shed the job; retry after the hint *)
  | Quarantined of { tag : int option; model : string; retry_after_s : float }
      (** the model's circuit breaker is open *)
  | Stats_r of stats_r
  | Error of string  (** malformed request; the connection stays up *)
  | Ok_ack  (** shutdown acknowledged *)

val certify :
  ?word:int ->
  ?p:Deept.Lp.t ->
  ?verifier:Deept.Config.dot_variant ->
  ?refine:bool ->
  ?deadline_s:float ->
  ?tag:int ->
  ?rid:string ->
  ?drill_crash:bool ->
  ?drill_stall_s:float ->
  model:string ->
  radius:float ->
  input ->
  certify
(** Convenience constructor with the protocol defaults ([word 1],
    [L2], [fast], refine off). *)

val base_config : certify -> Deept.Config.t
(** The single request → verifier-policy derivation: the named preset
    plus {!Deept.Config.default_refine} when [refine] is set. Both the
    worker that runs a job and the cache key that memoizes it
    ({!Cache.key}, via {!Deept.Config.policy_key}) derive from this, so
    request knobs cannot reach one and not the other. Deadlines are
    layered on by the caller — they bound the run, not the result. *)

val request_to_json : request -> string
val request_of_json : string -> (request, string) result

val response_to_json : response -> string
val response_of_json : string -> (response, string) result

val intake_to_json : id:int -> certify -> string
(** The certify wire encoding plus the daemon's job id — one line of
    the intake file, written before a job is enqueued. *)

val intake_of_json : string -> (int * certify, string) result

val valid_rid : string -> bool
(** 1-64 printable non-space characters — what the decoder enforces. *)

val norm_name : Deept.Lp.t -> string
val norm_of_name : string -> (Deept.Lp.t, string) result
val verifier_of_name : string -> (Deept.Config.dot_variant, string) result
