(* Blocking line-oriented client for the certifyd socket. *)

type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }

let connect_retry ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match connect path with
    | conn -> conn
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let send t req =
  output_string t.oc (Protocol.request_to_json req);
  output_char t.oc '\n';
  flush t.oc

let recv t =
  match input_line t.ic with
  | line -> (
      match Protocol.response_of_json line with
      | Ok r -> Some r
      | Error e -> failwith ("certifyd protocol: " ^ e ^ ": " ^ line))
  | exception End_of_file -> None

let request t req =
  send t req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
