(* Blocking line-oriented client for the certifyd socket. *)

module Sysio = Deept.Sysio

type t = { fd : Unix.file_descr; ic : in_channel }

(* A write to a connection whose daemon died must surface as EPIPE for
   the session retry loop to catch — with the default disposition the
   process is silently killed by SIGPIPE instead. Ignore it once, on
   first connect, unless the host program installed its own handler. *)
let quiet_sigpipe =
  lazy
    (if not Sys.win32 then
       match Sys.signal Sys.sigpipe Sys.Signal_ignore with
       | Sys.Signal_default | Sys.Signal_ignore -> ()
       | handler -> Sys.set_signal Sys.sigpipe handler)

let connect path =
  Lazy.force quiet_sigpipe;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     Unix.close fd;
     raise e);
  { fd; ic = Unix.in_channel_of_descr fd }

let connect_retry ?(timeout_s = 10.0) path =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    match connect path with
    | conn -> conn
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when Unix.gettimeofday () < deadline ->
        Unix.sleepf 0.05;
        go ()
  in
  go ()

let send t req =
  Sysio.send_string ~site:"client.send" t.fd
    (Protocol.request_to_json req ^ "\n")

let recv t =
  match input_line t.ic with
  | line -> (
      match Protocol.response_of_json line with
      | Ok r -> Some r
      | Error e -> failwith ("certifyd protocol: " ^ e ^ ": " ^ line))
  | exception End_of_file -> None

let request t req =
  send t req;
  recv t

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

(* ---------------- retrying session ----------------

   One rid per logical request, reused verbatim across every retry and
   reconnect: the daemon deduplicates on it, so a retry after a lost
   response replays the original answer instead of running the job
   twice. Backoff honours the daemon's retry-after hint (Overloaded /
   Quarantined) and is jittered so a herd of shed clients does not
   return in lockstep. *)

type policy = {
  max_attempts : int;
  backoff_s : float;
  max_backoff_s : float;
  connect_timeout_s : float;
}

let default_policy =
  { max_attempts = 5; backoff_s = 0.05; max_backoff_s = 2.0; connect_timeout_s = 10.0 }

let policy ?(max_attempts = default_policy.max_attempts)
    ?(backoff_s = default_policy.backoff_s)
    ?(max_backoff_s = default_policy.max_backoff_s)
    ?(connect_timeout_s = default_policy.connect_timeout_s) () =
  if max_attempts < 1 then invalid_arg "Client.policy: max_attempts < 1";
  if backoff_s <= 0.0 || max_backoff_s < backoff_s then
    invalid_arg "Client.policy: need 0 < backoff_s <= max_backoff_s";
  if connect_timeout_s <= 0.0 then
    invalid_arg "Client.policy: connect_timeout_s <= 0";
  { max_attempts; backoff_s; max_backoff_s; connect_timeout_s }

type session = {
  path : string;
  pol : policy;
  rng : Random.State.t;
  rid_prefix : string;
  mutable seq : int;
  mutable conn : t option;
}

let session ?(policy = default_policy) path =
  let pid = Unix.getpid () in
  let now = int_of_float (Unix.gettimeofday () *. 1e6) in
  {
    path;
    pol = policy;
    rng = Random.State.make [| pid; now |];
    (* unique enough across client processes for one daemon lifetime *)
    rid_prefix = Printf.sprintf "c%d.%x" pid (now land 0xffffff);
    seq = 0;
    conn = None;
  }

let hangup s =
  match s.conn with
  | Some c ->
      close c;
      s.conn <- None
  | None -> ()

let fresh_rid s =
  s.seq <- s.seq + 1;
  Printf.sprintf "%s.%d" s.rid_prefix s.seq

let call s (c : Protocol.certify) =
  let c =
    match c.Protocol.rid with
    | Some _ -> c
    | None -> { c with Protocol.rid = Some (fresh_rid s) }
  in
  let rec go attempt backoff =
    let conn =
      match s.conn with
      | Some conn -> conn
      | None ->
          let conn = connect_retry ~timeout_s:s.pol.connect_timeout_s s.path in
          s.conn <- Some conn;
          conn
    in
    let lost what =
      (* connection died mid-request: the daemon may or may not have the
         job — only the rid knows. Reconnect and resend the same one. *)
      hangup s;
      if attempt + 1 >= s.pol.max_attempts then
        failwith ("certifyd client: " ^ what ^ " and retries exhausted")
      else go (attempt + 1) backoff
    in
    match request conn (Protocol.Certify c) with
    | Some (Protocol.Overloaded { retry_after_s; _ } as resp)
    | Some (Protocol.Quarantined { retry_after_s; _ } as resp) ->
        if attempt + 1 >= s.pol.max_attempts then resp
        else begin
          let base = Float.max retry_after_s backoff in
          let jitter = 0.5 +. Random.State.float s.rng 0.5 in
          Unix.sleepf (Float.min s.pol.max_backoff_s (base *. jitter));
          go (attempt + 1) (Float.min s.pol.max_backoff_s (backoff *. 2.0))
        end
    | Some resp -> resp
    | None -> lost "connection closed"
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        lost "connection reset"
    | exception Sys_error _ -> lost "connection error"
  in
  go 0 s.pol.backoff_s
