(** Warm model cache — loaded once in the daemon, shared with workers.

    Parsing weights, regenerating the corpus and lowering to IR dominate
    a cold certification; the daemon pays that cost once per model at
    startup, then pre-forks workers that inherit every loaded structure
    read-only through fork's copy-on-write pages. The digest (weights
    file hash) keys the result cache, so a retrained model can never
    serve stale verdicts.

    Loading also runs the affine-fusion pre-pass ({!Fuse}) on each
    lowered program (safe here: the service protocol carries no per-op
    fault spec, and on zoo architectures fusion is a structural no-op,
    so cached digests are unchanged) and lands every program parameter
    in a {!Tensor.Shm} arena created before the workers fork — one
    MAP_SHARED weight snapshot addressed by (offset, dims) descriptors,
    shared by all workers, on the same transport the zero-copy job
    dispatch uses. [DEEPT_NO_SHM=1] skips the arena entirely. *)

type entry = {
  zoo : Zoo.entry;
  model : Nn.Model.t;
  corpus : Text.Corpus.t;
  program : Ir.program;  (** lowered and affine-fused *)
  digest : string;  (** hex digest of the weights file *)
  test_len : int;  (** test-set size, for index validation at admission *)
  resident : (string * Tensor.Shm.mat_desc) list;
      (** program parameters landed in the arena (empty when shm is
          disabled or the arena filled up) *)
}

type t

val load : ?log:(string -> unit) -> string list -> t
(** Load (or train) each zoo model by name, in order.
    @raise Not_found on a name the zoo does not know. *)

val find : t -> string -> entry option
val names : t -> string list

val arena : t -> Tensor.Shm.t option
(** The pre-fork weight arena ([None] under [DEEPT_NO_SHM=1] or with no
    models loaded). Workers forked after {!load} share its pages. *)
