(** Warm model cache — loaded once in the daemon, shared with workers.

    Parsing weights, regenerating the corpus and lowering to IR dominate
    a cold certification; the daemon pays that cost once per model at
    startup, then pre-forks workers that inherit every loaded structure
    read-only through fork's copy-on-write pages. The digest (weights
    file hash) keys the result cache, so a retrained model can never
    serve stale verdicts. *)

type entry = {
  zoo : Zoo.entry;
  model : Nn.Model.t;
  corpus : Text.Corpus.t;
  program : Ir.program;
  digest : string;  (** hex digest of the weights file *)
  test_len : int;  (** test-set size, for index validation at admission *)
}

type t

val load : ?log:(string -> unit) -> string list -> t
(** Load (or train) each zoo model by name, in order.
    @raise Not_found on a name the zoo does not know. *)

val find : t -> string -> entry option
val names : t -> string list
