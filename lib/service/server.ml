(* The certifyd server: a single-threaded select loop over one listening
   Unix-domain socket, N nonblocking clients, and a pool of pre-forked
   warm workers speaking the Supervisor pipe protocol.

   The loop owns every decision — admission, dispatch, deadlines,
   respawn, drain — so there is no locking and every state transition is
   serialized with the journal writes that make it durable. Workers are
   forked after the model zoo is loaded, sharing weights and lowered
   programs read-only through copy-on-write. *)

module Config = Deept.Config
module Verdict = Deept.Verdict
module Journal = Deept.Journal
module Supervisor = Deept.Supervisor
module Engine = Deept.Engine
module Region = Deept.Region
module Sysio = Deept.Sysio

type opts = {
  socket : string;
  models : string list;
  pool : Config.pool;
  deadline_s : float option;
  queue_cap : int;
  breaker_threshold : int;
  breaker_cooloff_s : float;
  write_timeout_s : float;
  retry_hint_s : float;  (* Overloaded hint before the EWMA primes *)
  journal : string option;
  resume : bool;
  log : string -> unit;
}

let opts ?(pool = Config.default_pool) ?deadline_s ?(queue_cap = 64)
    ?(breaker_threshold = 3) ?(breaker_cooloff_s = 5.0)
    ?(write_timeout_s = 10.0) ?(retry_hint_s = 0.1) ?journal ?(resume = false)
    ?(log = fun _ -> ()) ~socket models =
  if queue_cap < 1 then invalid_arg "Server.opts: queue_cap < 1";
  if write_timeout_s <= 0.0 then invalid_arg "Server.opts: write_timeout_s <= 0";
  if retry_hint_s <= 0.0 then invalid_arg "Server.opts: retry_hint_s <= 0";
  if resume && journal = None then
    invalid_arg "Server.opts: resume requires a journal";
  {
    socket;
    models;
    pool;
    deadline_s;
    queue_cap;
    breaker_threshold;
    breaker_cooloff_s;
    write_timeout_s;
    retry_hint_s;
    journal;
    resume;
    log;
  }

let intake_path journal_path = journal_path ^ ".intake"

(* ---------------- the worker side ---------------- *)

(* What crosses the result pipe: the outcome distilled to marshal-plain
   data (Verdict.t and strings only — no closures, no custom blocks).
   [w_rungs] lists every ladder rung the engine attempted, in order —
   the daemon aggregates them into the stats histogram. *)
type wres = {
  w_verdict : Verdict.t;
  w_rung : string;
  w_attempts : int;
  w_rungs : string list;
}

let crash_result exn =
  {
    w_verdict = Verdict.Unknown Verdict.Numerical_fault;
    w_rung = "crash:" ^ Printexc.to_string exn;
    w_attempts = 1;
    w_rungs = [];
  }

(* One job, run inside a pre-forked worker. The fault drills exercise
   exactly the containment paths the daemon promises: [drill_crash] is a
   segfault-class death, [drill_stall_s] an overrun of the hard
   deadline. Everything catchable becomes a typed verdict; only genuine
   process deaths reach the supervisor side. *)
let run_job warm deadline_default _id (c : Protocol.certify) =
  if c.drill_crash then exit 86;
  (match c.drill_stall_s with Some s -> Unix.sleepf s | None -> ());
  match Warm.find warm c.Protocol.model with
  | None ->
      {
        w_verdict = Verdict.Unknown Verdict.Numerical_fault;
        w_rung = "crash:model not loaded";
        w_attempts = 0;
        w_rungs = [];
      }
  | Some w -> (
      try
        let toks, label =
          match c.Protocol.input with
          | Protocol.Index i -> List.nth w.Warm.corpus.Text.Corpus.test i
          | Protocol.Sentence s ->
              let toks = Text.Corpus.tokenize w.Warm.corpus s in
              ( toks,
                Nn.Forward.predict w.Warm.program
                  (Nn.Model.embed_tokens w.Warm.model toks) )
        in
        let x = Nn.Model.embed_tokens w.Warm.model toks in
        let pred = Nn.Forward.predict w.Warm.program x in
        if pred <> label then
          {
            w_verdict = Verdict.Falsified;
            w_rung = "concrete";
            w_attempts = 1;
            w_rungs = [];
          }
        else begin
          let word = max 0 (min c.Protocol.word (Array.length toks - 1)) in
          (* base_config is also what the cache key serializes — keep the
             two derivations one. *)
          let base = Protocol.base_config c in
          let deadline =
            match c.Protocol.deadline_s with
            | Some _ as d -> d
            | None -> deadline_default
          in
          let cfg = Config.with_budget ?deadline base in
          let region =
            Region.lp_ball ~p:c.Protocol.p x ~word ~radius:c.Protocol.radius
          in
          let o = Engine.certify cfg w.Warm.program region ~true_class:label in
          {
            w_verdict = o.Engine.verdict;
            w_rung = o.Engine.rung_name;
            w_attempts = List.length o.Engine.attempts;
            w_rungs =
              List.map (fun (a : Engine.attempt) -> a.Engine.rung_name)
                o.Engine.attempts;
          }
        end
      with exn -> crash_result exn)

(* ---------------- daemon-side state ---------------- *)

type job = {
  id : int;
  c : Protocol.certify;
  key : string;
  mutable client : int option;  (* None: resumed job, result journal-only *)
  mutable retries : int;
  mutable not_before : float;
  mutable first_dispatch : float option;
}

type wstate = {
  pid : int;
  job_out : out_channel;
  res_fd : Unix.file_descr;
  res_in : in_channel;
  job_w_fd : Unix.file_descr;
  mutable busy : int option;
  mutable started : float;
  mutable term_at : float option;
  mutable sigkilled : bool;
}

type cstate = {
  cid : int;
  fd : Unix.file_descr;
  inbuf : Buffer.t;
  mutable out : string;
  mutable last_write : float;  (* last byte accepted by the socket *)
}

let rec waitpid_retry pid =
  match Unix.waitpid [] pid with
  | _, status -> status
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> waitpid_retry pid

(* Intake-file reader with the same torn-tail tolerance as the journal:
   the final line of an fsynced append-only file can be torn by a kill;
   anything else malformed is corruption and stays loud. *)
let load_intake ~log path =
  if not (Sys.file_exists path) then []
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let buf = really_input_string ic n in
    close_in ic;
    let rec split acc off =
      if off >= n then List.rev acc
      else
        let e = try String.index_from buf off '\n' with Not_found -> n in
        split ((String.sub buf off (e - off), off) :: acc) (e + 1)
    in
    let rec parse acc = function
      | [] -> List.rev acc
      | (line, off) :: rest -> (
          if String.trim line = "" then parse acc rest
          else
            match Protocol.intake_of_json line with
            | Ok e -> parse (e :: acc) rest
            | Error msg ->
                if List.for_all (fun (l, _) -> String.trim l = "") rest then begin
                  log
                    (Printf.sprintf
                       "intake: dropping torn final line at byte %d (%s)" off
                       msg);
                  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
                  Sysio.ftruncate ~site:"intake.truncate" fd off;
                  Unix.close fd;
                  List.rev acc
                end
                else
                  failwith
                    (Printf.sprintf "certifyd: intake %s: malformed line: %s"
                       path msg))
    in
    parse [] (split [] 0)
  end

let run o =
  let log = o.log in
  let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
  let drain_requested = ref false in
  let install s = Sys.set_signal s (Sys.Signal_handle (fun _ -> drain_requested := true)) in
  install Sys.sigterm;
  install Sys.sigint;

  (* Warm the model cache before binding the socket, so a connect that
     succeeds is a connect to a daemon that can actually serve. *)
  let warm = Warm.load ~log o.models in

  let journal =
    match o.journal with
    | None -> None
    | Some p -> Some (if o.resume then Journal.resume p else Journal.create p)
  in
  let journaled id =
    match journal with Some j -> Journal.journaled j id | None -> false
  in
  let journal_append e =
    match journal with Some j -> Journal.append j e | None -> ()
  in
  (* A stale intake from a previous fresh run must not leak into a later
     --resume: truncate it eagerly on fresh starts. *)
  (match o.journal with
  | Some p when not o.resume && Sys.file_exists (intake_path p) ->
      let fd = Unix.openfile (intake_path p) [ Unix.O_WRONLY ] 0o644 in
      Sysio.ftruncate ~site:"intake.truncate" fd 0;
      Unix.close fd
  | _ -> ());
  let intake_fd = ref None in
  let intake_append id c =
    match o.journal with
    | None -> ()
    | Some p ->
        let fd =
          match !intake_fd with
          | Some fd -> fd
          | None ->
              let fd =
                Unix.openfile (intake_path p)
                  [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ]
                  0o644
              in
              intake_fd := Some fd;
              Journal.fsync_dir ~site:"intake.dir"
                (Filename.dirname (intake_path p));
              fd
        in
        Sysio.write_string ~site:"intake.append" fd
          (Protocol.intake_to_json ~id c ^ "\n");
        Sysio.fsync ~site:"intake.fsync" fd
  in

  let cache = Cache.create () in
  (match journal with
  | Some j -> Cache.absorb cache (Journal.entries j)
  | None -> ());

  let next_id = ref 1 in
  let bump_id id = if id >= !next_id then next_id := id + 1 in
  (match journal with
  | Some j -> List.iter (fun e -> bump_id e.Journal.job) (Journal.entries j)
  | None -> ());
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in

  let q : job Jobq.t =
    Jobq.create ~default_service_s:o.retry_hint_s ~cap:o.queue_cap ()
  in
  let inflight : (int, job) Hashtbl.t = Hashtbl.create 16 in
  (* Idempotency: rid -> job id for every request that carried one, and
     id -> finished wire result so a deduplicated retry can replay the
     answer instead of recomputing (or worse, double-running) the job. *)
  let rids : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let done_results : (int, Protocol.result_r) Hashtbl.t = Hashtbl.create 16 in
  let register_rid (c : Protocol.certify) id =
    match c.Protocol.rid with
    | Some r -> Hashtbl.replace rids r id
    | None -> ()
  in
  let workers = ref [] in
  let clients = ref [] in
  let breakers : (string, Breaker.t) Hashtbl.t = Hashtbl.create 4 in
  let breaker_for model =
    match Hashtbl.find_opt breakers model with
    | Some b -> b
    | None ->
        let b =
          Breaker.create ~threshold:o.breaker_threshold
            ~cooloff_s:o.breaker_cooloff_s ~now:Unix.gettimeofday ()
        in
        Hashtbl.add breakers model b;
        b
  in
  let draining = ref false in
  let start_time = Unix.gettimeofday () in
  let jobs_done = ref 0 in
  (* Rung histogram: every ladder rung attempted by jobs computed in
     this process. Cache replays don't count — they report the cached
     attempts but spend no propagation here. *)
  let rung_hist : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let count_rungs names =
    List.iter
      (fun r ->
        Hashtbl.replace rung_hist r
          (1 + Option.value ~default:0 (Hashtbl.find_opt rung_hist r)))
      names
  in
  let worker_deaths = ref 0 in
  let consec_deaths = ref 0 in
  let respawn_at = ref 0.0 in

  (* --resume: replay every intaken job the journal does not know about,
     oldest first, bypassing the admission cap — these jobs were already
     promised durably. *)
  (match (o.resume, o.journal) with
  | true, Some p ->
      let entries = load_intake ~log (intake_path p) in
      List.iter (fun (id, _) -> bump_id id) entries;
      (* Rebuild the idempotency tables: rids ride in the intake
         encoding, finished answers come from the journal — so a client
         retrying a rid across the restart still gets a replay, not a
         duplicate run. *)
      let jtbl : (int, Journal.entry) Hashtbl.t = Hashtbl.create 64 in
      (match journal with
      | Some j ->
          List.iter
            (fun e -> Hashtbl.replace jtbl e.Journal.job e)
            (Journal.entries j)
      | None -> ());
      List.iter
        (fun (id, (c : Protocol.certify)) ->
          register_rid c id;
          match Hashtbl.find_opt jtbl id with
          | Some e ->
              Hashtbl.replace done_results id
                {
                  Protocol.id;
                  tag = c.Protocol.tag;
                  verdict = e.Journal.verdict;
                  rung = e.Journal.rung;
                  attempts = e.Journal.attempts;
                  retries = e.Journal.retries;
                  wall_s = e.Journal.wall_s;
                  cached = true;
                }
          | None -> ())
        entries;
      let missing = List.filter (fun (id, _) -> not (journaled id)) entries in
      let missing =
        List.sort (fun (a, _) (b, _) -> compare b a) missing (* desc: requeue front-pushes *)
      in
      List.iter
        (fun (id, (c : Protocol.certify)) ->
          match Warm.find warm c.Protocol.model with
          | None ->
              log
                (Printf.sprintf
                   "resume: job %d wants model %s, which is not loaded" id
                   c.Protocol.model);
              journal_append
                {
                  Journal.job = id;
                  verdict = Verdict.Unknown Verdict.Numerical_fault;
                  rung = "resume";
                  attempts = 0;
                  retries = 0;
                  wall_s = 0.0;
                  detail = "model not loaded";
                };
              Hashtbl.replace done_results id
                {
                  Protocol.id;
                  tag = c.Protocol.tag;
                  verdict = Verdict.Unknown Verdict.Numerical_fault;
                  rung = "resume";
                  attempts = 0;
                  retries = 0;
                  wall_s = 0.0;
                  cached = true;
                }
          | Some w ->
              Jobq.requeue q
                {
                  id;
                  c;
                  key = Cache.key ~digest:w.Warm.digest c;
                  client = None;
                  retries = 0;
                  not_before = 0.0;
                  first_dispatch = None;
                })
        missing;
      if Jobq.depth q > 0 then
        log (Printf.sprintf "resume: re-enqueued %d in-flight job(s)" (Jobq.depth q))
  | _ -> ());

  (* ---------------- socket ---------------- *)
  if Sys.file_exists o.socket then Sys.remove o.socket;
  let lfd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind lfd (Unix.ADDR_UNIX o.socket);
  Unix.listen lfd 64;
  Unix.set_nonblock lfd;
  log (Printf.sprintf "listening on %s (%d model(s), %d worker(s))" o.socket
         (List.length (Warm.names warm)) o.pool.Config.workers);

  (* ---------------- workers ---------------- *)
  let parent_fds () =
    (lfd :: List.map (fun c -> c.fd) !clients)
    @ List.concat_map (fun w -> [ w.res_fd; w.job_w_fd ]) !workers
    @ (match !intake_fd with Some fd -> [ fd ] | None -> [])
  in
  let spawn () =
    let job_r, job_w = Unix.pipe () in
    let res_r, res_w = Unix.pipe () in
    match Unix.fork () with
    | 0 ->
        (* Workers run clean: an armed chaos plan targets the daemon's
           durability path, and inheriting it would make the crash-point
           enumeration nondeterministic (see bin/crashprobe.ml). *)
        Sysio.disarm ();
        List.iter
          (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
          (parent_fds ());
        Unix.close job_w;
        Unix.close res_r;
        Supervisor.worker_loop ~mem_limit_mb:o.pool.Config.mem_limit_mb ~job_r
          ~res_w
          (run_job warm o.deadline_s);
        exit 0
    | pid ->
        Unix.close job_r;
        Unix.close res_w;
        let w =
          {
            pid;
            job_out = Unix.out_channel_of_descr job_w;
            res_fd = res_r;
            res_in = Unix.in_channel_of_descr res_r;
            job_w_fd = job_w;
            busy = None;
            started = 0.0;
            term_at = None;
            sigkilled = false;
          }
        in
        workers := w :: !workers;
        w
  in
  let discard w =
    workers := List.filter (fun w' -> w'.pid <> w.pid) !workers;
    close_out_noerr w.job_out;
    close_in_noerr w.res_in
  in

  (* ---------------- clients ---------------- *)
  let next_cid = ref 1 in
  let drop_client cl =
    clients := List.filter (fun c -> c.cid <> cl.cid) !clients;
    (try Unix.close cl.fd with Unix.Unix_error _ -> ());
    (* orphan the client's jobs: they keep running, results go to the
       journal only *)
    let orphan (j : job) = if j.client = Some cl.cid then j.client <- None in
    Hashtbl.iter (fun _ j -> orphan j) inflight;
    Jobq.iter q orphan
  in
  let send_line cl line =
    if cl.out = "" then cl.last_write <- Unix.gettimeofday ();
    cl.out <- cl.out ^ line ^ "\n"
  in
  let send cl resp = send_line cl (Protocol.response_to_json resp) in
  let respond (j : job) resp =
    match j.client with
    | None -> ()
    | Some cid -> (
        match List.find_opt (fun c -> c.cid = cid) !clients with
        | Some cl -> send cl resp
        | None -> ())
  in

  (* ---------------- completion ---------------- *)
  let finalize_ok (j : job) (r : wres) =
    let now = Unix.gettimeofday () in
    let wall =
      match j.first_dispatch with Some t -> now -. t | None -> 0.0
    in
    Jobq.note_service q wall;
    count_rungs r.w_rungs;
    Cache.store cache j.key
      { Cache.verdict = r.w_verdict; rung = r.w_rung; attempts = r.w_attempts };
    journal_append
      {
        Journal.job = j.id;
        verdict = r.w_verdict;
        rung = r.w_rung;
        attempts = r.w_attempts;
        retries = j.retries;
        wall_s = wall;
        detail = "key=" ^ j.key;
      };
    let res =
      {
        Protocol.id = j.id;
        tag = j.c.Protocol.tag;
        verdict = r.w_verdict;
        rung = r.w_rung;
        attempts = r.w_attempts;
        retries = j.retries;
        wall_s = wall;
        cached = false;
      }
    in
    Hashtbl.replace done_results j.id { res with Protocol.cached = true };
    respond j (Protocol.Result res);
    incr jobs_done
  in
  let finalize_failure (j : job) failure =
    let now = Unix.gettimeofday () in
    let wall =
      match j.first_dispatch with Some t -> now -. t | None -> 0.0
    in
    let verdict = Verdict.Unknown (Supervisor.failure_reason failure) in
    journal_append
      {
        Journal.job = j.id;
        verdict;
        rung = "worker";
        attempts = 0;
        retries = j.retries;
        wall_s = wall;
        detail = Supervisor.failure_detail failure;
      };
    let res =
      {
        Protocol.id = j.id;
        tag = j.c.Protocol.tag;
        verdict;
        rung = "worker";
        attempts = 0;
        retries = j.retries;
        wall_s = wall;
        cached = false;
      }
    in
    Hashtbl.replace done_results j.id { res with Protocol.cached = true };
    respond j (Protocol.Result res);
    incr jobs_done
  in

  let accept_result w ((id, r) : int * wres) =
    w.busy <- None;
    consec_deaths := 0;
    match Hashtbl.find_opt inflight id with
    | None -> () (* result raced a kill decision; already reported *)
    | Some j ->
        Hashtbl.remove inflight id;
        Breaker.success (breaker_for j.c.Protocol.model);
        finalize_ok j r
  in
  let note_death () =
    incr worker_deaths;
    incr consec_deaths;
    respawn_at :=
      Unix.gettimeofday ()
      +. Supervisor.backoff_delay o.pool ~retries:(!consec_deaths - 1)
  in
  let handle_death w ~decode_error =
    let status = waitpid_retry w.pid in
    note_death ();
    (match Option.bind w.busy (Hashtbl.find_opt inflight) with
    | None -> ()
    | Some j -> (
        Hashtbl.remove inflight j.id;
        let failure =
          match decode_error with
          | Some msg -> Supervisor.Crashed { reason = "decode: " ^ msg }
          | None ->
              Supervisor.classify_status ~term_sent:(w.term_at <> None) status
        in
        match failure with
        | Supervisor.Crashed _ ->
            (* a crash indicts the model; a deadline kill indicts the job *)
            Breaker.failure (breaker_for j.c.Protocol.model);
            if j.retries < o.pool.Config.max_retries then begin
              j.not_before <-
                Unix.gettimeofday ()
                +. Supervisor.backoff_delay o.pool ~retries:j.retries;
              j.retries <- j.retries + 1;
              Jobq.requeue q j
            end
            else finalize_failure j failure
        | Supervisor.Killed _ -> finalize_failure j failure));
    discard w
  in

  (* ---------------- dispatch ---------------- *)
  let dispatch w (j : job) =
    let now = Unix.gettimeofday () in
    if j.first_dispatch = None then j.first_dispatch <- Some now;
    Hashtbl.replace inflight j.id j;
    let b = Marshal.to_bytes (j.id, j.c) [] in
    match Sysio.write_all ~site:"server.dispatch" w.job_w_fd b 0 (Bytes.length b)
    with
    | () ->
        w.busy <- Some j.id;
        w.started <- now
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.EBADF), _, _) ->
        (* worker died idle: the job never ran there *)
        ignore (waitpid_retry w.pid);
        note_death ();
        discard w;
        Hashtbl.remove inflight j.id;
        Jobq.requeue q j
  in
  let rec feed now =
    match
      List.find_opt (fun w -> w.busy = None && w.term_at = None) !workers
    with
    | None -> ()
    | Some w -> (
        match Jobq.pop q ~ready:(fun (j : job) -> j.not_before <= now) with
        | None -> ()
        | Some j ->
            dispatch w j;
            feed now)
  in
  let enforce_deadlines now =
    match o.pool.Config.hard_deadline_s with
    | None -> ()
    | Some limit ->
        List.iter
          (fun w ->
            match (w.busy, w.term_at) with
            | Some _, None when now -. w.started > limit ->
                w.term_at <- Some now;
                (try Unix.kill w.pid Sys.sigterm with Unix.Unix_error _ -> ())
            | Some _, Some t
              when (not w.sigkilled) && now -. t > o.pool.Config.grace_s ->
                w.sigkilled <- true;
                (try Unix.kill w.pid Sys.sigkill with Unix.Unix_error _ -> ())
            | _ -> ())
          !workers
  in

  (* ---------------- admission ---------------- *)
  let make_stats () =
    let b = Buffer.create 32 in
    Hashtbl.iter
      (fun m br ->
        if Buffer.length b > 0 then Buffer.add_char b ' ';
        Buffer.add_string b (m ^ "=" ^ Breaker.state_name br))
      breakers;
    {
      Protocol.uptime_s = Unix.gettimeofday () -. start_time;
      workers = List.length !workers;
      queue_depth = Jobq.depth q;
      inflight = Hashtbl.length inflight;
      jobs_done = !jobs_done;
      shed = Jobq.shed q;
      cache_hits = Cache.hits cache;
      cache_misses = Cache.misses cache;
      cache_size = Cache.size cache;
      worker_deaths = !worker_deaths;
      draining = !draining;
      breakers = Buffer.contents b;
      rungs =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) rung_hist []
        |> List.sort compare
        |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
        |> String.concat " ";
    }
  in
  (* A deduplicated retry of a still-running job re-attaches the new
     connection so the eventual result is delivered exactly once, to the
     client that is still listening. *)
  let reattach id cid =
    let att (j : job) = if j.id = id then j.client <- Some cid in
    Hashtbl.iter (fun _ j -> att j) inflight;
    Jobq.iter q att
  in
  let admit_new cl (c : Protocol.certify) =
    match Warm.find warm c.Protocol.model with
    | None ->
        send cl
          (Protocol.Error
             (Printf.sprintf "unknown model %s (loaded: %s)" c.Protocol.model
                (String.concat ", " (Warm.names warm))))
    | Some w -> (
        let invalid =
          match c.Protocol.input with
          | Protocol.Index i when i < 0 || i >= w.Warm.test_len ->
              Some
                (Printf.sprintf "index %d out of range (test set has %d)" i
                   w.Warm.test_len)
          | Protocol.Sentence s
            when Array.length (Text.Corpus.tokenize w.Warm.corpus s) < 2 ->
              Some "sentence is empty after tokenization"
          | _ -> None
        in
        match invalid with
        | Some msg -> send cl (Protocol.Error msg)
        | None -> (
            let key = Cache.key ~digest:w.Warm.digest c in
            match Cache.find cache key with
            | Some e ->
                (* Hits bypass shedding and the breaker: no worker runs,
                   and the journal still records the request so resumed
                   summaries count every served job. *)
                let id = fresh_id () in
                journal_append
                  {
                    Journal.job = id;
                    verdict = e.Cache.verdict;
                    rung = e.Cache.rung;
                    attempts = e.Cache.attempts;
                    retries = 0;
                    wall_s = 0.0;
                    detail = "key=" ^ key;
                  };
                let res =
                  {
                    Protocol.id;
                    tag = c.Protocol.tag;
                    verdict = e.Cache.verdict;
                    rung = e.Cache.rung;
                    attempts = e.Cache.attempts;
                    retries = 0;
                    wall_s = 0.0;
                    cached = true;
                  }
                in
                register_rid c id;
                Hashtbl.replace done_results id res;
                send cl (Protocol.Result res)
            | None ->
                if !draining then
                  send cl
                    (Protocol.Overloaded
                       {
                         tag = c.Protocol.tag;
                         retry_after_s =
                           Jobq.retry_after q
                             ~workers:(max 1 (List.length !workers));
                       })
                else if Jobq.full q then begin
                  (* a full admit both counts the shed and refuses *)
                  let j =
                    {
                      id = 0;
                      c;
                      key;
                      client = None;
                      retries = 0;
                      not_before = 0.0;
                      first_dispatch = None;
                    }
                  in
                  ignore (Jobq.admit q j);
                  send cl
                    (Protocol.Overloaded
                       {
                         tag = c.Protocol.tag;
                         retry_after_s =
                           Jobq.retry_after q
                             ~workers:(max 1 (List.length !workers));
                       })
                end
                else
                  match Breaker.admit (breaker_for c.Protocol.model) with
                  | `Reject remaining ->
                      send cl
                        (Protocol.Quarantined
                           {
                             tag = c.Protocol.tag;
                             model = c.Protocol.model;
                             retry_after_s = remaining;
                           })
                  | `Ok ->
                      let id = fresh_id () in
                      let j =
                        {
                          id;
                          c;
                          key;
                          client = Some cl.cid;
                          retries = 0;
                          not_before = 0.0;
                          first_dispatch = None;
                        }
                      in
                      ignore (Jobq.admit q j);
                      register_rid c id;
                      (* durable before dispatchable: a daemon killed
                         from here on re-runs this job on --resume *)
                      intake_append id c))
  in
  let admit cl (c : Protocol.certify) =
    match Option.bind c.Protocol.rid (Hashtbl.find_opt rids) with
    | Some id -> (
        match Hashtbl.find_opt done_results id with
        | Some res -> send cl (Protocol.Result res)
        | None -> reattach id cl.cid)
    | None -> admit_new cl c
  in
  let process_line cl line =
    if String.trim line <> "" then
      match Protocol.request_of_json line with
      | Error e -> send cl (Protocol.Error e)
      | Ok Protocol.Stats -> send cl (Protocol.Stats_r (make_stats ()))
      | Ok Protocol.Shutdown ->
          draining := true;
          send cl Protocol.Ok_ack
      | Ok (Protocol.Certify c) -> admit cl c
  in
  let process_inbuf cl =
    let s = Buffer.contents cl.inbuf in
    let rec go start =
      match String.index_from_opt s start '\n' with
      | None ->
          Buffer.clear cl.inbuf;
          Buffer.add_substring cl.inbuf s start (String.length s - start)
      | Some nl ->
          process_line cl (String.sub s start (nl - start));
          go (nl + 1)
    in
    go 0
  in
  let handle_client_read cl =
    let buf = Bytes.create 4096 in
    match Unix.read cl.fd buf 0 4096 with
    | 0 -> drop_client cl
    | n ->
        Buffer.add_subbytes cl.inbuf buf 0 n;
        process_inbuf cl
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
        () (* select will mark it readable again *)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> drop_client cl
  in
  let flush_client cl now =
    (* Sysio.single_write restarts EINTR and may report a partial count;
       the unsent suffix stays buffered in [cl.out] — bytes are never
       dropped, the next writable tick continues where this one ended. *)
    if cl.out <> "" then
      match
        Sysio.single_write ~site:"server.client_send" cl.fd cl.out 0
          (String.length cl.out)
      with
      | n ->
          cl.out <- String.sub cl.out n (String.length cl.out - n);
          cl.last_write <- now
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          drop_client cl
  in
  let accept_clients () =
    let rec go () =
      match Unix.accept lfd with
      | fd, _ ->
          Unix.set_nonblock fd;
          let cid = !next_cid in
          incr next_cid;
          clients :=
            {
              cid;
              fd;
              inbuf = Buffer.create 256;
              out = "";
              last_write = Unix.gettimeofday ();
            }
            :: !clients;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    in
    go ()
  in
  let check_write_timeouts now =
    let slow =
      List.filter
        (fun cl -> cl.out <> "" && now -. cl.last_write > o.write_timeout_s)
        !clients
    in
    List.iter
      (fun cl ->
        log (Printf.sprintf "dropping slow client %d (write stalled > %gs)"
               cl.cid o.write_timeout_s);
        drop_client cl)
      slow
  in
  let next_timeout now =
    let candidates = ref [] in
    let add t = if t > 0.0 then candidates := t :: !candidates else candidates := 0.01 :: !candidates in
    (match o.pool.Config.hard_deadline_s with
    | Some limit ->
        List.iter
          (fun w ->
            match (w.busy, w.term_at) with
            | Some _, None -> add (w.started +. limit -. now)
            | Some _, Some t when not w.sigkilled ->
                add (t +. o.pool.Config.grace_s -. now)
            | _ -> ())
          !workers
    | None -> ());
    Jobq.iter q (fun (j : job) ->
        if j.not_before > now then add (j.not_before -. now));
    if List.length !workers < o.pool.Config.workers && !respawn_at > now then
      add (!respawn_at -. now);
    List.iter
      (fun cl ->
        if cl.out <> "" then
          add (cl.last_write +. o.write_timeout_s -. now))
      !clients;
    match !candidates with
    | [] -> 0.5
    | l -> Float.max 0.01 (List.fold_left Float.min 0.5 l)
  in

  (* ---------------- main loop ---------------- *)
  let running = ref true in
  while !running do
    if !drain_requested && not !draining then begin
      draining := true;
      log "drain requested (signal): finishing queued work, shedding new"
    end;
    let now = Unix.gettimeofday () in
    if
      List.length !workers < o.pool.Config.workers
      && now >= !respawn_at
      && ((not !draining) || Jobq.depth q > 0 || Hashtbl.length inflight > 0)
    then ignore (spawn ());
    feed now;
    enforce_deadlines now;
    check_write_timeouts now;
    if
      !draining
      && Jobq.depth q = 0
      && Hashtbl.length inflight = 0
      && List.for_all (fun cl -> cl.out = "") !clients
    then running := false
    else begin
      let rfds =
        (lfd :: List.map (fun cl -> cl.fd) !clients)
        @ List.map (fun w -> w.res_fd) !workers
      in
      let wfds =
        List.filter_map
          (fun cl -> if cl.out <> "" then Some cl.fd else None)
          !clients
      in
      let readable, writable, _ =
        match Unix.select rfds wfds [] (next_timeout now) with
        | r -> r
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem lfd readable then accept_clients ();
      List.iter
        (fun fd ->
          if fd <> lfd then
            match List.find_opt (fun w -> w.res_fd = fd) !workers with
            | Some w -> (
                match (Marshal.from_channel w.res_in : int * wres) with
                | msg -> accept_result w msg
                | exception End_of_file -> handle_death w ~decode_error:None
                | exception Failure msg ->
                    (try Unix.kill w.pid Sys.sigkill
                     with Unix.Unix_error _ -> ());
                    handle_death w ~decode_error:(Some msg))
            | None -> (
                match List.find_opt (fun cl -> cl.fd = fd) !clients with
                | Some cl -> handle_client_read cl
                | None -> ()))
        readable;
      let now = Unix.gettimeofday () in
      List.iter
        (fun fd ->
          match List.find_opt (fun cl -> cl.fd = fd) !clients with
          | Some cl -> flush_client cl now
          | None -> ())
        writable
    end
  done;

  (* orderly shutdown: EOF the job pipes, reap, close everything *)
  List.iter
    (fun w ->
      close_out_noerr w.job_out;
      close_in_noerr w.res_in)
    !workers;
  List.iter (fun w -> ignore (waitpid_retry w.pid)) !workers;
  workers := [];
  List.iter (fun cl -> try Unix.close cl.fd with Unix.Unix_error _ -> ()) !clients;
  clients := [];
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  (try Sys.remove o.socket with Sys_error _ -> ());
  (match !intake_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  Sys.set_signal Sys.sigpipe old_sigpipe;
  log
    (Printf.sprintf "drained: %d job(s) done, %d shed, %d cache hit(s), %d worker death(s)"
       !jobs_done (Jobq.shed q) (Cache.hits cache) !worker_deaths)
