#!/usr/bin/env bash
# Formatting gate for `dune build @ci`.
#
# The container has no ocamlformat, so the portable core is a small set
# of invariants every file must satisfy (no tabs, no trailing
# whitespace, no CRLF line endings, final newline present). When
# ocamlformat IS on PATH it runs too, in check mode, so installing it
# upgrades the gate without a dune change.
set -u

fail=0
tab=$(printf '\t')
cr=$(printf '\r')

while IFS= read -r f; do
  if grep -qn "$tab" "$f"; then
    echo "fmt: $f: tab character" >&2
    fail=1
  fi
  if grep -qn "$cr" "$f"; then
    echo "fmt: $f: CRLF line ending" >&2
    fail=1
  elif grep -qn '[[:space:]]$' "$f"; then
    echo "fmt: $f: trailing whitespace" >&2
    fail=1
  fi
  if [ -s "$f" ] && [ -n "$(tail -c 1 "$f")" ]; then
    echo "fmt: $f: missing final newline" >&2
    fail=1
  fi
done < <(find lib bin bench test -name '*.ml' -o -name '*.mli' | sort)

if command -v ocamlformat >/dev/null 2>&1; then
  while IFS= read -r f; do
    if ! ocamlformat --check "$f" 2>/dev/null; then
      echo "fmt: $f: ocamlformat --check failed" >&2
      fail=1
    fi
  done < <(find lib bin bench test -name '*.ml' -o -name '*.mli' | sort)
fi

if [ "$fail" -eq 0 ]; then
  echo "fmt: clean"
fi
exit "$fail"
