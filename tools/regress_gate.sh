#!/usr/bin/env bash
# Hermetic benchmark regression gate for `dune build @ci`.
#
#   regress_gate.sh BENCH_EXE CHECK_REGRESS_EXE BASELINE_JSON [DATA_DIR] [TOLERANCE]
#
# The committed baseline (BENCH_kernels.json or BENCH_radius.json) is
# copied into a scratch directory as the "previous" snapshot, the
# benchmark re-measures on this machine (rotating the copy to
# *.prev.json), and check_regress.exe fails the build if any metric got
# more than 25% slower than the committed baseline. Nothing outside the
# scratch directory is touched, so the gate cannot dirty the
# repository's own snapshot rotation. The optional DATA_DIR is resolved
# to an absolute path and forwarded as --data (benchmarks that load zoo
# models need it, since the benchmark runs inside the scratch dir). The
# optional TOLERANCE (a fraction, default check_regress's 0.25) widens
# the gate for benchmarks whose wall-clock is inherently noisier —
# fork-based probe workers time-sharing an undersized machine. Any
# arguments past TOLERANCE are forwarded to the benchmark verbatim (the
# refine gate re-measures a subset of the committed baseline's models;
# check_regress reports the missing rows as dropped without failing).
set -eu

bench=$(realpath "$1")
check=$(realpath "$2")
baseline=$(realpath "$3")
data_args=()
if [ "$#" -ge 4 ]; then
  data_args=(--data "$(realpath "$4")")
fi
check_args=()
if [ "$#" -ge 5 ]; then
  check_args=(--tolerance "$5")
fi
bench_args=()
if [ "$#" -ge 6 ]; then
  bench_args=("${@:6}")
fi

tmp=$(mktemp -d regress_gate.XXXXXX)
trap 'rm -rf "$tmp"' EXIT

base=$(basename "$baseline")
cp "$baseline" "$tmp/$base"
(cd "$tmp" && "$bench" --json --out "$base" ${data_args[@]+"${data_args[@]}"} \
  ${bench_args[@]+"${bench_args[@]}"})
"$check" --current "$tmp/$base" ${check_args[@]+"${check_args[@]}"}
