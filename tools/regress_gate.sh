#!/usr/bin/env bash
# Hermetic kernel-benchmark regression gate for `dune build @ci`.
#
#   regress_gate.sh KERNELS_EXE CHECK_REGRESS_EXE BASELINE_JSON
#
# The committed BENCH_kernels.json is copied into a scratch directory as
# the "previous" snapshot, kernels.exe re-measures on this machine
# (rotating the copy to BENCH_kernels.prev.json), and check_regress.exe
# fails the build if any kernel got more than 25% slower than the
# committed baseline. Nothing outside the scratch directory is touched,
# so the gate cannot dirty the repository's own snapshot rotation.
set -eu

kernels=$(realpath "$1")
check=$(realpath "$2")
baseline=$(realpath "$3")

tmp=$(mktemp -d regress_gate.XXXXXX)
trap 'rm -rf "$tmp"' EXIT

cp "$baseline" "$tmp/BENCH_kernels.json"
(cd "$tmp" && "$kernels" --json --out BENCH_kernels.json)
"$check" --current "$tmp/BENCH_kernels.json"
