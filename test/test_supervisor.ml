(* Process isolation: the supervised worker pool, the crash-safe journal
   and the verdict string round-trip it depends on. Worker deaths of every
   kind — crash, deadline kill, SIGKILL escalation, OOM guard — must be
   confined to the job that caused them, and a batch SIGKILLed mid-run
   must resume from its journal certifying exactly the remaining jobs. *)

module C = Deept.Config
module V = Deept.Verdict
module S = Deept.Supervisor
module J = Deept.Journal

let tmp_path =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "deept-supervisor-test-%d-%d-%s" (Unix.getpid ()) !n name)

let with_tmp name f =
  let path = tmp_path name in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () -> f path)

(* ---------------- verdict string round-trip ---------------- *)

let test_verdict_round_trip () =
  let all =
    V.Certified :: V.Falsified :: List.map (fun r -> V.Unknown r) V.all_reasons
  in
  List.iter
    (fun v ->
      match V.of_string (V.to_string v) with
      | Some v' ->
          Helpers.check_true ("round-trip " ^ V.to_string v) (V.equal v v')
      | None -> Alcotest.failf "of_string failed on %s" (V.to_string v))
    all;
  List.iter
    (fun s ->
      Helpers.check_true ("rejects " ^ s) (V.of_string s = None))
    [ ""; "certifiedX"; "unknown"; "unknown("; "unknown()"; "unknown(nope)";
      "Unknown(timeout)"; "unknown(timeout" ]

(* ---------------- journal ---------------- *)

let entry ?(verdict = V.Certified) ?(rung = "fast") ?(retries = 0)
    ?(detail = "") job =
  { J.job; verdict; rung; attempts = 1; retries; wall_s = 0.125; detail }

let test_journal_json_round_trip () =
  let es =
    [
      entry 0;
      entry ~verdict:(V.Unknown V.Worker_killed) ~rung:"worker" ~detail:"SIGKILL" 1;
      entry ~verdict:(V.Unknown V.Worker_crashed) ~rung:"worker"
        ~detail:"weird \"quotes\"\\backslash\n\ttabs" ~retries:3 2;
      entry ~verdict:V.Falsified ~rung:"concrete" 17;
    ]
  in
  List.iter
    (fun e ->
      match J.of_json (J.to_json e) with
      | Ok e' -> Helpers.check_true "entry round-trip" (e = e')
      | Error msg -> Alcotest.failf "of_json: %s on %s" msg (J.to_json e))
    es;
  List.iter
    (fun s ->
      Helpers.check_true ("rejects " ^ s) (Result.is_error (J.of_json s)))
    [
      "";
      "{";
      "{}";
      "{\"job\":1}";
      "{\"job\":1.5,\"verdict\":\"certified\",\"rung\":\"fast\",\"attempts\":1,\"retries\":0,\"wall_s\":0.1,\"detail\":\"\"}";
      "{\"job\":1,\"verdict\":\"nope\",\"rung\":\"fast\",\"attempts\":1,\"retries\":0,\"wall_s\":0.1,\"detail\":\"\"}";
      "{\"job\":1,\"verdict\":\"certified\",\"rung\":\"fast\",\"attempts\":1,\"retries\":0,\"wall_s\":0.1,\"detail\":\"\",\"extra\":2}";
      "{\"job\":1,\"verdict\":\"certified\",\"rung\":\"fast\",\"attempts\":1,\"retries\":0,\"wall_s\":0.1,\"detail\":\"\"} trailing";
    ]

let test_journal_append_reload () =
  with_tmp "append" @@ fun path ->
  let j = J.create path in
  let es = [ entry 3; entry ~verdict:(V.Unknown V.Timeout) ~rung:"interval" 1; entry 7 ] in
  List.iter (J.append j) es;
  Helpers.check_true "in-memory order" (J.entries j = es);
  Helpers.check_true "reload equals appended" (J.load path = es);
  Helpers.check_true "journaled" (J.journaled j 1 && not (J.journaled j 2));
  Alcotest.check_raises "duplicate job rejected"
    (Invalid_argument "Journal.append: job 3 already journaled") (fun () ->
      J.append j (entry 3));
  (* resume continues where the file left off and clears stale temps *)
  let oc = open_out (path ^ ".tmp") in
  output_string oc "torn half-wri";
  close_out oc;
  let j2 = J.resume path in
  Helpers.check_true "resume loads all" (J.entries j2 = es);
  Helpers.check_true "stale tmp removed" (not (Sys.file_exists (path ^ ".tmp")));
  J.append j2 (entry 2);
  Helpers.check_true "resume appends" (List.length (J.load path) = 4)

(* ---------------- the worker pool: clean runs ---------------- *)

let jobs_of n = List.init n (fun i -> (i, i))

let test_pool_basic () =
  List.iter
    (fun workers ->
      let pool = C.pool ~workers () in
      let rs = S.run ~pool ~worker:(fun _ x -> (x * 2) + 1) (jobs_of 9) in
      Helpers.check_true "all jobs answered" (List.length rs = 9);
      List.iteri
        (fun i (r : int S.job_result) ->
          Helpers.check_true "ordered by id" (r.S.job = i);
          Helpers.check_true "no retries" (r.S.retries = 0);
          Helpers.check_true "result correct" (r.S.outcome = Ok ((i * 2) + 1)))
        rs)
    [ 1; 4 ]

let test_pool_parallel_speedup () =
  (* 6 sleeping jobs on 3 workers must take ~2 rounds, not 6: a weak
     bound (< 4 rounds) keeps the assertion robust on loaded machines. *)
  let t0 = Unix.gettimeofday () in
  let rs =
    S.run ~pool:(C.pool ~workers:3 ())
      ~worker:(fun _ () -> Unix.sleepf 0.1)
      (List.init 6 (fun i -> (i, ())))
  in
  let dt = Unix.gettimeofday () -. t0 in
  Helpers.check_true "all done" (List.length rs = 6);
  Helpers.check_true
    (Printf.sprintf "parallel wall %.2fs < 0.4s" dt)
    (dt < 0.4)

let test_pool_rejects_duplicates () =
  Alcotest.check_raises "duplicate ids"
    (Invalid_argument "Supervisor.run: duplicate job ids") (fun () ->
      ignore (S.run ~worker:(fun _ x -> x) [ (1, 0); (1, 1) ]))

(* ---------------- fault containment ---------------- *)

let outcome_of rs id =
  (List.find (fun (r : 'b S.job_result) -> r.S.job = id) rs).S.outcome

let test_pool_crash_contained () =
  let pool = C.pool ~workers:2 ~max_retries:1 ~backoff_s:0.01 () in
  let rs =
    S.run ~pool
      ~worker:(fun id x -> if id = 3 then failwith "boom" else x * 10)
      (jobs_of 6)
  in
  Helpers.check_true "all jobs reported" (List.length rs = 6);
  List.iter
    (fun (r : int S.job_result) ->
      if r.S.job = 3 then begin
        (match r.S.outcome with
        | Error (S.Crashed { reason }) ->
            Helpers.check_true "uncaught exit code"
              (reason = "exit " ^ string_of_int S.exit_uncaught)
        | _ -> Alcotest.fail "job 3 should crash");
        Helpers.check_true "crash retried before giving up" (r.S.retries = 1);
        Helpers.check_true "maps to worker-crashed"
          (match r.S.outcome with
          | Error f -> S.failure_reason f = V.Worker_crashed
          | Ok _ -> false)
      end
      else Helpers.check_true "healthy job survives" (r.S.outcome = Ok (r.S.job * 10)))
    rs

let test_pool_hard_exit_contained () =
  let rs =
    S.run ~pool:(C.pool ~workers:2 ~max_retries:0 ())
      ~worker:(fun id x -> if id = 1 then exit 5 else x)
      (jobs_of 4)
  in
  Helpers.check_true "exit confined"
    (outcome_of rs 1 = Error (S.Crashed { reason = "exit 5" }));
  List.iter
    (fun id -> Helpers.check_true "others fine" (outcome_of rs id = Ok id))
    [ 0; 2; 3 ]

let test_pool_deadline_kill () =
  let pool =
    C.pool ~workers:2 ~hard_deadline_s:0.15 ~grace_s:0.3 ~max_retries:1 ()
  in
  let rs =
    S.run ~pool
      ~worker:(fun id x ->
        if id = 2 then Unix.sleepf 30.0;
        x)
      (jobs_of 5)
  in
  (match outcome_of rs 2 with
  | Error (S.Killed { signal }) ->
      Helpers.check_true "died from the SIGTERM" (signal = Sys.sigterm);
      Helpers.check_true "maps to worker-killed"
        (S.failure_reason (S.Killed { signal }) = V.Worker_killed)
  | _ -> Alcotest.fail "stalled job should be killed");
  Helpers.check_true "deadline kills are not retried"
    ((List.find (fun (r : int S.job_result) -> r.S.job = 2) rs).S.retries = 0);
  List.iter
    (fun id -> Helpers.check_true "others fine" (outcome_of rs id = Ok id))
    [ 0; 1; 3; 4 ]

let test_pool_sigkill_escalation () =
  (* A worker that ignores SIGTERM must be brought down by the SIGKILL
     escalation after the grace period. *)
  let pool = C.pool ~workers:1 ~hard_deadline_s:0.1 ~grace_s:0.15 () in
  let rs =
    S.run ~pool
      ~worker:(fun id x ->
        if id = 0 then begin
          Sys.set_signal Sys.sigterm Sys.Signal_ignore;
          Unix.sleepf 30.0
        end;
        x)
      (jobs_of 2)
  in
  (match outcome_of rs 0 with
  | Error (S.Killed { signal }) ->
      Helpers.check_true "escalated to SIGKILL" (signal = Sys.sigkill)
  | _ -> Alcotest.fail "SIGTERM-immune worker should be SIGKILLed");
  Helpers.check_true "next job runs on a fresh worker" (outcome_of rs 1 = Ok 1)

let test_pool_oom_guard () =
  let pool = C.pool ~workers:1 ~mem_limit_mb:16 ~max_retries:0 () in
  let rs =
    S.run ~pool
      ~worker:(fun id x ->
        if id = 0 then begin
          (* allocate ~64 MB of live arrays, forcing major collections so
             the in-worker guard (the setrlimit stand-in) trips *)
          let acc = ref [] in
          for i = 1 to 1024 do
            acc := Array.make (1 lsl 13) (float_of_int i) :: !acc;
            if i mod 64 = 0 then Gc.major ()
          done;
          ignore (List.length !acc)
        end;
        x)
      (jobs_of 3)
  in
  Helpers.check_true "oom confined"
    (outcome_of rs 0 = Error (S.Crashed { reason = "oom" }));
  List.iter
    (fun id -> Helpers.check_true "others fine" (outcome_of rs id = Ok id))
    [ 1; 2 ]

let test_pool_transient_crash_retried () =
  (* First attempt crashes, the retry (fresh worker) succeeds: the marker
     file is the cross-process "already failed once" bit. *)
  with_tmp "transient" @@ fun marker ->
  let pool = C.pool ~workers:1 ~max_retries:2 ~backoff_s:0.01 () in
  let rs =
    S.run ~pool
      ~worker:(fun id x ->
        if id = 1 && not (Sys.file_exists marker) then begin
          let oc = open_out marker in
          close_out oc;
          exit 9
        end;
        x * 7)
      (jobs_of 3)
  in
  let r1 = List.find (fun (r : int S.job_result) -> r.S.job = 1) rs in
  Helpers.check_true "rescued on retry" (r1.S.outcome = Ok 7);
  Helpers.check_true "one retry recorded" (r1.S.retries = 1)

(* ---------------- journaled batch: SIGKILL mid-run + resume ----------- *)

(* The acceptance scenario: a journaled batch run is SIGKILLed mid-flight
   (supervisor and all); the resumed run must certify exactly the jobs
   missing from the journal, converging to the same complete journal an
   uninterrupted run produces. The batch here is a toy worker so the test
   stays hermetic; the wiring (pool + on_result + journal) is exactly what
   bin/certify batch uses. *)
let run_journaled_batch path ids =
  let j = J.resume path in
  let todo = List.filter (fun id -> not (J.journaled j id)) ids in
  let rs =
    S.run
      ~pool:(C.pool ~workers:2 ())
      ~on_result:(fun (r : unit S.job_result) ->
        let verdict, detail =
          match r.S.outcome with
          | Ok () -> (V.Certified, "")
          | Error f -> (V.Unknown (S.failure_reason f), S.failure_detail f)
        in
        J.append j
          {
            J.job = r.S.job;
            verdict;
            rung = "toy";
            attempts = 1;
            retries = r.S.retries;
            wall_s = r.S.wall_s;
            detail;
          })
      ~worker:(fun _ () -> Unix.sleepf 0.12)
      (List.map (fun id -> (id, ())) todo)
  in
  List.length rs

let test_pool_sigkill_resume () =
  with_tmp "resume" @@ fun path ->
  let ids = List.init 6 Fun.id in
  (match Unix.fork () with
  | 0 ->
      (* the doomed batch: will be SIGKILLed mid-run *)
      ignore (run_journaled_batch path ids);
      exit 0
  | pid ->
      Unix.sleepf 0.3;
      Unix.kill pid Sys.sigkill;
      ignore (Unix.waitpid [] pid));
  let done_before = List.length (J.load path) in
  Helpers.check_true
    (Printf.sprintf "killed mid-run (%d/6 journaled)" done_before)
    (done_before < 6);
  let recertified = run_journaled_batch path ids in
  Helpers.check_true "resume certifies exactly the missing jobs"
    (recertified = 6 - done_before);
  let final = J.load path in
  Helpers.check_true "complete journal" (List.length final = 6);
  Helpers.check_true "every job exactly once, all certified"
    (List.sort compare (List.map (fun e -> e.J.job) final) = ids
    && List.for_all (fun e -> e.J.verdict = V.Certified) final);
  (* resuming a complete journal is a no-op *)
  Helpers.check_true "nothing left to do" (run_journaled_batch path ids = 0)

let () =
  Alcotest.run "supervisor"
    [
      ( "verdict",
        [ Alcotest.test_case "string round-trip" `Quick test_verdict_round_trip ] );
      ( "journal",
        [
          Alcotest.test_case "json round-trip" `Quick test_journal_json_round_trip;
          Alcotest.test_case "append/reload" `Quick test_journal_append_reload;
        ] );
      ( "pool",
        [
          Alcotest.test_case "basic" `Quick test_pool_basic;
          Alcotest.test_case "parallel speedup" `Quick test_pool_parallel_speedup;
          Alcotest.test_case "duplicate ids" `Quick test_pool_rejects_duplicates;
        ] );
      ( "containment",
        [
          Alcotest.test_case "crash contained" `Quick test_pool_crash_contained;
          Alcotest.test_case "hard exit contained" `Quick test_pool_hard_exit_contained;
          Alcotest.test_case "deadline kill" `Quick test_pool_deadline_kill;
          Alcotest.test_case "sigkill escalation" `Quick test_pool_sigkill_escalation;
          Alcotest.test_case "oom guard" `Quick test_pool_oom_guard;
          Alcotest.test_case "transient retry" `Quick test_pool_transient_crash_retried;
        ] );
      ( "resume",
        [ Alcotest.test_case "sigkill mid-run" `Quick test_pool_sigkill_resume ] );
    ]
