(* End-to-end zonotope propagation through full Transformer programs:
   soundness on sampled inputs, precision vs IBP, certification sanity and
   radius-search behaviour. *)

open Tensor
module Z = Deept.Zonotope
module Lp = Deept.Lp
module C = Deept.Certify

let cfg = Deept.Config.default
let cfg_precise = Deept.Config.precise

let check_program_sound ?(samples = 60) ~name cfg p region =
  let rng = Rng.create 97 in
  let out = Deept.Propagate.run cfg p region in
  Helpers.check_propagation_sound ~samples ~name rng region out (Nn.Forward.run p)

let test_sound_fast () =
  List.iter
    (fun (p_norm, name) ->
      let program = Helpers.tiny_program ~layers:2 21 in
      let rng = Rng.create 5 in
      let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
      let region = Deept.Region.lp_ball ~p:p_norm x ~word:1 ~radius:0.05 in
      check_program_sound ~name cfg program region)
    [ (Lp.L1, "fast l1"); (Lp.L2, "fast l2"); (Lp.Linf, "fast linf") ]

let test_sound_precise () =
  let program = Helpers.tiny_program ~layers:1 22 in
  let rng = Rng.create 6 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:0 ~radius:0.05 in
  check_program_sound ~name:"precise" cfg_precise program region

let test_sound_with_reduction () =
  let program = Helpers.tiny_program ~layers:3 23 in
  let rng = Rng.create 7 in
  let x = Mat.random_gaussian rng 4 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:2 ~radius:0.05 in
  check_program_sound ~name:"heavy reduction"
    { cfg with Deept.Config.reduction_k = 8 }
    program region

let test_sound_divide_std () =
  let program = Helpers.tiny_program ~layers:1 ~divide_std:true 24 in
  let rng = Rng.create 8 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.02 in
  check_program_sound ~name:"divide_std" cfg program region

let test_sound_no_refinement () =
  let program = Helpers.tiny_program ~layers:1 25 in
  let rng = Rng.create 9 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L1 x ~word:1 ~radius:0.05 in
  check_program_sound ~name:"no refinement"
    { cfg with Deept.Config.refine_softmax_sum = false }
    program region

let test_sound_direct_softmax () =
  let program = Helpers.tiny_program ~layers:1 26 in
  let rng = Rng.create 10 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:0.03 in
  check_program_sound ~name:"direct softmax"
    { cfg with Deept.Config.softmax = Deept.Config.Direct }
    program region

let test_sound_synonym_box () =
  let program = Helpers.tiny_program ~layers:2 27 in
  let rng = Rng.create 11 in
  let d = Ir.out_dim program 0 in
  let x = Mat.random_gaussian rng 4 d 0.7 in
  let alts pos =
    List.init 2 (fun _ ->
        Array.init d (fun j -> Mat.get x pos j +. Rng.uniform rng (-0.1) 0.1))
  in
  let region = Deept.Region.synonym_box x [ (0, alts 0); (2, alts 2) ] in
  check_program_sound ~name:"synonym box" cfg program region

(* Zonotope output is tighter than IBP on the same region. *)
let test_tighter_than_ibp () =
  let program = Helpers.tiny_program ~layers:1 28 in
  let rng = Rng.create 12 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let radius = 0.01 in
  let zregion = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius in
  let zout = Z.bounds (Deept.Propagate.run cfg program zregion) in
  let ilo = Mat.copy x and ihi = Mat.copy x in
  let d = Mat.cols x in
  for j = 0 to d - 1 do
    Mat.set ilo 1 j (Mat.get x 1 j -. radius);
    Mat.set ihi 1 j (Mat.get x 1 j +. radius)
  done;
  let iout = Interval.Ibp.run program (Interval.Imat.make ilo ihi) in
  let zw = Mat.sum (Mat.sub zout.Interval.Imat.hi zout.Interval.Imat.lo) in
  let iw = Mat.sum (Mat.sub iout.Interval.Imat.hi iout.Interval.Imat.lo) in
  Helpers.check_true
    (Printf.sprintf "zonotope width %.4g <= ibp width %.4g" zw iw)
    (zw <= iw +. 1e-9)

(* Certification behaviour. *)
let test_certify_zero_radius () =
  let program = Helpers.tiny_program ~layers:1 29 in
  let rng = Rng.create 13 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:0 ~radius:0.0 in
  Helpers.check_true "certifies prediction at radius 0"
    (C.certify cfg program region ~true_class:pred);
  Helpers.check_true "refutes the wrong class"
    (not (C.certify cfg program region ~true_class:(1 - pred)))

let test_certified_radius_positive () =
  let program = Helpers.tiny_program ~layers:1 30 in
  let rng = Rng.create 14 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let r =
    C.certified_radius cfg program ~p:Lp.L2 x ~word:1 ~true_class:pred ~iters:8 ()
  in
  Helpers.check_true (Printf.sprintf "radius %.4g > 0" r) (r > 0.0);
  (* The certified region at that radius indeed certifies. *)
  Helpers.check_true "radius certifies"
    (C.certify cfg program (Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:r)
       ~true_class:pred)

let test_radius_ordering_l1_l2_linf () =
  (* For the same network/input, certified radii must satisfy
     r(l1) >= r(l2) >= r(linf), because the balls are nested the other way. *)
  let program = Helpers.tiny_program ~layers:1 31 in
  let rng = Rng.create 15 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let radius p =
    C.certified_radius cfg program ~p x ~word:1 ~true_class:pred ~iters:10 ()
  in
  let r1 = radius Lp.L1 and r2 = radius Lp.L2 and ri = radius Lp.Linf in
  Helpers.check_true
    (Printf.sprintf "r1 %.4g >= r2 %.4g >= rinf %.4g" r1 r2 ri)
    (r1 >= r2 -. 1e-9 && r2 >= ri -. 1e-9)

let test_max_radius_bracketing () =
  (* max_radius on a crisp threshold predicate converges to it. *)
  let threshold = 0.37 in
  let r = C.max_radius ~iters:20 (fun x -> x <= threshold) in
  Helpers.check_float ~tol:1e-3 "binary search converges" threshold r

let test_enumeration_agrees () =
  let program = Helpers.tiny_program ~layers:1 33 in
  let rng = Rng.create 16 in
  let d = Ir.out_dim program 0 in
  let x = Mat.random_gaussian rng 3 d 0.7 in
  let pred = Nn.Forward.predict program x in
  let alts pos =
    List.init 2 (fun _ ->
        Array.init d (fun j -> Mat.get x pos j +. Rng.uniform rng (-0.01) 0.01))
  in
  let subs = [ (0, alts 0); (1, alts 1); (2, alts 2) ] in
  Helpers.check_true "combination count" (C.count_combinations subs = 27);
  let ok, checked = C.enumerate_synonyms program x subs ~true_class:pred in
  Helpers.check_true "enumeration covers all combos" (checked = 27);
  (* Certification implies enumeration success (soundness direction). *)
  if C.certify_synonyms cfg program x subs ~true_class:pred then
    Helpers.check_true "certified => enumeration clean" ok

let test_combined_variant_runs () =
  let program = Helpers.tiny_program ~layers:2 34 in
  let rng = Rng.create 18 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:0.02 in
  check_program_sound ~name:"combined" Deept.Config.combined program region

(* Vision-mode program (patch linear + positional) propagates soundly. *)
let test_vision_mode_sound () =
  let rng = Rng.create 41 in
  let cfg_m =
    { Nn.Model.default_config with vocab_size = 1; max_len = 4; d_model = 8;
      d_hidden = 8; heads = 2; layers = 1; patch_dim = Some 6 }
  in
  let m = Nn.Model.create rng cfg_m in
  let program = Nn.Model.to_ir m in
  let x = Mat.random_gaussian rng 4 6 0.5 in
  let region = Deept.Region.lp_ball_all ~p:Lp.L2 x ~radius:0.05 in
  check_program_sound ~name:"vision" cfg program region

(* Reduction trades precision for memory: output widths with an
   aggressive budget are never smaller than with no reduction. *)
let test_reduction_only_loosens () =
  let program = Helpers.tiny_program ~layers:2 35 in
  let rng = Rng.create 19 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.02 in
  let widths k =
    let out =
      Deept.Propagate.run { cfg with Deept.Config.reduction_k = k } program region
    in
    let b = Z.bounds out in
    Mat.sum (Mat.sub b.Interval.Imat.hi b.Interval.Imat.lo)
  in
  let exact = widths 0 and reduced = widths 4 in
  Helpers.check_true
    (Printf.sprintf "reduced %.4g >= exact %.4g" reduced exact)
    (reduced >= exact -. 1e-9)

(* The margin at radius 0 equals the concrete logit difference. *)
let test_zero_radius_margin_exact () =
  let program = Helpers.tiny_program ~layers:2 36 in
  let rng = Rng.create 20 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let logits = Nn.Forward.logits program x in
  let pred = Vecops.argmax logits in
  let m =
    C.certify_margin cfg program
      (Deept.Region.lp_ball ~p:Lp.L2 x ~word:0 ~radius:0.0)
      ~true_class:pred
  in
  Helpers.check_float ~tol:1e-9 "margin = logit gap"
    (logits.(pred) -. logits.(1 - pred))
    m

(* --- intra-op deadline preemption (regression) ------------------------ *)

(* Budget checkpoints in Propagate fire only between ops, so before the
   intra-op poll was added a single large dot product could overrun the
   deadline unboundedly. The dot transformer now polls
   Zonotope.check_deadline in its outer row loop: an expired deadline must
   abort inside the op with the typed timeout, not run to completion. *)
let test_dot_preempted_mid_op () =
  let rng = Rng.create 55 in
  let mk () = Helpers.random_zonotope ~vrows:4 ~vcols:5 ~ep:3 ~ee:4 rng in
  let a = mk () in
  let b = Helpers.random_zonotope ~vrows:5 ~vcols:3 ~ep:3 ~ee:4 rng in
  (* sanity: with no deadline armed the very same op completes *)
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 4);
  ignore (Deept.Dot.matmul_zz ctx a b);
  let expired ctx = Z.set_deadline ctx (Some (Unix.gettimeofday () -. 1.0)) in
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 4);
  expired ctx;
  Alcotest.check_raises "matmul preempted mid-op"
    (Deept.Verdict.Abort Deept.Verdict.Timeout) (fun () ->
      ignore (Deept.Dot.matmul_zz ctx a b));
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 4);
  expired ctx;
  Alcotest.check_raises "elementwise mul preempted mid-op"
    (Deept.Verdict.Abort Deept.Verdict.Timeout) (fun () ->
      ignore (Deept.Dot.mul_zz ctx (mk ()) (mk ())))

(* End-to-end: an already-expired budget surfaces as the typed timeout
   verdict the moment the first dot product starts, via the same poll. *)
let test_deadline_mid_op_typed_verdict () =
  let program = Helpers.tiny_program ~layers:1 56 in
  let rng = Rng.create 57 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.01 in
  let cfg = Deept.Config.with_budget ~deadline:0.0 Deept.Config.fast in
  Helpers.check_true "expired deadline -> Unknown Timeout"
    (C.certify_v cfg program region ~true_class:pred
    = Deept.Verdict.Unknown Deept.Verdict.Timeout)

let () =
  Alcotest.run "propagate"
    [
      ( "soundness",
        [
          Alcotest.test_case "fast all norms" `Slow test_sound_fast;
          Alcotest.test_case "precise" `Slow test_sound_precise;
          Alcotest.test_case "heavy reduction" `Slow test_sound_with_reduction;
          Alcotest.test_case "divide std" `Slow test_sound_divide_std;
          Alcotest.test_case "no refinement" `Quick test_sound_no_refinement;
          Alcotest.test_case "direct softmax" `Quick test_sound_direct_softmax;
          Alcotest.test_case "synonym box" `Quick test_sound_synonym_box;
          Alcotest.test_case "combined variant" `Quick test_combined_variant_runs;
          Alcotest.test_case "vision mode" `Quick test_vision_mode_sound;
        ] );
      ( "precision",
        [ Alcotest.test_case "tighter than ibp" `Quick test_tighter_than_ibp ] );
      ( "properties",
        [
          Alcotest.test_case "reduction only loosens" `Quick test_reduction_only_loosens;
          Alcotest.test_case "zero-radius margin exact" `Quick
            test_zero_radius_margin_exact;
        ] );
      ( "certification",
        [
          Alcotest.test_case "zero radius" `Quick test_certify_zero_radius;
          Alcotest.test_case "positive radius" `Quick test_certified_radius_positive;
          Alcotest.test_case "norm ordering" `Slow test_radius_ordering_l1_l2_linf;
          Alcotest.test_case "binary search" `Quick test_max_radius_bracketing;
          Alcotest.test_case "enumeration agrees" `Quick test_enumeration_agrees;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "dot preempted mid-op" `Quick
            test_dot_preempted_mid_op;
          Alcotest.test_case "typed mid-op timeout" `Quick
            test_deadline_mid_op_typed_verdict;
        ] );
    ]
