(* The injectable syscall shim: plan grammar round-trips, the
   disabled-shim fast path, deterministic injection of short writes,
   EINTR storms and errnos, op/site filtering, the enumeration
   recorder, and — in forked children — Torn/Crash actually killing
   the process with exactly the promised bytes on disk. *)

module S = Deept.Sysio

let check_true = Helpers.check_true

let tmp_path =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "deept-sysio-test-%d-%d-%s" (Unix.getpid ()) !n name)

let with_file name f =
  let path = tmp_path name in
  Fun.protect
    ~finally:(fun () ->
      S.disarm ();
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let with_wr path f =
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600 in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () -> f fd)

(* ---------------- plan grammar ---------------- *)

let test_plan_round_trip () =
  List.iter
    (fun p ->
      let s = S.plan_to_string p in
      match S.plan_of_string s with
      | Ok p' -> check_true ("round-trip " ^ s) (p = p')
      | Error e -> Alcotest.failf "plan_of_string %s: %s" s e)
    [
      S.plan ~nth:0 S.Crash;
      S.plan ~nth:12 (S.Torn 9);
      S.plan ~nth:3 ~site:"journal.append" (S.Torn 0);
      S.plan ~nth:0 ~op:S.Write ~persist:true (S.Short 7);
      S.plan ~nth:5 ~site:"intake" (S.Err Unix.ENOSPC);
      S.plan ~nth:2 ~op:S.Send (S.Err Unix.ECONNRESET);
      S.plan ~nth:1 (S.Eintr 5);
      S.plan ~nth:4 ~op:S.Fsync ~site:"journal" (S.Err Unix.EIO);
    ]

let test_plan_rejects () =
  List.iter
    (fun s ->
      match S.plan_of_string s with
      | Ok _ -> Alcotest.failf "accepted malformed plan %S" s
      | Error e -> check_true (s ^ " rejection explains") (String.length e > 0))
    [
      ""; "crash"; "@3"; "crash@"; "crash@-1"; "crash@x"; "torn@3";
      "torn:-1@3"; "short:0@1"; "eintr:0@1"; "ebogus@2"; "crash@2:persist";
      "torn:4@2:persist"; "eintr:3@0:persist"; "crash@1:op=bogus";
      "crash@1:flavor=x"; "short:2@1:op="; "enospc@1:site=";
    ];
  List.iter
    (fun f ->
      check_true "constructor rejects invalid plan"
        (match f () with
        | (_ : S.plan) -> false
        | exception Invalid_argument _ -> true))
    [
      (fun () -> S.plan ~nth:(-1) S.Crash);
      (fun () -> S.plan ~nth:0 (S.Short 0));
      (fun () -> S.plan ~nth:0 (S.Eintr 0));
      (fun () -> S.plan ~nth:0 (S.Torn (-1)));
      (fun () -> S.plan ~nth:0 ~persist:true S.Crash);
      (fun () -> S.plan ~nth:0 ~persist:true (S.Eintr 2));
    ]

(* ---------------- disabled shim ---------------- *)

let test_off_is_direct () =
  with_file "off" @@ fun path ->
  S.disarm ();
  check_true "not armed" (not (S.armed ()));
  with_wr path (fun fd ->
      S.write_string ~site:"t.off" fd "hello";
      S.fsync ~site:"t.off" fd);
  check_true "bytes written" (read_file path = "hello");
  check_true "nothing counted when off" (S.ops () = 0)

(* ---------------- injection below the retry loops ---------------- *)

let test_short_persist_completes () =
  with_file "short" @@ fun path ->
  S.arm (S.plan ~nth:0 ~op:S.Write ~persist:true (S.Short 3));
  with_wr path (fun fd ->
      S.write_string ~site:"t.short" fd "abcdefghij");
  S.disarm ();
  check_true "write_all loops short writes to completion"
    (read_file path = "abcdefghij")

let test_eintr_storm_completes () =
  with_file "eintr" @@ fun path ->
  S.arm (S.plan ~nth:0 (S.Eintr 5));
  with_wr path (fun fd ->
      S.write_string ~site:"t.eintr" fd "payload";
      S.fsync ~site:"t.eintr" fd);
  S.disarm ();
  check_true "EINTR storm restarted below the caller"
    (read_file path = "payload")

let test_err_raises_then_recovers () =
  with_file "enospc" @@ fun path ->
  S.arm (S.plan ~nth:1 ~op:S.Write (S.Err Unix.ENOSPC));
  with_wr path (fun fd ->
      S.write_string ~site:"t.err" fd "one.";
      check_true "second write hits injected ENOSPC"
        (match S.write_string ~site:"t.err" fd "two." with
        | () -> false
        | exception Unix.Unix_error (Unix.ENOSPC, _, "t.err") -> true
        | exception _ -> false);
      (* one-shot plan: the fault does not repeat after firing *)
      S.write_string ~site:"t.err" fd "three.");
  S.disarm ();
  check_true "writes around the fault landed"
    (read_file path = "one.three.")

let test_site_and_op_filters () =
  with_file "filter" @@ fun path ->
  (* the fault counts only ops whose site matches; others pass through *)
  S.arm (S.plan ~nth:0 ~site:"journal" (S.Err Unix.EIO));
  with_wr path (fun fd ->
      S.write_string ~site:"intake.append" fd "a";
      check_true "matching site faults"
        (match S.write_string ~site:"journal.append" fd "b" with
        | () -> false
        | exception Unix.Unix_error (Unix.EIO, _, _) -> true));
  (* op filter: a Send-class fault never touches file writes *)
  S.arm (S.plan ~nth:0 ~op:S.Send ~persist:true (S.Err Unix.EPIPE));
  with_wr path (fun fd -> S.write_string ~site:"journal.append" fd "c");
  S.disarm ();
  check_true "op filter let the file write through" (read_file path = "c")

(* ---------------- recorder ---------------- *)

let test_recorder_events () =
  with_file "record" @@ fun path ->
  let evs = ref [] in
  S.record (fun e -> evs := e :: !evs);
  with_wr path (fun fd ->
      S.write_string ~site:"t.rec.w" fd "12345";
      S.fsync ~site:"t.rec.f" fd;
      S.send_string ~site:"t.rec.s" fd "678");
  let evs = List.rev !evs in
  S.disarm ();
  check_true "three events" (List.length evs = 3);
  check_true "indices are dense"
    (List.mapi (fun i _ -> i) evs = List.map (fun e -> e.S.index) evs);
  (match evs with
  | [ w; f; s ] ->
      check_true "write event" (w.S.eop = S.Write && w.S.esite = "t.rec.w" && w.S.len = 5);
      check_true "fsync event" (f.S.eop = S.Fsync && f.S.esite = "t.rec.f" && f.S.len = 0);
      check_true "send event" (s.S.eop = S.Send && s.S.esite = "t.rec.s" && s.S.len = 3)
  | _ -> Alcotest.fail "event shape");
  check_true "ops() counted them" (S.ops () = 0) (* disarm cleared it *)

(* ---------------- death actions, observed from a parent ----------- *)

(* run [f] in a forked child; return (status, file contents) *)
let in_child path f =
  match Unix.fork () with
  | 0 ->
      (try f (); exit 0 with _ -> exit 1)
  | pid ->
      let _, st = Unix.waitpid [] pid in
      S.disarm ();
      (st, if Sys.file_exists path then read_file path else "")

let test_torn_write_kills_with_prefix () =
  with_file "torn" @@ fun path ->
  let st, got =
    in_child path (fun () ->
        S.arm (S.plan ~nth:1 ~op:S.Write (S.Torn 4));
        with_wr path (fun fd ->
            S.write_string ~site:"t.torn" fd "intact\n";
            S.write_string ~site:"t.torn" fd "never-lands\n";
            (* unreachable: the torn write SIGKILLs the process *)
            S.write_string ~site:"t.torn" fd "after\n"))
  in
  check_true "child died by SIGKILL"
    (match st with Unix.WSIGNALED s -> s = Sys.sigkill | _ -> false);
  check_true "exactly the torn prefix persisted" (got = "intact\nneve")

let test_crash_kills_before_op () =
  with_file "crash" @@ fun path ->
  let st, got =
    in_child path (fun () ->
        S.arm (S.plan ~nth:0 ~op:S.Fsync S.Crash);
        with_wr path (fun fd ->
            S.write_string ~site:"t.crash" fd "written\n";
            S.fsync ~site:"t.crash" fd))
  in
  check_true "child died by SIGKILL"
    (match st with Unix.WSIGNALED s -> s = Sys.sigkill | _ -> false);
  (* the write preceding the crashed fsync is in the page cache, which
     a SIGKILL does not empty — the bytes survive *)
  check_true "pre-crash write survived (page cache)" (got = "written\n")

(* ---------------- through a real durability client ---------------- *)

let test_journal_survives_injected_fault () =
  let path = tmp_path "journal" in
  Fun.protect
    ~finally:(fun () ->
      S.disarm ();
      List.iter
        (fun e -> try Sys.remove (path ^ e) with Sys_error _ -> ())
        [ ""; ".tmp" ])
  @@ fun () ->
  let module J = Deept.Journal in
  let entry i =
    {
      J.job = i;
      verdict = Deept.Verdict.Certified;
      rung = "fast";
      attempts = 1;
      retries = 0;
      wall_s = 0.01;
      detail = "";
    }
  in
  let j = J.create path in
  J.append j (entry 1);
  S.arm (S.plan ~nth:0 ~site:"journal.append" (S.Err Unix.ENOSPC));
  check_true "journal append surfaces injected ENOSPC"
    (match J.append j (entry 2) with
    | () -> false
    | exception Unix.Unix_error (Unix.ENOSPC, _, _) -> true);
  S.disarm ();
  J.append j (entry 3);
  let jobs = List.map (fun e -> e.J.job) (J.load path) in
  check_true "entries around the fault are intact and in order"
    (jobs = [ 1; 3 ] || jobs = [ 1; 2; 3 ])

let () =
  Alcotest.run "sysio"
    [
      ( "plan",
        [
          Alcotest.test_case "round-trip" `Quick test_plan_round_trip;
          Alcotest.test_case "rejects malformed" `Quick test_plan_rejects;
        ] );
      ( "shim",
        [
          Alcotest.test_case "off is direct" `Quick test_off_is_direct;
          Alcotest.test_case "short+persist completes" `Quick
            test_short_persist_completes;
          Alcotest.test_case "eintr storm completes" `Quick
            test_eintr_storm_completes;
          Alcotest.test_case "err raises then recovers" `Quick
            test_err_raises_then_recovers;
          Alcotest.test_case "site and op filters" `Quick
            test_site_and_op_filters;
          Alcotest.test_case "recorder events" `Quick test_recorder_events;
        ] );
      ( "death",
        [
          Alcotest.test_case "torn write" `Quick test_torn_write_kills_with_prefix;
          Alcotest.test_case "crash before op" `Quick test_crash_kills_before_op;
        ] );
      ( "clients",
        [
          Alcotest.test_case "journal fault injection" `Quick
            test_journal_survives_injected_fault;
        ] );
    ]
