(* The shared interpreter loop (Interp) across its four domains:
   cross-engine soundness sandwich (concrete ⊆ zonotope ⊆ interval),
   bit-exactness pins against pre-refactor baselines on a zoo model,
   typed budget aborts for the interval and linear-relaxation engines,
   the ladder's interval rung running through the shared loop, prefix
   sharing, NaN/Inf weight rejection at load, and the trace/profile
   stream. *)

open Tensor
module Lp = Deept.Lp
module Zonotope = Deept.Zonotope

let check_bits msg (a : float array) (b : float array) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: length %d <> %d" msg (Array.length a) (Array.length b);
  Array.iteri
    (fun i ai ->
      if Int64.bits_of_float ai <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: index %d: %h <> %h" msg i ai b.(i))
    a

let check_zonotope_bits msg (za : Zonotope.t) (zb : Zonotope.t) =
  check_bits (msg ^ " center") za.Zonotope.center.Mat.data zb.Zonotope.center.Mat.data;
  check_bits (msg ^ " phi") za.Zonotope.phi.Mat.data zb.Zonotope.phi.Mat.data;
  check_bits (msg ^ " eps") za.Zonotope.eps.Mat.data zb.Zonotope.eps.Mat.data

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

(* --- soundness sandwich ---------------------------------------------- *)

(* concrete ⊆ zonotope ⊆ interval, under --domains 1 and 4 (which must
   themselves be bit-identical: sharding is an implementation detail). *)
let test_soundness_sandwich () =
  List.iter
    (fun (seed, layers, pn) ->
      let p = Helpers.tiny_program ~layers seed in
      let rng = Rng.create (seed + 1) in
      let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
      let region = Deept.Region.lp_ball ~p:pn x ~word:1 ~radius:0.04 in
      let z1 = Deept.Propagate.run (Deept.Config.with_domains 1 Deept.Config.fast) p region in
      let z4 = Deept.Propagate.run (Deept.Config.with_domains 4 Deept.Config.fast) p region in
      check_zonotope_bits (Printf.sprintf "seed %d domains 1 = 4" seed) z1 z4;
      let zb = Zonotope.bounds z1 in
      let ib = Interval.Ibp.run p (Zonotope.bounds region) in
      let nv = Zonotope.num_vars z1 in
      for v = 0 to nv - 1 do
        let zlo = zb.Interval.Imat.lo.Mat.data.(v)
        and zhi = zb.Interval.Imat.hi.Mat.data.(v) in
        let ilo = ib.Interval.Imat.lo.Mat.data.(v)
        and ihi = ib.Interval.Imat.hi.Mat.data.(v) in
        if zlo < ilo -. 1e-9 || zhi > ihi +. 1e-9 then
          Alcotest.failf
            "seed %d var %d: zonotope [%.9g, %.9g] outside interval [%.9g, %.9g]"
            seed v zlo zhi ilo ihi
      done;
      for s = 1 to 40 do
        let y = Nn.Forward.run p (Zonotope.sample rng region) in
        for v = 0 to nv - 1 do
          let lo = zb.Interval.Imat.lo.Mat.data.(v)
          and hi = zb.Interval.Imat.hi.Mat.data.(v) in
          if y.Mat.data.(v) < lo -. 1e-6 || y.Mat.data.(v) > hi +. 1e-6 then
            Alcotest.failf "seed %d sample %d var %d: %.9g outside [%.9g, %.9g]"
              seed s v y.Mat.data.(v) lo hi
        done
      done)
    [ (61, 1, Lp.L2); (62, 2, Lp.Linf); (63, 1, Lp.L1) ]

(* --- bit-exactness pins ---------------------------------------------- *)

(* Pre-refactor certified radii and ladder outcomes on the committed
   small_3 zoo model (captured from the seed commit's CLI). Exact dyadic
   rationals from the binary search — compared with tolerance 0. *)
let test_pinned_small3 () =
  if not (Sys.file_exists "../data/small_3.model") then ()
  else begin
    Zoo.data_dir := "../data";
    let entry = Zoo.entry "small_3" in
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "small_3" in
    let c = Zoo.corpus_of entry.Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let input i =
      let toks, label = List.nth c.Text.Corpus.test i in
      (Nn.Model.embed_tokens model toks, label)
    in
    let radius_deept cfg i pn =
      let x, label = input i in
      Deept.Certify.certified_radius cfg program ~p:pn x ~word:1
        ~true_class:label ()
    in
    Helpers.check_float ~tol:0.0 "deept-fast idx0 l2" 0.181640625
      (radius_deept Deept.Config.fast 0 Lp.L2);
    Helpers.check_float ~tol:0.0 "deept-precise idx0 l2" 0.17578125
      (radius_deept Deept.Config.precise 0 Lp.L2);
    Helpers.check_float ~tol:0.0 "deept-fast idx1 linf" 0.044921875
      (radius_deept Deept.Config.fast 1 Lp.Linf);
    let radius_crown v =
      let x, label = input 0 in
      Linrelax.Verify.certified_radius ~verifier:v program ~p:Lp.L2 x ~word:1
        ~true_class:label ()
    in
    Helpers.check_float ~tol:0.0 "crown-baf idx0 l2" 0.1630859375
      (radius_crown Linrelax.Verify.Baf);
    Helpers.check_float ~tol:0.0 "crown-backward idx0 l2" 0.203125
      (radius_crown Linrelax.Verify.Backward);
    let x0, label0 = input 0 in
    let o =
      Deept.Engine.certify Deept.Config.fast program
        (Deept.Region.lp_ball ~p:Lp.L2 x0 ~word:1 ~radius:0.05)
        ~true_class:label0
    in
    Helpers.check_true "idx0 certified"
      (Deept.Verdict.equal o.Deept.Engine.verdict Deept.Verdict.Certified);
    Alcotest.(check string) "idx0 rung" "fast" o.Deept.Engine.rung_name;
    let x1, label1 = input 1 in
    let o =
      Deept.Engine.certify Deept.Config.fast program
        (Deept.Region.lp_ball ~p:Lp.Linf x1 ~word:1 ~radius:0.05)
        ~true_class:label1
    in
    Helpers.check_true "idx1 imprecise"
      (Deept.Verdict.equal o.Deept.Engine.verdict
         (Deept.Verdict.Unknown Deept.Verdict.Imprecise));
    Alcotest.(check string) "idx1 rung" "fast" o.Deept.Engine.rung_name
  end

(* --- typed aborts: interval ------------------------------------------ *)

let interval_checks ?deadline ?max_size () =
  {
    Interp.no_checks with
    Interp.deadline;
    max_size;
    abort = Deept.Propagate.abort_of;
  }

let test_interval_deadline_abort () =
  let p = Helpers.tiny_program ~layers:1 64 in
  let rng = Rng.create 65 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let im = Interval.Imat.of_ball_linf x 0.01 in
  let checks = interval_checks ~deadline:(Unix.gettimeofday () -. 1.0) () in
  match Interval.Ibp.run ~checks p im with
  | _ -> Alcotest.fail "expected Verdict.Abort Timeout"
  | exception Deept.Verdict.Abort Deept.Verdict.Timeout -> ()

let test_interval_budget_abort () =
  let p = Helpers.tiny_program ~layers:1 64 in
  let rng = Rng.create 65 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let im = Interval.Imat.of_ball_linf x 0.01 in
  let checks = interval_checks ~max_size:0 () in
  (match Interval.Ibp.margin ~checks p im ~true_class:0 with
  | _ -> Alcotest.fail "expected Verdict.Abort Symbol_budget"
  | exception Deept.Verdict.Abort Deept.Verdict.Symbol_budget -> ());
  (* an unarmed run on the same program completes *)
  ignore (Interval.Ibp.run p im)

(* --- typed aborts: linear relaxation --------------------------------- *)

let test_linrelax_budget_aborts () =
  let p = Helpers.tiny_program ~layers:1 66 in
  let rng = Rng.create 67 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let c = Linrelax.Verify.compile p ~seq_len:3 in
  let region = Linrelax.Verify.region_word_ball ~p:Lp.L2 x ~word:0 ~radius:0.01 in
  let budget time_limit_s max_eps = { Deept.Config.time_limit_s; max_eps } in
  (match
     Linrelax.Verify.margin ~verifier:Linrelax.Verify.Backward
       ~budget:(budget (Some 0.0) None) c region ~true_class:0
   with
  | _ -> Alcotest.fail "expected Verdict.Abort Timeout"
  | exception Deept.Verdict.Abort Deept.Verdict.Timeout -> ());
  (match
     Linrelax.Verify.margin ~verifier:Linrelax.Verify.Backward
       ~budget:(budget None (Some 0)) c region ~true_class:0
   with
  | _ -> Alcotest.fail "expected Verdict.Abort Symbol_budget"
  | exception Deept.Verdict.Abort Deept.Verdict.Symbol_budget -> ());
  (* a compiled value survives an aborted probe: the unarmed run answers *)
  let m =
    Linrelax.Verify.margin ~verifier:Linrelax.Verify.Backward c region
      ~true_class:0
  in
  Helpers.check_true "finite margin after aborts" (Float.is_finite m)

(* --- the ladder's interval rung -------------------------------------- *)

(* With an already-expired deadline the Box rung must abort cooperatively
   inside the shared loop and record a typed timeout on rung "interval" —
   not hang, not return a stale margin. *)
let test_ladder_interval_rung_timeout () =
  let p = Helpers.tiny_program ~layers:1 68 in
  let rng = Rng.create 69 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.01 in
  let cfg = Deept.Config.with_budget ~deadline:0.0 Deept.Config.fast in
  let o =
    Deept.Engine.certify
      ~ladder:(Deept.Engine.ladder [ Deept.Engine.Box ])
      ~falsify_samples:0 cfg p region ~true_class:0
  in
  Helpers.check_true "interval rung timeout"
    (Deept.Verdict.equal o.Deept.Engine.verdict
       (Deept.Verdict.Unknown Deept.Verdict.Timeout));
  Alcotest.(check string) "rung name" "interval" o.Deept.Engine.rung_name

(* --- prefix sharing --------------------------------------------------- *)

let tiny_vit seed =
  let rng = Rng.create seed in
  Nn.Model.create rng
    {
      Nn.Model.default_config with
      vocab_size = 16;
      max_len = 6;
      d_model = 8;
      d_hidden = 8;
      heads = 2;
      layers = 1;
      patch_dim = Some 5;
    }

let test_prefix_bit_identity () =
  let p = Nn.Model.to_ir (tiny_vit 70) in
  let len = Deept.Propagate.affine_prefix_len p in
  Helpers.check_true "vit has an affine prefix" (len > 0);
  let rng = Rng.create 71 in
  let x = Mat.random_gaussian rng 4 5 0.5 in
  let region = Deept.Region.lp_ball_all ~p:Lp.L2 x ~radius:0.02 in
  let cfg = Deept.Config.fast in
  let plain = Deept.Propagate.run cfg p region in
  let vals = Deept.Propagate.run_prefix cfg p region ~len in
  let shared = Deept.Propagate.run ~prefix:(vals, len) cfg p region in
  check_zonotope_bits "prefix = full run" plain shared;
  (* a second rung reusing the same prefix must be unaffected by the
     first (the reduction mutates the value array it is given) *)
  let shared2 = Deept.Propagate.run ~prefix:(vals, len) cfg p region in
  check_zonotope_bits "prefix reusable" plain shared2;
  (* text models have no affine prefix (they open with self-attention) *)
  Helpers.check_true "text prefix empty"
    (Deept.Propagate.affine_prefix_len (Helpers.tiny_program ~layers:1 72) = 0)

(* --- non-finite weights rejected at load ------------------------------ *)

let poke_first_linear p v =
  let n = Array.length p.Ir.ops in
  let rec go i =
    if i >= n then Alcotest.fail "no linear op found"
    else
      match p.Ir.ops.(i) with
      | Ir.Linear { w; _ } ->
          w.Mat.data.(1) <- v;
          i
      | _ -> go (i + 1)
  in
  go 0

let test_validate_rejects_nonfinite () =
  let p = Helpers.tiny_program ~layers:1 73 in
  (match Ir.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.failf "clean model rejected: %s" e);
  let op = poke_first_linear p Float.nan in
  (match Ir.validate p with
  | Ok () -> Alcotest.fail "NaN weight accepted"
  | Error msg ->
      Helpers.check_true
        (Printf.sprintf "message names the op (%s)" msg)
        (contains ~sub:(Printf.sprintf "op %d" op) msg && contains ~sub:"nan" msg));
  (* the serializer writes without validating; the load must reject *)
  let path = Filename.temp_file "deept_nanweight" ".model" in
  Ir.Serialize.save path p;
  (match Ir.Serialize.load path with
  | _ -> Alcotest.fail "load accepted a NaN weight"
  | exception Invalid_argument msg ->
      Helpers.check_true "load error names the weight" (contains ~sub:"nan" msg));
  Sys.remove path;
  ignore (poke_first_linear p Float.infinity);
  match Ir.validate p with
  | Ok () -> Alcotest.fail "Inf weight accepted"
  | Error msg -> Helpers.check_true "inf reported" (contains ~sub:"inf" msg)

(* --- trace stream and profiling --------------------------------------- *)

let test_trace_stream () =
  let p = Helpers.tiny_program ~layers:1 74 in
  let rng = Rng.create 75 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.01 in
  let events = ref [] in
  let cfg =
    Deept.Config.with_trace (Some (fun e -> events := e :: !events))
      Deept.Config.fast
  in
  ignore (Deept.Propagate.run cfg p region);
  let evs = Array.of_list (List.rev !events) in
  Alcotest.(check int) "one event per op" (Array.length p.Ir.ops)
    (Array.length evs);
  Array.iteri
    (fun i (e : Interp.event) ->
      Alcotest.(check int) "op index" i e.Interp.op_index;
      Alcotest.(check string) "kind" (Ir.kind_name p.Ir.ops.(i)) e.Interp.kind;
      Helpers.check_true "wall >= 0" (e.Interp.wall_s >= 0.0);
      Helpers.check_true "size > 0" (e.Interp.size > 0);
      Helpers.check_true "finite width" (Float.is_finite e.Interp.width);
      Helpers.check_true "density in (0, 1]"
        (e.Interp.density > 0.0 && e.Interp.density <= 1.0))
    evs

let test_profile_collector () =
  let p = Helpers.tiny_program ~layers:1 76 in
  let rng = Rng.create 77 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.01 in
  let prof = Deept.Profile.create () in
  let cfg =
    Deept.Config.with_trace (Some (Deept.Profile.sink prof)) Deept.Config.fast
  in
  ignore (Deept.Propagate.run cfg p region);
  ignore (Deept.Propagate.run cfg p region);
  let rows = Deept.Profile.rows prof in
  Alcotest.(check int) "one row per op" (Array.length p.Ir.ops)
    (List.length rows);
  List.iteri
    (fun i (r : Deept.Profile.row) ->
      Alcotest.(check int) "row op" i r.Deept.Profile.op_index;
      Alcotest.(check int) "two calls" 2 r.Deept.Profile.calls;
      Helpers.check_true "wall >= 0" (r.Deept.Profile.wall_s >= 0.0);
      Helpers.check_true "density in (0, 1]"
        (r.Deept.Profile.density > 0.0 && r.Deept.Profile.density <= 1.0))
    rows;
  Helpers.check_true "total wall = sum of rows"
    (Float.abs
       (Deept.Profile.total_wall prof
       -. List.fold_left (fun a r -> a +. r.Deept.Profile.wall_s) 0.0 rows)
    < 1e-9);
  let kinds = Deept.Profile.by_kind prof in
  Helpers.check_true "attention kind present"
    (List.mem_assoc "self_attention" kinds);
  let json = Deept.Profile.to_json ~model:"tiny" prof in
  List.iter
    (fun sub -> Helpers.check_true ("json has " ^ sub) (contains ~sub json))
    [
      "\"model\": \"tiny\"";
      "\"total_wall_s\"";
      "\"ops\"";
      "\"kinds\"";
      "\"density\":";
    ]

let () =
  Alcotest.run "interp"
    [
      ( "sandwich",
        [
          Alcotest.test_case "concrete ⊆ zonotope ⊆ interval" `Slow
            test_soundness_sandwich;
        ] );
      ( "pins",
        [ Alcotest.test_case "small_3 baselines" `Slow test_pinned_small3 ] );
      ( "aborts",
        [
          Alcotest.test_case "interval deadline" `Quick
            test_interval_deadline_abort;
          Alcotest.test_case "interval size budget" `Quick
            test_interval_budget_abort;
          Alcotest.test_case "linrelax budget" `Quick
            test_linrelax_budget_aborts;
          Alcotest.test_case "ladder interval rung" `Quick
            test_ladder_interval_rung_timeout;
        ] );
      ( "prefix",
        [ Alcotest.test_case "bit identity" `Quick test_prefix_bit_identity ] );
      ( "weights",
        [
          Alcotest.test_case "non-finite rejected" `Quick
            test_validate_rejects_nonfinite;
        ] );
      ( "trace",
        [
          Alcotest.test_case "event stream" `Quick test_trace_stream;
          Alcotest.test_case "profile collector" `Quick test_profile_collector;
        ] );
    ]
