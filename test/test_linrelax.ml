(* CROWN baseline: graph expansion agrees with the concrete interpreter,
   bound propagation is sound in both modes, Backward is at least as tight
   as BaF, and the verifier API behaves like the zonotope one. *)

open Tensor
module Lp = Deept.Lp

let flat (m : Mat.t) = Array.copy m.Mat.data

let test_eval_matches_forward () =
  List.iter
    (fun divide_std ->
      let p = Helpers.tiny_program ~layers:2 ~divide_std 51 in
      let g = Linrelax.Lgraph.of_ir p ~seq_len:3 in
      let rng = Rng.create 3 in
      for _ = 1 to 20 do
        let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.8 in
        let vals = Linrelax.Lgraph.eval g (flat x) in
        let expected = flat (Nn.Forward.run p x) in
        let got = vals.(g.Linrelax.Lgraph.output) in
        if not (Vecops.approx_equal ~tol:1e-9 expected got) then
          Alcotest.failf "lgraph eval mismatch (divide_std=%b)" divide_std
      done)
    [ false; true ]

let check_engine_sound ~name ~mode ?(samples = 60) p x region_scale =
  let rng = Rng.create 7 in
  let n = Mat.rows x in
  let g = Linrelax.Lgraph.of_ir p ~seq_len:n in
  let region = Linrelax.Verify.region_word_ball ~p:region_scale x ~word:1 ~radius:0.03 in
  let st = Linrelax.Engine.analyze ~mode g region in
  let lo, hi = Linrelax.Engine.output_bounds st in
  for s = 1 to samples do
    (* sample inside the word ball *)
    let d = Mat.cols x in
    let dirs = Deept.Lp.unit_ball_sample rng region_scale d in
    let xs =
      Mat.mapi
        (fun i j v -> if i = 1 then v +. (0.03 *. dirs.(j)) else v)
        x
    in
    let y = flat (Nn.Forward.run p xs) in
    Array.iteri
      (fun k yk ->
        if yk < lo.(k) -. 1e-6 || yk > hi.(k) +. 1e-6 then
          Alcotest.failf "%s: sample %d output %d: %.9g outside [%.9g, %.9g]" name
            s k yk lo.(k) hi.(k))
      y
  done

let test_backward_sound () =
  let p = Helpers.tiny_program ~layers:1 52 in
  let rng = Rng.create 9 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  List.iter
    (fun pn ->
      check_engine_sound
        ~name:("backward " ^ Lp.to_string pn)
        ~mode:Linrelax.Engine.Backward p x pn)
    [ Lp.L1; Lp.L2; Lp.Linf ]

let test_baf_sound () =
  let p = Helpers.tiny_program ~layers:2 53 in
  let rng = Rng.create 10 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  check_engine_sound ~name:"baf" ~mode:(Linrelax.Engine.Baf 25) p x Lp.L2

let test_backward_sound_divide_std () =
  let p = Helpers.tiny_program ~layers:1 ~divide_std:true 54 in
  let rng = Rng.create 11 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  check_engine_sound ~name:"backward std" ~mode:Linrelax.Engine.Backward p x Lp.L2

let width (lo, hi) =
  Array.fold_left ( +. ) 0.0 (Array.mapi (fun i h -> h -. lo.(i)) hi)

let test_backward_tighter_than_baf () =
  let p = Helpers.tiny_program ~layers:2 55 in
  let rng = Rng.create 12 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let g = Linrelax.Lgraph.of_ir p ~seq_len:3 in
  let region = Linrelax.Verify.region_word_ball ~p:Lp.Linf x ~word:0 ~radius:0.02 in
  let bw = Linrelax.Engine.analyze ~mode:Linrelax.Engine.Backward g region in
  let bf = Linrelax.Engine.analyze ~mode:(Linrelax.Engine.Baf 12) g region in
  let wb = width (Linrelax.Engine.output_bounds bw) in
  let wf = width (Linrelax.Engine.output_bounds bf) in
  Helpers.check_true
    (Printf.sprintf "backward width %.4g <= baf width %.4g" wb wf)
    (wb <= wf +. 1e-9)

let test_certify_zero_radius () =
  let p = Helpers.tiny_program ~layers:1 56 in
  let rng = Rng.create 13 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let pred = Nn.Forward.predict p x in
  let c = Linrelax.Verify.compile p ~seq_len:3 in
  let region = Linrelax.Verify.region_word_ball ~p:Lp.L2 x ~word:0 ~radius:0.0 in
  List.iter
    (fun v ->
      Helpers.check_true "certifies prediction"
        (Linrelax.Verify.certify ~verifier:v c region ~true_class:pred);
      Helpers.check_true "refutes other"
        (not (Linrelax.Verify.certify ~verifier:v c region ~true_class:(1 - pred))))
    [ Linrelax.Verify.Backward; Linrelax.Verify.Baf ]

let test_radius_positive_and_ordered () =
  let p = Helpers.tiny_program ~layers:1 57 in
  let rng = Rng.create 14 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let pred = Nn.Forward.predict p x in
  let r_bw =
    Linrelax.Verify.certified_radius ~verifier:Linrelax.Verify.Backward ~iters:8 p
      ~p:Lp.L2 x ~word:1 ~true_class:pred ()
  in
  let r_bf =
    Linrelax.Verify.certified_radius ~verifier:Linrelax.Verify.Baf ~iters:8 p
      ~p:Lp.L2 x ~word:1 ~true_class:pred ()
  in
  Helpers.check_true (Printf.sprintf "backward radius %.4g > 0" r_bw) (r_bw > 0.0);
  Helpers.check_true
    (Printf.sprintf "backward %.4g >= baf %.4g (modulo search grid)" r_bw r_bf)
    (r_bw >= 0.8 *. r_bf)

(* The margin functional cancels common terms: certifying with the margin
   must be at least as strong as comparing the two output bounds. *)
let test_margin_relational () =
  let p = Helpers.tiny_program ~layers:1 58 in
  let rng = Rng.create 15 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim p 0) 0.7 in
  let pred = Nn.Forward.predict p x in
  let g = Linrelax.Lgraph.of_ir p ~seq_len:3 in
  let region = Linrelax.Verify.region_word_ball ~p:Lp.Linf x ~word:1 ~radius:0.01 in
  let st = Linrelax.Engine.analyze ~mode:Linrelax.Engine.Backward g region in
  let lo, hi = Linrelax.Engine.output_bounds st in
  let naive = lo.(pred) -. hi.(1 - pred) in
  let relational =
    Linrelax.Verify.margin ~verifier:Linrelax.Verify.Backward
      (Linrelax.Verify.compile p ~seq_len:3)
      region ~true_class:pred
  in
  Helpers.check_true
    (Printf.sprintf "relational margin %.4g >= interval margin %.4g" relational naive)
    (relational >= naive -. 1e-9)

(* Pointwise coverage of the scalar relaxations used by CROWN. *)
let test_unary_lines_cover () =
  let rng = Rng.create 21 in
  let kinds =
    [ (Linrelax.Lgraph.Relu, (fun x -> Float.max 0.0 x), -4.0, 4.0);
      (Linrelax.Lgraph.Tanh, tanh, -3.0, 3.0);
      (Linrelax.Lgraph.Exp, exp, -5.0, 4.0);
      (Linrelax.Lgraph.Recip, (fun x -> 1.0 /. x), 0.1, 6.0);
      (Linrelax.Lgraph.Sqrt, sqrt, 0.0, 5.0) ]
  in
  List.iter
    (fun (kind, f, lo_min, hi_max) ->
      for _ = 1 to 50 do
        let l = Rng.uniform rng lo_min hi_max in
        let u = l +. Rng.uniform rng 1e-3 (hi_max -. l +. 1e-3) in
        let u = Float.min u hi_max in
        if u > l then begin
          let low, high = Linrelax.Relax.unary_lines kind ~l ~u in
          for s = 0 to 50 do
            let x = l +. (float_of_int s /. 50.0 *. (u -. l)) in
            let y = f x in
            let ylo = (low.Linrelax.Relax.slope *. x) +. low.Linrelax.Relax.icept in
            let yhi = (high.Linrelax.Relax.slope *. x) +. high.Linrelax.Relax.icept in
            if not (ylo <= y +. 1e-7 && y <= yhi +. 1e-7) then
              Alcotest.failf "relaxation violated at %g on [%g,%g]: %g not in [%g,%g]"
                x l u y ylo yhi
          done
        end
      done)
    kinds

(* McCormick planes bound the product everywhere on the box. *)
let test_product_planes_cover () =
  let rng = Rng.create 22 in
  for _ = 1 to 200 do
    let lx = Rng.uniform rng (-3.0) 3.0 in
    let ux = lx +. Rng.uniform rng 0.0 3.0 in
    let ly = Rng.uniform rng (-3.0) 3.0 in
    let uy = ly +. Rng.uniform rng 0.0 3.0 in
    let pl, pu = Linrelax.Relax.product_planes ~lx ~ux ~ly ~uy in
    for _ = 1 to 30 do
      let x = Rng.uniform rng lx ux and y = Rng.uniform rng ly uy in
      let p = x *. y in
      let lo = (pl.Linrelax.Relax.cx *. x) +. (pl.Linrelax.Relax.cy *. y) +. pl.Linrelax.Relax.c in
      let hi = (pu.Linrelax.Relax.cx *. x) +. (pu.Linrelax.Relax.cy *. y) +. pu.Linrelax.Relax.c in
      Helpers.check_true "mccormick lower" (lo <= p +. 1e-9);
      Helpers.check_true "mccormick upper" (p <= hi +. 1e-9)
    done
  done

(* The expanded graph's memory estimate is monotone in depth. *)
let test_memory_estimate_monotone () =
  let bytes layers =
    let p = Helpers.tiny_program ~layers 91 in
    Linrelax.Lgraph.approx_bytes (Linrelax.Lgraph.of_ir p ~seq_len:4)
  in
  Helpers.check_true "deeper graph bigger" (bytes 3 > bytes 1)

let () =
  Alcotest.run "linrelax"
    [
      ( "lgraph",
        [ Alcotest.test_case "eval = forward" `Quick test_eval_matches_forward ] );
      ( "engine",
        [
          Alcotest.test_case "backward sound" `Slow test_backward_sound;
          Alcotest.test_case "baf sound" `Quick test_baf_sound;
          Alcotest.test_case "backward sound (std norm)" `Slow
            test_backward_sound_divide_std;
          Alcotest.test_case "backward tighter" `Quick test_backward_tighter_than_baf;
        ] );
      ( "relax",
        [
          Alcotest.test_case "unary lines cover" `Quick test_unary_lines_cover;
          Alcotest.test_case "mccormick planes" `Quick test_product_planes_cover;
          Alcotest.test_case "memory estimate" `Quick test_memory_estimate_monotone;
        ] );
      ( "verify",
        [
          Alcotest.test_case "zero radius" `Quick test_certify_zero_radius;
          Alcotest.test_case "radius ordering" `Slow test_radius_positive_and_ordered;
          Alcotest.test_case "relational margin" `Quick test_margin_relational;
        ] );
    ]
