(* Speculative parallel radius search (Psearch) and its satellites: the
   grid executor's bit-identity with sequential bisection, runner
   agreement (serial / fork / domain-pool), probe accounting, fault
   containment, affine-prefix amortization, the early-exit
   contains_sample and the pooled noise-symbol reduction. *)

open Tensor
module P = Deept.Psearch
module Z = Deept.Zonotope
module Lp = Deept.Lp
module C = Deept.Certify

let same_float msg a b =
  if Int64.bits_of_float a <> Int64.bits_of_float b then
    Alcotest.failf "%s: %.17g <> %.17g (bitwise)" msg a b

let check_bits msg (a : float array) (b : float array) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: length %d <> %d" msg (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: index %d: %.17g <> %.17g" msg i x b.(i))
    a

(* The canonical monotone predicate: certified iff r <= t. *)
let threshold t r = if r <= t then P.Good else P.Bad

(* Thresholds covering every bracket shape: immediate failure, failure
   inside [lo, hi], growth by 1..3 doublings, and never-failing. *)
let thresholds = [ 0.0; 0.137; 0.25; 0.3; 0.41; 0.4999; 0.7; 1.3; 2.9; 5.0 ]

(* --- grid n = 1 degenerates to sequential bisection, probe-for-probe - *)

let test_grid1_bit_identical () =
  List.iter
    (fun t ->
      let seq_probes = ref [] and grid_probes = ref [] in
      let probe trace r =
        trace := r :: !trace;
        threshold t r
      in
      let seq = P.search ~iters:10 ~exec:P.Sequential (probe seq_probes) in
      let grid = P.search ~iters:10 ~exec:(P.Grid 1) (probe grid_probes) in
      check_bits
        (Printf.sprintf "t=%g probed radii" t)
        (Array.of_list (List.rev !seq_probes))
        (Array.of_list (List.rev !grid_probes));
      same_float (Printf.sprintf "t=%g radius" t) seq.P.radius grid.P.radius;
      same_float (Printf.sprintf "t=%g good" t) seq.P.good grid.P.good;
      same_float (Printf.sprintf "t=%g bad" t) seq.P.bad grid.P.bad)
    thresholds

(* --- probe accounting: bracket vs refinement split, round counts ----- *)

let test_probe_accounting () =
  (* hi = 0.5 fails immediately: 1 bracket probe, iters bisections *)
  let seq = P.search ~iters:10 ~exec:P.Sequential (threshold 0.3) in
  Helpers.check_true "seq bracket probes"
    (seq.P.stats.P.bracket_probes = 1);
  Helpers.check_true "seq bisect probes" (seq.P.stats.P.bisect_probes = 10);
  Helpers.check_true "seq rounds" (seq.P.stats.P.rounds = 0);
  Helpers.check_true "seq no faults" (seq.P.stats.P.faulted = []);
  (* grid 4, wave-0 brackets [0.25, 0.375): rounds from the width target
     2^10 with the n-times-narrower wave-0 credit: 4 * 5^4 >= 1024 *)
  let g4 = P.search ~iters:10 ~exec:(P.Grid 4) (threshold 0.3) in
  Helpers.check_true "grid4 bracket probes"
    (g4.P.stats.P.bracket_probes = 4);
  Helpers.check_true "grid4 rounds" (g4.P.stats.P.rounds = 4);
  Helpers.check_true "grid4 bisect probes" (g4.P.stats.P.bisect_probes = 16);
  (* grid 1 has no wave-0 credit: one bisection per round, iters rounds *)
  let g1 = P.search ~iters:10 ~exec:(P.Grid 1) (threshold 0.3) in
  Helpers.check_true "grid1 rounds" (g1.P.stats.P.rounds = 10);
  Helpers.check_true "grid1 bisect probes" (g1.P.stats.P.bisect_probes = 10);
  (* all-Good predicate: growth stops once [good] reaches 8 * hi, but a
     wide wave may speculate past the sequential cap (n = 4 doubles four
     times in one wave); grid 1 stops exactly where sequential does *)
  let unb = P.search ~iters:10 ~exec:(P.Grid 4) (fun _ -> P.Good) in
  Helpers.check_true "unbounded bad" (unb.P.bad = infinity);
  same_float "grid4 unbounded radius" 8.0 unb.P.radius;
  Helpers.check_true "unbounded rounds" (unb.P.stats.P.rounds = 0);
  let unb1 = P.search ~iters:10 ~exec:(P.Grid 1) (fun _ -> P.Good) in
  same_float "grid1 unbounded radius = 8 * hi" 4.0 unb1.P.radius

(* --- the grid bracket is always correct and at most sequential's ----- *)

let test_grid_bracket_dominates () =
  List.iter
    (fun t ->
      let seq = P.search ~iters:10 ~exec:P.Sequential (threshold t) in
      let g = P.search ~iters:10 ~exec:(P.Grid 4) (threshold t) in
      Helpers.check_true
        (Printf.sprintf "t=%g grid radius certifies" t)
        (g.P.radius <= t || (g.P.radius = 0.0 && t < g.P.bad));
      if g.P.bad <> infinity then begin
        Helpers.check_true
          (Printf.sprintf "t=%g bracket holds t" t)
          (g.P.good <= t && t < g.P.bad);
        Helpers.check_true
          (Printf.sprintf "t=%g grid width <= sequential" t)
          (g.P.bad -. g.P.good <= seq.P.bad -. seq.P.good +. 1e-15)
      end)
    thresholds

(* --- faulted probes count "bad" and are reported ---------------------- *)

let test_faulted_probes () =
  (* probes above 0.2 abort: the bracket converges below the fault zone
     and the radius still comes from a probe that genuinely certified *)
  let flaky r =
    if r > 0.2 then raise (Deept.Verdict.Abort Deept.Verdict.Timeout)
    else r <= 0.4
  in
  List.iter
    (fun exec ->
      let res = P.search ~iters:10 ~exec (P.probe_of flaky) in
      Helpers.check_true "faults reported" (res.P.stats.P.faulted <> []);
      Helpers.check_true "radius below fault zone" (res.P.radius <= 0.2);
      Helpers.check_true "radius certified" (res.P.radius <= 0.4);
      List.iter
        (fun (r, reason) ->
          Helpers.check_true "faulted radius in fault zone" (r > 0.2);
          Helpers.check_true "reason preserved"
            (Deept.Verdict.equal
               (Deept.Verdict.Unknown reason)
               (Deept.Verdict.Unknown Deept.Verdict.Timeout)))
        res.P.stats.P.faulted)
    [ P.Sequential; P.Grid 1; P.Grid 4 ];
  (* every probe faults: the search terminates at lo with nothing certified *)
  let all_fault _ = raise (Deept.Verdict.Abort Deept.Verdict.Timeout) in
  let res = P.search ~iters:10 ~exec:(P.Grid 3) (P.probe_of all_fault) in
  same_float "all faults -> lo" 0.0 res.P.radius;
  Helpers.check_true "all faults recorded" (res.P.stats.P.faulted <> [])

(* --- runners agree bit-for-bit ----------------------------------------

   Ordering matters: the fork tests run before anything spawns worker
   domains (the runtime forbids fork afterwards, and fork_runner would
   silently degrade to serial — these tests must exercise real forks).
   The dpool comparison runs later; serial is the common reference. *)

let compare_runner name runner t =
  let reference = P.search ~iters:8 ~exec:(P.Grid 3) (threshold t) in
  let res = P.search ~iters:8 ~exec:(P.Grid 3) ~runner (threshold t) in
  same_float (Printf.sprintf "t=%g %s radius" t name) reference.P.radius
    res.P.radius;
  same_float (Printf.sprintf "t=%g %s bad" t name) reference.P.bad res.P.bad;
  Helpers.check_true
    (Printf.sprintf "t=%g %s probe counts" t name)
    (res.P.stats.P.bisect_probes = reference.P.stats.P.bisect_probes)

let test_fork_runner_agrees () =
  Helpers.check_true "no domains yet" (not (Dpool.domains_active ()));
  List.iter (compare_runner "fork" P.fork_runner) [ 0.3; 0.7 ]

let test_dpool_runner_agrees () =
  let dp = Dpool.create ~force:true 4 in
  List.iter (compare_runner "dpool" (P.dpool_runner dp)) [ 0.3; 0.7 ];
  (* with live domains, fork_runner degrades to serial instead of the
     runtime's "fork while domains run" crash *)
  Helpers.check_true "domains live" (Dpool.domains_active ());
  compare_runner "fork-degraded" P.fork_runner 0.3;
  Dpool.shutdown dp

(* a probe process that dies is a Faulted outcome, not a crash of the
   search: the fold treats it as "bad" and the bracket stays correct *)
let test_fork_crash_contained () =
  let crashing r = if r > 0.25 then Unix._exit 9 else r <= 0.4 in
  let res =
    P.search ~iters:6 ~exec:(P.Grid 2) ~runner:P.fork_runner
      (P.probe_of crashing)
  in
  Helpers.check_true "crashes reported as faults" (res.P.stats.P.faulted <> []);
  Helpers.check_true "radius below crash zone" (res.P.radius <= 0.25)

(* --- affine-prefix amortization --------------------------------------- *)

let tiny_vit seed =
  let rng = Rng.create seed in
  Nn.Model.create rng
    {
      Nn.Model.default_config with
      vocab_size = 16;
      max_len = 6;
      d_model = 8;
      d_hidden = 8;
      heads = 2;
      layers = 1;
      patch_dim = Some 5;
    }

let multi_probe ?(share_prefix = true) ?(probes = 2) () =
  Deept.Config.with_search
    (Deept.Config.search ~probes ~share_prefix
       ~probe_backend:Deept.Config.Serial_probes ())
    Deept.Config.fast

(* Rescaling the unit-radius prefix by r matches re-propagating at r:
   centers bit-equal (radius-independent through affine ops), generator
   coefficients within 1e-9 (float distributivity only). *)
let test_prefix_rescale_close () =
  let program = Nn.Model.to_ir (tiny_vit 70) in
  let rng = Rng.create 71 in
  let x = Mat.random_gaussian rng 4 5 0.5 in
  let cfg = multi_probe () in
  match C.search_prefix cfg program ~p:Lp.L2 x ~word:1 with
  | None -> Alcotest.fail "expected a shared prefix on the vit model"
  | Some (vals, len) ->
      List.iter
        (fun r ->
          let scaled = Array.map (Z.scale_coeffs r) vals in
          let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:r in
          let direct = Deept.Propagate.run cfg program region in
          let shared =
            Deept.Propagate.run ~prefix:(scaled, len) cfg program region
          in
          check_bits "rescaled center bit-equal" direct.Z.center.Mat.data
            shared.Z.center.Mat.data;
          let close name (a : Mat.t) (b : Mat.t) =
            check_bits (name ^ " dims")
              [| float_of_int (Mat.rows a); float_of_int (Mat.cols a) |]
              [| float_of_int (Mat.rows b); float_of_int (Mat.cols b) |];
            Array.iteri
              (fun i v ->
                if Float.abs (v -. b.Mat.data.(i)) > 1e-9 then
                  Alcotest.failf "%s: index %d: %.17g vs %.17g" name i v
                    b.Mat.data.(i))
              a.Mat.data
          in
          close "phi" direct.Z.phi shared.Z.phi;
          close "eps" direct.Z.eps shared.Z.eps)
        [ 0.0371; 0.25; 1.7 ]

(* end to end: the multi-probe radius with sharing on agrees with sharing
   off, and the result still certifies from scratch *)
let test_prefix_share_end_to_end () =
  let program = Nn.Model.to_ir (tiny_vit 70) in
  let rng = Rng.create 71 in
  let x = Mat.random_gaussian rng 4 5 0.5 in
  let true_class = Nn.Forward.predict program x in
  let radius cfg =
    C.certified_radius cfg program ~p:Lp.L2 x ~word:1 ~true_class ()
  in
  let r_on = radius (multi_probe ()) in
  let r_off = radius (multi_probe ~share_prefix:false ()) in
  Helpers.check_float ~tol:1e-6 "shared = unshared radius" r_off r_on;
  if r_on > 0.0 then
    Helpers.check_true "shared radius certifies from scratch"
      (C.certify Deept.Config.fast program
         (Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:r_on)
         ~true_class)

let test_prefix_gating () =
  let vit = Nn.Model.to_ir (tiny_vit 70) in
  let text = Helpers.tiny_program ~layers:1 72 in
  let rng = Rng.create 73 in
  let xv = Mat.random_gaussian rng 4 5 0.5 in
  let xt = Mat.random_gaussian rng 3 (Ir.out_dim text 0) 0.7 in
  let some cfg = C.search_prefix cfg vit ~p:Lp.L2 xv ~word:1 <> None in
  Helpers.check_true "multi-probe vit shares" (some (multi_probe ()));
  Helpers.check_true "probes = 1 never shares"
    (not (some (multi_probe ~probes:1 ())));
  Helpers.check_true "share_prefix = false honored"
    (not (some (multi_probe ~share_prefix:false ())));
  let faulted =
    { (multi_probe ()) with
      Deept.Config.fault = Some (Deept.Config.fault 0 Deept.Config.Inject_nan)
    }
  in
  Helpers.check_true "fault injection disables sharing" (not (some faulted));
  Helpers.check_true "text model has no prefix"
    (C.search_prefix (multi_probe ()) text ~p:Lp.L2 xt ~word:1 = None)

(* under an injected fault every probe aborts: the reported radius is 0
   and the faults surface in the report instead of crashing the search *)
let test_fault_injection_radius () =
  let program = Nn.Model.to_ir (tiny_vit 70) in
  let rng = Rng.create 71 in
  let x = Mat.random_gaussian rng 4 5 0.5 in
  let true_class = Nn.Forward.predict program x in
  let cfg =
    { (multi_probe ()) with
      Deept.Config.fault = Some (Deept.Config.fault 0 Deept.Config.Inject_nan)
    }
  in
  let rep =
    C.certified_radius_v cfg program ~p:Lp.L2 x ~word:1 ~true_class ()
  in
  same_float "all probes fault -> 0" 0.0 rep.C.radius;
  Helpers.check_true "faults reported" (rep.C.faulted_probes <> [])

(* --- committed small_3 pins (skips when the model is absent) ---------- *)

let test_small3_pins () =
  if not (Sys.file_exists "../data/small_3.model") then ()
  else begin
    Zoo.data_dir := "../data";
    let entry = Zoo.entry "small_3" in
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "small_3" in
    let c = Zoo.corpus_of entry.Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let toks, label = List.nth c.Text.Corpus.test 0 in
    let x = Nn.Model.embed_tokens model toks in
    let certifies r =
      r > 0.0
      && C.certify Deept.Config.fast program
           (Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:r)
           ~true_class:label
    in
    (* the default (probes = 1) search still reproduces the seed pin *)
    Helpers.check_float ~tol:0.0 "sequential pin" 0.181640625
      (C.certified_radius Deept.Config.fast program ~p:Lp.L2 x ~word:1
         ~true_class:label ());
    (* Grid 1 probes the same radii, so the same pin, bit-for-bit *)
    let g1 = P.search ~iters:10 ~exec:(P.Grid 1) (P.probe_of certifies) in
    Helpers.check_float ~tol:0.0 "grid-1 pin" 0.181640625 g1.P.radius;
    (* a real multi-probe search: certifies, bracket at most sequential's *)
    let rep =
      C.certified_radius_v (multi_probe ()) program ~p:Lp.L2 x ~word:1
        ~true_class:label ()
    in
    let good, bad = rep.C.bracket in
    Helpers.check_true "grid radius certifies" (certifies rep.C.radius);
    Helpers.check_true "grid bracket at most sequential's"
      (bad -. good <= 0.5 /. 1024.0 +. 1e-15)
  end

(* --- satellite: contains_sample early exit = full scan ---------------- *)

let contains_reference ?(tol = 1e-7) (z : Z.t) (m : Mat.t) =
  Mat.dims m = (z.Z.vrows, z.Z.vcols)
  && begin
       let ok = ref true in
       for v = 0 to Z.num_vars z - 1 do
         let itv = Z.bounds_var z v in
         let x = m.Mat.data.(v) in
         if x < itv.Interval.Itv.lo -. tol || x > itv.Interval.Itv.hi +. tol
         then ok := false
       done;
       !ok
     end

let test_contains_sample_equiv () =
  let rng = Rng.create 80 in
  for trial = 1 to 40 do
    let z = Helpers.random_zonotope ~vrows:3 ~vcols:4 ~ep:2 ~ee:3 rng in
    (* genuine samples, near-boundary perturbations and far outliers *)
    let s = Z.sample rng z in
    let candidates =
      [
        s;
        Mat.mapi (fun _ _ v -> v +. Rng.uniform rng (-0.5) 0.5) s;
        Mat.mapi (fun _ _ v -> v +. 100.0) s;
        Mat.create 1 1;
      ]
    in
    List.iter
      (fun m ->
        if Z.contains_sample z m <> contains_reference z m then
          Alcotest.failf "trial %d: early-exit disagrees with full scan"
            trial)
      candidates;
    Helpers.check_true "sample contained" (Z.contains_sample z s)
  done

(* --- satellite: pooled reduction is bit-identical to serial ----------- *)

let test_pooled_reduction_bits () =
  let rng = Rng.create 95 in
  (* nv * w = 1024 * 40 >= the 32k parallel threshold, so the pool engages *)
  let z = Helpers.random_zonotope ~vrows:32 ~vcols:32 ~ep:2 ~ee:40 rng in
  let pool = Dpool.create ~force:true 4 in
  Helpers.check_true "forced pool is parallel" (Dpool.size pool > 1);
  check_bits "pooled scores" (Deept.Reduction.scores z)
    (Deept.Reduction.scores ~pool z);
  let reduce pool =
    let ctx = Z.ctx () in
    Z.set_pool ctx pool;
    ignore (Z.alloc_eps ctx (Z.num_eps z));
    Deept.Reduction.decorrelate_min_k ctx z 8
  in
  let serial = reduce None and pooled = reduce (Some pool) in
  check_bits "reduced center" serial.Z.center.Mat.data pooled.Z.center.Mat.data;
  check_bits "reduced phi" serial.Z.phi.Mat.data pooled.Z.phi.Mat.data;
  check_bits "reduced eps" serial.Z.eps.Mat.data pooled.Z.eps.Mat.data;
  Dpool.shutdown pool

(* --- escape hatch; runs last, the env var stays set for the process --- *)

let test_env_escape_hatch () =
  let vit = Nn.Model.to_ir (tiny_vit 70) in
  let rng = Rng.create 73 in
  let x = Mat.random_gaussian rng 4 5 0.5 in
  Unix.putenv "DEEPT_NO_PREFIX_SHARE" "1";
  Helpers.check_true "DEEPT_NO_PREFIX_SHARE disables sharing"
    (C.search_prefix (multi_probe ()) vit ~p:Lp.L2 x ~word:1 = None)

let () =
  Alcotest.run "psearch"
    [
      ( "engine",
        [
          Alcotest.test_case "grid 1 = sequential" `Quick
            test_grid1_bit_identical;
          Alcotest.test_case "probe accounting" `Quick test_probe_accounting;
          Alcotest.test_case "grid bracket dominates" `Quick
            test_grid_bracket_dominates;
          Alcotest.test_case "faulted probes" `Quick test_faulted_probes;
        ] );
      ( "runners",
        [
          Alcotest.test_case "fork agrees with serial" `Quick
            test_fork_runner_agrees;
          Alcotest.test_case "fork crash contained" `Quick
            test_fork_crash_contained;
          Alcotest.test_case "dpool agrees with serial" `Quick
            test_dpool_runner_agrees;
        ] );
      ( "amortization",
        [
          Alcotest.test_case "rescale close" `Quick test_prefix_rescale_close;
          Alcotest.test_case "end to end" `Quick test_prefix_share_end_to_end;
          Alcotest.test_case "gating" `Quick test_prefix_gating;
          Alcotest.test_case "fault injection" `Quick
            test_fault_injection_radius;
        ] );
      ("pins", [ Alcotest.test_case "small_3" `Quick test_small3_pins ]);
      ( "satellites",
        [
          Alcotest.test_case "contains_sample early exit" `Quick
            test_contains_sample_equiv;
          Alcotest.test_case "pooled reduction bits" `Quick
            test_pooled_reduction_bits;
        ] );
      ( "escape hatch",
        [ Alcotest.test_case "env var" `Quick test_env_escape_hatch ] );
    ]
