(* Resilient certification engine: typed verdicts, budget enforcement,
   deterministic fault injection and the graceful-degradation ladder.
   Every Unknown reason must be reachable, the ladder must fire in order
   (Precise -> Fast -> reduced-k Fast -> interval), and a ladder-rescued
   verdict must agree with running the cheaper config directly. *)

open Tensor
module C = Deept.Config
module V = Deept.Verdict
module E = Deept.Engine
module Lp = Deept.Lp

(* A tiny region that should certify on any reasonable tiny model. *)
let setup ?(layers = 1) seed =
  let program = Helpers.tiny_program ~layers seed in
  let rng = Rng.create (seed + 100) in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:1e-9 in
  (program, x, pred, region)

let certify_v cfg (program, _, pred, region) =
  Deept.Certify.certify_v cfg program region ~true_class:pred

(* ---------------- Unknown reason reachability (certify_v) -------------- *)

let test_reachable_clean () =
  let s = setup 41 in
  Helpers.check_true "tiny radius certifies"
    (certify_v C.fast s = V.Certified)

let test_reachable_numerical_fault () =
  let s = setup 41 in
  List.iter
    (fun action ->
      Helpers.check_true "injected poison -> numerical fault"
        (certify_v { C.fast with C.fault = Some (C.fault 0 action) } s
        = V.Unknown V.Numerical_fault))
    [ C.Inject_nan; C.Inject_inf ]

let test_reachable_unbounded () =
  let s = setup 41 in
  Helpers.check_true "collapsed transformer -> unbounded"
    (certify_v { C.fast with C.fault = Some (C.fault 2 C.Raise_unbounded) } s
    = V.Unknown V.Unbounded)

let test_reachable_timeout () =
  let s = setup 41 in
  let cfg =
    {
      (C.with_budget ~deadline:0.02 C.fast) with
      C.fault = Some (C.fault 0 (C.Stall 0.08));
    }
  in
  Helpers.check_true "stalled op -> timeout" (certify_v cfg s = V.Unknown V.Timeout)

let test_reachable_symbol_budget () =
  let s = setup 41 in
  let cfg = C.with_budget ~max_eps:1 C.fast in
  Helpers.check_true "symbol cap -> symbol budget"
    (certify_v cfg s = V.Unknown V.Symbol_budget)

let test_reachable_imprecise () =
  (* At some radius on the sweep the clean verdict flips to Imprecise; when
     it does, the ladder must stop at the first rung (descending the ladder
     can never improve precision). *)
  let ((program, _, pred, _) as s) = setup ~layers:2 43 in
  let _ = s in
  let x = Mat.random_gaussian (Rng.create 143) 3 (Ir.out_dim program 0) 0.7 in
  let found = ref false in
  List.iter
    (fun radius ->
      if not !found then begin
        let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius in
        match Deept.Certify.certify_v C.fast program region ~true_class:pred with
        | V.Unknown V.Imprecise ->
            found := true;
            let o =
              E.certify ~falsify_samples:0 C.fast program region ~true_class:pred
            in
            Helpers.check_true "imprecise is final"
              (o.E.verdict = V.Unknown V.Imprecise);
            Helpers.check_true "no pointless descent"
              (List.length o.E.attempts = 1)
        | _ -> ()
      end)
    [ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0 ];
  Helpers.check_true "imprecise radius found on sweep" !found

(* ---------------- the degradation ladder ---------------- *)

let rung_names (o : E.outcome) = List.map (fun (a : E.attempt) -> a.E.rung_name) o.E.attempts

let test_ladder_shape () =
  let names = List.map E.rung_name (E.default_ladder C.precise) in
  Helpers.check_true "precise ladder order"
    (names = [ "precise"; "fast"; "fast-k24"; "interval" ]);
  let names = List.map E.rung_name (E.default_ladder C.fast) in
  Helpers.check_true "fast ladder order" (names = [ "fast"; "fast-k32"; "interval" ]);
  let names =
    List.map E.rung_name (E.default_ladder { C.fast with C.reduction_k = 0 })
  in
  Helpers.check_true "k=0 ladder order" (names = [ "fast"; "fast-k32"; "interval" ])

let test_ladder_fires_in_order () =
  let (program, _, pred, region) = setup 41 in
  (* A fault that persists [n] rungs is rescued exactly at rung n + 1. *)
  List.iteri
    (fun n expected_rung ->
      let cfg =
        { C.precise with C.fault = Some (C.fault ~persist:(n + 1) 0 C.Inject_nan) }
      in
      let o = E.certify cfg program region ~true_class:pred in
      Helpers.check_true
        (Printf.sprintf "persist=%d rescued at %s" (n + 1) expected_rung)
        (o.E.verdict = V.Certified && o.E.rung_name = expected_rung);
      Helpers.check_true "attempts record the faulted rungs"
        (List.length o.E.attempts = n + 2);
      List.iteri
        (fun i (a : E.attempt) ->
          if i <= n then
            Helpers.check_true "faulted rung is Unknown"
              (a.E.verdict = V.Unknown V.Numerical_fault))
        o.E.attempts)
    [ "fast"; "fast-k24"; "interval" ]

let test_ladder_exhausted () =
  let (program, _, pred, region) = setup 41 in
  (* Fault active on every rung including the interval fallback: the run
     completes with a typed Unknown, never a certification. *)
  let cfg = { C.precise with C.fault = Some (C.fault 0 C.Inject_nan) } in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "exhausted ladder is a numerical fault"
    (o.E.verdict = V.Unknown V.Numerical_fault);
  Helpers.check_true "all four rungs attempted"
    (rung_names o = [ "precise"; "fast"; "fast-k24"; "interval" ]);
  Helpers.check_true "no faulted rung certified"
    (List.for_all (fun (a : E.attempt) -> a.E.verdict <> V.Certified) o.E.attempts)

let test_ladder_inf_exhausted () =
  let (program, _, pred, region) = setup 41 in
  (* Regression: an injected inf used to reach the interval fallback as
     an [m = -inf] margin and get mislabeled Unbounded, so a ladder
     exhausted under a persistent inf fault recorded the wrong death
     reason on its last attempt. Every attempt — the interval rung
     included — must record the poison it actually died with. *)
  let cfg = { C.precise with C.fault = Some (C.fault 0 C.Inject_inf) } in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "exhausted inf ladder is a numerical fault"
    (o.E.verdict = V.Unknown V.Numerical_fault);
  Helpers.check_true "all four rungs attempted"
    (rung_names o = [ "precise"; "fast"; "fast-k24"; "interval" ]);
  List.iter
    (fun (a : E.attempt) ->
      Helpers.check_true
        (Printf.sprintf "rung %s records the injected poison, not Unbounded"
           a.E.rung_name)
        (a.E.verdict = V.Unknown V.Numerical_fault && a.E.direction = E.Down))
    o.E.attempts

let test_ladder_unbounded_exhausted () =
  let (program, _, pred, region) = setup 41 in
  let cfg = { C.precise with C.fault = Some (C.fault 1 C.Raise_unbounded) } in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "unbounded everywhere"
    (o.E.verdict = V.Unknown V.Unbounded && List.length o.E.attempts = 4)

let test_ladder_timeout_rescue () =
  let (program, _, pred, region) = setup 41 in
  (* First rung stalls past its deadline; the clean second rung, which gets
     a fresh per-propagation deadline, rescues. *)
  let cfg =
    {
      (C.with_budget ~deadline:0.02 C.precise) with
      C.fault = Some (C.fault ~persist:1 0 (C.Stall 0.08));
    }
  in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "timeout rescued by fast"
    (o.E.verdict = V.Certified && o.E.rung_name = "fast");
  match o.E.attempts with
  | first :: _ ->
      Helpers.check_true "first rung timed out" (first.E.verdict = V.Unknown V.Timeout)
  | [] -> Alcotest.fail "no attempts"

let test_ladder_symbol_budget_rescue () =
  let (program, _, pred, region) = setup 41 in
  (* A symbol cap the zonotope rungs blow but the interval rung (which
     allocates no symbols) never consults. *)
  let cfg = C.with_budget ~max_eps:1 C.fast in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "interval rescues symbol budget"
    (o.E.verdict = V.Certified && o.E.rung_name = "interval");
  Helpers.check_true "zonotope rungs all hit the cap"
    (List.for_all
       (fun (a : E.attempt) ->
         a.E.rung_name = "interval" || a.E.verdict = V.Unknown V.Symbol_budget)
       o.E.attempts)

let test_rescue_agrees_with_direct () =
  let (program, _, pred, region) = setup 41 in
  let cfg =
    { C.precise with C.fault = Some (C.fault ~persist:1 0 C.Inject_nan) }
  in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "rescued at fast" (o.E.rung_name = "fast");
  let direct =
    Deept.Certify.certify_v
      { cfg with C.variant = C.Fast; C.fault = None }
      program region ~true_class:pred
  in
  Helpers.check_true "rescued verdict agrees with direct cheap run"
    (V.equal o.E.verdict direct)

let test_falsified_concrete () =
  let (program, _, pred, region) = setup 41 in
  let o = E.certify C.fast program region ~true_class:(1 - pred) in
  Helpers.check_true "wrong class is falsified concretely"
    (o.E.verdict = V.Falsified && o.E.rung_name = "concrete")

(* ---------------- radius search under faults ---------------- *)

let test_radius_faulted_probes_reported () =
  let (program, x, pred, _) = setup 41 in
  let cfg = { C.fast with C.fault = Some (C.fault 0 C.Inject_nan) } in
  let r =
    Deept.Certify.certified_radius_v cfg program ~p:Lp.L2 x ~word:1
      ~true_class:pred ~iters:4 ()
  in
  Helpers.check_float "all probes fault -> radius 0" 0.0 r.Deept.Certify.radius;
  Helpers.check_true "faulted probes recorded"
    (List.length r.Deept.Certify.faulted_probes > 0
    && List.for_all
         (fun (_, reason) -> reason = V.Numerical_fault)
         r.Deept.Certify.faulted_probes)

let test_radius_clean_matches_bool_api () =
  let (program, x, pred, _) = setup 41 in
  let r =
    Deept.Certify.certified_radius_v C.fast program ~p:Lp.L2 x ~word:1
      ~true_class:pred ~iters:6 ()
  in
  let r_bool =
    Deept.Certify.certified_radius C.fast program ~p:Lp.L2 x ~word:1
      ~true_class:pred ~iters:6 ()
  in
  Helpers.check_float "clean search agrees with bool API" r_bool
    r.Deept.Certify.radius;
  Helpers.check_true "no faulted probes" (r.Deept.Certify.faulted_probes = [])

let test_max_radius_hardened () =
  (* Probes that abort count as "bad": the search terminates and returns a
     radius below the faulting threshold. *)
  let r =
    Deept.Certify.max_radius ~hi:0.5 ~iters:20 (fun r ->
        if r >= 0.1 then raise (V.Abort V.Numerical_fault) else true)
  in
  Helpers.check_true "terminates below the fault threshold" (r < 0.1 && r > 0.09);
  let r = Deept.Certify.max_radius ~hi:0.5 (fun _ -> raise Deept.Zonotope.Unbounded) in
  Helpers.check_float "all probes fault -> lo" 0.0 r;
  Alcotest.check_raises "infinite bracket rejected"
    (Invalid_argument "Certify.max_radius: bracket must be finite") (fun () ->
      ignore (Deept.Certify.max_radius ~hi:infinity (fun _ -> true)))

(* ---------------- zoo-architecture smoke (the @engine alias) ----------- *)

(* The fault-injection ladder on a real zoo architecture (small_3: three
   Transformer layers, the corpus the paper's CROWN-Backward comparison
   uses). Weights are freshly initialized — reachability and ladder order
   do not depend on training, and this keeps the suite hermetic. *)
let test_zoo_architecture () =
  let entry = Zoo.entry "small_3" in
  let model = Nn.Model.create (Rng.create 4242) entry.Zoo.cfg in
  let program = Nn.Model.to_ir model in
  let x = Nn.Model.embed_tokens model [| 1; 2; 3; 4 |] in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:1e-9 in
  (* injected NaN on the first attention op, rescued one rung down *)
  let att_op =
    let idx = ref (-1) in
    Array.iteri
      (fun i (op : Ir.op) ->
        if !idx < 0 then
          match op with Ir.Self_attention _ -> idx := i | _ -> ())
      program.Ir.ops;
    !idx
  in
  let cfg =
    { C.precise with C.fault = Some (C.fault ~persist:1 att_op C.Inject_nan) }
  in
  let o = E.certify cfg program region ~true_class:pred in
  Helpers.check_true "zoo: faulted precise rung recorded"
    ((List.hd o.E.attempts).E.verdict = V.Unknown V.Numerical_fault);
  Helpers.check_true "zoo: never certified by a faulted rung"
    (match o.E.verdict with
    | V.Certified -> o.E.rung_name <> "precise"
    | V.Falsified | V.Unknown _ -> true);
  (* symbol budget: the 3-layer stack must trip a tight cap and complete *)
  let o2 =
    E.certify (C.with_budget ~max_eps:8 C.fast) program region ~true_class:pred
  in
  Helpers.check_true "zoo: symbol cap yields a complete outcome"
    (List.exists
       (fun (a : E.attempt) -> a.E.verdict = V.Unknown V.Symbol_budget)
       o2.E.attempts)

let () =
  Alcotest.run "engine"
    [
      ( "reachability",
        [
          Alcotest.test_case "clean certifies" `Quick test_reachable_clean;
          Alcotest.test_case "numerical fault" `Quick test_reachable_numerical_fault;
          Alcotest.test_case "unbounded" `Quick test_reachable_unbounded;
          Alcotest.test_case "timeout" `Quick test_reachable_timeout;
          Alcotest.test_case "symbol budget" `Quick test_reachable_symbol_budget;
          Alcotest.test_case "imprecise stops ladder" `Quick test_reachable_imprecise;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "shape" `Quick test_ladder_shape;
          Alcotest.test_case "fires in order" `Quick test_ladder_fires_in_order;
          Alcotest.test_case "exhausted" `Quick test_ladder_exhausted;
          Alcotest.test_case "inf exhausted records poison" `Quick
            test_ladder_inf_exhausted;
          Alcotest.test_case "unbounded exhausted" `Quick test_ladder_unbounded_exhausted;
          Alcotest.test_case "timeout rescue" `Quick test_ladder_timeout_rescue;
          Alcotest.test_case "symbol budget rescue" `Quick
            test_ladder_symbol_budget_rescue;
          Alcotest.test_case "rescue agrees with direct" `Quick
            test_rescue_agrees_with_direct;
          Alcotest.test_case "falsified concretely" `Quick test_falsified_concrete;
        ] );
      ( "radius",
        [
          Alcotest.test_case "faulted probes reported" `Quick
            test_radius_faulted_probes_reported;
          Alcotest.test_case "clean matches bool api" `Quick
            test_radius_clean_matches_bool_api;
          Alcotest.test_case "max_radius hardened" `Quick test_max_radius_hardened;
        ] );
      ( "zoo",
        [ Alcotest.test_case "small_3 architecture" `Quick test_zoo_architecture ] );
    ]
