(* Sparsity-aware zonotope kernels: the Bands occupancy algebra, the
   tile-skipping matmul kernels' bit-identity contract, dead-symbol
   compaction (standalone and through decorrelate / branch refinement),
   the Banded shared-memory transport (round-trips, SIGKILL-mid-batch
   arena reclaim) and the dense-vs-sparse oracle: a child process
   running the exact same queries under DEEPT_NO_SPARSE=1 must print a
   bit-identical report. Also reachable as `dune build @sparse`. *)

open Tensor
module C = Deept.Config
module V = Deept.Verdict
module Z = Deept.Zonotope
module Lp = Deept.Lp

let check_true = Helpers.check_true

let bits_equal_mats msg (a : Mat.t) (b : Mat.t) =
  check_true (msg ^ ": dims") (Mat.dims a = Mat.dims b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.Mat.data.(i) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" msg i x
          b.Mat.data.(i))
    a.Mat.data

let band ~cols:(col_lo, col_hi) ~rows:(row_lo, row_hi) =
  { Bands.col_lo; col_hi; row_lo; row_hi }

(* ---------------- Bands algebra ---------------- *)

let test_bands_normalize () =
  check_true "full is full" (Bands.is_full Bands.full);
  check_true "empty is empty" (Bands.is_empty Bands.empty);
  check_true "full never empty" (not (Bands.is_empty Bands.full));
  (* degenerate rectangles are dropped *)
  check_true "degenerate drops to empty"
    (Bands.is_empty
       (Bands.of_bands
          [ band ~cols:(3, 3) ~rows:(0, 5); band ~cols:(2, 4) ~rows:(7, 7) ]));
  (* same-row touching columns merge into one rectangle *)
  let merged =
    Bands.of_bands [ band ~cols:(0, 2) ~rows:(0, 4); band ~cols:(2, 5) ~rows:(0, 4) ]
  in
  (match Bands.to_bands ~rows:4 ~cols:5 merged with
  | [ b ] ->
      check_true "merged covers both"
        (b.Bands.col_lo = 0 && b.Bands.col_hi = 5 && b.Bands.row_lo = 0
        && b.Bands.row_hi = 4)
  | l -> Alcotest.failf "expected 1 merged band, got %d" (List.length l));
  (* containment collapses *)
  let contained =
    Bands.of_bands [ band ~cols:(0, 6) ~rows:(0, 6); band ~cols:(2, 3) ~rows:(1, 2) ]
  in
  check_true "contained band absorbed"
    (List.length (Bands.to_bands ~rows:6 ~cols:6 contained) = 1);
  (* to_bands concretizes full and clips to the shape *)
  (match Bands.to_bands ~rows:3 ~cols:7 Bands.full with
  | [ b ] ->
      check_true "full concretizes to the dense band"
        (b.Bands.col_lo = 0 && b.Bands.col_hi = 7 && b.Bands.row_lo = 0
        && b.Bands.row_hi = 3)
  | _ -> Alcotest.fail "full should concretize to one band");
  check_true "zero shape concretizes to nothing"
    (Bands.to_bands ~rows:0 ~cols:7 Bands.full = [])

let test_bands_queries () =
  let t =
    Bands.of_bands [ band ~cols:(1, 3) ~rows:(0, 2); band ~cols:(6, 8) ~rows:(1, 4) ]
  in
  check_true "col_intervals are the live columns"
    (Bands.col_intervals ~cols:10 t = [ (1, 3); (6, 8) ]);
  check_true "col_intervals clip to the width"
    (Bands.col_intervals ~cols:7 t = [ (1, 3); (6, 7) ]);
  check_true "row_intervals keep only bands meeting the rows"
    (Bands.row_intervals ~lo:0 ~hi:1 ~cols:10 t = [ (1, 3) ]);
  check_true "row_intervals see both when rows overlap both"
    (Bands.row_intervals ~lo:1 ~hi:2 ~cols:10 t = [ (1, 3); (6, 8) ]);
  check_true "full yields the dense interval"
    (Bands.col_intervals ~cols:10 Bands.full = [ (0, 10) ]);
  check_true "mem inside" (Bands.mem t ~row:1 ~col:2);
  check_true "mem outside col" (not (Bands.mem t ~row:1 ~col:4));
  check_true "mem outside row" (not (Bands.mem t ~row:3 ~col:2));
  let dead = Bands.dead_cols ~cols:10 t in
  check_true "dead_cols marks exactly the uncovered columns"
    (dead = [| true; false; false; true; true; true; false; false; true; true |]);
  (* area counts overlaps once *)
  let overlapping =
    Bands.of_bands [ band ~cols:(0, 4) ~rows:(0, 3); band ~cols:(2, 6) ~rows:(1, 5) ]
  in
  (* rows 0: cols 0-4 (4); rows 1-2: cols 0-6 (12); rows 3-4: cols 2-6 (8) *)
  Alcotest.(check int) "area" 24 (Bands.area ~rows:5 ~cols:6 overlapping);
  Helpers.check_float "density" (24.0 /. 30.0)
    (Bands.density ~rows:5 ~cols:6 overlapping);
  Helpers.check_float "full density" 1.0 (Bands.density ~rows:5 ~cols:6 Bands.full);
  Alcotest.(check int) "empty area" 0 (Bands.area ~rows:5 ~cols:6 Bands.empty)

let test_bands_transforms () =
  let t = Bands.of_bands [ band ~cols:(2, 5) ~rows:(1, 3) ] in
  check_true "shift_rows translates"
    (Bands.row_intervals ~lo:11 ~hi:12 ~cols:9 (Bands.shift_rows 10 t) = [ (2, 5) ]);
  check_true "restrict_rows rebases"
    (Bands.row_intervals ~lo:0 ~hi:1 ~cols:9 (Bands.restrict_rows ~lo:2 ~hi:3 t)
    = [ (2, 5) ]);
  check_true "restrict_rows outside is empty"
    (Bands.is_empty (Bands.restrict_rows ~lo:5 ~hi:9 t));
  check_true "widen_rows covers all rows"
    (Bands.row_intervals ~lo:99 ~hi:100 ~cols:9 (Bands.widen_rows ~rows:100 t)
    = [ (2, 5) ]);
  (* block_rows: rows [1,3) of 2-scalar blocks = blocks [0,2) = rows [0,6)
     of 3-scalar blocks *)
  (match Bands.to_bands ~rows:6 ~cols:9 (Bands.block_rows ~bin:2 ~bout:3 t) with
  | [ b ] -> check_true "block_rows rescales" (b.Bands.row_lo = 0 && b.Bands.row_hi = 6)
  | _ -> Alcotest.fail "block_rows should keep one band");
  check_true "union with full is full"
    (Bands.is_full (Bands.union t Bands.full));
  check_true "add to full stays full"
    (Bands.is_full (Bands.add Bands.full (band ~cols:(0, 1) ~rows:(0, 1))));
  (* remap: drop column 3, shift 4 to 3 *)
  let t = Bands.of_bands [ band ~cols:(2, 5) ~rows:(0, 2) ] in
  let remapped =
    Bands.remap_cols
      (fun c -> if c = 3 then None else if c > 3 then Some (c - 1) else Some c)
      t
  in
  check_true "remap_cols rewrites the range"
    (Bands.col_intervals ~cols:9 remapped = [ (2, 4) ]);
  check_true "remap_cols dropping everything empties"
    (Bands.is_empty (Bands.remap_cols (fun _ -> None) t))

(* Over-approximation property: whatever of_bands / union / add do
   (merging, capping into bounding boxes), every point of every input
   band stays covered. *)
let test_bands_over_approximation () =
  let rng = Rng.create 4242 in
  for _ = 1 to 50 do
    let nbands = 1 + Rng.int rng 200 in
    let bs =
      List.init nbands (fun _ ->
          let col_lo = Rng.int rng 40 and row_lo = Rng.int rng 40 in
          band
            ~cols:(col_lo, col_lo + 1 + Rng.int rng 8)
            ~rows:(row_lo, row_lo + 1 + Rng.int rng 8))
    in
    let t = Bands.of_bands bs in
    List.iter
      (fun b ->
        for r = b.Bands.row_lo to b.Bands.row_hi - 1 do
          for c = b.Bands.col_lo to b.Bands.col_hi - 1 do
            if not (Bands.mem t ~row:r ~col:c) then
              Alcotest.failf "normalization lost point (%d, %d)" r c
          done
        done)
      bs
  done

(* ---------------- tile-skipping kernels ---------------- *)

(* A k x n matrix whose only nonzero columns are the live intervals —
   plus signed zeros in the dead ones, which the contract allows the
   skipped tiles to canonicalize away only in the *output* (the operand
   is never written). *)
let banded_right rng k n live =
  let b = Mat.create k n in
  List.iter
    (fun (lo, hi) ->
      for i = 0 to k - 1 do
        for j = lo to hi - 1 do
          b.Mat.data.((i * n) + j) <- Rng.uniform rng (-1.0) 1.0
        done
      done)
    live;
  b

let cols_shapes =
  [
    ((1, 1, 1), [ (0, 1) ]);
    ((3, 4, 8), [ (0, 2); (5, 7) ]);
    ((7, 13, 121), [ (0, 17); (40, 41); (90, 121) ]);
    ((24, 24, 344), [ (100, 200) ]);
    ((9, 17, 240), []);
    ((5, 6, 64), [ (0, 64) ]);
  ]

let test_cols_kernels_bit_identity () =
  let rng = Rng.create 555 in
  List.iter
    (fun ((m, k, n), live) ->
      let a = Mat.random_gaussian rng m k 1.0 in
      let b = banded_right rng k n live in
      let label = Printf.sprintf "%dx%dx%d" m k n in
      let dense = Mat.matmul a b in
      bits_equal_mats (label ^ " cols") dense (Mat.matmul ~cols:live a b);
      let at = Mat.transpose a in
      bits_equal_mats (label ^ " ta cols") dense (Mat.matmul_ta ~cols:live at b);
      let bt = Mat.transpose b in
      bits_equal_mats (label ^ " tb cols") dense (Mat.matmul_tb ~cols:live a bt);
      check_true (label ^ " bigmat cols")
        (Bigmat.equal_bits_mat
           (Bigmat.matmul ~cols:live (Bigmat.of_mat a) (Bigmat.of_mat b))
           dense);
      check_true (label ^ " bigmat ta cols")
        (Bigmat.equal_bits_mat
           (Bigmat.matmul_ta ~cols:live (Bigmat.of_mat at) (Bigmat.of_mat b))
           dense);
      check_true (label ^ " bigmat tb cols")
        (Bigmat.equal_bits_mat
           (Bigmat.matmul_tb ~cols:live (Bigmat.of_mat a) (Bigmat.of_mat bt))
           dense))
    cols_shapes

(* Same contract through a domain pool; runs in the final "pooled"
   suite (after every fork-based test — see serial_l2_report). *)
let test_cols_kernels_pooled () =
  let rng = Rng.create 556 in
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  List.iter
    (fun ((m, k, n), live) ->
      let a = Mat.random_gaussian rng m k 1.0 in
      let b = banded_right rng k n live in
      bits_equal_mats
        (Printf.sprintf "%dx%dx%d cols pool" m k n)
        (Mat.matmul a b)
        (Mat.matmul ~pool ~cols:live a b))
    cols_shapes

(* ---------------- dead-symbol compaction ---------------- *)

(* Zero the listed eps columns of z and return it with the matching
   banded occupancy (one band per live column over all rows). *)
let kill_columns z dead =
  let nv = Z.num_vars z and ne = Z.num_eps z in
  List.iter
    (fun j ->
      for v = 0 to nv - 1 do
        z.Z.eps.Mat.data.((v * ne) + j) <- 0.0
      done)
    dead;
  let live =
    List.filter (fun j -> not (List.mem j dead)) (List.init ne Fun.id)
  in
  Z.with_eps_occ
    (Bands.of_bands
       (List.map (fun j -> band ~cols:(j, j + 1) ~rows:(0, nv)) live))
    z

let test_compact_drops_dead () =
  if not Bands.enabled then ()
  else begin
    let rng = Rng.create 909 in
    let z = Helpers.random_zonotope ~vrows:3 ~vcols:4 ~ep:2 ~ee:7 rng in
    let zs = kill_columns z [ 1; 4; 5 ] in
    let before = Z.bounds zs in
    check_true "density dropped below 1" (Z.eps_density zs < 1.0);
    let zc = Z.compact zs in
    Alcotest.(check int) "dead columns dropped" 4 (Z.num_eps zc);
    bits_equal_mats "compaction keeps the bounds (lo)" before.Interval.Imat.lo
      (Z.bounds zc).Interval.Imat.lo;
    bits_equal_mats "compaction keeps the bounds (hi)" before.Interval.Imat.hi
      (Z.bounds zc).Interval.Imat.hi;
    (* the surviving columns keep their coefficients bit for bit *)
    let ne = Z.num_eps zs in
    let live = [ 0; 2; 3; 6 ] in
    List.iteri
      (fun j' j ->
        for v = 0 to Z.num_vars zs - 1 do
          let old_c = zs.Z.eps.Mat.data.((v * ne) + j)
          and new_c = zc.Z.eps.Mat.data.((v * 4) + j') in
          if Int64.bits_of_float old_c <> Int64.bits_of_float new_c then
            Alcotest.failf "column %d -> %d: %h <> %h" j j' old_c new_c
        done)
      live;
    (* a full occupancy is not compactable *)
    let zf = Z.with_eps_occ Bands.full zs in
    Alcotest.(check int) "full occ: compact is the identity" ne
      (Z.num_eps (Z.compact zf));
    (* idempotent *)
    Alcotest.(check int) "compact is idempotent" 4 (Z.num_eps (Z.compact zc))
  end

(* The skip inside Reduction (scores / fold) is claimed bit-identical:
   a banded input must give the exact bounds of the same matrices run
   with occupancy information withheld. *)
let test_decorrelate_sparse_matches_dense () =
  let rng = Rng.create 911 in
  let z = Helpers.random_zonotope ~vrows:4 ~vcols:5 ~ep:3 ~ee:24 rng in
  let zs = kill_columns z [ 2; 3; 9; 10; 11; 17; 20; 21; 22; 23 ] in
  let zd = Z.with_eps_occ Bands.full zs in
  check_true "scores agree bitwise"
    (Array.for_all2
       (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
       (Deept.Reduction.scores zs) (Deept.Reduction.scores zd));
  let reduce z0 =
    let ctx = Z.ctx () in
    ignore (Z.alloc_eps ctx (Z.num_eps z0));
    Deept.Reduction.decorrelate_min_k ctx z0 6
  in
  let rs = reduce zs and rd = reduce zd in
  bits_equal_mats "reduced bounds lo" (Z.bounds rd).Interval.Imat.lo
    (Z.bounds rs).Interval.Imat.lo;
  bits_equal_mats "reduced bounds hi" (Z.bounds rd).Interval.Imat.hi
    (Z.bounds rs).Interval.Imat.hi;
  if Bands.enabled then
    check_true "banded reduction is no wider than the dense one"
      (Z.num_eps rs <= Z.num_eps rd)

(* Branch refinement on an L2 ball: the branch builder compacts each
   branch after restrict_symbol, and the full report must stay
   bit-identical across the serial, forked and domain-pool wave
   runners. The forked leg lives here; the domain-pool leg runs in the
   final "pooled" suite because OCaml's Unix.fork refuses to run once
   any domain has been spawned, so every fork-based test must precede
   every Dpool / shared_pool test in this binary. *)
let imprecise_l2_query () =
  let program = Helpers.tiny_program ~layers:2 43 in
  let x = Mat.random_gaussian (Rng.create 143) 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let found = ref None in
  List.iter
    (fun radius ->
      if !found = None then begin
        let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius in
        if
          Deept.Certify.certify_v C.fast program region ~true_class:pred
          = V.Unknown V.Imprecise
        then found := Some region
      end)
    [ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0 ];
  match !found with
  | Some region -> (program, region, pred)
  | None -> Alcotest.fail "no imprecise L2 radius found on the sweep"

let serial_l2_report () =
  let program, region, pred = imprecise_l2_query () in
  let serial =
    Deept.Brefine.certify_v ~wave:Deept.Psearch.serial_wave
      (C.with_refine (Some C.default_refine) C.fast)
      program region ~true_class:pred
  in
  check_true "symbols were split" (serial.Deept.Brefine.split <> []);
  (program, region, pred, serial)

let test_branch_compaction_fork () =
  let program, region, pred, serial = serial_l2_report () in
  let module B = Deept.Brefine in
  let forked =
    B.certify_v
      ~wave:
        (Deept.Psearch.fork_wave ~crash:(fun r ->
             { B.bverdict = V.Unknown r; props = 0; bdepth = 0 }))
      (C.with_refine (Some C.default_refine) C.fast)
      program region ~true_class:pred
  in
  check_true "serial = fork (full report)" (serial = forked)

let test_branch_compaction_dpool () =
  let program, region, pred, serial = serial_l2_report () in
  match Deept.Propagate.shared_pool 4 with
  | None -> ()
  | Some dp ->
      let pooled =
        Deept.Brefine.certify_v ~wave:(Deept.Psearch.dpool_wave dp)
          (C.with_refine (Some C.default_refine) C.fast)
          program region ~true_class:pred
      in
      check_true "serial = dpool (full report)" (serial = pooled)

(* restrict_symbol itself: the minted eps column is live (one-hot band),
   so compaction keeps it; widths are unchanged. *)
let test_restrict_minted_column_is_live () =
  if not Bands.enabled then ()
  else begin
    let rng = Rng.create 31 in
    let x = Mat.random_gaussian rng 3 4 0.7 in
    let parent = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.05 in
    let child = Z.restrict_symbol parent (Z.Phi 1) Z.Lower in
    Alcotest.(check int) "one minted column"
      (Z.num_eps parent + 1) (Z.num_eps child);
    Alcotest.(check int) "compaction keeps the live minted column"
      (Z.num_eps child)
      (Z.num_eps (Z.compact child))
  end

(* ---------------- Banded shared-memory transport ---------------- *)

let test_shm_banded_roundtrip () =
  if not (Shm.available ()) then ()
  else begin
    let a = Shm.create ~floats:4096 in
    let rng = Rng.create 77 in
    let live = [ (0, 3); (10, 14) ] in
    let m = banded_right rng 8 20 live in
    (* a signed dead zero: unpacking must canonicalize it to +0.0 *)
    m.Mat.data.(5) <- -0.0;
    let d = Shm.pack_mat ~threshold:0 ~cols:live a m in
    (match d with
    | Shm.Banded { rows; cols; intervals; _ } ->
        check_true "banded shape" (rows = 8 && cols = 20 && intervals = live)
    | Shm.Inline _ | Shm.Block _ -> Alcotest.fail "expected a Banded descriptor");
    Alcotest.(check int) "desc_floats counts only live columns" (8 * 7)
      (Shm.desc_floats d);
    let u = Shm.unpack_mat a d in
    check_true "unpacked dims" (Mat.dims u = (8, 20));
    (* live columns bit-identical; dead ones canonical +0.0 *)
    let zero_bits = Int64.bits_of_float 0.0 in
    for i = 0 to 7 do
      for j = 0 to 19 do
        let got = Int64.bits_of_float u.Mat.data.((i * 20) + j) in
        let want =
          if List.exists (fun (lo, hi) -> lo <= j && j < hi) live then
            Int64.bits_of_float m.Mat.data.((i * 20) + j)
          else zero_bits
        in
        if got <> want then Alcotest.failf "entry (%d, %d) wrong" i j
      done
    done;
    check_true "view_mat scatters the same values"
      (Bigmat.equal_bits_mat (Shm.view_mat a d) u);
    Shm.free_mat a d;
    check_true "free restores the arena" (Shm.avail a = Shm.capacity a);
    (* full-width occupancy keeps the plain Block encoding *)
    (match Shm.pack_mat ~threshold:0 ~cols:[ (0, 20) ] a m with
    | Shm.Block _ as d -> Shm.free_mat a d
    | Shm.Inline _ | Shm.Banded _ ->
        Alcotest.fail "full-width cols should stay a Block");
    (* malformed intervals are rejected *)
    List.iter
      (fun bad ->
        match Shm.pack_mat ~threshold:0 ~cols:bad a m with
        | _ -> Alcotest.failf "bad intervals accepted"
        | exception Invalid_argument _ -> ())
      [ [ (10, 14); (0, 3) ]; [ (0, 5); (4, 8) ]; [ (-1, 2) ]; [ (18, 22) ] ]
  end

(* A zonotope whose eps block rides the Banded encoding: occupancy set,
   dead columns zero (one of them -0.0). *)
let banded_zono rng ~nv ~ne ~live =
  let center = Mat.random_gaussian rng 1 nv 0.5 in
  let eps = banded_right rng nv ne live in
  eps.Mat.data.(ne - 1) <- -0.0;
  Z.make ~p:Lp.Linf ~center ~phi:(Mat.create nv 0) ~eps
  |> Z.with_eps_occ
       (Bands.of_bands
          (List.map (fun (lo, hi) -> band ~cols:(lo, hi) ~rows:(0, nv)) live))

let test_xfer_banded_roundtrip () =
  if not (Shm.available ()) || not Bands.enabled then ()
  else begin
    let arena = Shm.create ~floats:65536 in
    let rng = Rng.create 88 in
    let live = [ (0, 40); (100, 120) ] in
    let z = banded_zono rng ~nv:32 ~ne:128 ~live in
    let d = Deept.Xfer.pack_zono ~arena ~threshold:0 z in
    (match d.Deept.Xfer.eps with
    | Shm.Banded { intervals; _ } ->
        check_true "eps shipped banded" (intervals = live)
    | Shm.Inline _ | Shm.Block _ ->
        Alcotest.fail "sparse eps should ride the Banded encoding");
    Alcotest.(check int) "only live eps floats in the arena" (32 * 60)
      (Shm.desc_floats d.Deept.Xfer.eps);
    let u = Deept.Xfer.unpack_zono ~arena d in
    bits_equal_mats "bounds lo" (Z.bounds z).Interval.Imat.lo
      (Z.bounds u).Interval.Imat.lo;
    bits_equal_mats "bounds hi" (Z.bounds z).Interval.Imat.hi
      (Z.bounds u).Interval.Imat.hi;
    check_true "occupancy rode along"
      (Bands.col_intervals ~cols:128 u.Z.eps_occ
      = Bands.col_intervals ~cols:128 z.Z.eps_occ);
    (* dead -0.0 canonicalized, live bits preserved *)
    check_true "dead -0.0 unpacked as +0.0"
      (Int64.bits_of_float u.Z.eps.Mat.data.(127) = Int64.bits_of_float 0.0);
    Deept.Xfer.free_zono arena d;
    check_true "arena whole again" (Shm.avail arena = Shm.capacity arena)
  end

let test_banded_sigkill_drill () =
  if not (Shm.available ()) || not Bands.enabled then ()
  else begin
    let model = Helpers.tiny_model 3 in
    let program = Nn.Model.to_ir model in
    let x = Nn.Model.embed_tokens model [| 1; 2; 3; 4 |] in
    let nv = Mat.rows x * Mat.cols x in
    let live = [ (0, 200); (1000, 1200) ] in
    let jobs =
      List.init 3 (fun i ->
          let rng = Rng.create (190 + i) in
          let eps = Mat.create nv 4200 in
          List.iter
            (fun (lo, hi) ->
              for v = 0 to nv - 1 do
                for j = lo to hi - 1 do
                  eps.Mat.data.((v * 4200) + j) <- Rng.uniform rng (-5e-4) 5e-4
                done
              done)
            live;
          let z =
            Z.make ~p:Lp.Linf ~center:(Mat.copy x) ~phi:(Mat.create nv 0) ~eps
            |> Z.with_eps_occ
                 (Bands.of_bands
                    (List.map
                       (fun (lo, hi) -> band ~cols:(lo, hi) ~rows:(0, nv))
                       live))
          in
          (i, z))
    in
    let arena = Shm.create ~floats:(1 lsl 20) in
    let packed =
      List.map
        (fun (id, z) -> (id, Deept.Xfer.pack_zono ~arena ~threshold:0 z))
        jobs
    in
    List.iter
      (fun (id, d) ->
        match d.Deept.Xfer.eps with
        | Shm.Banded _ -> ()
        | Shm.Inline _ | Shm.Block _ ->
            Alcotest.failf "job %d eps did not ride the Banded encoding" id)
      packed;
    (* Job 1's worker dies by SIGKILL mid-batch. Only the parent owns
       the allocator, so the death cannot corrupt the arena. *)
    let worker id desc =
      if id = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
      Deept.Certify.certify_margin C.fast program
        (Deept.Xfer.unpack_zono ~arena desc)
        ~true_class:0
    in
    let pool = C.pool ~workers:2 ~max_retries:0 () in
    let rs = Deept.Supervisor.run ~pool ~worker packed in
    List.iter
      (fun r ->
        match (r.Deept.Supervisor.job, r.Deept.Supervisor.outcome) with
        | 1, Ok _ -> Alcotest.fail "killed job reported success"
        | 1, Error _ -> ()
        | _, Ok _ -> ()
        | j, Error _ -> Alcotest.failf "job %d failed unexpectedly" j)
      rs;
    List.iter (fun (_, d) -> Deept.Xfer.free_zono arena d) packed;
    check_true "arena fully reclaimed after SIGKILL"
      (Shm.avail arena = Shm.capacity arena);
    (* The surviving margins equal the Marshal-transport ones bitwise. *)
    List.iter
      (fun r ->
        if r.Deept.Supervisor.job <> 1 then
          match r.Deept.Supervisor.outcome with
          | Ok m ->
              let z = List.assoc r.Deept.Supervisor.job jobs in
              let base =
                Deept.Certify.certify_margin C.fast program z ~true_class:0
              in
              if Int64.bits_of_float m <> Int64.bits_of_float base then
                Alcotest.failf "job %d margin differs from Marshal path"
                  r.Deept.Supervisor.job
          | Error _ -> ())
      rs
  end

(* ---------------- dense-vs-sparse oracle ---------------- *)

(* A deterministic battery of real queries whose printed report must be
   bit-identical (%h margins, exact radii, verdict strings) whether the
   sparse machinery is on or off. The test re-executes this binary with
   DEEPT_NO_SPARSE=1 and TEST_SPARSE_REPORT=1 and diffs the output. *)
let report () =
  let b = Buffer.create 4096 in
  let pf fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let program = Helpers.tiny_program ~layers:2 43 in
  let x = Mat.random_gaussian (Rng.create 143) 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  List.iter
    (fun (pn, name) ->
      List.iter
        (fun radius ->
          let region = Deept.Region.lp_ball ~p:pn x ~word:1 ~radius in
          pf "%s r=%g fast margin %h verdict %s\n" name radius
            (Deept.Certify.certify_margin C.fast program region ~true_class:pred)
            (V.to_string
               (Deept.Certify.certify_v C.fast program region ~true_class:pred));
          pf "%s r=%g precise margin %h\n" name radius
            (Deept.Certify.certify_margin C.precise program region
               ~true_class:pred))
        [ 0.01; 0.05; 0.2 ])
    [ (Lp.L2, "l2"); (Lp.Linf, "linf"); (Lp.L1, "l1") ];
  (* heavy decorrelation exercises the reduction skip + compaction *)
  let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:0.05 in
  pf "reduction_k=8 margin %h\n"
    (Deept.Certify.certify_margin
       { C.fast with C.reduction_k = 8 }
       program region ~true_class:pred);
  pf "domains=2 margin %h\n"
    (Deept.Certify.certify_margin
       (C.with_domains 2 C.fast)
       program region ~true_class:pred);
  pf "radius fast l2 %h\n"
    (Deept.Certify.certified_radius C.fast program ~p:Lp.L2 x ~word:1
       ~true_class:pred ());
  (* branch-and-bound refinement through the engine *)
  let o =
    Deept.Engine.certify ~falsify_samples:0
      (C.with_refine (Some C.default_refine) C.fast)
      program region ~true_class:pred
  in
  pf "refine engine %s@%s attempts=%d\n"
    (V.to_string o.Deept.Engine.verdict)
    o.Deept.Engine.rung_name
    (List.length o.Deept.Engine.attempts);
  (* committed-model pins, when the checkout has them *)
  if Sys.file_exists "../data/small_3.model" then begin
    Zoo.data_dir := "../data";
    let entry = Zoo.entry "small_3" in
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "small_3" in
    let c = Zoo.corpus_of entry.Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let toks, label = List.nth c.Text.Corpus.test 0 in
    let x = Nn.Model.embed_tokens model toks in
    pf "small_3 fast l2 radius %.12g\n"
      (Deept.Certify.certified_radius C.fast program ~p:Lp.L2 x ~word:1
         ~true_class:label ());
    pf "small_3 precise certifies 0.17578125: %b\n"
      (Deept.Certify.certify C.precise program
         (Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.17578125)
         ~true_class:label);
    let edge = 0.0576171875 in
    let cfg =
      C.with_refine (Some (C.refine ~top_k:1 ~max_branches:2 ~depth:1 ())) C.precise
    in
    let r =
      Deept.Brefine.certify_v cfg program
        (Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:edge)
        ~true_class:label
    in
    pf "small_3 refined edge %s branches=%d depth=%d\n"
      (V.to_string r.Deept.Brefine.verdict)
      r.Deept.Brefine.branches r.Deept.Brefine.depth
  end;
  if Sys.file_exists "../data/sst_3.model" then begin
    Zoo.data_dir := "../data";
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "sst_3" in
    let c = Zoo.corpus_of (Zoo.entry "sst_3").Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let toks, label = List.nth c.Text.Corpus.test 0 in
    let x = Nn.Model.embed_tokens model toks in
    (* the paper's headline search on the recorded model: the same
       (idx 0, word 1, l2, 10 iters) query bench/radius.ml pins *)
    pf "sst_3 fast l2 radius %.17g\n"
      (Deept.Certify.certified_radius C.fast program ~p:Lp.L2 x ~word:1
         ~true_class:label ())
  end;
  Buffer.contents b

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

let test_report_identical_no_sparse () =
  let mine = report () in
  (* the committed pins must appear verbatim on the sparse path (the
     child-diff below then proves the dense path prints them too) *)
  if Sys.file_exists "../data/small_3.model" then
    List.iter
      (fun sub -> check_true sub (contains_sub mine sub))
      [
        "small_3 fast l2 radius 0.181640625";
        "small_3 precise certifies 0.17578125: true";
      ];
  if Sys.file_exists "../data/sst_3.model" then
    check_true "sst_3 pin" (contains_sub mine "sst_3 fast l2 radius 0.1474609375");
  let out = Filename.temp_file "sparse_report" ".txt" in
  Fun.protect ~finally:(fun () -> try Sys.remove out with Sys_error _ -> ())
  @@ fun () ->
  let env =
    Array.append
      (Array.of_seq
         (Seq.filter
            (fun s ->
              not
                (String.starts_with ~prefix:"DEEPT_NO_SPARSE=" s
                || String.starts_with ~prefix:"TEST_SPARSE_REPORT=" s))
            (Array.to_seq (Unix.environment ()))))
      [| "DEEPT_NO_SPARSE=1"; "TEST_SPARSE_REPORT=1" |]
  in
  let fd = Unix.openfile out [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin fd Unix.stderr
  in
  Unix.close fd;
  let _, status = Unix.waitpid [] pid in
  check_true "dense child exited cleanly" (status = Unix.WEXITED 0);
  let theirs = In_channel.with_open_text out In_channel.input_all in
  if mine <> theirs then
    Alcotest.failf
      "sparse and DEEPT_NO_SPARSE=1 reports differ:\n\
       --- sparse ---\n%s--- dense ---\n%s" mine theirs

let () =
  (* Child mode: print the report under whatever mode the environment
     selected and exit before alcotest parses argv. *)
  match Sys.getenv_opt "TEST_SPARSE_REPORT" with
  | Some "1" ->
      print_string (report ());
      exit 0
  | _ ->
      Alcotest.run "sparse"
        [
          ( "bands",
            [
              Alcotest.test_case "normalize + merge" `Quick test_bands_normalize;
              Alcotest.test_case "queries" `Quick test_bands_queries;
              Alcotest.test_case "transforms" `Quick test_bands_transforms;
              Alcotest.test_case "over-approximation" `Quick
                test_bands_over_approximation;
            ] );
          ( "kernels",
            [
              Alcotest.test_case "?cols bit identity" `Quick
                test_cols_kernels_bit_identity;
            ] );
          ( "compaction",
            [
              Alcotest.test_case "drops dead columns" `Quick
                test_compact_drops_dead;
              Alcotest.test_case "decorrelate sparse = dense" `Quick
                test_decorrelate_sparse_matches_dense;
              Alcotest.test_case "branch compaction serial = fork" `Quick
                test_branch_compaction_fork;
              Alcotest.test_case "restrict-minted column live" `Quick
                test_restrict_minted_column_is_live;
            ] );
          ( "transport",
            [
              Alcotest.test_case "shm banded roundtrip" `Quick
                test_shm_banded_roundtrip;
              Alcotest.test_case "xfer banded roundtrip" `Quick
                test_xfer_banded_roundtrip;
              Alcotest.test_case "banded sigkill drill" `Slow
                test_banded_sigkill_drill;
            ] );
          ( "oracle",
            [
              Alcotest.test_case "report sparse = DEEPT_NO_SPARSE" `Slow
                test_report_identical_no_sparse;
            ] );
          (* Domain-spawning tests last: Unix.fork (the transport drill,
             Psearch.fork_wave) refuses to run once any domain exists. *)
          ( "pooled",
            [
              Alcotest.test_case "?cols bit identity (dpool)" `Quick
                test_cols_kernels_pooled;
              Alcotest.test_case "branch compaction serial = dpool" `Quick
                test_branch_compaction_dpool;
            ] );
        ]
