(* The parallel kernel layer: bit-identity of the blocked and
   domain-parallel matmul kernels against the seed serial kernel, the
   determinism contract of Dpool, pool-parallel abstract transformers vs
   their serial runs, the partial top-k selection against the full-sort
   reference, and cooperative deadline preemption inside the pooled
   transformers. Also reachable as `dune build @kernels`. *)

open Tensor
module Z = Deept.Zonotope
module Lp = Deept.Lp

(* Bitwise equality: tolerance-free, distinguishes -0.0 from +0.0 and
   treats NaN as equal to itself — exactly the "byte-identical results"
   contract the pool promises. *)
let bits_equal_mat msg (a : Mat.t) (b : Mat.t) =
  Helpers.check_true (msg ^ ": dims") (Mat.dims a = Mat.dims b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.Mat.data.(i) then
        Alcotest.failf "%s: element %d differs bitwise: %h vs %h" msg i x
          b.Mat.data.(i))
    a.Mat.data

(* --- matmul kernels --------------------------------------------------- *)

(* Naive, blocked and blocked+parallel must agree bit-for-bit on every
   shape, including degenerate ones (empty, single row/col) and shapes
   that are not multiples of the register tile or the column tile. *)
let matmul_shapes =
  [ (0, 3, 4); (3, 0, 4); (3, 4, 0); (1, 1, 1); (1, 7, 129); (5, 1, 1);
    (2, 4, 8); (7, 13, 121); (24, 24, 344); (9, 17, 240); (33, 5, 2) ]

let test_matmul_bit_identity () =
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let rng = Rng.create 31 in
  List.iter
    (fun (m, k, n) ->
      let a = Mat.random_gaussian rng m k 1.0 in
      let b = Mat.random_gaussian rng k n 1.0 in
      let label = Printf.sprintf "%dx%dx%d" m k n in
      let reference = Mat.matmul_naive a b in
      bits_equal_mat (label ^ " blocked") reference (Mat.matmul a b);
      bits_equal_mat (label ^ " parallel") reference (Mat.matmul ~pool a b);
      let at = Mat.transpose a and bt = Mat.transpose b in
      bits_equal_mat (label ^ " ta") reference (Mat.matmul_ta at b);
      bits_equal_mat (label ^ " ta par") reference (Mat.matmul_ta ~pool at b);
      bits_equal_mat (label ^ " tb") reference (Mat.matmul_tb a bt);
      bits_equal_mat (label ^ " tb par") reference (Mat.matmul_tb ~pool a bt);
      bits_equal_mat (label ^ " gemm tt") reference
        (Mat.gemm ~pool ~ta:true ~tb:true at bt))
    matmul_shapes

(* The naive kernel skips zero left-hand entries, so a zero weight
   annihilates even an infinite coefficient (instead of producing
   0 * inf = NaN). The blocked kernels must preserve that. *)
let test_matmul_zero_times_inf () =
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let a = Mat.of_rows [| [| 1.0; 0.0; -2.0 |] |] in
  let b =
    Mat.of_rows [| [| 1.0; 2.0 |]; [| infinity; neg_infinity |]; [| 3.0; 4.0 |] |]
  in
  let reference = Mat.matmul_naive a b in
  Helpers.check_true "reference is finite"
    (Array.for_all Float.is_finite reference.Mat.data);
  bits_equal_mat "0*inf blocked" reference (Mat.matmul a b);
  bits_equal_mat "0*inf parallel" reference (Mat.matmul ~pool a b);
  bits_equal_mat "0*inf ta" reference (Mat.matmul_ta (Mat.transpose a) b)

(* --- Dpool ------------------------------------------------------------ *)

let test_dpool_covers_each_chunk_once () =
  let pool = Dpool.create ~force:true 3 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let n = 101 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Dpool.run_chunks pool ~nchunks:n (fun c -> Atomic.incr hits.(c));
  Array.iteri
    (fun c a ->
      if Atomic.get a <> 1 then
        Alcotest.failf "chunk %d ran %d times" c (Atomic.get a))
    hits;
  (* run_ranges covers [0, n) exactly once with ragged tail. *)
  let n = 97 in
  let hits = Array.init n (fun _ -> Atomic.make 0) in
  Dpool.run_ranges pool ~n ~chunk:8 (fun ~start ~stop ->
      for i = start to stop - 1 do
        Atomic.incr hits.(i)
      done);
  Array.iteri
    (fun i a ->
      if Atomic.get a <> 1 then
        Alcotest.failf "index %d covered %d times" i (Atomic.get a))
    hits

exception Boom

let test_dpool_exception_propagates () =
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  Alcotest.check_raises "chunk exception reaches the caller" Boom (fun () ->
      Dpool.run_chunks pool ~nchunks:64 (fun c ->
          if c = 17 then raise Boom));
  (* The pool must stay usable after a failed job. *)
  let total = Atomic.make 0 in
  Dpool.run_chunks pool ~nchunks:10 (fun _ -> Atomic.incr total);
  Helpers.check_true "pool alive after failure" (Atomic.get total = 10)

let test_dpool_nested_call_is_serial () =
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let inner_ran = Atomic.make 0 in
  Dpool.run_chunks pool ~nchunks:4 (fun _ ->
      (* Re-entrant dispatch from inside a chunk must degrade to serial
         execution instead of deadlocking on the pool's job slot. *)
      Dpool.run_chunks pool ~nchunks:3 (fun _ -> Atomic.incr inner_ran));
  Helpers.check_true "nested chunks all ran" (Atomic.get inner_ran = 12)

(* --- pooled abstract transformers vs serial --------------------------- *)

let zonotope_fields_equal msg (a : Z.t) (b : Z.t) =
  bits_equal_mat (msg ^ ": center") a.Z.center b.Z.center;
  bits_equal_mat (msg ^ ": phi") a.Z.phi b.Z.phi;
  bits_equal_mat (msg ^ ": eps") a.Z.eps b.Z.eps

(* Dot.matmul_zz under a 2-domain pool must equal the serial run down to
   the bit, including the fresh-symbol allocation order in the ctx. *)
let test_matmul_zz_pool_matches_serial () =
  let pool = Dpool.create ~force:true 2 in
  Fun.protect ~finally:(fun () -> Dpool.shutdown pool) @@ fun () ->
  let mk rng =
    ( Helpers.random_zonotope ~vrows:6 ~vcols:5 ~ep:3 ~ee:7 rng,
      Helpers.random_zonotope ~vrows:5 ~vcols:4 ~ep:3 ~ee:7 rng )
  in
  let run pool_opt =
    let rng = Rng.create 0xd07 in
    let a, b = mk rng in
    let ctx = Z.ctx () in
    ignore (Z.alloc_eps ctx 7);
    Z.set_pool ctx pool_opt;
    let out = Deept.Dot.matmul_zz ctx a b in
    (out, Z.ctx_symbols ctx)
  in
  let serial, serial_syms = run None in
  let pooled, pooled_syms = run (Some pool) in
  Helpers.check_true "same symbol count" (serial_syms = pooled_syms);
  zonotope_fields_equal "matmul_zz" serial pooled;
  let run_mul pool_opt =
    let rng = Rng.create 0xe1e in
    let x = Helpers.random_zonotope ~vrows:9 ~vcols:11 ~ep:3 ~ee:5 rng in
    let y = Helpers.random_zonotope ~vrows:9 ~vcols:11 ~ep:3 ~ee:5 rng in
    let ctx = Z.ctx () in
    ignore (Z.alloc_eps ctx 5);
    Z.set_pool ctx pool_opt;
    Deept.Dot.mul_zz ctx x y
  in
  zonotope_fields_equal "mul_zz" (run_mul None) (run_mul (Some pool))

(* End-to-end determinism: a full certification with domains=4 must give
   the exact margin of the serial run (the CI determinism gate). *)
let test_certify_domains_deterministic () =
  let program = Helpers.tiny_program ~layers:2 41 in
  let rng = Rng.create 43 in
  let x = Mat.random_gaussian rng 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.02 in
  let margin cfg = Deept.Certify.certify_margin cfg program region ~true_class:pred in
  let m1 = margin Deept.Config.fast in
  let m4 = margin (Deept.Config.with_domains 4 Deept.Config.fast) in
  if Int64.bits_of_float m1 <> Int64.bits_of_float m4 then
    Alcotest.failf "domains=1 margin %h <> domains=4 margin %h" m1 m4;
  let p1 = margin Deept.Config.precise in
  let p4 = margin (Deept.Config.with_domains 4 Deept.Config.precise) in
  if Int64.bits_of_float p1 <> Int64.bits_of_float p4 then
    Alcotest.failf "precise: domains=1 %h <> domains=4 %h" p1 p4

(* --- partial top-k selection ------------------------------------------ *)

(* Reference: the full sort the heap selection replaced. *)
let top_k_sorted s k =
  let w = Array.length s in
  let order = Array.init w (fun j -> j) in
  Array.sort
    (fun a b -> match compare s.(b) s.(a) with 0 -> compare a b | c -> c)
    order;
  let keep = Array.sub order 0 (min k w) in
  Array.sort compare keep;
  keep

let test_top_k_matches_sort () =
  let rng = Rng.create 77 in
  for trial = 1 to 300 do
    let w = 1 + Rng.int rng 60 in
    let k = Rng.int rng (w + 3) in
    (* Draw from a small discrete set so ties are common — tie-breaking
       towards the smaller index is the part a heap gets wrong easily. *)
    let s = Array.init w (fun _ -> float_of_int (Rng.int rng 5)) in
    let expected = top_k_sorted s k in
    let got = Deept.Reduction.top_k_indices s k in
    if expected <> got then
      Alcotest.failf "trial %d (w=%d k=%d): heap selection differs from sort"
        trial w k
  done;
  Helpers.check_true "k=0 empty" (Deept.Reduction.top_k_indices [| 1.0 |] 0 = [||]);
  Helpers.check_true "k>=w identity"
    (Deept.Reduction.top_k_indices [| 3.0; 1.0 |] 5 = [| 0; 1 |])

(* decorrelate_min_k is deterministic and built on the selection above, so
   equality of the keep set implies equality of the reduction; still check
   the reduced bounds enclose the exact ones (soundness of the fold). *)
let test_decorrelate_bounds_unchanged () =
  let rng = Rng.create 91 in
  let z = Helpers.random_zonotope ~vrows:4 ~vcols:6 ~ep:3 ~ee:40 rng in
  let s = Deept.Reduction.scores z in
  Helpers.check_true "keep set matches sorted reference"
    (top_k_sorted s 8 = Deept.Reduction.top_k_indices s 8);
  let reduce () =
    let ctx = Z.ctx () in
    ignore (Z.alloc_eps ctx 40);
    Deept.Reduction.decorrelate_min_k ctx z 8
  in
  let r1 = reduce () and r2 = reduce () in
  zonotope_fields_equal "decorrelate deterministic" r1 r2;
  let exact = Z.bounds z and reduced = Z.bounds r1 in
  for v = 0 to Z.num_vars z - 1 do
    Helpers.check_true "reduced lo <= exact lo"
      (reduced.Interval.Imat.lo.Mat.data.(v)
       <= exact.Interval.Imat.lo.Mat.data.(v) +. 1e-12);
    Helpers.check_true "reduced hi >= exact hi"
      (reduced.Interval.Imat.hi.Mat.data.(v)
       >= exact.Interval.Imat.hi.Mat.data.(v) -. 1e-12)
  done

(* --- cooperative deadline polls in the pooled transformers ------------ *)

let expired ctx = Z.set_deadline ctx (Some (Unix.gettimeofday () -. 1.0))

let test_softmax_preempted () =
  let rng = Rng.create 12 in
  let z = Helpers.random_zonotope ~vrows:4 ~vcols:4 ~ep:2 ~ee:3 ~scale:0.1 rng in
  (* sanity: same op completes with no deadline armed *)
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 3);
  ignore (Deept.Softmax_t.apply ~form:Deept.Config.Stable ~refine:false ctx z);
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 3);
  expired ctx;
  Alcotest.check_raises "softmax preempted mid-op"
    (Deept.Verdict.Abort Deept.Verdict.Timeout) (fun () ->
      ignore (Deept.Softmax_t.apply ~form:Deept.Config.Stable ~refine:false ctx z))

let test_elementwise_preempted () =
  let rng = Rng.create 13 in
  let z = Helpers.random_zonotope ~vrows:5 ~vcols:5 ~ep:2 ~ee:3 rng in
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 3);
  ignore (Deept.Elementwise.relu ctx z);
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 3);
  expired ctx;
  Alcotest.check_raises "elementwise preempted mid-op"
    (Deept.Verdict.Abort Deept.Verdict.Timeout) (fun () ->
      ignore (Deept.Elementwise.relu ctx z))

let () =
  Alcotest.run "kernels"
    [
      ( "matmul",
        [
          Alcotest.test_case "bit identity all kernels" `Quick
            test_matmul_bit_identity;
          Alcotest.test_case "zero annihilates inf" `Quick
            test_matmul_zero_times_inf;
        ] );
      ( "dpool",
        [
          Alcotest.test_case "each chunk exactly once" `Quick
            test_dpool_covers_each_chunk_once;
          Alcotest.test_case "exception propagates" `Quick
            test_dpool_exception_propagates;
          Alcotest.test_case "nested call serial" `Quick
            test_dpool_nested_call_is_serial;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "matmul_zz pool = serial" `Quick
            test_matmul_zz_pool_matches_serial;
          Alcotest.test_case "certify domains 1 = 4" `Slow
            test_certify_domains_deterministic;
        ] );
      ( "top-k",
        [
          Alcotest.test_case "heap matches sort" `Quick test_top_k_matches_sort;
          Alcotest.test_case "decorrelate bounds" `Quick
            test_decorrelate_bounds_unchanged;
        ] );
      ( "deadline",
        [
          Alcotest.test_case "softmax preempted" `Quick test_softmax_preempted;
          Alcotest.test_case "elementwise preempted" `Quick
            test_elementwise_preempted;
        ] );
    ]
