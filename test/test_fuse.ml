(* Fused-kernel PR suite: the affine-fusion pre-pass (structure,
   semantic equivalence, barriers, prefix sharing, the fault-injection
   exclusion, zoo no-op + pinned radii), the Bigarray-backed Bigmat
   kernels (bit-identity vs Mat on degenerate and production shapes),
   and the shared-memory transport (pack/unpack bit-exactness,
   Marshal-vs-shm margin bit-identity across forked workers, and a
   SIGKILL drill showing a dead worker leaves the arena reusable).
   Part of `dune runtest` and the @kernels alias. *)

open Tensor
module Lp = Deept.Lp
module Zonotope = Deept.Zonotope
module C = Deept.Config

let check_true = Helpers.check_true
let check_float = Helpers.check_float

(* Exact bit-level equality — the PR's claims are "bit-identical", not
   "close", so -0.0 vs 0.0 or a ulp of reassociation must fail. *)
let bits_equal_arrays msg (a : float array) (b : float array) =
  if Array.length a <> Array.length b then
    Alcotest.failf "%s: length %d vs %d" msg (Array.length a) (Array.length b);
  Array.iteri
    (fun i x ->
      if Int64.bits_of_float x <> Int64.bits_of_float b.(i) then
        Alcotest.failf "%s: entry %d: %h vs %h" msg i x b.(i))
    a

let bits_equal_mats msg (a : Mat.t) (b : Mat.t) =
  if Mat.dims a <> Mat.dims b then Alcotest.failf "%s: shape mismatch" msg;
  bits_equal_arrays msg a.Mat.data b.Mat.data

let bits_equal_zonos msg (a : Zonotope.t) (b : Zonotope.t) =
  bits_equal_mats (msg ^ " center") a.Zonotope.center b.Zonotope.center;
  bits_equal_mats (msg ^ " phi") a.Zonotope.phi b.Zonotope.phi;
  bits_equal_mats (msg ^ " eps") a.Zonotope.eps b.Zonotope.eps

(* --- program builders ------------------------------------------------ *)

let lin rng src din dout =
  Ir.Linear
    {
      src;
      w = Mat.random_gaussian rng din dout 0.5;
      b = Array.init dout (fun _ -> Rng.uniform rng (-0.2) 0.2);
    }

let cnorm ?(divide_std = false) rng src d =
  Ir.Center_norm
    {
      src;
      gamma = Array.init d (fun _ -> Rng.uniform rng 0.5 1.5);
      beta = Array.init d (fun _ -> Rng.uniform rng (-0.1) 0.1);
      divide_std;
    }

let prog d ops = { Ir.input_dim = d; ops = Array.of_list ops }

(* Linear -> mean-only Center_norm -> Linear: a maximal 3-op run. *)
let chain_program seed =
  let rng = Rng.create seed in
  let d = 4 in
  prog d [ lin rng 0 d d; cnorm rng 1 d; lin rng 2 d d ]

(* --- fusion: structure ----------------------------------------------- *)

let test_chain_structure () =
  let p = chain_program 7 in
  let fused, stats = Fuse.fuse p in
  check_true "one run" (stats.Fuse.runs = 1);
  check_true "three ops absorbed" (stats.Fuse.ops_fused = 3);
  check_true "single op left" (Array.length fused.Ir.ops = 1);
  (match fused.Ir.ops.(0) with
  | Ir.Linear { src = 0; _ } -> ()
  | _ -> Alcotest.fail "fused op is not a Linear from the input");
  check_true "fused program validates" (Result.is_ok (Ir.validate fused))

let test_chain_semantics () =
  let p = chain_program 11 in
  let fused = Fuse.fuse_program p in
  let rng = Rng.create 12 in
  (* Concrete forward: fused differs only by float reassociation. *)
  for _ = 1 to 20 do
    let x = Mat.random_gaussian rng 3 4 1.0 in
    let y0 = Nn.Forward.run p x and y1 = Nn.Forward.run fused x in
    check_true "concrete outputs close" (Mat.equal ~tol:1e-9 y0 y1)
  done;
  (* Abstract: output bounds agree to reassociation noise (the fused
     node is a single exact affine map — no new symbols, no loss). *)
  let x = Mat.random_gaussian rng 3 4 1.0 in
  let z = Deept.Region.lp_ball_all ~p:Lp.Linf x ~radius:0.01 in
  let b0 = Zonotope.bounds (Deept.Propagate.run C.fast p z) in
  let b1 = Zonotope.bounds (Deept.Propagate.run C.fast fused z) in
  check_true "abstract lo close"
    (Mat.equal ~tol:1e-9 b0.Interval.Imat.lo b1.Interval.Imat.lo);
  check_true "abstract hi close"
    (Mat.equal ~tol:1e-9 b0.Interval.Imat.hi b1.Interval.Imat.hi)

let test_barriers () =
  let rng = Rng.create 21 in
  let d = 4 in
  (* A value with two consumers (residual shape) blocks the run. *)
  let residual = prog d [ lin rng 0 d d; lin rng 1 d d; Ir.Add (1, 2) ] in
  check_true "two consumers: physically unchanged"
    (Fuse.fuse_program residual == residual);
  (* A non-affine op in the middle blocks the run. *)
  let relu = prog d [ lin rng 0 d d; Ir.Relu 1; lin rng 2 d d ] in
  check_true "relu barrier: physically unchanged"
    (Fuse.fuse_program relu == relu);
  (* divide_std normalization is not affine; mean-only is. *)
  let std = prog d [ lin rng 0 d d; cnorm ~divide_std:true rng 1 d; lin rng 2 d d ] in
  check_true "divide_std barrier: physically unchanged"
    (Fuse.fuse_program std == std);
  (* A run may end at the program output. *)
  let tail = prog d [ lin rng 0 d d; lin rng 1 d d ] in
  let fused, stats = Fuse.fuse tail in
  check_true "tail pair fuses" (Array.length fused.Ir.ops = 1 && stats.Fuse.runs = 1)

(* --- fusion: prefix sharing sees through fused nodes ------------------ *)

let test_prefix_sharing () =
  let rng = Rng.create 31 in
  let d = 4 in
  (* ViT-style shape: affine patch-embedding prefix (two Linears +
     positional encoding), then the non-affine body. *)
  let p =
    prog d
      [
        lin rng 0 d d;
        lin rng 1 d d;
        Ir.Positional { src = 2; pos = Mat.random_gaussian rng 6 d 0.3 };
        Ir.Relu 3;
        lin rng 4 d d;
      ]
  in
  check_true "unfused prefix covers the three affine ops"
    (Deept.Propagate.affine_prefix_len p = 3);
  let fused = Fuse.fuse_program p in
  check_true "the two Linears composed" (Array.length fused.Ir.ops = 4);
  let len = Deept.Propagate.affine_prefix_len fused in
  check_true "fused prefix still covers embedding + positional" (len = 2);
  let x = Mat.random_gaussian rng 3 d 1.0 in
  let z = Deept.Region.lp_ball_all ~p:Lp.Linf x ~radius:0.02 in
  let vals = Deept.Propagate.run_prefix C.fast fused z ~len in
  let full = Deept.Propagate.run C.fast fused z in
  let shared = Deept.Propagate.run ~prefix:(vals, len) C.fast fused z in
  bits_equal_zonos "shared prefix vs full run on fused program" full shared

(* --- fusion x fault injection ----------------------------------------- *)

let test_fuse_for_fault () =
  let p = chain_program 41 in
  let armed = { C.fast with C.fault = Some (C.fault 1 C.Inject_nan) } in
  check_true "fault armed: fusion disabled, program physically unchanged"
    (Deept.Propagate.fuse_for armed p == p);
  check_true "no fault: fusion applies"
    (Array.length (Deept.Propagate.fuse_for C.fast p).Ir.ops = 1)

(* --- fusion: zoo models ----------------------------------------------- *)

let test_zoo_noop () =
  (* Residual connections give every normalization two consumers, so
     fusion must not restructure a zoo-architecture program at all. *)
  let p = Helpers.tiny_program ~layers:2 5 in
  let fused, stats = Fuse.fuse p in
  check_true "no runs on transformer graph" (stats.Fuse.runs = 0);
  check_true "physically unchanged" (fused == p)

let test_small3_fused_pins () =
  if not (Sys.file_exists "../data/small_3.model") then ()
  else begin
    Zoo.data_dir := "../data";
    let entry = Zoo.entry "small_3" in
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "small_3" in
    let c = Zoo.corpus_of entry.Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let fused, stats = Fuse.fuse program in
    check_true "small_3 fusion is a structural no-op" (stats.Fuse.runs = 0);
    let toks, label = List.nth c.Text.Corpus.test 0 in
    let x = Nn.Model.embed_tokens model toks in
    let radius cfg prog =
      Deept.Certify.certified_radius cfg prog ~p:Lp.L2 x ~word:1
        ~true_class:label ()
    in
    (* Same dyadic pins as test_interp's unfused baselines. *)
    check_float ~tol:0.0 "fused deept-fast idx0 l2" 0.181640625
      (radius C.fast fused);
    check_float ~tol:0.0 "fused deept-precise idx0 l2" 0.17578125
      (radius C.precise fused)
  end

(* --- fused-vs-unfused radii on a fusible model ------------------------ *)

let test_fusible_radii_identical () =
  (* The zoo is a structural no-op, so exercise the radius pipeline on a
     graph that genuinely fuses: an MLP head of stacked affine ops. The
     bisection compares margins against 0, and the pinned dyadic radii
     must survive the (reassociated) fused weights. *)
  let rng = Rng.create 51 in
  let d = 6 in
  let p =
    prog d
      [ lin rng 0 d d; cnorm rng 1 d; lin rng 2 d 8; Ir.Relu 3; lin rng 4 8 2 ]
  in
  let fused = Fuse.fuse_program p in
  check_true "head chain fused" (Array.length fused.Ir.ops < Array.length p.Ir.ops);
  let x = Mat.random_gaussian rng 1 d 1.0 in
  let r prog =
    Deept.Certify.certified_radius C.fast prog ~p:Lp.Linf x ~word:0
      ~true_class:0 ~hi:0.1 ~iters:12 ()
  in
  (* Bisection radii are dyadic rationals; identical decisions at every
     probe give identical radii. Reassociation can in principle flip a
     margin sitting exactly on 0, so compare the radii themselves with
     tolerance 0 — on this fixed seed they agree exactly, which is the
     bit-compatibility the PR claims. *)
  check_float ~tol:0.0 "fused vs unfused radius" (r p) (r fused)

(* --- Bigmat: bit-identity vs Mat -------------------------------------- *)

let test_bigmat_kernels () =
  let rng = Rng.create 61 in
  let shapes = [ (0, 0, 0); (0, 5, 3); (4, 5, 0); (3, 0, 2); (1, 1, 1); (5, 7, 6); (24, 24, 344) ] in
  List.iter
    (fun (m, k, n) ->
      let a = Mat.random_gaussian rng m k 1.0 in
      let b = Mat.random_gaussian rng k n 1.0 in
      let name = Printf.sprintf "%dx%dx%d" m k n in
      check_true ("matmul " ^ name)
        (Bigmat.equal_bits_mat
           (Bigmat.matmul (Bigmat.of_mat a) (Bigmat.of_mat b))
           (Mat.matmul a b));
      let at = Mat.random_gaussian rng k m 1.0 in
      check_true ("matmul_ta " ^ name)
        (Bigmat.equal_bits_mat
           (Bigmat.matmul_ta (Bigmat.of_mat at) (Bigmat.of_mat b))
           (Mat.matmul_ta at b)))
    shapes;
  (* of_mat/to_mat round-trips bits. *)
  let m = Mat.random_gaussian rng 9 13 2.0 in
  bits_equal_mats "bigmat roundtrip" m (Bigmat.to_mat (Bigmat.of_mat m))

(* --- Shm: pack/unpack and the arena ----------------------------------- *)

let test_shm_roundtrip () =
  if not (Shm.available ()) then ()
  else begin
    let a = Shm.create ~floats:4096 in
    let rng = Rng.create 71 in
    let m = Mat.random_gaussian rng 16 32 1.0 in
    let d = Shm.pack_mat ~threshold:0 a m in
    (match d with
    | Shm.Block _ -> ()
    | Shm.Inline _ | Shm.Banded _ ->
        Alcotest.fail "threshold 0 should land in the arena as a Block");
    bits_equal_mats "unpack_mat" m (Shm.unpack_mat a d);
    check_true "view_mat reads the same bits in place"
      (Bigmat.equal_bits_mat (Shm.view_mat a d) m);
    Shm.free_mat a d;
    check_true "free restores the whole arena" (Shm.avail a = Shm.capacity a);
    (* Small blocks stay inline under the default threshold. *)
    (match Shm.pack_mat a m with
    | Shm.Inline _ -> ()
    | Shm.Block _ | Shm.Banded _ ->
        Alcotest.fail "512 floats must not cross default_threshold");
    (* A block larger than the arena degrades to Inline, never fails. *)
    (match Shm.pack_mat ~threshold:0 a (Mat.create 100 100) with
    | Shm.Inline _ -> ()
    | Shm.Block _ | Shm.Banded _ ->
        Alcotest.fail "oversized block should degrade to Inline")
  end

let test_xfer_roundtrip () =
  if not (Shm.available ()) then ()
  else begin
    let arena = Shm.create ~floats:8192 in
    let rng = Rng.create 81 in
    let z = Helpers.random_zonotope ~p:Lp.L2 ~vrows:3 ~vcols:4 ~ep:2 ~ee:5 rng in
    let d = Deept.Xfer.pack_zono ~arena ~threshold:0 z in
    bits_equal_zonos "xfer shm roundtrip" z (Deept.Xfer.unpack_zono ~arena d);
    Deept.Xfer.free_zono arena d;
    check_true "xfer free restores the arena" (Shm.avail arena = Shm.capacity arena);
    (* Without an arena the descriptor is self-contained. *)
    let d2 = Deept.Xfer.pack_zono z in
    bits_equal_zonos "xfer inline roundtrip" z (Deept.Xfer.unpack_zono d2)
  end

(* --- transport: Marshal vs shm across forked workers ------------------ *)

(* Regions wide enough that the eps block (32 x 4200 floats) crosses
   Shm.default_threshold and genuinely rides the arena. *)
let wide_jobs model =
  let x = Nn.Model.embed_tokens model [| 1; 2; 3; 4 |] in
  let nv = Mat.rows x * Mat.cols x in
  List.init 3 (fun i ->
      let rng = Rng.create (90 + i) in
      ( i,
        Zonotope.make ~p:Lp.Linf ~center:(Mat.copy x)
          ~phi:(Mat.create nv 0)
          ~eps:(Mat.random_gaussian rng nv 4200 5e-4) ))

let margin_bits results =
  List.sort (fun a b -> compare a.Deept.Supervisor.job b.Deept.Supervisor.job) results
  |> List.map (fun r ->
         match r.Deept.Supervisor.outcome with
         | Ok m -> (r.Deept.Supervisor.job, Int64.bits_of_float m)
         | Error _ -> Alcotest.failf "job %d failed" r.Deept.Supervisor.job)

let test_transport_bit_identity () =
  if not (Shm.available ()) then ()
  else begin
    let model = Helpers.tiny_model 3 in
    let program = Nn.Model.to_ir model in
    let jobs = wide_jobs model in
    let pool = C.pool ~workers:2 () in
    let arena = Shm.create ~floats:(1 lsl 20) in
    let base =
      Deept.Certify.certify_regions ~pool C.fast program ~true_class:0 jobs
    in
    let shm =
      Deept.Certify.certify_regions ~arena ~pool C.fast program ~true_class:0
        jobs
    in
    check_true "margins bit-identical across transports"
      (margin_bits base = margin_bits shm);
    check_true "certify_regions returned every block"
      (Shm.avail arena = Shm.capacity arena)
  end

let test_sigkill_leaves_arena_reusable () =
  if not (Shm.available ()) then ()
  else begin
    let model = Helpers.tiny_model 3 in
    let program = Nn.Model.to_ir model in
    let jobs = wide_jobs model in
    let arena = Shm.create ~floats:(1 lsl 20) in
    let packed =
      List.map (fun (id, z) -> (id, Deept.Xfer.pack_zono ~arena z)) jobs
    in
    (* Worker 's job 1 dies by SIGKILL mid-batch: only the parent owns
       the allocator, so a killed reader cannot corrupt the arena. *)
    let worker id desc =
      if id = 1 then Unix.kill (Unix.getpid ()) Sys.sigkill;
      Deept.Certify.certify_margin C.fast program
        (Deept.Xfer.unpack_zono ~arena desc)
        ~true_class:0
    in
    let pool = C.pool ~workers:2 ~max_retries:0 () in
    let rs = Deept.Supervisor.run ~pool ~worker packed in
    List.iter
      (fun r ->
        match (r.Deept.Supervisor.job, r.Deept.Supervisor.outcome) with
        | 1, Ok _ -> Alcotest.fail "killed job reported success"
        | 1, Error _ -> ()
        | _, Ok _ -> ()
        | j, Error _ -> Alcotest.failf "job %d failed unexpectedly" j)
      rs;
    (* The parent frees every block — including the killed job's — and
       the arena is whole again. *)
    List.iter (fun (_, d) -> Deept.Xfer.free_zono arena d) packed;
    check_true "arena fully reclaimed after SIGKILL"
      (Shm.avail arena = Shm.capacity arena);
    (* And still serves a clean batch with bit-identical margins. *)
    let again =
      Deept.Certify.certify_regions ~arena ~pool:(C.pool ~workers:2 ()) C.fast
        program ~true_class:0 jobs
    in
    let base =
      Deept.Certify.certify_regions C.fast program ~true_class:0 jobs
    in
    check_true "post-kill margins bit-identical"
      (margin_bits again = margin_bits base);
    check_true "arena reclaimed again" (Shm.avail arena = Shm.capacity arena)
  end

let () =
  Alcotest.run "fuse"
    [
      ( "fusion",
        [
          Alcotest.test_case "chain structure" `Quick test_chain_structure;
          Alcotest.test_case "chain semantics" `Quick test_chain_semantics;
          Alcotest.test_case "barriers" `Quick test_barriers;
          Alcotest.test_case "prefix sharing" `Quick test_prefix_sharing;
          Alcotest.test_case "fault exclusion" `Quick test_fuse_for_fault;
          Alcotest.test_case "zoo no-op" `Quick test_zoo_noop;
          Alcotest.test_case "small_3 pins" `Slow test_small3_fused_pins;
          Alcotest.test_case "fusible radii" `Quick test_fusible_radii_identical;
        ] );
      ( "bigmat",
        [ Alcotest.test_case "bit-identity vs Mat" `Quick test_bigmat_kernels ] );
      ( "shm",
        [
          Alcotest.test_case "mat roundtrip" `Quick test_shm_roundtrip;
          Alcotest.test_case "zonotope roundtrip" `Quick test_xfer_roundtrip;
        ] );
      ( "transport",
        [
          Alcotest.test_case "bit-identity" `Slow test_transport_bit_identity;
          Alcotest.test_case "sigkill drill" `Slow test_sigkill_leaves_arena_reusable;
        ] );
    ]
