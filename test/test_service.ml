(* The certification daemon: wire protocol round-trips, the admission
   queue, the per-model circuit breaker (walked on a fake clock), the
   result cache and its journal-backed rebuild, intake torn-tail
   recovery, and live daemon lifecycle drills — SIGTERM drains, SIGKILL
   mid-batch plus --resume re-runs exactly the unjournaled jobs, and
   cache hits are bit-identical to the cold run. *)

module P = Service.Protocol
module B = Service.Breaker
module Ca = Service.Cache
module Cl = Service.Client
module V = Deept.Verdict
module J = Deept.Journal

let check_true = Helpers.check_true

let tmp_path =
  let n = ref 0 in
  fun name ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "deept-service-test-%d-%d-%s" (Unix.getpid ()) !n name)

let with_tmp name f =
  let base = tmp_path name in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun ext -> try Sys.remove (base ^ ext) with Sys_error _ -> ())
        [ ""; ".sock"; ".jsonl"; ".jsonl.intake"; ".jsonl.tmp" ])
    (fun () -> f base)

(* ---------------- protocol round-trips ---------------- *)

(* Floats chosen as short binary fractions so the fixed-precision wire
   formats ([%.6f] latencies, [%.17g] radii) reproduce them exactly. *)
let sample_certify =
  P.certify ~word:3 ~p:Deept.Lp.Linf ~verifier:Deept.Config.Precise
    ~deadline_s:1.5 ~tag:42 ~drill_crash:true ~drill_stall_s:0.25 ~model:"m"
    ~radius:1e-9
    (P.Sentence "a b \"quoted\" back\\slash")

let test_request_round_trip () =
  List.iter
    (fun r ->
      match P.request_of_json (P.request_to_json r) with
      | Ok r' -> check_true "request round-trip" (r = r')
      | Error e -> Alcotest.failf "request decode failed: %s" e)
    [
      P.Certify (P.certify ~model:"sst_3" ~radius:0.02 (P.Index 7));
      P.Certify sample_certify;
      P.Stats;
      P.Shutdown;
    ]

let test_response_round_trip () =
  let result ?tag ?(cached = false) verdict =
    P.Result
      {
        P.id = 9;
        tag;
        verdict;
        rung = "fast";
        attempts = 2;
        retries = 1;
        wall_s = 0.125;
        cached;
      }
  in
  let responses =
    result V.Certified
    :: result ~tag:7 ~cached:true V.Falsified
    :: List.map (fun r -> result (V.Unknown r)) V.all_reasons
    @ [
        P.Overloaded { tag = Some 3; retry_after_s = 0.25 };
        P.Overloaded { tag = None; retry_after_s = 0.5 };
        P.Quarantined { tag = Some 1; model = "sst_3"; retry_after_s = 2.5 };
        P.Stats_r
          {
            P.uptime_s = 1.5;
            workers = 2;
            queue_depth = 3;
            inflight = 1;
            jobs_done = 10;
            shed = 4;
            cache_hits = 5;
            cache_misses = 6;
            cache_size = 6;
            worker_deaths = 1;
            draining = true;
            breakers = "sst_3=closed";
            rungs = "fast=2 precise=8 refine=1";
          };
        P.Error "no such model \"nope\"";
        P.Ok_ack;
      ]
  in
  List.iter
    (fun r ->
      match P.response_of_json (P.response_to_json r) with
      | Ok r' -> check_true "response round-trip" (r = r')
      | Error e -> Alcotest.failf "response decode failed: %s" e)
    responses

let test_intake_round_trip () =
  match P.intake_of_json (P.intake_to_json ~id:17 sample_certify) with
  | Ok (id, c) ->
      check_true "intake id" (id = 17);
      check_true "intake certify" (c = sample_certify)
  | Error e -> Alcotest.failf "intake decode failed: %s" e

let test_protocol_rejects () =
  List.iter
    (fun line ->
      check_true
        ("rejects " ^ line)
        (Result.is_error (P.request_of_json line)))
    [
      "";
      "not json";
      "{\"op\":\"certify\"}";
      (* missing model *)
      "{\"op\":\"certify\",\"model\":\"m\"}";
      (* missing radius *)
      "{\"op\":\"certify\",\"model\":\"m\",\"radius\":\"0.1\",\"norm\":\"3\"}";
      "{\"op\":\"frobnicate\"}";
    ];
  check_true "bad norm" (Result.is_error (P.norm_of_name "3"));
  check_true "bad verifier" (Result.is_error (P.verifier_of_name "fastest"));
  check_true "norm inf"
    (P.norm_of_name "inf" = Ok Deept.Lp.Linf
    && P.norm_name Deept.Lp.Linf = "inf")

(* ---------------- verdict strings (daemon rejections) -------------- *)

let contains ~sub s =
  let lp = String.length sub and le = String.length s in
  let rec go i = i + lp <= le && (String.sub s i lp = sub || go (i + 1)) in
  go 0

let test_verdict_of_string_res () =
  (* exhaustive over the constructors: V.all_reasons is the compiler's
     list, so a new reason cannot silently skip this round-trip *)
  List.iter
    (fun v ->
      match V.of_string_res (V.to_string v) with
      | Ok v' -> check_true ("round-trip " ^ V.to_string v) (V.equal v v')
      | Error e -> Alcotest.failf "of_string_res %s: %s" (V.to_string v) e)
    (V.Certified :: V.Falsified
    :: List.map (fun r -> V.Unknown r) V.all_reasons);
  (* every reason name round-trips through the reason codec too *)
  List.iter
    (fun r ->
      check_true ("reason round-trip " ^ V.reason_name r)
        (V.reason_of_string (V.reason_name r) = Some r))
    V.all_reasons;
  (* a known-shaped but unknown reason lists every valid reason name *)
  (match V.of_string_res "unknown(nope)" with
  | Ok _ -> Alcotest.fail "accepted unknown(nope)"
  | Error e ->
      List.iter
        (fun r ->
          check_true ("rejection lists " ^ V.reason_name r)
            (contains ~sub:(V.reason_name r) e))
        V.all_reasons);
  (* malformed strings are rejected with a message that explains the
     expected shapes, never accepted and never a bare parse crash *)
  List.iter
    (fun s ->
      match V.of_string_res s with
      | Ok v -> Alcotest.failf "accepted %S as %s" s (V.to_string v)
      | Error e ->
          check_true (Printf.sprintf "%S rejection explains itself" s)
            (String.length e > String.length s && contains ~sub:"expected" e))
    [
      "bogus"; ""; "Certified"; "CERTIFIED"; " certified"; "certified ";
      "unknown"; "unknown("; "unknown()"; "unknown(timeout"; "unknowntimeout)";
      "unknown(timeout))"; "falsified(oops)"; "unknown(TIMEOUT)";
    ]

(* ---------------- admission queue ---------------- *)

let test_jobq_shed_and_requeue () =
  let q = Service.Jobq.create ~cap:2 () in
  check_true "admit 1" (Service.Jobq.admit q 1);
  check_true "admit 2" (Service.Jobq.admit q 2);
  check_true "full at cap" (Service.Jobq.full q);
  check_true "sheds past cap" (not (Service.Jobq.admit q 3));
  check_true "shed counted" (Service.Jobq.shed q = 1);
  check_true "accepted counted" (Service.Jobq.accepted q = 2);
  check_true "depth" (Service.Jobq.depth q = 2);
  (* promised work (retries, resume) bypasses the cap and jumps the
     line *)
  Service.Jobq.requeue q 0;
  check_true "requeue is cap-exempt" (Service.Jobq.depth q = 3);
  check_true "requeue front-pushes"
    (Service.Jobq.pop q ~ready:(fun _ -> true) = Some 0);
  check_true "pop skips unready, keeps order"
    (Service.Jobq.pop q ~ready:(fun x -> x <> 1) = Some 2);
  check_true "skipped job stays"
    (Service.Jobq.pop q ~ready:(fun _ -> true) = Some 1);
  check_true "empty" (Service.Jobq.pop q ~ready:(fun _ -> true) = None)

let test_jobq_retry_after () =
  let q = Service.Jobq.create ~cap:8 () in
  check_true "floored at 50ms with no history"
    (Service.Jobq.retry_after q ~workers:2 >= 0.05);
  Service.Jobq.note_service q 1.0;
  check_true "ewma primed" (Service.Jobq.ewma_s q > 0.0);
  ignore (Service.Jobq.admit q 1);
  ignore (Service.Jobq.admit q 2);
  let hint = Service.Jobq.retry_after q ~workers:1 in
  check_true "hint scales with depth and ewma" (hint >= Service.Jobq.ewma_s q)

let test_jobq_default_hint () =
  (* before the first completed job there is no EWMA; the hint must come
     from the configured default, not a baked-in constant *)
  let q = Service.Jobq.create ~default_service_s:0.5 ~cap:4 () in
  check_true "unprimed hint uses the configured default"
    (abs_float (Service.Jobq.retry_after q ~workers:1 -. 0.5) < 1e-12);
  (* junk samples (cache-warm zeros, clock skew) must not fake-prime it *)
  Service.Jobq.note_service q 0.0;
  Service.Jobq.note_service q (-1.0);
  Service.Jobq.note_service q Float.nan;
  Service.Jobq.note_service q Float.infinity;
  check_true "junk samples discarded"
    (Service.Jobq.ewma_s q = 0.0
    && abs_float (Service.Jobq.retry_after q ~workers:1 -. 0.5) < 1e-12);
  Service.Jobq.note_service q 2.0;
  check_true "first real sample primes the ewma"
    (Service.Jobq.ewma_s q = 2.0);
  check_true "non-positive default rejected"
    (match Service.Jobq.create ~default_service_s:0.0 ~cap:1 () with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ---------------- circuit breaker (fake clock) ---------------- *)

let test_breaker_schedule () =
  let t = ref 0.0 in
  let b = B.create ~threshold:3 ~cooloff_s:5.0 ~now:(fun () -> !t) () in
  check_true "starts closed" (B.admit b = `Ok && B.state b = B.Closed);
  B.failure b;
  B.failure b;
  check_true "below threshold stays closed" (B.admit b = `Ok);
  B.success b;
  (* the streak must be consecutive: a success resets it *)
  B.failure b;
  B.failure b;
  check_true "reset by success" (B.admit b = `Ok && B.state b = B.Closed);
  B.failure b;
  check_true "opens at threshold" (B.state b = B.Open 5.0 && B.trips b = 1);
  (match B.admit b with
  | `Reject r -> check_true "full cooloff remaining" (r = 5.0)
  | `Ok -> Alcotest.fail "open breaker admitted");
  t := 2.0;
  (match B.admit b with
  | `Reject r -> check_true "cooloff counts down" (r = 3.0)
  | `Ok -> Alcotest.fail "open breaker admitted early");
  t := 5.5;
  check_true "half-opens past cooloff" (B.admit b = `Ok);
  check_true "half-open state" (B.state b = B.Half_open);
  (match B.admit b with
  | `Reject _ -> ()
  | `Ok -> Alcotest.fail "second probe admitted while one in flight");
  (* the probe's worker dies: reopen for a fresh cooloff *)
  B.failure b;
  check_true "probe death reopens" (B.state b = B.Open 10.5 && B.trips b = 2);
  t := 11.0;
  check_true "second probe" (B.admit b = `Ok);
  B.success b;
  check_true "probe success closes" (B.state b = B.Closed && B.admit b = `Ok);
  check_true "state names"
    (B.state_name b = "closed"
    && (B.create ~now:(fun () -> 0.0) () |> fun b' ->
        B.failure b';
        B.failure b';
        B.failure b';
        B.state_name b' = "open(5.0s)"))

(* ---------------- result cache ---------------- *)

let centry ?(rung = "fast") verdict = { Ca.verdict; rung; attempts = 1 }

let test_cache_key_discriminates () =
  let base = P.certify ~model:"m" ~radius:0.1 (P.Index 0) in
  let k = Ca.key ~digest:"d0" in
  let variants =
    [
      k base;
      Ca.key ~digest:"d1" base;
      k { base with P.input = P.Index 1 };
      k { base with P.input = P.Sentence "a b" };
      k { base with P.word = 2 };
      k { base with P.p = Deept.Lp.Linf };
      k { base with P.radius = 0.1 +. epsilon_float };
      k { base with P.verifier = Deept.Config.Precise };
      k { base with P.deadline_s = Some 1.0 };
    ]
  in
  check_true "every key component discriminates"
    (List.length (List.sort_uniq compare variants) = List.length variants);
  check_true "tags are not part of the key"
    (k { base with P.tag = Some 9 } = k base);
  check_true "keys are single-line"
    (not (String.contains (k { base with P.input = P.Sentence "a\nb" }) '\n'))

let test_cache_store_find () =
  let t = Ca.create () in
  let k = "k1" in
  check_true "miss" (Ca.find t k = None && Ca.misses t = 1);
  Ca.store t k (centry V.Certified);
  check_true "hit" (Ca.find t k = Some (centry V.Certified) && Ca.hits t = 1);
  Ca.store t "k2" (centry (V.Unknown V.Timeout));
  check_true "faults never cached" (Ca.size t = 1 && Ca.find t "k2" = None);
  Ca.store t "k3" (centry (V.Unknown V.Imprecise));
  check_true "imprecise is a real answer, cached" (Ca.find t "k3" <> None)

let test_cache_absorb () =
  let entry ?(verdict = V.Certified) ?(detail = "") job =
    { J.job; verdict; rung = "fast"; attempts = 1; retries = 0;
      wall_s = 0.1; detail }
  in
  let t = Ca.create () in
  Ca.absorb t
    [
      entry ~detail:"key=a|b|c" 0;
      entry ~detail:"key=a|b|c" 1 (* duplicate key: last wins, size 1 *);
      entry ~detail:"" 2 (* journaled without a key: skipped *);
      entry ~verdict:(V.Unknown V.Worker_crashed) ~detail:"key=x" 3
      (* fault: never cached *);
      entry ~verdict:V.Falsified ~detail:"key=y" 4;
    ];
  check_true "absorbed non-fault keyed entries" (Ca.size t = 2);
  check_true "finds absorbed"
    (Ca.find t "a|b|c" <> None && Ca.find t "y" <> None && Ca.find t "x" = None)

(* ---------------- supervisor backoff bounds ---------------- *)

let test_backoff_bounds () =
  let pool =
    Deept.Config.pool ~backoff_s:0.1 ~max_backoff_s:0.4 ()
  in
  for retries = 0 to 5 do
    let cap = Float.min (0.1 *. (2.0 ** float_of_int retries)) 0.4 in
    for _ = 1 to 20 do
      let d = Deept.Supervisor.backoff_delay pool ~retries in
      check_true
        (Printf.sprintf "retry %d delay %.3f in [%.3f, %.3f]" retries d
           (cap /. 2.0) cap)
        (d >= (cap /. 2.0) -. 1e-9 && d <= cap +. 1e-9)
    done
  done

(* ---------------- intake torn-tail recovery ---------------- *)

let test_intake_torn_tail () =
  with_tmp "intake" @@ fun path ->
  let c k = P.certify ~tag:k ~model:"m" ~radius:0.1 (P.Index k) in
  let oc = open_out path in
  output_string oc (P.intake_to_json ~id:1 (c 1) ^ "\n");
  output_string oc (P.intake_to_json ~id:2 (c 2) ^ "\n");
  (* the crash tore the third record mid-write *)
  output_string oc "{\"op\":\"certify\",\"model\":\"m\",\"ra";
  close_out oc;
  let got = Service.Server.load_intake ~log:(fun _ -> ()) path in
  check_true "torn tail dropped" (List.map fst got = [ 1; 2 ]);
  check_true "torn tail truncated away"
    (Service.Server.load_intake ~log:(fun _ -> ()) path = got);
  (* corruption that is NOT a torn tail must refuse, not guess *)
  let oc = open_out path in
  output_string oc "not an intake line\n";
  output_string oc (P.intake_to_json ~id:3 (c 3) ^ "\n");
  close_out oc;
  match Service.Server.load_intake ~log:(fun _ -> ()) path with
  | _ -> Alcotest.fail "accepted a corrupt non-final line"
  | exception Failure _ -> ()

(* ---------------- live daemon drills ---------------- *)

(* These need the committed sst_3 model; skip gracefully without it,
   like test_interp's bit-exactness pins. *)
let have_model = Sys.file_exists "../data/sst_3.model"

let start_daemon ?journal ?(resume = false) socket =
  match Unix.fork () with
  | 0 ->
      (try
         Zoo.data_dir := "../data";
         Service.Server.run
           (Service.Server.opts
              ~pool:(Deept.Config.pool ~workers:1 ())
              ?journal ~resume
              ~log:(fun _ -> ())
              ~socket [ "sst_3" ]);
         exit 0
       with _ -> exit 1)
  | pid -> pid

let stop_daemon pid =
  (* tolerate a daemon the test already killed and reaped *)
  try
    Unix.kill pid Sys.sigkill;
    ignore (Unix.waitpid [] pid)
  with Unix.Unix_error _ -> ()

let req ?drill_stall_s k =
  P.Certify
    (P.certify ?drill_stall_s ~tag:k ~model:"sst_3" ~radius:0.005
       (P.Index k))

let expect_result conn what =
  match Cl.recv conn with
  | Some (P.Result r) -> r
  | Some other ->
      Alcotest.failf "%s: unexpected %s" what (P.response_to_json other)
  | None -> Alcotest.failf "%s: daemon closed the connection" what

let test_daemon_cache_bit_identical () =
  if not have_model then () else
  with_tmp "cache" @@ fun base ->
  let socket = base ^ ".sock" in
  let pid = start_daemon socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let conn = Cl.connect_retry ~timeout_s:60.0 socket in
  Cl.send conn (req 0);
  let cold = expect_result conn "cold run" in
  check_true "cold run recomputes" (not cold.P.cached);
  Cl.send conn (req 0);
  let hot = expect_result conn "replay" in
  check_true "replay hits the cache" hot.P.cached;
  check_true "verdict bit-identical" (V.equal hot.P.verdict cold.P.verdict);
  check_true "rung and attempts identical"
    (hot.P.rung = cold.P.rung && hot.P.attempts = cold.P.attempts);
  (match Cl.request conn P.Stats with
  | Some (P.Stats_r s) ->
      (* jobs_done counts worker-executed jobs; the hit never ran one *)
      check_true "stats count the hit"
        (s.P.cache_hits = 1 && s.P.jobs_done = 1 && s.P.workers = 1)
  | _ -> Alcotest.fail "stats request failed");
  Cl.close conn

let test_daemon_sigterm_drains () =
  if not have_model then () else
  with_tmp "drain" @@ fun base ->
  let socket = base ^ ".sock" and journal = base ^ ".jsonl" in
  let pid = start_daemon ~journal socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let conn = Cl.connect_retry ~timeout_s:60.0 socket in
  (* two queued behind one in flight, then SIGTERM: all three must be
     journaled before the daemon exits *)
  for k = 0 to 2 do Cl.send conn (req ~drill_stall_s:0.2 k) done;
  ignore (expect_result conn "first result");
  Unix.kill pid Sys.sigterm;
  (match Unix.waitpid [] pid with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "daemon did not drain cleanly on SIGTERM");
  Cl.close conn;
  let final = J.load journal in
  check_true "every accepted job journaled before exit"
    (List.sort compare (List.map (fun e -> e.J.job) final)
    = List.init 3 (fun i -> i + 1));
  check_true "drained jobs have real verdicts"
    (List.for_all (fun e -> not (V.is_fault e.J.verdict)) final)

let test_daemon_sigkill_resume () =
  if not have_model then () else
  with_tmp "resume" @@ fun base ->
  let socket = base ^ ".sock" and journal = base ^ ".jsonl" in
  let pid = start_daemon ~journal socket in
  let conn = Cl.connect_retry ~timeout_s:60.0 socket in
  (* six jobs on one worker, each stalled 0.3s, SIGKILL after two
     results: several are intaken but not yet journaled *)
  let n = 6 in
  for k = 0 to n - 1 do Cl.send conn (req ~drill_stall_s:0.3 k) done;
  ignore (expect_result conn "result 1");
  ignore (expect_result conn "result 2");
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Cl.close conn;
  let intaken =
    List.map fst (Service.Server.load_intake ~log:(fun _ -> ()) (journal ^ ".intake"))
  in
  let journaled = List.map (fun e -> e.J.job) (J.load journal) in
  check_true "killed mid-batch" (List.length journaled < n);
  check_true
    (Printf.sprintf "work outstanding (%d intaken, %d journaled)"
       (List.length intaken) (List.length journaled))
    (List.length intaken > List.length journaled);
  (* restart with --resume, drain, and the journal must hold exactly
     the intaken ids — nothing lost, nothing run twice *)
  let pid2 = start_daemon ~journal ~resume:true socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  let conn2 = Cl.connect_retry ~timeout_s:60.0 socket in
  (match Cl.request conn2 P.Shutdown with
  | Some P.Ok_ack -> ()
  | _ -> Alcotest.fail "shutdown not acknowledged");
  Cl.close conn2;
  (match Unix.waitpid [] pid2 with
  | _, Unix.WEXITED 0 -> ()
  | _, _ -> Alcotest.fail "resumed daemon did not drain cleanly");
  let final = List.map (fun e -> e.J.job) (J.load journal) in
  check_true "exactly the intaken jobs, exactly once"
    (List.sort compare final = List.sort compare intaken)

let rid_req ~rid k =
  P.Certify (P.certify ~rid ~tag:k ~model:"sst_3" ~radius:0.004 (P.Index k))

let test_daemon_rid_dedup () =
  if not have_model then () else
  with_tmp "rid" @@ fun base ->
  let socket = base ^ ".sock" in
  let pid = start_daemon socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid) @@ fun () ->
  let conn = Cl.connect_retry ~timeout_s:60.0 socket in
  Cl.send conn (rid_req ~rid:"drill-a" 0);
  let first = expect_result conn "first delivery" in
  check_true "first delivery recomputes" (not first.P.cached);
  (* a blind resend of the same rid — the client pretending it lost the
     answer — must replay the original result, not run the job again *)
  Cl.send conn (rid_req ~rid:"drill-a" 0);
  let replay = expect_result conn "rid replay" in
  check_true "replay is marked cached" replay.P.cached;
  check_true "replay keeps the original id" (replay.P.id = first.P.id);
  check_true "replay keeps the verdict"
    (V.equal replay.P.verdict first.P.verdict);
  (* a fresh rid for the same work is a new logical request *)
  Cl.send conn (rid_req ~rid:"drill-b" 0);
  let other = expect_result conn "fresh rid" in
  check_true "fresh rid gets a fresh id" (other.P.id <> first.P.id);
  (match Cl.request conn P.Stats with
  | Some (P.Stats_r s) ->
      check_true "dedup never re-ran the job" (s.P.jobs_done = 1)
  | _ -> Alcotest.fail "stats request failed");
  Cl.close conn

let test_daemon_rid_dedup_resume () =
  if not have_model then () else
  with_tmp "ridresume" @@ fun base ->
  let socket = base ^ ".sock" and journal = base ^ ".jsonl" in
  let pid = start_daemon ~journal socket in
  let conn = Cl.connect_retry ~timeout_s:60.0 socket in
  Cl.send conn (rid_req ~rid:"drill-r0" 0);
  Cl.send conn (rid_req ~rid:"drill-r1" 1);
  let r0 = expect_result conn "result 0" in
  let r1 = expect_result conn "result 1" in
  Unix.kill pid Sys.sigkill;
  ignore (Unix.waitpid [] pid);
  Cl.close conn;
  (* the dedup tables are rebuilt from intake ⋈ journal on --resume, so
     a client retrying across the crash still gets a replay, not a
     duplicate execution *)
  let pid2 = start_daemon ~journal ~resume:true socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  let conn2 = Cl.connect_retry ~timeout_s:60.0 socket in
  Cl.send conn2 (rid_req ~rid:"drill-r0" 0);
  Cl.send conn2 (rid_req ~rid:"drill-r1" 1);
  let r0' = expect_result conn2 "replay 0 after resume" in
  let r1' = expect_result conn2 "replay 1 after resume" in
  List.iter2
    (fun (r : P.result_r) (r' : P.result_r) ->
      check_true "post-crash replay is cached" r'.P.cached;
      check_true "post-crash replay keeps the id" (r'.P.id = r.P.id);
      check_true "post-crash replay keeps the verdict"
        (V.equal r'.P.verdict r.P.verdict))
    [ r0; r1 ] [ r0'; r1' ];
  Cl.close conn2

let test_client_session_reconnect () =
  if not have_model then () else
  with_tmp "session" @@ fun base ->
  let socket = base ^ ".sock" in
  let pid = start_daemon socket in
  let pol =
    Cl.policy ~max_attempts:5 ~backoff_s:0.05 ~connect_timeout_s:60.0 ()
  in
  let s = Cl.session ~policy:pol socket in
  let certify k =
    P.certify ~tag:k ~model:"sst_3" ~radius:0.004 (P.Index k)
  in
  (match Cl.call s (certify 0) with
  | P.Result r -> check_true "first call recomputes" (not r.P.cached)
  | other -> Alcotest.failf "first call: %s" (P.response_to_json other));
  (* kill the daemon under the session, bring up a fresh one on the
     same socket: the next call must ride through the dead connection
     (EPIPE/EOF), reconnect and succeed *)
  stop_daemon pid;
  let pid2 = start_daemon socket in
  Fun.protect ~finally:(fun () -> stop_daemon pid2) @@ fun () ->
  (match Cl.call s (certify 1) with
  | P.Result r ->
      check_true "call after daemon restart reconnects and completes"
        (not (V.is_fault r.P.verdict))
  | other ->
      Alcotest.failf "call after restart: %s" (P.response_to_json other));
  Cl.hangup s

let () =
  Alcotest.run "service"
    [
      ( "protocol",
        [
          Alcotest.test_case "request round-trip" `Quick test_request_round_trip;
          Alcotest.test_case "response round-trip" `Quick
            test_response_round_trip;
          Alcotest.test_case "intake round-trip" `Quick test_intake_round_trip;
          Alcotest.test_case "rejects malformed" `Quick test_protocol_rejects;
          Alcotest.test_case "verdict of_string_res" `Quick
            test_verdict_of_string_res;
        ] );
      ( "jobq",
        [
          Alcotest.test_case "shed and requeue" `Quick test_jobq_shed_and_requeue;
          Alcotest.test_case "retry-after hint" `Quick test_jobq_retry_after;
          Alcotest.test_case "default hint before first sample" `Quick
            test_jobq_default_hint;
        ] );
      ( "breaker",
        [ Alcotest.test_case "open/half-open/close" `Quick test_breaker_schedule ]
      );
      ( "cache",
        [
          Alcotest.test_case "key discriminates" `Quick
            test_cache_key_discriminates;
          Alcotest.test_case "store/find" `Quick test_cache_store_find;
          Alcotest.test_case "absorb from journal" `Quick test_cache_absorb;
        ] );
      ( "backoff",
        [ Alcotest.test_case "jitter bounds" `Quick test_backoff_bounds ] );
      ( "intake",
        [ Alcotest.test_case "torn tail" `Quick test_intake_torn_tail ] );
      ( "daemon",
        [
          Alcotest.test_case "cache bit-identical" `Slow
            test_daemon_cache_bit_identical;
          Alcotest.test_case "sigterm drains" `Slow test_daemon_sigterm_drains;
          Alcotest.test_case "sigkill + resume" `Slow test_daemon_sigkill_resume;
          Alcotest.test_case "rid dedup" `Slow test_daemon_rid_dedup;
          Alcotest.test_case "rid dedup across resume" `Slow
            test_daemon_rid_dedup_resume;
          Alcotest.test_case "client session reconnect" `Slow
            test_client_session_reconnect;
        ] );
    ]
