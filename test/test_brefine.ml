(* Branch-and-bound symbol-splitting refinement: the restrict_symbol
   primitive (exact ε partition, sound φ decoupling), the symbol
   ranking, the union semantics of a split wave (certified iff every
   branch certifies; any faulted branch poisons the whole refinement),
   the engine integration (refinement never flips Falsified, the up
   walk fires only on a clean precision failure) and cross-runner
   bit-identity of the branch tree. *)

open Tensor
module C = Deept.Config
module V = Deept.Verdict
module Z = Deept.Zonotope
module B = Deept.Brefine
module E = Deept.Engine
module Lp = Deept.Lp

let refine_cfg base = C.with_refine (Some C.default_refine) base

(* ---------------- restrict_symbol ---------------- *)

let test_restrict_eps_partition () =
  let rng = Rng.create 7 in
  let x = Mat.random_gaussian rng 3 4 0.7 in
  let parent = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:0.1 in
  let ne = Z.num_eps parent in
  Helpers.check_true "linf ball has eps symbols" (ne > 0);
  let k = min 2 (ne - 1) in
  let lower = Z.restrict_symbol parent (Z.Eps k) Z.Lower in
  let upper = Z.restrict_symbol parent (Z.Eps k) Z.Upper in
  (* the split does not change the symbol layout *)
  Helpers.check_true "eps split keeps widths"
    (Z.num_eps lower = ne && Z.num_phi lower = Z.num_phi parent);
  (* child points are parent points *)
  for _ = 1 to 50 do
    let pt = Z.sample rng lower in
    Helpers.check_true "lower sample inside parent" (Z.contains_sample parent pt);
    let pt = Z.sample rng upper in
    Helpers.check_true "upper sample inside parent" (Z.contains_sample parent pt)
  done;
  (* a parent point with eps_k < 0 lies in the Lower half, > 0 in Upper:
     the split is a partition of the parent's eps_k range, not just a
     pair of subsets *)
  let np = Z.num_phi parent in
  let point sign =
    let eps = Array.make ne 0.0 in
    eps.(k) <- sign *. 0.4;
    Z.instantiate parent ~phi:(Array.make np 0.0) ~eps
  in
  Helpers.check_true "eps_k=-0.4 lands in Lower"
    (Z.contains_sample lower (point (-1.0)));
  Helpers.check_true "eps_k=+0.4 lands in Upper"
    (Z.contains_sample upper (point 1.0))

let test_restrict_phi_covers () =
  let rng = Rng.create 11 in
  let x = Mat.random_gaussian rng 3 4 0.7 in
  let parent = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:0.05 in
  let np = Z.num_phi parent in
  Helpers.check_true "l2 ball has phi symbols" (np > 0);
  let k = min 1 (np - 1) in
  let lower = Z.restrict_symbol parent (Z.Phi k) Z.Lower in
  let upper = Z.restrict_symbol parent (Z.Phi k) Z.Upper in
  (* the decoupling appends one fresh eps column *)
  Helpers.check_true "phi split appends an eps symbol"
    (Z.num_eps lower = Z.num_eps parent + 1 && Z.num_phi lower = np);
  for _ = 1 to 50 do
    let pt = Z.sample rng lower in
    Helpers.check_true "lower sample inside parent" (Z.contains_sample parent pt);
    let pt = Z.sample rng upper in
    Helpers.check_true "upper sample inside parent" (Z.contains_sample parent pt)
  done;
  (* sign coverage: a parent point with phi_k of either sign lies in the
     matching half (the branches jointly cover the parent) *)
  let point sign =
    let phi = Array.make np 0.0 in
    phi.(k) <- sign *. 0.6;
    Z.instantiate parent ~phi ~eps:(Array.make (Z.num_eps parent) 0.0)
  in
  Helpers.check_true "phi_k<0 covered by Lower"
    (Z.contains_sample lower (point (-1.0)));
  Helpers.check_true "phi_k>0 covered by Upper"
    (Z.contains_sample upper (point 1.0))

let test_restrict_deterministic () =
  let rng = Rng.create 13 in
  let x = Mat.random_gaussian rng 3 4 0.7 in
  List.iter
    (fun (p, sym) ->
      let parent = Deept.Region.lp_ball ~p x ~word:1 ~radius:0.1 in
      let a = Z.restrict_symbol parent sym Z.Upper in
      let b = Z.restrict_symbol parent sym Z.Upper in
      Helpers.check_true "center bit-equal"
        (a.Z.center.Mat.data = b.Z.center.Mat.data);
      Helpers.check_true "phi bit-equal" (a.Z.phi.Mat.data = b.Z.phi.Mat.data);
      Helpers.check_true "eps bit-equal" (a.Z.eps.Mat.data = b.Z.eps.Mat.data))
    [ (Lp.Linf, Z.Eps 1); (Lp.L2, Z.Phi 1) ]

let test_restrict_bad_index () =
  let rng = Rng.create 17 in
  let x = Mat.random_gaussian rng 3 4 0.7 in
  let parent = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:0.1 in
  List.iter
    (fun sym ->
      match Z.restrict_symbol parent sym Z.Lower with
      | _ -> Alcotest.fail "bad symbol index accepted"
      | exception Invalid_argument _ -> ())
    [ Z.Eps (-1); Z.Eps (Z.num_eps parent); Z.Phi 0 ]

(* ---------------- ranking ---------------- *)

let test_rank_symbols () =
  (* Hand-built 1 x 2 output: alpha = at - aj = [0.8; 0], beta = [0; 0.5].
     Expect Phi 0 then Eps 1, zero-weight symbols dropped. *)
  let out =
    Z.make ~p:Lp.L2
      ~center:(Mat.of_array ~rows:1 ~cols:2 [| 2.0; 1.0 |])
      ~phi:(Mat.of_array ~rows:2 ~cols:2 [| 1.0; 0.25; 0.2; 0.25 |])
      ~eps:(Mat.of_array ~rows:2 ~cols:2 [| 0.1; 0.5; 0.1; 0.0 |])
  in
  let m, j = B.losing_margin out ~true_class:0 in
  Helpers.check_true "two classes: adversary is 1" (j = 1);
  (* 2 - 1 - ||[0.8;0]||_2 - |0.5| = -0.3 *)
  Helpers.check_float "losing margin" (-0.3) m;
  (match B.rank_symbols out out ~true_class:0 with
  | [ (w1, Z.Phi 0); (w2, Z.Eps 1) ] ->
      Helpers.check_float "phi0 weight" 0.8 w1;
      Helpers.check_float "eps1 weight" 0.5 w2
  | l -> Alcotest.failf "unexpected ranking (%d entries)" (List.length l));
  (* the ranking agrees with Certify.margin on the bound *)
  Helpers.check_float "losing_margin agrees with Certify.margin"
    (Deept.Certify.margin out ~true_class:0)
    m

(* ---------------- union semantics (via the wave hook) ---------------- *)

(* A query that certifies at tiny radius but goes Unknown Imprecise at
   some radius on the sweep — the precondition for any split to fire. *)
let imprecise_query () =
  let program = Helpers.tiny_program ~layers:2 43 in
  let x = Mat.random_gaussian (Rng.create 143) 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let found = ref None in
  List.iter
    (fun radius ->
      if !found = None then begin
        let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius in
        if
          Deept.Certify.certify_v C.fast program region ~true_class:pred
          = V.Unknown V.Imprecise
        then found := Some region
      end)
    [ 0.02; 0.05; 0.1; 0.2; 0.5; 1.0; 2.0 ];
  match !found with
  | Some region -> (program, region, pred)
  | None -> Alcotest.fail "no imprecise radius found on the sweep"

let const_wave e : B.wave = fun _f n -> Array.init n (fun _ -> e)

let test_union_all_certified () =
  let program, region, pred = imprecise_query () in
  let wave = const_wave { B.bverdict = V.Certified; props = 1; bdepth = 0 } in
  let r = B.certify_v ~wave (refine_cfg C.fast) program region ~true_class:pred in
  Helpers.check_true "every branch certified -> certified"
    (r.B.verdict = V.Certified);
  Helpers.check_true "split symbols recorded" (r.B.split <> []);
  Helpers.check_true "branch count recorded" (r.B.branches >= 2)

let test_union_faulted_branch () =
  let program, region, pred = imprecise_query () in
  (* one faulted branch poisons the union, whatever the others said *)
  let wave : B.wave =
   fun _f n ->
    Array.init n (fun i ->
        if i = n - 1 then
          { B.bverdict = V.Unknown V.Timeout; props = 1; bdepth = 0 }
        else { B.bverdict = V.Certified; props = 1; bdepth = 0 })
  in
  let r = B.certify_v ~wave (refine_cfg C.fast) program region ~true_class:pred in
  Helpers.check_true "faulted branch -> that fault, not certified"
    (r.B.verdict = V.Unknown V.Timeout)

let test_union_imprecise_branch () =
  let program, region, pred = imprecise_query () in
  let wave : B.wave =
   fun _f n ->
    Array.init n (fun i ->
        if i = 0 then
          { B.bverdict = V.Unknown V.Imprecise; props = 1; bdepth = 0 }
        else { B.bverdict = V.Certified; props = 1; bdepth = 0 })
  in
  let r = B.certify_v ~wave (refine_cfg C.fast) program region ~true_class:pred in
  Helpers.check_true "imprecise branch -> parent stays imprecise"
    (r.B.verdict = V.Unknown V.Imprecise)

let test_refine_requires_config () =
  let program, region, pred = imprecise_query () in
  match B.certify_v C.fast program region ~true_class:pred with
  | _ -> Alcotest.fail "refine without cfg.refine accepted"
  | exception Invalid_argument _ -> ()

(* ---------------- real branch waves: cross-runner bit-identity -------- *)

let test_cross_runner_identity () =
  let program, region, pred = imprecise_query () in
  let cfg = refine_cfg C.fast in
  let serial =
    B.certify_v ~wave:Deept.Psearch.serial_wave cfg program region
      ~true_class:pred
  and forked =
    B.certify_v
      ~wave:
        (Deept.Psearch.fork_wave ~crash:(fun r ->
             { B.bverdict = V.Unknown r; props = 0; bdepth = 0 }))
      cfg program region ~true_class:pred
  in
  Helpers.check_true "serial = fork (full report)" (serial = forked);
  (match Deept.Propagate.shared_pool 4 with
  | None -> ()
  | Some dp ->
      let pooled =
        B.certify_v ~wave:(Deept.Psearch.dpool_wave dp) cfg program region
          ~true_class:pred
      in
      Helpers.check_true "serial = dpool (full report)" (serial = pooled));
  (* the default runner selection agrees too, whatever backend cfg asks
     for: the branch tree is a pure function of (cfg-modulo-backend,
     program, region) *)
  List.iter
    (fun backend ->
      let cfg_b =
        C.with_search (C.search ~probe_backend:backend ()) cfg
      in
      let r = B.certify_v cfg_b program region ~true_class:pred in
      Helpers.check_true "backend-selected runner agrees" (r = serial))
    [ C.Serial_probes; C.Fork_probes; C.Domain_probes ];
  Helpers.check_true "refinement never returns Falsified"
    (serial.B.verdict <> V.Falsified)

(* ---------------- engine integration ---------------- *)

let test_never_flips_falsified () =
  let program = Helpers.tiny_program ~layers:1 41 in
  let x = Mat.random_gaussian (Rng.create 141) 3 (Ir.out_dim program 0) 0.7 in
  let pred = Nn.Forward.predict program x in
  let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius:1e-9 in
  let o =
    E.certify (refine_cfg C.fast) program region ~true_class:(1 - pred)
  in
  Helpers.check_true "falsified concretely, refine never consulted"
    (o.E.verdict = V.Falsified && o.E.rung_name = "concrete");
  Helpers.check_true "single concrete attempt, direction Down"
    (match o.E.attempts with
    | [ a ] -> a.E.direction = E.Down
    | _ -> false)

let test_up_walk_fires_on_imprecise () =
  let program, region, pred = imprecise_query () in
  (* without refinement: the engine stops at the first rung (the
     pre-refinement pin) *)
  let o0 = E.certify ~falsify_samples:0 C.fast program region ~true_class:pred in
  Helpers.check_true "refine off: single attempt, imprecise is final"
    (o0.E.verdict = V.Unknown V.Imprecise && List.length o0.E.attempts = 1);
  (* with refinement: the walk turns upward after the same first rung *)
  let o =
    E.certify ~falsify_samples:0 (refine_cfg C.fast) program region
      ~true_class:pred
  in
  (match o.E.attempts with
  | [ first; up ] ->
      Helpers.check_true "first attempt is the requested rung, Down"
        (first.E.direction = E.Down
        && first.E.verdict = V.Unknown V.Imprecise);
      Helpers.check_true "second attempt is the refine rung, Up"
        (up.E.direction = E.Up && up.E.rung_name = "refine")
  | l -> Alcotest.failf "expected 2 attempts, got %d" (List.length l));
  Helpers.check_true "refined outcome is margin-only"
    (o.E.verdict <> V.Falsified)

(* ---------------- committed zoo model: real recovery ---------------- *)

(* The acceptance case: on the committed small_3 model the plain Precise
   linf search certifies 0.05712890625 and fails at the bracket edge
   0.0576171875; one 2-way split of the strongest eps symbol recovers
   that edge. Skipped when the model file is absent (fresh checkout). *)
let test_zoo_edge_recovery () =
  if not (Sys.file_exists "../data/small_3.model") then ()
  else begin
    Zoo.data_dir := "../data";
    let model = Zoo.load_or_train ~log:(fun _ -> ()) "small_3" in
    let entry = Zoo.entry "small_3" in
    let c = Zoo.corpus_of entry.Zoo.corpus in
    let program = Nn.Model.to_ir model in
    let toks, label = List.nth c.Text.Corpus.test 0 in
    let x = Nn.Model.embed_tokens model toks in
    let edge = 0.0576171875 in
    let region = Deept.Region.lp_ball ~p:Lp.Linf x ~word:1 ~radius:edge in
    Helpers.check_true "plain precise fails at the edge"
      (not (Deept.Certify.certify C.precise program region ~true_class:label));
    let cfg =
      C.with_refine (Some (C.refine ~top_k:1 ~max_branches:2 ~depth:1 ())) C.precise
    in
    let r = B.certify_v cfg program region ~true_class:label in
    Helpers.check_true "one 2-way split recovers the edge"
      (r.B.verdict = V.Certified && r.B.branches = 2 && r.B.depth = 1);
    Helpers.check_true "the split was an eps symbol (linf ball)"
      (match r.B.split with [ Z.Eps _ ] -> true | _ -> false)
  end

let () =
  Alcotest.run "brefine"
    [
      ( "restrict_symbol",
        [
          Alcotest.test_case "eps split partitions" `Quick
            test_restrict_eps_partition;
          Alcotest.test_case "phi split covers" `Quick test_restrict_phi_covers;
          Alcotest.test_case "bit-deterministic" `Quick
            test_restrict_deterministic;
          Alcotest.test_case "bad index rejected" `Quick test_restrict_bad_index;
        ] );
      ( "ranking",
        [ Alcotest.test_case "losing margin + order" `Quick test_rank_symbols ] );
      ( "union",
        [
          Alcotest.test_case "all certified" `Quick test_union_all_certified;
          Alcotest.test_case "faulted branch poisons" `Quick
            test_union_faulted_branch;
          Alcotest.test_case "imprecise branch" `Quick test_union_imprecise_branch;
          Alcotest.test_case "refine requires config" `Quick
            test_refine_requires_config;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "cross-runner bit-identity" `Quick
            test_cross_runner_identity;
        ] );
      ( "engine",
        [
          Alcotest.test_case "never flips falsified" `Quick
            test_never_flips_falsified;
          Alcotest.test_case "up walk on imprecise" `Quick
            test_up_walk_fires_on_imprecise;
        ] );
      ( "zoo",
        [
          Alcotest.test_case "small_3 edge recovery" `Slow
            test_zoo_edge_recovery;
        ] );
    ]
