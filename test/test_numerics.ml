(* Regression tests for the numeric hazards of deep-network certification:
   saturated softmax (exp overflow), astronomic reciprocal denominators,
   overflow-safe l2 norms, infinite dot-product remainders and the
   refinement multiplier cap. Every case here was once a NaN factory. *)

open Tensor
module Z = Deept.Zonotope
module E = Deept.Elementwise
module Lp = Deept.Lp

let check_coeffs_finite name (c : E.coeffs) =
  Helpers.check_true (name ^ " lambda finite") (Float.is_finite c.E.lambda);
  Helpers.check_true (name ^ " mu not NaN") (not (Float.is_nan c.E.mu));
  Helpers.check_true (name ^ " beta not NaN") (not (Float.is_nan c.E.beta))

let test_recip_huge_inputs () =
  (* Saturated softmax denominators: 1e20 .. 1e300. *)
  List.iter
    (fun (l, u) ->
      let c = E.recip_coeffs ~l ~u () in
      check_coeffs_finite "recip huge" c;
      (* still covers the function *)
      List.iter
        (fun x ->
          let y = 1.0 /. x in
          let mid = (c.E.lambda *. x) +. c.E.mu in
          Helpers.check_true "recip huge covers"
            (Float.abs (y -. mid) <= c.E.beta +. 1e-12))
        [ l; u; 0.5 *. (l +. u) ])
    [ (1e16, 1e18); (1e20, 1e300); (1.0, 1e200); (1e150, 1e160) ]

let test_exp_overflow_range () =
  (* exp over a range crossing the float overflow point must not be NaN. *)
  List.iter
    (fun (l, u) ->
      let c = E.exp_coeffs ~l ~u in
      Helpers.check_true "exp no NaN lambda" (not (Float.is_nan c.E.lambda));
      Helpers.check_true "exp no NaN mu" (not (Float.is_nan c.E.mu)))
    [ (500.0, 600.0); (600.0, 800.0); (-800.0, 720.0) ]

let test_exp_infinite_bounds_raise () =
  List.iter
    (fun (l, u) ->
      Helpers.check_true "raises Unbounded"
        (try
           ignore (E.exp_coeffs ~l ~u);
           false
         with Z.Unbounded -> true))
    [ (neg_infinity, 1.0); (0.0, infinity) ]

let test_recip_nonpositive_raises () =
  Helpers.check_true "recip raises on l <= 0"
    (try
       ignore (E.recip_coeffs ~l:(-1.0) ~u:1.0 ());
       false
     with Z.Unbounded -> true)

let test_l2_norm_no_overflow () =
  let v = [| 1e200; 1e200; -1e200 |] in
  let n = Vecops.l2 v in
  Helpers.check_true "vec l2 finite" (Float.is_finite n);
  Helpers.check_float ~tol:1e185 "vec l2 value" (sqrt 3.0 *. 1e200) n;
  let m = Mat.of_rows [| v |] in
  let rn = (Mat.row_lp_norms m 2.0).(0) in
  Helpers.check_true "mat row l2 finite" (Float.is_finite rn)

let test_zonotope_bounds_huge_coeffs () =
  (* Huge (but finite) coefficients: bounds must be finite, not overflowed
     through squaring. *)
  let z =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 0.0)
      ~phi:(Mat.of_rows [| [| 1e200; 1e200 |] |])
      ~eps:(Mat.create 1 0)
  in
  let b = Z.bounds_var z 0 in
  Helpers.check_true "bounds finite" (Float.is_finite b.Interval.Itv.hi)

let test_zonotope_bounds_nan_raises () =
  let z =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 nan)
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.create 1 0)
  in
  Helpers.check_true "NaN center raises"
    (try
       ignore (Z.bounds z);
       false
     with Z.Unbounded -> true)

let test_dot_infinite_remainder () =
  (* Product of huge-coefficient zonotopes: remainder overflows; the result
     must carry an infinite fresh symbol, never NaN. *)
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 2);
  let mk () =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 1.0)
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.of_rows [| [| 1e200; 1e200 |] |])
  in
  let out = Deept.Dot.mul_zz ctx (mk ()) (mk ()) in
  let bad (m : Mat.t) = Array.exists Float.is_nan m.Mat.data in
  Helpers.check_true "no NaN in product"
    (not (bad out.Z.center || bad out.Z.phi || bad out.Z.eps))

let test_elementwise_zero_slope_kills_inf () =
  (* lambda = 0 relaxation applied to an infinite coefficient: coefficient
     must become 0, not NaN (0 * inf). ReLU with u < 0 has lambda = 0. *)
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 1);
  let z =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 (-5.0))
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.of_rows [| [| 1.0 |] |])
  in
  (* give it an infinite coefficient by scaling *)
  let z = Z.scale infinity z in
  (* bounds are (-inf, inf) -> generic relu branch has finite lambda... use
     the coefficient rule directly on a negative-only range instead *)
  ignore z;
  let c = E.relu_coeffs ~l:(-10.0) ~u:(-1.0) in
  Helpers.check_float "relu dead slope" 0.0 c.E.lambda;
  (* whole-zonotope path with an infinite coefficient and a dead relu *)
  let ctx2 = Z.ctx () in
  ignore (Z.alloc_eps ctx2 1);
  let z2 =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 (-5.0))
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.of_rows [| [| infinity |] |])
  in
  (* bounds are infinite so relu is in the generic branch; the output must
     not contain NaN either way *)
  match E.relu ctx2 z2 with
  | out ->
      let bad (m : Mat.t) = Array.exists Float.is_nan m.Mat.data in
      Helpers.check_true "no NaN after relu"
        (not (bad out.Z.center || bad out.Z.phi || bad out.Z.eps))
  | exception Z.Unbounded -> ()

(* Downstream of an overflowed dot remainder: the infinite fresh-symbol
   radius must stay an honest [-inf, +inf] interval through later linear
   ops — 0 * inf must not fabricate NaN — and the engine must route the
   poisoned propagation to a typed Unknown Numerical_fault, never to
   Certified. *)
let test_dot_overflow_downstream () =
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 2);
  let mk () =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 1.0)
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.of_rows [| [| 1e200; 1e200 |] |])
  in
  let out = Deept.Dot.mul_zz ctx (mk ()) (mk ()) in
  Helpers.check_true "remainder radius infinite"
    (Array.exists (fun c -> c = infinity) out.Z.eps.Mat.data);
  (* a weight matrix with zeros exercises the 0 * inf path *)
  let w = Mat.of_rows [| [| 1.0; 0.0; -2.0 |] |] in
  let y = Z.linear_map out w [| 0.0; 0.0; 0.0 |] in
  let bad (m : Mat.t) = Array.exists Float.is_nan m.Mat.data in
  Helpers.check_true "no NaN downstream of overflow"
    (not (bad y.Z.center || bad y.Z.phi || bad y.Z.eps));
  let b = Z.bounds y in
  (* nonzero weight columns inherit the infinite radius honestly... *)
  List.iter
    (fun j ->
      Helpers.check_true "downstream lower bound is -inf"
        (Mat.get b.Interval.Imat.lo 0 j = neg_infinity);
      Helpers.check_true "downstream upper bound is +inf"
        (Mat.get b.Interval.Imat.hi 0 j = infinity))
    [ 0; 2 ];
  (* ...while the zero column is exactly zero for every input, and the
     0 * inf product must not have turned it into NaN *)
  Helpers.check_float "zero column stays a point (lo)" 0.0
    (Mat.get b.Interval.Imat.lo 0 1);
  Helpers.check_float "zero column stays a point (hi)" 0.0
    (Mat.get b.Interval.Imat.hi 0 1)

let test_dot_overflow_routed_to_verdict () =
  (* An overflow-poisoned region fed to a linear program: the per-op
     checkpoint catches the infinite coefficients and the verdict is the
     typed Unknown, not a crash and certainly not Certified. *)
  let region =
    Z.make ~p:Lp.L2
      ~center:(Mat.make 1 1 1.0)
      ~phi:(Mat.create 1 0)
      ~eps:(Mat.of_rows [| [| infinity |] |])
  in
  let program =
    {
      Ir.input_dim = 1;
      Ir.ops = [| Ir.Linear { src = 0; w = Mat.make 1 2 1.0; b = [| 0.0; 0.0 |] } |];
    }
  in
  let v = Deept.Certify.certify_v Deept.Config.fast program region ~true_class:0 in
  Helpers.check_true "overflow routed to Unknown Numerical_fault"
    (v = Deept.Verdict.Unknown Deept.Verdict.Numerical_fault)

(* Saturated softmax: one position dominates by more than the float range
   can express; outputs must be the sharp one-hot-ish box, and sampled
   concrete softmax values must be covered. *)
let test_softmax_saturated () =
  let rng = Rng.create 9 in
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 2);
  let center = Mat.of_rows [| [| 1000.0; 0.0; -500.0 |] |] in
  let z =
    Z.make ~p:Lp.L2 ~center
      ~phi:(Mat.random_gaussian rng 3 2 0.1)
      ~eps:(Mat.random_gaussian rng 3 2 0.1)
  in
  let out =
    Deept.Softmax_t.apply_row ~form:Deept.Config.Stable ~refine:false ctx z
  in
  let b = Z.bounds out in
  (* position 0 wins overwhelmingly *)
  Helpers.check_true "winner lower bound high"
    (Mat.get b.Interval.Imat.lo 0 0 > 0.99);
  Helpers.check_true "losers upper bound tiny"
    (Mat.get b.Interval.Imat.hi 0 1 < 1e-100);
  Helpers.check_true "very dominated upper bound tiny"
    (Mat.get b.Interval.Imat.hi 0 2 < 1e-100);
  (* sampled soundness *)
  Helpers.check_propagation_sound ~samples:200 ~name:"saturated softmax" rng z
    out (fun x -> Mat.row_vector (Vecops.softmax (Mat.row x 0)))

(* Deep propagation stays NaN-free and certifies at radius 0 even when the
   abstraction saturates (regression for the 12-layer NaN cascade). *)
let test_deep_propagation_no_nan () =
  let program = Helpers.tiny_program ~layers:6 ~d_model:8 777 in
  let rng = Rng.create 7 in
  (* exaggerated input scale to force saturated attention *)
  let x = Mat.random_gaussian rng 4 8 4.0 in
  let pred = Nn.Forward.predict program x in
  List.iter
    (fun radius ->
      let region = Deept.Region.lp_ball ~p:Lp.L2 x ~word:1 ~radius in
      let m = Deept.Certify.certify_margin Deept.Config.fast program region ~true_class:pred in
      Helpers.check_true "margin not NaN" (not (Float.is_nan m)))
    [ 0.0; 1e-6; 1e-3; 0.1; 10.0 ]

(* Refinement with a degenerate residual must not amplify coefficients. *)
let test_refinement_degenerate_residual () =
  let ctx = Z.ctx () in
  ignore (Z.alloc_eps ctx 3);
  (* Outputs that already sum to exactly 1 with coefficients cancelling:
     residual ~ 0; refinement must leave the zonotope essentially alone. *)
  let center = Mat.of_rows [| [| 0.5; 0.5 |] |] in
  let eps =
    Mat.of_rows [| [| 0.1; 0.05; 1e-12 |]; [| -0.1; -0.05; 0.0 |] |]
  in
  let z = Z.make ~p:Lp.L2 ~center ~phi:(Mat.create 2 0) ~eps in
  let refined = Deept.Refinement.softmax_sum z in
  Helpers.check_true "coefficients not amplified"
    (Mat.max_abs refined.Z.eps <= 1e3 *. Mat.max_abs z.Z.eps +. 1.0);
  let bad (m : Mat.t) = Array.exists Float.is_nan m.Mat.data in
  Helpers.check_true "no NaN"
    (not (bad refined.Z.center || bad refined.Z.phi || bad refined.Z.eps))

let () =
  Alcotest.run "numerics"
    [
      ( "elementwise",
        [
          Alcotest.test_case "recip huge inputs" `Quick test_recip_huge_inputs;
          Alcotest.test_case "exp overflow range" `Quick test_exp_overflow_range;
          Alcotest.test_case "exp infinite raises" `Quick test_exp_infinite_bounds_raise;
          Alcotest.test_case "recip nonpositive raises" `Quick
            test_recip_nonpositive_raises;
          Alcotest.test_case "zero slope kills inf" `Quick
            test_elementwise_zero_slope_kills_inf;
        ] );
      ( "norms",
        [
          Alcotest.test_case "l2 no overflow" `Quick test_l2_norm_no_overflow;
          Alcotest.test_case "bounds huge coeffs" `Quick test_zonotope_bounds_huge_coeffs;
          Alcotest.test_case "bounds NaN raises" `Quick test_zonotope_bounds_nan_raises;
        ] );
      ( "saturation",
        [
          Alcotest.test_case "dot infinite remainder" `Quick test_dot_infinite_remainder;
          Alcotest.test_case "dot overflow downstream" `Quick
            test_dot_overflow_downstream;
          Alcotest.test_case "dot overflow routed" `Quick
            test_dot_overflow_routed_to_verdict;
          Alcotest.test_case "softmax saturated" `Quick test_softmax_saturated;
          Alcotest.test_case "deep propagation" `Quick test_deep_propagation_no_nan;
          Alcotest.test_case "refinement degenerate" `Quick
            test_refinement_degenerate_residual;
        ] );
    ]
