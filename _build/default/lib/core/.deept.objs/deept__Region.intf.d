lib/core/region.mli: Lp Tensor Zonotope
