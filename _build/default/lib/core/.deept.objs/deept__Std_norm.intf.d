lib/core/std_norm.mli: Zonotope
