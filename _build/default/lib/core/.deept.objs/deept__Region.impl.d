lib/core/region.ml: Array Float List Lp Mat Tensor Zonotope
