lib/core/elementwise.ml: Array Float Imat Interval Itv Mat Tensor Zonotope
