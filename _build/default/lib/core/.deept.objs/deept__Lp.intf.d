lib/core/lp.mli: Tensor
