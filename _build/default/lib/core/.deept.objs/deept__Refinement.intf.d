lib/core/refinement.mli: Zonotope
