lib/core/std_norm.ml: Array Dot Elementwise Mat Tensor Zonotope
