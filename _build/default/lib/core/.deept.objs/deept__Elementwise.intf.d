lib/core/elementwise.mli: Interval Zonotope
