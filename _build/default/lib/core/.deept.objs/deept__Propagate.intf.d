lib/core/propagate.mli: Config Ir Zonotope
