lib/core/softmax_t.ml: Config Dot Elementwise Float Interval List Mat Refinement Tensor Zonotope
