lib/core/certify.mli: Config Ir Lp Tensor Zonotope
