lib/core/zonotope.mli: Interval Lp Tensor
