lib/core/certify.ml: Array Float List Lp Mat Nn Propagate Region Tensor Vecops Zonotope
