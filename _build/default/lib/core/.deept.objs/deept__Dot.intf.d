lib/core/dot.mli: Config Interval Lp Tensor Zonotope
