lib/core/lp.ml: Array Rng Tensor Vecops
