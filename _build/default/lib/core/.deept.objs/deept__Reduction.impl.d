lib/core/reduction.ml: Array Float Mat Tensor Zonotope
