lib/core/attention_t.mli: Config Ir Zonotope
