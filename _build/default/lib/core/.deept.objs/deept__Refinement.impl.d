lib/core/refinement.ml: Array Float Lp Mat Tensor Vecops Zonotope
