lib/core/softmax_t.mli: Config Zonotope
