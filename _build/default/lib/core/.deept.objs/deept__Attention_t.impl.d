lib/core/attention_t.ml: Config Dot Ir List Mat Softmax_t Tensor Zonotope
