lib/core/dot.ml: Array Config Float Interval Itv Lp Mat Tensor Vecops Zonotope
