lib/core/reduction.mli: Zonotope
