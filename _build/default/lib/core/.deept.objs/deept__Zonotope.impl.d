lib/core/zonotope.ml: Array Float Imat Interval Itv List Lp Mat Rng Tensor
