lib/core/propagate.ml: Array Attention_t Config Elementwise Interval Ir Printf Reduction Std_norm Sys Tensor Zonotope
