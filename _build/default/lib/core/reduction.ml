open Tensor

let scores (z : Zonotope.t) =
  let nv = Zonotope.num_vars z and w = Zonotope.num_eps z in
  let s = Array.make w 0.0 in
  let data = z.Zonotope.eps.Mat.data in
  for v = 0 to nv - 1 do
    let base = v * w in
    for j = 0 to w - 1 do
      s.(j) <- s.(j) +. Float.abs (Array.unsafe_get data (base + j))
    done
  done;
  s

let decorrelate_min_k ctx (z : Zonotope.t) k =
  if k < 0 then invalid_arg "Reduction.decorrelate_min_k: negative k";
  let w = Zonotope.num_eps z in
  if w <= k then begin
    Zonotope.reset_symbols ctx w;
    z
  end
  else begin
    let s = scores z in
    let order = Array.init w (fun j -> j) in
    (* Highest score first; ties broken by index for determinism. *)
    Array.sort
      (fun a b ->
        match compare s.(b) s.(a) with 0 -> compare a b | c -> c)
      order;
    let keep = Array.sub order 0 k in
    Array.sort compare keep;
    let dropped = Array.make w true in
    Array.iter (fun j -> dropped.(j) <- false) keep;
    let nv = Zonotope.num_vars z in
    (* Per-variable folded mass of the dropped symbols. *)
    let fold = Array.make nv 0.0 in
    let data = z.Zonotope.eps.Mat.data in
    for v = 0 to nv - 1 do
      let base = v * w in
      let acc = ref 0.0 in
      for j = 0 to w - 1 do
        if dropped.(j) then acc := !acc +. Float.abs data.(base + j)
      done;
      fold.(v) <- !acc
    done;
    let fresh = Array.make nv (-1) in
    let n_new = ref 0 in
    Array.iteri
      (fun v m ->
        if m > 0.0 then begin
          fresh.(v) <- !n_new;
          incr n_new
        end)
      fold;
    let new_w = k + !n_new in
    let eps = Mat.create nv new_w in
    for v = 0 to nv - 1 do
      let base = v * w and obase = v * new_w in
      Array.iteri (fun t j -> eps.Mat.data.(obase + t) <- data.(base + j)) keep;
      if fresh.(v) >= 0 then eps.Mat.data.(obase + k + fresh.(v)) <- fold.(v)
    done;
    Zonotope.reset_symbols ctx new_w;
    Zonotope.make ~p:z.Zonotope.p ~center:(Mat.copy z.Zonotope.center)
      ~phi:(Mat.copy z.Zonotope.phi) ~eps
  end
