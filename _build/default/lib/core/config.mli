(** Verifier configuration: the DeepT variants evaluated in the paper.

    - [DeepT-Fast] (Section 4.8, "Fast Bounds") — dual-norm cascade for
      all quadratic terms of the dot product;
    - [DeepT-Precise] — O(E∞²) interval analysis for the ε·ε term;
    - [Combined] (Appendix A.6) — Precise in the last Transformer layer,
      Fast elsewhere. *)

type dot_variant = Fast | Precise | Combined

type dual_order = Linf_first | Lp_first
(** Which operand of the fast dot-product bound has the dual-norm trick
    applied first (Section 6.5). The paper finds [Linf_first] slightly
    better on average. *)

type softmax_form = Stable | Direct
(** [Stable]: 1 / Σ exp(νj − νi) (the paper's choice, Section 5.2).
    [Direct]: exp(νi) · recip(Σ exp(νj)) — what CROWN uses; exposed for
    the ablation. *)

type t = {
  variant : dot_variant;
  order : dual_order;
  softmax : softmax_form;
  refine_softmax_sum : bool;
      (** apply the softmax-sum zonotope refinement (Section 5.3) *)
  reduction_k : int;
      (** ℓ∞ noise symbols kept by DecorrelateMin_k at each layer input;
          0 disables reduction *)
}

val default : t
(** DeepT-Fast with ℓ∞-first dual order, stable softmax, sum refinement
    on, reduction to 128 symbols. *)

val fast : t
val precise : t
(** Like {!default} with the Precise dot product (and a smaller symbol
    budget, mirroring the paper's setup). *)

val combined : t
(** Appendix A.6 variant. *)

val pp : Format.formatter -> t -> unit
