open Tensor

let apply ctx (z : Zonotope.t) ~gamma ~beta =
  let d = z.Zonotope.vcols in
  if Array.length gamma <> d || Array.length beta <> d then
    invalid_arg "Std_norm.apply: parameter length";
  (* Exact centering without the scale/shift. *)
  let ones = Array.make d 1.0 in
  let zeros = Array.make d 0.0 in
  let centered = Zonotope.center_rows z ~gamma:ones ~beta:zeros in
  (* Row variance: mean of squares of the centered values. *)
  let sq = Dot.mul_zz ctx centered centered in
  let var =
    Zonotope.add_const
      (Zonotope.linear_map sq (Mat.make d 1 (1.0 /. float_of_int d)) [| 0.0 |])
      (Mat.make z.Zonotope.vrows 1 1e-5)
  in
  (* Every concrete execution has var >= 1e-5, hence sigma >= sqrt 1e-5;
     the zonotope bound of the squared term can dip below that, so the
     reciprocal is floored at the guaranteed minimum. *)
  let inv_sigma =
    Elementwise.recip ~floor:(0.999 *. sqrt 1e-5) ctx (Elementwise.sqrt_ ctx var)
  in
  (* Broadcast 1/sigma across the row and multiply. *)
  let inv_b = Zonotope.linear_map inv_sigma (Mat.make 1 d 1.0) zeros in
  let scaled = Dot.mul_zz ctx centered inv_b in
  (* Final affine scale and shift. *)
  let gmat = Mat.init d d (fun i j -> if i = j then gamma.(i) else 0.0) in
  Zonotope.linear_map scaled gmat beta
