(** Element-wise abstract transformers (Sections 4.3–4.7).

    Every non-affine scalar function [f] is abstracted, per variable, by
    the affine form [y = λ·x + μ + β·ε_new] with a fresh ℓ∞ noise symbol
    [ε_new]; the coefficients depend only on the function and the
    variable's concrete bounds [l, u], and are chosen to minimize the
    area of the relaxation in input-output space (following Singh et al.
    for ReLU/tanh and Mueller et al. for exp/reciprocal). Theorem 3:
    these transformers are sound and area-optimal. *)

type coeffs = { lambda : float; mu : float; beta : float }
(** The relaxation [y = lambda*x + mu + beta*ε_new], [β >= 0]. *)

exception Unbounded
(** Alias of {!Zonotope.Unbounded}: the transformer's input bounds are
    non-finite (or, for the reciprocal, non-positive) — the abstraction
    has collapsed, typically because the radius search probed an absurdly
    large perturbation and the exponential overflowed. Certification
    front-ends catch this and report "not certified", which is sound. *)

val relu_coeffs : l:float -> u:float -> coeffs
(** Minimal-area ReLU relaxation (exact when the sign is fixed). *)

val tanh_coeffs : l:float -> u:float -> coeffs

val exp_coeffs : l:float -> u:float -> coeffs
(** Exponential relaxation whose concretization is strictly positive
    (required by the downstream reciprocal); tangent point
    [t_opt = min(t_crit, l + 1 - 0.01)]. Falls back to the interval
    relaxation for very large [u] where the chord slope overflows. *)

val sqrt_coeffs : l:float -> u:float -> coeffs
(** Square-root relaxation (chord from below, parallel tangent from
    above — minimal area for a concave function). A negative [l] is
    clamped to 0: the square-root argument in layer normalization is a
    true square whose zonotope bounds may dip below zero, while every
    concrete execution stays non-negative. *)

val recip_coeffs : ?floor:float -> l:float -> u:float -> unit -> coeffs
(** Reciprocal relaxation for strictly positive inputs; tangent point
    [t_opt = max(√(u·l), u/2·(1 + ε))] keeps the output positive. (The
    paper prints [min], but positivity of the tangent at [u] requires
    [t > u/2], so the implementation uses [max]; with [max] the
    chord-side bound also remains valid since [t ≥ √(u·l)] always.)
    [floor] (default 0) clamps the lower bound upward — sound whenever
    every concrete execution's input is at least [floor] (e.g. the
    ε-stabilized standard deviation in layer normalization), even though
    the zonotope's own bound may dip lower.
    @raise Unbounded if [l <= 0] after clamping. *)

val eval : coeffs -> l:float -> u:float -> float -> Interval.Itv.t
(** [eval c ~l ~u x] is the output range of the relaxation at input [x]
    (used by tests to check the relaxation covers [f x] pointwise). *)

val apply :
  Zonotope.ctx -> Zonotope.t -> (l:float -> u:float -> coeffs) -> Zonotope.t
(** Applies a coefficient rule element-wise to a whole zonotope:
    rescales the affine part by [λ], shifts the center by [μ], and
    allocates one fresh ε symbol per variable with [β > 0]. *)

val relu : Zonotope.ctx -> Zonotope.t -> Zonotope.t
val tanh_ : Zonotope.ctx -> Zonotope.t -> Zonotope.t
val exp_ : Zonotope.ctx -> Zonotope.t -> Zonotope.t
val recip : ?floor:float -> Zonotope.ctx -> Zonotope.t -> Zonotope.t
val sqrt_ : Zonotope.ctx -> Zonotope.t -> Zonotope.t
