(** Softmax-sum zonotope refinement (Section 5.3 and Appendix A.1).

    The true softmax outputs of a row always sum to exactly 1, but the
    zonotope produced by the softmax abstract transformer admits symbol
    instantiations violating this. The refinement intersects the zonotope
    with the hyperplane [Σᵢ yᵢ = 1] following the logical-product method
    of Ghorbal et al.:

    + the residual [S = 1 − Σᵢ yᵢ] is formed (an affine form that is 0 on
      every true execution);
    + variable [y₁] is replaced by [y₁ + t*·S] with [t*] chosen to
      minimize the total coefficient mass [‖α‖₁ + ‖β‖₁] (the O(E log E)
      breakpoint search of Appendix A.1, skipping candidates that would
      eliminate a φ symbol);
    + every other variable is rewritten to eliminate the pivot symbol
      [ε_k] using the constraint;
    + the constraint further tightens the range of each ε symbol
      appearing in [S]; tightened symbols are renormalized back to
      [[-1,1]] in this zonotope.

    Adding any multiple of [S] and restricting symbol ranges implied by
    [S = 0] both preserve every true execution, so the refinement is
    sound by construction. Multipliers are capped (and fall back to 0,
    i.e. no refinement) when the residual's coefficients nearly vanish —
    which happens once the softmax saturates in deep layers — since an
    extreme multiplier amplifies the residual's remaining coefficients
    instead of cancelling anything. *)

val minimize_abs_sum :
  r:float array -> s:float array -> allowed:bool array -> float
(** [minimize_abs_sum ~r ~s ~allowed] returns [t*] minimizing
    [Σᵢ |rᵢ + sᵢ·t|] over the breakpoints [-rᵢ/sᵢ] with [allowedᵢ]
    (weighted-median search; Appendix A.1). Returns 0 if no breakpoint
    is allowed. *)

val sum_residual : Zonotope.t -> target:float -> float * float array * float array
(** [(c_S, α_S, β_S)] of the affine form [target − Σ variables]. *)

val softmax_sum : Zonotope.t -> Zonotope.t
(** Refines a zonotope whose variables are one softmax row (value shape
    [1 x N] or [N x 1]) under the constraint that they sum to 1. Returns
    the input unchanged when no ε symbol can serve as pivot. *)
