(** Multi-norm Zonotope interpreter over {!Ir.program}s — the verifier's
    engine (Section 5).

    Walks the program, maintaining one zonotope per IR value. Following
    the paper, {!Reduction.decorrelate_min_k} runs on the input of every
    Transformer layer, just before the residual split around the
    self-attention (the only point where a single zonotope is alive, so
    symbol renumbering is safe). With [Config.variant = Combined], the
    precise dot product is used in the last Transformer layer only
    (Appendix A.6). *)

val run : Config.t -> Ir.program -> Zonotope.t -> Zonotope.t
(** Output zonotope of the program on the given input region. *)

val run_all : Config.t -> Ir.program -> Zonotope.t -> Zonotope.t array
(** All intermediate zonotopes (sharing one symbol context); index 0 is
    the input. Intended for inspection and tests — note that, unlike
    {!run}, values from different stages may have different ε widths.

    Setting the environment variable [DEEPT_TRACE] makes the interpreter
    print one line per op (kind, bound width, ε count) to stderr — the
    first tool to reach for when certification of a deep network fails
    unexpectedly. *)
