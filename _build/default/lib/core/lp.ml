open Tensor

type t = L1 | L2 | Linf

let of_float p =
  if p = 1.0 then L1
  else if p = 2.0 then L2
  else if p = infinity then Linf
  else invalid_arg "Lp.of_float: p must be 1, 2 or infinity"

let to_float = function L1 -> 1.0 | L2 -> 2.0 | Linf -> infinity
let to_string = function L1 -> "l1" | L2 -> "l2" | Linf -> "linf"
let dual = function L1 -> Linf | L2 -> L2 | Linf -> L1

let norm p v =
  match p with
  | L1 -> Vecops.l1 v
  | L2 -> Vecops.l2 v
  | Linf -> Vecops.linf v

let dual_norm p v = norm (dual p) v

let unit_ball_sample rng p n =
  if n = 0 then [||]
  else begin
    (* A uniformly random direction scaled by a random fraction of the
       distance to the ball's boundary along that direction. *)
    let dir = Array.init n (fun _ -> Rng.gaussian rng) in
    let nrm = norm p dir in
    let nrm = if nrm = 0.0 then 1.0 else nrm in
    let r = Rng.float rng in
    Array.map (fun x -> r *. x /. nrm) dir
  end
