(** ℓp norms and duality (Section 3.3 of the paper).

    The Multi-norm Zonotope bounds its [φ] noise symbols jointly by
    [‖φ‖ₚ ≤ 1]; concrete bounds of zonotope variables follow from the
    dual-norm characterisation (Lemma 1): the extrema of [z · x] over
    [‖x‖ₚ ≤ 1] are [±‖z‖_q] with [1/p + 1/q = 1]. *)

type t = L1 | L2 | Linf

val of_float : float -> t
(** [of_float p] for p ∈ {1., 2., infinity}.
    @raise Invalid_argument otherwise. *)

val to_float : t -> float
val to_string : t -> string

val dual : t -> t
(** [dual L1 = Linf], [dual L2 = L2], [dual Linf = L1]. *)

val norm : t -> float array -> float
(** ℓp norm of a vector. *)

val dual_norm : t -> float array -> float
(** [dual_norm p z = norm (dual p) z] — the tight bound of [z · x] over
    the unit ℓp ball (Lemma 1). *)

val unit_ball_sample : Tensor.Rng.t -> t -> int -> float array
(** Random point of the unit ℓp ball in dimension [n] (for soundness
    sampling tests): uniform direction, radius scaled to stay inside. *)
