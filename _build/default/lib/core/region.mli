(** Input regions for the two threat models (Section 2).

    T1: an ℓp-norm ball (p ∈ {1, 2, ∞}) around the embedding of one word
    of the sequence. For p ∈ {1, 2} the ball is expressed {e exactly} by
    φ symbols with the joint constraint [‖φ‖ₚ ≤ 1] — the whole point of
    the Multi-norm Zonotope; a classical zonotope could only
    over-approximate it with a box.

    T2: an ℓ∞ box per word covering the embeddings of all its synonyms. *)

val lp_ball :
  p:Lp.t -> Tensor.Mat.t -> word:int -> radius:float -> Zonotope.t
(** [lp_ball ~p x ~word ~radius] perturbs row [word] of the embedded
    sequence [x] by an ℓp ball of the given radius. *)

val lp_ball_all : p:Lp.t -> Tensor.Mat.t -> radius:float -> Zonotope.t
(** ℓp ball over {e all} entries of the input (the vision threat model of
    Appendix A.3). *)

val box : Tensor.Mat.t -> Tensor.Mat.t -> Zonotope.t
(** [box lo hi] is the axis-aligned box region (ℓ∞ symbols; entries with
    [lo = hi] get no symbol). *)

val synonym_box :
  Tensor.Mat.t -> (int * float array list) list -> Zonotope.t
(** [synonym_box x subs] covers, for every [(position, alternatives)]
    pair, all alternative embedding rows together with the original row
    of [x] by a per-dimension interval box (threat model T2; the
    alternatives must already include any positional offset). Unlisted
    positions stay exact. *)
