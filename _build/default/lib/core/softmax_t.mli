(** Softmax abstract transformer (Section 5.2).

    Applied row-wise to an attention-score zonotope. The default form is
    the mathematically equivalent but abstractly favourable
    [σᵢ = 1 / Σⱼ exp(νⱼ − νᵢ)]: the differences cancel shared noise
    symbols exactly (shrinking the exponential's input range), no
    multiplication transformer is needed, and the output is guaranteed to
    lie in (0, 1]. The [Direct] form
    [σᵢ = exp(νᵢ) · recip(Σⱼ exp(νⱼ))] — the composition CROWN uses — is
    provided for the ablation.

    With [refine], each output row is intersected with the hyperplane
    [Σᵢ σᵢ = 1] (Section 5.3). *)

val apply_row :
  form:Config.softmax_form ->
  refine:bool ->
  Zonotope.ctx -> Zonotope.t -> Zonotope.t
(** Softmax of a single-row zonotope (value shape [1 x N]). *)

val apply :
  form:Config.softmax_form ->
  refine:bool ->
  Zonotope.ctx -> Zonotope.t -> Zonotope.t
(** Row-wise softmax of an [N x M] score zonotope. *)
