(** Standard layer normalization in the zonotope domain (Section 6.6).

    The paper's default network omits the division by the standard
    deviation; Table 7 evaluates networks {e with} the division. This
    transformer composes the exact mean-centering with the square,
    square-root and reciprocal transformers and a perturbed-by-perturbed
    multiplication:

    [y = γ · (x − μ) / √(var + 1e-5) + β] per value row. *)

val apply :
  Zonotope.ctx -> Zonotope.t -> gamma:float array -> beta:float array -> Zonotope.t
