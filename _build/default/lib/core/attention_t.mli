(** Multi-head self-attention abstract transformer.

    Composes the affine projections with the two perturbed-by-perturbed
    products of Section 4.8 and the softmax transformer of Section 5.2:

    [Z = softmax(Q·Kᵀ / √dk) · V], per head, then the output projection.

    [precise] selects the DeepT-Precise dot-product remainder bound for
    both products of each head. *)

val apply :
  cfg:Config.t ->
  precise:bool ->
  Zonotope.ctx -> Ir.attention -> Zonotope.t -> Zonotope.t
