type dot_variant = Fast | Precise | Combined
type dual_order = Linf_first | Lp_first
type softmax_form = Stable | Direct

type t = {
  variant : dot_variant;
  order : dual_order;
  softmax : softmax_form;
  refine_softmax_sum : bool;
  reduction_k : int;
}

let default =
  {
    variant = Fast;
    order = Linf_first;
    softmax = Stable;
    refine_softmax_sum = true;
    reduction_k = 128;
  }

let fast = default
let precise = { default with variant = Precise; reduction_k = 96 }
let combined = { default with variant = Combined; reduction_k = 128 }

let variant_name = function Fast -> "fast" | Precise -> "precise" | Combined -> "combined"

let pp ppf c =
  Format.fprintf ppf "deept(%s, %s, softmax=%s, refine=%b, k=%d)"
    (variant_name c.variant)
    (match c.order with Linf_first -> "linf-first" | Lp_first -> "lp-first")
    (match c.softmax with Stable -> "stable" | Direct -> "direct")
    c.refine_softmax_sum c.reduction_k
