(** Synthetic two-class 28x28 image dataset — the MNIST "1 vs 7" stand-in
    for the vision experiments (Appendices A.2 and A.3).

    Class 0 renders a (jittered, variable-thickness, noisy) vertical
    stroke — a "1"; class 1 adds a horizontal top bar and slants the
    stem — a "7". The certification experiments only need a learned
    two-class image task exercising the same architectures; parametric
    strokes provide one deterministically. *)

type image = { pixels : float array; label : int }
(** [pixels] is 28*28 row-major in [0, 1]; label 0 = "1", 1 = "7". *)

val side : int
(** Image side length (28). *)

val generate : Tensor.Rng.t -> int -> image list
(** [generate rng n] draws [n] images, classes balanced. *)

val patches : image -> Tensor.Mat.t
(** 16 x 49 matrix of the image's 7x7 patches (row-major patch grid) —
    the Vision Transformer input. *)

val flat : image -> Tensor.Mat.t
(** 1 x 784 matrix — the fully-connected network input. *)

val features : image -> Tensor.Mat.t
(** 1 x 4 scaled quadrant-mean features (range about [0, 2]) — the
    low-dimensional input of the complete-verifier comparison
    (Appendix A.2; see DESIGN.md on why the complete method runs on a
    reduced input, and the scale comment in the implementation). *)

val feature_dim : int
