open Tensor

type image = { pixels : float array; label : int }

let side = 28

let idx r c = (r * side) + c

let set_px px r c v =
  if r >= 0 && r < side && c >= 0 && c < side then
    px.(idx r c) <- Float.max px.(idx r c) v

let draw_stroke px ~r0 ~c0 ~r1 ~c1 ~thickness ~intensity =
  let steps = 2 * side in
  for s = 0 to steps do
    let t = float_of_int s /. float_of_int steps in
    let r = r0 +. (t *. (r1 -. r0)) and c = c0 +. (t *. (c1 -. c0)) in
    let half = thickness /. 2.0 in
    let rlo = int_of_float (Float.round (r -. half)) in
    let rhi = int_of_float (Float.round (r +. half)) in
    let clo = int_of_float (Float.round (c -. half)) in
    let chi = int_of_float (Float.round (c +. half)) in
    for rr = rlo to rhi do
      for cc = clo to chi do
        set_px px rr cc intensity
      done
    done
  done

let gen_one rng label =
  let px = Array.make (side * side) 0.0 in
  let jx = Rng.uniform rng (-3.0) 3.0 in
  let jy = Rng.uniform rng (-2.0) 2.0 in
  let thickness = Rng.uniform rng 1.0 2.2 in
  let intensity = Rng.uniform rng 0.75 1.0 in
  let cx = 14.0 +. jx in
  (if label = 0 then
     (* a "1": near-vertical stem *)
     let slant = Rng.uniform rng (-1.5) 1.5 in
     draw_stroke px ~r0:(4.0 +. jy) ~c0:(cx +. slant) ~r1:(23.0 +. jy) ~c1:cx
       ~thickness ~intensity
   else begin
     (* a "7": top bar plus slanted stem *)
     let bar_len = Rng.uniform rng 8.0 12.0 in
     draw_stroke px ~r0:(5.0 +. jy)
       ~c0:(cx -. (bar_len /. 2.0))
       ~r1:(5.0 +. jy)
       ~c1:(cx +. (bar_len /. 2.0))
       ~thickness ~intensity;
     let slant = Rng.uniform rng 3.0 6.0 in
     draw_stroke px
       ~r0:(5.0 +. jy)
       ~c0:(cx +. (bar_len /. 2.0))
       ~r1:(23.0 +. jy)
       ~c1:(cx -. slant) ~thickness ~intensity
   end);
  (* pixel noise *)
  for i = 0 to (side * side) - 1 do
    let noisy = px.(i) +. Rng.gaussian_scaled rng ~mean:0.0 ~std:0.03 in
    px.(i) <- Float.min 1.0 (Float.max 0.0 noisy)
  done;
  { pixels = px; label }

let generate rng n = List.init n (fun i -> gen_one rng (i mod 2))

let patch_side = 7
let patches_per_side = side / patch_side

let patches img =
  Mat.init (patches_per_side * patches_per_side) (patch_side * patch_side)
    (fun p k ->
      let pr = p / patches_per_side and pc = p mod patches_per_side in
      let r = (pr * patch_side) + (k / patch_side) in
      let c = (pc * patch_side) + (k mod patch_side) in
      img.pixels.(idx r c))

let flat img = Mat.row_vector img.pixels

let feature_dim = 4

let features img =
  let half = side / 2 in
  let quad qr qc =
    let acc = ref 0.0 in
    for r = qr * half to ((qr + 1) * half) - 1 do
      for c = qc * half to ((qc + 1) * half) - 1 do
        acc := !acc +. img.pixels.(idx r c)
      done
    done;
    !acc /. float_of_int (half * half)
  in
  (* Scaled so the features span roughly [0, 2]: the complete-verification
     comparison needs decision radii in the regime where ReLUs actually
     switch, as in the paper's MNIST setting. *)
  Mat.row_vector
    (Array.map (fun v -> 5.0 *. v) [| quad 0 0; quad 0 1; quad 1 0; quad 1 1 |])
