lib/vision/images.mli: Tensor
