lib/vision/images.ml: Array Float List Mat Rng Tensor
