open Tensor

type result = Robust | Counterexample of float array | Unknown

let last_boxes = ref 0
let boxes_explored () = !last_boxes

(* Distance helpers for pruning: the nearest/farthest point of a box to the
   ball center, coordinate-separable for lp norms. *)
let box_min_dist ~p ~center lo hi =
  let n = Array.length center in
  let d = Array.make n 0.0 in
  for i = 0 to n - 1 do
    let c = center.(i) in
    d.(i) <- (if c < lo.(i) then lo.(i) -. c else if c > hi.(i) then c -. hi.(i) else 0.0)
  done;
  Deept.Lp.norm p d

let certify_box cfg program ~true_class lo hi =
  let region = Deept.Region.box (Mat.row_vector lo) (Mat.row_vector hi) in
  Deept.Certify.certify cfg program region ~true_class

(* Project a point onto the lp ball (exact for linf and l2; for l1 we use a
   simple scaling fallback that stays inside the ball). *)
let project_into_ball ~p ~center ~radius x =
  let delta = Array.mapi (fun i v -> v -. center.(i)) x in
  let n = Deept.Lp.norm p delta in
  if n <= radius then x
  else begin
    let s = radius /. n in
    Array.mapi (fun i d -> center.(i) +. (s *. d)) delta
  end

let misclassified program ~true_class x =
  Nn.Forward.predict program (Mat.row_vector x) <> true_class

let verify ?(max_boxes = 200_000) ?(min_width = 1e-4) program ~p ~center ~radius
    ~true_class =
  let n = Array.length center in
  let cfg = { Deept.Config.default with Deept.Config.reduction_k = 0 } in
  last_boxes := 0;
  (* Worklist of boxes still straddling. Start with the bounding box. *)
  let q = Queue.create () in
  let lo0 = Array.map (fun c -> c -. radius) center in
  let hi0 = Array.map (fun c -> c +. radius) center in
  Queue.add (lo0, hi0) q;
  let undecided = ref false in
  let counterexample = ref None in
  (try
     while not (Queue.is_empty q) do
       if !last_boxes >= max_boxes then begin
         undecided := true;
         raise Exit
       end;
       let lo, hi = Queue.pop q in
       incr last_boxes;
       (* Prune boxes entirely outside the ball. *)
       if box_min_dist ~p ~center lo hi <= radius then begin
         (* Counterexample test at the box midpoint, projected inside. *)
         let mid = Array.init n (fun i -> 0.5 *. (lo.(i) +. hi.(i))) in
         let cand = project_into_ball ~p ~center ~radius mid in
         if misclassified program ~true_class cand then begin
           counterexample := Some cand;
           raise Exit
         end;
         if not (certify_box cfg program ~true_class lo hi) then begin
           (* Split along the widest dimension. *)
           let widest = ref 0 in
           for i = 1 to n - 1 do
             if hi.(i) -. lo.(i) > hi.(!widest) -. lo.(!widest) then widest := i
           done;
           let w = hi.(!widest) -. lo.(!widest) in
           if w < min_width then undecided := true
           else begin
             let m = 0.5 *. (lo.(!widest) +. hi.(!widest)) in
             let hi_left = Array.copy hi and lo_right = Array.copy lo in
             hi_left.(!widest) <- m;
             lo_right.(!widest) <- m;
             Queue.add (lo, hi_left) q;
             Queue.add (lo_right, hi) q
           end
         end
       end
     done
   with Exit -> ());
  match !counterexample with
  | Some x -> Counterexample x
  | None -> if !undecided then Unknown else Robust

let certified_radius ?(iters = 10) ?max_boxes program ~p ~center ~true_class () =
  Deept.Certify.max_radius ~iters (fun radius ->
      radius > 0.0
      && verify ?max_boxes program ~p ~center ~radius ~true_class = Robust)
