(** Complete robustness verification by input-space branch and bound —
    the GeoCert stand-in for the Appendix A.2 comparison (Table 10).

    GeoCert computes {e exact} pointwise robustness for small ReLU
    networks by walking the arrangement of activation polytopes; its role
    in the paper is "a complete method: much larger certified radii, much
    slower". We reproduce that role with a complete-up-to-tolerance
    method that needs no LP/QP machinery: branch and bound over the
    input region. A box is certified by zonotope propagation, refuted by
    a concrete counterexample at its center, and split along its widest
    dimension otherwise. Boxes entirely outside the ℓ2 ball are pruned;
    boxes that still straddle below the width tolerance count as
    undecided (reported conservatively as not-robust).

    Complete search over boxes is exponential in the input dimension, so
    the experiment runs the network on a low-dimensional feature input
    (see DESIGN.md, substitution table) — GeoCert's own evaluation is
    equally confined to tiny networks. *)

type result = Robust | Counterexample of float array | Unknown

val verify :
  ?max_boxes:int ->
  ?min_width:float ->
  Ir.program -> p:Deept.Lp.t -> center:float array -> radius:float ->
  true_class:int -> result
(** Decides robustness of the (single-row-input) program on the ℓp ball.
    [max_boxes] (default 200_000) bounds the search; [min_width]
    (default 1e-4) is the completeness tolerance. *)

val certified_radius :
  ?iters:int -> ?max_boxes:int ->
  Ir.program -> p:Deept.Lp.t -> center:float array -> true_class:int ->
  unit -> float
(** Binary search over {!verify} — the exact robustness radius up to
    search tolerance. *)

val boxes_explored : unit -> int
(** Number of boxes processed by the most recent {!verify} call
    (work metric reported in the Table 10 bench). *)
