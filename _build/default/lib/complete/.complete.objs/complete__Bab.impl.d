lib/complete/bab.ml: Array Deept Mat Nn Queue Tensor
