lib/complete/bab.mli: Deept Ir
