(** Plain fully-connected ReLU classifiers.

    Used for the Appendix A.2 experiment (the tiny FC network compared
    against the complete verifier) and as a generic building block. *)

type t

val create : Tensor.Rng.t -> dims:int list -> t
(** [create rng ~dims] with [dims = [d_in; h1; ...; n_classes]] builds a
    ReLU MLP ([length dims - 1] linear layers, ReLU between them, no
    activation after the last). *)

val parameters : t -> (string * Tensor.Mat.t) list

val forward : Autodiff.t -> t -> Tensor.Mat.t -> Autodiff.v
(** Differentiable forward pass on a [1 x d_in] input. *)

val to_ir : t -> Ir.program

val train :
  ?log:(Train.report -> unit) ->
  ?epochs:int -> ?batch:int -> ?lr:float ->
  rng:Tensor.Rng.t -> t -> (Tensor.Mat.t * int) list -> unit
(** Adam training on (input, label) pairs. *)

val accuracy : t -> (Tensor.Mat.t * int) list -> float
