open Tensor

type config = {
  vocab_size : int;
  max_len : int;
  d_model : int;
  d_hidden : int;
  heads : int;
  layers : int;
  divide_std : bool;
  n_classes : int;
  patch_dim : int option;
}

let default_config =
  {
    vocab_size = 128;
    max_len = 16;
    d_model = 24;
    d_hidden = 24;
    heads = 4;
    layers = 3;
    divide_std = false;
    n_classes = 2;
    patch_dim = None;
  }

type layer = {
  wq : Mat.t;
  bq : Mat.t;
  wk : Mat.t;
  bk : Mat.t;
  wv : Mat.t;
  bv : Mat.t;
  wo : Mat.t;
  bo : Mat.t;
  g1 : Mat.t;
  n1 : Mat.t;
  fw1 : Mat.t;
  fb1 : Mat.t;
  fw2 : Mat.t;
  fb2 : Mat.t;
  g2 : Mat.t;
  n2 : Mat.t;
}

type t = {
  cfg : config;
  embed : Mat.t;  (* vocab x d (NLP) *)
  patch_w : Mat.t;  (* patch_dim x d (vision) *)
  patch_b : Mat.t;
  pos : Mat.t;  (* max_len x d *)
  enc : layer array;
  pool_w : Mat.t;
  pool_b : Mat.t;
  cls_w : Mat.t;
  cls_b : Mat.t;
}

let config m = m.cfg

let xavier rng fan_in fan_out =
  let s = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  Mat.random_uniform rng fan_in fan_out s

let create rng cfg =
  if cfg.d_model mod cfg.heads <> 0 then
    invalid_arg "Model.create: heads must divide d_model";
  let d = cfg.d_model in
  (* Residual-branch outputs (wo, fw2) are scaled down by 1/sqrt(2 M), the
     standard remedy for training deep post-norm stacks from scratch:
     without it the residual stream's magnitude grows with depth and the
     6/12-layer models never leave chance accuracy. *)
  let residual_scale = 1.0 /. sqrt (2.0 *. float_of_int (max 1 cfg.layers)) in
  let mk_layer () =
    {
      wq = xavier rng d d;
      bq = Mat.create 1 d;
      wk = xavier rng d d;
      bk = Mat.create 1 d;
      wv = xavier rng d d;
      bv = Mat.create 1 d;
      wo = Mat.scale residual_scale (xavier rng d d);
      bo = Mat.create 1 d;
      g1 = Mat.make 1 d 1.0;
      n1 = Mat.create 1 d;
      fw1 = xavier rng d cfg.d_hidden;
      fb1 = Mat.create 1 cfg.d_hidden;
      fw2 = Mat.scale residual_scale (xavier rng cfg.d_hidden d);
      fb2 = Mat.create 1 d;
      g2 = Mat.make 1 d 1.0;
      n2 = Mat.create 1 d;
    }
  in
  let patch_dim = Option.value cfg.patch_dim ~default:1 in
  {
    cfg;
    embed = Mat.random_gaussian rng cfg.vocab_size d 0.5;
    patch_w = xavier rng patch_dim d;
    patch_b = Mat.create 1 d;
    pos = Mat.random_gaussian rng cfg.max_len d 0.1;
    enc = Array.init cfg.layers (fun _ -> mk_layer ());
    pool_w = xavier rng d d;
    pool_b = Mat.create 1 d;
    cls_w = xavier rng d cfg.n_classes;
    cls_b = Mat.create 1 cfg.n_classes;
  }

let parameters m =
  let base =
    match m.cfg.patch_dim with
    | None -> [ ("embed", m.embed); ("pos", m.pos) ]
    | Some _ -> [ ("patch.w", m.patch_w); ("patch.b", m.patch_b); ("pos", m.pos) ]
  in
  let enc =
    List.concat
      (Array.to_list
         (Array.mapi
            (fun i l ->
              let p name mat = (Printf.sprintf "layer%d.%s" i name, mat) in
              [
                p "wq" l.wq; p "bq" l.bq; p "wk" l.wk; p "bk" l.bk;
                p "wv" l.wv; p "bv" l.bv; p "wo" l.wo; p "bo" l.bo;
                p "g1" l.g1; p "n1" l.n1;
                p "fw1" l.fw1; p "fb1" l.fb1; p "fw2" l.fw2; p "fb2" l.fb2;
                p "g2" l.g2; p "n2" l.n2;
              ])
            m.enc))
  in
  base @ enc
  @ [ ("pool.w", m.pool_w); ("pool.b", m.pool_b); ("cls.w", m.cls_w); ("cls.b", m.cls_b) ]

(* ---------------- differentiable forward ---------------- *)

let attention_fwd tp m (l : layer) x =
  let module A = Autodiff in
  let d = m.cfg.d_model in
  let heads = m.cfg.heads in
  let dk = d / heads in
  let q = A.add_bias (A.matmul x (A.param tp l.wq)) (A.param tp l.bq) in
  let k = A.add_bias (A.matmul x (A.param tp l.wk)) (A.param tp l.bk) in
  let v = A.add_bias (A.matmul x (A.param tp l.wv)) (A.param tp l.bv) in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let zs =
    List.init heads (fun h ->
        let qh = A.slice_cols q (h * dk) dk in
        let kh = A.slice_cols k (h * dk) dk in
        let vh = A.slice_cols v (h * dk) dk in
        let scores = A.scale scale (A.matmul qh (A.transpose kh)) in
        A.matmul (A.softmax_rows scores) vh)
  in
  A.add_bias (A.matmul (A.hcat zs) (A.param tp l.wo)) (A.param tp l.bo)

let norm_fwd tp m gamma beta x =
  let module A = Autodiff in
  let centered =
    if m.cfg.divide_std then A.normalize_rows_std x else A.center_rows x
  in
  A.add_bias (A.mul_rows centered (A.param tp gamma)) (A.param tp beta)

let encoder_fwd tp m x0 =
  let module A = Autodiff in
  let x = ref x0 in
  Array.iter
    (fun l ->
      let z = attention_fwd tp m l !x in
      let x1 = norm_fwd tp m l.g1 l.n1 (A.add !x z) in
      let h = A.relu (A.add_bias (A.matmul x1 (A.param tp l.fw1)) (A.param tp l.fb1)) in
      let f = A.add_bias (A.matmul h (A.param tp l.fw2)) (A.param tp l.fb2) in
      x := norm_fwd tp m l.g2 l.n2 (A.add x1 f))
    m.enc;
  let pooled = A.slice_rows !x 0 1 in
  let hid =
    A.tanh_ (A.add_bias (A.matmul pooled (A.param tp m.pool_w)) (A.param tp m.pool_b))
  in
  A.add_bias (A.matmul hid (A.param tp m.cls_w)) (A.param tp m.cls_b)

let positional_v tp m n x =
  let module A = Autodiff in
  A.add x (A.slice_rows (A.param tp m.pos) 0 n)

let forward_tokens tp m tokens =
  if m.cfg.patch_dim <> None then
    invalid_arg "Model.forward_tokens: vision-mode model";
  let n = Array.length tokens in
  if n = 0 || n > m.cfg.max_len then invalid_arg "Model.forward_tokens: bad length";
  let module A = Autodiff in
  let x = A.gather_rows (A.param tp m.embed) tokens in
  encoder_fwd tp m (positional_v tp m n x)

let forward_input tp m input =
  let module A = Autodiff in
  let n = Mat.rows input in
  if n = 0 || n > m.cfg.max_len then invalid_arg "Model.forward_input: bad length";
  match m.cfg.patch_dim with
  | None -> encoder_fwd tp m (positional_v tp m n (A.const tp input))
  | Some pd ->
      if Mat.cols input <> pd then
        invalid_arg "Model.forward_input: patch dim mismatch";
      let x =
        A.add_bias (A.matmul (A.const tp input) (A.param tp m.patch_w))
          (A.param tp m.patch_b)
      in
      encoder_fwd tp m (positional_v tp m n x)

(* ---------------- concrete embedding ---------------- *)

let embed_tokens m tokens =
  let n = Array.length tokens in
  if n = 0 || n > m.cfg.max_len then invalid_arg "Model.embed_tokens: bad length";
  Mat.init n m.cfg.d_model (fun i j ->
      Mat.get m.embed tokens.(i) j +. Mat.get m.pos i j)

let embedding_row m tok = Mat.row m.embed tok

(* ---------------- persistence ---------------- *)

let magic = "deept-nn-model v1"

let save path m =
  let dir = Filename.dirname path in
  let rec mkdir_p d =
    if d <> "" && d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      mkdir_p (Filename.dirname d);
      Sys.mkdir d 0o755
    end
  in
  mkdir_p dir;
  Out_channel.with_open_text path (fun oc ->
      Printf.fprintf oc "%s\n" magic;
      let c = m.cfg in
      Printf.fprintf oc "config %d %d %d %d %d %d %b %d %d\n" c.vocab_size
        c.max_len c.d_model c.d_hidden c.heads c.layers c.divide_std c.n_classes
        (Option.value c.patch_dim ~default:(-1));
      List.iter
        (fun (name, mat) ->
          Printf.fprintf oc "param %s %d %d\n" name (Mat.rows mat) (Mat.cols mat);
          Array.iteri
            (fun i x ->
              if i > 0 then output_char oc ' ';
              Printf.fprintf oc "%h" x)
            mat.Mat.data;
          output_char oc '\n')
        (parameters m))

let load path =
  In_channel.with_open_text path (fun ic ->
      let line () =
        match In_channel.input_line ic with
        | Some l -> l
        | None -> failwith "Model.load: unexpected end of file"
      in
      if line () <> magic then failwith "Model.load: bad magic";
      let cfg =
        match String.split_on_char ' ' (line ()) with
        | [ "config"; vs; ml; dm; dh; h; l; ds; nc; pd ] ->
            {
              vocab_size = int_of_string vs;
              max_len = int_of_string ml;
              d_model = int_of_string dm;
              d_hidden = int_of_string dh;
              heads = int_of_string h;
              layers = int_of_string l;
              divide_std = bool_of_string ds;
              n_classes = int_of_string nc;
              patch_dim =
                (let p = int_of_string pd in
                 if p < 0 then None else Some p);
            }
        | _ -> failwith "Model.load: bad config line"
      in
      let m = create (Rng.create 0) cfg in
      let params = parameters m in
      let rec fill () =
        match In_channel.input_line ic with
        | None -> ()
        | Some header ->
            (match String.split_on_char ' ' header with
            | [ "param"; name; r; c ] ->
                let r = int_of_string r and c = int_of_string c in
                let mat =
                  match List.assoc_opt name params with
                  | Some mat -> mat
                  | None -> failwith ("Model.load: unknown parameter " ^ name)
                in
                if Mat.rows mat <> r || Mat.cols mat <> c then
                  failwith ("Model.load: shape mismatch for " ^ name);
                let toks =
                  String.split_on_char ' ' (line ())
                  |> List.filter (fun t -> t <> "")
                in
                if List.length toks <> r * c then
                  failwith ("Model.load: bad data for " ^ name);
                List.iteri
                  (fun i t -> mat.Mat.data.(i) <- float_of_string t)
                  toks
            | _ -> failwith "Model.load: bad param header");
            fill ()
      in
      fill ();
      m)

(* ---------------- compilation to IR ---------------- *)

let to_ir m =
  let ops = ref [] in
  let count = ref 0 in
  let emit op =
    ops := op :: !ops;
    incr count;
    !count
  in
  let start =
    match m.cfg.patch_dim with
    | None -> 0
    | Some _ ->
        let lin =
          emit (Ir.Linear { src = 0; w = Mat.copy m.patch_w; b = Mat.row m.patch_b 0 })
        in
        emit (Ir.Positional { src = lin; pos = Mat.copy m.pos })
  in
  let cur = ref start in
  Array.iter
    (fun l ->
      let att : Ir.attention =
        {
          heads = m.cfg.heads;
          wq = Mat.copy l.wq;
          bq = Mat.row l.bq 0;
          wk = Mat.copy l.wk;
          bk = Mat.row l.bk 0;
          wv = Mat.copy l.wv;
          bv = Mat.row l.bv 0;
          wo = Mat.copy l.wo;
          bo = Mat.row l.bo 0;
        }
      in
      let z = emit (Ir.Self_attention { src = !cur; att }) in
      let r1 = emit (Ir.Add (!cur, z)) in
      let x1 =
        emit
          (Ir.Center_norm
             {
               src = r1;
               gamma = Mat.row l.g1 0;
               beta = Mat.row l.n1 0;
               divide_std = m.cfg.divide_std;
             })
      in
      let h = emit (Ir.Linear { src = x1; w = Mat.copy l.fw1; b = Mat.row l.fb1 0 }) in
      let hr = emit (Ir.Relu h) in
      let f = emit (Ir.Linear { src = hr; w = Mat.copy l.fw2; b = Mat.row l.fb2 0 }) in
      let r2 = emit (Ir.Add (x1, f)) in
      let x2 =
        emit
          (Ir.Center_norm
             {
               src = r2;
               gamma = Mat.row l.g2 0;
               beta = Mat.row l.n2 0;
               divide_std = m.cfg.divide_std;
             })
      in
      cur := x2)
    m.enc;
  let pooled = emit (Ir.Pool_first !cur) in
  let ph = emit (Ir.Linear { src = pooled; w = Mat.copy m.pool_w; b = Mat.row m.pool_b 0 }) in
  let pt = emit (Ir.Tanh ph) in
  let _logits =
    emit (Ir.Linear { src = pt; w = Mat.copy m.cls_w; b = Mat.row m.cls_b 0 })
  in
  let input_dim =
    match m.cfg.patch_dim with None -> m.cfg.d_model | Some pd -> pd
  in
  let p : Ir.program = { input_dim; ops = Array.of_list (List.rev !ops) } in
  Ir.validate_exn p;
  p
