open Tensor

type t = { dims : int list; ws : Mat.t array; bs : Mat.t array }

let create rng ~dims =
  (match dims with
  | [] | [ _ ] -> invalid_arg "Mlp.create: need at least two dims"
  | _ -> ());
  let pairs =
    let rec go = function
      | a :: (b :: _ as rest) -> (a, b) :: go rest
      | _ -> []
    in
    go dims
  in
  let ws =
    Array.of_list
      (List.map
         (fun (a, b) ->
           let s = sqrt (6.0 /. float_of_int (a + b)) in
           Mat.random_uniform rng a b s)
         pairs)
  in
  let bs = Array.of_list (List.map (fun (_, b) -> Mat.create 1 b) pairs) in
  { dims; ws; bs }

let parameters m =
  List.concat
    (List.init (Array.length m.ws) (fun i ->
         [ (Printf.sprintf "w%d" i, m.ws.(i)); (Printf.sprintf "b%d" i, m.bs.(i)) ]))

let forward tp m x =
  let module A = Autodiff in
  let n = Array.length m.ws in
  let h = ref (A.const tp x) in
  for i = 0 to n - 1 do
    let z = A.add_bias (A.matmul !h (A.param tp m.ws.(i))) (A.param tp m.bs.(i)) in
    h := if i < n - 1 then A.relu z else z
  done;
  !h

let to_ir m =
  let n = Array.length m.ws in
  let ops = ref [] in
  let cur = ref 0 and count = ref 0 in
  for i = 0 to n - 1 do
    ops := Ir.Linear { src = !cur; w = Mat.copy m.ws.(i); b = Mat.row m.bs.(i) 0 } :: !ops;
    incr count;
    cur := !count;
    if i < n - 1 then begin
      ops := Ir.Relu !cur :: !ops;
      incr count;
      cur := !count
    end
  done;
  let p : Ir.program =
    { input_dim = List.hd m.dims; ops = Array.of_list (List.rev !ops) }
  in
  Ir.validate_exn p;
  p

let train ?(log = fun _ -> ()) ?(epochs = 10) ?(batch = 16) ?(lr = 2e-3) ~rng m
    pairs =
  let params = parameters m in
  let opt = Train.adam ~lr params in
  let data = Array.of_list pairs in
  let n = Array.length data in
  if n = 0 then invalid_arg "Mlp.train: no examples";
  for epoch = 1 to epochs do
    Rng.shuffle rng data;
    let epoch_loss = ref 0.0 in
    let idx = ref 0 in
    while !idx < n do
      let bsize = min batch (n - !idx) in
      let tp = Autodiff.create () in
      let losses =
        List.init bsize (fun k ->
            let x, label = data.(!idx + k) in
            Autodiff.cross_entropy_loss (forward tp m x) label)
      in
      let loss = Autodiff.mean_of losses in
      Autodiff.backward tp loss;
      epoch_loss := !epoch_loss +. Mat.get (Autodiff.value loss) 0 0;
      let grads =
        List.filter_map
          (fun (mat, g) ->
            match List.find_opt (fun (_, m0) -> m0 == mat) params with
            | Some (name, _) -> Some (name, g)
            | None -> None)
          (Autodiff.param_grads tp)
      in
      Train.step opt grads;
      idx := !idx + bsize
    done;
    let acc =
      let prog = to_ir m in
      Train.accuracy_ir prog pairs
    in
    log { Train.epoch; loss = !epoch_loss; train_acc = acc }
  done

let accuracy m pairs = Train.accuracy_ir (to_ir m) pairs
