(** Differentiable execution of {!Ir.program}s.

    Like {!Forward}, but through {!Autodiff}, so gradients with respect
    to the {e input} are available — the engine behind gradient-based
    adversarial attacks (and a second, independently derived semantics
    that the tests compare against {!Forward}). Program weights are
    treated as constants. *)

val run : Autodiff.t -> Ir.program -> Autodiff.v -> Autodiff.v
(** [run tape p x] evaluates the program on the differentiable input. *)

val input_gradient :
  Ir.program -> Tensor.Mat.t -> loss_class:int -> Tensor.Mat.t
(** Gradient of the cross-entropy loss of class [loss_class] with respect
    to the input, evaluated at [x]. Raises [Invalid_argument] if the
    program output is not a single row. *)
