(** Optimization: Adam, minibatch training loops, evaluation metrics.

    The trainer is generic over "a list of named parameter matrices plus a
    per-example loss builder", so the same code trains sentiment
    Transformers, the Vision Transformer and plain MLPs. *)

type adam
(** Adam optimizer state over a fixed parameter list. *)

val adam :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float ->
  (string * Tensor.Mat.t) list -> adam
(** [adam params] creates optimizer state. Defaults: lr 1e-3, beta1 0.9,
    beta2 0.999, eps 1e-8. The matrices are updated in place by {!step}. *)

val set_lr : adam -> float -> unit
(** Updates the learning rate (for schedules). *)

val step : adam -> (string * Tensor.Mat.t) list -> unit
(** [step opt grads] applies one Adam update. [grads] must name a subset
    of the optimizer's parameters; missing parameters are left untouched
    this step. Gradients are clipped to a global ℓ2 norm of 5. *)

type example = { input : int array option; matrix : Tensor.Mat.t option; label : int }
(** A training example: either token ids or a raw input matrix. *)

val token_example : int array -> int -> example
val matrix_example : Tensor.Mat.t -> int -> example

type report = { epoch : int; loss : float; train_acc : float }

val train_model :
  ?log:(report -> unit) ->
  ?epochs:int ->
  ?batch:int ->
  ?lr:float ->
  ?embed_noise:float ->
  rng:Tensor.Rng.t ->
  Model.t ->
  example list ->
  unit
(** Trains a {!Model.t} in place with Adam and a linear learning-rate
    decay. [embed_noise] (NLP mode, default 0) enables noise-augmented
    training: each token embedding is perturbed by uniform noise of that
    ℓ∞ magnitude before the forward pass — our stand-in for the certified
    training of Xu et al. used by the paper's Table 8 network. *)

val accuracy : Model.t -> example list -> float
(** Fraction of examples classified correctly (concrete forward). *)

val accuracy_ir : Ir.program -> (Tensor.Mat.t * int) list -> float
(** Accuracy of a compiled program on (input, label) pairs. *)
