(** Tape-based reverse-mode automatic differentiation over {!Tensor.Mat}.

    The paper's experiments certify networks *trained from scratch*; since
    no OCaml tensor/autodiff library is available in this environment, we
    provide our own. The design is a classic Wengert tape: every operation
    records a backward closure; {!backward} seeds the output gradient and
    replays the tape in reverse.

    Typical usage:
    {[
      let tape = Autodiff.create () in
      let w = Autodiff.leaf tape w_mat in
      let y = Autodiff.(matmul (const tape x) w) in
      let loss = Autodiff.cross_entropy_loss y label in
      Autodiff.backward tape loss;
      let dw = Autodiff.grad w in
      ...
    ]} *)

type t
(** A tape recording the computation. *)

type v
(** A differentiable matrix value bound to a tape. *)

val create : unit -> t
(** Fresh empty tape. *)

val const : t -> Tensor.Mat.t -> v
(** A value whose gradient is not needed (inputs, masks). *)

val leaf : t -> Tensor.Mat.t -> v
(** A differentiable leaf (parameter). Read its gradient with {!grad}
    after {!backward}. *)

val param : t -> Tensor.Mat.t -> v
(** Like {!leaf}, but memoized per tape by the physical identity of the
    matrix: calling [param tp m] twice returns the same node, so gradient
    contributions from all uses accumulate. {!param_grads} retrieves all
    parameter gradients after the backward pass. *)

val param_grads : t -> (Tensor.Mat.t * Tensor.Mat.t) list
(** All [(parameter storage, gradient)] pairs for nodes created with
    {!param} on this tape. *)

val value : v -> Tensor.Mat.t
(** Forward value. *)

val grad : v -> Tensor.Mat.t
(** Accumulated gradient; zero matrix if the node was never reached. *)

(** {1 Operations} *)

val matmul : v -> v -> v
val add : v -> v -> v
val sub : v -> v -> v
val hadamard : v -> v -> v
val scale : float -> v -> v
val transpose : v -> v

val add_bias : v -> v -> v
(** [add_bias x b] adds the [1 x n] row [b] to every row of [x]. *)

val mul_rows : v -> v -> v
(** [mul_rows x g] multiplies every row of [x] entrywise by the [1 x n]
    row [g]. *)

val relu : v -> v
val tanh_ : v -> v

val softmax_rows : v -> v
(** Row-wise softmax (numerically stable). *)

val center_rows : v -> v
(** Subtracts the row mean from each row — the paper's default
    normalization (no division by the standard deviation). *)

val normalize_rows_std : v -> v
(** Full layer-norm core: subtract the row mean and divide by the row
    standard deviation (epsilon-stabilized). *)

val gather_rows : v -> int array -> v
(** [gather_rows e idx] selects rows of [e]; the backward pass
    scatter-adds into the selected rows (embedding lookup). *)

val slice_cols : v -> int -> int -> v
(** [slice_cols x start n] takes columns [start .. start+n-1]. *)

val slice_rows : v -> int -> int -> v
(** [slice_rows x start n] takes rows [start .. start+n-1]. *)

val hcat : v list -> v
(** Horizontal concatenation of at least one value. *)

val cross_entropy_loss : v -> int -> v
(** [cross_entropy_loss logits label] for [1 x C] logits: the stable
    softmax cross entropy [logsumexp logits - logits.(label)], as a
    [1 x 1] value. *)

val mean_of : v list -> v
(** Arithmetic mean of [1 x 1] values (batch loss). *)

val backward : t -> v -> unit
(** [backward tape out] seeds the gradient of the [1 x 1] value [out]
    with 1 and propagates through the tape. Raises [Invalid_argument]
    if [out] is not [1 x 1]. *)
