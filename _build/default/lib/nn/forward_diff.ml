open Tensor
module A = Autodiff

let attention tp (att : Ir.attention) x =
  let adk = Mat.cols att.wq and adv = Mat.cols att.wv in
  let dk = adk / att.heads and dv = adv / att.heads in
  let proj w b = A.add_bias (A.matmul x (A.const tp w)) (A.const tp (Mat.row_vector b)) in
  let q = proj att.wq att.bq in
  let k = proj att.wk att.bk in
  let v = proj att.wv att.bv in
  let scale = 1.0 /. sqrt (float_of_int dk) in
  let heads =
    List.init att.heads (fun h ->
        let qh = A.slice_cols q (h * dk) dk in
        let kh = A.slice_cols k (h * dk) dk in
        let vh = A.slice_cols v (h * dv) dv in
        let scores = A.scale scale (A.matmul qh (A.transpose kh)) in
        A.matmul (A.softmax_rows scores) vh)
  in
  A.add_bias
    (A.matmul (A.hcat heads) (A.const tp att.wo))
    (A.const tp (Mat.row_vector att.bo))

let run tp (p : Ir.program) x0 =
  let vals = Array.make (Ir.num_values p) x0 in
  Array.iteri
    (fun i (op : Ir.op) ->
      let out =
        match op with
        | Ir.Linear { src; w; b } ->
            A.add_bias
              (A.matmul vals.(src) (A.const tp w))
              (A.const tp (Mat.row_vector b))
        | Ir.Relu src -> A.relu vals.(src)
        | Ir.Tanh src -> A.tanh_ vals.(src)
        | Ir.Add (a, b) -> A.add vals.(a) vals.(b)
        | Ir.Center_norm { src; gamma; beta; divide_std } ->
            let centered =
              if divide_std then A.normalize_rows_std vals.(src)
              else A.center_rows vals.(src)
            in
            A.add_bias
              (A.mul_rows centered (A.const tp (Mat.row_vector gamma)))
              (A.const tp (Mat.row_vector beta))
        | Ir.Self_attention { src; att } -> attention tp att vals.(src)
        | Ir.Pool_first src -> A.slice_rows vals.(src) 0 1
        | Ir.Positional { src; pos } ->
            let n = Mat.rows (A.value vals.(src)) in
            A.add vals.(src) (A.const tp (Mat.sub_rows pos 0 n))
      in
      vals.(i + 1) <- out)
    p.ops;
  vals.(Ir.output_id p)

let input_gradient (p : Ir.program) x ~loss_class =
  let tp = A.create () in
  let input = A.param tp (Mat.copy x) in
  let logits = run tp p input in
  if Mat.rows (A.value logits) <> 1 then
    invalid_arg "Forward_diff.input_gradient: output is not a single row";
  let loss = A.cross_entropy_loss logits loss_class in
  A.backward tp loss;
  A.grad input
