(** Trainable Transformer encoder classifiers.

    A [Model.t] owns all parameters (embeddings, attention projections,
    feed-forward weights, normalization scales, pooler and classifier) and
    provides:

    - a differentiable forward pass ({!forward_tokens} / {!forward_input})
      used by the trainer,
    - compilation to the shared {!Ir.program} used by every verifier
      ({!to_ir}),
    - construction of the concrete verifier input ({!embed_tokens}).

    The architecture follows Section 3.1 of the paper: token embedding +
    positional encoding, [M] layers of (multi-head self-attention, residual,
    center-norm, feed-forward ReLU net, residual, center-norm), first-token
    pooling, a tanh hidden layer and a linear classifier. *)

type config = {
  vocab_size : int;  (** token vocabulary size (NLP mode) *)
  max_len : int;  (** maximum sequence length (positional table size) *)
  d_model : int;  (** embedding size E *)
  d_hidden : int;  (** feed-forward hidden size H *)
  heads : int;  (** attention heads A *)
  layers : int;  (** Transformer layers M *)
  divide_std : bool;
      (** if true, layer normalization divides by the standard deviation
          (Section 6.6); the paper's default is [false] *)
  n_classes : int;  (** classifier output size (2 for sentiment) *)
  patch_dim : int option;
      (** [Some k]: vision mode — the input is an [n x k] patch matrix
          embedded by a trainable linear map before the positional
          encoding (Appendix A.3). [None]: NLP token mode. *)
}

val default_config : config
(** Small sentiment model: vocab 128, max_len 16, E 24, H 24, 4 heads,
    3 layers, no std division, 2 classes. *)

type t
(** A model with all its parameters. *)

val config : t -> config

val create : Tensor.Rng.t -> config -> t
(** Random initialization (Xavier-style for projections). *)

val parameters : t -> (string * Tensor.Mat.t) list
(** All trainable parameters with stable names. The matrices are the live
    storage: the optimizer updates them in place. *)

val forward_tokens : Autodiff.t -> t -> int array -> Autodiff.v
(** Differentiable forward pass from token ids to [1 x n_classes] logits.
    Only valid in NLP mode ([patch_dim = None]). *)

val forward_input : Autodiff.t -> t -> Tensor.Mat.t -> Autodiff.v
(** Differentiable forward pass from a raw input matrix. In NLP mode the
    input is an embedded sequence {e without} positional encoding (it is
    added inside, and the embedding table receives no gradient) — used for
    noise-augmented training. In vision mode the input is an
    [n x patch_dim] patch matrix. *)

val embed_tokens : t -> int array -> Tensor.Mat.t
(** Concrete verifier input for a token sequence: embedding rows plus
    positional encoding. The {!to_ir} program expects exactly this. *)

val embedding_row : t -> int -> float array
(** Raw embedding (without positional encoding) of one token. *)

val save : string -> t -> unit
(** Persists the configuration and every parameter (text format,
    hex-exact floats), creating parent directories. *)

val load : string -> t
(** Restores a model saved with {!save}.
    @raise Failure on malformed input. *)

val to_ir : t -> Ir.program
(** Compiles the model to the verification IR. In NLP mode the program
    input is the embedded sequence ([n x d_model], see {!embed_tokens});
    in vision mode it is the patch matrix and the program starts with the
    patch embedding and positional ops. *)
