lib/nn/train.mli: Ir Model Tensor
