lib/nn/autodiff.ml: Array List Mat Tensor Vecops
