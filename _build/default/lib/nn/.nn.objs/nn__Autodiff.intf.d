lib/nn/autodiff.mli: Tensor
