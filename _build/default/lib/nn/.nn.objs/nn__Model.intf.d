lib/nn/model.mli: Autodiff Ir Tensor
