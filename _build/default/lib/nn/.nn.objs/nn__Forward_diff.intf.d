lib/nn/forward_diff.mli: Autodiff Ir Tensor
