lib/nn/mlp.mli: Autodiff Ir Tensor Train
