lib/nn/mlp.ml: Array Autodiff Ir List Mat Printf Rng Tensor Train
