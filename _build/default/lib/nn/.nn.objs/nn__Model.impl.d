lib/nn/model.ml: Array Autodiff Filename In_channel Ir List Mat Option Out_channel Printf Rng String Sys Tensor
