lib/nn/forward.ml: Array Ir Mat Tensor Vecops
