lib/nn/forward_diff.ml: Array Autodiff Ir List Mat Tensor
