lib/nn/train.ml: Array Autodiff Forward Hashtbl List Mat Model Rng Tensor Vecops
