lib/nn/forward.mli: Ir Tensor
