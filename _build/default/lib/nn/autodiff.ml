open Tensor

type t = {
  mutable tape : (unit -> unit) list;
  mutable params : (Mat.t * v) list;
}

and v = { tp : t; value : Mat.t; mutable grad : Mat.t option }

let create () = { tape = []; params = [] }
let const tp m = { tp; value = m; grad = None }
let leaf = const

let param tp m =
  match List.find_opt (fun (m0, _) -> m0 == m) tp.params with
  | Some (_, node) -> node
  | None ->
      let node = leaf tp m in
      tp.params <- (m, node) :: tp.params;
      node

let param_grads tp =
  List.rev_map
    (fun (m, node) ->
      ( m,
        match node.grad with
        | Some g -> g
        | None -> Mat.create (Mat.rows m) (Mat.cols m) ))
    tp.params
let value n = n.value

let grad n =
  match n.grad with
  | Some g -> g
  | None -> Mat.create (Mat.rows n.value) (Mat.cols n.value)

(* Gradient accumulator, allocated on first touch. *)
let gacc n =
  match n.grad with
  | Some g -> g
  | None ->
      let g = Mat.create (Mat.rows n.value) (Mat.cols n.value) in
      n.grad <- Some g;
      g

(* Creates the output node and registers its backward closure. The closure
   receives the output gradient; it is skipped entirely if no path from the
   loss reached this node. *)
let node1 tp value back =
  let out = { tp; value; grad = None } in
  tp.tape <- (fun () -> match out.grad with None -> () | Some d -> back d) :: tp.tape;
  out

let matmul a b =
  node1 a.tp (Mat.matmul a.value b.value) (fun d ->
      Mat.add_in_place (gacc a) (Mat.gemm ~tb:true d b.value);
      Mat.add_in_place (gacc b) (Mat.gemm ~ta:true a.value d))

let add a b =
  node1 a.tp (Mat.add a.value b.value) (fun d ->
      Mat.add_in_place (gacc a) d;
      Mat.add_in_place (gacc b) d)

let sub a b =
  node1 a.tp (Mat.sub a.value b.value) (fun d ->
      Mat.add_in_place (gacc a) d;
      Mat.axpy (-1.0) d (gacc b))

let hadamard a b =
  node1 a.tp (Mat.mul a.value b.value) (fun d ->
      Mat.add_in_place (gacc a) (Mat.mul d b.value);
      Mat.add_in_place (gacc b) (Mat.mul d a.value))

let scale s a = node1 a.tp (Mat.scale s a.value) (fun d -> Mat.axpy s d (gacc a))

let transpose a =
  node1 a.tp (Mat.transpose a.value) (fun d ->
      Mat.add_in_place (gacc a) (Mat.transpose d))

let add_bias x b =
  if Mat.rows b.value <> 1 || Mat.cols b.value <> Mat.cols x.value then
    invalid_arg "Autodiff.add_bias: bias must be 1 x cols(x)";
  let brow = Mat.row b.value 0 in
  node1 x.tp (Mat.add_row_broadcast x.value brow) (fun d ->
      Mat.add_in_place (gacc x) d;
      let db = Mat.col_sums d in
      Mat.add_in_place (gacc b) (Mat.row_vector db))

let mul_rows x g =
  if Mat.rows g.value <> 1 || Mat.cols g.value <> Mat.cols x.value then
    invalid_arg "Autodiff.mul_rows: scale must be 1 x cols(x)";
  let grow = Mat.row g.value 0 in
  node1 x.tp (Mat.mul_row_broadcast x.value grow) (fun d ->
      Mat.add_in_place (gacc x) (Mat.mul_row_broadcast d grow);
      (* dg_j = sum_i d_ij * x_ij *)
      let dg = Mat.col_sums (Mat.mul d x.value) in
      Mat.add_in_place (gacc g) (Mat.row_vector dg))

let relu x =
  let y = Mat.map (fun v -> if v > 0.0 then v else 0.0) x.value in
  node1 x.tp y (fun d ->
      Mat.add_in_place (gacc x)
        (Mat.zip (fun di xi -> if xi > 0.0 then di else 0.0) d x.value))

let tanh_ x =
  let y = Mat.map tanh x.value in
  node1 x.tp y (fun d ->
      Mat.add_in_place (gacc x) (Mat.zip (fun di yi -> di *. (1.0 -. (yi *. yi))) d y))

let softmax_rows x =
  let n = Mat.rows x.value and c = Mat.cols x.value in
  let y = Mat.of_rows (Array.init n (fun i -> Vecops.softmax (Mat.row x.value i))) in
  node1 x.tp y (fun d ->
      let dx = Mat.create n c in
      for i = 0 to n - 1 do
        let s = ref 0.0 in
        for j = 0 to c - 1 do
          s := !s +. (Mat.get d i j *. Mat.get y i j)
        done;
        for j = 0 to c - 1 do
          Mat.set dx i j (Mat.get y i j *. (Mat.get d i j -. !s))
        done
      done;
      Mat.add_in_place (gacc x) dx)

let center_rows x =
  let means = Mat.row_means x.value in
  let y = Mat.mapi (fun i _ v -> v -. means.(i)) x.value in
  node1 x.tp y (fun d ->
      let dmeans = Mat.row_means d in
      Mat.add_in_place (gacc x) (Mat.mapi (fun i _ v -> v -. dmeans.(i)) d))

let ln_eps = 1e-5

let normalize_rows_std x =
  let n = Mat.rows x.value and c = Mat.cols x.value in
  let fc = float_of_int c in
  let means = Mat.row_means x.value in
  let sigmas = Array.make n 0.0 in
  let y = Mat.create n c in
  for i = 0 to n - 1 do
    let var = ref 0.0 in
    for j = 0 to c - 1 do
      let u = Mat.get x.value i j -. means.(i) in
      var := !var +. (u *. u)
    done;
    let sigma = sqrt ((!var /. fc) +. ln_eps) in
    sigmas.(i) <- sigma;
    for j = 0 to c - 1 do
      Mat.set y i j ((Mat.get x.value i j -. means.(i)) /. sigma)
    done
  done;
  node1 x.tp y (fun d ->
      (* dx = (d - mean(d) - y * mean(d .* y)) / sigma, row-wise. *)
      let dx = Mat.create n c in
      for i = 0 to n - 1 do
        let md = ref 0.0 and mdy = ref 0.0 in
        for j = 0 to c - 1 do
          md := !md +. Mat.get d i j;
          mdy := !mdy +. (Mat.get d i j *. Mat.get y i j)
        done;
        let md = !md /. fc and mdy = !mdy /. fc in
        for j = 0 to c - 1 do
          Mat.set dx i j
            ((Mat.get d i j -. md -. (Mat.get y i j *. mdy)) /. sigmas.(i))
        done
      done;
      Mat.add_in_place (gacc x) dx)

let gather_rows e idx =
  let c = Mat.cols e.value in
  let y = Mat.init (Array.length idx) c (fun i j -> Mat.get e.value idx.(i) j) in
  node1 e.tp y (fun d ->
      let ge = gacc e in
      Array.iteri
        (fun i r ->
          for j = 0 to c - 1 do
            Mat.set ge r j (Mat.get ge r j +. Mat.get d i j)
          done)
        idx)

let slice_cols x start n =
  node1 x.tp (Mat.sub_cols x.value start n) (fun d ->
      let gx = gacc x in
      for i = 0 to Mat.rows d - 1 do
        for j = 0 to n - 1 do
          Mat.set gx i (start + j) (Mat.get gx i (start + j) +. Mat.get d i j)
        done
      done)

let slice_rows x start n =
  node1 x.tp (Mat.sub_rows x.value start n) (fun d ->
      let gx = gacc x in
      for i = 0 to n - 1 do
        for j = 0 to Mat.cols d - 1 do
          Mat.set gx (start + i) j (Mat.get gx (start + i) j +. Mat.get d i j)
        done
      done)

let hcat vs =
  match vs with
  | [] -> invalid_arg "Autodiff.hcat: empty"
  | [ x ] -> x
  | first :: _ ->
      let value = List.fold_left (fun acc x -> Mat.hcat acc x.value) (Mat.copy first.value) (List.tl vs) in
      node1 first.tp value (fun d ->
          let off = ref 0 in
          List.iter
            (fun x ->
              let w = Mat.cols x.value in
              Mat.add_in_place (gacc x) (Mat.sub_cols d !off w);
              off := !off + w)
            vs)

let cross_entropy_loss logits label =
  if Mat.rows logits.value <> 1 then
    invalid_arg "Autodiff.cross_entropy_loss: logits must be 1 x C";
  let z = Mat.row logits.value 0 in
  if label < 0 || label >= Array.length z then
    invalid_arg "Autodiff.cross_entropy_loss: label out of range";
  let lse = Vecops.logsumexp z in
  let loss = lse -. z.(label) in
  node1 logits.tp (Mat.make 1 1 loss) (fun d ->
      let dscale = Mat.get d 0 0 in
      let p = Vecops.softmax z in
      let g = gacc logits in
      Array.iteri
        (fun j pj ->
          let delta = if j = label then 1.0 else 0.0 in
          Mat.set g 0 j (Mat.get g 0 j +. (dscale *. (pj -. delta))))
        p)

let mean_of vs =
  match vs with
  | [] -> invalid_arg "Autodiff.mean_of: empty"
  | v :: rest ->
      let s = List.fold_left add v rest in
      scale (1.0 /. float_of_int (List.length vs)) s

let backward tp out =
  if Mat.rows out.value <> 1 || Mat.cols out.value <> 1 then
    invalid_arg "Autodiff.backward: output must be 1 x 1";
  (gacc out).Mat.data.(0) <- 1.0;
  List.iter (fun f -> f ()) tp.tape;
  tp.tape <- []
