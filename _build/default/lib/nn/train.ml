open Tensor

type slot = { value : Mat.t; m : Mat.t; v : Mat.t }

type adam = {
  mutable lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  mutable t : int;
  slots : (string, slot) Hashtbl.t;
}

let adam ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) params =
  let slots = Hashtbl.create 64 in
  List.iter
    (fun (name, value) ->
      if Hashtbl.mem slots name then invalid_arg ("Train.adam: duplicate param " ^ name);
      Hashtbl.add slots name
        { value; m = Mat.create (Mat.rows value) (Mat.cols value);
          v = Mat.create (Mat.rows value) (Mat.cols value) })
    params;
  { lr; beta1; beta2; eps; t = 0; slots }

let set_lr opt lr = opt.lr <- lr

let clip_norm = 5.0

let step opt grads =
  (* Global gradient clipping across all supplied gradients. *)
  let total_sq =
    List.fold_left
      (fun acc (_, g) -> acc +. Mat.fold (fun a x -> a +. (x *. x)) 0.0 g)
      0.0 grads
  in
  let norm = sqrt total_sq in
  let gscale = if norm > clip_norm then clip_norm /. norm else 1.0 in
  opt.t <- opt.t + 1;
  let t = float_of_int opt.t in
  let bc1 = 1.0 -. (opt.beta1 ** t) and bc2 = 1.0 -. (opt.beta2 ** t) in
  List.iter
    (fun (name, g) ->
      match Hashtbl.find_opt opt.slots name with
      | None -> invalid_arg ("Train.step: unknown param " ^ name)
      | Some s ->
          let n = Array.length s.value.Mat.data in
          if Array.length g.Mat.data <> n then
            invalid_arg ("Train.step: gradient shape mismatch for " ^ name);
          for i = 0 to n - 1 do
            let gi = gscale *. Array.unsafe_get g.Mat.data i in
            let mi =
              (opt.beta1 *. Array.unsafe_get s.m.Mat.data i)
              +. ((1.0 -. opt.beta1) *. gi)
            in
            let vi =
              (opt.beta2 *. Array.unsafe_get s.v.Mat.data i)
              +. ((1.0 -. opt.beta2) *. gi *. gi)
            in
            Array.unsafe_set s.m.Mat.data i mi;
            Array.unsafe_set s.v.Mat.data i vi;
            let mhat = mi /. bc1 and vhat = vi /. bc2 in
            Array.unsafe_set s.value.Mat.data i
              (Array.unsafe_get s.value.Mat.data i
              -. (opt.lr *. mhat /. (sqrt vhat +. opt.eps)))
          done)
    grads

type example = { input : int array option; matrix : Mat.t option; label : int }

let token_example toks label = { input = Some toks; matrix = None; label }
let matrix_example m label = { input = None; matrix = Some m; label }

type report = { epoch : int; loss : float; train_acc : float }

let forward_example tp model ~embed_noise ~rng ex =
  match ex.input, ex.matrix with
  | Some toks, _ ->
      if embed_noise > 0.0 then begin
        let d = (Model.config model).Model.d_model in
        let x =
          Mat.init (Array.length toks) d (fun i j ->
              Model.embedding_row model toks.(i) |> fun row ->
              row.(j) +. Rng.uniform rng (-.embed_noise) embed_noise)
        in
        Model.forward_input tp model x
      end
      else Model.forward_tokens tp model toks
  | None, Some m -> Model.forward_input tp model m
  | None, None -> invalid_arg "Train: empty example"

let predict_example model ex =
  match ex.input, ex.matrix with
  | Some toks, _ ->
      let tp = Autodiff.create () in
      Vecops.argmax (Mat.row (Autodiff.value (Model.forward_tokens tp model toks)) 0)
  | None, Some m ->
      let tp = Autodiff.create () in
      Vecops.argmax (Mat.row (Autodiff.value (Model.forward_input tp model m)) 0)
  | None, None -> invalid_arg "Train: empty example"

let accuracy model examples =
  match examples with
  | [] -> 0.0
  | _ ->
      let good =
        List.fold_left
          (fun acc ex -> if predict_example model ex = ex.label then acc + 1 else acc)
          0 examples
      in
      float_of_int good /. float_of_int (List.length examples)

let accuracy_ir program pairs =
  match pairs with
  | [] -> 0.0
  | _ ->
      let good =
        List.fold_left
          (fun acc (x, label) ->
            if Forward.predict program x = label then acc + 1 else acc)
          0 pairs
      in
      float_of_int good /. float_of_int (List.length pairs)

let train_model ?(log = fun _ -> ()) ?(epochs = 10) ?(batch = 8) ?(lr = 2e-3)
    ?(embed_noise = 0.0) ~rng model examples =
  let params = Model.parameters model in
  let opt = adam ~lr params in
  let data = Array.of_list examples in
  let n = Array.length data in
  if n = 0 then invalid_arg "Train.train_model: no examples";
  let steps_per_epoch = (n + batch - 1) / batch in
  let total_steps = epochs * steps_per_epoch in
  let step_no = ref 0 in
  for epoch = 1 to epochs do
    Rng.shuffle rng data;
    let epoch_loss = ref 0.0 in
    let idx = ref 0 in
    while !idx < n do
      let bsize = min batch (n - !idx) in
      (* Warmup over the first 10% of steps, then linear decay to 10% of
         the peak rate — the standard schedule for training Transformer
         stacks from scratch. *)
      incr step_no;
      let frac = float_of_int !step_no /. float_of_int total_steps in
      let schedule =
        if frac < 0.1 then frac /. 0.1 else 1.0 -. (0.9 *. ((frac -. 0.1) /. 0.9))
      in
      set_lr opt (lr *. schedule);
      let tp = Autodiff.create () in
      let losses =
        List.init bsize (fun k ->
            let ex = data.(!idx + k) in
            let logits = forward_example tp model ~embed_noise ~rng ex in
            Autodiff.cross_entropy_loss logits ex.label)
      in
      let loss = Autodiff.mean_of losses in
      Autodiff.backward tp loss;
      epoch_loss := !epoch_loss +. Mat.get (Autodiff.value loss) 0 0;
      (* Map gradient storage back to parameter names by physical identity:
         Model.parameters returns the live matrices the forward pass bound
         with [Autodiff.param]. *)
      let grads =
        List.filter_map
          (fun (mat, g) ->
            match List.find_opt (fun (_, m0) -> m0 == mat) params with
            | Some (name, _) -> Some (name, g)
            | None -> None)
          (Autodiff.param_grads tp)
      in
      step opt grads;
      idx := !idx + bsize
    done;
    let report =
      { epoch; loss = !epoch_loss /. float_of_int steps_per_epoch;
        train_acc = accuracy model examples }
    in
    log report
  done
