open Tensor

type result = {
  found : bool;
  adversarial : Mat.t option;
  queries : int;
}

(* ------------------------------------------------------------------ *)
(* lp-ball projections for the perturbation of one row.                 *)

(* Euclidean projection onto the l1 ball of radius r (sort-based simplex
   projection, Duchi et al.). *)
let project_l1 delta r =
  let n = Array.length delta in
  if Vecops.l1 delta <= r then delta
  else begin
    let u = Array.map Float.abs delta in
    Array.sort (fun a b -> compare b a) u;
    let css = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i x ->
        acc := !acc +. x;
        css.(i) <- !acc)
      u;
    let rho = ref 0 in
    for i = 0 to n - 1 do
      if u.(i) -. ((css.(i) -. r) /. float_of_int (i + 1)) > 0.0 then rho := i
    done;
    let theta = (css.(!rho) -. r) /. float_of_int (!rho + 1) in
    Array.map
      (fun x ->
        let s = Float.abs x -. theta in
        if s <= 0.0 then 0.0 else if x >= 0.0 then s else -.s)
      delta
  end

let project ~p ~radius delta =
  match (p : Deept.Lp.t) with
  | Deept.Lp.Linf ->
      Array.map (fun d -> Float.max (-.radius) (Float.min radius d)) delta
  | Deept.Lp.L2 ->
      let n = Vecops.l2 delta in
      if n <= radius then delta else Vecops.scale (radius /. n) delta
  | Deept.Lp.L1 -> project_l1 delta radius

(* Ascent direction of maximal first-order loss increase within the ball
   geometry (the lp-dual steepest-ascent step). *)
let ascent_step ~p ~magnitude g =
  match (p : Deept.Lp.t) with
  | Deept.Lp.Linf ->
      Array.map (fun gi -> magnitude *. if gi >= 0.0 then 1.0 else -1.0) g
  | Deept.Lp.L2 ->
      let n = Vecops.l2 g in
      if n = 0.0 then Array.map (fun _ -> 0.0) g
      else Vecops.scale (magnitude /. n) g
  | Deept.Lp.L1 ->
      (* steepest ascent for l1 geometry: all mass on the max coordinate *)
      let k = ref 0 in
      Array.iteri (fun i gi -> if Float.abs gi > Float.abs g.(!k) then k := i) g;
      Array.mapi
        (fun i gi -> if i = !k then magnitude *. (if gi >= 0.0 then 1.0 else -1.0) else 0.0)
        g

let with_delta x ~word delta =
  Mat.mapi (fun i j v -> if i = word then v +. delta.(j) else v) x

let pgd ?(steps = 30) ?(restarts = 4) ?(step_frac = 0.25) ~rng program ~p x
    ~word ~radius ~true_class =
  if radius < 0.0 then invalid_arg "Attack.pgd: negative radius";
  let d = Mat.cols x in
  let queries = ref 0 in
  let misclassified cand =
    incr queries;
    Nn.Forward.predict program cand <> true_class
  in
  let try_one restart =
    let delta =
      if restart = 0 then Array.make d 0.0
      else
        project ~p ~radius
          (Array.map (fun v -> radius *. v) (Deept.Lp.unit_ball_sample rng p d))
    in
    let delta = ref delta in
    let result = ref None in
    (try
       for _ = 1 to steps do
         let cand = with_delta x ~word !delta in
         if misclassified cand then begin
           result := Some cand;
           raise Exit
         end;
         (* ascend the loss of the true class *)
         incr queries;
         let g = Nn.Forward_diff.input_gradient program cand ~loss_class:true_class in
         let grow = Mat.row g word in
         let step = ascent_step ~p ~magnitude:(step_frac *. radius) grow in
         delta := project ~p ~radius (Vecops.add !delta step)
       done;
       let cand = with_delta x ~word !delta in
       if misclassified cand then result := Some cand
     with Exit -> ());
    !result
  in
  let rec go restart =
    if restart > restarts then None
    else match try_one restart with Some c -> Some c | None -> go (restart + 1)
  in
  match go 0 with
  | Some adv ->
      (* sanity: the returned point really is inside the ball *)
      let delta = Array.init d (fun j -> Mat.get adv word j -. Mat.get x word j) in
      assert (Deept.Lp.norm p delta <= radius *. (1.0 +. 1e-9));
      { found = true; adversarial = Some adv; queries = !queries }
  | None -> { found = false; adversarial = None; queries = !queries }

let attacked_radius ?(iters = 10) ?steps ?restarts ~rng program ~p x ~word
    ~true_class () =
  (* smallest radius where the attack succeeds; monotone in practice, and
     the search is conservative in the sound direction (an upper bound). *)
  let succeeds radius =
    radius > 0.0
    && (pgd ?steps ?restarts ~rng program ~p x ~word ~radius ~true_class).found
  in
  let lo = ref 0.0 and hi = ref 0.25 in
  let grow = ref 0 in
  while (not (succeeds !hi)) && !grow < 8 do
    lo := !hi;
    hi := !hi *. 2.0;
    incr grow
  done;
  if !grow >= 8 then infinity
  else begin
    for _ = 1 to iters do
      let mid = 0.5 *. (!lo +. !hi) in
      if succeeds mid then hi := mid else lo := mid
    done;
    !hi
  end

let synonym_attack program x subs ~true_class =
  let queries = ref 0 in
  let loss cand =
    incr queries;
    let logits = Nn.Forward.logits program cand in
    Vecops.logsumexp logits -. logits.(true_class)
  in
  let misclassified cand =
    incr queries;
    Nn.Forward.predict program cand <> true_class
  in
  let current = ref (Mat.copy x) in
  let remaining = ref subs in
  let result = ref None in
  (try
     if misclassified !current then begin
       result := Some (Mat.copy !current);
       raise Exit
     end;
     let continue = ref true in
     while !continue && !remaining <> [] do
       let base_loss = loss !current in
       (* best single substitution among the remaining positions *)
       let best = ref None in
       List.iter
         (fun (pos, alts) ->
           List.iter
             (fun (alt : float array) ->
               let cand =
                 Mat.mapi (fun i j v -> if i = pos then alt.(j) else v) !current
               in
               let l = loss cand in
               match !best with
               | Some (_, _, bl) when bl >= l -> ()
               | _ -> if l > base_loss then best := Some (pos, cand, l))
             alts)
         !remaining;
       match !best with
       | None -> continue := false
       | Some (pos, cand, _) ->
           current := cand;
           remaining := List.filter (fun (q, _) -> q <> pos) !remaining;
           if misclassified !current then begin
             result := Some (Mat.copy !current);
             raise Exit
           end
     done
   with Exit -> ());
  match !result with
  | Some adv -> { found = true; adversarial = Some adv; queries = !queries }
  | None -> { found = false; adversarial = None; queries = !queries }
