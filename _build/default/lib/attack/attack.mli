(** Adversarial attacks — the upper-bound counterpart of certification.

    A certified radius lower-bounds the true robustness radius; an attack
    that finds a misclassifying perturbation upper-bounds it. Together
    they bracket the exact radius, which is how we sanity-check every
    verifier in this repository (certified ≤ attacked must always hold)
    and how the paper's threat models are motivated (Section 2; the
    synonym attack follows Alzantot et al.).

    Two attacks are provided:
    - {!pgd}: projected gradient ascent on the embedding of one word
      inside an ℓp ball (threat model T1), with random restarts — the
      classic first-order attack, using the repository's own autodiff
      to differentiate the loss with respect to the input;
    - {!synonym_attack}: greedy search over synonym substitutions
      (threat model T2), the enumeration-free attack of the kind the
      paper cites. *)

type result = {
  found : bool;
  adversarial : Tensor.Mat.t option;  (** a misclassified input, if found *)
  queries : int;  (** forward/gradient evaluations spent *)
}

val pgd :
  ?steps:int -> ?restarts:int -> ?step_frac:float ->
  rng:Tensor.Rng.t ->
  Ir.program -> p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> radius:float ->
  true_class:int -> result
(** [pgd program ~p x ~word ~radius ~true_class] searches the ℓp ball of
    the given radius around row [word] of [x] for a misclassified point.
    Defaults: 30 steps, 4 restarts, step size [step_frac = 0.25] of the
    radius. The returned adversarial input, when present, is verified to
    lie inside the ball and to be misclassified. *)

val attacked_radius :
  ?iters:int -> ?steps:int -> ?restarts:int ->
  rng:Tensor.Rng.t ->
  Ir.program -> p:Deept.Lp.t -> Tensor.Mat.t -> word:int -> true_class:int ->
  unit -> float
(** Binary search for the smallest radius at which {!pgd} succeeds — an
    {e upper} bound on the true robustness radius (the dual measurement
    to {!Deept.Certify.certified_radius}; certified ≤ exact ≤ attacked). *)

val synonym_attack :
  Ir.program -> Tensor.Mat.t -> (int * float array list) list ->
  true_class:int -> result
(** Greedy substitution search: repeatedly applies, at the position with
    the largest loss increase, the best synonym, until misclassification
    or a fixed point. Linear in (positions x synonyms) per round instead
    of exponential enumeration. *)
