lib/tensor/mat.mli: Format Rng
