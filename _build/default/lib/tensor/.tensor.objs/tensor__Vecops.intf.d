lib/tensor/vecops.mli:
