lib/tensor/vecops.ml: Array Float
