lib/tensor/mat.ml: Array Float Format Rng
