lib/tensor/rng.mli:
