(** Deterministic pseudo-random number generation.

    Every stochastic component of the library (weight initialization,
    dataset synthesis, sampling-based tests) draws from an explicit
    generator state, so whole experiments are reproducible from a seed.
    The generator is splitmix64, which has a 64-bit state, passes BigCrush
    and supports cheap splitting. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val float : t -> float
(** Uniform float in [0, 1). *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [lo, hi). *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val bool : t -> bool
(** Fair coin. *)

val gaussian : t -> float
(** Standard normal deviate (Box-Muller). *)

val gaussian_scaled : t -> mean:float -> std:float -> float
(** Normal deviate with the given mean and standard deviation. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element. Requires a non-empty array. *)

val sample_without_replacement : t -> int -> int -> int array
(** [sample_without_replacement t k n] draws [k] distinct indices from
    [0..n-1], in random order. Requires [k <= n]. *)
