(** Operations on plain [float array] vectors.

    Used wherever a full matrix is overkill: norm computations in the
    zonotope domain, classifier logits, dataset statistics. *)

val dot : float array -> float array -> float
(** Inner product; lengths must match. *)

val add : float array -> float array -> float array
val sub : float array -> float array -> float array
val scale : float -> float array -> float array
val axpy : float -> float array -> float array -> unit
(** [axpy a x y] performs y := y + a*x in place. *)

val l1 : float array -> float
(** ℓ1 norm. *)

val l2 : float array -> float
(** ℓ2 norm. *)

val linf : float array -> float
(** ℓ∞ norm. *)

val lp : float array -> float -> float
(** [lp v p] for any p >= 1, including [infinity]. *)

val sum : float array -> float
val mean : float array -> float
val max : float array -> float
val min : float array -> float
val argmax : float array -> int
(** Index of the maximum entry (first on ties); requires non-empty. *)

val softmax : float array -> float array
(** Numerically stable softmax. *)

val logsumexp : float array -> float
(** Numerically stable log of the sum of exponentials. *)

val approx_equal : ?tol:float -> float array -> float array -> bool
(** Pointwise comparison with absolute tolerance (default 1e-9). *)
