type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }
let copy t = { state = t.state }

(* Take the top 53 bits for a uniform double in [0, 1). *)
let float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x *. (1.0 /. 9007199254740992.0)

let uniform t lo hi = lo +. ((hi -. lo) *. float t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for n << 2^63. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let gaussian t =
  (* Box-Muller; guard against log 0. *)
  let u1 = ref (float t) in
  while !u1 <= 1e-300 do
    u1 := float t
  done;
  let u2 = float t in
  sqrt (-2.0 *. log !u1) *. cos (2.0 *. Float.pi *. u2)

let gaussian_scaled t ~mean ~std = mean +. (std *. gaussian t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k > n then invalid_arg "Rng.sample_without_replacement: k > n";
  let all = Array.init n (fun i -> i) in
  shuffle t all;
  Array.sub all 0 k
