let check_same a b name =
  if Array.length a <> Array.length b then invalid_arg ("Vecops." ^ name ^ ": length mismatch")

let dot a b =
  check_same a b "dot";
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. (Array.unsafe_get a i *. Array.unsafe_get b i)
  done;
  !acc

let add a b =
  check_same a b "add";
  Array.mapi (fun i x -> x +. b.(i)) a

let sub a b =
  check_same a b "sub";
  Array.mapi (fun i x -> x -. b.(i)) a

let scale s v = Array.map (fun x -> s *. x) v

let axpy a x y =
  check_same x y "axpy";
  for i = 0 to Array.length y - 1 do
    Array.unsafe_set y i (Array.unsafe_get y i +. (a *. Array.unsafe_get x i))
  done

let l1 v = Array.fold_left (fun acc x -> acc +. Float.abs x) 0.0 v
(* Scaled two-pass form: naive summing of squares overflows for entries
   beyond ~1e154, which certification of saturated softmax layers hits. *)
let l2 v =
  let m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v in
  if m = 0.0 || not (Float.is_finite m) then m
  else
    m
    *. sqrt
         (Array.fold_left
            (fun acc x ->
              let r = x /. m in
              acc +. (r *. r))
            0.0 v)
let linf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 v

let lp v p =
  if p = 1.0 then l1 v
  else if p = 2.0 then l2 v
  else if p = infinity then linf v
  else if p < 1.0 then invalid_arg "Vecops.lp: p must be >= 1"
  else (Array.fold_left (fun acc x -> acc +. (Float.abs x ** p)) 0.0 v) ** (1.0 /. p)

let sum v = Array.fold_left ( +. ) 0.0 v
let mean v = if Array.length v = 0 then 0.0 else sum v /. float_of_int (Array.length v)
let max v = Array.fold_left Float.max neg_infinity v
let min v = Array.fold_left Float.min infinity v

let argmax v =
  if Array.length v = 0 then invalid_arg "Vecops.argmax: empty";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let logsumexp v =
  let m = max v in
  if m = neg_infinity then neg_infinity
  else m +. log (Array.fold_left (fun acc x -> acc +. exp (x -. m)) 0.0 v)

let softmax v =
  let m = max v in
  let e = Array.map (fun x -> exp (x -. m)) v in
  let s = sum e in
  Array.map (fun x -> x /. s) e

let approx_equal ?(tol = 1e-9) a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a b
